/**
 * @file
 * Fig. 10: PyTFHE distributed CPU vs single-threaded CPU on VIP-Bench.
 *
 * Every workload (18 VIP-Bench kernels + MNIST_S/M/L + Attention_S/L) is
 * compiled and executed through the Algorithm-1 cluster simulator on one
 * node (18 workers) and four nodes (72 workers). Rows are sorted by gate
 * count ascending, exactly like the figure. The dummy independent-program
 * throughput gives the ideal ceiling.
 *
 * Paper reference points: 17.4x of ideal 18 on one node and 60.5x of
 * ideal 72 on four nodes for the MNIST networks; small and serial
 * benchmarks (Hamming, Euler, NRSolver) scale poorly.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>

#include "backend/execute.h"
#include "bench_util.h"

using namespace pytfhe;

namespace {

/**
 * Real threaded execution of the compiled binary on the functional
 * (plaintext) backend: wave-barrier interpreter vs the persistent
 * dependency-counting executor at 8 threads. Gate cost is ~ns here, so
 * this measures scheduling overhead — the part Algorithm 1's barriers and
 * per-wave thread churn add on top of the cluster model above.
 */
void ExerciseLocalExecutor(const char* name, const pasm::Program& p,
                           backend::Executor& executor) {
    using Clock = std::chrono::steady_clock;
    backend::PlainEvaluator eval;
    std::mt19937_64 rng(1);
    std::vector<bool> in(p.NumInputs());
    for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;

    backend::ExecOptions wave;
    wave.num_threads = 8;
    wave.mode = backend::ExecMode::kWaveBarrier;
    backend::ExecOptions dep;
    dep.num_threads = 8;
    dep.mode = backend::ExecMode::kDependencyCounting;
    dep.executor = &executor;

    auto t0 = Clock::now();
    const auto wave_out = backend::Execute(p, eval, in, wave);
    const double wave_s = std::chrono::duration<double>(Clock::now() - t0)
                              .count();
    t0 = Clock::now();
    const auto dep_out = backend::Execute(p, eval, in, dep);
    const double dep_s = std::chrono::duration<double>(Clock::now() - t0)
                             .count();
    if (wave_out != dep_out)
        std::printf("!! %s: executor output mismatch\n", name);
    const double g = static_cast<double>(p.NumGates());
    std::printf("%-16s %12.0f %12.0f %9.2fx\n", name, g / wave_s, g / dep_s,
                wave_s / dep_s);
}

}  // namespace

int main() {
    backend::ClusterConfig one_node;
    backend::ClusterConfig four_nodes;
    four_nodes.nodes = 4;

    struct Row {
        std::string name;
        uint64_t gates;
        uint64_t waves;
        double single;
        double s1, s4;
    };
    std::vector<Row> rows;
    // Programs small enough to also execute for real on local threads.
    std::vector<std::pair<std::string, pasm::Program>> local_programs;

    const vip::BenchScale scale;
    for (const auto& w : vip::AllWorkloads(scale)) {
        const core::Compiled c = bench::CompileWorkload(w);
        if (c.program.NumGates() < 100000)
            local_programs.emplace_back(w.name, c.program);
        Row r;
        r.name = w.name;
        r.gates = c.program.NumGates();
        const auto r1 = backend::SimulateCluster(c.program, one_node);
        const auto r4 = backend::SimulateCluster(c.program, four_nodes);
        r.waves = r1.waves;
        r.single = r1.single_core_seconds;
        r.s1 = r1.Speedup();
        r.s4 = r4.Speedup();
        rows.push_back(r);
        std::fflush(stdout);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.gates < b.gates; });

    std::printf("=== Fig. 10: distributed CPU speedup over single-threaded "
                "CPU (simulated cluster, Table II platform) ===\n");
    std::printf("ideal: 1 node = %.1fx, 4 nodes = %.1fx "
                "(dummy independent-gate throughput)\n\n",
                backend::IdealThroughput(one_node) *
                    one_node.cpu.bootstrap_gate_seconds,
                backend::IdealThroughput(four_nodes) *
                    four_nodes.cpu.bootstrap_gate_seconds);
    std::printf("%-16s %12s %8s %12s %10s %10s\n", "benchmark", "gates",
                "waves", "1-core (s)", "1 node", "4 nodes");
    bench::PrintRule(76);
    for (const auto& r : rows) {
        std::printf("%-16s %12llu %8llu %12.2f %9.1fx %9.1fx\n",
                    r.name.c_str(), static_cast<unsigned long long>(r.gates),
                    static_cast<unsigned long long>(r.waves), r.single, r.s1,
                    r.s4);
    }
    std::printf("\npaper: MNIST networks reach 17.4x (ideal 18) and 60.5x "
                "(ideal 72); serial kernels stay near 1x.\n");

    std::printf("\n=== Local functional execution at 8 threads: wave-barrier "
                "vs dependency-counting executor ===\n");
    std::printf("%-16s %12s %12s %9s\n", "benchmark", "wave g/s", "dep g/s",
                "speedup");
    bench::PrintRule(52);
    backend::Executor executor;  // One pool shared across every program.
    for (const auto& [name, program] : local_programs)
        ExerciseLocalExecutor(name.c_str(), program, executor);
    return 0;
}
