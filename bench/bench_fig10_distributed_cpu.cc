/**
 * @file
 * Fig. 10: PyTFHE distributed CPU vs single-threaded CPU on VIP-Bench.
 *
 * Every workload (18 VIP-Bench kernels + MNIST_S/M/L + Attention_S/L) is
 * compiled and executed through the Algorithm-1 cluster simulator on one
 * node (18 workers) and four nodes (72 workers). Rows are sorted by gate
 * count ascending, exactly like the figure. The dummy independent-program
 * throughput gives the ideal ceiling.
 *
 * Paper reference points: 17.4x of ideal 18 on one node and 60.5x of
 * ideal 72 on four nodes for the MNIST networks; small and serial
 * benchmarks (Hamming, Euler, NRSolver) scale poorly.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace pytfhe;

int main() {
    backend::ClusterConfig one_node;
    backend::ClusterConfig four_nodes;
    four_nodes.nodes = 4;

    struct Row {
        std::string name;
        uint64_t gates;
        uint64_t waves;
        double single;
        double s1, s4;
    };
    std::vector<Row> rows;

    const vip::BenchScale scale;
    for (const auto& w : vip::AllWorkloads(scale)) {
        const core::Compiled c = bench::CompileWorkload(w);
        Row r;
        r.name = w.name;
        r.gates = c.program.NumGates();
        const auto r1 = backend::SimulateCluster(c.program, one_node);
        const auto r4 = backend::SimulateCluster(c.program, four_nodes);
        r.waves = r1.waves;
        r.single = r1.single_core_seconds;
        r.s1 = r1.Speedup();
        r.s4 = r4.Speedup();
        rows.push_back(r);
        std::fflush(stdout);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.gates < b.gates; });

    std::printf("=== Fig. 10: distributed CPU speedup over single-threaded "
                "CPU (simulated cluster, Table II platform) ===\n");
    std::printf("ideal: 1 node = %.1fx, 4 nodes = %.1fx "
                "(dummy independent-gate throughput)\n\n",
                backend::IdealThroughput(one_node) *
                    one_node.cpu.bootstrap_gate_seconds,
                backend::IdealThroughput(four_nodes) *
                    four_nodes.cpu.bootstrap_gate_seconds);
    std::printf("%-16s %12s %8s %12s %10s %10s\n", "benchmark", "gates",
                "waves", "1-core (s)", "1 node", "4 nodes");
    bench::PrintRule(76);
    for (const auto& r : rows) {
        std::printf("%-16s %12llu %8llu %12.2f %9.1fx %9.1fx\n",
                    r.name.c_str(), static_cast<unsigned long long>(r.gates),
                    static_cast<unsigned long long>(r.waves), r.single, r.s1,
                    r.s4);
    }
    std::printf("\npaper: MNIST networks reach 17.4x (ideal 18) and 60.5x "
                "(ideal 72); serial kernels stay near 1x.\n");
    return 0;
}
