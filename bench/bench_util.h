/** @file Shared helpers for the figure/table regeneration binaries. */
#ifndef PYTFHE_BENCH_BENCH_UTIL_H
#define PYTFHE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "backend/cluster_sim.h"
#include "backend/gpu_sim.h"
#include "core/compiler.h"
#include "vip/registry.h"

namespace pytfhe::bench {

/** Compiles a workload, aborting on failure. */
inline core::Compiled CompileWorkload(const vip::Workload& w) {
    std::string error;
    auto compiled = core::Compile(w.build(), {}, &error);
    if (!compiled) {
        std::fprintf(stderr, "compile of %s failed: %s\n", w.name.c_str(),
                     error.c_str());
        std::abort();
    }
    return std::move(*compiled);
}

/** Single-core runtime estimate (footnote-1 methodology). */
inline double SingleCoreSeconds(const pasm::Program& p) {
    return backend::SingleCoreSeconds(backend::ComputeGateMix(p),
                                      backend::CpuCostModel{});
}

inline void PrintRule(int width = 96) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

}  // namespace pytfhe::bench

#endif  // PYTFHE_BENCH_BENCH_UTIL_H
