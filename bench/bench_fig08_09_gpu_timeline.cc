/**
 * @file
 * Figs. 8 and 9: GPU execution timelines.
 *
 * Fig. 8 shows cuFHE's per-gate discipline — H2D copy, kernel, D2H copy,
 * serialized, with the CPU blocked. Fig. 9 shows PyTFHE's CUDA-Graph
 * batches with on-device intermediates and overlapped batch construction.
 * This binary renders both simulated timelines for a 4-gate chain (the
 * figure's example) and reports the breakdown for a larger program.
 */
#include <cstdio>

#include "bench_util.h"
#include "hdl/word_ops.h"

using namespace pytfhe;

namespace {

/** A chain of 4 dependent gates, like the figure. */
pasm::Program FourGateChain() {
    circuit::Netlist n;
    const auto a = n.AddInput();
    auto v = n.AddInput();
    for (int i = 0; i < 4; ++i)
        v = n.AddGate(circuit::GateType::kNand, v, a);
    n.AddOutput(v);
    return *pasm::Assemble(n);
}

void PrintTimeline(const char* title, const backend::GpuResult& r) {
    std::printf("\n--- %s (total %.2f ms) ---\n", title, 1e3 * r.seconds);
    for (const auto& e : r.timeline) {
        std::printf("  %8.2f - %8.2f ms  %-7s %s\n", 1e3 * e.start,
                    1e3 * e.end, e.lane.c_str(), e.label.c_str());
    }
}

}  // namespace

int main() {
    const backend::GpuConfig gpu = backend::A5000();
    const pasm::Program chain = FourGateChain();

    std::printf("=== Fig. 8: cuFHE per-gate execution (4 NAND chain, %s) ===\n",
                gpu.name.c_str());
    const auto cufhe = backend::SimulateCuFhe(chain, gpu, 64);
    PrintTimeline("cuFHE: copy / kernel / copy per gate, CPU blocked", cufhe);

    std::printf("\n=== Fig. 9: PyTFHE CUDA-Graph execution (same chain) ===\n");
    const auto pytfhe = backend::SimulatePyTfhe(chain, gpu, 64);
    PrintTimeline("PyTFHE: one graph, intermediates stay on device", pytfhe);
    std::printf("\nchain speedup from eliminating copies/launches: %.1fx\n",
                cufhe.seconds / pytfhe.seconds);

    // Larger program: where the time goes under each discipline.
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 16, "x");
    const hdl::Bits y = hdl::InputBits(b, 16, "y");
    hdl::OutputBits(b, hdl::UMul(b, x, y, 16), "p");
    auto compiled = core::Compile(b.netlist());
    const pasm::Program& mul = compiled->program;

    bench::PrintRule();
    std::printf("16x16 multiplier (%llu gates), %s\n",
                static_cast<unsigned long long>(mul.NumGates()),
                gpu.name.c_str());
    std::printf("%-10s %10s %10s %10s %10s %10s\n", "mode", "total(s)",
                "h2d(s)", "kernel(s)", "d2h(s)", "launch(s)");
    const auto c2 = backend::SimulateCuFhe(mul, gpu, 0);
    const auto p2 = backend::SimulatePyTfhe(mul, gpu, 0);
    std::printf("%-10s %10.3f %10.3f %10.3f %10.3f %10.3f\n", "cuFHE",
                c2.seconds, c2.h2d_seconds, c2.kernel_seconds, c2.d2h_seconds,
                c2.launch_seconds);
    std::printf("%-10s %10.3f %10.3f %10.3f %10.3f %10.3f\n", "PyTFHE",
                p2.seconds, p2.h2d_seconds, p2.kernel_seconds, p2.d2h_seconds,
                p2.launch_seconds);
    std::printf("speedup: %.1fx (paper reports up to 61.5x on parallel "
                "workloads, Fig. 11)\n", c2.seconds / p2.seconds);
    return 0;
}
