/**
 * @file
 * Fig. 12: Google Transpiler vs PyTFHE on MNIST_S, by component.
 *
 * The paper's experiment crosses frontends with backends:
 *   GT+GC       Transpiler frontend, Transpiler code-gen backend (1 core)
 *   GT+PyT CPU  Transpiler-compiled circuit on the PyTFHE 4-node cluster
 *   GT+PyT GPU  Transpiler-compiled circuit on the PyTFHE GPU backend
 *   PyT+PyT *   ChiselTorch-style frontend + PyTFHE backends
 *
 * Both frontends compile the same MNIST_S computation with the same
 * weights (baseline::CompileMnist); runtimes come from the calibrated cost
 * models. Reference points: GT+PyT CPU = 52x over GT+GC; GT+PyT GPU =
 * 69x-89x; PyT+PyT up to 3369x (Fig. 12) / 28.4x-4070x (Table IV).
 */
#include <cstdio>

#include "baseline/mnist_compiler.h"
#include "bench_util.h"

using namespace pytfhe;

int main() {
    baseline::MnistOptions opt;
    opt.image = 16;  // Scaled MNIST (see EXPERIMENTS.md).

    std::printf("compiling MNIST_S with both frontends (image %lldx%lld)...\n",
                static_cast<long long>(opt.image),
                static_cast<long long>(opt.image));
    auto gt = core::Compile(
        baseline::CompileMnist(baseline::TranspilerProfile(), opt),
        core::CompileOptions{
            // Transpiler's own pipeline: no further gate-level cleanup
            // beyond what XLS did (modeled in the profile); only DCE.
            circuit::OptOptions{false, false, false, true}});
    auto pyt = core::Compile(
        baseline::CompileMnist(baseline::PyTfheProfile(), opt));
    if (!gt || !pyt) {
        std::fprintf(stderr, "compile failed\n");
        return 1;
    }
    std::printf("Transpiler frontend: %llu gates; ChiselTorch frontend: "
                "%llu gates (%.1fx smaller)\n\n",
                static_cast<unsigned long long>(gt->program.NumGates()),
                static_cast<unsigned long long>(pyt->program.NumGates()),
                static_cast<double>(gt->program.NumGates()) /
                    pyt->program.NumGates());

    backend::ClusterConfig four_nodes;
    four_nodes.nodes = 4;
    const backend::GpuConfig a5000 = backend::A5000();
    const backend::GpuConfig rtx4090 = backend::Rtx4090();

    const double gtgc = bench::SingleCoreSeconds(gt->program);

    struct Row {
        const char* name;
        double seconds;
    };
    const Row rows[] = {
        {"GT+GC (1 core, baseline)", gtgc},
        {"GT+PyT CPU (4 nodes)",
         backend::SimulateCluster(gt->program, four_nodes).seconds},
        {"GT+PyT GPU (A5000)",
         backend::SimulatePyTfhe(gt->program, a5000, 0).seconds},
        {"GT+PyT GPU (4090)",
         backend::SimulatePyTfhe(gt->program, rtx4090, 0).seconds},
        {"PyT+PyT CPU (1 core)", bench::SingleCoreSeconds(pyt->program)},
        {"PyT+PyT CPU (4 nodes)",
         backend::SimulateCluster(pyt->program, four_nodes).seconds},
        {"PyT+PyT GPU (A5000)",
         backend::SimulatePyTfhe(pyt->program, a5000, 0).seconds},
        {"PyT+PyT GPU (4090)",
         backend::SimulatePyTfhe(pyt->program, rtx4090, 0).seconds},
    };

    std::printf("=== Fig. 12: Transpiler vs PyTFHE on MNIST_S ===\n");
    std::printf("%-28s %14s %12s\n", "configuration", "time", "vs GT+GC");
    bench::PrintRule(58);
    for (const Row& r : rows) {
        if (r.seconds > 3600)
            std::printf("%-28s %11.2f hr %11.1fx\n", r.name,
                        r.seconds / 3600, gtgc / r.seconds);
        else
            std::printf("%-28s %12.1f s %11.1fx\n", r.name, r.seconds,
                        gtgc / r.seconds);
    }
    std::printf("\npaper: GT+GC took days; GT+PyT CPU 52x, GT+PyT GPU "
                "69x-89x, PyT+PyT up to 3369x.\n");
    return 0;
}
