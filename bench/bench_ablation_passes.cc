/**
 * @file
 * Ablation: contribution of each synthesis rewrite to gate count.
 *
 * DESIGN.md calls out four rewrites in the Yosys-substitute pipeline:
 * constant folding, structural-hash CSE, NOT absorption into the TFHE
 * gate set, and DCE. This bench compiles MNIST_S from a rewrite-free
 * frontend and toggles each pass, reporting gates and estimated runtime.
 */
#include <cstdio>

#include "baseline/mnist_compiler.h"
#include "bench_util.h"

using namespace pytfhe;

int main() {
    // Build once with every builder rewrite off (raw frontend output).
    baseline::Profile raw = baseline::PyTfheProfile();
    raw.builder.fold_constants = false;
    raw.builder.cse = false;
    raw.builder.absorb_not = false;
    baseline::MnistOptions opt;
    opt.image = 12;
    std::printf("building raw (unoptimized) MNIST_S frontend output...\n");
    const circuit::Netlist netlist = baseline::CompileMnist(raw, opt);
    std::printf("raw gates: %llu\n\n",
                static_cast<unsigned long long>(netlist.NumGates()));

    struct Config {
        const char* name;
        circuit::OptOptions opt;
    };
    // NOT absorption without CSE is count-neutral on shared gates
    // (negating a multiply-consumed gate duplicates it), so it is shown
    // both alone and on top of CSE.
    const Config configs[] = {
        {"none (DCE only)", {false, false, false, true}},
        {"+ constant folding", {true, false, false, true}},
        {"+ CSE", {false, true, false, true}},
        {"+ NOT absorption", {false, false, true, true}},
        {"CSE + NOT absorption", {false, true, true, true}},
        {"fold + CSE", {true, true, false, true}},
        {"all passes", {true, true, true, true}},
    };

    std::printf("=== Ablation: synthesis passes on MNIST_S(12x12) ===\n\n");
    std::printf("%-22s %12s %12s %14s\n", "passes", "gates", "reduction",
                "1-core est (s)");
    bench::PrintRule(64);
    const backend::CpuCostModel cpu;
    uint64_t baseline_gates = 0;
    for (const Config& c : configs) {
        const auto result = circuit::Optimize(netlist, c.opt);
        const uint64_t g = result.netlist.NumGates();
        if (baseline_gates == 0) baseline_gates = g;
        std::printf("%-22s %12llu %11.1f%% %14.1f\n", c.name,
                    static_cast<unsigned long long>(g),
                    100.0 * (1.0 - static_cast<double>(g) / baseline_gates),
                    g * cpu.bootstrap_gate_seconds);
    }
    return 0;
}
