/**
 * @file
 * Bootstrap-elision benchmark: HDL workloads compiled with and without
 * the noise-budget-aware elision pass, executed under real TFHE-128
 * encryption. Emits BENCH_elision.json with per-workload bootstrap
 * counts, measured wall seconds for both variants, and the noise model's
 * predicted worst-sink failure probability — the quantity the pass
 * promises to keep inside budget.
 *
 * The honest headline: elision wins are bounded by each workload's
 * parity-separable fraction. A parity (XOR-tree) reduction collapses to
 * zero bootstraps; an adder elides its sum XORs but keeps every carry
 * AND; a comparator elides nothing because all its XNORs feed ANDs,
 * which can never absorb a linear operand.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backend/cluster_sim.h"
#include "backend/execute.h"
#include "circuit/builder.h"
#include "core/compiler.h"
#include "hdl/word_ops.h"
#include "tfhe/noise.h"

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

circuit::Netlist BuildAdder(int width, bool fast) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, width, "x");
    const hdl::Bits y = hdl::InputBits(b, width, "y");
    hdl::OutputBits(b, fast ? hdl::AddFast(b, x, y) : hdl::Add(b, x, y),
                    "sum");
    return b.netlist();
}

circuit::Netlist BuildMultiplier(int width) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, width, "x");
    const hdl::Bits y = hdl::InputBits(b, width, "y");
    hdl::OutputBits(b, hdl::UMul(b, x, y, 2 * width), "prod");
    return b.netlist();
}

circuit::Netlist BuildComparator(int width) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, width, "x");
    const hdl::Bits y = hdl::InputBits(b, width, "y");
    b.AddOutput(hdl::Ult(b, x, y), "lt");
    b.AddOutput(hdl::Eq(b, x, y), "eq");
    return b.netlist();
}

circuit::Netlist BuildParityTree(int leaves) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, leaves, "x");
    circuit::NodeId acc = x[0];
    for (int32_t i = 1; i < x.Width(); ++i)
        acc = b.MakeGate(circuit::GateType::kXor, acc, x[i]);
    b.AddOutput(acc, "parity");
    return b.netlist();
}

struct Row {
    std::string name;
    uint64_t bootstraps_before = 0;
    uint64_t bootstraps_after = 0;
    uint64_t linear_gates = 0;
    double failure_bootstrapped = 0.0;
    double failure_elided = 0.0;
    /**
     * Deterministic single-core estimates from the CPU cost model. These
     * are what bench_check gates on: the measured wall seconds below are
     * honest but carry the timing noise of whatever machine ran them, so
     * they are recorded for humans, not for the regression gate.
     */
    double modeled_bootstrapped_s = 0.0;
    double modeled_elided_s = 0.0;
    double wall_bootstrapped_s = 0.0;
    double wall_elided_s = 0.0;
};

struct Crypto {
    tfhe::Rng rng{1};
    tfhe::SecretKeySet secret;
    tfhe::GateEvaluator gates;

    Crypto()
        : secret(tfhe::Tfhe128Params(), rng), gates(secret, rng) {}
};

double RunEncrypted(const pasm::Program& program, Crypto& crypto,
                    const std::vector<bool>& in,
                    const std::vector<bool>& want, int threads) {
    std::vector<tfhe::LweSample> enc;
    enc.reserve(in.size());
    for (bool b : in) enc.push_back(crypto.secret.Encrypt(b, crypto.rng));
    backend::TfheEvaluator eval(crypto.gates);
    backend::Executor executor;
    backend::ExecOptions options;
    options.num_threads = threads;
    options.executor = &executor;
    const auto t0 = Clock::now();
    const auto out = backend::Execute(program, eval, enc, options);
    const double sec =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (size_t i = 0; i < out.size(); ++i) {
        if (crypto.secret.Decrypt(out[i]) != want[i]) {
            std::fprintf(stderr, "DECRYPTION MISMATCH at output %zu\n", i);
            std::abort();
        }
    }
    return sec;
}

Row Measure(const std::string& name, const circuit::Netlist& netlist,
            Crypto& crypto, int threads) {
    const tfhe::Params params = tfhe::Tfhe128Params();
    core::CompileOptions with;
    with.params = params;
    core::CompileOptions without;
    without.params = params;
    without.elision.enabled = false;

    std::string error;
    auto elided = core::Compile(netlist, with, &error);
    auto plain = core::Compile(netlist, without, &error);
    if (!elided || !plain) {
        std::fprintf(stderr, "compile of %s failed: %s\n", name.c_str(),
                     error.c_str());
        std::abort();
    }

    Row row;
    row.name = name;
    row.bootstraps_before = elided->elision_stats.bootstraps_before;
    row.bootstraps_after = elided->elision_stats.bootstraps_after;
    row.linear_gates = elided->stats.num_linear_gates;

    // Predicted worst sign-decision failure of each variant, raw model
    // (no safety margin) on the netlist that actually ships.
    const tfhe::NoiseAnalysis noise = tfhe::AnalyzeNoise(params);
    row.failure_elided =
        circuit::AnalyzeNoiseBudget(pasm::ToNetlist(elided->program), noise)
            .worst_sink_failure;
    row.failure_bootstrapped =
        circuit::AnalyzeNoiseBudget(pasm::ToNetlist(plain->program), noise)
            .worst_sink_failure;

    const backend::CpuCostModel cpu;
    row.modeled_bootstrapped_s = backend::SingleCoreSeconds(
        backend::ComputeGateMix(plain->program), cpu);
    row.modeled_elided_s = backend::SingleCoreSeconds(
        backend::ComputeGateMix(elided->program), cpu);

    std::mt19937_64 prng(0xE11DE);
    std::vector<bool> in(netlist.Inputs().size());
    for (size_t i = 0; i < in.size(); ++i) in[i] = prng() & 1;
    const std::vector<bool> want = netlist.EvaluatePlain(in);

    // Best of two runs: a single encrypted execution is long enough to
    // be meaningful, but the minimum strips scheduler noise.
    row.wall_bootstrapped_s =
        std::min(RunEncrypted(plain->program, crypto, in, want, threads),
                 RunEncrypted(plain->program, crypto, in, want, threads));
    row.wall_elided_s =
        std::min(RunEncrypted(elided->program, crypto, in, want, threads),
                 RunEncrypted(elided->program, crypto, in, want, threads));

    std::printf("%-16s %6llu -> %4llu bootstraps   %8.3f s -> %8.3f s"
                "  (%.2fx)   P(fail) %.1e -> %.1e\n",
                name.c_str(),
                static_cast<unsigned long long>(row.bootstraps_before),
                static_cast<unsigned long long>(row.bootstraps_after),
                row.wall_bootstrapped_s, row.wall_elided_s,
                row.wall_bootstrapped_s /
                    (row.wall_elided_s > 0 ? row.wall_elided_s : 1e-9),
                row.failure_bootstrapped, row.failure_elided);
    std::fflush(stdout);
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    const int threads =
        argc > 1 ? std::atoi(argv[1])
                 : static_cast<int>(std::thread::hardware_concurrency());
    std::printf("# bench_elision: params=tfhe-128, %d threads\n", threads);
    std::printf("# generating bootstrapping key...\n");
    std::fflush(stdout);
    Crypto crypto;

    std::vector<Row> rows;
    rows.push_back(Measure("parity32", BuildParityTree(32), crypto, threads));
    rows.push_back(
        Measure("adder8_ripple", BuildAdder(8, false), crypto, threads));
    rows.push_back(
        Measure("adder8_ks", BuildAdder(8, true), crypto, threads));
    rows.push_back(
        Measure("multiplier8", BuildMultiplier(8), crypto, threads));
    rows.push_back(
        Measure("comparator8", BuildComparator(8), crypto, threads));

    FILE* out = std::fopen("BENCH_elision.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open BENCH_elision.json\n");
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"elision\",\n");
    std::fprintf(out, "  \"params\": \"tfhe-128\",\n");
    std::fprintf(out, "  \"workloads\": {\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(out,
                     "    \"%s\": {\n"
                     "      \"bootstraps_before\": %llu,\n"
                     "      \"bootstraps_after\": %llu,\n"
                     "      \"linear_gates\": %llu,\n"
                     "      \"failure_prob_bootstrapped\": %.3e,\n"
                     "      \"failure_prob_elided\": %.3e,\n"
                     "      \"modeled_s_bootstrapped\": %.4f,\n"
                     "      \"modeled_s_elided\": %.4f,\n"
                     "      \"wall_s_bootstrapped\": %.3f,\n"
                     "      \"wall_s_elided\": %.3f\n"
                     "    }%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.bootstraps_before),
                     static_cast<unsigned long long>(r.bootstraps_after),
                     static_cast<unsigned long long>(r.linear_gates),
                     r.failure_bootstrapped, r.failure_elided,
                     r.modeled_bootstrapped_s, r.modeled_elided_s,
                     r.wall_bootstrapped_s, r.wall_elided_s,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("# wrote BENCH_elision.json\n");
    return 0;
}
