/**
 * @file
 * Fig. 11: PyTFHE GPU backend vs cuFHE on VIP-Bench and neural networks.
 *
 * Both GPU disciplines are simulated on the Table III platforms (RTX A5000
 * and RTX 4090) for every workload; the figure's metric is the speedup of
 * the PyTFHE CUDA-Graph backend over per-gate cuFHE.
 *
 * Paper reference points: up to 61.5x; serial benchmarks (Parrondo, Euler,
 * NRSolver) show modest speedups because their waves are narrow.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace pytfhe;

int main() {
    const backend::GpuConfig a5000 = backend::A5000();
    const backend::GpuConfig rtx4090 = backend::Rtx4090();

    struct Row {
        std::string name;
        uint64_t gates;
        double cufhe_a, pyt_a, cufhe_b, pyt_b;
    };
    std::vector<Row> rows;

    const vip::BenchScale scale;
    for (const auto& w : vip::AllWorkloads(scale)) {
        const core::Compiled c = bench::CompileWorkload(w);
        Row r;
        r.name = w.name;
        r.gates = c.program.NumGates();
        r.cufhe_a = backend::SimulateCuFhe(c.program, a5000, 0).seconds;
        r.pyt_a = backend::SimulatePyTfhe(c.program, a5000, 0).seconds;
        r.cufhe_b = backend::SimulateCuFhe(c.program, rtx4090, 0).seconds;
        r.pyt_b = backend::SimulatePyTfhe(c.program, rtx4090, 0).seconds;
        rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.gates < b.gates; });

    std::printf("=== Fig. 11: PyTFHE GPU vs cuFHE (simulated, Table III "
                "platforms) ===\n\n");
    std::printf("%-16s %12s | %12s %12s %8s | %12s %12s %8s\n", "benchmark",
                "gates", "cuFHE-A5000", "PyT-A5000", "speedup", "cuFHE-4090",
                "PyT-4090", "speedup");
    bench::PrintRule(108);
    double max_speedup = 0;
    for (const auto& r : rows) {
        std::printf("%-16s %12llu | %11.2fs %11.2fs %7.1fx | %11.2fs %11.2fs "
                    "%7.1fx\n",
                    r.name.c_str(), static_cast<unsigned long long>(r.gates),
                    r.cufhe_a, r.pyt_a, r.cufhe_a / r.pyt_a, r.cufhe_b,
                    r.pyt_b, r.cufhe_b / r.pyt_b);
        max_speedup = std::max(max_speedup, r.cufhe_a / r.pyt_a);
    }
    std::printf("\nmax A5000 speedup observed: %.1fx "
                "(paper: up to 61.5x)\n", max_speedup);
    return 0;
}
