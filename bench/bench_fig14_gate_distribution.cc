/**
 * @file
 * Fig. 14: gate distribution of the MNIST network per framework.
 *
 * Reports total gates and the per-gate-type histogram of MNIST_S as
 * compiled by each framework model, plus the PyTFHE/competitor ratios the
 * paper quotes: PyTFHE emits 65.3% of Cingulata's gates and 53.6% of
 * E3's; Transpiler is significantly larger (it even emits gates for the
 * Flatten layer).
 */
#include <cstdio>

#include "baseline/mnist_compiler.h"
#include "bench_util.h"

using namespace pytfhe;

int main() {
    baseline::MnistOptions opt;
    opt.image = 16;

    struct Entry {
        baseline::Profile profile;
        bool optimize;
        circuit::NetlistStats stats;
        uint64_t gates = 0;
    };
    Entry entries[] = {
        {baseline::PyTfheProfile(), true, {}, 0},
        {baseline::CingulataProfile(), false, {}, 0},
        {baseline::E3Profile(), false, {}, 0},
        {baseline::TranspilerProfile(), false, {}, 0},
    };

    for (Entry& e : entries) {
        const circuit::OptOptions o =
            e.optimize ? circuit::OptOptions{}
                       : circuit::OptOptions{false, false, false, true};
        auto c = core::Compile(baseline::CompileMnist(e.profile, opt),
                               core::CompileOptions{o});
        if (!c) std::abort();
        e.stats = c->stats;
        e.gates = c->program.NumGates();
    }

    std::printf("=== Fig. 14: gate distribution of MNIST_S per framework "
                "===\n\n");
    std::printf("%-12s %12s %10s %10s |", "framework", "gates", "depth",
                "width");
    for (int t = 0; t < circuit::kNumGateTypes; ++t)
        std::printf(" %6s",
                    std::string(circuit::GateTypeName(
                                    static_cast<circuit::GateType>(t)))
                        .c_str());
    std::printf("\n");
    bench::PrintRule(126);
    for (const Entry& e : entries) {
        std::printf("%-12s %12llu %10llu %10llu |",
                    e.profile.name.c_str(),
                    static_cast<unsigned long long>(e.gates),
                    static_cast<unsigned long long>(e.stats.depth),
                    static_cast<unsigned long long>(e.stats.max_width));
        for (int t = 0; t < circuit::kNumGateTypes; ++t)
            std::printf(" %6llu",
                        static_cast<unsigned long long>(
                            e.stats.gate_histogram[t]));
        std::printf("\n");
    }

    const double vs_cin =
        100.0 * entries[0].gates / entries[1].gates;
    const double vs_e3 = 100.0 * entries[0].gates / entries[2].gates;
    const double gt_ratio =
        static_cast<double>(entries[3].gates) / entries[0].gates;
    std::printf("\nPyTFHE emits %.1f%% of Cingulata's gates (paper: 65.3%%) "
                "and %.1f%% of E3's (paper: 53.6%%).\n", vs_cin, vs_e3);
    std::printf("Transpiler emits %.1fx more gates than PyTFHE "
                "(paper: 'significantly larger'; runtime ratio 28.4x).\n",
                gt_ratio);
    return 0;
}
