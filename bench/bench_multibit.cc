/**
 * @file
 * Programmable-bootstrapping benchmark: word workloads built twice — once
 * from boolean gates (compiled with elision disabled, so every gate
 * bootstraps: the classic gate-bootstrapping baseline) and once from the
 * multibit LUT generators under message modulus 16 — and executed under
 * real multibit-128 encryption with bit-exact cross-checks. Emits
 * BENCH_multibit.json with per-workload bootstrap counts and the
 * reduction factor.
 *
 * The headline metric is `bootstraps`: programmable bootstraps the
 * multibit variant spends, gated lower-is-better by bench_check. The
 * companion `reduction_x` (boolean bootstraps / multibit bootstraps) is
 * gated higher-is-better and asserted >= 3.0 at generation time — the
 * whole point of paying for the larger multibit parameter set.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "backend/cluster_sim.h"
#include "backend/execute.h"
#include "circuit/builder.h"
#include "core/compiler.h"
#include "hdl/multibit_ops.h"
#include "hdl/word_ops.h"
#include "tfhe/multibit.h"
#include "tfhe/noise.h"

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

/** Boolean and multibit builds of the same function, same I/O shape. */
struct WorkloadPair {
    circuit::Netlist boolean;
    circuit::Netlist multibit;
};

WorkloadPair BuildAdder(int width, const hdl::MultibitPlan& plan) {
    WorkloadPair w;
    {
        hdl::Builder b;
        const hdl::Bits x = hdl::InputBits(b, width, "x");
        const hdl::Bits y = hdl::InputBits(b, width, "y");
        hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
        w.boolean = b.netlist();
    }
    {
        hdl::Builder b;
        const hdl::Bits x = hdl::InputBits(b, width, "x");
        const hdl::Bits y = hdl::InputBits(b, width, "y");
        hdl::OutputBits(b, hdl::MultibitAdd(b, plan, x, y), "sum");
        w.multibit = b.netlist();
    }
    return w;
}

WorkloadPair BuildComparator(int width, const hdl::MultibitPlan& plan) {
    WorkloadPair w;
    {
        hdl::Builder b;
        const hdl::Bits x = hdl::InputBits(b, width, "x");
        const hdl::Bits y = hdl::InputBits(b, width, "y");
        b.AddOutput(hdl::Ult(b, x, y), "lt");
        b.AddOutput(hdl::Eq(b, x, y), "eq");
        w.boolean = b.netlist();
    }
    {
        hdl::Builder b;
        const hdl::Bits x = hdl::InputBits(b, width, "x");
        const hdl::Bits y = hdl::InputBits(b, width, "y");
        b.AddOutput(hdl::MultibitUlt(b, plan, x, y), "lt");
        b.AddOutput(hdl::MultibitEq(b, plan, x, y), "eq");
        w.multibit = b.netlist();
    }
    return w;
}

WorkloadPair BuildMultiplier(int width, const hdl::MultibitPlan& plan) {
    WorkloadPair w;
    {
        hdl::Builder b;
        const hdl::Bits x = hdl::InputBits(b, width, "x");
        const hdl::Bits y = hdl::InputBits(b, width, "y");
        hdl::OutputBits(b, hdl::UMul(b, x, y, 2 * width), "prod");
        w.boolean = b.netlist();
    }
    {
        hdl::Builder b;
        const hdl::Bits x = hdl::InputBits(b, width, "x");
        const hdl::Bits y = hdl::InputBits(b, width, "y");
        hdl::OutputBits(b, hdl::MultibitUMul(b, plan, x, y, 2 * width),
                        "prod");
        w.multibit = b.netlist();
    }
    return w;
}

struct Row {
    std::string name;
    uint64_t bootstraps = 0;          ///< Multibit programmable bootstraps.
    uint64_t bootstraps_boolean = 0;  ///< Gate-bootstrapping baseline.
    double reduction_x = 0.0;
    /** Deterministic cost-model estimates; what bench_check gates on. */
    double modeled_multibit_s = 0.0;
    double modeled_boolean_s = 0.0;
    /** Measured, machine-noisy; recorded for humans. */
    double wall_multibit_s = 0.0;
    double wall_boolean_s = 0.0;
};

struct Crypto {
    tfhe::Rng rng{1};
    tfhe::SecretKeySet secret;
    tfhe::GateEvaluator gates;

    Crypto() : secret(tfhe::MultibitParams(), rng), gates(secret, rng) {}
};

/**
 * Encrypts in the encoding the program runs under (digits for multibit
 * programs, signs for boolean ones), executes, and decrypt-verifies
 * against the plaintext reference — both variants must land on the same
 * bits. A single run: one encrypted execution under multibit-128 is
 * already seconds long, well above scheduler noise.
 */
double RunEncrypted(const pasm::Program& program, Crypto& crypto,
                    const std::vector<bool>& in,
                    const std::vector<bool>& want, int threads) {
    const int32_t p = program.MessageModulus();
    std::vector<tfhe::LweSample> enc;
    enc.reserve(in.size());
    for (bool b : in) {
        enc.push_back(p == 0
                          ? crypto.secret.Encrypt(b, crypto.rng)
                          : tfhe::LweEncryptDigit(
                                b ? 1 : 0, p,
                                crypto.secret.params.lwe_noise_stddev,
                                crypto.secret.lwe_key, crypto.rng));
    }
    backend::TfheEvaluator eval(crypto.gates);
    backend::Executor executor;
    backend::ExecOptions options;
    options.num_threads = threads;
    options.executor = &executor;
    const auto t0 = Clock::now();
    const auto out = backend::Execute(program, eval, enc, options);
    const double sec =
        std::chrono::duration<double>(Clock::now() - t0).count();
    for (size_t i = 0; i < out.size(); ++i) {
        const bool got =
            p == 0 ? crypto.secret.Decrypt(out[i])
                   : tfhe::LweDecryptDigit(out[i], crypto.secret.lwe_key,
                                           p) != 0;
        if (got != want[i]) {
            std::fprintf(stderr, "DECRYPTION MISMATCH at output %zu\n", i);
            std::abort();
        }
    }
    return sec;
}

Row Measure(const std::string& name, const WorkloadPair& w, Crypto& crypto,
            int threads) {
    const tfhe::Params params = tfhe::MultibitParams();
    // The boolean arm is the gate-bootstrapping baseline: elision off so
    // every gate costs one bootstrap, exactly what the LUT path replaces.
    core::CompileOptions boolean_opts;
    boolean_opts.params = params;
    boolean_opts.elision.enabled = false;
    core::CompileOptions multibit_opts;
    multibit_opts.params = params;

    std::string error;
    const auto boolean = core::Compile(w.boolean, boolean_opts, &error);
    const auto multibit = core::Compile(w.multibit, multibit_opts, &error);
    if (!boolean || !multibit) {
        std::fprintf(stderr, "compile of %s failed: %s\n", name.c_str(),
                     error.c_str());
        std::abort();
    }
    if (multibit->program.MessageModulus() == 0) {
        std::fprintf(stderr,
                     "%s: multibit variant fell back to boolean — the "
                     "parameter set no longer carries the generators\n",
                     name.c_str());
        std::abort();
    }

    Row row;
    row.name = name;
    row.bootstraps_boolean =
        backend::ComputeGateMix(boolean->program).bootstrap_gates;
    row.bootstraps = backend::ComputeGateMix(multibit->program).bootstrap_gates;
    row.reduction_x = static_cast<double>(row.bootstraps_boolean) /
                      static_cast<double>(row.bootstraps);

    const backend::CpuCostModel cpu;
    row.modeled_boolean_s = backend::SingleCoreSeconds(
        backend::ComputeGateMix(boolean->program), cpu);
    row.modeled_multibit_s = backend::SingleCoreSeconds(
        backend::ComputeGateMix(multibit->program), cpu);

    std::mt19937_64 prng(0x10B1);
    std::vector<bool> in(w.boolean.Inputs().size());
    for (size_t i = 0; i < in.size(); ++i) in[i] = prng() & 1;
    const std::vector<bool> want = w.boolean.EvaluatePlain(in);
    const std::vector<bool> want_mb = w.multibit.EvaluatePlain(in);
    if (want != want_mb) {
        std::fprintf(stderr, "%s: plain multibit/boolean disagreement\n",
                     name.c_str());
        std::abort();
    }

    row.wall_boolean_s =
        RunEncrypted(boolean->program, crypto, in, want, threads);
    row.wall_multibit_s =
        RunEncrypted(multibit->program, crypto, in, want, threads);

    std::printf("%-14s %5llu -> %4llu bootstraps (%.2fx)   %8.3f s -> "
                "%8.3f s\n",
                name.c_str(),
                static_cast<unsigned long long>(row.bootstraps_boolean),
                static_cast<unsigned long long>(row.bootstraps),
                row.reduction_x, row.wall_boolean_s, row.wall_multibit_s);
    std::fflush(stdout);

    // The tentpole claim, enforced where the numbers are minted: if a
    // generator regresses below 3x, the benchmark refuses to produce a
    // baseline that would launder the regression into the repo.
    if (row.reduction_x < 3.0) {
        std::fprintf(stderr, "%s: reduction %.2fx is below the 3x floor\n",
                     name.c_str(), row.reduction_x);
        std::abort();
    }
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    const int threads = argc > 1 ? std::atoi(argv[1]) : 1;
    const tfhe::Params params = tfhe::MultibitParams();
    const hdl::MultibitPlan plan{16,
                                 tfhe::MaxMultibitWeightBudget(params, 16)};
    if (!plan.Fits(hdl::kMultibitMaxWeightSq)) {
        std::fprintf(stderr, "multibit-128 no longer fits the generators\n");
        return 1;
    }
    std::printf("# bench_multibit: params=%s, p=16, weight budget %lld, "
                "%d threads\n",
                params.name.c_str(),
                static_cast<long long>(plan.weight_budget), threads);
    std::printf("# generating bootstrapping key...\n");
    std::fflush(stdout);
    Crypto crypto;

    std::vector<Row> rows;
    rows.push_back(Measure("adder8", BuildAdder(8, plan), crypto, threads));
    rows.push_back(
        Measure("comparator8", BuildComparator(8, plan), crypto, threads));
    rows.push_back(
        Measure("multiplier8", BuildMultiplier(8, plan), crypto, threads));

    FILE* out = std::fopen("BENCH_multibit.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open BENCH_multibit.json\n");
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"multibit\",\n");
    std::fprintf(out, "  \"params\": \"%s\",\n", params.name.c_str());
    std::fprintf(out, "  \"message_modulus\": 16,\n");
    std::fprintf(out, "  \"workloads\": {\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(out,
                     "    \"%s\": {\n"
                     "      \"bootstraps\": %llu,\n"
                     "      \"bootstraps_boolean\": %llu,\n"
                     "      \"reduction_x\": %.3f,\n"
                     "      \"modeled_s_multibit\": %.4f,\n"
                     "      \"modeled_s_boolean\": %.4f,\n"
                     "      \"wall_s_multibit\": %.3f,\n"
                     "      \"wall_s_boolean\": %.3f\n"
                     "    }%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.bootstraps),
                     static_cast<unsigned long long>(r.bootstraps_boolean),
                     r.reduction_x, r.modeled_multibit_s, r.modeled_boolean_s,
                     r.wall_multibit_s, r.wall_boolean_s,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("# wrote BENCH_multibit.json\n");
    return 0;
}
