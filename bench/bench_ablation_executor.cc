/**
 * @file
 * Ablation: wave-barrier interpreter vs the persistent dependency-counting
 * executor.
 *
 * The adversarial shape for wave barriers is a deep, narrow circuit: every
 * wave is tiny, so the wave path pays thread spawn/join per level and
 * leaves workers idle while the slowest gate of each level finishes. The
 * dependency-counting executor keeps one pool alive and starts a gate the
 * moment its inputs exist. Two sections:
 *
 *   1. Plaintext gates (scheduling overhead isolated — gate cost ~ns, so
 *      the numbers are almost pure scheduler cost).
 *   2. Toy-parameter TFHE gates (real bootstraps, realistic gate cost).
 */
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "backend/executor.h"
#include "pasm/assembler.h"
#include "tfhe/gates.h"

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** `width` independent NAND chains of length `depth`: waves of size
 * `width`, `depth` levels. */
circuit::Netlist DeepNarrow(int32_t width, int32_t depth) {
    circuit::Netlist n;
    std::vector<circuit::NodeId> chain;
    for (int32_t w = 0; w < width; ++w) chain.push_back(n.AddInput());
    const circuit::NodeId seed = chain[0];
    for (int32_t d = 0; d < depth; ++d)
        for (auto& c : chain)
            c = n.AddGate(circuit::GateType::kNand, c, seed);
    for (auto c : chain) n.AddOutput(c);
    return n;
}

struct Rates {
    double wave;
    double dep;
};

template <typename Evaluator>
Rates Measure(const pasm::Program& p, Evaluator& eval,
              const std::vector<typename Evaluator::Ciphertext>& in,
              int32_t threads, int32_t reps, backend::Executor& executor) {
    const double gates = static_cast<double>(p.NumGates()) * reps;
    auto t0 = Clock::now();
    for (int32_t r = 0; r < reps; ++r)
        (void)backend::RunProgramThreaded(p, eval, in, threads);
    const double wave_s = SecondsSince(t0);
    t0 = Clock::now();
    for (int32_t r = 0; r < reps; ++r)
        (void)executor.Run(p, eval, in, threads);
    const double dep_s = SecondsSince(t0);
    return {gates / wave_s, gates / dep_s};
}

void PrintRow(const char* label, int32_t threads, const Rates& r) {
    std::printf("%-24s %7d %14.0f %14.0f %9.2fx\n", label, threads, r.wave,
                r.dep, r.dep / r.wave);
}

}  // namespace

int main() {
    std::printf("=== Ablation: wave-barrier vs dependency-counting executor "
                "===\n\n");
    std::printf("%-24s %7s %14s %14s %9s\n", "circuit", "threads",
                "wave gates/s", "dep gates/s", "speedup");

    // Section 1: plaintext gates, deep narrow circuit (depth 2000 x width
    // 8 = 16000 gates; the wave path spawns 8 threads 2000 times).
    {
        const auto p = pasm::Assemble(DeepNarrow(8, 2000));
        backend::PlainEvaluator eval;
        backend::Executor executor;
        std::vector<bool> in(8, true);
        for (int32_t threads : {2, 8}) {
            const auto r = Measure(*p, eval, in, threads, 3, executor);
            PrintRow("plain deep-narrow", threads, r);
        }
    }

    // Section 2: toy-parameter TFHE bootstraps on a smaller instance of
    // the same shape (depth 24 x width 8 = 192 bootstrapped gates).
    {
        tfhe::Rng rng(42);
        tfhe::SecretKeySet secret(tfhe::ToyParams(), rng);
        tfhe::GateEvaluator gates(secret, rng);
        backend::TfheEvaluator eval(gates);
        backend::Executor executor;
        const auto p = pasm::Assemble(DeepNarrow(8, 24));
        std::vector<tfhe::LweSample> in;
        for (int i = 0; i < 8; ++i) in.push_back(secret.Encrypt(i & 1, rng));
        for (int32_t threads : {2, 8}) {
            const auto r = Measure(*p, eval, in, threads, 2, executor);
            PrintRow("tfhe-toy deep-narrow", threads, r);
        }
    }

    std::printf("\nThe executor keeps one worker pool alive and starts each "
                "gate as soon as its\ninputs exist; the wave path re-spawns "
                "threads every level and barriers on the\nslowest gate per "
                "level.\n");
    return 0;
}
