/**
 * @file
 * Microbenchmarks of the TFHE substrate primitives, hand-rolled so the
 * binary emits BENCH_micro_tfhe.json with per-op nanoseconds (forward FFT,
 * inverse FFT, external product, blind rotate, full gate bootstrap, key
 * switch). The JSON keeps the perf trajectory machine-readable across PRs;
 * numbers are taken at the paper's 128-bit parameter set.
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "tfhe/bootstrap.h"
#include "tfhe/bootstrap_batch.h"
#include "tfhe/fft.h"
#include "tfhe/fft_batch_kernels.h"
#include "tfhe/gates.h"

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

volatile uint32_t g_sink = 0;  // Defeats whole-benchmark dead-code removal.

/**
 * Runs `fn` in growing batches until the batch takes at least min_seconds
 * of wall clock; returns nanoseconds per call from the final batch.
 */
template <typename F>
double MeasureNs(F&& fn, double min_seconds = 0.2) {
    fn();  // Warm-up: sizes scratch buffers, faults pages.
    int64_t iters = 1;
    while (true) {
        const auto t0 = Clock::now();
        for (int64_t i = 0; i < iters; ++i) fn();
        const double sec =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (sec >= min_seconds || iters >= (INT64_C(1) << 30))
            return sec * 1e9 / static_cast<double>(iters);
        const double target = min_seconds * 1.2;
        const int64_t next =
            sec > 0 ? static_cast<int64_t>(iters * target / sec) + 1
                    : iters * 4;
        iters = std::max(next, iters * 2);
    }
}

void Report(std::vector<std::pair<std::string, double>>* results,
            const std::string& name, double ns) {
    std::printf("%-18s %12.0f ns  (%.3f ms)\n", name.c_str(), ns, ns * 1e-6);
    std::fflush(stdout);
    results->emplace_back(name, ns);
}

}  // namespace

int main() {
    tfhe::Rng rng(1);
    const tfhe::Params params = tfhe::Tfhe128Params();
    const tfhe::NegacyclicFft& fft = tfhe::GetFftPlan(params.big_n);
    std::vector<std::pair<std::string, double>> results;

    std::printf("# bench_micro_tfhe: params=%s (n=%d, N=%d, k=%d, l=%d)\n",
                params.name.c_str(), params.n, params.big_n, params.k,
                params.bk_l);

    // ---------------------------------------------------------- transforms
    tfhe::TorusPolynomial poly(params.big_n), inv_out(params.big_n);
    for (auto& c : poly.coefs) c = rng.UniformTorus32();
    tfhe::FreqPolynomial freq;
    tfhe::FftScratch fft_scratch;
    fft.Forward(freq, poly);

    Report(&results, "forward_fft", MeasureNs([&] {
               fft.Forward(freq, poly);
               g_sink += static_cast<uint32_t>(freq.Re()[0]);
           }));
    Report(&results, "inverse_fft", MeasureNs([&] {
               fft.Inverse(inv_out, freq, fft_scratch);
               g_sink += inv_out.coefs[0];
           }));

    // ----------------------------------------------------- external product
    tfhe::TLweKey tlwe_key(params.big_n, params.k, rng);
    tfhe::TGswSampleFft bit = tfhe::TGswToFft(
        tfhe::TGswEncrypt(1, params.bk_l, params.bk_bg_bit,
                          params.tlwe_noise_stddev, tlwe_key, rng),
        fft);
    tfhe::TLweSample tlwe_in = tfhe::TLweEncryptConst(
        UINT32_C(1) << 29, params.tlwe_noise_stddev, tlwe_key, rng);
    tfhe::TLweSample ep_out;
    tfhe::ExternalProductScratch ep_scratch;

    Report(&results, "external_product", MeasureNs([&] {
               tfhe::TGswExternalProduct(ep_out, bit, tlwe_in, fft,
                                         &ep_scratch);
               g_sink += ep_out.Body().coefs[0];
           }));

    // ------------------------------------------- bootstrapping (full chain)
    std::printf("# generating bootstrapping key...\n");
    std::fflush(stdout);
    tfhe::LweKey lwe_key(params.n, rng);
    tfhe::BootstrappingKey bk(params, lwe_key, tlwe_key, rng);
    tfhe::LweSample lwe_in = tfhe::LweEncryptBit(
        true, params.lwe_noise_stddev, lwe_key, rng);
    tfhe::BootstrapScratch bs_scratch;
    constexpr tfhe::Torus32 kEighth = UINT32_C(1) << 29;

    std::vector<int32_t> bara(params.n);
    for (auto& v : bara)
        v = static_cast<int32_t>(rng.UniformBelow(2 * params.big_n));
    tfhe::TorusPolynomial testvect(params.big_n);
    for (auto& c : testvect.coefs) c = kEighth;
    tfhe::TLweSample acc(params.big_n, params.k);

    Report(&results, "blind_rotate", MeasureNs([&] {
               acc.SetTrivial(testvect);
               tfhe::BlindRotate(acc, bara, bk, &bs_scratch);
               g_sink += acc.Body().coefs[0];
           }));

    tfhe::LweSample extracted =
        tfhe::BootstrapWithoutKeySwitch(kEighth, lwe_in, bk, &bs_scratch);
    Report(&results, "key_switch", MeasureNs([&] {
               g_sink += bk.ksk().Apply(extracted).b;
           }));

    // Measured over the same 1.0s window as the batched sweep below: the
    // scalar number is the denominator of every speedup_b* metric, so a
    // noisy fast/slow window here would skew the whole committed sweep.
    const double scalar_gate_ns = MeasureNs(
        [&] { g_sink += tfhe::Bootstrap(kEighth, lwe_in, bk, &bs_scratch).b; },
        1.0);
    Report(&results, "gate_bootstrap", scalar_gate_ns);

    // ------------------------------------------- batched bootstrap sweep
    // Per-gate cost of the SoA fused kernel at batch sizes 1/2/4/8, plus
    // the throughput speedup vs the scalar gate bootstrap. The `_ns`
    // metrics are gated lower-is-better and the `speedup_*` metrics
    // higher-is-better by tools/bench_check.
    //
    // The container this baseline is committed from drifts ~10% in
    // single-core speed over minutes, so a speedup computed from scalar
    // and batched windows measured far apart is dominated by that drift.
    // Each batch size instead measures scalar/batched window *pairs*
    // back-to-back and reports the median of the per-pair ratios — drift
    // slow compared to one pair cancels out of the ratio.
    std::vector<std::pair<std::string, double>> batched;
    std::printf("# batched gate bootstrap sweep (simd=%d)\n",
                tfhe::batch_detail::SimdAvailable() ? 1 : 0);
    std::fflush(stdout);
    tfhe::BatchScratch batch_scratch;
    for (const int32_t b : {1, 2, 4, 8}) {
        std::vector<tfhe::LweSample> ins(b, lwe_in), outs(b);
        std::vector<const tfhe::LweSample*> in_ptrs(b);
        std::vector<tfhe::LweSample*> out_ptrs(b);
        for (int32_t i = 0; i < b; ++i) {
            in_ptrs[i] = &ins[i];
            out_ptrs[i] = &outs[i];
        }
        constexpr int kPairs = 3;
        std::vector<double> ratios, batch_ns;
        for (int p = 0; p < kPairs; ++p) {
            const double scalar_ns = MeasureNs(
                [&] {
                    g_sink +=
                        tfhe::Bootstrap(kEighth, lwe_in, bk, &bs_scratch).b;
                },
                0.4);
            const double per_gate_ns =
                MeasureNs(
                    [&] {
                        tfhe::BatchedGateBootstrap(kEighth, in_ptrs.data(),
                                                   out_ptrs.data(), b, bk,
                                                   &batch_scratch);
                        g_sink += outs[0].b;
                    },
                    0.4) /
                static_cast<double>(b);
            ratios.push_back(scalar_ns / per_gate_ns);
            batch_ns.push_back(per_gate_ns);
        }
        std::sort(ratios.begin(), ratios.end());
        std::sort(batch_ns.begin(), batch_ns.end());
        const double speedup = ratios[kPairs / 2];
        char name[64];
        std::snprintf(name, sizeof(name), "gate_bootstrap_b%d_ns", b);
        Report(&batched, name, batch_ns[kPairs / 2]);
        std::snprintf(name, sizeof(name), "speedup_b%d", b);
        std::printf("%-18s %12.2fx\n", name, speedup);
        batched.emplace_back(name, speedup);
    }
    batched.emplace_back("simd",
                         tfhe::batch_detail::SimdAvailable() ? 1.0 : 0.0);

    // ------------------------------------------------------------- emit JSON
    FILE* out = std::fopen("BENCH_micro_tfhe.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open BENCH_micro_tfhe.json\n");
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"micro_tfhe\",\n");
    std::fprintf(out, "  \"params\": \"%s\",\n", params.name.c_str());
    std::fprintf(out, "  \"ops_ns\": {\n");
    for (size_t i = 0; i < results.size(); ++i)
        std::fprintf(out, "    \"%s\": %.1f%s\n", results[i].first.c_str(),
                     results[i].second, i + 1 < results.size() ? "," : "");
    std::fprintf(out, "  },\n  \"batched\": {\n");
    for (size_t i = 0; i < batched.size(); ++i)
        std::fprintf(out, "    \"%s\": %.3f%s\n", batched[i].first.c_str(),
                     batched[i].second, i + 1 < batched.size() ? "," : "");
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("# wrote BENCH_micro_tfhe.json\n");
    return 0;
}
