/**
 * @file
 * Microbenchmarks of the TFHE substrate primitives (google-benchmark):
 * negacyclic FFT, external product, key switching, encryption, and the
 * compiler's gate-construction throughput. These are the building blocks
 * behind every per-gate number used by the cost models.
 */
#include <benchmark/benchmark.h>

#include "circuit/builder.h"
#include "tfhe/bootstrap.h"
#include "tfhe/fft.h"

using namespace pytfhe;

namespace {

void BM_FftForward(benchmark::State& state) {
    const int32_t n = static_cast<int32_t>(state.range(0));
    const tfhe::NegacyclicFft& fft = tfhe::GetFftPlan(n);
    tfhe::Rng rng(1);
    tfhe::TorusPolynomial p(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    tfhe::FreqPolynomial f;
    for (auto _ : state) {
        fft.Forward(f, p);
        benchmark::DoNotOptimize(f);
    }
}
BENCHMARK(BM_FftForward)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_NegacyclicMulFft(benchmark::State& state) {
    const int32_t n = static_cast<int32_t>(state.range(0));
    const tfhe::NegacyclicFft& fft = tfhe::GetFftPlan(n);
    tfhe::Rng rng(2);
    tfhe::IntPolynomial a(n);
    tfhe::TorusPolynomial b(n), r(n);
    for (auto& c : a.coefs)
        c = static_cast<int32_t>(rng.UniformBelow(128)) - 64;
    for (auto& c : b.coefs) c = rng.UniformTorus32();
    for (auto _ : state) {
        fft.Multiply(r, a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_NegacyclicMulFft)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_NegacyclicMulNaive(benchmark::State& state) {
    const int32_t n = static_cast<int32_t>(state.range(0));
    tfhe::Rng rng(3);
    tfhe::IntPolynomial a(n);
    tfhe::TorusPolynomial b(n), r(n);
    for (auto& c : a.coefs)
        c = static_cast<int32_t>(rng.UniformBelow(128)) - 64;
    for (auto& c : b.coefs) c = rng.UniformTorus32();
    for (auto _ : state) {
        tfhe::NaiveNegacyclicMul(r, a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_NegacyclicMulNaive)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

struct TgswFixture {
    tfhe::Rng rng{4};
    tfhe::Params params = tfhe::Tfhe128Params();
    tfhe::TLweKey key{params.big_n, params.k, rng};
    const tfhe::NegacyclicFft& fft = tfhe::GetFftPlan(params.big_n);
    tfhe::TGswSampleFft c = tfhe::TGswToFft(
        tfhe::TGswEncrypt(1, params.bk_l, params.bk_bg_bit,
                          params.tlwe_noise_stddev, key, rng),
        fft);
    tfhe::TLweSample sample =
        tfhe::TLweEncryptConst(1 << 29, params.tlwe_noise_stddev, key, rng);
};

void BM_ExternalProduct128(benchmark::State& state) {
    static auto* f = new TgswFixture();
    tfhe::TLweSample out;
    for (auto _ : state) {
        tfhe::TGswExternalProduct(out, f->c, f->sample, f->fft);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ExternalProduct128)->Unit(benchmark::kMicrosecond);

struct KsFixture {
    tfhe::Rng rng{5};
    tfhe::Params params = tfhe::Tfhe128Params();
    tfhe::LweKey small{params.n, rng};
    tfhe::TLweKey big{params.big_n, params.k, rng};
    tfhe::KeySwitchKey ksk{big.ExtractLweKey(), small, params.ks_t,
                           params.ks_base_bit, params.lwe_noise_stddev, rng};
    tfhe::LweSample in = tfhe::LweEncrypt(1 << 29, params.lwe_noise_stddev,
                                          big.ExtractLweKey(), rng);
};

void BM_KeySwitch128(benchmark::State& state) {
    static auto* f = new KsFixture();
    for (auto _ : state) benchmark::DoNotOptimize(f->ksk.Apply(f->in));
}
BENCHMARK(BM_KeySwitch128)->Unit(benchmark::kMicrosecond);

void BM_LweEncrypt128(benchmark::State& state) {
    tfhe::Rng rng(6);
    const tfhe::Params p = tfhe::Tfhe128Params();
    tfhe::LweKey key(p.n, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tfhe::LweEncryptBit(true, p.lwe_noise_stddev, key, rng));
}
BENCHMARK(BM_LweEncrypt128)->Unit(benchmark::kMicrosecond);

void BM_BuilderGateConstruction(benchmark::State& state) {
    // Compiler-side throughput: hash-consed gate emission.
    for (auto _ : state) {
        circuit::SimplifyingBuilder b;
        std::vector<circuit::NodeId> pool;
        for (int i = 0; i < 8; ++i) pool.push_back(b.MakeInput());
        uint64_t x = 12345;
        for (int i = 0; i < 10000; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            const auto t = static_cast<circuit::GateType>(1 + (x >> 33) % 10);
            const auto a = pool[(x >> 3) % pool.size()];
            const auto c = pool[(x >> 13) % pool.size()];
            pool.push_back(b.MakeGate(t, a, c));
        }
        benchmark::DoNotOptimize(pool.back());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BuilderGateConstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
