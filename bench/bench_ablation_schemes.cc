/**
 * @file
 * Ablation: bit-wise TFHE vs word-wise CKKS (Section II-C, measured).
 *
 * The paper motivates choosing TFHE over word-wise schemes with three
 * qualitative claims; this bench measures each against our CKKS-lite:
 *
 *  1. Word-wise schemes excel at element-wise linear algebra: one CKKS
 *     multiplication covers N/2 slots; TFHE pays thousands of bootstraps
 *     for the same vector product.
 *  2. Non-linear ops need polynomial approximation in CKKS (consuming
 *     multiplicative depth and accuracy) while TFHE's ReLU is a mux.
 *  3. CKKS needs per-step rotation keys whose total size explodes at real
 *     parameters, while TFHE's evaluation key is fixed.
 */
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "ckks/ckks.h"
#include "hdl/value.h"

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Gate count of `slots` parallel fixed-point ops in TFHE. */
uint64_t TfheVectorOpGates(int32_t slots, bool multiply) {
    hdl::Builder b;
    const hdl::DType t = hdl::DType::Fixed(8, 8);
    for (int32_t i = 0; i < slots; ++i) {
        const hdl::Value x = hdl::InputValue(b, t, "x");
        const hdl::Value y = hdl::InputValue(b, t, "y");
        hdl::OutputValue(b, multiply ? hdl::VMul(b, x, y) : hdl::VAdd(b, x, y),
                         "o");
    }
    return b.netlist().NumGates();
}

uint64_t TfheReluGates(int32_t slots) {
    hdl::Builder b;
    const hdl::DType t = hdl::DType::Fixed(8, 8);
    for (int32_t i = 0; i < slots; ++i)
        hdl::OutputValue(b, hdl::VRelu(b, hdl::InputValue(b, t, "x")), "o");
    return b.netlist().NumGates();
}

}  // namespace

int main() {
    tfhe::Rng rng(7);
    ckks::CkksParams params;  // N = 64, 32 slots.
    ckks::CkksContext ctx(params, rng);
    const int32_t slots = params.NumSlots();
    const backend::CpuCostModel cpu;

    std::printf("=== Ablation: TFHE (bit-wise) vs CKKS-lite (word-wise), "
                "%d-slot vectors ===\n\n", slots);

    // ---- Claim 1: element-wise linear algebra throughput.
    std::vector<double> a(slots, 0.5), b(slots, -0.25);
    auto ca = ctx.Encrypt(a, rng);
    auto cb = ctx.Encrypt(b, rng);
    constexpr int kReps = 200;
    double add_s = 0, mul_s = 0;
    {
        volatile uint64_t sink = 0;
        const auto t_add = Clock::now();
        for (int i = 0; i < kReps; ++i) sink += ctx.Add(ca, cb).c0[0];
        add_s = Seconds(t_add) / kReps;
        const auto t_mul = Clock::now();
        for (int i = 0; i < kReps; ++i) sink += ctx.Mul(ca, cb).c0[0];
        mul_s = Seconds(t_mul) / kReps;
    }
    const uint64_t tfhe_add_gates = TfheVectorOpGates(slots, false);
    const uint64_t tfhe_mul_gates = TfheVectorOpGates(slots, true);

    std::printf("%-34s %14s %18s\n", "element-wise vector op",
                "CKKS (measured)", "TFHE (1-core est.)");
    bench::PrintRule(70);
    std::printf("%-34s %12.3f ms %15.1f s (%llu gates)\n", "vector add",
                1e3 * add_s, tfhe_add_gates * cpu.bootstrap_gate_seconds,
                static_cast<unsigned long long>(tfhe_add_gates));
    std::printf("%-34s %12.3f ms %15.1f s (%llu gates)\n", "vector mul",
                1e3 * mul_s, tfhe_mul_gates * cpu.bootstrap_gate_seconds,
                static_cast<unsigned long long>(tfhe_mul_gates));

    // ---- Claim 2: non-linear ops.
    // CKKS "ReLU": best depth-2 odd polynomial x*(0.5 + c*x^2)-style
    // smooth approximation; TFHE: exact mux. Compare accuracy.
    std::printf("\n%-34s\n", "ReLU on [-1, 1]:");
    bench::PrintRule(70);
    {
        // relu(x) ~= 0.47 + 0.5x + 0.3x^2 (least-squares-ish quadratic,
        // depth 1) -- the classic accuracy/depth trade.
        std::vector<double> xs(slots);
        for (int32_t i = 0; i < slots; ++i)
            xs[i] = -1.0 + 2.0 * i / (slots - 1);
        auto cx = ctx.Encrypt(xs, rng);
        auto x2 = ctx.Rescale(ctx.Mul(cx, cx));
        auto quad = ctx.Rescale(
            ctx.MulPlain(x2, std::vector<double>(slots, 0.3)));
        auto lin = ctx.Rescale(
            ctx.MulPlain(cx, std::vector<double>(slots, 0.5)));
        // Align levels: lin is one level above quad; drop it once more.
        auto lin2 = ctx.Rescale(
            ctx.MulPlain(lin, std::vector<double>(slots, 1.0)));
        auto approx = ctx.AddPlain(ctx.Add(quad, lin2),
                                   std::vector<double>(slots, 0.1));
        const auto got = ctx.Decrypt(approx);
        double max_err = 0;
        for (int32_t i = 0; i < slots; ++i)
            max_err = std::max(max_err,
                               std::abs(got[i] - std::max(0.0, xs[i])));
        std::printf("CKKS quadratic approx: max error %.3f, depth consumed "
                    "2 of %d\n", max_err, params.MaxDepth());
    }
    std::printf("TFHE exact ReLU: %llu gates per value (a mux), error 0, "
                "depth free (bootstrapped)\n",
                static_cast<unsigned long long>(TfheReluGates(slots)) /
                    slots);

    // ---- Claim 3: key material.
    for (int32_t s = 1; s < slots; s *= 2) ctx.EnsureRotationKey(s, rng);
    const double toy_rot_mb = ctx.RotationKeyBytes() / 1048576.0;
    // Scale the formula to production CKKS (N = 2^16, 40+ digits).
    const double real_rot_gb =
        (static_cast<double>(ctx.RotationKeyBytes()) / params.n) *
        65536.0 * 16.0 / 1073741824.0;
    std::printf("\nkey material:\n");
    bench::PrintRule(70);
    std::printf("CKKS rotation keys (toy N=%d, log2(slots) steps): %.2f MB\n",
                params.n, toy_rot_mb);
    std::printf("  scaled to N=65536 / 16 levels: ~%.0f GB (paper: 'tens of "
                "gigabytes')\n", real_rot_gb);
    std::printf("TFHE public key (128-bit set): bootstrapping key ~118 MB "
                "(FFT form; ~2.5 MB packed per the paper's 'few megabytes') "
                "+ KS key ~79 MB, fixed for ANY circuit\n");
    return 0;
}
