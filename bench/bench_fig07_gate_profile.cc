/**
 * @file
 * Fig. 7: profiling of a TFHE gate evaluation on a single CPU core.
 *
 * Measures real bootstrapped-gate latency with google-benchmark at the
 * paper's 128-bit parameter set (and the toy set for contrast), then
 * prints the Fig. 7 breakdown: blind rotation vs key switching vs the
 * (modeled gigabit-NIC) communication share of shipping one 2.46 KB
 * ciphertext per task.
 *
 * Paper reference points: ~15 ms per gate dominated by blind rotation;
 * communication = 0.094 % of runtime.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "backend/cost_model.h"
#include "tfhe/gates.h"

using namespace pytfhe;

namespace {

struct Keys {
    tfhe::Rng rng;
    tfhe::SecretKeySet secret;
    tfhe::GateEvaluator eval;
    tfhe::LweSample a, b;

    explicit Keys(const tfhe::Params& params)
        : rng(1),
          secret(params, rng),
          eval(secret, rng),
          a(secret.Encrypt(true, rng)),
          b(secret.Encrypt(false, rng)) {}
};

Keys& Keys128() {
    static auto* keys = new Keys(tfhe::Tfhe128Params());
    return *keys;
}

Keys& KeysToy() {
    static auto* keys = new Keys(tfhe::ToyParams());
    return *keys;
}

void BM_BootstrappedNand128(benchmark::State& state) {
    Keys& k = Keys128();
    for (auto _ : state) benchmark::DoNotOptimize(k.eval.Nand(k.a, k.b));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BootstrappedNand128)->Unit(benchmark::kMillisecond);

void BM_BootstrappedXor128(benchmark::State& state) {
    Keys& k = Keys128();
    for (auto _ : state) benchmark::DoNotOptimize(k.eval.Xor(k.a, k.b));
}
BENCHMARK(BM_BootstrappedXor128)->Unit(benchmark::kMillisecond);

void BM_Mux128(benchmark::State& state) {
    Keys& k = Keys128();
    for (auto _ : state) benchmark::DoNotOptimize(k.eval.Mux(k.a, k.b, k.a));
}
BENCHMARK(BM_Mux128)->Unit(benchmark::kMillisecond);

void BM_NoiselessNot128(benchmark::State& state) {
    Keys& k = Keys128();
    for (auto _ : state) benchmark::DoNotOptimize(k.eval.Not(k.a));
}
BENCHMARK(BM_NoiselessNot128)->Unit(benchmark::kMicrosecond);

void BM_BootstrappedNandToy(benchmark::State& state) {
    Keys& k = KeysToy();
    for (auto _ : state) benchmark::DoNotOptimize(k.eval.Nand(k.a, k.b));
}
BENCHMARK(BM_BootstrappedNandToy)->Unit(benchmark::kMicrosecond);

void PrintFig7Breakdown() {
    Keys& k = Keys128();
    k.eval.profile().Reset();
    constexpr int kGates = 20;
    for (int i = 0; i < kGates; ++i)
        benchmark::DoNotOptimize(k.eval.Nand(k.a, k.b));
    const tfhe::GateProfileSnapshot p = k.eval.profile().Snapshot();

    const double compute = p.TotalSeconds() / kGates;
    // One result ciphertext shipped per task over the gigabit NIC.
    const double comm = backend::kCiphertextBytes / 125e6;
    const double total = compute + comm;

    std::printf("\n=== Fig. 7: single-core TFHE gate evaluation profile "
                "(measured, %d gates) ===\n", kGates);
    std::printf("%-22s %10s %8s\n", "phase", "ms/gate", "share");
    auto row = [&](const char* name, double seconds) {
        std::printf("%-22s %10.3f %7.3f%%\n", name, 1e3 * seconds / kGates,
                    100.0 * seconds / kGates / total);
    };
    row("linear combination", p.linear_seconds);
    row("blind rotation", p.blind_rotate_seconds);
    row("key switching", p.key_switch_seconds);
    std::printf("%-22s %10.3f %7.3f%%\n", "communication (model)", 1e3 * comm,
                100.0 * comm / total);
    std::printf("%-22s %10.3f\n", "total", 1e3 * total);
    std::printf("\npaper: ~15 ms/gate, blind rotation dominant, "
                "communication 0.094%%\n");
    std::printf("key sizes: bootstrapping key %.1f MB (FFT domain), "
                "key-switching key %.1f MB\n",
                k.eval.key().BkByteSize() / 1048576.0,
                k.eval.key().ksk().ByteSize() / 1048576.0);
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    PrintFig7Breakdown();
    return 0;
}
