/**
 * @file
 * Ablation (Section IV-B): data-type parameterization vs gate count.
 *
 * ChiselTorch supports arbitrary-width integers, fixed point, and
 * arbitrary-exponent/mantissa floats; "choosing a cheaper data type may
 * result in a reduction in the number of gates by orders of magnitude".
 * This bench quantifies that claim on a Linear(32,10) layer and on the
 * MNIST_S network.
 */
#include <cstdio>
#include <random>

#include "bench_util.h"
#include "nn/models.h"

using namespace pytfhe;

namespace {

uint64_t LinearGates(const hdl::DType& t) {
    nn::Linear lin(32, 10);
    // Integer dtypes need integer-scale weights or everything quantizes
    // to zero; use the same +-8 range for every type.
    std::mt19937_64 rng(9);
    std::uniform_real_distribution<double> dist(-8.0, 8.0);
    std::vector<double> w(320), bias(10);
    for (auto& v : w) v = dist(rng);
    for (auto& v : bias) v = dist(rng);
    lin.SetWeights(w, bias);
    auto c = core::CompileModule(lin, t, {32});
    return c ? c->program.NumGates() : 0;
}

uint64_t MnistGates(const hdl::DType& t) {
    nn::MnistConfig cfg;
    cfg.image = 10;
    auto c = core::CompileModule(*nn::MnistS(cfg), t,
                                 nn::MnistInputShape(cfg));
    return c ? c->program.NumGates() : 0;
}

}  // namespace

int main() {
    using hdl::DType;
    // MNIST rows use the model's native small weights, which only fixed
    // and float types can represent; integer rows report the Linear layer
    // with integer-scaled weights.
    const DType types[] = {
        DType::SInt(4),      DType::SInt(8),      DType::SInt(16),
        DType::Fixed(4, 4),  DType::Fixed(8, 8),  DType::Float(5, 6),
        DType::Float(8, 8),  DType::Float(5, 11), DType::Float(8, 23),
    };

    std::printf("=== Ablation: data type vs gate count ===\n\n");
    std::printf("%-14s %6s %14s %16s %16s\n", "dtype", "bits",
                "Linear(32,10)", "MNIST_S(10x10)", "1-core est. (s)");
    bench::PrintRule(72);
    const backend::CpuCostModel cpu;
    for (const DType& t : types) {
        const uint64_t lin = LinearGates(t);
        const bool integer = t.kind() == DType::Kind::kUInt ||
                             t.kind() == DType::Kind::kSInt;
        const uint64_t mnist = integer ? 0 : MnistGates(t);
        if (integer) {
            std::printf("%-14s %6d %14llu %16s %16s\n",
                        t.ToString().c_str(), t.TotalBits(),
                        static_cast<unsigned long long>(lin), "-", "-");
        } else {
            std::printf("%-14s %6d %14llu %16llu %16.1f\n",
                        t.ToString().c_str(), t.TotalBits(),
                        static_cast<unsigned long long>(lin),
                        static_cast<unsigned long long>(mnist),
                        mnist * cpu.bootstrap_gate_seconds);
        }
    }
    std::printf("\nFixed(4,4) -> Float(8,23) spans %.0fx in MNIST gate "
                "count; SInt(4) -> Float(8,23) spans %.0fx on the Linear "
                "layer: quantization is worth orders of magnitude.\n",
                static_cast<double>(MnistGates(DType::Float(8, 23))) /
                    MnistGates(DType::Fixed(4, 4)),
                static_cast<double>(LinearGates(DType::Float(8, 23))) /
                    LinearGates(DType::SInt(4)));
    return 0;
}
