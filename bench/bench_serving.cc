/**
 * @file
 * Serving-runtime benchmark: jobs/sec and latency percentiles for the
 * multi-job ServingExecutor against back-to-back Server::Run, at 1, 4,
 * and 16 concurrent clients on 8 shared workers. Emits
 * BENCH_serving.json.
 *
 * The story the numbers tell: one small encrypted job is nearly serial
 * (a ripple adder keeps ~1.3 workers busy), so giving it 8 threads
 * barely helps — but 16 *independent* jobs interleaved gate-by-gate
 * keep all 8 workers saturated and multiply throughput. Toy parameters
 * keep real encrypted bootstraps in the loop without hour-long runs.
 *
 * Gating: wall-clock throughput and percentiles are recorded for humans
 * (machine-noise caveat, like every wall_s metric); the deterministic
 * modeled_s_single_job from the CPU cost model is what bench_check
 * gates on. The acceptance headline `speedup_vs_sequential_1t` at
 * concurrency 16 is asserted here at runtime instead: the binary exits
 * nonzero below 3x, so regressions fail loudly at generation time.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "backend/arena.h"
#include "backend/cluster_sim.h"
#include "backend/serving.h"
#include "bench_util.h"
#include "core/key_cache.h"
#include "core/service.h"
#include "hdl/word_ops.h"
#include "pasm/assembler.h"
#include "pasm/memory_plan.h"
#include "tfhe/serialization.h"

// Counting global allocator for the allocs-per-gate metric in the memory
// suite. A relaxed fetch_add per allocation is noise next to a bootstrap,
// and the plain-suite numbers are regenerated with the same binary as
// their baseline, so the accounting does not skew any gated metric.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

circuit::Netlist AdderNetlist() {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    return b.netlist();
}

struct Percentiles {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

Percentiles ComputePercentiles(std::vector<double> latencies_s) {
    std::sort(latencies_s.begin(), latencies_s.end());
    auto at = [&](double q) {
        const size_t i = static_cast<size_t>(
            q * static_cast<double>(latencies_s.size() - 1) + 0.5);
        return latencies_s[i] * 1e3;
    };
    Percentiles p;
    p.p50_ms = at(0.50);
    p.p99_ms = at(0.99);
    return p;
}

struct Measurement {
    double jobs_per_s = 0.0;
    Percentiles lat;
};

/**
 * `concurrency` client threads each push `jobs_per_client` jobs
 * back-to-back through `submit` (which blocks until its job completes
 * and returns the job's wall latency in seconds).
 */
template <typename SubmitFn>
Measurement DriveClients(int concurrency, int jobs_per_client,
                         const SubmitFn& submit) {
    std::vector<double> latencies(
        static_cast<size_t>(concurrency) * jobs_per_client);
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(concurrency);
    for (int c = 0; c < concurrency; ++c) {
        clients.emplace_back([&, c] {
            for (int j = 0; j < jobs_per_client; ++j)
                latencies[static_cast<size_t>(c) * jobs_per_client + j] =
                    submit(c, j);
        });
    }
    for (auto& t : clients) t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    Measurement m;
    m.jobs_per_s = static_cast<double>(latencies.size()) / elapsed;
    m.lat = ComputePercentiles(std::move(latencies));
    return m;
}

constexpr int kWorkers = 8;
constexpr int kConcurrency[] = {1, 4, 16};

struct Suite {
    double seq_1t_jobs_per_s = 0.0;
    double seq_8t_jobs_per_s = 0.0;
    Measurement at_concurrency[3];
    double speedup_vs_sequential_1t = 0.0;  ///< Concurrency 16 vs seq 1t.
};

/** Encrypted suite: the full core::Service stack under toy parameters. */
Suite MeasureEncrypted(const pasm::Program& program) {
    Suite suite;
    core::Client client(tfhe::ToyParams(), /*seed=*/77);
    const auto key = client.MakeEvaluationKey();
    const core::Ciphertexts inputs =
        client.EncryptValues(hdl::DType::UInt(8), {161, 94});
    backend::TfheEvaluator eval(*key);
    const auto want = backend::RunProgram(program, eval, inputs);

    auto check = [&](const core::Ciphertexts& got) {
        if (got.size() != want.size()) std::abort();
        for (size_t i = 0; i < got.size(); ++i)
            if (got[i].a != want[i].a || got[i].b != want[i].b) {
                std::fprintf(stderr,
                             "serving output differs from sequential run "
                             "at bit %zu\n",
                             i);
                std::abort();
            }
    };

    // Baseline: one blocking Server::Run per job, back to back.
    {
        auto server = client.MakeServer();
        const auto seq_want = server->Run(program, inputs);
        for (auto [threads, slot] :
             {std::pair<int, double*>{1, &suite.seq_1t_jobs_per_s},
              {kWorkers, &suite.seq_8t_jobs_per_s}}) {
            core::RunOptions options;
            options.num_threads = threads;
            constexpr int kJobs = 24;
            const Clock::time_point t0 = Clock::now();
            for (int j = 0; j < kJobs; ++j) {
                const auto got = server->Run(program, inputs, options);
                if (client.DecryptBits(got) != client.DecryptBits(seq_want))
                    std::abort();
            }
            *slot = kJobs / std::chrono::duration<double>(Clock::now() - t0)
                                .count();
        }
    }

    for (size_t ci = 0; ci < 3; ++ci) {
        const int concurrency = kConcurrency[ci];
        core::ServiceOptions opts;
        opts.serving.num_workers = kWorkers;
        opts.serving.max_active_jobs = 16;
        opts.serving.max_pending_jobs = 64;
        core::Service service(opts);
        const core::KeyId id = service.RegisterTenant(key);
        const auto shared_program =
            std::make_shared<const pasm::Program>(program);
        const int jobs_per_client = concurrency == 1 ? 24 : 96 / concurrency;
        suite.at_concurrency[ci] = DriveClients(
            concurrency, jobs_per_client, [&](int, int) {
                core::JobHandle job =
                    service.Submit(id, shared_program, inputs);
                check(job.Get());
                return job.Metrics().wall_seconds;
            });
        std::printf("  encrypted c=%-2d  %8.2f jobs/s   p50 %7.2f ms   "
                    "p99 %7.2f ms\n",
                    concurrency, suite.at_concurrency[ci].jobs_per_s,
                    suite.at_concurrency[ci].lat.p50_ms,
                    suite.at_concurrency[ci].lat.p99_ms);
        std::fflush(stdout);
    }
    suite.speedup_vs_sequential_1t =
        suite.at_concurrency[2].jobs_per_s / suite.seq_1t_jobs_per_s;
    return suite;
}

/**
 * Plaintext suite: gate cost is ~ns, so this measures pure scheduler
 * overhead — the honest worst case for gate-level interleaving.
 */
Suite MeasurePlain(const pasm::Program& program) {
    Suite suite;
    backend::PlainEvaluator eval;
    std::vector<bool> inputs(program.NumInputs());
    for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = (i * 5) % 3 == 0;
    const auto want = backend::RunProgram(program, eval, inputs);

    {
        constexpr int kJobs = 4000;
        const Clock::time_point t0 = Clock::now();
        for (int j = 0; j < kJobs; ++j)
            if (backend::RunProgram(program, eval, inputs) != want)
                std::abort();
        suite.seq_1t_jobs_per_s =
            kJobs /
            std::chrono::duration<double>(Clock::now() - t0).count();
        suite.seq_8t_jobs_per_s = suite.seq_1t_jobs_per_s;  // 1t optimal.
    }

    for (size_t ci = 0; ci < 3; ++ci) {
        const int concurrency = kConcurrency[ci];
        backend::Executor executor;
        backend::ServingOptions opts;
        opts.num_workers = kWorkers;
        opts.max_active_jobs = 16;
        backend::ServingExecutor<backend::PlainEvaluator> serving(executor,
                                                                  opts);
        const auto shared_program =
            std::make_shared<const pasm::Program>(program);
        const int jobs_per_client = 2000 / concurrency;
        suite.at_concurrency[ci] = DriveClients(
            concurrency, jobs_per_client, [&](int, int) {
                auto job = serving.Submit(shared_program, eval, inputs);
                if (job->Outputs() != want) std::abort();
                return job->Metrics().wall_seconds;
            });
        std::printf("  plain     c=%-2d  %8.0f jobs/s   p50 %7.3f ms   "
                    "p99 %7.3f ms\n",
                    concurrency, suite.at_concurrency[ci].jobs_per_s,
                    suite.at_concurrency[ci].lat.p50_ms,
                    suite.at_concurrency[ci].lat.p99_ms);
        std::fflush(stdout);
    }
    suite.speedup_vs_sequential_1t =
        suite.at_concurrency[2].jobs_per_s / suite.seq_1t_jobs_per_s;
    return suite;
}

struct FaultedResult {
    double jobs_per_s = 0.0;
    double fault_free_jobs_per_s = 0.0;
    double recovery_overhead = 0.0;  ///< jobs/s lost to faults, fractional.
    unsigned long long retries = 0;
    unsigned long long faulted_jobs = 0;
    /** Gates re-executed / gates executed among completed jobs when every
     * retry restarts from scratch vs when it resumes from the last
     * wave-boundary checkpoint. */
    double reexec_fraction_no_ckpt = 0.0;
    double reexec_fraction_ckpt = 0.0;
    unsigned long long checkpoints_taken = 0;
    unsigned long long checkpoint_resumes = 0;
};

/**
 * Fault-tolerance scenario: transient gate faults injected into every
 * 4th job (25%) late in the program (ordinal ~3N/4, where a from-scratch
 * retry wastes the most work), RetryPolicy re-runs them, all outputs
 * stay bit-exact. The faulted block runs twice — without and with
 * ServingOptions::checkpoint — so the JSON reports the re-executed-gate
 * fraction each way; checkpointed resume must cut it at least 2x.
 */
FaultedResult MeasureFaulted(const pasm::Program& program) {
    backend::PlainEvaluator eval;
    std::vector<bool> inputs(program.NumInputs());
    for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = (i * 5) % 3 == 0;
    const auto want = backend::RunProgram(program, eval, inputs);
    const auto shared_program =
        std::make_shared<const pasm::Program>(program);
    constexpr int kConcurrentClients = 4;
    constexpr int kJobsPerClient = 500;

    enum Mode { kFaultFree, kFaulty, kFaultyCheckpointed };
    FaultedResult result;
    for (Mode mode : {kFaultFree, kFaulty, kFaultyCheckpointed}) {
        backend::FaultPlan plan;
        plan.fault_every_nth_job = 4;
        plan.fault_gate_ordinal = program.NumGates() * 3 / 4;
        plan.transient_clears_after = 1;
        backend::FaultInjector injector(plan);
        backend::Executor executor;
        backend::ServingOptions opts;
        opts.num_workers = kWorkers;
        opts.max_active_jobs = 16;
        if (mode != kFaultFree) {
            opts.fault_injector = &injector;
            opts.retry.max_attempts = 3;
        }
        if (mode == kFaultyCheckpointed) opts.checkpoint.every_n_levels = 2;
        backend::ServingExecutor<backend::PlainEvaluator> serving(executor,
                                                                  opts);
        const Measurement m = DriveClients(
            kConcurrentClients, kJobsPerClient, [&](int, int) {
                auto job = serving.Submit(shared_program, eval, inputs);
                if (job->Outputs() != want) std::abort();
                return job->Metrics().wall_seconds;
            });
        const backend::ServingStats stats = serving.stats();
        if (stats.jobs_failed != 0) std::abort();
        const double reexec =
            stats.gates_executed > 0
                ? static_cast<double>(stats.gates_reexecuted) /
                      static_cast<double>(stats.gates_executed)
                : 0.0;
        switch (mode) {
            case kFaultFree:
                result.fault_free_jobs_per_s = m.jobs_per_s;
                break;
            case kFaulty:
                result.jobs_per_s = m.jobs_per_s;
                result.retries = stats.job_retries;
                result.faulted_jobs = injector.counters().Total();
                result.reexec_fraction_no_ckpt = reexec;
                break;
            case kFaultyCheckpointed:
                result.reexec_fraction_ckpt = reexec;
                result.checkpoints_taken = stats.checkpoints_taken;
                result.checkpoint_resumes = stats.checkpoint_resumes;
                if (stats.checkpoint_resumes == 0) std::abort();
                break;
        }
    }
    result.recovery_overhead =
        result.fault_free_jobs_per_s > 0.0
            ? 1.0 - result.jobs_per_s / result.fault_free_jobs_per_s
            : 0.0;
    // Acceptance gate: resuming from wave-boundary checkpoints must cut
    // the re-executed-gate waste at least 2x at the 25% fault rate.
    if (result.reexec_fraction_ckpt * 2.0 > result.reexec_fraction_no_ckpt)
        std::abort();
    std::printf("  faulted   25%%   %8.0f jobs/s   (fault-free %8.0f, "
                "overhead %5.1f%%, %llu retries)\n",
                result.jobs_per_s, result.fault_free_jobs_per_s,
                result.recovery_overhead * 100.0, result.retries);
    std::printf("  reexec    25%%   %6.2f%% of gates w/o checkpoints, "
                "%6.2f%% with (%llu snapshots, %llu resumes)\n",
                result.reexec_fraction_no_ckpt * 100.0,
                result.reexec_fraction_ckpt * 100.0,
                result.checkpoints_taken, result.checkpoint_resumes);
    std::fflush(stdout);
    return result;
}

struct KeyCacheResult {
    uint64_t tenants = 0;
    uint64_t jobs = 0;
    uint64_t key_bytes = 0;       ///< Accounted size of one tenant key.
    uint64_t capacity_bytes = 0;  ///< Cache bound (fits 2 of 5 keys).
    core::KeyCacheStats stats;
};

/**
 * Key-cache economics on the REAL service: 5 tenants with real toy-param
 * evaluation keys registered as lazy FileKeySources (CRC32C artifacts on
 * disk), cache capacity 2 keys. A skewed trace (tenant 1 hot) forces
 * evictions and lazy reloads; every output is checked bit-exact against
 * an unlimited-capacity service running the same trace, and peak resident
 * bytes are asserted <= capacity. Aborts on any violation.
 */
KeyCacheResult MeasureKeyCache(const pasm::Program& program) {
    constexpr int kTenants = 5;
    const auto shared_program =
        std::make_shared<const pasm::Program>(program);

    std::vector<std::unique_ptr<core::Client>> clients;
    std::vector<std::shared_ptr<tfhe::GateEvaluator>> keys;
    std::vector<core::Ciphertexts> inputs;
    std::vector<int> expected;
    std::vector<std::string> artifacts;
    for (int t = 0; t < kTenants; ++t) {
        clients.push_back(std::make_unique<core::Client>(
            tfhe::ToyParams(), /*seed=*/1000 + t));
        keys.push_back(clients.back()->MakeEvaluationKey());
        const int x = 37 + 11 * t;
        const int y = 58 + 7 * t;
        expected.push_back((x + y) & 0xFF);
        inputs.push_back(clients.back()->EncryptValues(
            hdl::DType::UInt(8),
            {static_cast<double>(x), static_cast<double>(y)}));
        const std::string path =
            "bench_tenant_key_" + std::to_string(t) + ".ekey";
        std::ofstream os(path, std::ios::binary);
        tfhe::SaveEvaluationKey(os, keys.back()->key(),
                                keys.back()->key_id());
        artifacts.push_back(path);
    }

    KeyCacheResult result;
    result.tenants = kTenants;
    result.key_bytes = core::EvaluationKeyBytes(*keys[0]);

    // Skewed trace: tenant 0 between every other access, so the LRU keeps
    // the hot key while tenants 1..4 cycle through the remaining slot.
    std::vector<int> trace;
    for (int round = 0; round < 3; ++round)
        for (int t = 1; t < kTenants; ++t) {
            trace.push_back(0);
            trace.push_back(t);
        }
    result.jobs = trace.size();

    // Reference: unlimited capacity, keys registered directly.
    std::vector<core::Ciphertexts> want(trace.size());
    {
        core::Service service;
        for (int t = 0; t < kTenants; ++t) service.RegisterTenant(keys[t]);
        for (size_t i = 0; i < trace.size(); ++i) {
            const int t = trace[i];
            want[i] = service
                          .Submit(keys[t]->key_id(), shared_program,
                                  inputs[t])
                          .Get();
        }
    }

    core::ServiceOptions opts;
    opts.key_cache_capacity_bytes = 2 * result.key_bytes;
    result.capacity_bytes = opts.key_cache_capacity_bytes;
    core::Service service(opts);
    for (int t = 0; t < kTenants; ++t)
        service.RegisterTenantSource(keys[t]->key_id(),
                                     core::FileKeySource(artifacts[t]));
    for (size_t i = 0; i < trace.size(); ++i) {
        const int t = trace[i];
        const core::JobHandle job =
            service.Submit(keys[t]->key_id(), shared_program, inputs[t]);
        const core::Ciphertexts& got = job.Get();
        if (got.size() != want[i].size()) std::abort();
        for (size_t b = 0; b < got.size(); ++b)
            if (got[b].a != want[i][b].a || got[b].b != want[i][b].b) {
                std::fprintf(stderr,
                             "key-cache output differs from always-"
                             "resident run at job %zu bit %zu\n",
                             i, b);
                std::abort();
            }
        const auto bits = clients[t]->DecryptBits(got);
        int value = 0;
        for (size_t b = 0; b < bits.size(); ++b)
            value |= (bits[b] ? 1 : 0) << b;
        if (value != expected[t]) {
            std::fprintf(stderr,
                         "key-cache decrypt mismatch: tenant %d got %d "
                         "want %d\n",
                         t, value, expected[t]);
            std::abort();
        }
    }
    result.stats = service.stats().key_cache;
    for (const std::string& path : artifacts) std::remove(path.c_str());

    if (result.stats.peak_resident_bytes > result.capacity_bytes) {
        std::fprintf(stderr,
                     "FAIL: peak resident key bytes %llu exceed the "
                     "cache capacity %llu\n",
                     static_cast<unsigned long long>(
                         result.stats.peak_resident_bytes),
                     static_cast<unsigned long long>(
                         result.capacity_bytes));
        std::abort();
    }
    if (result.stats.reloads == 0 || result.stats.evictions == 0) {
        std::fprintf(stderr,
                     "FAIL: key-cache scenario exercised no "
                     "eviction/reload\n");
        std::abort();
    }
    std::printf("  key-cache 5 tenants, capacity 2 keys: hit rate %.2f, "
                "%llu reloads (%.3f s), peak resident %.1f MB\n",
                result.stats.HitRate(),
                static_cast<unsigned long long>(result.stats.reloads),
                result.stats.reload_seconds,
                static_cast<double>(result.stats.peak_resident_bytes) /
                    1048576.0);
    std::fflush(stdout);
    return result;
}

struct ShardedResult {
    uint64_t tenants = 0;
    uint64_t requests = 0;
    uint32_t shards = 0;
    uint64_t fleet_key_slots = 0;  ///< Keys the whole fleet can hold.
    backend::ShardedServingResult affinity;
    backend::ShardedServingResult least_loaded;
    backend::ShardedServingResult overload;
};

/**
 * Sharded front-end simulation: a Zipf(1.1) trace over 100k tenants
 * (fleet capacity 512 keys — 0.5% of the key population) through 8
 * shards. Three runs: key-affinity routing at 70% utilization,
 * least-loaded routing at the same load (the locality/balance
 * counterfactual), and key-affinity at 110% utilization with per-epoch
 * shard failures (p99 under overload + key movement). All modeled time:
 * deterministic, so the latency quantiles gate in bench_check.
 */
ShardedResult MeasureSharded(const pasm::Program& program) {
    ShardedResult result;
    result.tenants = 100000;
    result.requests = 200000;
    const double service_s = bench::SingleCoreSeconds(program);

    backend::ShardingConfig cfg;
    cfg.shards = 8;
    cfg.vnodes_per_shard = 64;
    cfg.key_bytes = 59ull << 20;  // Paper-scale bootstrapping key, ~59 MB.
    cfg.shard_cache_capacity_bytes = 64 * cfg.key_bytes;  // 64 keys/shard.
    cfg.reload_seconds =
        static_cast<double>(cfg.key_bytes) / 1e9;  // 1 GB/s fetch.
    cfg.seed = 7;
    result.shards = cfg.shards;
    result.fleet_key_slots = 64ull * cfg.shards;

    auto trace_at = [&](double utilization) {
        return backend::MakeZipfTrace(
            result.tenants, result.requests, /*zipf_s=*/1.1,
            service_s / (cfg.shards * utilization), service_s,
            /*seed=*/42);
    };

    cfg.routing = backend::ShardRouting::kKeyAffinity;
    result.affinity = backend::SimulateShardedServing(trace_at(0.7), cfg);

    cfg.routing = backend::ShardRouting::kLeastLoaded;
    result.least_loaded =
        backend::SimulateShardedServing(trace_at(0.7), cfg);

    cfg.routing = backend::ShardRouting::kKeyAffinity;
    cfg.epoch_seconds = 500.0 * service_s;
    cfg.faults.seed = 11;
    cfg.faults.task_failure_rate = 0.02;  // Per-epoch shard death.
    cfg.faults.detect_seconds = 5.0 * service_s;
    result.overload = backend::SimulateShardedServing(trace_at(1.1), cfg);

    // The whole point of affinity routing: strictly better key locality
    // than spraying requests across shards.
    if (result.affinity.HitRate() <= result.least_loaded.HitRate()) {
        std::fprintf(stderr,
                     "FAIL: affinity routing hit rate %.3f not above "
                     "least-loaded %.3f\n",
                     result.affinity.HitRate(),
                     result.least_loaded.HitRate());
        std::abort();
    }
    if (result.affinity.peak_resident_bytes >
        cfg.shard_cache_capacity_bytes) {
        std::fprintf(stderr, "FAIL: shard cache exceeded its capacity\n");
        std::abort();
    }
    std::printf("  sharded %llu tenants / %u shards: affinity hit %.3f "
                "p99 %.2f s | least-loaded hit %.3f | overload p99 %.1f "
                "s, %llu moved keys, %llu shard failures\n",
                static_cast<unsigned long long>(result.tenants),
                cfg.shards, result.affinity.HitRate(),
                result.affinity.p99_latency_seconds,
                result.least_loaded.HitRate(),
                result.overload.p99_latency_seconds,
                static_cast<unsigned long long>(
                    result.overload.moved_keys),
                static_cast<unsigned long long>(
                    result.overload.shard_failures));
    std::fflush(stdout);
    return result;
}

struct MemoryResult {
    uint64_t gates = 0;
    uint64_t values = 0;      ///< Inputs + gate results (unplanned slots).
    uint64_t plan_slots = 0;  ///< Physical slots after linear-scan reuse.
    uint64_t arena_bytes_planned = 0;    ///< Per-job ciphertext residency.
    uint64_t arena_bytes_unplanned = 0;  ///< One slot per value (pre-plan).
    double reduction_x = 0.0;
    double allocs_per_gate_planned = 0.0;
    double allocs_per_gate_legacy = 0.0;  ///< Object-per-value execution.
};

/**
 * Memory-planning suite: the per-job ciphertext residency story.
 *
 * Peak-RSS-per-job proxy: a 32x32 array multiplier (the deepest DAG in
 * the bench set) compiled with and without a memory plan; the arena byte
 * requirement is exact — slots x aligned sample size — and deterministic,
 * so it gates in bench_check, with the >= 4x reduction bar asserted here
 * at generation time like the serving 3x bar.
 *
 * Allocs-per-gate, by the same delta method as the arena allocation
 * tests: a 64-gate NAND chain and a 32-gate chain cost the same per-run
 * overhead (equal slot counts when planned), so any allocation-count
 * difference between real encrypted runs is per-gate cost. The arena
 * core must measure 0 (slab in, slab out, warm scratch); the "before" is
 * the object-per-value style — each gate materializing a fresh
 * ciphertext through the value-returning Apply, as the interpreter did
 * before the arena plane.
 */
MemoryResult MeasureMemory() {
    MemoryResult result;

    // --- Arena residency on the multiplier32 DAG. ---
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 32, "x");
    const hdl::Bits y = hdl::InputBits(b, 32, "y");
    hdl::OutputBits(b, hdl::UMul(b, x, y, 32), "prod");
    auto mul = core::Compile(b.netlist());
    if (!mul || mul->program.Plan() == nullptr) {
        std::fprintf(stderr, "multiplier32 compile produced no plan\n");
        std::abort();
    }
    const pasm::Program& prog = mul->program;
    result.gates = prog.NumGates();
    result.values = prog.FirstGateIndex() + prog.NumGates();
    result.plan_slots = prog.Plan()->num_slots;

    core::Client client(tfhe::ToyParams(), /*seed=*/55);
    const core::Ciphertexts mul_inputs = client.EncryptValues(
        hdl::DType::UInt(32), {3405691582.0, 2882400001.0});
    using Plane = backend::ValuePlane<backend::TfheEvaluator>;
    result.arena_bytes_planned =
        Plane::RequiredBytes(prog, mul_inputs, /*use_plan=*/true);
    result.arena_bytes_unplanned =
        Plane::RequiredBytes(prog, mul_inputs, /*use_plan=*/false);
    result.reduction_x =
        static_cast<double>(result.arena_bytes_unplanned) /
        static_cast<double>(result.arena_bytes_planned);
    if (result.reduction_x < 4.0) {
        std::fprintf(stderr,
                     "FAIL: planned arena %.2fx smaller than unplanned on "
                     "multiplier32, below the 4x acceptance bar\n",
                     result.reduction_x);
        std::abort();
    }

    // --- Allocs per gate on real encrypted NAND chains. ---
    auto chain = [](int32_t length) {
        circuit::Netlist n;
        const circuit::NodeId a = n.AddInput();
        circuit::NodeId cur = a;
        for (int32_t i = 0; i < length; ++i)
            cur = n.AddGate(circuit::GateType::kNand, cur, a);
        n.AddOutput(cur);
        auto p = pasm::Assemble(n);
        if (!p) std::abort();
        auto with_plan = p->WithPlan(pasm::ComputeMemoryPlan(*p));
        if (!with_plan) std::abort();
        return std::move(*with_plan);
    };
    tfhe::Rng rng(71);
    tfhe::SecretKeySet secret(tfhe::ToyParams(), rng);
    tfhe::GateEvaluator gates(secret, rng);
    backend::TfheEvaluator eval(gates);
    std::vector<tfhe::LweSample> inputs;
    inputs.push_back(secret.Encrypt(true, rng));

    auto delta_per_gate = [](const auto& run) {
        run(64);  // Warm FFT plans and scratch.
        const uint64_t b_half = g_alloc_count.load();
        run(32);
        const uint64_t half_allocs = g_alloc_count.load() - b_half;
        const uint64_t b_full = g_alloc_count.load();
        run(64);
        const uint64_t full_allocs = g_alloc_count.load() - b_full;
        return full_allocs > half_allocs
                   ? static_cast<double>(full_allocs - half_allocs) / 32.0
                   : 0.0;
    };
    const pasm::Program half_chain = chain(32);
    const pasm::Program full_chain = chain(64);
    result.allocs_per_gate_planned = delta_per_gate([&](int32_t length) {
        (void)backend::RunProgram(length == 64 ? full_chain : half_chain,
                                  eval, inputs);
    });
    tfhe::BootstrapScratch scratch;
    result.allocs_per_gate_legacy = delta_per_gate([&](int32_t length) {
        std::vector<tfhe::LweSample> vals;
        vals.reserve(static_cast<size_t>(length) + 1);
        vals.push_back(inputs[0]);
        for (int32_t i = 0; i < length; ++i)
            vals.push_back(eval.Apply(circuit::GateType::kNand,
                                      vals.back(), vals[0], scratch));
    });
    if (result.allocs_per_gate_planned != 0.0) {
        std::fprintf(stderr,
                     "FAIL: planned execution allocates %.2f times per "
                     "gate in steady state (want 0)\n",
                     result.allocs_per_gate_planned);
        std::abort();
    }

    std::printf("  memory    umul32 %llu gates: %llu slots for %llu "
                "values, %.1f MB -> %.1f MB per job (%.1fx); allocs/gate "
                "%.2f -> %.2f\n",
                static_cast<unsigned long long>(result.gates),
                static_cast<unsigned long long>(result.plan_slots),
                static_cast<unsigned long long>(result.values),
                static_cast<double>(result.arena_bytes_unplanned) /
                    1048576.0,
                static_cast<double>(result.arena_bytes_planned) / 1048576.0,
                result.reduction_x, result.allocs_per_gate_legacy,
                result.allocs_per_gate_planned);
    std::fflush(stdout);
    return result;
}

void WriteShardRun(FILE* out, const char* name,
                   const backend::ShardedServingResult& r,
                   bool trailing_comma) {
    std::fprintf(out,
                 "    \"%s\": {\"hit_rate\": %.4f, \"modeled_s_p50\": "
                 "%.4f, \"modeled_s_p99\": %.4f, "
                 "\"modeled_s_reload_total\": %.2f, \"load_imbalance\": "
                 "%.3f, \"evictions\": %llu, \"moved_keys\": %llu, "
                 "\"shard_failures\": %llu}%s\n",
                 name, r.HitRate(), r.p50_latency_seconds,
                 r.p99_latency_seconds, r.reload_total_seconds,
                 r.load_imbalance,
                 static_cast<unsigned long long>(r.evictions),
                 static_cast<unsigned long long>(r.moved_keys),
                 static_cast<unsigned long long>(r.shard_failures),
                 trailing_comma ? "," : "");
}

void WriteSuite(FILE* out, const char* name, const Suite& s,
                bool trailing_comma) {
    std::fprintf(out, "  \"%s\": {\n", name);
    std::fprintf(out, "    \"seq_1t\": {\"jobs_per_s\": %.2f},\n",
                 s.seq_1t_jobs_per_s);
    std::fprintf(out, "    \"seq_8t\": {\"jobs_per_s\": %.2f},\n",
                 s.seq_8t_jobs_per_s);
    for (size_t ci = 0; ci < 3; ++ci) {
        std::fprintf(out,
                     "    \"c%d\": {\"jobs_per_s\": %.2f, "
                     "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
                     kConcurrency[ci], s.at_concurrency[ci].jobs_per_s,
                     s.at_concurrency[ci].lat.p50_ms,
                     s.at_concurrency[ci].lat.p99_ms);
    }
    std::fprintf(out, "    \"speedup_vs_sequential_1t\": %.2f\n",
                 s.speedup_vs_sequential_1t);
    std::fprintf(out, "  }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main() {
    std::printf("# bench_serving: 8-bit ripple adder, %d workers\n",
                kWorkers);
    std::fflush(stdout);

    auto compiled = core::Compile(AdderNetlist());
    if (!compiled) {
        std::fprintf(stderr, "adder compile failed\n");
        return 1;
    }
    const pasm::Program& program = compiled->program;

    const MemoryResult memory = MeasureMemory();
    const Suite plain = MeasurePlain(program);
    const FaultedResult faulted = MeasureFaulted(program);
    const KeyCacheResult key_cache = MeasureKeyCache(program);
    const ShardedResult sharded = MeasureSharded(program);
    const Suite encrypted = MeasureEncrypted(program);

    FILE* out = std::fopen("BENCH_serving.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open BENCH_serving.json\n");
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"serving\",\n");
    std::fprintf(out, "  \"params\": \"toy\",\n");
    std::fprintf(out, "  \"workers\": %d,\n", kWorkers);
    std::fprintf(out, "  \"gates_per_job\": %llu,\n",
                 static_cast<unsigned long long>(program.NumGates()));
    std::fprintf(out, "  \"modeled_s_single_job\": %.4f,\n",
                 bench::SingleCoreSeconds(program));
    std::fprintf(out,
                 "  \"memory\": {\"dag\": \"umul32\", \"gates\": %llu, "
                 "\"values\": %llu, \"plan_slots\": %llu, "
                 "\"arena_bytes_planned_per_job\": %llu, "
                 "\"arena_bytes_unplanned_per_job\": %llu, "
                 "\"arena_reduction_x\": %.2f, "
                 "\"allocs_per_gate_planned\": %.4f, "
                 "\"allocs_per_gate_legacy\": %.4f},\n",
                 static_cast<unsigned long long>(memory.gates),
                 static_cast<unsigned long long>(memory.values),
                 static_cast<unsigned long long>(memory.plan_slots),
                 static_cast<unsigned long long>(
                     memory.arena_bytes_planned),
                 static_cast<unsigned long long>(
                     memory.arena_bytes_unplanned),
                 memory.reduction_x, memory.allocs_per_gate_planned,
                 memory.allocs_per_gate_legacy);
    WriteSuite(out, "plain", plain, /*trailing_comma=*/true);
    std::fprintf(out,
                 "  \"faulted\": {\"fault_rate_jobs\": 0.25, "
                 "\"jobs_per_s\": %.2f, \"fault_free_jobs_per_s\": %.2f, "
                 "\"recovery_overhead\": %.4f, \"retries\": %llu, "
                 "\"faulted_jobs\": %llu, "
                 "\"reexec_fraction_no_ckpt\": %.4f, "
                 "\"reexec_fraction_ckpt\": %.4f, "
                 "\"checkpoints_taken\": %llu, "
                 "\"checkpoint_resumes\": %llu},\n",
                 faulted.jobs_per_s, faulted.fault_free_jobs_per_s,
                 faulted.recovery_overhead, faulted.retries,
                 faulted.faulted_jobs, faulted.reexec_fraction_no_ckpt,
                 faulted.reexec_fraction_ckpt, faulted.checkpoints_taken,
                 faulted.checkpoint_resumes);
    std::fprintf(out,
                 "  \"key_cache\": {\"tenants\": %llu, \"jobs\": %llu, "
                 "\"key_bytes\": %llu, \"capacity_bytes\": %llu, "
                 "\"hit_rate\": %.4f, \"reloads\": %llu, \"evictions\": "
                 "%llu, \"peak_resident_bytes\": %llu, "
                 "\"peak_total_bytes\": %llu, \"wall_s_reload_total\": "
                 "%.4f},\n",
                 static_cast<unsigned long long>(key_cache.tenants),
                 static_cast<unsigned long long>(key_cache.jobs),
                 static_cast<unsigned long long>(key_cache.key_bytes),
                 static_cast<unsigned long long>(key_cache.capacity_bytes),
                 key_cache.stats.HitRate(),
                 static_cast<unsigned long long>(key_cache.stats.reloads),
                 static_cast<unsigned long long>(
                     key_cache.stats.evictions),
                 static_cast<unsigned long long>(
                     key_cache.stats.peak_resident_bytes),
                 static_cast<unsigned long long>(
                     key_cache.stats.peak_total_bytes),
                 key_cache.stats.reload_seconds);
    std::fprintf(out,
                 "  \"sharded\": {\"tenants\": %llu, \"requests\": %llu, "
                 "\"shards\": %u, \"fleet_key_slots\": %llu, \"zipf_s\": "
                 "1.1,\n",
                 static_cast<unsigned long long>(sharded.tenants),
                 static_cast<unsigned long long>(sharded.requests),
                 sharded.shards,
                 static_cast<unsigned long long>(sharded.fleet_key_slots));
    WriteShardRun(out, "affinity", sharded.affinity,
                  /*trailing_comma=*/true);
    WriteShardRun(out, "least_loaded", sharded.least_loaded,
                  /*trailing_comma=*/true);
    WriteShardRun(out, "overload_faulted", sharded.overload,
                  /*trailing_comma=*/false);
    std::fprintf(out, "  },\n");
    WriteSuite(out, "encrypted", encrypted, /*trailing_comma=*/false);
    std::fprintf(out, "}\n");
    std::fclose(out);

    std::printf("# encrypted speedup at c=16 vs sequential 1t: %.2fx\n",
                encrypted.speedup_vs_sequential_1t);
    // The 3x bar presumes cores for the workers to land on; on a 1-2 core
    // machine gate-level interleaving can only amortize per-call setup, so
    // the assertion would test the container, not the scheduler.
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores >= 4 && encrypted.speedup_vs_sequential_1t < 3.0) {
        std::fprintf(stderr,
                     "FAIL: serving throughput below the 3x acceptance "
                     "bar on %u cores\n",
                     cores);
        return 1;
    }
    if (cores < 4)
        std::printf("# note: only %u core(s) visible; 3x bar not "
                    "enforced\n",
                    cores);
    std::printf("# wrote BENCH_serving.json\n");
    return 0;
}
