/**
 * @file
 * Serving-runtime benchmark: jobs/sec and latency percentiles for the
 * multi-job ServingExecutor against back-to-back Server::Run, at 1, 4,
 * and 16 concurrent clients on 8 shared workers. Emits
 * BENCH_serving.json.
 *
 * The story the numbers tell: one small encrypted job is nearly serial
 * (a ripple adder keeps ~1.3 workers busy), so giving it 8 threads
 * barely helps — but 16 *independent* jobs interleaved gate-by-gate
 * keep all 8 workers saturated and multiply throughput. Toy parameters
 * keep real encrypted bootstraps in the loop without hour-long runs.
 *
 * Gating: wall-clock throughput and percentiles are recorded for humans
 * (machine-noise caveat, like every wall_s metric); the deterministic
 * modeled_s_single_job from the CPU cost model is what bench_check
 * gates on. The acceptance headline `speedup_vs_sequential_1t` at
 * concurrency 16 is asserted here at runtime instead: the binary exits
 * nonzero below 3x, so regressions fail loudly at generation time.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "backend/serving.h"
#include "bench_util.h"
#include "core/service.h"
#include "hdl/word_ops.h"

using namespace pytfhe;

namespace {

using Clock = std::chrono::steady_clock;

circuit::Netlist AdderNetlist() {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    return b.netlist();
}

struct Percentiles {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

Percentiles ComputePercentiles(std::vector<double> latencies_s) {
    std::sort(latencies_s.begin(), latencies_s.end());
    auto at = [&](double q) {
        const size_t i = static_cast<size_t>(
            q * static_cast<double>(latencies_s.size() - 1) + 0.5);
        return latencies_s[i] * 1e3;
    };
    Percentiles p;
    p.p50_ms = at(0.50);
    p.p99_ms = at(0.99);
    return p;
}

struct Measurement {
    double jobs_per_s = 0.0;
    Percentiles lat;
};

/**
 * `concurrency` client threads each push `jobs_per_client` jobs
 * back-to-back through `submit` (which blocks until its job completes
 * and returns the job's wall latency in seconds).
 */
template <typename SubmitFn>
Measurement DriveClients(int concurrency, int jobs_per_client,
                         const SubmitFn& submit) {
    std::vector<double> latencies(
        static_cast<size_t>(concurrency) * jobs_per_client);
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(concurrency);
    for (int c = 0; c < concurrency; ++c) {
        clients.emplace_back([&, c] {
            for (int j = 0; j < jobs_per_client; ++j)
                latencies[static_cast<size_t>(c) * jobs_per_client + j] =
                    submit(c, j);
        });
    }
    for (auto& t : clients) t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    Measurement m;
    m.jobs_per_s = static_cast<double>(latencies.size()) / elapsed;
    m.lat = ComputePercentiles(std::move(latencies));
    return m;
}

constexpr int kWorkers = 8;
constexpr int kConcurrency[] = {1, 4, 16};

struct Suite {
    double seq_1t_jobs_per_s = 0.0;
    double seq_8t_jobs_per_s = 0.0;
    Measurement at_concurrency[3];
    double speedup_vs_sequential_1t = 0.0;  ///< Concurrency 16 vs seq 1t.
};

/** Encrypted suite: the full core::Service stack under toy parameters. */
Suite MeasureEncrypted(const pasm::Program& program) {
    Suite suite;
    core::Client client(tfhe::ToyParams(), /*seed=*/77);
    const auto key = client.MakeEvaluationKey();
    const core::Ciphertexts inputs =
        client.EncryptValues(hdl::DType::UInt(8), {161, 94});
    backend::TfheEvaluator eval(*key);
    const auto want = backend::RunProgram(program, eval, inputs);

    auto check = [&](const core::Ciphertexts& got) {
        if (got.size() != want.size()) std::abort();
        for (size_t i = 0; i < got.size(); ++i)
            if (got[i].a != want[i].a || got[i].b != want[i].b) {
                std::fprintf(stderr,
                             "serving output differs from sequential run "
                             "at bit %zu\n",
                             i);
                std::abort();
            }
    };

    // Baseline: one blocking Server::Run per job, back to back.
    {
        auto server = client.MakeServer();
        const auto seq_want = server->Run(program, inputs);
        for (auto [threads, slot] :
             {std::pair<int, double*>{1, &suite.seq_1t_jobs_per_s},
              {kWorkers, &suite.seq_8t_jobs_per_s}}) {
            core::RunOptions options;
            options.num_threads = threads;
            constexpr int kJobs = 24;
            const Clock::time_point t0 = Clock::now();
            for (int j = 0; j < kJobs; ++j) {
                const auto got = server->Run(program, inputs, options);
                if (client.DecryptBits(got) != client.DecryptBits(seq_want))
                    std::abort();
            }
            *slot = kJobs / std::chrono::duration<double>(Clock::now() - t0)
                                .count();
        }
    }

    for (size_t ci = 0; ci < 3; ++ci) {
        const int concurrency = kConcurrency[ci];
        core::ServiceOptions opts;
        opts.serving.num_workers = kWorkers;
        opts.serving.max_active_jobs = 16;
        opts.serving.max_pending_jobs = 64;
        core::Service service(opts);
        const core::KeyId id = service.RegisterTenant(key);
        const auto shared_program =
            std::make_shared<const pasm::Program>(program);
        const int jobs_per_client = concurrency == 1 ? 24 : 96 / concurrency;
        suite.at_concurrency[ci] = DriveClients(
            concurrency, jobs_per_client, [&](int, int) {
                core::JobHandle job =
                    service.Submit(id, shared_program, inputs);
                check(job.Get());
                return job.Metrics().wall_seconds;
            });
        std::printf("  encrypted c=%-2d  %8.2f jobs/s   p50 %7.2f ms   "
                    "p99 %7.2f ms\n",
                    concurrency, suite.at_concurrency[ci].jobs_per_s,
                    suite.at_concurrency[ci].lat.p50_ms,
                    suite.at_concurrency[ci].lat.p99_ms);
        std::fflush(stdout);
    }
    suite.speedup_vs_sequential_1t =
        suite.at_concurrency[2].jobs_per_s / suite.seq_1t_jobs_per_s;
    return suite;
}

/**
 * Plaintext suite: gate cost is ~ns, so this measures pure scheduler
 * overhead — the honest worst case for gate-level interleaving.
 */
Suite MeasurePlain(const pasm::Program& program) {
    Suite suite;
    backend::PlainEvaluator eval;
    std::vector<bool> inputs(program.NumInputs());
    for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = (i * 5) % 3 == 0;
    const auto want = backend::RunProgram(program, eval, inputs);

    {
        constexpr int kJobs = 4000;
        const Clock::time_point t0 = Clock::now();
        for (int j = 0; j < kJobs; ++j)
            if (backend::RunProgram(program, eval, inputs) != want)
                std::abort();
        suite.seq_1t_jobs_per_s =
            kJobs /
            std::chrono::duration<double>(Clock::now() - t0).count();
        suite.seq_8t_jobs_per_s = suite.seq_1t_jobs_per_s;  // 1t optimal.
    }

    for (size_t ci = 0; ci < 3; ++ci) {
        const int concurrency = kConcurrency[ci];
        backend::Executor executor;
        backend::ServingOptions opts;
        opts.num_workers = kWorkers;
        opts.max_active_jobs = 16;
        backend::ServingExecutor<backend::PlainEvaluator> serving(executor,
                                                                  opts);
        const auto shared_program =
            std::make_shared<const pasm::Program>(program);
        const int jobs_per_client = 2000 / concurrency;
        suite.at_concurrency[ci] = DriveClients(
            concurrency, jobs_per_client, [&](int, int) {
                auto job = serving.Submit(shared_program, eval, inputs);
                if (job->Outputs() != want) std::abort();
                return job->Metrics().wall_seconds;
            });
        std::printf("  plain     c=%-2d  %8.0f jobs/s   p50 %7.3f ms   "
                    "p99 %7.3f ms\n",
                    concurrency, suite.at_concurrency[ci].jobs_per_s,
                    suite.at_concurrency[ci].lat.p50_ms,
                    suite.at_concurrency[ci].lat.p99_ms);
        std::fflush(stdout);
    }
    suite.speedup_vs_sequential_1t =
        suite.at_concurrency[2].jobs_per_s / suite.seq_1t_jobs_per_s;
    return suite;
}

struct FaultedResult {
    double jobs_per_s = 0.0;
    double fault_free_jobs_per_s = 0.0;
    double recovery_overhead = 0.0;  ///< jobs/s lost to faults, fractional.
    unsigned long long retries = 0;
    unsigned long long faulted_jobs = 0;
};

/**
 * Fault-tolerance scenario: transient gate faults injected into every
 * 4th job (25%), RetryPolicy re-runs them, all outputs stay bit-exact.
 * The recovery overhead is the throughput cost of retrying a quarter of
 * the jobs — the price of surviving a flaky worker.
 */
FaultedResult MeasureFaulted(const pasm::Program& program) {
    backend::PlainEvaluator eval;
    std::vector<bool> inputs(program.NumInputs());
    for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = (i * 5) % 3 == 0;
    const auto want = backend::RunProgram(program, eval, inputs);
    const auto shared_program =
        std::make_shared<const pasm::Program>(program);
    constexpr int kConcurrentClients = 4;
    constexpr int kJobsPerClient = 500;

    FaultedResult result;
    for (bool faulty : {false, true}) {
        backend::FaultPlan plan;
        plan.fault_every_nth_job = 4;
        plan.transient_clears_after = 1;
        backend::FaultInjector injector(plan);
        backend::Executor executor;
        backend::ServingOptions opts;
        opts.num_workers = kWorkers;
        opts.max_active_jobs = 16;
        if (faulty) {
            opts.fault_injector = &injector;
            opts.retry.max_attempts = 3;
        }
        backend::ServingExecutor<backend::PlainEvaluator> serving(executor,
                                                                  opts);
        const Measurement m = DriveClients(
            kConcurrentClients, kJobsPerClient, [&](int, int) {
                auto job = serving.Submit(shared_program, eval, inputs);
                if (job->Outputs() != want) std::abort();
                return job->Metrics().wall_seconds;
            });
        const backend::ServingStats stats = serving.stats();
        if (stats.jobs_failed != 0) std::abort();
        if (faulty) {
            result.jobs_per_s = m.jobs_per_s;
            result.retries = stats.job_retries;
            result.faulted_jobs = injector.counters().Total();
        } else {
            result.fault_free_jobs_per_s = m.jobs_per_s;
        }
    }
    result.recovery_overhead =
        result.fault_free_jobs_per_s > 0.0
            ? 1.0 - result.jobs_per_s / result.fault_free_jobs_per_s
            : 0.0;
    std::printf("  faulted   25%%   %8.0f jobs/s   (fault-free %8.0f, "
                "overhead %5.1f%%, %llu retries)\n",
                result.jobs_per_s, result.fault_free_jobs_per_s,
                result.recovery_overhead * 100.0, result.retries);
    std::fflush(stdout);
    return result;
}

void WriteSuite(FILE* out, const char* name, const Suite& s,
                bool trailing_comma) {
    std::fprintf(out, "  \"%s\": {\n", name);
    std::fprintf(out, "    \"seq_1t\": {\"jobs_per_s\": %.2f},\n",
                 s.seq_1t_jobs_per_s);
    std::fprintf(out, "    \"seq_8t\": {\"jobs_per_s\": %.2f},\n",
                 s.seq_8t_jobs_per_s);
    for (size_t ci = 0; ci < 3; ++ci) {
        std::fprintf(out,
                     "    \"c%d\": {\"jobs_per_s\": %.2f, "
                     "\"p50_ms\": %.3f, \"p99_ms\": %.3f},\n",
                     kConcurrency[ci], s.at_concurrency[ci].jobs_per_s,
                     s.at_concurrency[ci].lat.p50_ms,
                     s.at_concurrency[ci].lat.p99_ms);
    }
    std::fprintf(out, "    \"speedup_vs_sequential_1t\": %.2f\n",
                 s.speedup_vs_sequential_1t);
    std::fprintf(out, "  }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main() {
    std::printf("# bench_serving: 8-bit ripple adder, %d workers\n",
                kWorkers);
    std::fflush(stdout);

    auto compiled = core::Compile(AdderNetlist());
    if (!compiled) {
        std::fprintf(stderr, "adder compile failed\n");
        return 1;
    }
    const pasm::Program& program = compiled->program;

    const Suite plain = MeasurePlain(program);
    const FaultedResult faulted = MeasureFaulted(program);
    const Suite encrypted = MeasureEncrypted(program);

    FILE* out = std::fopen("BENCH_serving.json", "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open BENCH_serving.json\n");
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"serving\",\n");
    std::fprintf(out, "  \"params\": \"toy\",\n");
    std::fprintf(out, "  \"workers\": %d,\n", kWorkers);
    std::fprintf(out, "  \"gates_per_job\": %llu,\n",
                 static_cast<unsigned long long>(program.NumGates()));
    std::fprintf(out, "  \"modeled_s_single_job\": %.4f,\n",
                 bench::SingleCoreSeconds(program));
    WriteSuite(out, "plain", plain, /*trailing_comma=*/true);
    std::fprintf(out,
                 "  \"faulted\": {\"fault_rate_jobs\": 0.25, "
                 "\"jobs_per_s\": %.2f, \"fault_free_jobs_per_s\": %.2f, "
                 "\"recovery_overhead\": %.4f, \"retries\": %llu, "
                 "\"faulted_jobs\": %llu},\n",
                 faulted.jobs_per_s, faulted.fault_free_jobs_per_s,
                 faulted.recovery_overhead, faulted.retries,
                 faulted.faulted_jobs);
    WriteSuite(out, "encrypted", encrypted, /*trailing_comma=*/false);
    std::fprintf(out, "}\n");
    std::fclose(out);

    std::printf("# encrypted speedup at c=16 vs sequential 1t: %.2fx\n",
                encrypted.speedup_vs_sequential_1t);
    // The 3x bar presumes cores for the workers to land on; on a 1-2 core
    // machine gate-level interleaving can only amortize per-call setup, so
    // the assertion would test the container, not the scheduler.
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores >= 4 && encrypted.speedup_vs_sequential_1t < 3.0) {
        std::fprintf(stderr,
                     "FAIL: serving throughput below the 3x acceptance "
                     "bar on %u cores\n",
                     cores);
        return 1;
    }
    if (cores < 4)
        std::printf("# note: only %u core(s) visible; 3x bar not "
                    "enforced\n",
                    cores);
    std::printf("# wrote BENCH_serving.json\n");
    return 0;
}
