/**
 * @file
 * Ablation: CUDA-Graph batch size sensitivity of the GPU backend.
 *
 * The paper sets the batch size by available GPU memory ("up to around
 * hundreds of thousands of nodes"). This bench sweeps the batch budget on
 * MNIST_S and shows the regimes: tiny batches degenerate toward cuFHE-like
 * behavior (launch- and transfer-bound), large batches amortize everything
 * and let batch construction hide behind execution.
 */
#include <cstdio>

#include "bench_util.h"

using namespace pytfhe;

int main() {
    const vip::BenchScale scale;
    const core::Compiled c =
        bench::CompileWorkload(vip::FindWorkload("MNIST_S", scale));
    std::printf("MNIST_S: %llu gates\n\n",
                static_cast<unsigned long long>(c.program.NumGates()));

    std::printf("=== Ablation: GPU batch budget (RTX A5000 model) ===\n\n");
    std::printf("%10s %10s %12s %12s %12s %14s\n", "batch", "batches",
                "total (s)", "h2d (s)", "launch (s)", "build-hidden?");
    bench::PrintRule(76);
    backend::GpuConfig gpu = backend::A5000();
    const double cufhe = backend::SimulateCuFhe(c.program, gpu, 0).seconds;
    for (uint64_t batch :
         {uint64_t{16}, uint64_t{256}, uint64_t{2048}, uint64_t{16384},
          uint64_t{65536}, uint64_t{200000}, uint64_t{1000000}}) {
        gpu.batch_gates = batch;
        const auto r = backend::SimulatePyTfhe(c.program, gpu, 0);
        const bool hidden =
            r.seconds < r.kernel_seconds + r.h2d_seconds + r.d2h_seconds +
                            r.launch_seconds + r.host_build_seconds;
        std::printf("%10llu %10llu %12.2f %12.3f %12.4f %14s\n",
                    static_cast<unsigned long long>(batch),
                    static_cast<unsigned long long>(r.batches), r.seconds,
                    r.h2d_seconds, r.launch_seconds, hidden ? "yes" : "no");
    }
    std::printf("\ncuFHE per-gate reference: %.2f s\n", cufhe);
    return 0;
}
