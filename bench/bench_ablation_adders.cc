/**
 * @file
 * Ablation: adder architecture vs parallel-backend performance.
 *
 * Two findings, both invisible to the gate-count-centric view of
 * Section IV-B:
 *
 * 1. In *reduction trees*, ripple-carry adders pipeline across levels
 *    (bit i of the next add only waits for bit i below), so their wave
 *    depth is ~(w + levels), not w*levels — Kogge-Stone buys nothing and
 *    costs 2x the gates.
 *
 * 2. In *latency-critical feedback loops* — a restoring divider, where
 *    each step's decision needs the subtraction's MSB before the next
 *    step can start — the ripple adder's full carry chain is exposed:
 *    depth w^2 vs w*log(w) with Kogge-Stone. There the fast adder wins on
 *    every parallel backend despite the extra gates.
 */
#include <cstdio>

#include "bench_util.h"
#include "hdl/word_ops.h"

using namespace pytfhe;

namespace {

using hdl::Bits;
using hdl::Builder;
using hdl::Signal;

/** 64-term reduction tree of 16-bit values (finding 1). */
pasm::Program ReductionTree(bool fast) {
    Builder b;
    std::vector<Bits> terms;
    for (int32_t i = 0; i < 64; ++i)
        terms.push_back(hdl::InputBits(b, 16, "x"));
    while (terms.size() > 1) {
        std::vector<Bits> next;
        for (size_t i = 0; i + 1 < terms.size(); i += 2)
            next.push_back(fast ? hdl::AddFast(b, terms[i], terms[i + 1])
                                : hdl::Add(b, terms[i], terms[i + 1]));
        if (terms.size() % 2) next.push_back(terms.back());
        terms = std::move(next);
    }
    hdl::OutputBits(b, terms[0], "sum");
    return std::move(core::Compile(b.netlist())->program);
}

/** 24-bit restoring divider (finding 2): w serial subtract-select steps. */
pasm::Program Divider(bool fast) {
    Builder b;
    constexpr int32_t kW = 24;
    const Bits x = hdl::InputBits(b, kW, "x");
    const Bits y = hdl::InputBits(b, kW, "y");
    Bits rem = hdl::ConstBits(b, 0, kW + 1);
    const Bits ye = hdl::ZeroExtend(b, y, kW + 1);
    Bits quot = hdl::ConstBits(b, 0, kW);
    for (int32_t i = kW - 1; i >= 0; --i) {
        for (int32_t j = kW; j > 0; --j) rem[j] = rem[j - 1];
        rem[0] = x[i];
        const Bits diff =
            fast ? hdl::SubFast(b, rem, ye) : hdl::Sub(b, rem, ye);
        const Signal ge = b.MakeNot(diff.Msb());
        rem = hdl::MuxBits(b, ge, diff, rem);
        quot[i] = ge;
    }
    hdl::OutputBits(b, quot, "q");
    return std::move(core::Compile(b.netlist())->program);
}

void Report(const char* kernel, bool fast, const pasm::Program& p) {
    backend::ClusterConfig four;
    four.nodes = 4;
    const auto schedule = backend::ComputeSchedule(p);
    const auto cluster = backend::SimulateCluster(p, four);
    const auto gpu = backend::SimulatePyTfhe(p, backend::A5000(), 0);
    std::printf("%-16s %-13s %8llu %8llu %12.1f %12.2f %12.2f\n", kernel,
                fast ? "Kogge-Stone" : "ripple-carry",
                static_cast<unsigned long long>(p.NumGates()),
                static_cast<unsigned long long>(schedule.NumLevels()),
                bench::SingleCoreSeconds(p), cluster.seconds, gpu.seconds);
}

}  // namespace

int main() {
    std::printf("=== Ablation: adder architecture vs backend performance "
                "===\n\n");
    std::printf("%-16s %-13s %8s %8s %12s %12s %12s\n", "kernel", "adder",
                "gates", "waves", "1-core (s)", "4-node (s)", "A5000 (s)");
    bench::PrintRule(88);
    for (bool fast : {false, true})
        Report("reduction-tree", fast, ReductionTree(fast));
    for (bool fast : {false, true})
        Report("divider-24b", fast, Divider(fast));
    std::printf(
        "\nreduction trees pipeline ripple carries across levels (fast "
        "adders buy ~nothing);\nfeedback loops like division expose the "
        "carry chain (fast adders cut waves by ~w/log w).\n");
    return 0;
}
