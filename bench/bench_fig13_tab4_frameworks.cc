/**
 * @file
 * Fig. 13 + Table IV: PyTFHE vs E3, Cingulata, and Transpiler on MNIST_S.
 *
 * Following the paper's methodology (footnote 1), the competitors'
 * runtimes are estimated as gate count / single-core TFHE-library
 * throughput. PyTFHE rows are produced for: single core, 1 node, 4 nodes,
 * A5000, and 4090 — reproducing the Table IV speedup matrix.
 *
 * Paper Table IV (speedup of PyTFHE over each framework):
 *                  E3     Cingulata  Transpiler
 *   single core    1.5    1.8        28.4
 *   1 node         23.0   28.1       427.9
 *   4 nodes        80.6   98.2       1497.4
 *   A5000          108.7  132.4      2019.8
 *   4090           218.9  266.9      4070.5
 */
#include <cstdio>

#include "baseline/mnist_compiler.h"
#include "bench_util.h"

using namespace pytfhe;

int main() {
    baseline::MnistOptions opt;
    opt.image = 16;

    std::printf("compiling MNIST_S under all four frameworks...\n");
    auto compile = [&](const baseline::Profile& p, bool optimize) {
        const circuit::OptOptions o =
            optimize ? circuit::OptOptions{}
                     : circuit::OptOptions{false, false, false, true};
        auto c = core::Compile(baseline::CompileMnist(p, opt),
                               core::CompileOptions{o});
        if (!c) std::abort();
        return std::move(*c);
    };
    const auto pyt = compile(baseline::PyTfheProfile(), true);
    const auto cingulata = compile(baseline::CingulataProfile(), false);
    const auto e3 = compile(baseline::E3Profile(), false);
    const auto transpiler = compile(baseline::TranspilerProfile(), false);

    // Fig. 13: absolute runtimes. Competitors run single-core (their only
    // backend); PyTFHE runs on every backend.
    const double t_e3 = bench::SingleCoreSeconds(e3.program);
    const double t_cin = bench::SingleCoreSeconds(cingulata.program);
    const double t_gt = bench::SingleCoreSeconds(transpiler.program);

    backend::ClusterConfig one, four;
    four.nodes = 4;
    const double p_core = bench::SingleCoreSeconds(pyt.program);
    const double p_1n = backend::SimulateCluster(pyt.program, one).seconds;
    const double p_4n = backend::SimulateCluster(pyt.program, four).seconds;
    const double p_a5000 =
        backend::SimulatePyTfhe(pyt.program, backend::A5000(), 0).seconds;
    const double p_4090 =
        backend::SimulatePyTfhe(pyt.program, backend::Rtx4090(), 0).seconds;

    std::printf("\n=== Fig. 13: MNIST_S runtime by framework "
                "(gate-count / throughput methodology) ===\n");
    std::printf("%-26s %12s %14s\n", "framework / backend", "gates",
                "runtime (s)");
    bench::PrintRule(56);
    auto row = [](const char* name, uint64_t gates, double seconds) {
        std::printf("%-26s %12llu %14.1f\n", name,
                    static_cast<unsigned long long>(gates), seconds);
    };
    row("Transpiler (1 core)", transpiler.program.NumGates(), t_gt);
    row("E3 (1 core)", e3.program.NumGates(), t_e3);
    row("Cingulata (1 core)", cingulata.program.NumGates(), t_cin);
    row("PyTFHE (1 core)", pyt.program.NumGates(), p_core);
    row("PyTFHE (1 node)", pyt.program.NumGates(), p_1n);
    row("PyTFHE (4 nodes)", pyt.program.NumGates(), p_4n);
    row("PyTFHE (A5000)", pyt.program.NumGates(), p_a5000);
    row("PyTFHE (4090)", pyt.program.NumGates(), p_4090);

    std::printf("\n=== Table IV: speedup of PyTFHE over each framework ===\n");
    std::printf("%-22s %10s %12s %12s\n", "", "E3", "Cingulata",
                "Transpiler");
    bench::PrintRule(60);
    auto srow = [&](const char* name, double pyt_seconds) {
        std::printf("%-22s %9.1fx %11.1fx %11.1fx\n", name,
                    t_e3 / pyt_seconds, t_cin / pyt_seconds,
                    t_gt / pyt_seconds);
    };
    srow("PyTFHE Single Core", p_core);
    srow("PyTFHE 1 Node", p_1n);
    srow("PyTFHE 4 Nodes", p_4n);
    srow("PyTFHE A5000 GPU", p_a5000);
    srow("PyTFHE 4090 GPU", p_4090);
    std::printf("\npaper values: 1.5/1.8/28.4; 23/28.1/427.9; "
                "80.6/98.2/1497.4; 108.7/132.4/2019.8; 218.9/266.9/4070.5\n");
    return 0;
}
