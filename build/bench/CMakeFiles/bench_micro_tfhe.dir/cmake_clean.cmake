file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tfhe.dir/bench_micro_tfhe.cc.o"
  "CMakeFiles/bench_micro_tfhe.dir/bench_micro_tfhe.cc.o.d"
  "bench_micro_tfhe"
  "bench_micro_tfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tfhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
