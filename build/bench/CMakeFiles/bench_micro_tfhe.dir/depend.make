# Empty dependencies file for bench_micro_tfhe.
# This may be replaced when dependencies are built.
