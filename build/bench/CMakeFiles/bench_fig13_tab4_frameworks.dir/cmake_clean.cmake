file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tab4_frameworks.dir/bench_fig13_tab4_frameworks.cc.o"
  "CMakeFiles/bench_fig13_tab4_frameworks.dir/bench_fig13_tab4_frameworks.cc.o.d"
  "bench_fig13_tab4_frameworks"
  "bench_fig13_tab4_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tab4_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
