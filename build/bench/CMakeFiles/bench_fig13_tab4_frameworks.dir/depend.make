# Empty dependencies file for bench_fig13_tab4_frameworks.
# This may be replaced when dependencies are built.
