file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_distributed_cpu.dir/bench_fig10_distributed_cpu.cc.o"
  "CMakeFiles/bench_fig10_distributed_cpu.dir/bench_fig10_distributed_cpu.cc.o.d"
  "bench_fig10_distributed_cpu"
  "bench_fig10_distributed_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_distributed_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
