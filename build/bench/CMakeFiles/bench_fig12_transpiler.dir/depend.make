# Empty dependencies file for bench_fig12_transpiler.
# This may be replaced when dependencies are built.
