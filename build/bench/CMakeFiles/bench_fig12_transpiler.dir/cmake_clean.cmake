file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_transpiler.dir/bench_fig12_transpiler.cc.o"
  "CMakeFiles/bench_fig12_transpiler.dir/bench_fig12_transpiler.cc.o.d"
  "bench_fig12_transpiler"
  "bench_fig12_transpiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_transpiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
