file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_gate_profile.dir/bench_fig07_gate_profile.cc.o"
  "CMakeFiles/bench_fig07_gate_profile.dir/bench_fig07_gate_profile.cc.o.d"
  "bench_fig07_gate_profile"
  "bench_fig07_gate_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gate_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
