# Empty dependencies file for bench_fig07_gate_profile.
# This may be replaced when dependencies are built.
