file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_09_gpu_timeline.dir/bench_fig08_09_gpu_timeline.cc.o"
  "CMakeFiles/bench_fig08_09_gpu_timeline.dir/bench_fig08_09_gpu_timeline.cc.o.d"
  "bench_fig08_09_gpu_timeline"
  "bench_fig08_09_gpu_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_09_gpu_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
