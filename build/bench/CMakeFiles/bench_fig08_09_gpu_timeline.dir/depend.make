# Empty dependencies file for bench_fig08_09_gpu_timeline.
# This may be replaced when dependencies are built.
