file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_schemes.dir/bench_ablation_schemes.cc.o"
  "CMakeFiles/bench_ablation_schemes.dir/bench_ablation_schemes.cc.o.d"
  "bench_ablation_schemes"
  "bench_ablation_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
