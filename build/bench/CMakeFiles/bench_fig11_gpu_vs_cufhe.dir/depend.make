# Empty dependencies file for bench_fig11_gpu_vs_cufhe.
# This may be replaced when dependencies are built.
