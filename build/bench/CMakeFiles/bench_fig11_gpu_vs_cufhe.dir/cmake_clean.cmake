file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_gpu_vs_cufhe.dir/bench_fig11_gpu_vs_cufhe.cc.o"
  "CMakeFiles/bench_fig11_gpu_vs_cufhe.dir/bench_fig11_gpu_vs_cufhe.cc.o.d"
  "bench_fig11_gpu_vs_cufhe"
  "bench_fig11_gpu_vs_cufhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_gpu_vs_cufhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
