file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adders.dir/bench_ablation_adders.cc.o"
  "CMakeFiles/bench_ablation_adders.dir/bench_ablation_adders.cc.o.d"
  "bench_ablation_adders"
  "bench_ablation_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
