# Empty compiler generated dependencies file for bench_ablation_adders.
# This may be replaced when dependencies are built.
