file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dtypes.dir/bench_ablation_dtypes.cc.o"
  "CMakeFiles/bench_ablation_dtypes.dir/bench_ablation_dtypes.cc.o.d"
  "bench_ablation_dtypes"
  "bench_ablation_dtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
