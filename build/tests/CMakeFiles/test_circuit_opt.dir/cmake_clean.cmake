file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_opt.dir/circuit/opt_test.cc.o"
  "CMakeFiles/test_circuit_opt.dir/circuit/opt_test.cc.o.d"
  "test_circuit_opt"
  "test_circuit_opt.pdb"
  "test_circuit_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
