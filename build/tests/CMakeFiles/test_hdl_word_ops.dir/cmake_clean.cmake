file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_word_ops.dir/hdl/word_ops_test.cc.o"
  "CMakeFiles/test_hdl_word_ops.dir/hdl/word_ops_test.cc.o.d"
  "test_hdl_word_ops"
  "test_hdl_word_ops.pdb"
  "test_hdl_word_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_word_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
