# Empty compiler generated dependencies file for test_hdl_word_ops.
# This may be replaced when dependencies are built.
