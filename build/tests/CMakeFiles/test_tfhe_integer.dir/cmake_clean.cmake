file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_integer.dir/tfhe/integer_test.cc.o"
  "CMakeFiles/test_tfhe_integer.dir/tfhe/integer_test.cc.o.d"
  "test_tfhe_integer"
  "test_tfhe_integer.pdb"
  "test_tfhe_integer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_integer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
