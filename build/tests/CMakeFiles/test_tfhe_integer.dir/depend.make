# Empty dependencies file for test_tfhe_integer.
# This may be replaced when dependencies are built.
