# Empty compiler generated dependencies file for test_hdl_float_ops.
# This may be replaced when dependencies are built.
