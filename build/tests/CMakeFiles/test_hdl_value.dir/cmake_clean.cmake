file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_value.dir/hdl/value_test.cc.o"
  "CMakeFiles/test_hdl_value.dir/hdl/value_test.cc.o.d"
  "test_hdl_value"
  "test_hdl_value.pdb"
  "test_hdl_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
