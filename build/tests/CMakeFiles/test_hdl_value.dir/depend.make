# Empty dependencies file for test_hdl_value.
# This may be replaced when dependencies are built.
