file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_fft.dir/tfhe/fft_test.cc.o"
  "CMakeFiles/test_tfhe_fft.dir/tfhe/fft_test.cc.o.d"
  "test_tfhe_fft"
  "test_tfhe_fft.pdb"
  "test_tfhe_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
