# Empty compiler generated dependencies file for test_tfhe_fft.
# This may be replaced when dependencies are built.
