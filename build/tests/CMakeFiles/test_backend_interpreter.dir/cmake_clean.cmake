file(REMOVE_RECURSE
  "CMakeFiles/test_backend_interpreter.dir/backend/interpreter_test.cc.o"
  "CMakeFiles/test_backend_interpreter.dir/backend/interpreter_test.cc.o.d"
  "test_backend_interpreter"
  "test_backend_interpreter.pdb"
  "test_backend_interpreter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
