# Empty dependencies file for test_backend_interpreter.
# This may be replaced when dependencies are built.
