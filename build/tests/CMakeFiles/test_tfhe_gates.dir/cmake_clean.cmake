file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_gates.dir/tfhe/gates_test.cc.o"
  "CMakeFiles/test_tfhe_gates.dir/tfhe/gates_test.cc.o.d"
  "test_tfhe_gates"
  "test_tfhe_gates.pdb"
  "test_tfhe_gates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
