# Empty dependencies file for test_tfhe_gates.
# This may be replaced when dependencies are built.
