file(REMOVE_RECURSE
  "CMakeFiles/test_pasm.dir/pasm/pasm_test.cc.o"
  "CMakeFiles/test_pasm.dir/pasm/pasm_test.cc.o.d"
  "test_pasm"
  "test_pasm.pdb"
  "test_pasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
