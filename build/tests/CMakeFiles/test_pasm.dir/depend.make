# Empty dependencies file for test_pasm.
# This may be replaced when dependencies are built.
