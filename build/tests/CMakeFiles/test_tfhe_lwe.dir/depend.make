# Empty dependencies file for test_tfhe_lwe.
# This may be replaced when dependencies are built.
