file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_lwe.dir/tfhe/lwe_test.cc.o"
  "CMakeFiles/test_tfhe_lwe.dir/tfhe/lwe_test.cc.o.d"
  "test_tfhe_lwe"
  "test_tfhe_lwe.pdb"
  "test_tfhe_lwe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_lwe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
