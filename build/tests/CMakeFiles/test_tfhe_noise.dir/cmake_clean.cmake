file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_noise.dir/tfhe/noise_test.cc.o"
  "CMakeFiles/test_tfhe_noise.dir/tfhe/noise_test.cc.o.d"
  "test_tfhe_noise"
  "test_tfhe_noise.pdb"
  "test_tfhe_noise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
