# Empty compiler generated dependencies file for test_tfhe_noise.
# This may be replaced when dependencies are built.
