file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_bootstrap.dir/tfhe/bootstrap_test.cc.o"
  "CMakeFiles/test_tfhe_bootstrap.dir/tfhe/bootstrap_test.cc.o.d"
  "test_tfhe_bootstrap"
  "test_tfhe_bootstrap.pdb"
  "test_tfhe_bootstrap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
