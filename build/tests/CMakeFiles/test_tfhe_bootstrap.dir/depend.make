# Empty dependencies file for test_tfhe_bootstrap.
# This may be replaced when dependencies are built.
