file(REMOVE_RECURSE
  "CMakeFiles/test_vip.dir/vip/vip_test.cc.o"
  "CMakeFiles/test_vip.dir/vip/vip_test.cc.o.d"
  "test_vip"
  "test_vip.pdb"
  "test_vip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
