file(REMOVE_RECURSE
  "CMakeFiles/test_backend_sim.dir/backend/sim_test.cc.o"
  "CMakeFiles/test_backend_sim.dir/backend/sim_test.cc.o.d"
  "test_backend_sim"
  "test_backend_sim.pdb"
  "test_backend_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
