# Empty compiler generated dependencies file for test_backend_sim.
# This may be replaced when dependencies are built.
