file(REMOVE_RECURSE
  "CMakeFiles/test_backend_scheduler.dir/backend/scheduler_test.cc.o"
  "CMakeFiles/test_backend_scheduler.dir/backend/scheduler_test.cc.o.d"
  "test_backend_scheduler"
  "test_backend_scheduler.pdb"
  "test_backend_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
