# Empty compiler generated dependencies file for test_backend_scheduler.
# This may be replaced when dependencies are built.
