file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_serialization.dir/tfhe/serialization_test.cc.o"
  "CMakeFiles/test_tfhe_serialization.dir/tfhe/serialization_test.cc.o.d"
  "test_tfhe_serialization"
  "test_tfhe_serialization.pdb"
  "test_tfhe_serialization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
