file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_tgsw.dir/tfhe/tgsw_test.cc.o"
  "CMakeFiles/test_tfhe_tgsw.dir/tfhe/tgsw_test.cc.o.d"
  "test_tfhe_tgsw"
  "test_tfhe_tgsw.pdb"
  "test_tfhe_tgsw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_tgsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
