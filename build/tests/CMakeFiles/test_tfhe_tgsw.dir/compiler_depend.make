# Empty compiler generated dependencies file for test_tfhe_tgsw.
# This may be replaced when dependencies are built.
