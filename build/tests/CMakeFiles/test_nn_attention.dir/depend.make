# Empty dependencies file for test_nn_attention.
# This may be replaced when dependencies are built.
