file(REMOVE_RECURSE
  "CMakeFiles/test_nn_attention.dir/nn/attention_test.cc.o"
  "CMakeFiles/test_nn_attention.dir/nn/attention_test.cc.o.d"
  "test_nn_attention"
  "test_nn_attention.pdb"
  "test_nn_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
