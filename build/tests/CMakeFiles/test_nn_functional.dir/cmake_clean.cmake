file(REMOVE_RECURSE
  "CMakeFiles/test_nn_functional.dir/nn/functional_test.cc.o"
  "CMakeFiles/test_nn_functional.dir/nn/functional_test.cc.o.d"
  "test_nn_functional"
  "test_nn_functional.pdb"
  "test_nn_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
