file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_torus.dir/tfhe/torus_test.cc.o"
  "CMakeFiles/test_tfhe_torus.dir/tfhe/torus_test.cc.o.d"
  "test_tfhe_torus"
  "test_tfhe_torus.pdb"
  "test_tfhe_torus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
