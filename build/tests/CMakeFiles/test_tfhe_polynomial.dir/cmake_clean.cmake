file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_polynomial.dir/tfhe/polynomial_test.cc.o"
  "CMakeFiles/test_tfhe_polynomial.dir/tfhe/polynomial_test.cc.o.d"
  "test_tfhe_polynomial"
  "test_tfhe_polynomial.pdb"
  "test_tfhe_polynomial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_polynomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
