# Empty dependencies file for test_tfhe_polynomial.
# This may be replaced when dependencies are built.
