file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_tlwe.dir/tfhe/tlwe_test.cc.o"
  "CMakeFiles/test_tfhe_tlwe.dir/tfhe/tlwe_test.cc.o.d"
  "test_tfhe_tlwe"
  "test_tfhe_tlwe.pdb"
  "test_tfhe_tlwe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_tlwe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
