# Empty dependencies file for test_tfhe_tlwe.
# This may be replaced when dependencies are built.
