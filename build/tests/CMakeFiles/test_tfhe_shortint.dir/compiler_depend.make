# Empty compiler generated dependencies file for test_tfhe_shortint.
# This may be replaced when dependencies are built.
