file(REMOVE_RECURSE
  "CMakeFiles/test_tfhe_shortint.dir/tfhe/shortint_test.cc.o"
  "CMakeFiles/test_tfhe_shortint.dir/tfhe/shortint_test.cc.o.d"
  "test_tfhe_shortint"
  "test_tfhe_shortint.pdb"
  "test_tfhe_shortint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tfhe_shortint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
