# Empty compiler generated dependencies file for test_circuit_bristol.
# This may be replaced when dependencies are built.
