file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_bristol.dir/circuit/bristol_test.cc.o"
  "CMakeFiles/test_circuit_bristol.dir/circuit/bristol_test.cc.o.d"
  "test_circuit_bristol"
  "test_circuit_bristol.pdb"
  "test_circuit_bristol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_bristol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
