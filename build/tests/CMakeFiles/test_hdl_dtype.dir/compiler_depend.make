# Empty compiler generated dependencies file for test_hdl_dtype.
# This may be replaced when dependencies are built.
