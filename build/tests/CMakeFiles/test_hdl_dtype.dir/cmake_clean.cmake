file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_dtype.dir/hdl/dtype_test.cc.o"
  "CMakeFiles/test_hdl_dtype.dir/hdl/dtype_test.cc.o.d"
  "test_hdl_dtype"
  "test_hdl_dtype.pdb"
  "test_hdl_dtype[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_dtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
