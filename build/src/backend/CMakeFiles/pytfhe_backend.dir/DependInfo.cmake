
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/calibrate.cc" "src/backend/CMakeFiles/pytfhe_backend.dir/calibrate.cc.o" "gcc" "src/backend/CMakeFiles/pytfhe_backend.dir/calibrate.cc.o.d"
  "/root/repo/src/backend/cluster_sim.cc" "src/backend/CMakeFiles/pytfhe_backend.dir/cluster_sim.cc.o" "gcc" "src/backend/CMakeFiles/pytfhe_backend.dir/cluster_sim.cc.o.d"
  "/root/repo/src/backend/cost_model.cc" "src/backend/CMakeFiles/pytfhe_backend.dir/cost_model.cc.o" "gcc" "src/backend/CMakeFiles/pytfhe_backend.dir/cost_model.cc.o.d"
  "/root/repo/src/backend/gpu_sim.cc" "src/backend/CMakeFiles/pytfhe_backend.dir/gpu_sim.cc.o" "gcc" "src/backend/CMakeFiles/pytfhe_backend.dir/gpu_sim.cc.o.d"
  "/root/repo/src/backend/scheduler.cc" "src/backend/CMakeFiles/pytfhe_backend.dir/scheduler.cc.o" "gcc" "src/backend/CMakeFiles/pytfhe_backend.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pasm/CMakeFiles/pytfhe_pasm.dir/DependInfo.cmake"
  "/root/repo/build/src/tfhe/CMakeFiles/pytfhe_tfhe.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pytfhe_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
