file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_backend.dir/calibrate.cc.o"
  "CMakeFiles/pytfhe_backend.dir/calibrate.cc.o.d"
  "CMakeFiles/pytfhe_backend.dir/cluster_sim.cc.o"
  "CMakeFiles/pytfhe_backend.dir/cluster_sim.cc.o.d"
  "CMakeFiles/pytfhe_backend.dir/cost_model.cc.o"
  "CMakeFiles/pytfhe_backend.dir/cost_model.cc.o.d"
  "CMakeFiles/pytfhe_backend.dir/gpu_sim.cc.o"
  "CMakeFiles/pytfhe_backend.dir/gpu_sim.cc.o.d"
  "CMakeFiles/pytfhe_backend.dir/scheduler.cc.o"
  "CMakeFiles/pytfhe_backend.dir/scheduler.cc.o.d"
  "libpytfhe_backend.a"
  "libpytfhe_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
