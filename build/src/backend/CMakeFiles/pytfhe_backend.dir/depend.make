# Empty dependencies file for pytfhe_backend.
# This may be replaced when dependencies are built.
