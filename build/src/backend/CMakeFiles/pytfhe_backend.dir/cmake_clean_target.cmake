file(REMOVE_RECURSE
  "libpytfhe_backend.a"
)
