# Empty compiler generated dependencies file for pytfhe_vip.
# This may be replaced when dependencies are built.
