file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_vip.dir/benchmarks.cc.o"
  "CMakeFiles/pytfhe_vip.dir/benchmarks.cc.o.d"
  "CMakeFiles/pytfhe_vip.dir/registry.cc.o"
  "CMakeFiles/pytfhe_vip.dir/registry.cc.o.d"
  "libpytfhe_vip.a"
  "libpytfhe_vip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
