file(REMOVE_RECURSE
  "libpytfhe_vip.a"
)
