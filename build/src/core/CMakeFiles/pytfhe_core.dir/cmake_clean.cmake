file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_core.dir/compiler.cc.o"
  "CMakeFiles/pytfhe_core.dir/compiler.cc.o.d"
  "CMakeFiles/pytfhe_core.dir/runtime.cc.o"
  "CMakeFiles/pytfhe_core.dir/runtime.cc.o.d"
  "libpytfhe_core.a"
  "libpytfhe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
