file(REMOVE_RECURSE
  "libpytfhe_core.a"
)
