# Empty dependencies file for pytfhe_core.
# This may be replaced when dependencies are built.
