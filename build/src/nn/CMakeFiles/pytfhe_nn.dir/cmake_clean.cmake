file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_nn.dir/attention.cc.o"
  "CMakeFiles/pytfhe_nn.dir/attention.cc.o.d"
  "CMakeFiles/pytfhe_nn.dir/functional.cc.o"
  "CMakeFiles/pytfhe_nn.dir/functional.cc.o.d"
  "CMakeFiles/pytfhe_nn.dir/layers.cc.o"
  "CMakeFiles/pytfhe_nn.dir/layers.cc.o.d"
  "CMakeFiles/pytfhe_nn.dir/models.cc.o"
  "CMakeFiles/pytfhe_nn.dir/models.cc.o.d"
  "CMakeFiles/pytfhe_nn.dir/reference.cc.o"
  "CMakeFiles/pytfhe_nn.dir/reference.cc.o.d"
  "CMakeFiles/pytfhe_nn.dir/tensor.cc.o"
  "CMakeFiles/pytfhe_nn.dir/tensor.cc.o.d"
  "libpytfhe_nn.a"
  "libpytfhe_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
