# Empty compiler generated dependencies file for pytfhe_nn.
# This may be replaced when dependencies are built.
