file(REMOVE_RECURSE
  "libpytfhe_nn.a"
)
