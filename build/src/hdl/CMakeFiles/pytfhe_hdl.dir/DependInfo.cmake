
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdl/dtype.cc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/dtype.cc.o" "gcc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/dtype.cc.o.d"
  "/root/repo/src/hdl/float_ops.cc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/float_ops.cc.o" "gcc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/float_ops.cc.o.d"
  "/root/repo/src/hdl/value.cc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/value.cc.o" "gcc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/value.cc.o.d"
  "/root/repo/src/hdl/word_ops.cc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/word_ops.cc.o" "gcc" "src/hdl/CMakeFiles/pytfhe_hdl.dir/word_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/pytfhe_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
