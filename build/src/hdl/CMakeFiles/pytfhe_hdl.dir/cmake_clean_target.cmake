file(REMOVE_RECURSE
  "libpytfhe_hdl.a"
)
