file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_hdl.dir/dtype.cc.o"
  "CMakeFiles/pytfhe_hdl.dir/dtype.cc.o.d"
  "CMakeFiles/pytfhe_hdl.dir/float_ops.cc.o"
  "CMakeFiles/pytfhe_hdl.dir/float_ops.cc.o.d"
  "CMakeFiles/pytfhe_hdl.dir/value.cc.o"
  "CMakeFiles/pytfhe_hdl.dir/value.cc.o.d"
  "CMakeFiles/pytfhe_hdl.dir/word_ops.cc.o"
  "CMakeFiles/pytfhe_hdl.dir/word_ops.cc.o.d"
  "libpytfhe_hdl.a"
  "libpytfhe_hdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_hdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
