# Empty compiler generated dependencies file for pytfhe_hdl.
# This may be replaced when dependencies are built.
