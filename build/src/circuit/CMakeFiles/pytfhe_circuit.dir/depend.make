# Empty dependencies file for pytfhe_circuit.
# This may be replaced when dependencies are built.
