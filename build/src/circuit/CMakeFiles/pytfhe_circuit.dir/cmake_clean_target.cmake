file(REMOVE_RECURSE
  "libpytfhe_circuit.a"
)
