file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_circuit.dir/bristol.cc.o"
  "CMakeFiles/pytfhe_circuit.dir/bristol.cc.o.d"
  "CMakeFiles/pytfhe_circuit.dir/builder.cc.o"
  "CMakeFiles/pytfhe_circuit.dir/builder.cc.o.d"
  "CMakeFiles/pytfhe_circuit.dir/netlist.cc.o"
  "CMakeFiles/pytfhe_circuit.dir/netlist.cc.o.d"
  "CMakeFiles/pytfhe_circuit.dir/opt/passes.cc.o"
  "CMakeFiles/pytfhe_circuit.dir/opt/passes.cc.o.d"
  "libpytfhe_circuit.a"
  "libpytfhe_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
