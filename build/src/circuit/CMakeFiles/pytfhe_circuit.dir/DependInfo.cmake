
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/bristol.cc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/bristol.cc.o" "gcc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/bristol.cc.o.d"
  "/root/repo/src/circuit/builder.cc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/builder.cc.o" "gcc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/builder.cc.o.d"
  "/root/repo/src/circuit/netlist.cc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/netlist.cc.o" "gcc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/netlist.cc.o.d"
  "/root/repo/src/circuit/opt/passes.cc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/opt/passes.cc.o" "gcc" "src/circuit/CMakeFiles/pytfhe_circuit.dir/opt/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
