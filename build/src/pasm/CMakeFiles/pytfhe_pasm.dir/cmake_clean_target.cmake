file(REMOVE_RECURSE
  "libpytfhe_pasm.a"
)
