file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_pasm.dir/assembler.cc.o"
  "CMakeFiles/pytfhe_pasm.dir/assembler.cc.o.d"
  "CMakeFiles/pytfhe_pasm.dir/instruction.cc.o"
  "CMakeFiles/pytfhe_pasm.dir/instruction.cc.o.d"
  "CMakeFiles/pytfhe_pasm.dir/program.cc.o"
  "CMakeFiles/pytfhe_pasm.dir/program.cc.o.d"
  "libpytfhe_pasm.a"
  "libpytfhe_pasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_pasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
