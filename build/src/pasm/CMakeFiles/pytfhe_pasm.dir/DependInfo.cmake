
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pasm/assembler.cc" "src/pasm/CMakeFiles/pytfhe_pasm.dir/assembler.cc.o" "gcc" "src/pasm/CMakeFiles/pytfhe_pasm.dir/assembler.cc.o.d"
  "/root/repo/src/pasm/instruction.cc" "src/pasm/CMakeFiles/pytfhe_pasm.dir/instruction.cc.o" "gcc" "src/pasm/CMakeFiles/pytfhe_pasm.dir/instruction.cc.o.d"
  "/root/repo/src/pasm/program.cc" "src/pasm/CMakeFiles/pytfhe_pasm.dir/program.cc.o" "gcc" "src/pasm/CMakeFiles/pytfhe_pasm.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/pytfhe_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
