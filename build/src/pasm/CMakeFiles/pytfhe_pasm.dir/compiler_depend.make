# Empty compiler generated dependencies file for pytfhe_pasm.
# This may be replaced when dependencies are built.
