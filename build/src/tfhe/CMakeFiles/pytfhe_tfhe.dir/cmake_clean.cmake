file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_tfhe.dir/bootstrap.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/bootstrap.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/fft.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/fft.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/gates.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/gates.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/integer.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/integer.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/keyswitch.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/keyswitch.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/lwe.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/lwe.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/noise.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/noise.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/params.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/params.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/polynomial.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/polynomial.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/serialization.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/serialization.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/shortint.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/shortint.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/tgsw.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/tgsw.cc.o.d"
  "CMakeFiles/pytfhe_tfhe.dir/tlwe.cc.o"
  "CMakeFiles/pytfhe_tfhe.dir/tlwe.cc.o.d"
  "libpytfhe_tfhe.a"
  "libpytfhe_tfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_tfhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
