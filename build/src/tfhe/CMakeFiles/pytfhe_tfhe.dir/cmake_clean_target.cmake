file(REMOVE_RECURSE
  "libpytfhe_tfhe.a"
)
