# Empty dependencies file for pytfhe_tfhe.
# This may be replaced when dependencies are built.
