
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tfhe/bootstrap.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/bootstrap.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/bootstrap.cc.o.d"
  "/root/repo/src/tfhe/fft.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/fft.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/fft.cc.o.d"
  "/root/repo/src/tfhe/gates.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/gates.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/gates.cc.o.d"
  "/root/repo/src/tfhe/integer.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/integer.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/integer.cc.o.d"
  "/root/repo/src/tfhe/keyswitch.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/keyswitch.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/keyswitch.cc.o.d"
  "/root/repo/src/tfhe/lwe.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/lwe.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/lwe.cc.o.d"
  "/root/repo/src/tfhe/noise.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/noise.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/noise.cc.o.d"
  "/root/repo/src/tfhe/params.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/params.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/params.cc.o.d"
  "/root/repo/src/tfhe/polynomial.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/polynomial.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/polynomial.cc.o.d"
  "/root/repo/src/tfhe/serialization.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/serialization.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/serialization.cc.o.d"
  "/root/repo/src/tfhe/shortint.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/shortint.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/shortint.cc.o.d"
  "/root/repo/src/tfhe/tgsw.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/tgsw.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/tgsw.cc.o.d"
  "/root/repo/src/tfhe/tlwe.cc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/tlwe.cc.o" "gcc" "src/tfhe/CMakeFiles/pytfhe_tfhe.dir/tlwe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
