file(REMOVE_RECURSE
  "libpytfhe_ckks.a"
)
