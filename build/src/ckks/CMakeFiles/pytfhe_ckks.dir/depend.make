# Empty dependencies file for pytfhe_ckks.
# This may be replaced when dependencies are built.
