file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_ckks.dir/ckks.cc.o"
  "CMakeFiles/pytfhe_ckks.dir/ckks.cc.o.d"
  "libpytfhe_ckks.a"
  "libpytfhe_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
