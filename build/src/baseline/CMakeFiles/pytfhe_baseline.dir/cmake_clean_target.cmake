file(REMOVE_RECURSE
  "libpytfhe_baseline.a"
)
