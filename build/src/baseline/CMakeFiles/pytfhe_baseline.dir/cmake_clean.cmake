file(REMOVE_RECURSE
  "CMakeFiles/pytfhe_baseline.dir/mnist_compiler.cc.o"
  "CMakeFiles/pytfhe_baseline.dir/mnist_compiler.cc.o.d"
  "CMakeFiles/pytfhe_baseline.dir/profiles.cc.o"
  "CMakeFiles/pytfhe_baseline.dir/profiles.cc.o.d"
  "libpytfhe_baseline.a"
  "libpytfhe_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhe_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
