# Empty compiler generated dependencies file for pytfhe_baseline.
# This may be replaced when dependencies are built.
