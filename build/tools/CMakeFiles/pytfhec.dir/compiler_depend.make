# Empty compiler generated dependencies file for pytfhec.
# This may be replaced when dependencies are built.
