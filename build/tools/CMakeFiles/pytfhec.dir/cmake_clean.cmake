file(REMOVE_RECURSE
  "CMakeFiles/pytfhec.dir/pytfhec.cc.o"
  "CMakeFiles/pytfhec.dir/pytfhec.cc.o.d"
  "pytfhec"
  "pytfhec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pytfhec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
