file(REMOVE_RECURSE
  "CMakeFiles/mnist_inference.dir/mnist_inference.cpp.o"
  "CMakeFiles/mnist_inference.dir/mnist_inference.cpp.o.d"
  "mnist_inference"
  "mnist_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
