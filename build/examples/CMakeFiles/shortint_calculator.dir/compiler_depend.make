# Empty compiler generated dependencies file for shortint_calculator.
# This may be replaced when dependencies are built.
