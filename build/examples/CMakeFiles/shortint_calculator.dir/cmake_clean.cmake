file(REMOVE_RECURSE
  "CMakeFiles/shortint_calculator.dir/shortint_calculator.cpp.o"
  "CMakeFiles/shortint_calculator.dir/shortint_calculator.cpp.o.d"
  "shortint_calculator"
  "shortint_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortint_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
