# Empty dependencies file for attention_stats.
# This may be replaced when dependencies are built.
