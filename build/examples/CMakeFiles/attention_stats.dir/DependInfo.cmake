
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/attention_stats.cpp" "examples/CMakeFiles/attention_stats.dir/attention_stats.cpp.o" "gcc" "examples/CMakeFiles/attention_stats.dir/attention_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pytfhe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/pytfhe_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/tfhe/CMakeFiles/pytfhe_tfhe.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pytfhe_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hdl/CMakeFiles/pytfhe_hdl.dir/DependInfo.cmake"
  "/root/repo/build/src/pasm/CMakeFiles/pytfhe_pasm.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/pytfhe_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
