file(REMOVE_RECURSE
  "CMakeFiles/attention_stats.dir/attention_stats.cpp.o"
  "CMakeFiles/attention_stats.dir/attention_stats.cpp.o.d"
  "attention_stats"
  "attention_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
