file(REMOVE_RECURSE
  "CMakeFiles/vip_explorer.dir/vip_explorer.cpp.o"
  "CMakeFiles/vip_explorer.dir/vip_explorer.cpp.o.d"
  "vip_explorer"
  "vip_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
