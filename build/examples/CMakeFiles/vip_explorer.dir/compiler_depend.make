# Empty compiler generated dependencies file for vip_explorer.
# This may be replaced when dependencies are built.
