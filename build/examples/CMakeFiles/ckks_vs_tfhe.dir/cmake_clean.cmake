file(REMOVE_RECURSE
  "CMakeFiles/ckks_vs_tfhe.dir/ckks_vs_tfhe.cpp.o"
  "CMakeFiles/ckks_vs_tfhe.dir/ckks_vs_tfhe.cpp.o.d"
  "ckks_vs_tfhe"
  "ckks_vs_tfhe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckks_vs_tfhe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
