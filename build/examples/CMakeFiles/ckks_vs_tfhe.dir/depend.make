# Empty dependencies file for ckks_vs_tfhe.
# This may be replaced when dependencies are built.
