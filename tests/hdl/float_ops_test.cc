#include "hdl/float_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "hdl/dtype.h"
#include "hdl_test_util.h"

namespace pytfhe::hdl {
namespace {

/** Evaluates a binary float circuit on plaintext doubles. */
double EvalF2(const DType& t, double x, double y,
              const std::function<Bits(Builder&, const FloatFmt&, const Bits&,
                                       const Bits&)>& gen) {
    const FloatFmt fmt{t.ExpBits(), t.MantBits()};
    Builder b;
    const Bits bx = InputBits(b, t.TotalBits(), "x");
    const Bits by = InputBits(b, t.TotalBits(), "y");
    OutputBits(b, gen(b, fmt, bx, by), "o");
    std::vector<bool> in = t.Encode(x);
    const std::vector<bool> in_y = t.Encode(y);
    in.insert(in.end(), in_y.begin(), in_y.end());
    return t.Decode(b.netlist().EvaluatePlain(in));
}

Signal EvalPred(const DType& t, double x, double y, bool* result,
                const std::function<Signal(Builder&, const FloatFmt&,
                                           const Bits&, const Bits&)>& gen) {
    const FloatFmt fmt{t.ExpBits(), t.MantBits()};
    Builder b;
    const Bits bx = InputBits(b, t.TotalBits(), "x");
    const Bits by = InputBits(b, t.TotalBits(), "y");
    b.AddOutput(gen(b, fmt, bx, by), "p");
    std::vector<bool> in = t.Encode(x);
    const std::vector<bool> in_y = t.Encode(y);
    in.insert(in.end(), in_y.begin(), in_y.end());
    *result = b.netlist().EvaluatePlain(in)[0];
    return 0;
}

bool Lt(const DType& t, double x, double y) {
    bool r;
    EvalPred(t, x, y, &r, [](Builder& b, const FloatFmt& f, const Bits& a,
                             const Bits& c) { return FLt(b, f, a, c); });
    return r;
}

/** Tolerance: a few units in the last mantissa place, relative. */
double Tol(const DType& t, double magnitude) {
    return std::max(std::abs(magnitude), 1e-30) *
           std::pow(2.0, -(t.MantBits() - 2));
}

class FloatFormatTest : public ::testing::TestWithParam<DType> {
  protected:
    DType T() const { return GetParam(); }

    std::vector<double> Samples() {
        std::mt19937_64 rng(1234);
        std::vector<double> v{0.0,  1.0,   -1.0,  0.5,    -2.75,
                              3.25, 100.0, -0.01, 1024.0, -65.1875};
        std::uniform_real_distribution<double> mag(-6, 6), sign(-1, 1);
        for (int i = 0; i < 6; ++i) {
            const double m = std::pow(2.0, mag(rng));
            v.push_back(sign(rng) < 0 ? -m : m);
        }
        for (double& x : v) x = T().Quantize(x);
        return v;
    }
};

TEST_P(FloatFormatTest, AddMatchesReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            const double got = EvalF2(T(), x, y, FAdd);
            const double want = T().Quantize(x + y);
            EXPECT_NEAR(got, want, Tol(T(), want)) << x << " + " << y;
        }
    }
}

TEST_P(FloatFormatTest, SubMatchesReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            const double got = EvalF2(T(), x, y, FSub);
            const double want = T().Quantize(x - y);
            EXPECT_NEAR(got, want, Tol(T(), want)) << x << " - " << y;
        }
    }
}

TEST_P(FloatFormatTest, MulMatchesReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            const double got = EvalF2(T(), x, y, FMul);
            const double want = T().Quantize(x * y);
            if (std::isinf(want)) {
                EXPECT_TRUE(std::isinf(got) ||
                            std::abs(got) > std::abs(want) / 4);
            } else {
                EXPECT_NEAR(got, want, Tol(T(), want)) << x << " * " << y;
            }
        }
    }
}

TEST_P(FloatFormatTest, DivMatchesReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            if (y == 0.0) continue;
            const double got = EvalF2(T(), x, y, FDiv);
            const double want = T().Quantize(x / y);
            if (std::isinf(want)) {
                EXPECT_TRUE(std::isinf(got) ||
                            std::abs(got) > std::abs(want) / 4);
            } else {
                EXPECT_NEAR(got, want, Tol(T(), want)) << x << " / " << y;
            }
        }
    }
}

TEST_P(FloatFormatTest, ComparisonMatchesReference) {
    for (double x : Samples())
        for (double y : Samples())
            EXPECT_EQ(Lt(T(), x, y), x < y) << x << " < " << y;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FloatFormatTest,
    ::testing::Values(DType::Float(8, 8),    // bfloat16.
                      DType::Float(5, 11),   // half.
                      DType::Float(6, 6),    // Custom narrow.
                      DType::Float(8, 23)),  // float32.
    [](const ::testing::TestParamInfo<DType>& info) {
        return "E" + std::to_string(info.param.ExpBits()) + "M" +
               std::to_string(info.param.MantBits());
    });

TEST(FloatOps, ExhaustiveTinyFormatAdd) {
    // Float(3,2): 64 bit patterns. Evaluate the adder circuit on EVERY
    // pair of finite values and compare against double arithmetic
    // re-quantized into the format (truncation may differ by 1 ulp when
    // guard bits round differently; allow that).
    const DType t = DType::Float(3, 2);
    std::vector<double> values;
    for (int pattern = 0; pattern < 64; ++pattern) {
        std::vector<bool> bits(6);
        for (int i = 0; i < 6; ++i) bits[i] = (pattern >> i) & 1;
        const double v = t.Decode(bits);
        if (std::isfinite(v)) values.push_back(v);
    }
    for (double x : values) {
        for (double y : values) {
            const double got = EvalF2(t, x, y, FAdd);
            const double want = t.Quantize(x + y);
            if (std::isinf(want)) continue;  // Saturation edge.
            EXPECT_NEAR(got, want,
                        std::max(std::abs(want), 0.25) * 0.5 + 1e-12)
                << x << " + " << y;
        }
    }
}

TEST(FloatOps, ExhaustiveTinyFormatComparisons) {
    const DType t = DType::Float(3, 2);
    std::vector<double> values;
    for (int pattern = 0; pattern < 64; ++pattern) {
        std::vector<bool> bits(6);
        for (int i = 0; i < 6; ++i) bits[i] = (pattern >> i) & 1;
        values.push_back(t.Decode(bits));
    }
    for (double x : values)
        for (double y : values)
            EXPECT_EQ(Lt(t, x, y), x < y) << x << " < " << y;
}

TEST(FloatOps, AddingZeroIsIdentity) {
    const DType t = DType::Float(8, 8);
    for (double x : {1.5, -3.25, 1000.0, 0.0})
        EXPECT_EQ(EvalF2(t, x, 0.0, FAdd), x);
}

TEST(FloatOps, CancellationGivesPositiveZero) {
    const DType t = DType::Float(8, 8);
    const double r = EvalF2(t, 5.5, -5.5, FAdd);
    EXPECT_EQ(r, 0.0);
    EXPECT_FALSE(std::signbit(r));
}

TEST(FloatOps, MulByZeroGivesZero) {
    const DType t = DType::Float(8, 8);
    EXPECT_EQ(EvalF2(t, 123.0, 0.0, FMul), 0.0);
    EXPECT_EQ(EvalF2(t, 0.0, -55.0, FMul), 0.0);
}

TEST(FloatOps, DivByZeroGivesInfinity) {
    const DType t = DType::Float(8, 8);
    EXPECT_TRUE(std::isinf(EvalF2(t, 3.0, 0.0, FDiv)));
}

TEST(FloatOps, InfinityPropagatesThroughAdd) {
    const DType t = DType::Float(6, 6);
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(std::isinf(EvalF2(t, inf, 2.0, FAdd)));
    EXPECT_TRUE(std::isinf(EvalF2(t, 2.0, -inf, FAdd)));
    EXPECT_LT(EvalF2(t, 2.0, -inf, FAdd), 0.0);
}

TEST(FloatOps, ReluClampsNegatives) {
    const DType t = DType::Float(8, 8);
    const FloatFmt fmt{8, 8};
    for (double x : {-5.5, -0.001, 0.0, 0.25, 77.0}) {
        Builder b;
        const Bits bx = InputBits(b, t.TotalBits(), "x");
        OutputBits(b, FRelu(b, fmt, bx), "o");
        const double got = t.Decode(b.netlist().EvaluatePlain(t.Encode(x)));
        EXPECT_EQ(got, x < 0 ? 0.0 : x) << x;
    }
}

TEST(FloatOps, ReluIsASingleMuxLayer) {
    // The paper's argument: non-linear ops are cheap in bit-wise FHE.
    // ReLU on bfloat16 must cost at most ~2 gates per data bit.
    Builder b;
    const Bits x = InputBits(b, 17, "x");
    OutputBits(b, FRelu(b, FloatFmt{8, 8}, x), "o");
    EXPECT_LE(b.netlist().NumGates(), 2u * 17u);
}

TEST(FloatOps, MaxMinAgreeWithComparison) {
    const DType t = DType::Float(6, 6);
    for (double x : {-3.0, 0.0, 2.5})
        for (double y : {-7.0, 0.5, 2.5}) {
            EXPECT_EQ(EvalF2(t, x, y, FMax), std::max(x, y));
            EXPECT_EQ(EvalF2(t, x, y, FMin), std::min(x, y));
        }
}

TEST(FloatOps, NegativeZeroComparesEqualToZero) {
    const DType t = DType::Float(8, 8);
    EXPECT_FALSE(Lt(t, -0.0, 0.0));
    EXPECT_FALSE(Lt(t, 0.0, -0.0));
}

}  // namespace
}  // namespace pytfhe::hdl
