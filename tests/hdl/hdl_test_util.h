/** @file Test helpers for evaluating HDL-built circuits on plaintext. */
#ifndef PYTFHE_TESTS_HDL_TEST_UTIL_H
#define PYTFHE_TESTS_HDL_TEST_UTIL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "hdl/value.h"
#include "hdl/word_ops.h"

namespace pytfhe::hdl {

/** Packs a uint64 into `width` bools, LSB first. */
inline std::vector<bool> ToBools(uint64_t v, int32_t width) {
    std::vector<bool> out(width);
    for (int32_t i = 0; i < width; ++i) out[i] = (v >> i) & 1;
    return out;
}

/** Unpacks bools (LSB first) into a uint64. */
inline uint64_t FromBools(const std::vector<bool>& bits) {
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size() && i < 64; ++i)
        if (bits[i]) v |= UINT64_C(1) << i;
    return v;
}

/** Truncates v to `width` bits. */
inline uint64_t Mask(uint64_t v, int32_t width) {
    return width >= 64 ? v : v & ((UINT64_C(1) << width) - 1);
}

/** Sign-extends a `width`-bit pattern into an int64. */
inline int64_t SignExtend64(uint64_t v, int32_t width) {
    if (width < 64 && ((v >> (width - 1)) & 1))
        return static_cast<int64_t>(v | ~((UINT64_C(1) << width) - 1));
    return static_cast<int64_t>(Mask(v, width));
}

/**
 * Builds a two-operand word circuit with `gen` and evaluates it on (x, y).
 * Returns the output word (LSB-first packing of all circuit outputs).
 */
inline uint64_t EvalBinary(
    int32_t wx, uint64_t x, int32_t wy, uint64_t y,
    const std::function<Bits(Builder&, const Bits&, const Bits&)>& gen) {
    Builder b;
    const Bits bx = InputBits(b, wx, "x");
    const Bits by = InputBits(b, wy, "y");
    OutputBits(b, gen(b, bx, by), "o");
    std::vector<bool> in = ToBools(x, wx);
    const std::vector<bool> in_y = ToBools(y, wy);
    in.insert(in.end(), in_y.begin(), in_y.end());
    return FromBools(b.netlist().EvaluatePlain(in));
}

/** Same for a one-operand circuit. */
inline uint64_t EvalUnary(
    int32_t w, uint64_t x,
    const std::function<Bits(Builder&, const Bits&)>& gen) {
    Builder b;
    const Bits bx = InputBits(b, w, "x");
    OutputBits(b, gen(b, bx), "o");
    return FromBools(b.netlist().EvaluatePlain(ToBools(x, w)));
}

}  // namespace pytfhe::hdl

#endif  // PYTFHE_TESTS_HDL_TEST_UTIL_H
