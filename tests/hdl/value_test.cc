#include "hdl/value.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hdl_test_util.h"

namespace pytfhe::hdl {
namespace {

/** Evaluates a typed binary op circuit on plaintext values. */
double EvalV2(const DType& t, double x, double y,
              const std::function<Value(Builder&, const Value&,
                                        const Value&)>& gen) {
    Builder b;
    const Value vx = InputValue(b, t, "x");
    const Value vy = InputValue(b, t, "y");
    OutputValue(b, gen(b, vx, vy), "o");
    std::vector<bool> in = t.Encode(x);
    const std::vector<bool> in_y = t.Encode(y);
    in.insert(in.end(), in_y.begin(), in_y.end());
    return t.Decode(b.netlist().EvaluatePlain(in));
}

class ValueTypeTest : public ::testing::TestWithParam<DType> {
  protected:
    DType T() const { return GetParam(); }
    std::vector<double> Samples() const {
        std::vector<double> v{0, 1, -2, 3, 5.5, -7.25, 12, -13.75};
        for (double& x : v) x = T().Quantize(x);
        return v;
    }
    double Tol(double magnitude) const {
        if (!T().IsFloat())
            return T().kind() == DType::Kind::kFixed
                       ? std::pow(2.0, -T().FracBits()) * 2
                       : 0.0;
        return std::max(std::abs(magnitude), 1.0) *
               std::pow(2.0, -(T().MantBits() - 2));
    }
};

TEST_P(ValueTypeTest, AddSubMatchReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            EXPECT_NEAR(EvalV2(T(), x, y, VAdd), T().Quantize(x + y),
                        Tol(x + y))
                << T().ToString() << " " << x << "+" << y;
            EXPECT_NEAR(EvalV2(T(), x, y, VSub), T().Quantize(x - y),
                        Tol(x - y));
        }
    }
}

TEST_P(ValueTypeTest, MulMatchesReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            const double want = T().Quantize(x * y);
            // Skip wrap-around cases for narrow integer types.
            if (!T().IsFloat() && want != x * y) continue;
            EXPECT_NEAR(EvalV2(T(), x, y, VMul), want, Tol(want))
                << T().ToString() << " " << x << "*" << y;
        }
    }
}

TEST_P(ValueTypeTest, DivMatchesReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            if (y == 0) continue;
            double want;
            if (T().IsFloat()) {
                want = T().Quantize(x / y);
            } else if (T().kind() == DType::Kind::kFixed) {
                want = T().Quantize(std::trunc((x / y) * std::pow(2.0, T().FracBits())) /
                                    std::pow(2.0, T().FracBits()));
            } else {
                want = std::trunc(x / y);
            }
            EXPECT_NEAR(EvalV2(T(), x, y, VDiv), want, 2 * Tol(want))
                << T().ToString() << " " << x << "/" << y;
        }
    }
}

TEST_P(ValueTypeTest, ComparisonsMatchReference) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            Builder b;
            const Value vx = InputValue(b, T(), "x");
            const Value vy = InputValue(b, T(), "y");
            b.AddOutput(VLt(b, vx, vy), "lt");
            b.AddOutput(VEq(b, vx, vy), "eq");
            b.AddOutput(VGe(b, vx, vy), "ge");
            std::vector<bool> in = T().Encode(x);
            const std::vector<bool> in_y = T().Encode(y);
            in.insert(in.end(), in_y.begin(), in_y.end());
            const auto out = b.netlist().EvaluatePlain(in);
            EXPECT_EQ(out[0], x < y) << x << "<" << y;
            EXPECT_EQ(out[1], x == y);
            EXPECT_EQ(out[2], x >= y);
        }
    }
}

TEST_P(ValueTypeTest, ReluMaxMin) {
    for (double x : Samples()) {
        for (double y : Samples()) {
            EXPECT_EQ(EvalV2(T(), x, y, VMax), std::max(x, y));
            EXPECT_EQ(EvalV2(T(), x, y, VMin), std::min(x, y));
        }
        Builder b;
        const Value vx = InputValue(b, T(), "x");
        OutputValue(b, VRelu(b, vx), "o");
        const double got = T().Decode(b.netlist().EvaluatePlain(T().Encode(x)));
        EXPECT_EQ(got, std::max(0.0, x)) << T().ToString() << " relu " << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Types, ValueTypeTest,
    ::testing::Values(DType::SInt(10), DType::Fixed(6, 6),
                      DType::Float(8, 8), DType::Float(5, 11)),
    [](const ::testing::TestParamInfo<DType>& info) {
        std::string s = info.param.ToString();
        for (char& c : s)
            if (!isalnum(static_cast<unsigned char>(c))) c = '_';
        return s;
    });

TEST(ValueTest, ConstantsFoldToZeroGates) {
    Builder b;
    const Value c1 = ConstValue(b, DType::Float(8, 8), 3.5);
    const Value c2 = ConstValue(b, DType::Float(8, 8), -1.25);
    const Value sum = VAdd(b, c1, c2);
    OutputValue(b, sum, "o");
    // Constant inputs fold the entire adder away.
    EXPECT_EQ(b.netlist().NumGates(), 0u);
    EXPECT_EQ(DType::Float(8, 8).Decode(b.netlist().EvaluatePlain({})), 2.25);
}

TEST(ValueTest, MulByConstantIsCheaperThanGeneric) {
    const DType t = DType::SInt(12);
    Builder generic;
    {
        const Value x = InputValue(generic, t, "x");
        const Value y = InputValue(generic, t, "y");
        OutputValue(generic, VMul(generic, x, y), "o");
    }
    Builder by_const;
    {
        const Value x = InputValue(by_const, t, "x");
        const Value c = ConstValue(by_const, t, 5);
        OutputValue(by_const, VMul(by_const, x, c), "o");
    }
    EXPECT_LT(by_const.netlist().NumGates(), generic.netlist().NumGates() / 2);
}

TEST(ValueTest, UIntReluIsFree) {
    Builder b;
    const Value x = InputValue(b, DType::UInt(8), "x");
    OutputValue(b, VRelu(b, x), "o");
    EXPECT_EQ(b.netlist().NumGates(), 0u);
}

}  // namespace
}  // namespace pytfhe::hdl
