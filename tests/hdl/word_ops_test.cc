#include "hdl/word_ops.h"

#include <gtest/gtest.h>
#include <random>

#include "hdl_test_util.h"

namespace pytfhe::hdl {
namespace {

class WordWidthTest : public ::testing::TestWithParam<int32_t> {
  protected:
    int32_t W() const { return GetParam(); }

    /** Random values covering corners and uniform draws. */
    std::vector<uint64_t> Samples() {
        std::mt19937_64 rng(GetParam() * 7919);
        std::vector<uint64_t> v{0, 1, Mask(~UINT64_C(0), W()),
                                UINT64_C(1) << (W() - 1)};
        for (int i = 0; i < 8; ++i) v.push_back(Mask(rng(), W()));
        return v;
    }
};

TEST_P(WordWidthTest, AddMatchesReference) {
    for (uint64_t x : Samples())
        for (uint64_t y : Samples())
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return Add(b, a, c);
                                 }),
                      Mask(x + y, W()))
                << x << "+" << y;
}

TEST_P(WordWidthTest, FastAdderMatchesReference) {
    for (uint64_t x : Samples())
        for (uint64_t y : Samples())
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return AddFast(b, a, c);
                                 }),
                      Mask(x + y, W()))
                << x << "+" << y;
}

TEST_P(WordWidthTest, FastSubMatchesReference) {
    for (uint64_t x : Samples())
        for (uint64_t y : Samples())
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return SubFast(b, a, c);
                                 }),
                      Mask(x - y, W()))
                << x << "-" << y;
}

TEST_P(WordWidthTest, SubMatchesReference) {
    for (uint64_t x : Samples())
        for (uint64_t y : Samples())
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return Sub(b, a, c);
                                 }),
                      Mask(x - y, W()));
}

TEST_P(WordWidthTest, NegAndIncrement) {
    for (uint64_t x : Samples()) {
        EXPECT_EQ(EvalUnary(W(), x,
                            [](Builder& b, const Bits& a) {
                                return Neg(b, a);
                            }),
                  Mask(~x + 1, W()));
        EXPECT_EQ(EvalUnary(W(), x,
                            [](Builder& b, const Bits& a) {
                                return Increment(b, a);
                            }),
                  Mask(x + 1, W()));
    }
}

TEST_P(WordWidthTest, MulMatchesReference) {
    for (uint64_t x : Samples())
        for (uint64_t y : Samples())
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [this](Builder& b, const Bits& a,
                                        const Bits& c) {
                                     return UMul(b, a, c, W());
                                 }),
                      Mask(x * y, W()));
}

TEST_P(WordWidthTest, SignedMulMatchesReference) {
    for (uint64_t x : Samples())
        for (uint64_t y : Samples()) {
            const int64_t sx = SignExtend64(x, W());
            const int64_t sy = SignExtend64(y, W());
            EXPECT_EQ(
                EvalBinary(W(), x, W(), y,
                           [this](Builder& b, const Bits& a, const Bits& c) {
                               return SMul(b, a, c, W());
                           }),
                Mask(static_cast<uint64_t>(sx) * static_cast<uint64_t>(sy),
                     W()));
        }
}

TEST_P(WordWidthTest, DivModMatchesReference) {
    for (uint64_t x : Samples()) {
        for (uint64_t y : Samples()) {
            if (y == 0) continue;
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return UDivMod(b, a, c).first;
                                 }),
                      x / y);
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return UDivMod(b, a, c).second;
                                 }),
                      x % y);
        }
    }
}

TEST_P(WordWidthTest, SignedDivRoundsTowardZero) {
    for (uint64_t x : Samples()) {
        for (uint64_t y : Samples()) {
            const int64_t sx = SignExtend64(x, W());
            const int64_t sy = SignExtend64(y, W());
            if (sy == 0) continue;
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return SDivMod(b, a, c).first;
                                 }),
                      Mask(static_cast<uint64_t>(sx / sy), W()))
                << sx << "/" << sy;
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return SDivMod(b, a, c).second;
                                 }),
                      Mask(static_cast<uint64_t>(sx % sy), W()));
        }
    }
}

TEST_P(WordWidthTest, ComparisonsMatchReference) {
    for (uint64_t x : Samples()) {
        for (uint64_t y : Samples()) {
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return Bits({Ult(b, a, c)});
                                 }),
                      x < y ? 1u : 0u);
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return Bits({Eq(b, a, c)});
                                 }),
                      x == y ? 1u : 0u);
            const int64_t sx = SignExtend64(x, W());
            const int64_t sy = SignExtend64(y, W());
            EXPECT_EQ(EvalBinary(W(), x, W(), y,
                                 [](Builder& b, const Bits& a, const Bits& c) {
                                     return Bits({Slt(b, a, c)});
                                 }),
                      sx < sy ? 1u : 0u);
        }
    }
}

TEST_P(WordWidthTest, DynamicShiftsMatchReference) {
    const int32_t sw = 4;  // Shift amounts 0..15.
    for (uint64_t x : Samples()) {
        for (uint64_t s = 0; s < 16; s += 3) {
            EXPECT_EQ(
                EvalBinary(W(), x, sw, s,
                           [](Builder& b, const Bits& a, const Bits& c) {
                               return ShlDynamic(b, a, c);
                           }),
                s >= 64 ? 0 : Mask(x << s, W()));
            EXPECT_EQ(
                EvalBinary(W(), x, sw, s,
                           [this](Builder& b, const Bits& a, const Bits& c) {
                               return LshrDynamic(b, a, c);
                           }),
                s >= static_cast<uint64_t>(W()) ? 0 : Mask(x, W()) >> s);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WordWidthTest,
                         ::testing::Values(3, 4, 7, 8, 12, 16, 24));

TEST(WordOps, ConstBitsRoundTrip) {
    for (uint64_t v : {UINT64_C(0), UINT64_C(5), UINT64_C(0xAB), UINT64_C(255)})
        EXPECT_EQ(EvalUnary(1, 0,
                            [&](Builder& b, const Bits&) {
                                return ConstBits(b, v, 8);
                            }),
                  Mask(v, 8));
}

TEST(WordOps, ExtensionSemantics) {
    // 0xA (1010) zero-extends to 0x0A, sign-extends to 0xFA in 8 bits.
    EXPECT_EQ(EvalUnary(4, 0xA,
                        [](Builder& b, const Bits& a) {
                            return ZeroExtend(b, a, 8);
                        }),
              0x0Au);
    EXPECT_EQ(EvalUnary(4, 0xA,
                        [](Builder& b, const Bits& a) {
                            return SignExtend(b, a, 8);
                        }),
              0xFAu);
    EXPECT_EQ(EvalUnary(8, 0xFA,
                        [](Builder& b, const Bits& a) {
                            return SignExtend(b, a, 4);
                        }),
              0xAu);
}

TEST(WordOps, ConstShifts) {
    EXPECT_EQ(EvalUnary(8, 0x81,
                        [](Builder& b, const Bits& a) {
                            return ShlConst(b, a, 2);
                        }),
              0x04u);
    EXPECT_EQ(EvalUnary(8, 0x81,
                        [](Builder& b, const Bits& a) {
                            return LshrConst(b, a, 2);
                        }),
              0x20u);
    EXPECT_EQ(EvalUnary(8, 0x81,
                        [](Builder& b, const Bits& a) {
                            return AshrConst(b, a, 2);
                        }),
              0xE0u);
}

TEST(WordOps, LeadingZeroCountAllWidths) {
    for (int32_t w : {4, 8, 13}) {
        for (int32_t pos = -1; pos < w; ++pos) {
            const uint64_t x = pos < 0 ? 0 : (UINT64_C(1) << pos);
            const uint64_t expect = pos < 0 ? w : w - 1 - pos;
            EXPECT_EQ(EvalUnary(w, x,
                                [](Builder& b, const Bits& a) {
                                    return LeadingZeroCount(b, a);
                                }),
                      expect)
                << "w=" << w << " pos=" << pos;
        }
    }
}

TEST(WordOps, PopCount) {
    for (uint64_t x : {UINT64_C(0), UINT64_C(0xFF), UINT64_C(0xA5),
                       UINT64_C(0x01), UINT64_C(0x80)})
        EXPECT_EQ(EvalUnary(8, x,
                            [](Builder& b, const Bits& a) {
                                return PopCount(b, a);
                            }),
                  static_cast<uint64_t>(__builtin_popcountll(x)));
}

TEST(WordOps, ReductionsAndBitwise) {
    EXPECT_EQ(EvalBinary(8, 0xF0, 8, 0x0F,
                         [](Builder& b, const Bits& a, const Bits& c) {
                             return OrBits(b, a, c);
                         }),
              0xFFu);
    EXPECT_EQ(EvalBinary(8, 0xF3, 8, 0x35,
                         [](Builder& b, const Bits& a, const Bits& c) {
                             return AndBits(b, a, c);
                         }),
              0x31u);
    EXPECT_EQ(EvalBinary(8, 0xF3, 8, 0x35,
                         [](Builder& b, const Bits& a, const Bits& c) {
                             return XorBits(b, a, c);
                         }),
              0xC6u);
    EXPECT_EQ(EvalUnary(8, 0x00,
                        [](Builder& b, const Bits& a) {
                            return Bits({OrReduce(b, a)});
                        }),
              0u);
    EXPECT_EQ(EvalUnary(8, 0xFF,
                        [](Builder& b, const Bits& a) {
                            return Bits({AndReduce(b, a)});
                        }),
              1u);
}

TEST(WordOps, AdderGateCountIsLinear) {
    // Ripple adder: about 5 gates per bit. Structural sanity check that the
    // builder is not duplicating logic.
    Builder b;
    const Bits x = InputBits(b, 16, "x");
    const Bits y = InputBits(b, 16, "y");
    OutputBits(b, Add(b, x, y), "s");
    EXPECT_LE(b.netlist().NumGates(), 16u * 5u);
    EXPECT_GE(b.netlist().NumGates(), 16u * 3u);
}

TEST(WordOps, FastAdderHasLogarithmicDepth) {
    // Kogge-Stone: O(log w) bootstrap depth vs the ripple adder's O(w).
    auto depth = [](int32_t w, bool fast) {
        Builder b;
        const Bits x = InputBits(b, w, "x");
        const Bits y = InputBits(b, w, "y");
        OutputBits(b, fast ? AddFast(b, x, y) : Add(b, x, y), "s");
        return b.netlist().ComputeStats().depth;
    };
    EXPECT_LE(depth(32, true), 12u);   // ~2*log2(32) + 2.
    EXPECT_GE(depth(32, false), 32u);  // Carry chain.
    EXPECT_LT(depth(64, true), depth(64, false) / 4);
}

TEST(WordOps, FastAdderCostsMoreGates) {
    Builder b1, b2;
    const Bits x1 = InputBits(b1, 16, "x"), y1 = InputBits(b1, 16, "y");
    OutputBits(b1, Add(b1, x1, y1), "s");
    const Bits x2 = InputBits(b2, 16, "x"), y2 = InputBits(b2, 16, "y");
    OutputBits(b2, AddFast(b2, x2, y2), "s");
    EXPECT_GT(b2.netlist().NumGates(), b1.netlist().NumGates());
    EXPECT_LT(b2.netlist().NumGates(), 4 * b1.netlist().NumGates());
}

TEST(WordOps, MuxBitsSelects) {
    Builder b;
    const Bits t = InputBits(b, 8, "t");
    const Bits f = InputBits(b, 8, "f");
    const Signal sel = b.MakeInput("sel");
    OutputBits(b, MuxBits(b, sel, t, f), "o");
    std::vector<bool> in = ToBools(0xAA, 8);
    auto fbits = ToBools(0x55, 8);
    in.insert(in.end(), fbits.begin(), fbits.end());
    in.push_back(true);
    EXPECT_EQ(FromBools(b.netlist().EvaluatePlain(in)), 0xAAu);
    in.back() = false;
    EXPECT_EQ(FromBools(b.netlist().EvaluatePlain(in)), 0x55u);
}

}  // namespace
}  // namespace pytfhe::hdl
