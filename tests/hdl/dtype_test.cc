#include "hdl/dtype.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pytfhe::hdl {
namespace {

TEST(DType, TotalBits) {
    EXPECT_EQ(DType::UInt(7).TotalBits(), 7);
    EXPECT_EQ(DType::SInt(9).TotalBits(), 9);
    EXPECT_EQ(DType::Fixed(4, 6).TotalBits(), 10);
    EXPECT_EQ(DType::Float(8, 8).TotalBits(), 17);   // bfloat16-like + sign.
    EXPECT_EQ(DType::Float(5, 11).TotalBits(), 17);  // half-precision-like.
}

TEST(DType, ToString) {
    EXPECT_EQ(DType::SInt(7).ToString(), "SInt(7)");
    EXPECT_EQ(DType::Float(5, 11).ToString(), "Float(5,11)");
    EXPECT_EQ(DType::Fixed(4, 4).ToString(), "Fixed(4,4)");
}

TEST(DType, IntegerRoundTrip) {
    const DType u8 = DType::UInt(8);
    for (int v : {0, 1, 127, 255}) EXPECT_EQ(u8.Quantize(v), v);
    EXPECT_EQ(u8.Quantize(300), 255);  // Saturates.
    EXPECT_EQ(u8.Quantize(-5), 0);

    const DType s7 = DType::SInt(7);
    for (int v : {-64, -1, 0, 1, 63}) EXPECT_EQ(s7.Quantize(v), v);
    EXPECT_EQ(s7.Quantize(100), 63);
    EXPECT_EQ(s7.Quantize(-100), -64);
}

TEST(DType, FixedPointRoundTrip) {
    const DType f = DType::Fixed(4, 4);
    EXPECT_EQ(f.Quantize(1.5), 1.5);
    EXPECT_EQ(f.Quantize(-2.25), -2.25);
    EXPECT_EQ(f.Quantize(0.0625), 0.0625);  // 1/16 = smallest step.
    EXPECT_NEAR(f.Quantize(1.03), 1.0, 0.07);
    EXPECT_EQ(f.Quantize(100.0), 7.9375);  // Saturates at 2^3 - 2^-4.
}

TEST(DType, FloatRoundTripExactValues) {
    const DType bf = DType::Float(8, 8);
    for (double v : {1.0, -2.0, 0.5, 1.5, -0.75, 256.0, 0.001953125})
        EXPECT_EQ(bf.Quantize(v), v) << v;
    EXPECT_EQ(bf.Quantize(0.0), 0.0);
}

TEST(DType, FloatTruncatesMantissa) {
    const DType f = DType::Float(5, 4);  // 4 mantissa bits.
    // 1.03125 = 1 + 1/32 needs 5 bits; truncates down to 1.0.
    EXPECT_EQ(f.Quantize(1.03125), 1.0);
    EXPECT_EQ(f.Quantize(1.0625), 1.0625);  // 1 + 1/16 fits.
}

TEST(DType, FloatOverflowSaturatesToInfinity) {
    const DType f = DType::Float(4, 4);  // Max exp 2^(7)..., bias 7.
    EXPECT_TRUE(std::isinf(f.Quantize(1e9)));
    EXPECT_TRUE(std::isinf(f.Quantize(-1e9)));
    EXPECT_LT(f.Quantize(-1e9), 0);
}

TEST(DType, FloatUnderflowFlushesToZero) {
    const DType f = DType::Float(4, 4);
    EXPECT_EQ(f.Quantize(1e-9), 0.0);
}

TEST(DType, FloatEncodingLayout) {
    // +1.0 in Float(8,8): sign 0, exp = bias = 127, mant = 0.
    const DType bf = DType::Float(8, 8);
    const auto bits = bf.Encode(1.0);
    ASSERT_EQ(bits.size(), 17u);
    for (int i = 0; i < 8; ++i) EXPECT_FALSE(bits[i]) << i;  // Mantissa.
    uint32_t exp = 0;
    for (int i = 0; i < 8; ++i) exp |= static_cast<uint32_t>(bits[8 + i]) << i;
    EXPECT_EQ(exp, 127u);
    EXPECT_FALSE(bits[16]);  // Sign.
}

TEST(DType, QuantizeIsIdempotent) {
    for (const DType& t : {DType::Float(5, 11), DType::Fixed(6, 10),
                           DType::SInt(12), DType::UInt(9)}) {
        for (double v : {3.14159, -2.71828, 0.125, 100.25, -0.001}) {
            const double q = t.Quantize(v);
            EXPECT_EQ(t.Quantize(q), q) << t.ToString() << " " << v;
        }
    }
}

TEST(DType, HalfPrecisionAccuracy) {
    const DType half = DType::Float(5, 11);
    // Relative error of truncation is below 2^-11.
    for (double v : {3.14159, 123.456, 0.000987, -55.5}) {
        EXPECT_NEAR(half.Quantize(v), v, std::abs(v) * std::pow(2.0, -10))
            << v;
    }
}

}  // namespace
}  // namespace pytfhe::hdl
