#include "baseline/mnist_compiler.h"

#include <gtest/gtest.h>
#include <random>

#include "circuit/opt/passes.h"

namespace pytfhe::baseline {
namespace {

MnistOptions Tiny() {
    MnistOptions o;
    o.image = 8;
    return o;
}

TEST(Baseline, AllProfilesBuildValidNetlists) {
    for (const Profile& p : {PyTfheProfile(), CingulataProfile(), E3Profile(),
                             TranspilerProfile()}) {
        const circuit::Netlist n = CompileMnist(p, Tiny());
        EXPECT_FALSE(n.Validate().has_value()) << p.name;
        EXPECT_GT(n.NumGates(), 100u) << p.name;
        // Ten logits of the profile's accumulator width.
        EXPECT_EQ(n.Outputs().size() % 10, 0u) << p.name;
        EXPECT_GE(n.Outputs().size(), 160u) << p.name;
    }
}

TEST(Baseline, GateCountOrderingMatchesPaper) {
    // Fig. 14: PyTFHE < Cingulata < E3 << Transpiler.
    const uint64_t pytfhe =
        CompileMnist(PyTfheProfile(), Tiny()).NumGates();
    const uint64_t cingulata =
        CompileMnist(CingulataProfile(), Tiny()).NumGates();
    const uint64_t e3 = CompileMnist(E3Profile(), Tiny()).NumGates();
    const uint64_t transpiler =
        CompileMnist(TranspilerProfile(), Tiny()).NumGates();
    EXPECT_LT(pytfhe, cingulata);
    EXPECT_LT(cingulata, e3);
    EXPECT_LT(e3, transpiler);
    // Paper: PyTFHE is 65.3% of Cingulata and 53.6% of E3; Transpiler is
    // dramatically larger. Require the right regime, not exact ratios.
    const double vs_cingulata = static_cast<double>(pytfhe) / cingulata;
    const double vs_e3 = static_cast<double>(pytfhe) / e3;
    EXPECT_GT(vs_cingulata, 0.40);  // Paper: 65.3%.
    EXPECT_LT(vs_cingulata, 0.85);
    EXPECT_GT(vs_e3, 0.25);  // Paper: 53.6%.
    EXPECT_LT(vs_e3, 0.75);
    EXPECT_GT(static_cast<double>(transpiler) / pytfhe, 5.0);
}

TEST(Baseline, PyTfheAndCingulataComputeTheSameFunction) {
    // Same arithmetic and widths, different lowering quality: the outputs
    // must agree bit for bit on random images.
    const circuit::Netlist ours = CompileMnist(PyTfheProfile(), Tiny());
    const circuit::Netlist theirs = CompileMnist(CingulataProfile(), Tiny());
    ASSERT_EQ(ours.Inputs().size(), theirs.Inputs().size());
    std::mt19937_64 rng(3);
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<bool> in(ours.Inputs().size());
        for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
        EXPECT_EQ(ours.EvaluatePlain(in), theirs.EvaluatePlain(in)) << trial;
    }
}

TEST(Baseline, E3ComputesTheSameFunctionDespiteWiderAccumulators) {
    // E3's 24-bit multi-word logits agree with ours modulo 2^16 (two's
    // complement truncation commutes with the accumulation).
    const circuit::Netlist ours = CompileMnist(PyTfheProfile(), Tiny());
    const circuit::Netlist e3 = CompileMnist(E3Profile(), Tiny());
    ASSERT_EQ(ours.Inputs().size(), e3.Inputs().size());
    std::mt19937_64 rng(4);
    std::vector<bool> in(ours.Inputs().size());
    for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
    const auto mine = ours.EvaluatePlain(in);
    const auto theirs = e3.EvaluatePlain(in);
    const size_t mine_w = mine.size() / 10, theirs_w = theirs.size() / 10;
    ASSERT_GE(theirs_w, mine_w);
    for (size_t logit = 0; logit < 10; ++logit)
        for (size_t bit = 0; bit < mine_w; ++bit)
            EXPECT_EQ(mine[logit * mine_w + bit],
                      theirs[logit * theirs_w + bit])
                << logit << ":" << bit;
}

TEST(Baseline, TranspilerEmitsGatesForFlatten) {
    // With identical arithmetic knobs, the flatten-copies knob alone adds
    // gates.
    Profile with = TranspilerProfile();
    Profile without = TranspilerProfile();
    without.flatten_emits_copies = false;
    const uint64_t g_with = CompileMnist(with, Tiny()).NumGates();
    const uint64_t g_without = CompileMnist(without, Tiny()).NumGates();
    EXPECT_GT(g_with, g_without);
    // One copy gate per flattened bit: 4x4 pooled outputs x 16 bits.
    EXPECT_EQ(g_with - g_without, 16u * 16u);
}

TEST(Baseline, CingulataUsesOnlyBasicGates) {
    const circuit::Netlist n = CompileMnist(CingulataProfile(), Tiny());
    const auto stats = n.ComputeStats();
    using circuit::GateType;
    for (int t = 0; t < circuit::kNumGateTypes; ++t) {
        const GateType g = static_cast<GateType>(t);
        if (g == GateType::kAnd || g == GateType::kOr || g == GateType::kXor ||
            g == GateType::kNot)
            continue;
        EXPECT_EQ(stats.gate_histogram[t], 0u)
            << circuit::GateTypeName(g);
    }
}

TEST(Baseline, PyTfheProfileUsesRichGateSet) {
    const auto stats = CompileMnist(PyTfheProfile(), Tiny()).ComputeStats();
    uint64_t rich = 0;
    using circuit::GateType;
    for (GateType g : {GateType::kAndNY, GateType::kAndYN, GateType::kOrNY,
                       GateType::kOrYN, GateType::kNand, GateType::kNor,
                       GateType::kXnor})
        rich += stats.gate_histogram[static_cast<int>(g)];
    EXPECT_GT(rich, 0u);
}

TEST(Baseline, OptimizingBaselineOutputRecoversMostOfTheGap) {
    // Running our Yosys-substitute pass over the Cingulata-style output
    // closes most of the distance to the PyTFHE lowering — evidence the
    // gap is optimization quality, not functionality.
    const circuit::Netlist cingulata =
        CompileMnist(CingulataProfile(), Tiny());
    const uint64_t ours = CompileMnist(PyTfheProfile(), Tiny()).NumGates();
    const auto optimized = circuit::Optimize(cingulata);
    EXPECT_LT(optimized.netlist.NumGates(), cingulata.NumGates());
    EXPECT_LT(
        static_cast<double>(optimized.netlist.NumGates()) / ours, 1.6);
}

}  // namespace
}  // namespace pytfhe::baseline
