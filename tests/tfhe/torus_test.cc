#include "tfhe/torus.h"

#include <gtest/gtest.h>

namespace pytfhe::tfhe {
namespace {

TEST(Torus, DoubleRoundTrip) {
    EXPECT_EQ(DoubleToTorus32(0.0), 0u);
    EXPECT_EQ(DoubleToTorus32(0.25), UINT32_C(1) << 30);
    EXPECT_EQ(DoubleToTorus32(0.5), UINT32_C(1) << 31);
    EXPECT_NEAR(Torus32ToDouble(DoubleToTorus32(0.125)), 0.125, 1e-9);
    EXPECT_NEAR(Torus32ToDouble(DoubleToTorus32(-0.125)), -0.125, 1e-9);
}

TEST(Torus, DoubleToTorusWrapsModOne) {
    EXPECT_EQ(DoubleToTorus32(1.25), DoubleToTorus32(0.25));
    EXPECT_EQ(DoubleToTorus32(-0.75), DoubleToTorus32(0.25));
    EXPECT_EQ(DoubleToTorus32(3.0), DoubleToTorus32(0.0));
}

TEST(Torus, AdditionWraps) {
    Torus32 half = DoubleToTorus32(0.5);
    Torus32 three_quarters = DoubleToTorus32(0.75);
    // 0.5 + 0.75 = 1.25 = 0.25 mod 1.
    EXPECT_EQ(half + three_quarters, DoubleToTorus32(0.25));
}

TEST(Torus, ModSwitchToTorus32) {
    EXPECT_EQ(ModSwitchToTorus32(1, 8), UINT32_C(1) << 29);
    EXPECT_EQ(ModSwitchToTorus32(2, 8), UINT32_C(1) << 30);
    EXPECT_EQ(ModSwitchToTorus32(4, 8), UINT32_C(1) << 31);
    EXPECT_EQ(ModSwitchToTorus32(0, 8), 0u);
    // -1/8 equals 7/8 on the torus.
    EXPECT_EQ(ModSwitchToTorus32(-1, 8), ModSwitchToTorus32(7, 8));
}

TEST(Torus, ModSwitchFromTorus32RoundsToNearest) {
    const int32_t msize = 16;
    for (int32_t mu = 0; mu < msize; ++mu) {
        Torus32 t = ModSwitchToTorus32(mu, msize);
        EXPECT_EQ(ModSwitchFromTorus32(t, msize) % msize, mu);
        // A small perturbation should still round back.
        EXPECT_EQ(ModSwitchFromTorus32(t + 1000, msize) % msize, mu);
        EXPECT_EQ(ModSwitchFromTorus32(t - 1000, msize) % msize, mu);
    }
}

TEST(Torus, ModSwitchRoundTripLargeMsize) {
    const int32_t msize = 2048;  // 2N for N = 1024.
    for (int32_t mu : {0, 1, 17, 1023, 1024, 2047}) {
        Torus32 t = ModSwitchToTorus32(mu, msize);
        EXPECT_EQ(ModSwitchFromTorus32(t, msize) % msize, mu) << mu;
    }
}

TEST(Torus, ApproxPhaseKeepsHighBits) {
    Torus32 t = 0x12345678;
    Torus32 approx = ApproxPhase(t, 8);
    // Rounded to 8 fractional bits: low 24 bits zero.
    EXPECT_EQ(approx & 0x00FFFFFFu, 0u);
    // Error at most half of 2^-8.
    int64_t diff = static_cast<int32_t>(approx - t);
    EXPECT_LE(std::abs(diff), INT64_C(1) << 23);
}

}  // namespace
}  // namespace pytfhe::tfhe
