/**
 * @file
 * Multi-bit plaintext encoding and the weighted-LUT programmable
 * bootstrap kernel (tfhe/multibit.h), under toy multibit parameters.
 *
 * The load-bearing suite is the exhaustive equivalence sweep: for every
 * arity k <= 3 and EVERY truth table over k bits, the encrypted LUT
 * bootstrap must agree with the plain table lookup on every input
 * assignment (k = 4 is sampled — 2^16 tables is past the point of
 * diminishing returns). Binary weights 1, 2, 4 make the weighted sum the
 * assignment index, which is exactly how opt/lut_lower.cc packs cones.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "tfhe/multibit.h"
#include "tfhe/noise.h"
#include "tfhe/params.h"

namespace pytfhe::tfhe {
namespace {

TEST(DigitEncoding, RoundTripsEveryDigitEveryModulus) {
    for (int32_t p : {2, 4, 8, 16}) {
        for (int32_t v = 0; v < p; ++v) {
            EXPECT_EQ(DecodeDigit(EncodeDigit(v, p), p), v)
                << "p=" << p << " v=" << v;
        }
    }
}

TEST(DigitEncoding, PhaseSitsAtSlotCenter) {
    // phi(v) = (2v+1)/(4p): successive digits are 1/(2p) apart and the
    // first sits half a slot above zero.
    for (int32_t p : {4, 16}) {
        const Torus32 slot = ModSwitchToTorus32(1, 2 * p);
        EXPECT_EQ(EncodeDigit(0, p), ModSwitchToTorus32(1, 4 * p));
        for (int32_t v = 1; v < p; ++v)
            EXPECT_EQ(EncodeDigit(v, p) - EncodeDigit(v - 1, p), slot);
    }
}

class MultibitKernelTest : public ::testing::Test {
  protected:
    MultibitKernelTest()
        : params_(ToyMultibitParams()),
          rng_(7),
          secret_(params_, rng_),
          gates_(secret_, rng_) {}

    LweSample EncryptDigit(int32_t v, int32_t p) {
        return LweEncryptDigit(v, p, params_.lwe_noise_stddev,
                               secret_.lwe_key, rng_);
    }

    /** Runs one LUT gate over fresh encryptions of `digits`. */
    int32_t EvalLut(const LutKernel& lut, const std::vector<int32_t>& digits) {
        std::vector<LweSample> in;
        in.reserve(digits.size());
        for (int32_t d : digits) in.push_back(EncryptDigit(d, lut.p));
        std::vector<LweCView> ops;
        for (const LweSample& s : in) ops.push_back(ViewOf(s));
        LweSample out(params_.n);
        LutBootstrapInto(gates_, lut,
                         std::span<const LweCView>(ops.data(), ops.size()),
                         ViewOf(out), &scratch_);
        return LweDecryptDigit(out, secret_.lwe_key, lut.p);
    }

    Params params_;
    Rng rng_;
    SecretKeySet secret_;
    GateEvaluator gates_;
    BootstrapScratch scratch_;
};

TEST_F(MultibitKernelTest, DigitEncryptionRoundTrips) {
    for (int32_t p : {2, 4, 8, 16}) {
        for (int32_t v = 0; v < p; ++v) {
            const LweSample c = EncryptDigit(v, p);
            EXPECT_EQ(LweDecryptDigit(c, secret_.lwe_key, p), v)
                << "p=" << p << " v=" << v;
        }
    }
}

/**
 * Exhaustive: every truth table of every arity up to 3, every input
 * assignment, against the plain table bit. One encryption set per arity
 * is reused across all tables (the kernel never mutates its operands).
 */
TEST_F(MultibitKernelTest, ExhaustiveTruthTablesUpToArity3) {
    constexpr int32_t kP = 16;
    ASSERT_GE(MaxMultibitWeightBudget(params_, kP), 21)
        << "toy multibit params no longer carry binary-weight LUT3s";
    for (int32_t k = 1; k <= 3; ++k) {
        const int32_t combos = 1 << k;
        std::vector<int8_t> weights;
        for (int32_t i = 0; i < k; ++i)
            weights.push_back(static_cast<int8_t>(1 << i));

        // Fresh encryptions of every assignment's bit digits, made once.
        std::vector<std::vector<LweSample>> enc(combos);
        for (int32_t m = 0; m < combos; ++m)
            for (int32_t i = 0; i < k; ++i)
                enc[m].push_back(EncryptDigit((m >> i) & 1, kP));

        const uint32_t tables = uint32_t{1} << combos;
        for (uint32_t table = 0; table < tables; ++table) {
            const LutKernel lut{
                std::span<const int8_t>(weights.data(), weights.size()), 0,
                table, 1, kP};
            for (int32_t m = 0; m < combos; ++m) {
                std::vector<LweCView> ops;
                for (const LweSample& s : enc[m]) ops.push_back(ViewOf(s));
                LweSample out(params_.n);
                LutBootstrapInto(
                    gates_, lut,
                    std::span<const LweCView>(ops.data(), ops.size()),
                    ViewOf(out), &scratch_);
                const int32_t want = (table >> m) & 1;
                ASSERT_EQ(LweDecryptDigit(out, secret_.lwe_key, kP), want)
                    << "k=" << k << " table=" << table << " m=" << m;
            }
        }
    }
}

/** Arity 4 sampled: 2^16 tables is too many; 32 random ones suffice. */
TEST_F(MultibitKernelTest, SampledTruthTablesArity4) {
    constexpr int32_t kP = 16;
    ASSERT_GE(MaxMultibitWeightBudget(params_, kP), 85)
        << "toy multibit params no longer carry binary-weight LUT4s";
    const int8_t weights[4] = {1, 2, 4, 8};
    std::mt19937 prng(42);
    for (int32_t t = 0; t < 32; ++t) {
        const uint32_t table = static_cast<uint16_t>(prng());
        const LutKernel lut{std::span<const int8_t>(weights, 4), 0, table, 1,
                            kP};
        for (int32_t m = 0; m < 16; ++m) {
            const int32_t got = EvalLut(
                lut, {m & 1, (m >> 1) & 1, (m >> 2) & 1, (m >> 3) & 1});
            ASSERT_EQ(got, (table >> m) & 1) << "table=" << table
                                             << " m=" << m;
        }
    }
}

/** Negative weights shift the domain below zero; lo re-anchors it. */
TEST_F(MultibitKernelTest, NegativeWeightsAndLo) {
    constexpr int32_t kP = 16;
    // m = a - b, in [-1, 1]; table encodes [a<b, a==b, a>b] as the bits
    // of "is m == that slot" for the greater-than relation: 0b100.
    const int8_t weights[2] = {1, -1};
    const LutKernel lut{std::span<const int8_t>(weights, 2), -1, 0b100, 1,
                        kP};
    EXPECT_EQ(EvalLut(lut, {0, 0}), 0);
    EXPECT_EQ(EvalLut(lut, {0, 1}), 0);
    EXPECT_EQ(EvalLut(lut, {1, 0}), 1);
    EXPECT_EQ(EvalLut(lut, {1, 1}), 0);
}

/** 2-bit output digits: a 3-way popcount in one bootstrap. */
TEST_F(MultibitKernelTest, TwoBitOutputPopcount) {
    constexpr int32_t kP = 16;
    const int8_t weights[3] = {1, 1, 1};
    // Entry i = i (the count itself), 2 bits each: 0b11'10'01'00.
    const LutKernel lut{std::span<const int8_t>(weights, 3), 0, 0xE4, 2, kP};
    for (int32_t m = 0; m < 8; ++m) {
        const int32_t count = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
        ASSERT_EQ(EvalLut(lut, {m & 1, (m >> 1) & 1, (m >> 2) & 1}), count);
    }
}

/** Digit-valued operands: a 2-bit digit consumed with weight 1. */
TEST_F(MultibitKernelTest, DigitOperands) {
    constexpr int32_t kP = 16;
    // out = (digit + bit) & 1 over digit in [0,4), bit in [0,2).
    const int8_t weights[2] = {1, 1};
    uint32_t table = 0;
    for (int32_t m = 0; m < 5; ++m) table |= (m & 1u) << m;
    const LutKernel lut{std::span<const int8_t>(weights, 2), 0, table, 1, kP};
    for (int32_t d = 0; d < 4; ++d)
        for (int32_t b = 0; b < 2; ++b)
            ASSERT_EQ(EvalLut(lut, {d, b}), (d + b) & 1) << d << "+" << b;
}

/** The output view may alias an operand: inputs are read first. */
TEST_F(MultibitKernelTest, InPlaceOutputAliasesOperand) {
    constexpr int32_t kP = 16;
    const int8_t weights[2] = {1, 2};
    const uint32_t table = 0b0110;  // XOR.
    const LutKernel lut{std::span<const int8_t>(weights, 2), 0, table, 1, kP};
    for (int32_t m = 0; m < 4; ++m) {
        LweSample a = EncryptDigit(m & 1, kP);
        LweSample b = EncryptDigit((m >> 1) & 1, kP);
        const LweCView ops[2] = {ViewOf(a), ViewOf(b)};
        LutBootstrapInto(gates_, lut, std::span<const LweCView>(ops, 2),
                         ViewOf(a), &scratch_);
        ASSERT_EQ(LweDecryptDigit(a, secret_.lwe_key, kP),
                  ((m & 1) ^ (m >> 1)) & 1);
    }
}

/** LUT bootstraps profile like boolean ones: one blind rotation each. */
TEST_F(MultibitKernelTest, ProfilesAsOneBootstrap) {
    constexpr int32_t kP = 16;
    const uint64_t before = gates_.profile().Snapshot().bootstrap_count;
    const int8_t weights[1] = {1};
    const LutKernel lut{std::span<const int8_t>(weights, 1), 0, 0b10, 1, kP};
    EvalLut(lut, {1});
    EXPECT_EQ(gates_.profile().Snapshot().bootstrap_count, before + 1);
}

}  // namespace
}  // namespace pytfhe::tfhe
