#include "tfhe/polynomial.h"

#include <gtest/gtest.h>

#include "tfhe/rng.h"

namespace pytfhe::tfhe {
namespace {

TEST(Polynomial, AddSubRoundTrip) {
    const int32_t n = 16;
    Rng rng(1);
    TorusPolynomial a(n), b(n);
    for (int32_t i = 0; i < n; ++i) {
        a.coefs[i] = rng.UniformTorus32();
        b.coefs[i] = rng.UniformTorus32();
    }
    TorusPolynomial c = a;
    c.AddTo(b);
    c.SubTo(b);
    EXPECT_EQ(c.coefs, a.coefs);
}

TEST(Polynomial, MulByXaiIdentity) {
    const int32_t n = 8;
    TorusPolynomial p(n), q(n);
    for (int32_t i = 0; i < n; ++i) p.coefs[i] = i + 1;
    MulByXai(q, 0, p);
    EXPECT_EQ(q.coefs, p.coefs);
}

TEST(Polynomial, MulByXaiShiftsAndNegates) {
    const int32_t n = 4;
    TorusPolynomial p(n), q(n);
    p.coefs = {1, 2, 3, 4};
    // X^1 * (1 + 2X + 3X^2 + 4X^3) = X + 2X^2 + 3X^3 + 4X^4 = -4 + X + 2X^2 + 3X^3.
    MulByXai(q, 1, p);
    EXPECT_EQ(q.coefs[0], static_cast<Torus32>(-4));
    EXPECT_EQ(q.coefs[1], 1u);
    EXPECT_EQ(q.coefs[2], 2u);
    EXPECT_EQ(q.coefs[3], 3u);
}

TEST(Polynomial, MulByXNIsNegation) {
    const int32_t n = 8;
    Rng rng(2);
    TorusPolynomial p(n), q(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    MulByXai(q, n, p);
    for (int32_t i = 0; i < n; ++i)
        EXPECT_EQ(q.coefs[i], static_cast<Torus32>(-p.coefs[i]));
}

TEST(Polynomial, MulByX2NIsIdentity) {
    const int32_t n = 8;
    Rng rng(3);
    TorusPolynomial p(n), q(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    MulByXai(q, 2 * n, p);
    EXPECT_EQ(q.coefs, p.coefs);
}

TEST(Polynomial, MulByXaiComposes) {
    const int32_t n = 16;
    Rng rng(4);
    TorusPolynomial p(n), q1(n), q2(n), q3(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    MulByXai(q1, 5, p);
    MulByXai(q2, 9, q1);
    MulByXai(q3, 14, p);
    EXPECT_EQ(q2.coefs, q3.coefs);
}

TEST(Polynomial, NaiveMulByConstantOne) {
    const int32_t n = 8;
    Rng rng(5);
    IntPolynomial one(n);
    one.coefs[0] = 1;
    TorusPolynomial p(n), r(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    NaiveNegacyclicMul(r, one, p);
    EXPECT_EQ(r.coefs, p.coefs);
}

TEST(Polynomial, NaiveMulMatchesMulByXai) {
    const int32_t n = 16;
    Rng rng(6);
    TorusPolynomial p(n), expected(n), got(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    for (int32_t shift = 0; shift < n; ++shift) {
        IntPolynomial xa(n);
        xa.coefs[shift] = 1;
        NaiveNegacyclicMul(got, xa, p);
        MulByXai(expected, shift, p);
        EXPECT_EQ(got.coefs, expected.coefs) << "shift=" << shift;
    }
}

TEST(Polynomial, NaiveMulDistributesOverAddition) {
    const int32_t n = 32;
    Rng rng(7);
    IntPolynomial a(n);
    TorusPolynomial x(n), y(n);
    for (auto& c : a.coefs)
        c = static_cast<int32_t>(rng.UniformBelow(64)) - 32;
    for (auto& c : x.coefs) c = rng.UniformTorus32();
    for (auto& c : y.coefs) c = rng.UniformTorus32();

    TorusPolynomial xy = x;
    xy.AddTo(y);
    TorusPolynomial r1(n), r2(n), r3(n);
    NaiveNegacyclicMul(r1, a, xy);
    NaiveNegacyclicMul(r2, a, x);
    NaiveNegacyclicMul(r3, a, y);
    r2.AddTo(r3);
    EXPECT_EQ(r1.coefs, r2.coefs);
}

}  // namespace
}  // namespace pytfhe::tfhe
