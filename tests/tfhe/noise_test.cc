#include "tfhe/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tfhe/gates.h"

namespace pytfhe::tfhe {
namespace {

/** Empirical variance of the phase error over repeated gate evaluations. */
double MeasureGateOutputVariance(const Params& params, int32_t samples) {
    Rng rng(81);
    SecretKeySet secret(params, rng);
    GateEvaluator eval(secret, rng);
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    double sum_sq = 0;
    for (int32_t i = 0; i < samples; ++i) {
        LweSample a = secret.Encrypt(true, rng);
        LweSample b = secret.Encrypt(true, rng);
        LweSample out = eval.And(a, b);
        const double err = Torus32ToDouble(
            LwePhase(out, secret.lwe_key) - mu);
        sum_sq += err * err;
    }
    return sum_sq / samples;
}

TEST(Noise, PredictionBoundsEmpiricalVarianceToy) {
    const Params p = ToyParams();
    const NoiseAnalysis a = AnalyzeNoise(p);
    const double measured = MeasureGateOutputVariance(p, 200);
    // The model is an upper-bound heuristic: measured should not exceed it
    // by more than sampling slack, and should not be absurdly below
    // either (within a factor of ~100, since worst-case terms dominate).
    EXPECT_LT(measured, a.gate_output_variance * 4.0);
    EXPECT_GT(measured, a.gate_output_variance / 200.0);
}

TEST(Noise, PredictionBoundsEmpiricalVarianceSmall) {
    const Params p = SmallParams();
    const NoiseAnalysis a = AnalyzeNoise(p);
    const double measured = MeasureGateOutputVariance(p, 60);
    EXPECT_LT(measured, a.gate_output_variance * 4.0);
}

TEST(Noise, DefaultParametersAreSound) {
    // The paper's 128-bit set must evaluate gates reliably.
    const NoiseAnalysis a = AnalyzeNoise(Tfhe128Params());
    EXPECT_LT(a.gate_failure_probability, 1e-6);
    EXPECT_TRUE(CheckParams(Tfhe128Params(), 1e-6));
    // And the noise budget is dominated by the blind rotation.
    EXPECT_GT(a.blind_rotate_variance, 0.0);
    EXPECT_GT(a.gate_output_variance, a.key_switch_variance);
}

TEST(Noise, ToyParametersAreSoundByConstruction) {
    EXPECT_TRUE(CheckParams(ToyParams()));
    EXPECT_TRUE(CheckParams(SmallParams()));
}

TEST(Noise, CheckParamsReportExplainsElisionBudget) {
    std::string report;
    EXPECT_TRUE(CheckParams(Tfhe128Params(), kDefaultMaxGateFailure,
                            &report));
    EXPECT_NE(report.find("elision safety"), std::string::npos) << report;
    EXPECT_NE(report.find("max linear depth"), std::string::npos) << report;
}

TEST(Noise, BrokenParametersAreRejected) {
    Params bad = ToyParams();
    bad.lwe_noise_stddev = 0.05;  // Noise at the decision margin.
    bad.tlwe_noise_stddev = 0.01;
    EXPECT_FALSE(CheckParams(bad));
    EXPECT_GT(AnalyzeNoise(bad).gate_failure_probability, 0.01);
}

TEST(Noise, BrokenParametersActuallyFail) {
    // The model's prediction of failure matches reality: gates misfire.
    Params bad = ToyParams();
    bad.lwe_noise_stddev = 0.08;
    Rng rng(82);
    SecretKeySet secret(bad, rng);
    GateEvaluator eval(secret, rng);
    int32_t wrong = 0;
    for (int32_t i = 0; i < 40; ++i) {
        LweSample a = secret.Encrypt(true, rng);
        LweSample b = secret.Encrypt(true, rng);
        if (!secret.Decrypt(eval.And(a, b))) ++wrong;
    }
    EXPECT_GT(wrong, 0);
}

TEST(Noise, FailureProbabilityIsMonotone) {
    // Variances chosen so erfc stays representable (it underflows to an
    // exact 0 beyond ~27 sigma, which is the desired answer there too).
    EXPECT_LT(FailureProbability(1e-4, 0.125),
              FailureProbability(1e-3, 0.125));
    EXPECT_LT(FailureProbability(1e-3, 0.25), FailureProbability(1e-3, 0.125));
    EXPECT_EQ(FailureProbability(0.0, 0.125), 0.0);
    EXPECT_EQ(FailureProbability(1e-10, 0.125), 0.0);  // Underflow regime.
}

TEST(Noise, ModSwitchVarianceScalesWithDimension) {
    Params small = ToyParams();
    Params big = ToyParams();
    big.n *= 4;
    EXPECT_GT(AnalyzeNoise(big).mod_switch_variance,
              AnalyzeNoise(small).mod_switch_variance);
}

TEST(Noise, ToStringMentionsEveryPhase) {
    const std::string s = AnalyzeNoise(ToyParams()).ToString();
    EXPECT_NE(s.find("blind rotate"), std::string::npos);
    EXPECT_NE(s.find("key switch"), std::string::npos);
    EXPECT_NE(s.find("failure"), std::string::npos);
}

}  // namespace
}  // namespace pytfhe::tfhe
