#include "tfhe/gates.h"

#include <gtest/gtest.h>

namespace pytfhe::tfhe {
namespace {

/** Shared fixture: one key pair + evaluator for all gate tests (toy params). */
class GatesTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        rng_ = new Rng(61);
        secret_ = new SecretKeySet(ToyParams(), *rng_);
        eval_ = new GateEvaluator(*secret_, *rng_);
    }
    static void TearDownTestSuite() {
        delete eval_;
        delete secret_;
        delete rng_;
        eval_ = nullptr;
        secret_ = nullptr;
        rng_ = nullptr;
    }

    LweSample Enc(bool b) { return secret_->Encrypt(b, *rng_); }
    bool Dec(const LweSample& s) { return secret_->Decrypt(s); }

    static Rng* rng_;
    static SecretKeySet* secret_;
    static GateEvaluator* eval_;
};

Rng* GatesTest::rng_ = nullptr;
SecretKeySet* GatesTest::secret_ = nullptr;
GateEvaluator* GatesTest::eval_ = nullptr;

TEST_F(GatesTest, Constant) {
    EXPECT_TRUE(Dec(eval_->Constant(true)));
    EXPECT_FALSE(Dec(eval_->Constant(false)));
}

TEST_F(GatesTest, NotAndCopy) {
    for (bool a : {false, true}) {
        EXPECT_EQ(Dec(eval_->Not(Enc(a))), !a);
        EXPECT_EQ(Dec(eval_->Copy(Enc(a))), a);
    }
}

struct BinaryGateCase {
    const char* name;
    LweSample (GateEvaluator::*fn)(const LweSample&, const LweSample&,
                                   BootstrapScratch*);
    bool truth[4];  // Output for (a, b) = (0,0), (0,1), (1,0), (1,1).
};

class BinaryGateTest : public GatesTest,
                       public ::testing::WithParamInterface<BinaryGateCase> {};

TEST_P(BinaryGateTest, TruthTable) {
    const BinaryGateCase& c = GetParam();
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            LweSample ea = Enc(a), eb = Enc(b);
            LweSample out = (eval_->*c.fn)(ea, eb, nullptr);
            EXPECT_EQ(Dec(out), c.truth[a * 2 + b])
                << c.name << "(" << a << "," << b << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, BinaryGateTest,
    ::testing::Values(
        BinaryGateCase{"AND", &GateEvaluator::And, {0, 0, 0, 1}},
        BinaryGateCase{"NAND", &GateEvaluator::Nand, {1, 1, 1, 0}},
        BinaryGateCase{"OR", &GateEvaluator::Or, {0, 1, 1, 1}},
        BinaryGateCase{"NOR", &GateEvaluator::Nor, {1, 0, 0, 0}},
        BinaryGateCase{"XOR", &GateEvaluator::Xor, {0, 1, 1, 0}},
        BinaryGateCase{"XNOR", &GateEvaluator::Xnor, {1, 0, 0, 1}},
        BinaryGateCase{"ANDNY", &GateEvaluator::AndNY, {0, 1, 0, 0}},
        BinaryGateCase{"ANDYN", &GateEvaluator::AndYN, {0, 0, 1, 0}},
        BinaryGateCase{"ORNY", &GateEvaluator::OrNY, {1, 1, 0, 1}},
        BinaryGateCase{"ORYN", &GateEvaluator::OrYN, {1, 0, 1, 1}}),
    [](const ::testing::TestParamInfo<BinaryGateCase>& info) {
        return info.param.name;
    });

TEST_F(GatesTest, MuxTruthTable) {
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            for (int c = 0; c < 2; ++c) {
                LweSample out = eval_->Mux(Enc(a), Enc(b), Enc(c));
                EXPECT_EQ(Dec(out), a ? b : c)
                    << "MUX(" << a << "," << b << "," << c << ")";
            }
        }
    }
}

TEST_F(GatesTest, GatesComposeIntoHalfAdder) {
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            LweSample ea = Enc(a), eb = Enc(b);
            LweSample sum = eval_->Xor(ea, eb);
            LweSample carry = eval_->And(ea, eb);
            EXPECT_EQ(Dec(sum), (a ^ b) != 0);
            EXPECT_EQ(Dec(carry), (a & b) != 0);
        }
    }
}

TEST_F(GatesTest, DeepGateChainStaysCorrect) {
    // 64 chained NAND gates: output noise must stay constant.
    LweSample x = Enc(true);
    bool expected = true;
    for (int i = 0; i < 64; ++i) {
        x = eval_->Nand(x, x);
        expected = !expected;
        ASSERT_EQ(Dec(x), expected) << "depth " << i;
    }
}

TEST_F(GatesTest, ProfileAccountsBootstraps) {
    eval_->profile().Reset();
    LweSample a = Enc(true), b = Enc(false);
    (void)eval_->And(a, b);
    (void)eval_->Xor(a, b);
    (void)eval_->Mux(a, b, b);
    EXPECT_EQ(eval_->profile().bootstrap_count(), 4u);  // 1 + 1 + 2.
    EXPECT_GT(eval_->profile().blind_rotate_seconds(), 0.0);
    EXPECT_GT(eval_->profile().key_switch_seconds(), 0.0);
    // Snapshot is a plain copyable view of the same counters.
    const tfhe::GateProfileSnapshot snap = eval_->profile().Snapshot();
    EXPECT_EQ(snap.bootstrap_count, 4u);
    EXPECT_EQ(snap.TotalSeconds(), eval_->profile().TotalSeconds());
}

TEST(Gates128, RealParameterSetEvaluatesCorrectly) {
    // A few gates at the paper's 128-bit parameter set; this is the slowest
    // test in the suite (key generation dominates).
    Rng rng(62);
    SecretKeySet secret(Tfhe128Params(), rng);
    GateEvaluator eval(secret, rng);
    LweSample t = secret.Encrypt(true, rng);
    LweSample f = secret.Encrypt(false, rng);
    EXPECT_FALSE(secret.Decrypt(eval.Nand(t, t)));
    EXPECT_TRUE(secret.Decrypt(eval.Xor(t, f)));
    EXPECT_TRUE(secret.Decrypt(eval.Or(f, t)));
    EXPECT_FALSE(secret.Decrypt(eval.And(t, f)));
    EXPECT_TRUE(secret.Decrypt(eval.Mux(t, t, f)));
}

}  // namespace
}  // namespace pytfhe::tfhe
