#include "tfhe/tgsw.h"

#include <gtest/gtest.h>

#include "tfhe/params.h"

namespace pytfhe::tfhe {
namespace {

double TorusDistance(Torus32 a, Torus32 b) {
    return std::abs(Torus32ToDouble(a - b));
}

class TGswTest : public ::testing::Test {
  protected:
    TGswTest() : rng_(41), params_(ToyParams()),
                 key_(params_.big_n, params_.k, rng_),
                 fft_(GetFftPlan(params_.big_n)) {}

    TLweSample EncryptConst(Torus32 mu) {
        return TLweEncryptConst(mu, params_.tlwe_noise_stddev, key_, rng_);
    }

    TGswSampleFft EncryptBitFft(int32_t bit) {
        return TGswToFft(
            TGswEncrypt(bit, params_.bk_l, params_.bk_bg_bit,
                        params_.tlwe_noise_stddev, key_, rng_),
            fft_);
    }

    Rng rng_;
    Params params_;
    TLweKey key_;
    const NegacyclicFft& fft_;
};

TEST_F(TGswTest, DecomposeRecomposesApproximately) {
    const int32_t n = params_.big_n;
    TLweSample s(n, params_.k);
    for (auto& poly : s.a)
        for (auto& c : poly.coefs) c = rng_.UniformTorus32();

    std::vector<IntPolynomial> dec;
    TGswDecompose(dec, s, params_.bk_l, params_.bk_bg_bit);
    ASSERT_EQ(dec.size(),
              static_cast<size_t>((params_.k + 1) * params_.bk_l));

    // Digits are in [-Bg/2, Bg/2).
    const int32_t half_bg = params_.Bg() / 2;
    for (const auto& poly : dec)
        for (int32_t d : poly.coefs) {
            EXPECT_GE(d, -half_bg);
            EXPECT_LT(d, half_bg);
        }

    // sum_j digit_j * Bg^{-(j+1)} approximates each coefficient to within
    // half of the smallest gadget level.
    const double tol = 1.0 / std::pow(2.0, params_.bk_l * params_.bk_bg_bit);
    for (int32_t c = 0; c <= params_.k; ++c) {
        for (int32_t p = 0; p < n; ++p) {
            double recomposed = 0;
            for (int32_t j = 0; j < params_.bk_l; ++j) {
                recomposed += dec[c * params_.bk_l + j].coefs[p] *
                              std::pow(2.0, -params_.bk_bg_bit * (j + 1));
            }
            double orig = Torus32ToDouble(s.a[c].coefs[p]);
            double diff = std::abs(recomposed - orig);
            diff = std::min(diff, std::abs(1.0 - diff));  // torus distance
            EXPECT_LE(diff, tol) << c << "," << p;
        }
    }
}

TEST_F(TGswTest, ExternalProductByOnePreservesMessage) {
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    TLweSample s = EncryptConst(mu);
    TGswSampleFft one = EncryptBitFft(1);
    TLweSample result;
    TGswExternalProduct(result, one, s, fft_);
    TorusPolynomial phase = TLwePhase(result, key_);
    EXPECT_LT(TorusDistance(phase.coefs[0], mu), 1e-4);
}

TEST_F(TGswTest, ExternalProductByZeroKillsMessage) {
    const Torus32 mu = ModSwitchToTorus32(1, 4);
    TLweSample s = EncryptConst(mu);
    TGswSampleFft zero = EncryptBitFft(0);
    TLweSample result;
    TGswExternalProduct(result, zero, s, fft_);
    TorusPolynomial phase = TLwePhase(result, key_);
    EXPECT_LT(TorusDistance(phase.coefs[0], 0), 1e-4);
}

TEST_F(TGswTest, CMuxSelectsFirstWhenBitIsOne) {
    const Torus32 m1 = ModSwitchToTorus32(1, 8);
    const Torus32 m0 = ModSwitchToTorus32(5, 8);
    TLweSample d1 = EncryptConst(m1);
    TLweSample d0 = EncryptConst(m0);
    TGswSampleFft c = EncryptBitFft(1);
    TLweSample result;
    TGswCMux(result, c, d1, d0, fft_);
    EXPECT_LT(TorusDistance(TLwePhase(result, key_).coefs[0], m1), 1e-4);
}

TEST_F(TGswTest, CMuxSelectsSecondWhenBitIsZero) {
    const Torus32 m1 = ModSwitchToTorus32(1, 8);
    const Torus32 m0 = ModSwitchToTorus32(5, 8);
    TLweSample d1 = EncryptConst(m1);
    TLweSample d0 = EncryptConst(m0);
    TGswSampleFft c = EncryptBitFft(0);
    TLweSample result;
    TGswCMux(result, c, d1, d0, fft_);
    EXPECT_LT(TorusDistance(TLwePhase(result, key_).coefs[0], m0), 1e-4);
}

TEST_F(TGswTest, CMuxChainStaysCorrect) {
    // A chain of CMUXes models blind rotation noise growth; after 32
    // selections the message must still decode.
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    TLweSample acc = EncryptConst(mu);
    for (int i = 0; i < 32; ++i) {
        TGswSampleFft bit = EncryptBitFft(i % 2);
        TLweSample other = EncryptConst(mu);
        TLweSample next;
        TGswCMux(next, bit, other, acc, fft_);
        acc = next;
    }
    EXPECT_LT(TorusDistance(TLwePhase(acc, key_).coefs[0], mu), 0.01);
}

TEST_F(TGswTest, ReusedScratchGivesBitIdenticalResults) {
    TGswSampleFft one = EncryptBitFft(1);
    ExternalProductScratch scratch;
    for (int32_t i = 0; i < 4; ++i) {
        TLweSample s = EncryptConst(ModSwitchToTorus32(i, 8));
        TLweSample with_scratch, without;
        TGswExternalProduct(with_scratch, one, s, fft_, &scratch);
        TGswExternalProduct(without, one, s, fft_);
        ASSERT_EQ(with_scratch.a.size(), without.a.size());
        for (size_t c = 0; c < without.a.size(); ++c)
            for (int32_t p = 0; p < params_.big_n; ++p)
                ASSERT_EQ(with_scratch.a[c].coefs[p], without.a[c].coefs[p])
                    << i << "," << c << "," << p;
    }
}

TEST_F(TGswTest, ExternalProductOnPolynomialMessage) {
    // Message with several nonzero coefficients survives multiply-by-1.
    TorusPolynomial msg(params_.big_n);
    for (int32_t i = 0; i < 8; ++i)
        msg.coefs[i * 4] = ModSwitchToTorus32(i % 4, 4);
    TLweSample s = TLweEncrypt(msg, params_.tlwe_noise_stddev, key_, rng_);
    TGswSampleFft one = EncryptBitFft(1);
    TLweSample result;
    TGswExternalProduct(result, one, s, fft_);
    TorusPolynomial phase = TLwePhase(result, key_);
    for (int32_t i = 0; i < 8; ++i)
        EXPECT_LT(TorusDistance(phase.coefs[i * 4], msg.coefs[i * 4]), 1e-4)
            << i;
}

}  // namespace
}  // namespace pytfhe::tfhe
