#include "tfhe/bootstrap.h"

#include <gtest/gtest.h>

namespace pytfhe::tfhe {
namespace {

class BootstrapTest : public ::testing::Test {
  protected:
    BootstrapTest()
        : rng_(51), params_(ToyParams()),
          lwe_key_(params_.n, rng_),
          tlwe_key_(params_.big_n, params_.k, rng_),
          bk_(params_, lwe_key_, tlwe_key_, rng_) {}

    Rng rng_;
    Params params_;
    LweKey lwe_key_;
    TLweKey tlwe_key_;
    BootstrappingKey bk_;
};

TEST_F(BootstrapTest, RefreshesPositivePhaseToPlusMu) {
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    for (int i = 0; i < 10; ++i) {
        LweSample in =
            LweEncrypt(mu, params_.lwe_noise_stddev, lwe_key_, rng_);
        LweSample out = Bootstrap(mu, in, bk_);
        EXPECT_TRUE(LweDecryptBit(out, lwe_key_)) << i;
    }
}

TEST_F(BootstrapTest, RefreshesNegativePhaseToMinusMu) {
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    for (int i = 0; i < 10; ++i) {
        LweSample in =
            LweEncrypt(-mu, params_.lwe_noise_stddev, lwe_key_, rng_);
        LweSample out = Bootstrap(mu, in, bk_);
        EXPECT_FALSE(LweDecryptBit(out, lwe_key_)) << i;
    }
}

TEST_F(BootstrapTest, OutputNoiseIsBoundedRegardlessOfInputNoise) {
    // Feed a sample with noise close to the decryption limit; the
    // bootstrapped output must have small fresh noise.
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    LweSample in = LweEncrypt(mu, 0.01, lwe_key_, rng_);
    LweSample out = Bootstrap(mu, in, bk_);
    const double phase = Torus32ToDouble(LwePhase(out, lwe_key_));
    EXPECT_NEAR(phase, 0.125, 0.02);
}

TEST_F(BootstrapTest, WithoutKeySwitchLivesUnderExtractedKey) {
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    LweSample in = LweEncrypt(mu, params_.lwe_noise_stddev, lwe_key_, rng_);
    LweSample out = BootstrapWithoutKeySwitch(mu, in, bk_);
    EXPECT_EQ(out.N(), params_.ExtractedN());
    LweKey extracted = tlwe_key_.ExtractLweKey();
    EXPECT_TRUE(LweDecryptBit(out, extracted));
}

TEST_F(BootstrapTest, BlindRotateByZeroIsIdentity) {
    TorusPolynomial testvect(params_.big_n);
    for (auto& c : testvect.coefs) c = ModSwitchToTorus32(1, 8);
    TLweSample acc(params_.big_n, params_.k);
    acc.SetTrivial(testvect);
    std::vector<int32_t> bara(params_.n, 0);
    BlindRotate(acc, bara, bk_);
    // All-zero rotation leaves the trivial sample untouched.
    for (int32_t i = 0; i < params_.big_n; ++i)
        EXPECT_EQ(acc.Body().coefs[i], testvect.coefs[i]);
}

TEST_F(BootstrapTest, ChainedBootstrapsStayCorrect) {
    // Repeatedly bootstrapping its own output models a long gate chain.
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    LweSample s = LweEncrypt(mu, params_.lwe_noise_stddev, lwe_key_, rng_);
    for (int i = 0; i < 20; ++i) {
        s = Bootstrap(mu, s, bk_);
        ASSERT_TRUE(LweDecryptBit(s, lwe_key_)) << "iteration " << i;
    }
}

TEST_F(BootstrapTest, FunctionalBootstrapEvaluatesLut) {
    // p = 4 message space; LUT computes (3m + 1) mod 4.
    const int32_t p = 4;
    const TorusPolynomial tv = MakeLutTestVector(
        params_, p, [](int32_t m) { return (3 * m + 1) % 4; });
    for (int32_t m = 0; m < p; ++m) {
        LweSample in = LweEncrypt(EncodePbsMessage(m, p),
                                  params_.lwe_noise_stddev, lwe_key_, rng_);
        LweSample out = FunctionalBootstrap(tv, in, bk_);
        EXPECT_EQ(DecodePbsMessage(LwePhase(out, lwe_key_), p),
                  (3 * m + 1) % 4)
            << m;
    }
}

TEST_F(BootstrapTest, FunctionalBootstrapSquareLut) {
    const int32_t p = 8;
    const TorusPolynomial tv = MakeLutTestVector(
        params_, p, [](int32_t m) { return (m * m) % 8; });
    for (int32_t m = 0; m < p; ++m) {
        LweSample in = LweEncrypt(EncodePbsMessage(m, p),
                                  params_.lwe_noise_stddev, lwe_key_, rng_);
        LweSample out = FunctionalBootstrap(tv, in, bk_);
        EXPECT_EQ(DecodePbsMessage(LwePhase(out, lwe_key_), p), (m * m) % 8)
            << m;
    }
}

TEST_F(BootstrapTest, FunctionalBootstrapIdentityRefreshesNoise) {
    const int32_t p = 4;
    const TorusPolynomial tv =
        MakeLutTestVector(params_, p, [](int32_t m) { return m; });
    // Chain identity LUTs: noise must stay bounded across applications.
    // Inputs are slot-centered ((2m+1)/4p); outputs land on m/p, so each
    // round decodes and re-centers before the next bootstrap.
    int32_t m = 2;
    for (int i = 0; i < 5; ++i) {
        LweSample s = LweEncrypt(EncodePbsMessage(m, p),
                                 params_.lwe_noise_stddev, lwe_key_, rng_);
        s = FunctionalBootstrap(tv, s, bk_);
        m = DecodePbsMessage(LwePhase(s, lwe_key_), p);
        ASSERT_EQ(m, 2) << "iteration " << i;
    }
}

TEST(BootstrapSmallParams, WorksAtLargerDimension) {
    Rng rng(52);
    const Params p = SmallParams();
    LweKey lwe_key(p.n, rng);
    TLweKey tlwe_key(p.big_n, p.k, rng);
    BootstrappingKey bk(p, lwe_key, tlwe_key, rng);
    const Torus32 mu = ModSwitchToTorus32(1, 8);
    for (int i = 0; i < 4; ++i) {
        const bool bit = i % 2;
        LweSample in =
            LweEncrypt(bit ? mu : -mu, p.lwe_noise_stddev, lwe_key, rng);
        LweSample out = Bootstrap(mu, in, bk);
        EXPECT_EQ(LweDecryptBit(out, lwe_key), bit) << i;
    }
}

}  // namespace
}  // namespace pytfhe::tfhe
