#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "tfhe/gates.h"
#include "tfhe/noise.h"

namespace pytfhe::tfhe {
namespace {

constexpr Torus32 kEighth = UINT32_C(1) << 29;   // 1/8 on the torus.
constexpr Torus32 kQuarter = UINT32_C(1) << 30;  // 1/4 on the torus.

/** Encrypts a bit in either encoding with the parameter set's LWE noise. */
LweSample EncryptDomain(bool bit, bool linear, const Params& p,
                        const LweKey& key, Rng& rng) {
    const Torus32 mu = linear ? (bit ? kQuarter : -kQuarter)
                              : (bit ? kEighth : -kEighth);
    return LweEncrypt(mu, p.lwe_noise_stddev, key, rng);
}

/** Phase error relative to the ideal +-1/4 linear-domain message. */
double LinearPhaseError(const LweSample& s, bool bit, const LweKey& key) {
    const Torus32 ideal = bit ? kQuarter : -kQuarter;
    return Torus32ToDouble(LwePhase(s, key) - ideal);
}

class LinearGateTest : public ::testing::Test {
  protected:
    LinearGateTest() : params_(Tfhe128Params()), rng_(1234) {
        key_ = LweKey(params_.n, rng_);
    }

    Params params_;
    Rng rng_;
    LweKey key_;
};

TEST_F(LinearGateTest, LinearXorAllDomainMixesAllBitCombos) {
    for (int al = 0; al < 2; ++al) {
        for (int bl = 0; bl < 2; ++bl) {
            for (int av = 0; av < 2; ++av) {
                for (int bv = 0; bv < 2; ++bv) {
                    const LweSample a =
                        EncryptDomain(av, al, params_, key_, rng_);
                    const LweSample b =
                        EncryptDomain(bv, bl, params_, key_, rng_);
                    const LweSample x = LweLinearXor(a, al, b, bl);
                    const LweSample n = LweLinearXnor(a, al, b, bl);
                    EXPECT_EQ(LweDecryptBit(x, key_), av != bv)
                        << "domains " << al << bl << " bits " << av << bv;
                    EXPECT_EQ(LweDecryptBit(n, key_), av == bv)
                        << "domains " << al << bl << " bits " << av << bv;
                }
            }
        }
    }
}

TEST_F(LinearGateTest, LinearNotNegatesLinearDomainBit) {
    for (int v = 0; v < 2; ++v) {
        const LweSample a = EncryptDomain(v, true, params_, key_, rng_);
        EXPECT_EQ(LweDecryptBit(LweLinearNot(a), key_), v == 0);
    }
}

TEST_F(LinearGateTest, DuplicatedOperandCollapsesExactly) {
    // XOR(a, a) must decrypt to 0 even though the torus sum 2a + 1/4 wraps
    // (e.g. 2*(1/4) + 1/4 = 3/4 = -1/4 mod 1).
    for (int al = 0; al < 2; ++al) {
        for (int v = 0; v < 2; ++v) {
            const LweSample a = EncryptDomain(v, al, params_, key_, rng_);
            EXPECT_FALSE(LweDecryptBit(LweLinearXor(a, al, a, al), key_));
            EXPECT_TRUE(LweDecryptBit(LweLinearXnor(a, al, a, al), key_));
        }
    }
}

/**
 * Empirical noise of chained linear XORs versus the analytic model: a
 * chain of k linear XORs over k+1 fresh gate-domain encryptions carries
 * every leaf with total coefficient 2, so the model predicts phase
 * variance 4 * (k+1) * sigma_lwe^2. The CGGI formulas are worst-case
 * flavored, so the measured variance must come in at or below the
 * prediction (up to sampling error of the 1000-trial estimate).
 */
TEST_F(LinearGateTest, ChainedXorVarianceMatchesModel) {
    const NoiseAnalysis noise = AnalyzeNoise(params_);
    const int max_depth = std::min(noise.max_linear_depth, 6);
    ASSERT_GE(max_depth, 1) << "Tfhe128 must afford some elision";
    std::mt19937_64 bits(99);
    constexpr int kTrials = 1000;
    for (int k = 1; k <= max_depth; ++k) {
        double sum_sq = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
            bool acc_bit = bits() & 1;
            LweSample acc =
                EncryptDomain(acc_bit, false, params_, key_, rng_);
            bool acc_linear = false;
            for (int i = 0; i < k; ++i) {
                const bool b = bits() & 1;
                const LweSample fresh =
                    EncryptDomain(b, false, params_, key_, rng_);
                acc = LweLinearXor(acc, acc_linear, fresh, false);
                acc_bit = acc_bit != b;
                acc_linear = true;
            }
            const double err = LinearPhaseError(acc, acc_bit, key_);
            sum_sq += err * err;
        }
        const double measured = sum_sq / kTrials;
        const double predicted = 4.0 * (k + 1) * noise.fresh_lwe_variance;
        // 1000-trial variance estimates scatter by ~sqrt(2/1000) ~ 4.5%;
        // allow 3 sigma on top of the model's worst-case slack.
        EXPECT_LE(measured, predicted * 1.14) << "depth " << k;
        // And the chain must not be noiseless either - the model is tight
        // for fresh encryptions, so grossly low readings flag a phase bug.
        EXPECT_GE(measured, predicted * 0.8) << "depth " << k;
    }
}

/**
 * Same chain, but over ciphertexts carrying bootstrap-output noise — the
 * distribution elided gates actually consume in a compiled program.
 * Running 1000 real bootstraps per depth at TFHE-128 is minutes of work;
 * encrypting at sigma = sqrt(gate_output_variance) draws from the model's
 * distribution of a bootstrap output directly, which is the quantity the
 * variance prediction is defined over.
 */
TEST_F(LinearGateTest, ChainedXorVarianceMatchesModelOnBootstrapNoise) {
    const NoiseAnalysis noise = AnalyzeNoise(params_);
    const double sigma = std::sqrt(noise.gate_output_variance);
    const int max_depth = std::min(noise.max_linear_depth, 4);
    ASSERT_GE(max_depth, 1);
    std::mt19937_64 bits(1234);
    constexpr int kTrials = 1000;
    for (int k = 1; k <= max_depth; ++k) {
        double sum_sq = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
            bool acc_bit = bits() & 1;
            LweSample acc = LweEncrypt(
                acc_bit ? kEighth : -kEighth, sigma, key_, rng_);
            bool acc_linear = false;
            for (int i = 0; i < k; ++i) {
                const bool b = bits() & 1;
                const LweSample fresh = LweEncrypt(
                    b ? kEighth : -kEighth, sigma, key_, rng_);
                acc = LweLinearXor(acc, acc_linear, fresh, false);
                acc_bit = acc_bit != b;
                acc_linear = true;
            }
            const double err = LinearPhaseError(acc, acc_bit, key_);
            sum_sq += err * err;
        }
        const double measured = sum_sq / kTrials;
        const double predicted = 4.0 * (k + 1) * noise.gate_output_variance;
        EXPECT_LE(measured, predicted * 1.14) << "depth " << k;
        EXPECT_GE(measured, predicted * 0.8) << "depth " << k;
    }
}

TEST(LinearNoiseModelTest, ToStringReportsElisionBudget) {
    const NoiseAnalysis a = AnalyzeNoise(Tfhe128Params());
    const std::string s = a.ToString();
    EXPECT_NE(s.find("elision safety"), std::string::npos) << s;
    EXPECT_NE(s.find("max linear depth"), std::string::npos) << s;
    EXPECT_GE(a.max_linear_depth, 1);
    EXPECT_LE(a.max_linear_depth, 64);
}

TEST(LinearNoiseModelTest, MaxLinearDepthShrinksWithSafetyMargin) {
    const NoiseAnalysis a = AnalyzeNoise(Tfhe128Params());
    const int loose = MaxLinearDepth(a, kDefaultMaxGateFailure, 1.0);
    const int tight = MaxLinearDepth(a, kDefaultMaxGateFailure, 8.0);
    EXPECT_LE(tight, loose);
}

}  // namespace
}  // namespace pytfhe::tfhe
