#include "tfhe/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pytfhe::tfhe {
namespace {

TEST(Serialization, ParamsRoundTrip) {
    for (const Params& p : {ToyParams(), SmallParams(), Tfhe128Params()}) {
        std::stringstream ss;
        SaveParams(ss, p);
        auto q = LoadParams(ss);
        ASSERT_TRUE(q.has_value()) << p.name;
        EXPECT_EQ(q->name, p.name);
        EXPECT_EQ(q->n, p.n);
        EXPECT_EQ(q->big_n, p.big_n);
        EXPECT_EQ(q->bk_l, p.bk_l);
        EXPECT_EQ(q->ks_t, p.ks_t);
        EXPECT_EQ(q->lwe_noise_stddev, p.lwe_noise_stddev);
    }
}

TEST(Serialization, LweSampleRoundTrip) {
    Rng rng(101);
    const Params p = ToyParams();
    LweKey key(p.n, rng);
    LweSample s = LweEncryptBit(true, p.lwe_noise_stddev, key, rng);
    std::stringstream ss;
    SaveLweSample(ss, s);
    auto t = LoadLweSample(ss);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->a, s.a);
    EXPECT_EQ(t->b, s.b);
    EXPECT_TRUE(LweDecryptBit(*t, key));
}

TEST(Serialization, SampleBatchRoundTrip) {
    Rng rng(102);
    const Params p = ToyParams();
    LweKey key(p.n, rng);
    std::vector<LweSample> batch;
    for (int i = 0; i < 7; ++i)
        batch.push_back(LweEncryptBit(i % 2, p.lwe_noise_stddev, key, rng));
    std::stringstream ss;
    SaveLweSamples(ss, batch);
    auto loaded = LoadLweSamples(ss);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(LweDecryptBit((*loaded)[i], key), i % 2 == 1);
}

TEST(Serialization, SecretKeySetRoundTrip) {
    Rng rng(103);
    SecretKeySet keys(ToyParams(), rng);
    std::stringstream ss;
    SaveSecretKeySet(ss, keys);
    auto loaded = LoadSecretKeySet(ss);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->lwe_key.key, keys.lwe_key.key);
    EXPECT_EQ(loaded->tlwe_key.key[0].coefs, keys.tlwe_key.key[0].coefs);

    // A ciphertext from the original keys decrypts under the loaded ones.
    LweSample s = keys.Encrypt(true, rng);
    EXPECT_TRUE(loaded->Decrypt(s));
}

TEST(Serialization, BootstrappingKeyRoundTripEvaluatesGates) {
    Rng rng(104);
    SecretKeySet secret(ToyParams(), rng);
    auto original = std::make_shared<BootstrappingKey>(
        secret.params, secret.lwe_key, secret.tlwe_key, rng);

    std::stringstream ss;
    SaveBootstrappingKey(ss, *original);
    std::string error;
    auto loaded = LoadBootstrappingKey(ss, &error);
    ASSERT_TRUE(loaded.has_value()) << error;

    // The server restored from disk computes correct gates.
    GateEvaluator eval(
        std::make_shared<BootstrappingKey>(std::move(*loaded)));
    LweSample a = secret.Encrypt(true, rng);
    LweSample b = secret.Encrypt(false, rng);
    EXPECT_TRUE(secret.Decrypt(eval.Nand(a, b)));
    EXPECT_TRUE(secret.Decrypt(eval.Xor(a, b)));
    EXPECT_FALSE(secret.Decrypt(eval.And(a, b)));
}

TEST(Serialization, RejectsWrongMagic) {
    Rng rng(105);
    const Params p = ToyParams();
    LweKey key(p.n, rng);
    std::stringstream ss;
    SaveLweSample(ss, LweEncryptBit(true, p.lwe_noise_stddev, key, rng));
    std::string error;
    EXPECT_FALSE(LoadParams(ss, &error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(Serialization, RejectsTruncation) {
    std::stringstream ss;
    SaveParams(ss, ToyParams());
    std::string bytes = ss.str();
    for (size_t cut : {size_t{3}, size_t{9}, bytes.size() - 2}) {
        std::stringstream truncated(bytes.substr(0, cut));
        std::string error;
        EXPECT_FALSE(LoadParams(truncated, &error).has_value()) << cut;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Serialization, RejectsGarbage) {
    // Fuzz-ish: random byte blobs never crash, always error cleanly.
    std::mt19937_64 prng(9);
    for (int trial = 0; trial < 50; ++trial) {
        std::string blob(1 + prng() % 200, '\0');
        for (auto& c : blob) c = static_cast<char>(prng());
        std::stringstream ss(blob);
        std::string error;
        EXPECT_FALSE(LoadBootstrappingKey(ss, &error).has_value());
        std::stringstream ss2(blob);
        EXPECT_FALSE(LoadSecretKeySet(ss2, &error).has_value());
    }
}

}  // namespace
}  // namespace pytfhe::tfhe
