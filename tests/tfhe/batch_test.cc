/**
 * @file
 * Bit-exactness of the batched bootstrapping pipeline against the scalar
 * path: batched FFT entry points, the batched external product, batched
 * blind rotation / gate bootstrap, and the mixed-kind evaluator batch API.
 * Every comparison is EXPECT_EQ on raw Torus32 words — the batch kernels
 * promise the identical IEEE operation sequence per lane, not "close".
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tfhe/bootstrap_batch.h"
#include "tfhe/gates.h"
#include "tfhe/params.h"

namespace pytfhe::tfhe {
namespace {

bool SameLwe(const LweSample& x, const LweSample& y) {
    return x.a == y.a && x.b == y.b;
}

bool SameTlwe(const TLweSample& x, const TLweSample& y) {
    if (x.K() != y.K() || x.BigN() != y.BigN()) return false;
    for (size_t i = 0; i < x.a.size(); ++i)
        if (x.a[i].coefs != y.a[i].coefs) return false;
    return true;
}

// ------------------------------------------------------------- FFT kernels

class BatchFftTest : public ::testing::Test {
  protected:
    static constexpr int32_t kN = 64;
    BatchFftTest() : fft_(GetFftPlan(kN)), rng_(123) {}
    const NegacyclicFft& fft_;
    Rng rng_;
};

TEST_F(BatchFftTest, ForwardPackedBatchMatchesScalarPerLane) {
    const int32_t half = kN / 2;
    for (int32_t b = 1; b <= 8; ++b) {
        // Small-integer packed inputs, the same domain gadget digits live in.
        std::vector<FreqPolynomial> scalar(b);
        BatchFreqPolynomial batch(half, b);
        for (int32_t l = 0; l < b; ++l) {
            scalar[l].ResizeHalf(half);
            for (int32_t j = 0; j < half; ++j) {
                const double re = static_cast<double>(
                    static_cast<int32_t>(rng_.UniformTorus32() % 65) - 32);
                const double im = static_cast<double>(
                    static_cast<int32_t>(rng_.UniformTorus32() % 65) - 32);
                scalar[l].Re()[j] = re;
                scalar[l].Im()[j] = im;
                batch.Re()[static_cast<size_t>(j) * b + l] = re;
                batch.Im()[static_cast<size_t>(j) * b + l] = im;
            }
        }
        for (int32_t l = 0; l < b; ++l) fft_.ForwardPacked(scalar[l]);
        fft_.ForwardPackedBatch(batch);
        for (int32_t l = 0; l < b; ++l) {
            for (int32_t j = 0; j < half; ++j) {
                const size_t at = static_cast<size_t>(j) * b + l;
                EXPECT_EQ(scalar[l].Re()[j], batch.Re()[at])
                    << "b=" << b << " lane=" << l << " j=" << j;
                EXPECT_EQ(scalar[l].Im()[j], batch.Im()[at]);
            }
        }
    }
}

// --------------------------------------------------------- external product

class BatchKernelTest : public ::testing::Test {
  protected:
    BatchKernelTest()
        : rng_(77), params_(ToyParams()),
          key_(params_.big_n, params_.k, rng_),
          fft_(GetFftPlan(params_.big_n)) {}

    TGswSampleFft EncryptBitFft(int32_t bit) {
        return TGswToFft(
            TGswEncrypt(bit, params_.bk_l, params_.bk_bg_bit,
                        params_.tlwe_noise_stddev, key_, rng_),
            fft_);
    }

    TLweSample RandomTlwe() {
        TLweSample s(params_.big_n, params_.k);
        for (auto& poly : s.a)
            for (auto& c : poly.coefs) c = rng_.UniformTorus32();
        return s;
    }

    Rng rng_;
    Params params_;
    TLweKey key_;
    const NegacyclicFft& fft_;
};

TEST_F(BatchKernelTest, ExternalProductBatchMatchesScalarPerLane) {
    const TGswSampleFft c = EncryptBitFft(1);
    BatchExternalProductScratch scratch;
    for (int32_t b = 1; b <= 6; ++b) {
        std::vector<TLweSample> samples;
        for (int32_t l = 0; l < b; ++l) samples.push_back(RandomTlwe());

        std::vector<TLweSample> batch_out;
        TGswExternalProductBatch(batch_out, c, samples, b, fft_, scratch);

        for (int32_t l = 0; l < b; ++l) {
            TLweSample want;
            TGswExternalProduct(want, c, samples[l], fft_);
            EXPECT_TRUE(SameTlwe(want, batch_out[l]))
                << "b=" << b << " lane=" << l;
        }
    }
}

// ----------------------------------------------------------- full bootstrap

class BatchBootstrapTest : public ::testing::Test {
  protected:
    BatchBootstrapTest() : rng_(99), secret_(ToyParams(), rng_) {}

    LweSample EncryptBit(bool bit) { return secret_.Encrypt(bit, rng_); }

    Rng rng_;
    SecretKeySet secret_;
};

TEST_F(BatchBootstrapTest, BatchedGateBootstrapMatchesScalarAllSizes) {
    GateEvaluator ev(secret_, rng_);
    // B = 1..8 covers the single-lane degenerate case, non-multiples of the
    // SIMD group width (ragged tails inside the kernels), and a full batch.
    for (int32_t b = 1; b <= 8; ++b) {
        std::vector<LweSample> inputs;
        for (int32_t l = 0; l < b; ++l)
            inputs.push_back(EncryptBit((l + b) % 2 == 0));

        std::vector<const LweSample*> in(b);
        std::vector<LweSample> outs(b);
        std::vector<LweSample*> out(b);
        for (int32_t l = 0; l < b; ++l) {
            in[l] = &inputs[l];
            out[l] = &outs[l];
        }
        BatchScratch scratch;
        BatchedGateBootstrap(kGateMu, in.data(), out.data(), b, ev.key(),
                             &scratch);

        for (int32_t l = 0; l < b; ++l) {
            const LweSample want = Bootstrap(kGateMu, inputs[l], ev.key());
            EXPECT_TRUE(SameLwe(want, outs[l])) << "b=" << b << " lane=" << l;
        }
    }
}

TEST_F(BatchBootstrapTest, ZeroMaskLaneInsideMixedBatchMatchesScalar) {
    GateEvaluator ev(secret_, rng_);
    // A trivial sample has every mask coefficient zero, so every one of its
    // mod-switched bara entries is zero: inside a mixed batch that lane must
    // ride through columns other lanes rotate, exercising the signed-zero
    // pass-through the scalar path handles with `continue`.
    LweSample trivial(secret_.params.n);
    trivial.SetTrivial(kGateMu);
    LweSample noisy = EncryptBit(true);

    std::vector<const LweSample*> in = {&trivial, &noisy, &trivial};
    std::vector<LweSample> outs(3);
    std::vector<LweSample*> out = {&outs[0], &outs[1], &outs[2]};
    BatchedGateBootstrap(kGateMu, in.data(), out.data(), 3, ev.key());

    for (int32_t l = 0; l < 3; ++l) {
        const LweSample want = Bootstrap(kGateMu, *in[l], ev.key());
        EXPECT_TRUE(SameLwe(want, outs[l])) << "lane=" << l;
    }
}

TEST_F(BatchBootstrapTest, AllGateKindsMixedBatchMatchesScalar) {
    GateEvaluator ev(secret_, rng_);

    const LweSample a = EncryptBit(true);
    const LweSample b = EncryptBit(false);

    // The full two-input bootstrapped gate table, as one mixed-kind batch:
    // every kind is just a different linear prelude into the same +-1/8
    // bootstrap.
    struct Case {
        const char* name;
        int32_t ca, cb;
        Torus32 offset;
        LweSample (GateEvaluator::*scalar)(const LweSample&,
                                           const LweSample&,
                                           BootstrapScratch*);
    };
    const Case cases[] = {
        {"And", +1, +1, static_cast<Torus32>(-kGateMu), &GateEvaluator::And},
        {"Nand", -1, -1, kGateMu, &GateEvaluator::Nand},
        {"Or", +1, +1, kGateMu, &GateEvaluator::Or},
        {"Nor", -1, -1, static_cast<Torus32>(-kGateMu), &GateEvaluator::Nor},
        {"Xor", +2, +2, kGateQuarter, nullptr},
        {"Xnor", +2, +2, static_cast<Torus32>(-kGateQuarter), nullptr},
        {"AndNY", -1, +1, static_cast<Torus32>(-kGateMu),
         &GateEvaluator::AndNY},
        {"AndYN", +1, -1, static_cast<Torus32>(-kGateMu),
         &GateEvaluator::AndYN},
        {"OrNY", -1, +1, kGateMu, &GateEvaluator::OrNY},
        {"OrYN", +1, -1, kGateMu, &GateEvaluator::OrYN},
    };
    const int32_t count = static_cast<int32_t>(std::size(cases));

    std::vector<LweSample> outs(count);
    std::vector<BatchGateSpec> specs(count);
    for (int32_t i = 0; i < count; ++i)
        specs[i] = BatchGateSpec{cases[i].ca, &a, cases[i].cb, &b,
                                 cases[i].offset, &outs[i]};
    BatchScratch scratch;
    ev.BatchedLinearBootstrap(specs.data(), count, &scratch);

    for (int32_t i = 0; i < count; ++i) {
        LweSample want;
        if (cases[i].scalar != nullptr) {
            want = (ev.*cases[i].scalar)(a, b, nullptr);
        } else if (cases[i].offset == kGateQuarter) {
            want = ev.Xor(a, b);
        } else {
            want = ev.Xnor(a, b);
        }
        EXPECT_TRUE(SameLwe(want, outs[i])) << cases[i].name;
        EXPECT_EQ(secret_.Decrypt(outs[i]), secret_.Decrypt(want))
            << cases[i].name;
    }
}

TEST_F(BatchBootstrapTest, BatchProfileCountsEveryGate) {
    GateEvaluator ev(secret_, rng_);
    const LweSample a = EncryptBit(true);
    const LweSample b = EncryptBit(true);
    std::vector<LweSample> outs(4);
    std::vector<BatchGateSpec> specs;
    for (int32_t i = 0; i < 4; ++i)
        specs.push_back(BatchGateSpec{+1, &a, +1, &b,
                                      static_cast<Torus32>(-kGateMu),
                                      &outs[i]});
    ev.BatchedLinearBootstrap(specs.data(), 4);
    EXPECT_EQ(ev.profile().bootstrap_count(), 4u);
    EXPECT_GT(ev.profile().blind_rotate_seconds(), 0.0);
    for (const LweSample& o : outs) EXPECT_TRUE(secret_.Decrypt(o));
}

TEST_F(BatchBootstrapTest, RaggedTailReusesScratchAcrossBatchSizes) {
    GateEvaluator ev(secret_, rng_);
    const LweSample a = EncryptBit(true);
    const LweSample b = EncryptBit(false);
    BatchScratch scratch;
    // Full batch then a smaller tail through the SAME scratch: the shrunken
    // call must not read stale wide-batch state.
    for (int32_t count : {4, 4, 3, 1, 4}) {
        std::vector<LweSample> outs(count);
        std::vector<BatchGateSpec> specs;
        for (int32_t i = 0; i < count; ++i)
            specs.push_back(BatchGateSpec{+1, &a, +1, &b, kGateMu, &outs[i]});
        ev.BatchedLinearBootstrap(specs.data(), count, &scratch);
        const LweSample want = ev.Or(a, b);
        for (int32_t i = 0; i < count; ++i)
            EXPECT_TRUE(SameLwe(want, outs[i])) << "count=" << count;
    }
}

// One worker per thread with its own BatchScratch against one shared key:
// the concurrency label pulls this under -DPYTFHE_SANITIZE=thread.
TEST_F(BatchBootstrapTest, ConcurrentBatchesWithPrivateScratchAreExact) {
    GateEvaluator ev(secret_, rng_);
    const LweSample a = EncryptBit(true);
    const LweSample b = EncryptBit(true);
    const LweSample want = ev.And(a, b);

    constexpr int32_t kThreads = 4;
    std::vector<int32_t> ok(kThreads, 0);
    std::vector<std::thread> threads;
    for (int32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            BatchScratch scratch;
            std::vector<LweSample> outs(3);
            std::vector<BatchGateSpec> specs;
            for (int32_t i = 0; i < 3; ++i)
                specs.push_back(BatchGateSpec{
                    +1, &a, +1, &b, static_cast<Torus32>(-kGateMu),
                    &outs[i]});
            ev.BatchedLinearBootstrap(specs.data(), 3, &scratch);
            int32_t good = 0;
            for (const LweSample& o : outs) good += SameLwe(want, o) ? 1 : 0;
            ok[t] = good;
        });
    }
    for (auto& th : threads) th.join();
    for (int32_t t = 0; t < kThreads; ++t) EXPECT_EQ(ok[t], 3) << t;
}

}  // namespace
}  // namespace pytfhe::tfhe
