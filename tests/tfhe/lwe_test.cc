#include "tfhe/lwe.h"

#include <gtest/gtest.h>

#include "tfhe/params.h"

namespace pytfhe::tfhe {
namespace {

TEST(Lwe, EncryptDecryptBit) {
    Rng rng(21);
    const Params p = Tfhe128Params();
    LweKey key(p.n, rng);
    for (int i = 0; i < 50; ++i) {
        const bool bit = (i % 2) == 0;
        LweSample s = LweEncryptBit(bit, p.lwe_noise_stddev, key, rng);
        EXPECT_EQ(LweDecryptBit(s, key), bit) << i;
    }
}

TEST(Lwe, EncryptDecryptMessageSpace) {
    Rng rng(22);
    const Params p = Tfhe128Params();
    LweKey key(p.n, rng);
    const int32_t msize = 8;
    for (int32_t mu = 0; mu < msize; ++mu) {
        const Torus32 msg = ModSwitchToTorus32(mu, msize);
        LweSample s = LweEncrypt(msg, p.lwe_noise_stddev, key, rng);
        EXPECT_EQ(LweDecrypt(s, key, msize), msg) << mu;
    }
}

TEST(Lwe, PhaseOfTrivialSampleIsMessage) {
    Rng rng(23);
    LweKey key(64, rng);
    LweSample s(64);
    s.SetTrivial(0xDEADBEEF);
    EXPECT_EQ(LwePhase(s, key), 0xDEADBEEFu);
}

TEST(Lwe, HomomorphicAddition) {
    Rng rng(24);
    const Params p = Tfhe128Params();
    LweKey key(p.n, rng);
    const int32_t msize = 16;
    const Torus32 m1 = ModSwitchToTorus32(3, msize);
    const Torus32 m2 = ModSwitchToTorus32(5, msize);
    LweSample s1 = LweEncrypt(m1, p.lwe_noise_stddev, key, rng);
    LweSample s2 = LweEncrypt(m2, p.lwe_noise_stddev, key, rng);
    s1.AddTo(s2);
    EXPECT_EQ(LweDecrypt(s1, key, msize), ModSwitchToTorus32(8, msize));
}

TEST(Lwe, HomomorphicSubtractionAndNegation) {
    Rng rng(25);
    const Params p = Tfhe128Params();
    LweKey key(p.n, rng);
    const int32_t msize = 16;
    LweSample s1 =
        LweEncrypt(ModSwitchToTorus32(7, msize), p.lwe_noise_stddev, key, rng);
    LweSample s2 =
        LweEncrypt(ModSwitchToTorus32(2, msize), p.lwe_noise_stddev, key, rng);
    LweSample diff = s1;
    diff.SubTo(s2);
    EXPECT_EQ(LweDecrypt(diff, key, msize), ModSwitchToTorus32(5, msize));

    LweSample neg = s2;
    neg.Negate();
    EXPECT_EQ(LweDecrypt(neg, key, msize), ModSwitchToTorus32(14, msize));
}

TEST(Lwe, NoiseIsSmall) {
    Rng rng(26);
    const Params p = Tfhe128Params();
    LweKey key(p.n, rng);
    double max_err = 0;
    for (int i = 0; i < 100; ++i) {
        LweSample s = LweEncrypt(0, p.lwe_noise_stddev, key, rng);
        max_err = std::max(
            max_err, std::abs(Torus32ToDouble(LwePhase(s, key))));
    }
    // 100 samples at sigma = 2^-15 should stay below ~5 sigma.
    EXPECT_LT(max_err, 5 * p.lwe_noise_stddev);
    EXPECT_GT(max_err, 0.0);  // And encryption is not noiseless.
}

TEST(Lwe, DistinctSamplesForSameMessage) {
    Rng rng(27);
    LweKey key(32, rng);
    LweSample s1 = LweEncryptBit(true, 1e-9, key, rng);
    LweSample s2 = LweEncryptBit(true, 1e-9, key, rng);
    EXPECT_NE(s1.a, s2.a);
}

TEST(Lwe, KeyIsBinary) {
    Rng rng(28);
    LweKey key(1000, rng);
    int32_t ones = 0;
    for (int32_t b : key.key) {
        EXPECT_TRUE(b == 0 || b == 1);
        ones += b;
    }
    // Roughly balanced.
    EXPECT_GT(ones, 350);
    EXPECT_LT(ones, 650);
}

}  // namespace
}  // namespace pytfhe::tfhe
