#include "tfhe/shortint.h"

#include <gtest/gtest.h>

namespace pytfhe::tfhe {
namespace {

class ShortIntTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        rng_ = new Rng(71);
        params_ = new Params(ToyParams());
        lwe_key_ = new LweKey(params_->n, *rng_);
        tlwe_key_ = new TLweKey(params_->big_n, params_->k, *rng_);
        bk_ = new BootstrappingKey(*params_, *lwe_key_, *tlwe_key_, *rng_);
    }
    static void TearDownTestSuite() {
        delete bk_;
        delete tlwe_key_;
        delete lwe_key_;
        delete params_;
        delete rng_;
    }

    LweSample Enc(const ShortIntContext& ctx, int32_t m) {
        return ctx.Encrypt(m, *lwe_key_, params_->lwe_noise_stddev, *rng_);
    }
    int32_t Dec(const ShortIntContext& ctx, const LweSample& ct) {
        return ctx.Decrypt(ct, *lwe_key_);
    }

    static Rng* rng_;
    static Params* params_;
    static LweKey* lwe_key_;
    static TLweKey* tlwe_key_;
    static BootstrappingKey* bk_;
};

Rng* ShortIntTest::rng_ = nullptr;
Params* ShortIntTest::params_ = nullptr;
LweKey* ShortIntTest::lwe_key_ = nullptr;
TLweKey* ShortIntTest::tlwe_key_ = nullptr;
BootstrappingKey* ShortIntTest::bk_ = nullptr;

TEST_F(ShortIntTest, EncryptDecryptRoundTrip) {
    ShortIntContext ctx(4, *bk_);
    for (int32_t m = 0; m < 4; ++m)
        EXPECT_EQ(Dec(ctx, Enc(ctx, m)), m) << m;
}

TEST_F(ShortIntTest, UnaryLutSquares) {
    ShortIntContext ctx(4, *bk_);
    for (int32_t m = 0; m < 4; ++m) {
        LweSample out = ctx.Apply(
            [](int32_t x) { return (x * x) % 4; }, Enc(ctx, m));
        EXPECT_EQ(Dec(ctx, out), (m * m) % 4) << m;
    }
}

TEST_F(ShortIntTest, AddExhaustive) {
    ShortIntContext ctx(4, *bk_);
    for (int32_t a = 0; a < 4; ++a) {
        for (int32_t b = 0; b < 4; ++b) {
            EXPECT_EQ(Dec(ctx, ctx.Add(Enc(ctx, a), Enc(ctx, b))),
                      (a + b) % 4)
                << a << "+" << b;
            EXPECT_EQ(Dec(ctx, ctx.AddCarry(Enc(ctx, a), Enc(ctx, b))),
                      (a + b) / 4)
                << a << "+" << b;
        }
    }
}

TEST_F(ShortIntTest, MulExhaustive) {
    ShortIntContext ctx(4, *bk_);
    for (int32_t a = 0; a < 4; ++a) {
        for (int32_t b = 0; b < 4; ++b) {
            EXPECT_EQ(Dec(ctx, ctx.Mul(Enc(ctx, a), Enc(ctx, b))),
                      (a * b) % 4);
            EXPECT_EQ(Dec(ctx, ctx.MulHigh(Enc(ctx, a), Enc(ctx, b))),
                      (a * b) / 4);
        }
    }
}

TEST_F(ShortIntTest, ComparisonAndMinMax) {
    ShortIntContext ctx(4, *bk_);
    for (int32_t a = 0; a < 4; ++a) {
        for (int32_t b = 0; b < 4; ++b) {
            EXPECT_EQ(Dec(ctx, ctx.Lt(Enc(ctx, a), Enc(ctx, b))),
                      a < b ? 1 : 0);
            EXPECT_EQ(Dec(ctx, ctx.Max(Enc(ctx, a), Enc(ctx, b))),
                      std::max(a, b));
            EXPECT_EQ(Dec(ctx, ctx.Min(Enc(ctx, a), Enc(ctx, b))),
                      std::min(a, b));
        }
    }
}

TEST_F(ShortIntTest, SubWrapsModP) {
    ShortIntContext ctx(4, *bk_);
    EXPECT_EQ(Dec(ctx, ctx.Sub(Enc(ctx, 1), Enc(ctx, 3))), 2);  // -2 mod 4.
    EXPECT_EQ(Dec(ctx, ctx.Sub(Enc(ctx, 3), Enc(ctx, 1))), 2);
}

TEST_F(ShortIntTest, ChainedOpsRefreshNoise) {
    // Multi-digit 2-digit base-4 addition: (3,2) + (1,3) = 14 + 7 = 21 =
    // (1,1,1) in base 4. Each op is one bootstrap, so chains stay fresh.
    ShortIntContext ctx(4, *bk_);
    LweSample a0 = Enc(ctx, 2), a1 = Enc(ctx, 3);  // 3*4 + 2 = 14.
    LweSample b0 = Enc(ctx, 3), b1 = Enc(ctx, 1);  // 1*4 + 3 = 7.
    LweSample s0 = ctx.Add(a0, b0);
    LweSample c0 = ctx.AddCarry(a0, b0);
    LweSample s1 = ctx.Add(ctx.Add(a1, b1), c0);
    // Carry out of digit 1: carry(a1,b1) OR carry(a1+b1, c0).
    LweSample c1a = ctx.AddCarry(a1, b1);
    LweSample c1b = ctx.AddCarry(ctx.Add(a1, b1), c0);
    LweSample c1 = ctx.Apply2(
        [](int32_t x, int32_t y) { return (x + y) > 0 ? 1 : 0; }, c1a, c1b);
    EXPECT_EQ(Dec(ctx, s0), 1);  // 21 = 111_4.
    EXPECT_EQ(Dec(ctx, s1), 1);
    EXPECT_EQ(Dec(ctx, c1), 1);
}

TEST_F(ShortIntTest, LargerModulus) {
    // p = 6 -> P = 36 slots of >= 3 ring coefficients each: enough margin
    // for the mod-switch rounding error at the toy dimension. (p = 8
    // would make 2P equal the ring dimension exactly, leaving zero
    // noise margin — rejected territory for real deployments.)
    ShortIntContext ctx(6, *bk_);
    for (int32_t a : {0, 2, 3, 5}) {
        for (int32_t b : {0, 1, 4, 5}) {
            EXPECT_EQ(Dec(ctx, ctx.Add(Enc(ctx, a), Enc(ctx, b))),
                      (a + b) % 6)
                << a << "+" << b;
            EXPECT_EQ(Dec(ctx, ctx.Mul(Enc(ctx, a), Enc(ctx, b))),
                      (a * b) % 6)
                << a << "*" << b;
        }
    }
}

}  // namespace
}  // namespace pytfhe::tfhe
