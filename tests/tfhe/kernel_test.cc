/**
 * @file
 * Kernel-level guarantees of the folded FFT and external product:
 * steady-state allocation freedom (counting global allocator), scratch
 * buffer address stability, and concurrent scratch independence.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "tfhe/bootstrap.h"
#include "tfhe/params.h"
#include "tfhe/tgsw.h"

// ------------------------------------------------------- counting allocator
//
// Every global allocation in the process bumps this counter. Tests snapshot
// it around hot loops; a warmed-up kernel must not move it.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace pytfhe::tfhe {
namespace {

uint64_t AllocCount() {
    return g_alloc_count.load(std::memory_order_relaxed);
}

class KernelTest : public ::testing::Test {
  protected:
    KernelTest()
        : rng_(71), params_(ToyParams()),
          key_(params_.big_n, params_.k, rng_),
          fft_(GetFftPlan(params_.big_n)) {}

    TGswSampleFft EncryptBitFft(int32_t bit) {
        return TGswToFft(
            TGswEncrypt(bit, params_.bk_l, params_.bk_bg_bit,
                        params_.tlwe_noise_stddev, key_, rng_),
            fft_);
    }

    Rng rng_;
    Params params_;
    TLweKey key_;
    const NegacyclicFft& fft_;
};

TEST_F(KernelTest, ForwardAndInverseAreAllocationFreeInSteadyState) {
    const int32_t n = params_.big_n;
    TorusPolynomial p(n), out(n);
    for (auto& c : p.coefs) c = rng_.UniformTorus32();
    FreqPolynomial f;
    fft_.Forward(f, p);  // Warm-up sizes the output buffer.
    fft_.InverseInPlace(out, f);

    const uint64_t before = AllocCount();
    for (int32_t i = 0; i < 100; ++i) {
        fft_.Forward(f, p);
        fft_.InverseInPlace(out, f);
    }
    EXPECT_EQ(AllocCount(), before);
}

TEST_F(KernelTest, MultiplyWithScratchIsAllocationFreeInSteadyState) {
    const int32_t n = params_.big_n;
    IntPolynomial a(n);
    TorusPolynomial b(n), r(n);
    for (auto& c : a.coefs)
        c = static_cast<int32_t>(rng_.UniformBelow(256)) - 128;
    for (auto& c : b.coefs) c = rng_.UniformTorus32();
    FftScratch scratch;
    fft_.Multiply(r, a, b, scratch);  // Warm-up.

    const uint64_t before = AllocCount();
    for (int32_t i = 0; i < 100; ++i) fft_.Multiply(r, a, b, scratch);
    EXPECT_EQ(AllocCount(), before);
}

TEST_F(KernelTest, ExternalProductWithScratchIsAllocationFreeInSteadyState) {
    TGswSampleFft one = EncryptBitFft(1);
    TLweSample s(params_.big_n, params_.k);
    for (auto& poly : s.a)
        for (auto& c : poly.coefs) c = rng_.UniformTorus32();
    TLweSample result;
    ExternalProductScratch scratch;
    TGswExternalProduct(result, one, s, fft_, &scratch);  // Warm-up.

    const uint64_t before = AllocCount();
    for (int32_t i = 0; i < 50; ++i)
        TGswExternalProduct(result, one, s, fft_, &scratch);
    EXPECT_EQ(AllocCount(), before);
}

TEST_F(KernelTest, ScratchBuffersAreAddressStableAcrossCalls) {
    TGswSampleFft one = EncryptBitFft(1);
    TLweSample s(params_.big_n, params_.k);
    for (auto& poly : s.a)
        for (auto& c : poly.coefs) c = rng_.UniformTorus32();
    TLweSample result;
    ExternalProductScratch scratch;
    TGswExternalProduct(result, one, s, fft_, &scratch);

    const double* dec0 = scratch.dec[0].Re();
    const double* acc0 = scratch.acc[0].Re();
    for (int32_t i = 0; i < 10; ++i)
        TGswExternalProduct(result, one, s, fft_, &scratch);
    EXPECT_EQ(scratch.dec[0].Re(), dec0);
    EXPECT_EQ(scratch.acc[0].Re(), acc0);
}

TEST_F(KernelTest, BlindRotateWithScratchIsAllocationFreeInSteadyState) {
    // Miniature bootstrapping key over toy parameters.
    LweKey lwe_key(params_.n, rng_);
    BootstrappingKey bk(params_, lwe_key, key_, rng_);

    std::vector<int32_t> bara(params_.n);
    for (auto& v : bara)
        v = static_cast<int32_t>(rng_.UniformBelow(2 * params_.big_n));
    TorusPolynomial tv(params_.big_n);
    for (auto& c : tv.coefs) c = rng_.UniformTorus32();

    TLweSample acc(params_.big_n, params_.k);
    BootstrapScratch scratch;
    acc.SetTrivial(tv);
    BlindRotate(acc, bara, bk, &scratch);  // Warm-up.

    const uint64_t before = AllocCount();
    for (int32_t i = 0; i < 3; ++i) {
        acc.SetTrivial(tv);
        BlindRotate(acc, bara, bk, &scratch);
    }
    EXPECT_EQ(AllocCount(), before);
}

TEST_F(KernelTest, ConcurrentScratchesProduceIdenticalResults) {
    // Each thread owns its scratch; all must reproduce the sequential
    // result exactly on shared read-only key material.
    TGswSampleFft one = EncryptBitFft(1);
    TLweSample s(params_.big_n, params_.k);
    for (auto& poly : s.a)
        for (auto& c : poly.coefs) c = rng_.UniformTorus32();
    TLweSample want;
    TGswExternalProduct(want, one, s, fft_);

    constexpr int kThreads = 4;
    std::vector<TLweSample> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t]() {
            ExternalProductScratch scratch;
            for (int32_t i = 0; i < 8; ++i)
                TGswExternalProduct(got[t], one, s, fft_, &scratch);
        });
    }
    for (auto& th : threads) th.join();

    for (int t = 0; t < kThreads; ++t)
        for (size_t c = 0; c < want.a.size(); ++c)
            for (int32_t p = 0; p < params_.big_n; ++p)
                ASSERT_EQ(got[t].a[c].coefs[p], want.a[c].coefs[p])
                    << t << "," << c << "," << p;
}

}  // namespace
}  // namespace pytfhe::tfhe
