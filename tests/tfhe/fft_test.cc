#include "tfhe/fft.h"

#include <gtest/gtest.h>

#include "tfhe/rng.h"

namespace pytfhe::tfhe {
namespace {

// Max absolute torus error (as uint32 distance) between two polynomials.
uint32_t MaxError(const TorusPolynomial& a, const TorusPolynomial& b) {
    uint32_t max_err = 0;
    for (int32_t i = 0; i < a.Size(); ++i) {
        const uint32_t d = a.coefs[i] - b.coefs[i];
        const uint32_t err = std::min(d, static_cast<uint32_t>(-d));
        max_err = std::max(max_err, err);
    }
    return max_err;
}

class FftParamTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(FftParamTest, MatchesNaiveWithSmallDigits) {
    const int32_t n = GetParam();
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(11);
    IntPolynomial a(n);
    TorusPolynomial b(n), expected(n), got(n);
    // Digits like gadget decomposition output: [-128, 128).
    for (auto& c : a.coefs)
        c = static_cast<int32_t>(rng.UniformBelow(256)) - 128;
    for (auto& c : b.coefs) c = rng.UniformTorus32();

    NaiveNegacyclicMul(expected, a, b);
    fft.Multiply(got, a, b);
    // Round-off must stay far below the noise budget (2^-15 of the torus
    // is about 1.3e5 in uint32 units); allow 2^8.
    EXPECT_LE(MaxError(expected, got), 256u) << "n=" << n;
}

TEST_P(FftParamTest, ForwardInverseRoundTrip) {
    const int32_t n = GetParam();
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(12);
    TorusPolynomial p(n), back(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    FreqPolynomial f;
    fft.Forward(f, p);
    fft.Inverse(back, f);
    EXPECT_LE(MaxError(p, back), 16u) << "n=" << n;
}

TEST_P(FftParamTest, FoldedMatchesReferenceFftOnAdversarialDigits) {
    const int32_t n = GetParam();
    const NegacyclicFft& fft = GetFftPlan(n);
    const ReferenceFft ref(n);
    Rng rng(21);
    IntPolynomial a(n);
    TorusPolynomial b(n), want(n), got(n);
    // Max-magnitude digits, the worst case TGswDecompose can emit at
    // bg_bit = 8, with uniform torus coefficients on the other side.
    for (auto& c : a.coefs) c = rng.UniformBit() ? 128 : -128;
    for (auto& c : b.coefs) c = rng.UniformTorus32();

    ref.Multiply(want, a, b);
    fft.Multiply(got, a, b);
    // Both paths round the same exact product; they may land on opposite
    // sides of a rounding boundary, never further apart.
    EXPECT_LE(MaxError(want, got), 2u) << "n=" << n;
}

// Independent oracle: schoolbook negacyclic convolution with int64
// accumulation, reduced mod 2^32 at the end.
TorusPolynomial SchoolbookInt64(const IntPolynomial& a,
                                const TorusPolynomial& b) {
    const int32_t n = a.Size();
    TorusPolynomial out(n);
    for (int32_t j = 0; j < n; ++j) {
        int64_t acc = 0;
        for (int32_t i = 0; i <= j; ++i)
            acc += static_cast<int64_t>(a.coefs[i]) *
                   static_cast<int32_t>(b.coefs[j - i]);
        for (int32_t i = j + 1; i < n; ++i)
            acc -= static_cast<int64_t>(a.coefs[i]) *
                   static_cast<int32_t>(b.coefs[n + j - i]);
        out.coefs[j] = static_cast<Torus32>(static_cast<uint64_t>(acc));
    }
    return out;
}

TEST_P(FftParamTest, MatchesSchoolbookWithAdversarialDigits) {
    const int32_t n = GetParam();
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(22);
    IntPolynomial a(n);
    TorusPolynomial b(n), got(n);
    for (auto& c : a.coefs) c = rng.UniformBit() ? 128 : -128;
    for (auto& c : b.coefs) c = rng.UniformTorus32();

    const TorusPolynomial want = SchoolbookInt64(a, b);
    fft.Multiply(got, a, b);
    // Intermediates reach N * 128 * 2^31 <= 2^49 < 2^53; the double FFT
    // resolves the exact integer to within a couple of final-rounding ULPs.
    EXPECT_LE(MaxError(want, got), 2u) << "n=" << n;
}

TEST_P(FftParamTest, ExactlyMatchesSchoolbookWithBoundedTorus) {
    const int32_t n = GetParam();
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(23);
    IntPolynomial a(n);
    TorusPolynomial b(n), got(n);
    // Products bounded by N * 128 * 2^20 <= 2^38: FFT round-off is far
    // below 1/2, so rounding recovers the exact Torus32 result.
    for (auto& c : a.coefs) c = rng.UniformBit() ? 128 : -128;
    for (auto& c : b.coefs)
        c = static_cast<Torus32>(rng.UniformBelow(1u << 21)) - (1u << 20);

    const TorusPolynomial want = SchoolbookInt64(a, b);
    fft.Multiply(got, a, b);
    for (int32_t i = 0; i < n; ++i)
        ASSERT_EQ(want.coefs[i], got.coefs[i]) << "n=" << n << " i=" << i;
}

TEST_P(FftParamTest, ForwardInverseRoundTripIsExact) {
    const int32_t n = GetParam();
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(24);
    TorusPolynomial p(n), back(n);
    // Adversarial extremes plus uniform fill: spectra stay <= N * 2^31,
    // so the inverse rounds back to the exact input coefficients.
    p.coefs[0] = UINT32_C(0x80000000);
    p.coefs[n - 1] = UINT32_C(0x7FFFFFFF);
    for (int32_t i = 1; i < n - 1; ++i) p.coefs[i] = rng.UniformTorus32();

    FreqPolynomial f;
    fft.Forward(f, p);
    fft.InverseInPlace(back, f);
    for (int32_t i = 0; i < n; ++i)
        ASSERT_EQ(p.coefs[i], back.coefs[i]) << "n=" << n << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftParamTest,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512,
                                           1024, 2048));

TEST(Fft, MultiplyByXaiMatchesExactRotation) {
    const int32_t n = 128;
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(13);
    TorusPolynomial p(n), exact(n), via_fft(n);
    for (auto& c : p.coefs) c = rng.UniformTorus32();
    for (int32_t shift : {1, 7, 63, 127}) {
        IntPolynomial xa(n);
        xa.coefs[shift] = 1;
        MulByXai(exact, shift, p);
        fft.Multiply(via_fft, xa, p);
        EXPECT_LE(MaxError(exact, via_fft), 16u) << "shift=" << shift;
    }
}

TEST(Fft, LinearityInFrequencyDomain) {
    const int32_t n = 256;
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(14);
    IntPolynomial a1(n), a2(n);
    TorusPolynomial b(n);
    for (auto& c : a1.coefs) c = static_cast<int32_t>(rng.UniformBelow(16)) - 8;
    for (auto& c : a2.coefs) c = static_cast<int32_t>(rng.UniformBelow(16)) - 8;
    for (auto& c : b.coefs) c = rng.UniformTorus32();

    // (a1 + a2) * b == a1 * b + a2 * b, computed via accumulation.
    FreqPolynomial fa1, fa2, fb, acc(fft.Half());
    fft.Forward(fa1, a1);
    fft.Forward(fa2, a2);
    fft.Forward(fb, b);
    acc.AddMul(fa1, fb);
    acc.AddMul(fa2, fb);
    TorusPolynomial sum_freq(n);
    fft.Inverse(sum_freq, acc);

    IntPolynomial a12(n);
    for (int32_t i = 0; i < n; ++i) a12.coefs[i] = a1.coefs[i] + a2.coefs[i];
    TorusPolynomial exact(n);
    NaiveNegacyclicMul(exact, a12, b);

    EXPECT_LE(MaxError(exact, sum_freq), 64u);
}

TEST(Fft, PlanCacheReturnsSameInstance) {
    const NegacyclicFft& a = GetFftPlan(128);
    const NegacyclicFft& b = GetFftPlan(128);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.Size(), 128);
}

TEST(Fft, ZeroTimesAnythingIsZero) {
    const int32_t n = 64;
    const NegacyclicFft& fft = GetFftPlan(n);
    Rng rng(15);
    IntPolynomial zero(n);
    TorusPolynomial b(n), r(n);
    for (auto& c : b.coefs) c = rng.UniformTorus32();
    fft.Multiply(r, zero, b);
    for (auto c : r.coefs) EXPECT_EQ(c, 0u);
}

}  // namespace
}  // namespace pytfhe::tfhe
