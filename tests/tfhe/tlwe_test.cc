#include "tfhe/tlwe.h"

#include <gtest/gtest.h>

#include "tfhe/params.h"

namespace pytfhe::tfhe {
namespace {

// Distance on the torus between two values.
double TorusDistance(Torus32 a, Torus32 b) {
    return std::abs(Torus32ToDouble(a - b));
}

TEST(TLwe, EncryptPhaseRecoversMessage) {
    Rng rng(31);
    const Params p = ToyParams();
    TLweKey key(p.big_n, p.k, rng);
    TorusPolynomial msg(p.big_n);
    for (int32_t i = 0; i < p.big_n; ++i)
        msg.coefs[i] = ModSwitchToTorus32(i % 8, 8);
    TLweSample s = TLweEncrypt(msg, p.tlwe_noise_stddev, key, rng);
    TorusPolynomial phase = TLwePhase(s, key);
    for (int32_t i = 0; i < p.big_n; ++i)
        EXPECT_LT(TorusDistance(phase.coefs[i], msg.coefs[i]), 1e-6) << i;
}

TEST(TLwe, TrivialSamplePhaseIsMessage) {
    Rng rng(32);
    const Params p = ToyParams();
    TLweKey key(p.big_n, p.k, rng);
    TorusPolynomial msg(p.big_n);
    msg.coefs[3] = 0x40000000;
    TLweSample s(p.big_n, p.k);
    s.SetTrivial(msg);
    TorusPolynomial phase = TLwePhase(s, key);
    EXPECT_EQ(phase.coefs, msg.coefs);
}

TEST(TLwe, HomomorphicAdd) {
    Rng rng(33);
    const Params p = ToyParams();
    TLweKey key(p.big_n, p.k, rng);
    TorusPolynomial m1(p.big_n), m2(p.big_n);
    m1.coefs[0] = ModSwitchToTorus32(1, 4);
    m2.coefs[0] = ModSwitchToTorus32(1, 4);
    TLweSample s1 = TLweEncrypt(m1, p.tlwe_noise_stddev, key, rng);
    TLweSample s2 = TLweEncrypt(m2, p.tlwe_noise_stddev, key, rng);
    s1.AddTo(s2);
    TorusPolynomial phase = TLwePhase(s1, key);
    EXPECT_LT(TorusDistance(phase.coefs[0], ModSwitchToTorus32(2, 4)), 1e-6);
}

TEST(TLwe, MulByXaiRotatesMessage) {
    Rng rng(34);
    const Params p = ToyParams();
    TLweKey key(p.big_n, p.k, rng);
    TorusPolynomial msg(p.big_n);
    msg.coefs[0] = ModSwitchToTorus32(1, 4);
    TLweSample s = TLweEncrypt(msg, p.tlwe_noise_stddev, key, rng);
    TLweSample rotated(p.big_n, p.k);
    TLweMulByXai(rotated, 5, s);
    TorusPolynomial phase = TLwePhase(rotated, key);
    EXPECT_LT(TorusDistance(phase.coefs[5], ModSwitchToTorus32(1, 4)), 1e-6);
    EXPECT_LT(TorusDistance(phase.coefs[0], 0), 1e-6);
}

TEST(TLwe, ExtractSampleIndexZero) {
    Rng rng(35);
    const Params p = ToyParams();
    TLweKey key(p.big_n, p.k, rng);
    LweKey extracted = key.ExtractLweKey();
    ASSERT_EQ(extracted.N(), p.ExtractedN());

    TorusPolynomial msg(p.big_n);
    msg.coefs[0] = ModSwitchToTorus32(3, 8);
    TLweSample s = TLweEncrypt(msg, p.tlwe_noise_stddev, key, rng);
    LweSample lwe = TLweExtractSample(s, 0);
    Torus32 phase = LwePhase(lwe, extracted);
    EXPECT_LT(TorusDistance(phase, msg.coefs[0]), 1e-6);
}

TEST(TLwe, ExtractSampleArbitraryIndex) {
    Rng rng(36);
    const Params p = ToyParams();
    TLweKey key(p.big_n, p.k, rng);
    LweKey extracted = key.ExtractLweKey();
    TorusPolynomial msg(p.big_n);
    for (int32_t i = 0; i < p.big_n; ++i)
        msg.coefs[i] = ModSwitchToTorus32(i % 16, 16);
    TLweSample s = TLweEncrypt(msg, p.tlwe_noise_stddev, key, rng);
    for (int32_t idx : {0, 1, p.big_n / 2, p.big_n - 1}) {
        LweSample lwe = TLweExtractSample(s, idx);
        Torus32 phase = LwePhase(lwe, extracted);
        EXPECT_LT(TorusDistance(phase, msg.coefs[idx]), 1e-6) << idx;
    }
}

TEST(TLwe, ExtractWithK2) {
    // Exercise the k > 1 layout of extraction.
    Rng rng(37);
    const int32_t n = 64, k = 2;
    TLweKey key(n, k, rng);
    LweKey extracted = key.ExtractLweKey();
    ASSERT_EQ(extracted.N(), n * k);
    TorusPolynomial msg(n);
    msg.coefs[0] = ModSwitchToTorus32(1, 4);
    TLweSample s = TLweEncrypt(msg, 1e-9, key, rng);
    LweSample lwe = TLweExtractSample(s, 0);
    EXPECT_LT(TorusDistance(LwePhase(lwe, extracted), msg.coefs[0]), 1e-6);
}

}  // namespace
}  // namespace pytfhe::tfhe
