#include "tfhe/integer.h"

#include <gtest/gtest.h>

namespace pytfhe::tfhe {
namespace {

class RadixTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        rng_ = new Rng(301);
        params_ = new Params(ToyParams());
        lwe_key_ = new LweKey(params_->n, *rng_);
        tlwe_key_ = new TLweKey(params_->big_n, params_->k, *rng_);
        bk_ = new BootstrappingKey(*params_, *lwe_key_, *tlwe_key_, *rng_);
    }
    static void TearDownTestSuite() {
        delete bk_;
        delete tlwe_key_;
        delete lwe_key_;
        delete params_;
        delete rng_;
    }

    RadixInteger Enc(const RadixContext& ctx, uint64_t v) {
        return ctx.Encrypt(v, *lwe_key_, params_->lwe_noise_stddev, *rng_);
    }
    uint64_t Dec(const RadixContext& ctx, const RadixInteger& x) {
        return ctx.Decrypt(x, *lwe_key_);
    }
    int32_t DecDigit(const RadixContext& ctx, const LweSample& s) {
        return ctx.digit_context().Decrypt(s, *lwe_key_);
    }

    static Rng* rng_;
    static Params* params_;
    static LweKey* lwe_key_;
    static TLweKey* tlwe_key_;
    static BootstrappingKey* bk_;
};

Rng* RadixTest::rng_ = nullptr;
Params* RadixTest::params_ = nullptr;
LweKey* RadixTest::lwe_key_ = nullptr;
TLweKey* RadixTest::tlwe_key_ = nullptr;
BootstrappingKey* RadixTest::bk_ = nullptr;

TEST_F(RadixTest, EncryptDecryptRoundTrip) {
    RadixContext ctx(4, 3, *bk_);  // Base-4, 3 digits: 0..63.
    EXPECT_EQ(ctx.Modulus(), 64u);
    for (uint64_t v : {0u, 1u, 17u, 42u, 63u})
        EXPECT_EQ(Dec(ctx, Enc(ctx, v)), v) << v;
}

TEST_F(RadixTest, AdditionWithCarryPropagation) {
    RadixContext ctx(4, 3, *bk_);
    for (auto [a, b] : {std::pair<uint64_t, uint64_t>{5, 7},
                        {15, 1},     // Carry across one digit boundary.
                        {21, 21},
                        {63, 1},     // Wraps mod 64.
                        {47, 33}}) {
        EXPECT_EQ(Dec(ctx, ctx.Add(Enc(ctx, a), Enc(ctx, b))),
                  (a + b) % 64)
            << a << "+" << b;
    }
}

TEST_F(RadixTest, MultiplicationSchoolbook) {
    RadixContext ctx(4, 3, *bk_);
    for (auto [a, b] : {std::pair<uint64_t, uint64_t>{3, 5},
                        {7, 9},
                        {15, 4},
                        {21, 11},   // 231 mod 64 = 39.
                        {63, 63}}) {
        EXPECT_EQ(Dec(ctx, ctx.Mul(Enc(ctx, a), Enc(ctx, b))),
                  (a * b) % 64)
            << a << "*" << b;
    }
}

TEST_F(RadixTest, EqualityAndComparison) {
    RadixContext ctx(4, 2, *bk_);  // 0..15.
    for (auto [a, b] : {std::pair<uint64_t, uint64_t>{3, 3},
                        {3, 5},
                        {12, 9},
                        {15, 15},
                        {0, 1}}) {
        EXPECT_EQ(DecDigit(ctx, ctx.Eq(Enc(ctx, a), Enc(ctx, b))),
                  a == b ? 1 : 0)
            << a << "==" << b;
        EXPECT_EQ(DecDigit(ctx, ctx.Lt(Enc(ctx, a), Enc(ctx, b))),
                  a < b ? 1 : 0)
            << a << "<" << b;
    }
}

TEST_F(RadixTest, LtDistinguishesDigitBoundaries) {
    RadixContext ctx(4, 2, *bk_);
    // Same low digit, different high digit and vice versa.
    EXPECT_EQ(DecDigit(ctx, ctx.Lt(Enc(ctx, 2), Enc(ctx, 6))), 1);   // 02<12.
    EXPECT_EQ(DecDigit(ctx, ctx.Lt(Enc(ctx, 6), Enc(ctx, 2))), 0);
    EXPECT_EQ(DecDigit(ctx, ctx.Lt(Enc(ctx, 4), Enc(ctx, 5))), 1);   // 10<11.
    EXPECT_EQ(DecDigit(ctx, ctx.Lt(Enc(ctx, 5), Enc(ctx, 4))), 0);
}

TEST_F(RadixTest, ChainedArithmeticStaysFresh) {
    // (a + b) * c + a, every intermediate bootstrapped.
    RadixContext ctx(4, 2, *bk_);
    const uint64_t a = 3, b = 5, c = 7;
    RadixInteger r = ctx.Add(Enc(ctx, a), Enc(ctx, b));
    r = ctx.Mul(r, Enc(ctx, c));
    r = ctx.Add(r, Enc(ctx, a));
    EXPECT_EQ(Dec(ctx, r), ((a + b) * c + a) % 16);
}

}  // namespace
}  // namespace pytfhe::tfhe
