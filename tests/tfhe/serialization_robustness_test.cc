/**
 * @file
 * Corruption sweep for every serialization format: flip each byte (or a
 * stride of bytes for the multi-hundred-KB bootstrapping key) and truncate
 * at each prefix, asserting every mutation yields a typed failure — never
 * a crash, never a silently-wrong object. The sweep covers the five key /
 * ciphertext formats plus the backend's job-checkpoint record, which rides
 * the same v3 frame. Also pins the legacy version-2 compatibility path and
 * the Load*OrThrow wrappers.
 */
#include <gtest/gtest.h>

#include <functional>
#include <iterator>
#include <sstream>
#include <string>

#include "backend/checkpoint.h"
#include "backend/interpreter.h"
#include "pasm/assembler.h"
#include "tfhe/serialization.h"

namespace pytfhe::tfhe {
namespace {

/** One format under sweep: its serialized bytes and a loader probe. */
struct Format {
    std::string name;
    std::string bytes;
    // Returns true when the stream loaded successfully.
    std::function<bool(std::istream&, std::string*)> load;
    std::function<void(std::istream&)> load_or_throw;
    size_t flip_stride = 1;
    // Whether a version-2 downgrade of the frame must still load.
    // Formats born on v3 (the job-checkpoint record) refuse it instead.
    bool legacy_v2 = true;
};

std::vector<Format> MakeFormats() {
    Rng rng(777);
    const Params params = ToyParams();
    SecretKeySet keys(params, rng);
    const LweSample sample = keys.Encrypt(true, rng);
    std::vector<LweSample> batch;
    for (int i = 0; i < 5; ++i) batch.push_back(keys.Encrypt(i % 2, rng));
    BootstrappingKey bk(keys.params, keys.lwe_key, keys.tlwe_key, rng);

    std::vector<Format> formats;
    {
        std::stringstream ss;
        SaveParams(ss, params);
        formats.push_back(
            {"params", ss.str(),
             [](std::istream& is, std::string* e) {
                 return LoadParams(is, e).has_value();
             },
             [](std::istream& is) { LoadParamsOrThrow(is); }});
    }
    {
        std::stringstream ss;
        SaveLweSample(ss, sample);
        formats.push_back(
            {"lwe_sample", ss.str(),
             [](std::istream& is, std::string* e) {
                 return LoadLweSample(is, e).has_value();
             },
             [](std::istream& is) { LoadLweSampleOrThrow(is); }});
    }
    {
        std::stringstream ss;
        SaveLweSamples(ss, batch);
        formats.push_back(
            {"lwe_samples", ss.str(),
             [](std::istream& is, std::string* e) {
                 return LoadLweSamples(is, e).has_value();
             },
             [](std::istream& is) { LoadLweSamplesOrThrow(is); }});
    }
    {
        std::stringstream ss;
        SaveSecretKeySet(ss, keys);
        formats.push_back(
            {"secret_key_set", ss.str(),
             [](std::istream& is, std::string* e) {
                 return LoadSecretKeySet(is, e).has_value();
             },
             [](std::istream& is) { LoadSecretKeySetOrThrow(is); },
             /*flip_stride=*/7});
    }
    {
        std::stringstream ss;
        SaveBootstrappingKey(ss, bk);
        formats.push_back(
            {"bootstrapping_key", ss.str(),
             [](std::istream& is, std::string* e) {
                 return LoadBootstrappingKey(is, e).has_value();
             },
             [](std::istream& is) { LoadBootstrappingKeyOrThrow(is); },
             /*flip_stride=*/997});
    }
    {
        // The backend's job-checkpoint record shares the v3 frame: run a
        // short chain halfway, snapshot the live set at an ordinal cut,
        // and sweep the resulting bytes like any key or ciphertext file.
        circuit::Netlist n;
        const circuit::NodeId in = n.AddInput();
        circuit::NodeId cur = in;
        for (int i = 0; i < 12; ++i)
            cur = n.AddGate(circuit::GateType::kNand, cur, in);
        n.AddOutput(cur);
        auto program = pasm::Assemble(n);
        backend::PlainEvaluator eval;
        backend::ValuePlane<backend::PlainEvaluator> plane;
        plane.Reset(*program, std::vector<bool>{true});
        typename backend::detail::WorkerScratchOf<
            backend::PlainEvaluator>::type scratch{};
        const uint64_t cut = program->FirstGateIndex() + 7;
        for (uint64_t idx = program->FirstGateIndex(); idx <= cut; ++idx)
            plane.Apply(eval, *program, idx, scratch);
        const pasm::ValueLiveness liveness =
            pasm::ComputeValueLiveness(*program);
        const std::string record = backend::EncodeCheckpoint(
            *program, plane, pasm::LiveValuesAtOrdinalCut(liveness, cut),
            backend::CheckpointCut::kOrdinal, cut,
            cut - program->FirstGateIndex() + 1);
        const uint64_t fp = backend::ProgramFingerprint(*program);
        const uint64_t end =
            program->FirstGateIndex() + program->NumGates();
        auto slurp = [](std::istream& is) {
            return std::string(std::istreambuf_iterator<char>(is),
                               std::istreambuf_iterator<char>());
        };
        formats.push_back(
            {"job_checkpoint", record,
             [fp, end, slurp](std::istream& is, std::string* e) {
                 return backend::DecodeCheckpoint<bool>(slurp(is), fp, end,
                                                        e)
                     .has_value();
             },
             [fp, end, slurp](std::istream& is) {
                 std::string error;
                 if (!backend::DecodeCheckpoint<bool>(slurp(is), fp, end,
                                                      &error))
                     throw CorruptPayloadError(error);
             },
             /*flip_stride=*/1, /*legacy_v2=*/false});
    }
    return formats;
}

TEST(SerializationRobustness, PristineBytesLoad) {
    for (const Format& f : MakeFormats()) {
        std::stringstream ss(f.bytes);
        std::string error;
        EXPECT_TRUE(f.load(ss, &error)) << f.name << ": " << error;
        EXPECT_TRUE(error.empty()) << f.name;
        std::stringstream ss2(f.bytes);
        EXPECT_NO_THROW(f.load_or_throw(ss2)) << f.name;
    }
}

TEST(SerializationRobustness, EveryByteFlipIsDetected) {
    // Flip one bit in each swept byte. Body flips are caught by the
    // CRC32C; header flips (magic, version, length, checksum) are caught
    // by frame validation. Nothing may load, nothing may crash. The
    // 16-byte header and the trailing checksum are always swept densely;
    // large bodies are sampled at the format's stride.
    for (const Format& f : MakeFormats()) {
        std::vector<size_t> positions;
        for (size_t pos = 0; pos < f.bytes.size() && pos < 16; ++pos)
            positions.push_back(pos);
        for (size_t pos = 16; pos < f.bytes.size(); pos += f.flip_stride)
            positions.push_back(pos);
        for (size_t back = 1; back <= 4 && back < f.bytes.size(); ++back)
            positions.push_back(f.bytes.size() - back);
        for (size_t pos : positions) {
            for (unsigned char mask : {0x01, 0xFF}) {
                std::string mutated = f.bytes;
                mutated[pos] = static_cast<char>(
                    static_cast<unsigned char>(mutated[pos]) ^ mask);
                std::stringstream ss(mutated);
                std::string error;
                EXPECT_FALSE(f.load(ss, &error))
                    << f.name << " byte " << pos << " mask " << int(mask);
                EXPECT_FALSE(error.empty())
                    << f.name << " byte " << pos << " mask " << int(mask);
            }
        }
    }
}

TEST(SerializationRobustness, ChecksumErrorNamesTheCorruption) {
    // A body flip (past the 16-byte header) must blame the checksum so an
    // operator knows the payload — not the reader — is at fault.
    for (const Format& f : MakeFormats()) {
        ASSERT_GT(f.bytes.size(), size_t{20}) << f.name;
        std::string mutated = f.bytes;
        const size_t pos = 16 + (f.bytes.size() - 20) / 2;
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^ 0x40);
        std::stringstream ss(mutated);
        std::string error;
        EXPECT_FALSE(f.load(ss, &error)) << f.name;
        EXPECT_NE(error.find("checksum"), std::string::npos)
            << f.name << ": " << error;
    }
}

TEST(SerializationRobustness, EveryTruncationIsDetected) {
    for (const Format& f : MakeFormats()) {
        for (size_t cut = 0; cut < f.bytes.size(); cut += f.flip_stride) {
            std::stringstream ss(f.bytes.substr(0, cut));
            std::string error;
            EXPECT_FALSE(f.load(ss, &error)) << f.name << " cut " << cut;
            EXPECT_FALSE(error.empty()) << f.name << " cut " << cut;
        }
        // Always probe the worst case: everything but the final CRC byte.
        std::stringstream ss(f.bytes.substr(0, f.bytes.size() - 1));
        std::string error;
        EXPECT_FALSE(f.load(ss, &error)) << f.name;
        EXPECT_FALSE(error.empty()) << f.name;
    }
}

TEST(SerializationRobustness, FramesAreSelfDelimiting) {
    // The v3 frame knows its own length, so objects concatenate on one
    // stream (the upload protocol ships key + inputs back to back) and
    // each load consumes exactly its own frame.
    Rng rng(779);
    const Params a = ToyParams();
    const Params b = SmallParams();
    std::stringstream ss;
    SaveParams(ss, a);
    SaveParams(ss, b);
    std::string error;
    auto first = LoadParams(ss, &error);
    ASSERT_TRUE(first.has_value()) << error;
    auto second = LoadParams(ss, &error);
    ASSERT_TRUE(second.has_value()) << error;
    EXPECT_EQ(first->name, a.name);
    EXPECT_EQ(second->name, b.name);
}

TEST(SerializationRobustness, OrThrowRaisesCorruptPayloadError) {
    for (const Format& f : MakeFormats()) {
        std::string mutated = f.bytes;
        mutated[mutated.size() / 2] = static_cast<char>(
            static_cast<unsigned char>(mutated[mutated.size() / 2]) ^ 0x10);
        std::stringstream ss(mutated);
        try {
            f.load_or_throw(ss);
            FAIL() << f.name << ": expected CorruptPayloadError";
        } catch (const CorruptPayloadError& e) {
            EXPECT_FALSE(std::string(e.what()).empty()) << f.name;
        }
    }
}

TEST(SerializationRobustness, LegacyVersion2StillLoads) {
    // Hand-build a v2 stream — magic, version word 2, raw body with no
    // length or checksum — from the v3 frame. Key/ciphertext formats
    // must round-trip it; v3-native records must refuse the downgrade
    // rather than trust an unchecksummed body.
    for (const Format& f : MakeFormats()) {
        ASSERT_GT(f.bytes.size(), size_t{20}) << f.name;
        std::string legacy = f.bytes.substr(0, 4);  // Magic.
        legacy += std::string("\x02\x00\x00\x00", 4);
        // Body: skip magic+version+length (16), drop trailing CRC (4).
        legacy += f.bytes.substr(16, f.bytes.size() - 20);
        std::stringstream ss(legacy);
        std::string error;
        if (f.legacy_v2) {
            EXPECT_TRUE(f.load(ss, &error)) << f.name << ": " << error;
        } else {
            EXPECT_FALSE(f.load(ss, &error)) << f.name;
            EXPECT_FALSE(error.empty()) << f.name;
        }
    }
}

TEST(SerializationRobustness, CorruptBootstrappingKeyNeverDecrypts) {
    // The acceptance scenario: a bit-flipped bootstrapping key file must
    // surface CorruptPayloadError — the server must never construct an
    // evaluator from damaged key material and return wrong plaintexts.
    Rng rng(778);
    SecretKeySet keys(ToyParams(), rng);
    BootstrappingKey bk(keys.params, keys.lwe_key, keys.tlwe_key, rng);
    std::stringstream ss;
    SaveBootstrappingKey(ss, bk);
    std::string bytes = ss.str();
    for (size_t pos : {size_t{17}, bytes.size() / 3, bytes.size() - 2}) {
        std::string mutated = bytes;
        mutated[pos] =
            static_cast<char>(static_cast<unsigned char>(mutated[pos]) ^ 1);
        std::stringstream corrupt(mutated);
        EXPECT_THROW(LoadBootstrappingKeyOrThrow(corrupt),
                     CorruptPayloadError)
            << pos;
    }
}

}  // namespace
}  // namespace pytfhe::tfhe
