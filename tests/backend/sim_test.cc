#include <gtest/gtest.h>

#include "backend/calibrate.h"
#include "backend/cluster_sim.h"
#include "backend/gpu_sim.h"
#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

/** Wide shallow circuit: `width` independent AND gates per layer. */
pasm::Program WideProgram(int32_t width, int32_t depth) {
    Netlist n;
    std::vector<NodeId> prev;
    for (int32_t i = 0; i < width + 1; ++i) prev.push_back(n.AddInput());
    for (int32_t d = 0; d < depth; ++d) {
        std::vector<NodeId> next;
        for (int32_t i = 0; i < width; ++i)
            next.push_back(n.AddGate(GateType::kXor, prev[i], prev[i + 1]));
        next.push_back(prev[0]);
        prev = std::move(next);
    }
    for (int32_t i = 0; i < width; ++i) n.AddOutput(prev[i]);
    return *pasm::Assemble(n);
}

/** Serial chain: no parallelism at all. */
pasm::Program ChainProgram(int32_t length) {
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId v = n.AddInput();
    for (int32_t i = 0; i < length; ++i) v = n.AddGate(GateType::kNand, v, a);
    n.AddOutput(v);
    return *pasm::Assemble(n);
}

ClusterConfig Nodes(int32_t nodes) {
    ClusterConfig c;
    c.nodes = nodes;
    return c;
}

TEST(ClusterSim, WideCircuitScalesNearIdeallyOnOneNode) {
    const auto p = WideProgram(2000, 40);
    const ClusterResult r = SimulateCluster(p, Nodes(1));
    EXPECT_GT(r.Speedup(), 0.90 * 18);
    EXPECT_LE(r.Speedup(), 18.001);
}

TEST(ClusterSim, WideCircuitScalesWellOnFourNodes) {
    const auto p = WideProgram(4000, 40);
    const ClusterResult r = SimulateCluster(p, Nodes(4));
    // Paper: 60.5 of ideal 72 on the MNIST workloads.
    EXPECT_GT(r.Speedup(), 0.70 * 72);
    EXPECT_LE(r.Speedup(), 72.001);
}

TEST(ClusterSim, SerialChainDoesNotScale) {
    const auto p = ChainProgram(300);
    const ClusterResult r = SimulateCluster(p, Nodes(4));
    EXPECT_LT(r.Speedup(), 1.05);
}

TEST(ClusterSim, MoreWorkersNeverSlower) {
    const auto p = WideProgram(500, 30);
    double prev = 1e300;
    for (int32_t nodes : {1, 2, 4}) {
        const double t = SimulateCluster(p, Nodes(nodes)).seconds;
        EXPECT_LE(t, prev * 1.0001) << nodes;
        prev = t;
    }
}

TEST(ClusterSim, SpeedupNeverExceedsIdeal) {
    for (int32_t nodes : {1, 2, 4}) {
        for (int32_t width : {10, 100, 1000}) {
            const auto p = WideProgram(width, 10);
            const ClusterResult r = SimulateCluster(p, Nodes(nodes));
            EXPECT_LE(r.Speedup(), r.IdealSpeedup() * 1.0001)
                << nodes << "x" << width;
        }
    }
}

TEST(ClusterSim, SmallBenchmarkIsOverheadBound) {
    // A tiny wide program: barriers and submission dominate.
    const auto p = WideProgram(8, 4);
    const ClusterResult big_cluster = SimulateCluster(p, Nodes(4));
    const ClusterResult small_cluster = SimulateCluster(p, Nodes(1));
    // Efficiency is far from ideal on the big cluster.
    EXPECT_LT(big_cluster.Efficiency(), 0.5);
    // And four nodes barely help over one for such a small circuit.
    EXPECT_LT(small_cluster.seconds / big_cluster.seconds, 4.0);
}

TEST(ClusterSim, IdealThroughputMatchesWorkerCount) {
    EXPECT_NEAR(IdealThroughput(Nodes(1)), 18 / 0.015, 1e-6);
    EXPECT_NEAR(IdealThroughput(Nodes(4)), 72 / 0.015, 1e-6);
}

TEST(ClusterSim, GateMixSeparatesNotGates) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId g = n.AddGate(GateType::kAnd, a, b);
    n.AddOutput(n.AddGate(GateType::kNot, g, g));
    const GateMix mix = ComputeGateMix(*pasm::Assemble(n));
    EXPECT_EQ(mix.bootstrap_gates, 1u);
    EXPECT_EQ(mix.linear_gates, 1u);
}

TEST(Calibration, MeasuredCostModelIsPlausible) {
    tfhe::Rng rng(401);
    tfhe::SecretKeySet secret(tfhe::ToyParams(), rng);
    tfhe::GateEvaluator gates(secret, rng);
    const CpuCostModel m =
        MeasureCpuCostModel(gates, secret, rng, /*samples=*/5);
    // Toy bootstraps are sub-millisecond but far above a NOT.
    EXPECT_GT(m.bootstrap_gate_seconds, 1e-6);
    EXPECT_LT(m.bootstrap_gate_seconds, 0.5);
    EXPECT_LT(m.linear_gate_seconds, m.bootstrap_gate_seconds / 10);
    // And it plugs into the simulator.
    ClusterConfig cfg;
    cfg.cpu = m;
    const auto p = WideProgram(100, 5);
    EXPECT_GT(SimulateCluster(p, cfg).seconds, 0.0);
}

// ------------------------------------------------------------------- GPU

TEST(GpuSim, PyTfheBeatsCuFheOnParallelCircuits) {
    const auto p = WideProgram(1000, 30);
    for (const GpuConfig& gpu : {A5000(), Rtx4090()}) {
        const GpuResult cufhe = SimulateCuFhe(p, gpu);
        const GpuResult pytfhe = SimulatePyTfhe(p, gpu);
        const double speedup = cufhe.seconds / pytfhe.seconds;
        // Paper: up to 61.5x; the gap must be at least an order of
        // magnitude on a parallel workload.
        EXPECT_GT(speedup, 10.0) << gpu.name;
        EXPECT_LT(speedup, 200.0) << gpu.name;
    }
}

TEST(GpuSim, SerialChainsGetModestGpuSpeedup) {
    const auto p = ChainProgram(200);
    const GpuConfig gpu = A5000();
    const double speedup =
        SimulateCuFhe(p, gpu).seconds / SimulatePyTfhe(p, gpu).seconds;
    // No gate-level parallelism: the win comes only from eliminating
    // copies and launches.
    EXPECT_LT(speedup, 10.0);
    EXPECT_GT(speedup, 1.0);
}

TEST(GpuSim, Rtx4090FasterThanA5000) {
    const auto p = WideProgram(2000, 20);
    EXPECT_LT(SimulatePyTfhe(p, Rtx4090()).seconds,
              SimulatePyTfhe(p, A5000()).seconds);
}

TEST(GpuSim, CuFheBreakdownAccountsForTotal) {
    const auto p = ChainProgram(10);
    const GpuResult r = SimulateCuFhe(p, A5000());
    EXPECT_NEAR(r.seconds,
                r.h2d_seconds + r.kernel_seconds + r.d2h_seconds +
                    r.launch_seconds,
                1e-9);
    EXPECT_EQ(r.batches, 10u);  // One API call per gate.
}

TEST(GpuSim, CuFheTimelineAlternatesLanes) {
    const auto p = ChainProgram(4);
    const GpuResult r = SimulateCuFhe(p, A5000());
    // Fig. 8: H2D, Kernel, D2H per gate, serialized.
    ASSERT_GE(r.timeline.size(), 12u);
    EXPECT_EQ(r.timeline[0].lane, "H2D");
    EXPECT_EQ(r.timeline[1].lane, "Kernel");
    EXPECT_EQ(r.timeline[2].lane, "D2H");
    for (size_t i = 1; i < r.timeline.size(); ++i)
        EXPECT_GE(r.timeline[i].start, r.timeline[i - 1].end - 1e-12);
}

TEST(GpuSim, PyTfheBatchesRespectBudget) {
    GpuConfig gpu = A5000();
    gpu.batch_gates = 100;
    const auto p = WideProgram(60, 10);  // 600 gates -> >= 6 batches.
    const GpuResult r = SimulatePyTfhe(p, gpu);
    EXPECT_GE(r.batches, 6u);
    EXPECT_LE(r.batches, 12u);
}

TEST(GpuSim, IntermediateValuesStayOnDevice) {
    // A deep chain in one batch needs only the primary inputs uploaded and
    // the single output downloaded: transfer time is two syncs.
    const auto p = ChainProgram(50);
    const GpuConfig gpu = A5000();
    const GpuResult r = SimulatePyTfhe(p, gpu);
    EXPECT_LE(r.h2d_seconds, 2 * gpu.transfer_sync_seconds);
    EXPECT_LE(r.d2h_seconds, 2 * gpu.transfer_sync_seconds);
}

TEST(GpuSim, HostBuildOverlapsExecution) {
    GpuConfig gpu = A5000();
    gpu.batch_gates = 2000;
    const auto p = WideProgram(400, 50);  // 20000 gates, 10 batches.
    const GpuResult r = SimulatePyTfhe(p, gpu);
    // Build time is nonzero but mostly hidden: total << serial sum.
    EXPECT_GT(r.host_build_seconds, 0.0);
    EXPECT_LT(r.seconds, r.kernel_seconds + r.h2d_seconds + r.d2h_seconds +
                             r.launch_seconds + r.host_build_seconds);
}

TEST(GpuSim, FasterKernelsNeverSlower) {
    const auto p = WideProgram(500, 20);
    GpuConfig slow = A5000(), fast = A5000();
    fast.kernel_seconds = slow.kernel_seconds / 2;
    EXPECT_LT(SimulatePyTfhe(p, fast).seconds,
              SimulatePyTfhe(p, slow).seconds);
    EXPECT_LT(SimulateCuFhe(p, fast).seconds,
              SimulateCuFhe(p, slow).seconds);
}

TEST(GpuSim, MoreConcurrencyNeverSlower) {
    const auto p = WideProgram(500, 20);
    double prev = 1e300;
    for (int32_t spg : {8, 4, 2, 1}) {  // Fewer SMs per gate = more lanes.
        GpuConfig g = A5000();
        g.sms_per_gate = spg;
        const double t = SimulatePyTfhe(p, g).seconds;
        EXPECT_LE(t, prev * 1.0001) << spg;
        prev = t;
    }
}

// ---------------------------------------------------- worker-fault model

TEST(ClusterFaults, DisabledModelMatchesBaseline) {
    const auto p = WideProgram(200, 10);
    const ClusterResult base = SimulateCluster(p, Nodes(4));
    const ClusterResult faulted =
        SimulateCluster(p, Nodes(4), ClusterFaultModel{});
    EXPECT_DOUBLE_EQ(base.seconds, faulted.seconds);
    EXPECT_DOUBLE_EQ(faulted.seconds, faulted.fault_free_seconds);
    EXPECT_EQ(faulted.failed_tasks, 0u);
    EXPECT_EQ(faulted.straggler_tasks, 0u);
    EXPECT_DOUBLE_EQ(faulted.RecoveryOverhead(), 0.0);
}

TEST(ClusterFaults, FailuresCostReexecutionTime) {
    const auto p = WideProgram(400, 20);
    ClusterFaultModel faults;
    faults.task_failure_rate = 0.1;
    const ClusterResult r = SimulateCluster(p, Nodes(4), faults);
    EXPECT_GT(r.failed_tasks, 0u);
    EXPECT_GT(r.seconds, r.fault_free_seconds);
    EXPECT_GT(r.RecoveryOverhead(), 0.0);
    // The baseline makespan is unchanged by the fault model.
    EXPECT_DOUBLE_EQ(r.fault_free_seconds,
                     SimulateCluster(p, Nodes(4)).seconds);
}

TEST(ClusterFaults, StragglersSlowTheWave) {
    const auto p = WideProgram(400, 20);
    ClusterFaultModel faults;
    faults.straggler_rate = 0.05;
    faults.straggler_slowdown = 4.0;
    const ClusterResult r = SimulateCluster(p, Nodes(1), faults);
    EXPECT_GT(r.straggler_tasks, 0u);
    EXPECT_EQ(r.failed_tasks, 0u);
    EXPECT_GT(r.seconds, r.fault_free_seconds);
}

TEST(ClusterFaults, DeterministicReplay) {
    const auto p = WideProgram(300, 15);
    ClusterFaultModel faults;
    faults.seed = 7;
    faults.task_failure_rate = 0.15;
    faults.straggler_rate = 0.1;
    const ClusterResult a = SimulateCluster(p, Nodes(4), faults);
    const ClusterResult b = SimulateCluster(p, Nodes(4), faults);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.failed_tasks, b.failed_tasks);
    EXPECT_EQ(a.straggler_tasks, b.straggler_tasks);
    // A different seed draws a different schedule.
    faults.seed = 8;
    const ClusterResult c = SimulateCluster(p, Nodes(4), faults);
    EXPECT_NE(a.failed_tasks, c.failed_tasks);
}

TEST(ClusterFaults, HigherFailureRateNeverCheaper) {
    // With no stragglers, every site failing at a low rate also fails at a
    // higher one (same hash draw), so cost is monotone in the rate.
    const auto p = WideProgram(300, 15);
    double prev_seconds = 0.0;
    uint64_t prev_failed = 0;
    for (double rate : {0.05, 0.15, 0.3}) {
        ClusterFaultModel faults;
        faults.task_failure_rate = rate;
        const ClusterResult r = SimulateCluster(p, Nodes(4), faults);
        EXPECT_GE(r.seconds, prev_seconds) << rate;
        EXPECT_GE(r.failed_tasks, prev_failed) << rate;
        prev_seconds = r.seconds;
        prev_failed = r.failed_tasks;
    }
}

TEST(ClusterFaults, ReexecutionBudgetBoundsAttempts) {
    // Even at an absurd failure rate the attempt loop terminates: after
    // max_reexecutions failed attempts the next one always completes.
    const auto p = WideProgram(50, 5);
    ClusterFaultModel faults;
    faults.task_failure_rate = 1.0;
    faults.max_reexecutions = 2;
    const ClusterResult r = SimulateCluster(p, Nodes(1), faults);
    // Every bootstrapped task fails exactly max_reexecutions times.
    const GateMix mix = ComputeGateMix(p);
    EXPECT_EQ(r.failed_tasks, 2 * mix.bootstrap_gates);
    EXPECT_GT(r.seconds, r.fault_free_seconds);
}

// ------------------------------------------- checkpoint economics (sim)

TEST(ClusterCheckpoints, ZeroIntervalReproducesUncheckpointedModel) {
    // interval == 0 must be bit-exact with the pre-checkpoint behavior:
    // no snapshots, every failure discards the whole partial attempt, and
    // the write cost is never charged.
    const auto p = WideProgram(400, 20);
    ClusterFaultModel faults;
    faults.task_failure_rate = 0.15;
    const ClusterResult off = SimulateCluster(p, Nodes(1), faults);
    faults.checkpoint_write_seconds = 123.0;  // Unused when interval == 0.
    const ClusterResult off2 = SimulateCluster(p, Nodes(1), faults);
    EXPECT_DOUBLE_EQ(off.seconds, off2.seconds);
    EXPECT_EQ(off.checkpoints_written, 0u);
    EXPECT_EQ(off2.checkpoints_written, 0u);
    EXPECT_GT(off.failed_tasks, 0u);
    EXPECT_GT(off.lost_seconds, 0.0);
}

TEST(ClusterCheckpoints, CheckpointsReduceLostWork) {
    const auto p = WideProgram(400, 20);
    ClusterFaultModel faults;
    faults.task_failure_rate = 0.2;
    const ClusterResult off = SimulateCluster(p, Nodes(1), faults);
    // A quarter-task interval with free writes: a failed attempt resumes
    // from its last snapshot, so the discarded work shrinks and the
    // makespan with it. The fault-free baseline is untouched.
    faults.checkpoint_interval_seconds = 0.004;  // task_seconds ~ 0.015.
    const ClusterResult on = SimulateCluster(p, Nodes(1), faults);
    EXPECT_GT(on.checkpoints_written, 0u);
    EXPECT_LT(on.lost_seconds, off.lost_seconds);
    EXPECT_LE(on.seconds, off.seconds);
    EXPECT_DOUBLE_EQ(on.fault_free_seconds, off.fault_free_seconds);
    EXPECT_EQ(on.failed_tasks, off.failed_tasks);  // Same failure draws.
}

TEST(ClusterCheckpoints, WriteCostIsCharged) {
    const auto p = WideProgram(200, 10);
    ClusterFaultModel faults;
    faults.task_failure_rate = 0.1;
    faults.checkpoint_interval_seconds = 0.004;
    const ClusterResult free_writes = SimulateCluster(p, Nodes(1), faults);
    faults.checkpoint_write_seconds = 0.002;
    const ClusterResult paid_writes = SimulateCluster(p, Nodes(1), faults);
    EXPECT_EQ(paid_writes.checkpoints_written,
              free_writes.checkpoints_written);
    EXPECT_GT(paid_writes.seconds, free_writes.seconds);
}

TEST(ClusterCheckpoints, DeterministicReplayWithCheckpoints) {
    const auto p = WideProgram(300, 15);
    ClusterFaultModel faults;
    faults.seed = 11;
    faults.task_failure_rate = 0.15;
    faults.checkpoint_interval_seconds = 0.005;
    faults.checkpoint_write_seconds = 0.001;
    const ClusterResult a = SimulateCluster(p, Nodes(4), faults);
    const ClusterResult b = SimulateCluster(p, Nodes(4), faults);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
    EXPECT_DOUBLE_EQ(a.lost_seconds, b.lost_seconds);
}

TEST(ClusterCheckpoints, YoungDalyIntervalProperties) {
    ClusterFaultModel faults;
    // Disabled ingredients -> checkpointing cannot pay off.
    EXPECT_DOUBLE_EQ(faults.OptimalCheckpointIntervalSeconds(10.0), 0.0);
    faults.task_failure_rate = 0.1;
    EXPECT_DOUBLE_EQ(faults.OptimalCheckpointIntervalSeconds(10.0), 0.0);
    faults.checkpoint_write_seconds = 0.5;
    EXPECT_DOUBLE_EQ(faults.OptimalCheckpointIntervalSeconds(0.0), 0.0);

    // tau = sqrt(2 * C * MTBF), MTBF = task_seconds / rate:
    // sqrt(2 * 0.5 * 10 / 0.1) = sqrt(100) = 10.
    EXPECT_DOUBLE_EQ(faults.OptimalCheckpointIntervalSeconds(10.0), 10.0);

    // Costlier writes push the interval out; flakier tasks pull it in.
    ClusterFaultModel pricier = faults;
    pricier.checkpoint_write_seconds = 2.0;
    EXPECT_GT(pricier.OptimalCheckpointIntervalSeconds(10.0),
              faults.OptimalCheckpointIntervalSeconds(10.0));
    ClusterFaultModel flakier = faults;
    flakier.task_failure_rate = 0.4;
    EXPECT_LT(flakier.OptimalCheckpointIntervalSeconds(10.0),
              faults.OptimalCheckpointIntervalSeconds(10.0));
}

TEST(ClusterSim, SlowerGatesScaleLinearly) {
    const auto p = WideProgram(500, 20);
    ClusterConfig c1, c2;
    c2.cpu.bootstrap_gate_seconds = 2 * c1.cpu.bootstrap_gate_seconds;
    const double t1 = SimulateCluster(p, c1).seconds;
    const double t2 = SimulateCluster(p, c2).seconds;
    // Compute dominates on this program, so doubling the gate cost nearly
    // doubles the makespan.
    EXPECT_GT(t2 / t1, 1.8);
    EXPECT_LT(t2 / t1, 2.05);
}

TEST(ShardRing, RemovalMovesAboutOneNthOfKeysAndOnlyThose) {
    const uint32_t shards = 8;
    const ShardRing ring(shards, /*vnodes=*/64, /*seed=*/3);
    std::vector<bool> live(shards, true);
    live[3] = false;

    uint64_t moved = 0, owned_by_dead = 0;
    const uint64_t keys = 20000;
    for (uint64_t k = 1; k <= keys; ++k) {
        const uint32_t before = ring.Owner(k);
        const uint32_t after = ring.Owner(k, live);
        EXPECT_NE(after, 3u);
        if (before == 3) {
            ++owned_by_dead;
            EXPECT_NE(after, before);
            ++moved;
        } else {
            // The consistent-hashing contract: survivors keep their keys.
            EXPECT_EQ(after, before) << "key " << k;
        }
    }
    EXPECT_EQ(moved, owned_by_dead);
    // The dead shard owned roughly 1/shards of the key space.
    const double frac = static_cast<double>(moved) / keys;
    EXPECT_GT(frac, 0.5 / shards);
    EXPECT_LT(frac, 2.0 / shards);
}

TEST(ZipfTrace, DeterministicOneBasedAndRankOneHottest) {
    const uint64_t tenants = 50, requests = 5000;
    const auto a = MakeZipfTrace(tenants, requests, 1.1, 0.01, 0.1, 9);
    const auto b = MakeZipfTrace(tenants, requests, 1.1, 0.01, 0.1, 9);
    ASSERT_EQ(a.size(), requests);
    std::vector<uint64_t> count(tenants + 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        ASSERT_GE(a[i].tenant, 1u);
        ASSERT_LE(a[i].tenant, tenants);
        ++count[a[i].tenant];
        EXPECT_DOUBLE_EQ(a[i].arrival_seconds, i * 0.01);
    }
    // Zipf rank 1 dominates every other tenant.
    for (uint64_t t = 2; t <= tenants; ++t)
        EXPECT_GT(count[1], count[t]) << "tenant " << t;
}

TEST(ShardedServing, DeterministicAcrossRuns) {
    ShardingConfig config;
    config.shards = 4;
    config.key_bytes = 10;
    config.shard_cache_capacity_bytes = 80;
    config.reload_seconds = 0.5;
    config.epoch_seconds = 5.0;
    config.faults.task_failure_rate = 0.05;
    config.faults.detect_seconds = 1.0;
    const auto trace = MakeZipfTrace(500, 4000, 1.0, 0.02, 0.05, 4);
    const auto r1 = SimulateShardedServing(trace, config);
    const auto r2 = SimulateShardedServing(trace, config);
    EXPECT_EQ(r1.cache_hits, r2.cache_hits);
    EXPECT_EQ(r1.evictions, r2.evictions);
    EXPECT_EQ(r1.shard_failures, r2.shard_failures);
    EXPECT_EQ(r1.moved_keys, r2.moved_keys);
    EXPECT_DOUBLE_EQ(r1.p99_latency_seconds, r2.p99_latency_seconds);
    EXPECT_DOUBLE_EQ(r1.makespan_seconds, r2.makespan_seconds);
    EXPECT_GT(r1.shard_failures, 0u);
    EXPECT_GT(r1.moved_keys, 0u);
}

TEST(ShardedServing, CachePeakBoundedAndHitRateMonotoneInCapacity) {
    const auto trace = MakeZipfTrace(300, 3000, 1.0, 0.02, 0.05, 6);
    double prev_hit = -1.0;
    for (uint64_t keys_per_shard : {4, 16, 64}) {
        ShardingConfig config;
        config.shards = 4;
        config.key_bytes = 100;
        config.shard_cache_capacity_bytes = keys_per_shard * 100;
        config.reload_seconds = 0.5;
        const auto r = SimulateShardedServing(trace, config);
        EXPECT_LE(r.peak_resident_bytes, config.shard_cache_capacity_bytes);
        EXPECT_GT(r.evictions, 0u);
        // More cache never hurts the hit rate on the same trace.
        EXPECT_GE(r.HitRate(), prev_hit) << keys_per_shard;
        prev_hit = r.HitRate();
        EXPECT_DOUBLE_EQ(r.reload_total_seconds, 0.5 * r.cache_misses);
    }
}

TEST(ShardedServing, KeyAffinityBeatsLeastLoadedOnLocality) {
    const auto trace = MakeZipfTrace(2000, 8000, 1.0, 0.02, 0.05, 8);
    ShardingConfig config;
    config.shards = 8;
    config.key_bytes = 100;
    config.shard_cache_capacity_bytes = 32 * 100;
    config.reload_seconds = 0.5;

    config.routing = ShardRouting::kKeyAffinity;
    const auto affinity = SimulateShardedServing(trace, config);
    config.routing = ShardRouting::kLeastLoaded;
    const auto balanced = SimulateShardedServing(trace, config);

    // Affinity pins each tenant to one shard, so its working set per
    // shard is 1/shards the size: strictly better cache behavior. The
    // balanced router spreads each tenant's key across the fleet.
    EXPECT_GT(affinity.HitRate(), balanced.HitRate());
    EXPECT_LT(affinity.reload_total_seconds, balanced.reload_total_seconds);
    // With no failures nothing ever leaves its ring owner.
    EXPECT_EQ(affinity.moved_keys, 0u);
    EXPECT_EQ(affinity.shard_failures, 0u);
}

}  // namespace
}  // namespace pytfhe::backend
