/**
 * @file
 * ServingExecutor tests: multi-job correctness against the sequential
 * interpreter, fairness under the per-job in-flight cap, cancellation
 * (queued and mid-run), deadlines, backpressure, and a randomized
 * multi-submitter stress test. Labeled `concurrency`: run under
 * -DPYTFHE_SANITIZE=thread to prove the scheduler race-free.
 */
#include "backend/serving.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>

#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t =
            static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(n.AddGate(t, pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

std::shared_ptr<const pasm::Program> AssembleShared(const Netlist& n) {
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

/** A serial NAND chain: exactly one gate ready at any time. */
std::shared_ptr<const pasm::Program> ChainProgram(int32_t length) {
    Netlist n;
    NodeId a = n.AddInput();
    NodeId cur = a;
    for (int32_t i = 0; i < length; ++i)
        cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    return AssembleShared(n);
}

/** `width` independent AND gates: the whole program is ready at once. */
std::shared_ptr<const pasm::Program> WideProgram(int32_t width) {
    Netlist n;
    std::vector<NodeId> gates;
    for (int32_t i = 0; i < width; ++i) {
        NodeId a = n.AddInput();
        NodeId b = n.AddInput();
        gates.push_back(n.AddGate(GateType::kAnd, a, b));
    }
    NodeId acc = gates[0];
    for (size_t i = 1; i < gates.size(); ++i)
        acc = n.AddGate(GateType::kXor, acc, gates[i]);
    n.AddOutput(acc);
    return AssembleShared(n);
}

std::vector<bool> RandomBits(uint64_t seed, size_t count) {
    std::mt19937_64 rng(seed);
    std::vector<bool> bits(count);
    for (size_t i = 0; i < count; ++i) bits[i] = rng() & 1;
    return bits;
}

/**
 * Plain semantics plus a hook: every Apply bumps a per-job gauge (and
 * global counters) and dwells long enough for overlap to be observable.
 */
struct GaugeEvaluator {
    using Ciphertext = bool;

    std::atomic<int32_t>* gauge = nullptr;        ///< This job's in-Apply.
    std::atomic<int32_t>* peak = nullptr;         ///< Max of `gauge` seen.
    std::atomic<int32_t>* other_gauge = nullptr;  ///< Another job's gauge.
    std::atomic<bool>* overlap = nullptr;  ///< Both jobs in Apply at once.
    std::atomic<uint64_t>* applied = nullptr;     ///< Total Apply calls.
    std::atomic<bool>* hold = nullptr;  ///< While true, Apply spin-waits.

    bool Apply(GateType t, bool a, bool b) const {
        if (applied) applied->fetch_add(1);
        if (gauge) {
            const int32_t cur = gauge->fetch_add(1) + 1;
            if (peak) {
                int32_t seen = peak->load();
                while (cur > seen && !peak->compare_exchange_weak(seen, cur)) {
                }
            }
            if (overlap && other_gauge && other_gauge->load() > 0)
                overlap->store(true);
        }
        if (hold) {
            while (hold->load())
                std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (gauge) gauge->fetch_sub(1);
        return circuit::EvalGate(t, a, b);
    }
};

TEST(Serving, SingleJobMatchesSequentialInterpreter) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions opts;
    opts.num_workers = 4;
    ServingExecutor<PlainEvaluator> serving(executor, opts);
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        const auto program = AssembleShared(RandomNetlist(seed, 8, 250));
        const auto in = RandomBits(seed * 31, 8);
        const auto want = RunProgram(*program, eval, in);
        auto job = serving.Submit(program, eval, in);
        ASSERT_EQ(job->Wait(), JobStatus::kDone) << seed;
        EXPECT_EQ(job->Outputs(), want) << seed;
        const JobMetrics m = job->Metrics();
        EXPECT_EQ(m.gates_executed, program->NumGates());
        EXPECT_EQ(m.gates_skipped, 0u);
        EXPECT_EQ(m.total_gates, program->NumGates());
        EXPECT_GE(m.wall_seconds, m.run_seconds);
    }
}

TEST(Serving, ManySubmittersManyJobsAllMatchSequential) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions opts;
    opts.num_workers = 4;
    opts.max_active_jobs = 6;
    ServingExecutor<PlainEvaluator> serving(executor, opts);

    std::vector<std::shared_ptr<const pasm::Program>> programs;
    for (uint64_t s = 0; s < 3; ++s)
        programs.push_back(AssembleShared(RandomNetlist(s + 40, 6, 180)));

    constexpr int kThreads = 4;
    constexpr int kJobsPerThread = 6;
    std::vector<std::thread> submitters;
    std::vector<std::string> failures(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int j = 0; j < kJobsPerThread; ++j) {
                const auto& program = programs[(t + j) % programs.size()];
                const auto in =
                    RandomBits(static_cast<uint64_t>(t) * 100 + j, 6);
                const auto want = RunProgram(*program, eval, in);
                auto job = serving.Submit(program, eval, in);
                if (job->Wait() != JobStatus::kDone ||
                    job->Outputs() != want) {
                    failures[t] = "job mismatch, thread " +
                                  std::to_string(t) + " job " +
                                  std::to_string(j);
                    return;
                }
            }
        });
    }
    for (auto& th : submitters) th.join();
    for (const auto& f : failures) EXPECT_EQ(f, "");

    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_submitted,
              static_cast<uint64_t>(kThreads * kJobsPerThread));
    EXPECT_EQ(stats.jobs_completed, stats.jobs_submitted);
    EXPECT_EQ(stats.jobs_cancelled, 0u);
    EXPECT_GE(stats.max_active_observed, 1u);
}

TEST(Serving, InflightCapBoundsOneJobAndJobsOverlap) {
    // Two wide jobs (every gate ready immediately) on 4 workers with a cap
    // of 2: neither job may ever have more than 2 gates in Apply, and with
    // both active the round-robin must interleave them.
    std::atomic<int32_t> gauge_a{0}, gauge_b{0}, peak_a{0}, peak_b{0};
    std::atomic<bool> overlap{false};
    GaugeEvaluator eval_a{&gauge_a, &peak_a, &gauge_b, &overlap,
                          nullptr, nullptr};
    GaugeEvaluator eval_b{&gauge_b, &peak_b, &gauge_a, &overlap,
                          nullptr, nullptr};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 4;
    opts.per_job_inflight_cap = 2;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);

    const auto program = WideProgram(64);
    const auto in = RandomBits(5, program->NumInputs());
    auto job_a = serving.Submit(program, eval_a, in);
    auto job_b = serving.Submit(program, eval_b, in);
    ASSERT_EQ(job_a->Wait(), JobStatus::kDone);
    ASSERT_EQ(job_b->Wait(), JobStatus::kDone);

    EXPECT_LE(peak_a.load(), 2);
    EXPECT_LE(peak_b.load(), 2);
    EXPECT_GE(peak_a.load(), 1);
    EXPECT_TRUE(overlap.load())
        << "two active wide jobs never ran concurrently";

    PlainEvaluator plain;
    EXPECT_EQ(job_a->Outputs(), RunProgram(*program, plain, in));
    EXPECT_EQ(job_a->Outputs(), job_b->Outputs());
}

TEST(Serving, CancelBeforeStartResolvesInstantly) {
    // One long-running job occupies the single active slot; the second job
    // sits queued, so its cancellation must not wait for the first.
    std::atomic<bool> hold{true};
    std::atomic<uint64_t> applied{0};
    GaugeEvaluator eval{nullptr, nullptr, nullptr, nullptr, &applied, &hold};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    opts.max_active_jobs = 1;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);

    const auto chain = ChainProgram(64);
    auto blocker = serving.Submit(chain, eval, {true});
    while (applied.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));

    auto queued = serving.Submit(chain, eval, {true});
    EXPECT_EQ(queued->TryGet(), std::nullopt);
    EXPECT_TRUE(queued->Cancel());
    EXPECT_EQ(queued->TryGet(), JobStatus::kCancelled);
    EXPECT_THROW((void)queued->Outputs(), CancelledError);
    const JobMetrics m = queued->Metrics();
    EXPECT_EQ(m.gates_executed, 0u);
    EXPECT_FALSE(queued->Cancel()) << "already terminal";

    hold.store(false);
    EXPECT_EQ(blocker->Wait(), JobStatus::kDone);
}

TEST(Serving, CancelMidRunDrainsWithoutEvaluating) {
    std::atomic<uint64_t> applied{0};
    GaugeEvaluator eval{nullptr, nullptr, nullptr, nullptr,
                        &applied, nullptr};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);

    const auto chain = ChainProgram(4000);
    auto job = serving.Submit(chain, eval, {true});
    while (applied.load() < 3)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    EXPECT_TRUE(job->Cancel());
    EXPECT_EQ(job->Wait(), JobStatus::kCancelled);
    EXPECT_THROW((void)job->Outputs(), CancelledError);

    const JobMetrics m = job->Metrics();
    EXPECT_GT(m.gates_executed, 0u);
    EXPECT_GT(m.gates_skipped, 0u) << "cancellation should skip the tail";
    EXPECT_EQ(m.gates_executed + m.gates_skipped, m.total_gates);
    EXPECT_LT(m.gates_executed, m.total_gates);
}

TEST(Serving, DeadlineAtAdmissionAndMidRun) {
    std::atomic<uint64_t> applied{0};
    GaugeEvaluator eval{nullptr, nullptr, nullptr, nullptr,
                        &applied, nullptr};
    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);

    ServingExecutor<GaugeEvaluator>::SubmitOptions expired;
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    auto dead_on_arrival = serving.Submit(ChainProgram(16), eval, {true},
                                          expired);
    EXPECT_EQ(dead_on_arrival->Wait(), JobStatus::kDeadlineExceeded);
    EXPECT_EQ(dead_on_arrival->Metrics().gates_executed, 0u);
    EXPECT_THROW((void)dead_on_arrival->Outputs(), DeadlineExceededError);

    // A 4000-gate serial chain at >= 200us per gate cannot finish within
    // 20ms; the deadline check at gate granularity must cut it off.
    ServingExecutor<GaugeEvaluator>::SubmitOptions tight;
    tight.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(20);
    auto slow = serving.Submit(ChainProgram(4000), eval, {true}, tight);
    EXPECT_EQ(slow->Wait(), JobStatus::kDeadlineExceeded);
    const JobMetrics m = slow->Metrics();
    EXPECT_LT(m.gates_executed, m.total_gates);
    EXPECT_GT(m.gates_skipped, 0u);

    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_deadline_exceeded, 2u);
}

TEST(Serving, BackpressureRejectsWithTypedError) {
    std::atomic<bool> hold{true};
    std::atomic<uint64_t> applied{0};
    GaugeEvaluator eval{nullptr, nullptr, nullptr, nullptr, &applied, &hold};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    opts.max_active_jobs = 1;
    opts.max_pending_jobs = 2;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);

    const auto chain = ChainProgram(8);
    auto running = serving.Submit(chain, eval, {true});
    while (applied.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    auto queued = serving.Submit(chain, eval, {true});
    EXPECT_THROW((void)serving.Submit(chain, eval, {true}), OverloadedError);
    EXPECT_EQ(serving.stats().jobs_rejected, 1u);

    hold.store(false);
    EXPECT_EQ(running->Wait(), JobStatus::kDone);
    EXPECT_EQ(queued->Wait(), JobStatus::kDone);
    // Capacity freed: submission succeeds again.
    EXPECT_EQ(serving.Submit(chain, eval, {true})->Wait(), JobStatus::kDone);
}

TEST(Serving, ZeroGatePassThroughProgram) {
    Netlist n;
    NodeId a = n.AddInput();
    NodeId b = n.AddInput();
    n.AddOutput(b);
    n.AddOutput(a);
    const auto program = AssembleShared(n);
    ASSERT_EQ(program->NumGates(), 0u);

    PlainEvaluator eval;
    Executor executor;
    ServingExecutor<PlainEvaluator> serving(executor, ServingOptions{});
    auto job = serving.Submit(program, eval, {true, false});
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    EXPECT_EQ(job->Outputs(), RunProgram(*program, eval, {true, false}));
}

TEST(Serving, RejectsInvalidArgumentsAndSubmitAfterStop) {
    PlainEvaluator eval;
    Executor executor;
    EXPECT_THROW(
        (ServingExecutor<PlainEvaluator>(executor,
                                         ServingOptions{.num_workers = 0})),
        std::invalid_argument);

    ServingExecutor<PlainEvaluator> serving(executor, ServingOptions{});
    const auto chain = ChainProgram(4);
    EXPECT_THROW((void)serving.Submit(nullptr, eval, {true}),
                 std::invalid_argument);
    EXPECT_THROW((void)serving.Submit(chain, eval, {true, false}),
                 std::invalid_argument);
    serving.Stop();
    EXPECT_THROW((void)serving.Submit(chain, eval, {true}),
                 std::runtime_error);
}

TEST(Serving, StopCancelsOutstandingJobs) {
    std::atomic<bool> hold{true};
    std::atomic<uint64_t> applied{0};
    GaugeEvaluator eval{nullptr, nullptr, nullptr, nullptr, &applied, &hold};
    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    opts.max_active_jobs = 1;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);

    auto running = serving.Submit(ChainProgram(8), eval, {true});
    while (applied.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    auto queued = serving.Submit(ChainProgram(8), eval, {true});
    hold.store(false);  // Let the in-flight gate drain so Stop can join.
    serving.Stop();
    EXPECT_TRUE(IsTerminal(running->TryGet().value()));
    EXPECT_EQ(queued->TryGet(), JobStatus::kCancelled);
}

/**
 * Randomized stress: four submitter threads race jobs (some cancelled
 * immediately) against the scheduler. Every completed job must match the
 * sequential interpreter exactly. Run under TSan via `ctest -L
 * concurrency` in a -DPYTFHE_SANITIZE=thread build.
 */
TEST(Serving, StressRandomJobsWithCancellations) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions opts;
    opts.num_workers = 4;
    opts.max_active_jobs = 4;
    opts.max_pending_jobs = 256;
    opts.per_job_inflight_cap = 3;
    ServingExecutor<PlainEvaluator> serving(executor, opts);

    std::vector<std::shared_ptr<const pasm::Program>> programs;
    for (uint64_t s = 0; s < 4; ++s)
        programs.push_back(AssembleShared(RandomNetlist(s + 77, 7, 220)));

    constexpr int kThreads = 4;
    constexpr int kJobsPerThread = 10;
    std::atomic<int32_t> mismatches{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            std::mt19937_64 rng(900 + t);
            for (int j = 0; j < kJobsPerThread; ++j) {
                const auto& program = programs[rng() % programs.size()];
                const auto in = RandomBits(rng(), 7);
                auto job = serving.Submit(program, eval, in);
                if (j % 5 == 4) {
                    (void)job->Cancel();
                    if (!IsTerminal(job->Wait())) mismatches.fetch_add(1);
                    continue;
                }
                if (job->Wait() != JobStatus::kDone ||
                    job->Outputs() != RunProgram(*program, eval, in))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto& th : submitters) th.join();
    EXPECT_EQ(mismatches.load(), 0);

    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_submitted,
              static_cast<uint64_t>(kThreads * kJobsPerThread));
    EXPECT_EQ(stats.jobs_completed + stats.jobs_cancelled,
              stats.jobs_submitted);
}

TEST(ServingTenant, PendingQuotaRejectsOnlyTheHoggingTenant) {
    std::atomic<bool> hold{true};
    std::atomic<uint64_t> applied{0};
    GaugeEvaluator eval{nullptr, nullptr, nullptr, nullptr, &applied, &hold};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    opts.max_active_jobs = 1;
    opts.max_pending_jobs = 64;
    opts.max_pending_jobs_per_tenant = 2;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);
    using SubmitOptions = ServingExecutor<GaugeEvaluator>::SubmitOptions;

    const auto chain = ChainProgram(8);
    SubmitOptions hog;
    hog.tenant = 1;
    auto running = serving.Submit(chain, eval, {true}, hog);
    while (applied.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    auto queued = serving.Submit(chain, eval, {true}, hog);
    // Tenant 1 is at its quota: a third job bounces with the same typed
    // retry-after error as global backpressure, counted separately.
    EXPECT_THROW((void)serving.Submit(chain, eval, {true}, hog),
                 OverloadedError);
    EXPECT_EQ(serving.stats().jobs_rejected_tenant_quota, 1u);
    EXPECT_EQ(serving.stats().jobs_rejected, 0u);

    // The service-wide queue has room: another tenant submits fine.
    SubmitOptions other;
    other.tenant = 2;
    auto bystander = serving.Submit(chain, eval, {true}, other);

    hold.store(false);
    EXPECT_EQ(running->Wait(), JobStatus::kDone);
    EXPECT_EQ(queued->Wait(), JobStatus::kDone);
    EXPECT_EQ(bystander->Wait(), JobStatus::kDone);
    // Quota slots freed: tenant 1 submits again.
    EXPECT_EQ(serving.Submit(chain, eval, {true}, hog)->Wait(),
              JobStatus::kDone);
}

TEST(ServingTenant, ActiveQuotaThrottlesTenantWithoutBlockingOthers) {
    std::atomic<bool> hold{true};
    std::atomic<uint64_t> applied_t1{0};
    std::atomic<uint64_t> applied_t2{0};
    GaugeEvaluator held{nullptr, nullptr, nullptr, nullptr, &applied_t1,
                        &hold};
    GaugeEvaluator free_run{nullptr, nullptr, nullptr, nullptr,
                            &applied_t2, nullptr};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    opts.max_active_jobs = 4;
    opts.max_active_jobs_per_tenant = 1;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);
    using SubmitOptions = ServingExecutor<GaugeEvaluator>::SubmitOptions;

    const auto chain = ChainProgram(8);
    SubmitOptions t1;
    t1.tenant = 1;
    auto first = serving.Submit(chain, held, {true}, t1);
    while (applied_t1.load() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    // Tenant 1's second job must wait in the queue (active quota 1)...
    auto second = serving.Submit(chain, held, {true}, t1);
    // ...but it does NOT block tenant 2's admission behind it: tenant 2
    // runs to completion while tenant 1's first job still holds its slot.
    SubmitOptions t2;
    t2.tenant = 2;
    auto bystander = serving.Submit(chain, free_run, {true}, t2);
    EXPECT_EQ(bystander->Wait(), JobStatus::kDone);
    EXPECT_FALSE(second->TryGet().has_value());

    hold.store(false);
    EXPECT_EQ(first->Wait(), JobStatus::kDone);
    EXPECT_EQ(second->Wait(), JobStatus::kDone);
}

TEST(ServingTenant, WeightScalesTheInflightCap) {
    std::atomic<int32_t> gauge{0};
    std::atomic<int32_t> peak{0};
    std::atomic<bool> hold{true};
    GaugeEvaluator eval{&gauge, &peak, nullptr, nullptr, nullptr, &hold};

    Executor executor;
    ServingOptions opts;
    opts.num_workers = 4;
    opts.per_job_inflight_cap = 1;
    ServingExecutor<GaugeEvaluator> serving(executor, opts);
    using SubmitOptions = ServingExecutor<GaugeEvaluator>::SubmitOptions;

    // Weight 2 doubles the per-job in-flight budget: two workers enter
    // Apply for the same job at once, impossible at weight 1 with cap 1.
    SubmitOptions heavy;
    heavy.weight = 2;
    auto job = serving.Submit(WideProgram(8), eval, 
                              std::vector<bool>(16, true), heavy);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (peak.load() < 2 && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    EXPECT_GE(peak.load(), 2);
    hold.store(false);
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    EXPECT_LE(peak.load(), 2);  // Cap x weight, never more.
}

TEST(ServingTenant, PinIsHeldForTheJobLifetime) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions opts;
    opts.num_workers = 2;
    ServingExecutor<PlainEvaluator> serving(executor, opts);
    using SubmitOptions = ServingExecutor<PlainEvaluator>::SubmitOptions;

    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    SubmitOptions so;
    so.pin = std::move(token);
    auto job = serving.Submit(ChainProgram(4), eval, {true}, so);
    so.pin.reset();  // The job's copy is now the only owner.
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    // Terminal but the handle lives: the pin must still be held (a
    // serving registry relies on this to keep key material alive until
    // the last reference to the job is gone).
    EXPECT_FALSE(watch.expired());
    job.reset();
    // A worker may still hold its transient JobPtr copy for a moment
    // after Wait() returns; only the owning references must be gone.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!watch.expired() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace pytfhe::backend
