/**
 * @file
 * Dependency-counting executor tests: equivalence against the sequential
 * interpreter and the wave-barrier path on plaintext and encrypted
 * circuits, exact profile accounting under concurrency, argument
 * validation, and pool persistence across runs. Run under
 * -DPYTFHE_SANITIZE=thread (ctest -L concurrency) to prove race freedom.
 */
#include "backend/executor.h"

#include <gtest/gtest.h>
#include <random>

#include "backend/execute.h"

#include "hdl/word_ops.h"
#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t = static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

/** An 8-bit ripple-carry adder over two encrypted operands. */
pasm::Program AdderProgram() {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    auto p = pasm::Assemble(b.netlist());
    EXPECT_TRUE(p.has_value());
    return *p;
}

/** Bootstrapped (two-input) gates in a program; NOT/COPY are noiseless. */
uint64_t CountBootstrappedGates(const pasm::Program& p) {
    uint64_t n = 0;
    const uint64_t first = p.FirstGateIndex();
    for (uint64_t idx = first; idx < first + p.NumGates(); ++idx)
        if (p.GateAt(idx).type != GateType::kNot) ++n;
    return n;
}

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, MatchesSequentialAndWavePathOnPlainBits) {
    const Netlist n = RandomNetlist(GetParam() ^ 0xD06, 8, 300);
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    PlainEvaluator eval;
    Executor executor;
    std::mt19937_64 rng(GetParam());
    for (int32_t threads : {1, 2, 8}) {
        std::vector<bool> in(8);
        for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
        const auto want = RunProgram(*p, eval, in);
        EXPECT_EQ(executor.Run(*p, eval, in, threads), want)
            << "threads=" << threads;
        EXPECT_EQ(RunProgramThreaded(*p, eval, in, threads), want)
            << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Executor, DeepNarrowChainExecutesInDependencyOrder) {
    // A serial 400-gate NAND chain: exactly one gate is ever ready, so any
    // scheduling mistake (missed decrement, early start) corrupts the
    // result.
    Netlist n;
    NodeId a = n.AddInput();
    NodeId cur = a;
    for (int i = 0; i < 400; ++i) cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    PlainEvaluator eval;
    Executor executor;
    for (bool in : {false, true}) {
        const std::vector<bool> bits{in};
        const auto want = n.EvaluatePlain(bits);
        for (int32_t threads : {2, 8})
            EXPECT_EQ(executor.Run(*p, eval, bits, threads), want)
                << "in=" << in << " threads=" << threads;
    }
}

TEST(Executor, PoolPersistsAcrossProgramsAndRuns) {
    PlainEvaluator eval;
    Executor executor;
    const auto adder = AdderProgram();
    const auto random_p = pasm::Assemble(RandomNetlist(3, 6, 120));
    ASSERT_TRUE(random_p.has_value());
    std::mt19937_64 rng(17);
    for (int run = 0; run < 4; ++run) {
        std::vector<bool> a(16), b(6);
        for (size_t i = 0; i < a.size(); ++i) a[i] = rng() & 1;
        for (size_t i = 0; i < b.size(); ++i) b[i] = rng() & 1;
        EXPECT_EQ(executor.Run(adder, eval, a, 4),
                  RunProgram(adder, eval, a));
        EXPECT_EQ(executor.Run(*random_p, eval, b, 4),
                  RunProgram(*random_p, eval, b));
    }
    // Workers were created once and reused, never torn down between runs.
    EXPECT_EQ(executor.pool().NumWorkers(), 3);
}

TEST(Executor, RejectsBadArguments) {
    const auto p = AdderProgram();
    PlainEvaluator eval;
    Executor executor;
    const std::vector<bool> too_few(3, false);
    const std::vector<bool> right(16, false);
    EXPECT_THROW((void)executor.Run(p, eval, too_few, 2),
                 std::invalid_argument);
    EXPECT_THROW((void)executor.Run(p, eval, right, 0),
                 std::invalid_argument);
    EXPECT_THROW((void)executor.Run(p, eval, right, -4),
                 std::invalid_argument);
    EXPECT_THROW((void)RunProgram(p, eval, too_few), std::invalid_argument);
    EXPECT_THROW((void)RunProgramThreaded(p, eval, right, 0),
                 std::invalid_argument);
}

TEST(Executor, RunControlCancelAbortsAllPaths) {
    const auto p = AdderProgram();
    PlainEvaluator eval;
    Executor executor;
    const std::vector<bool> in(16, true);
    std::atomic<bool> cancel{true};  // Pre-raised: aborts at the first gate.
    RunControl control;
    control.cancel = &cancel;
    EXPECT_THROW((void)RunProgram(p, eval, in, control), CancelledError);
    EXPECT_THROW((void)executor.Run(p, eval, in, 1, control),
                 CancelledError);
    EXPECT_THROW((void)executor.Run(p, eval, in, 4, control),
                 CancelledError);
    // The pool survives an aborted run and executes the next one.
    cancel.store(false);
    EXPECT_EQ(executor.Run(p, eval, in, 4, control),
              RunProgram(p, eval, in));
}

TEST(Executor, RunControlDeadlineAbortsAllPaths) {
    const auto p = AdderProgram();
    PlainEvaluator eval;
    Executor executor;
    const std::vector<bool> in(16, false);
    RunControl control;
    control.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1);
    EXPECT_THROW((void)RunProgram(p, eval, in, control),
                 DeadlineExceededError);
    EXPECT_THROW((void)executor.Run(p, eval, in, 4, control),
                 DeadlineExceededError);
    control.deadline = std::chrono::steady_clock::now() +
                       std::chrono::hours(1);
    EXPECT_EQ(executor.Run(p, eval, in, 4, control),
              RunProgram(p, eval, in));
}

TEST(Execute, DispatcherSelectsEquivalentPaths) {
    const auto p = AdderProgram();
    PlainEvaluator eval;
    Executor executor;
    std::mt19937_64 rng(31);
    std::vector<bool> in(16);
    for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
    const auto want = RunProgram(p, eval, in);

    for (ExecMode mode : {ExecMode::kAuto, ExecMode::kSequential,
                          ExecMode::kWaveBarrier,
                          ExecMode::kDependencyCounting}) {
        for (int32_t threads : {1, 4}) {
            if (mode == ExecMode::kSequential && threads != 1) continue;
            ExecOptions options;
            options.mode = mode;
            options.num_threads = threads;
            EXPECT_EQ(Execute(p, eval, in, options), want)
                << "mode=" << static_cast<int>(mode)
                << " threads=" << threads;
            // And again through a caller-owned persistent executor.
            options.executor = &executor;
            EXPECT_EQ(Execute(p, eval, in, options), want)
                << "persistent, mode=" << static_cast<int>(mode);
        }
    }
}

TEST(Execute, WaveBarrierRejectsRunControl) {
    const auto p = AdderProgram();
    PlainEvaluator eval;
    const std::vector<bool> in(16, false);
    ExecOptions options;
    options.mode = ExecMode::kWaveBarrier;
    options.num_threads = 2;
    options.control.deadline = std::chrono::steady_clock::now() +
                               std::chrono::hours(1);
    EXPECT_THROW((void)Execute(p, eval, in, options), std::invalid_argument);
}

/** Encrypted equivalence across all three execution paths. */
class EncryptedExecutorTest : public ::testing::Test {
  protected:
    EncryptedExecutorTest()
        : rng_(2024),
          secret_(tfhe::ToyParams(), rng_),
          gates_(secret_, rng_),
          eval_(gates_) {}

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> out;
        for (bool b : bits) out.push_back(secret_.Encrypt(b, rng_));
        return out;
    }

    std::vector<bool> Decrypt(const std::vector<tfhe::LweSample>& samples) {
        std::vector<bool> out;
        for (const auto& s : samples) out.push_back(secret_.Decrypt(s));
        return out;
    }

    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    tfhe::GateEvaluator gates_;
    TfheEvaluator eval_;
};

TEST_F(EncryptedExecutorTest, AdderEquivalentAcrossAllPathsWithExactProfile) {
    const auto p = AdderProgram();
    const uint64_t expected_bootstraps = CountBootstrappedGates(p);
    ASSERT_GT(expected_bootstraps, 0u);

    // 161 + 94 = 255, little-endian bits.
    std::vector<bool> bits;
    for (uint64_t v : {161u, 94u})
        for (int i = 0; i < 8; ++i) bits.push_back((v >> i) & 1);
    const auto inputs = Encrypt(bits);

    gates_.profile().Reset();
    const auto want = Decrypt(RunProgram(p, eval_, inputs));
    ASSERT_EQ(gates_.profile().bootstrap_count(), expected_bootstraps);

    Executor executor;
    for (int32_t threads : {1, 2, 8}) {
        gates_.profile().Reset();
        EXPECT_EQ(Decrypt(executor.Run(p, eval_, inputs, threads)), want)
            << "executor threads=" << threads;
        // Concurrent accounting is exact, not approximate: every path
        // reports the same bootstrap total.
        EXPECT_EQ(gates_.profile().bootstrap_count(), expected_bootstraps)
            << "executor threads=" << threads;

        gates_.profile().Reset();
        EXPECT_EQ(Decrypt(RunProgramThreaded(p, eval_, inputs, threads)),
                  want)
            << "wave threads=" << threads;
        EXPECT_EQ(gates_.profile().bootstrap_count(), expected_bootstraps)
            << "wave threads=" << threads;
    }

    uint64_t decoded = 0;
    for (size_t i = 0; i < 8; ++i)
        if (want[i]) decoded |= UINT64_C(1) << i;
    EXPECT_EQ(decoded, (161u + 94u) % 256);
}

TEST_F(EncryptedExecutorTest, SingleThreadBypassIsBitIdentical) {
    // num_threads == 1 must skip scheduling and produce the exact same
    // ciphertexts as the sequential interpreter, not just the same
    // decryptions.
    const auto p = AdderProgram();
    std::vector<bool> bits(16);
    for (size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 7) % 3 == 0;
    const auto inputs = Encrypt(bits);

    const auto sequential = RunProgram(p, eval_, inputs);
    Executor executor;
    const auto bypass = executor.Run(p, eval_, inputs, 1);
    ASSERT_EQ(bypass.size(), sequential.size());
    for (size_t i = 0; i < bypass.size(); ++i) {
        EXPECT_EQ(bypass[i].a, sequential[i].a) << i;
        EXPECT_EQ(bypass[i].b, sequential[i].b) << i;
    }
}

}  // namespace
}  // namespace pytfhe::backend
