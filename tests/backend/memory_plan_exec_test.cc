/**
 * @file
 * Memory-planned execution equivalence: a planned program is bit-exact
 * with its unplanned form on every backend — sequential, wave-barrier,
 * dependency-counting (1 and 4 threads), batched dispatch (B=4/8), and
 * the serving runtime under fault-injected retries — for both the
 * plaintext plane and the arena-backed TFHE plane. Plus the serving-side
 * arena contracts: the per-job byte budget (ArenaBudgetError at Submit)
 * and retry reuse of the job's arena (no reallocation, stable slab).
 * Labeled `opt` + `concurrency`: runs in the TSan job too.
 */
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "backend/arena.h"
#include "backend/execute.h"
#include "backend/fault.h"
#include "backend/serving.h"
#include "pasm/assembler.h"
#include "pasm/memory_plan.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t =
            static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(n.AddGate(t, pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

/** The program plus its two planned forms (level-safe and tight). */
struct Variants {
    pasm::Program unplanned;
    pasm::Program level_safe;
    pasm::Program tight;
};

Variants Plan(const Netlist& n) {
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    pasm::MemoryPlanOptions tight_opts;
    tight_opts.level_safe = false;
    auto level_safe = p->WithPlan(pasm::ComputeMemoryPlan(*p));
    auto tight = p->WithPlan(pasm::ComputeMemoryPlan(*p, tight_opts));
    EXPECT_TRUE(level_safe.has_value());
    EXPECT_TRUE(tight.has_value());
    return Variants{std::move(*p), std::move(*level_safe),
                    std::move(*tight)};
}

/** Every dispatcher configuration a plan must survive. */
std::vector<ExecOptions> AllConfigs() {
    std::vector<ExecOptions> configs;
    ExecOptions seq;
    configs.push_back(seq);
    ExecOptions wave;
    wave.mode = ExecMode::kWaveBarrier;
    wave.num_threads = 4;
    configs.push_back(wave);
    for (const int32_t threads : {1, 4}) {
        for (const int32_t batch : {1, 4, 8}) {
            ExecOptions dep;
            dep.mode = ExecMode::kDependencyCounting;
            dep.num_threads = threads;
            dep.batch_size = batch;
            configs.push_back(dep);
        }
    }
    return configs;
}

class PlannedEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannedEquivalenceTest, AllBackendsMatchUnplannedExhaustively) {
    const Netlist n = RandomNetlist(GetParam(), 5, 80);
    const Variants v = Plan(n);
    PlainEvaluator eval;
    // Exhaustive over all 32 input vectors: planned forms must reproduce
    // the unplanned sequential reference bit for bit, on every path.
    for (uint32_t bits = 0; bits < 32; ++bits) {
        std::vector<bool> in(5);
        for (size_t i = 0; i < in.size(); ++i) in[i] = (bits >> i) & 1;
        const auto want = RunProgram(v.unplanned, eval, in);
        ASSERT_EQ(want, n.EvaluatePlain(in));
        for (const ExecOptions& o : AllConfigs()) {
            EXPECT_EQ(Execute(v.level_safe, eval, in, o), want)
                << "level-safe plan, threads=" << o.num_threads
                << " batch=" << o.batch_size << " bits=" << bits;
            EXPECT_EQ(Execute(v.tight, eval, in, o), want)
                << "tight plan, threads=" << o.num_threads
                << " batch=" << o.batch_size << " bits=" << bits;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannedEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 7));

TEST(PlannedServing, FaultInjectedRetriesStayBitExact) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 4;
    options.max_active_jobs = 4;
    FaultPlan fplan;
    fplan.fault_every_nth_job = 3;    // A third of jobs fault...
    fplan.transient_clears_after = 1; // ...transiently, attempt 0 only.
    FaultInjector inj(fplan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const Netlist n = RandomNetlist(0xC0FFEE, 6, 120);
    const Variants v = Plan(n);
    const auto program =
        std::make_shared<const pasm::Program>(v.level_safe);

    std::mt19937_64 rng(5);
    constexpr int kJobs = 12;
    std::vector<std::vector<bool>> inputs;
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    for (int i = 0; i < kJobs; ++i) {
        std::vector<bool> in(program->NumInputs());
        for (size_t j = 0; j < in.size(); ++j) in[j] = rng() & 1;
        inputs.push_back(in);
        jobs.push_back(serving.Submit(program, eval, in));
    }
    for (int i = 0; i < kJobs; ++i) {
        EXPECT_EQ(jobs[i]->Wait(), JobStatus::kDone) << i;
        EXPECT_EQ(jobs[i]->Outputs(),
                  RunProgram(v.unplanned, eval, inputs[i]))
            << i;
    }
    EXPECT_GE(serving.stats().job_retries,
              static_cast<uint64_t>(kJobs / 3));
    EXPECT_EQ(serving.stats().jobs_failed, 0u);
}

TEST(PlannedServing, ArenaBudgetAdmitsPlannedRejectsUnplanned) {
    // Chain: unplanned plane needs one slot per value, planned a handful.
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId cur = a;
    for (int i = 0; i < 64; ++i) cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    const Variants v = Plan(n);

    PlainEvaluator eval;
    const std::vector<bool> in{true};
    const size_t planned_need =
        ValuePlane<PlainEvaluator>::RequiredBytes(v.level_safe, in);
    const size_t unplanned_need =
        ValuePlane<PlainEvaluator>::RequiredBytes(v.unplanned, in);
    ASSERT_LT(planned_need * 4, unplanned_need);

    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    options.max_job_arena_bytes = planned_need;  // Tightest passing budget.
    ServingExecutor<PlainEvaluator> serving(executor, options);

    auto ok = serving.Submit(
        std::make_shared<const pasm::Program>(v.level_safe), eval, in);
    EXPECT_EQ(ok->Wait(), JobStatus::kDone);

    try {
        serving.Submit(std::make_shared<const pasm::Program>(v.unplanned),
                       eval, in);
        FAIL() << "expected ArenaBudgetError";
    } catch (const ArenaBudgetError& e) {
        EXPECT_EQ(e.required_bytes(), unplanned_need);
        EXPECT_EQ(e.budget_bytes(), planned_need);
    }
    // The rejected submission left no job behind.
    EXPECT_EQ(serving.stats().jobs_completed, 1u);
}

/** Full encrypted execution fixture (toy parameters). */
class PlannedTfheTest : public ::testing::Test {
  protected:
    PlannedTfheTest()
        : rng_(91),
          secret_(tfhe::ToyParams(), rng_),
          gates_(secret_, rng_),
          eval_(gates_) {}

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> out;
        for (bool b : bits) out.push_back(secret_.Encrypt(b, rng_));
        return out;
    }

    std::vector<bool> Decrypt(const std::vector<tfhe::LweSample>& samples) {
        std::vector<bool> out;
        for (const auto& s : samples) out.push_back(secret_.Decrypt(s));
        return out;
    }

    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    tfhe::GateEvaluator gates_;
    TfheEvaluator eval_;
};

TEST_F(PlannedTfheTest, ArenaPlaneMatchesPlainOnEveryBackend) {
    const Netlist n = RandomNetlist(4242, 4, 36);
    const Variants v = Plan(n);
    std::mt19937_64 prng(17);
    std::vector<bool> in(4);
    for (size_t i = 0; i < in.size(); ++i) in[i] = prng() & 1;
    const auto want = n.EvaluatePlain(in);

    for (const ExecOptions& o : AllConfigs()) {
        EXPECT_EQ(Decrypt(Execute(v.level_safe, eval_, Encrypt(in), o)),
                  want)
            << "level-safe plan, threads=" << o.num_threads
            << " batch=" << o.batch_size;
    }
    // The tight plan permits in-place gates; cover it on the paths that
    // honor it (sequential + dependency counting with anti-edges).
    ExecOptions seq;
    EXPECT_EQ(Decrypt(Execute(v.tight, eval_, Encrypt(in), seq)), want);
    ExecOptions dep;
    dep.mode = ExecMode::kDependencyCounting;
    dep.num_threads = 4;
    dep.batch_size = 4;
    EXPECT_EQ(Decrypt(Execute(v.tight, eval_, Encrypt(in), dep)), want);
}

TEST_F(PlannedTfheTest, PlaneResetReusesTheSlabAcrossRetries) {
    // The serving retry contract: Reset on a warm plane must keep the
    // arena slab (same base address, same capacity) — a retry allocates
    // nothing and runs in the memory the job already owns.
    const Netlist n = RandomNetlist(77, 3, 20);
    const Variants v = Plan(n);
    const auto inputs = Encrypt({true, false, true});

    ValuePlane<TfheEvaluator> plane;
    plane.Reset(v.level_safe, inputs);
    const uint64_t first_gate = v.level_safe.FirstGateIndex();
    const tfhe::Torus32* slab0 = plane.BatchItemFor(v.level_safe,
                                                    first_gate).out.a;
    const size_t bytes0 = plane.PlaneBytes();
    EXPECT_EQ(bytes0, ValuePlane<TfheEvaluator>::RequiredBytes(
                          v.level_safe, inputs));

    tfhe::BootstrapScratch scratch;
    for (uint64_t idx = first_gate;
         idx < first_gate + v.level_safe.NumGates(); ++idx)
        plane.Apply(eval_, v.level_safe, idx, scratch);
    const auto run1 = Decrypt(plane.Harvest(v.level_safe));

    plane.Reset(v.level_safe, inputs);  // The retry path.
    EXPECT_EQ(plane.BatchItemFor(v.level_safe, first_gate).out.a, slab0);
    EXPECT_EQ(plane.PlaneBytes(), bytes0);
    for (uint64_t idx = first_gate;
         idx < first_gate + v.level_safe.NumGates(); ++idx)
        plane.Apply(eval_, v.level_safe, idx, scratch);
    EXPECT_EQ(Decrypt(plane.Harvest(v.level_safe)), run1);
    EXPECT_EQ(run1, n.EvaluatePlain({true, false, true}));
}

TEST_F(PlannedTfheTest, ServingRetriesPlannedEncryptedJobBitExact) {
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    FaultPlan fplan;
    fplan.fault_every_nth_job = 1;    // Every job faults at gate 0...
    fplan.transient_clears_after = 1; // ...on attempt 0 only.
    FaultInjector inj(fplan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 2;
    options.retry.initial_backoff_seconds = 0.0;
    ServingExecutor<TfheEvaluator> serving(executor, options);

    const Netlist n = RandomNetlist(31337, 3, 16);
    const Variants v = Plan(n);
    const std::vector<bool> in{true, true, false};
    auto job = serving.Submit(
        std::make_shared<const pasm::Program>(v.level_safe), eval_,
        Encrypt(in));
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    EXPECT_EQ(job->Metrics().attempts, 2u);
    EXPECT_EQ(Decrypt(job->Outputs()), n.EvaluatePlain(in));
}

}  // namespace
}  // namespace pytfhe::backend
