/**
 * @file
 * Checkpoint/resume correctness: wire-record roundtrip and fingerprint
 * guard, a per-byte corruption + truncation sweep over the framed record
 * (a damaged checkpoint is always discarded, never restored), resume
 * bookkeeping (BuildResumeState), policy knobs, and the acceptance
 * matrix — a run killed mid-flight resumes bit-exactly on every backend
 * x thread count x batch size x memory-plan combination. Labeled
 * `concurrency` + `robustness`: run under -DPYTFHE_SANITIZE=thread.
 */
#include "backend/checkpoint.h"

#include <gtest/gtest.h>

#include <random>

#include "backend/execute.h"
#include "backend/executor.h"
#include "backend/fault.h"
#include "backend/interpreter.h"
#include "pasm/assembler.h"
#include "pasm/memory_plan.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t =
            static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(n.AddGate(t, pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

pasm::Program ChainProgram(int32_t length) {
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId cur = a;
    for (int32_t i = 0; i < length; ++i)
        cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::move(*p);
}

std::vector<bool> RandomBits(uint64_t seed, size_t count) {
    std::mt19937_64 rng(seed);
    std::vector<bool> bits(count);
    for (size_t i = 0; i < count; ++i) bits[i] = rng() & 1;
    return bits;
}

/**
 * Runs `program` sequentially with checkpointing on and a transient
 * fault injected at gate `fault_ordinal` of attempt 0, leaving the last
 * pre-fault snapshot in `store`. The throw is part of the contract.
 */
void CaptureViaFaultedRun(const pasm::Program& program,
                          const std::vector<bool>& inputs,
                          uint64_t fault_ordinal, JobCheckpoint* store,
                          CheckpointRunStats* stats = nullptr) {
    PlainEvaluator eval;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;
    plan.fault_gate_ordinal = fault_ordinal;
    plan.transient_clears_after = 1;
    FaultInjector injector(plan);
    CheckpointPolicy policy;
    policy.every_n_levels = 1;
    FaultHook hook;
    hook.injector = &injector;
    EXPECT_THROW(RunProgramCheckpointed(program, eval, inputs, policy,
                                        store, {}, hook, stats),
                 GateExecutionError);
}

// ------------------------------------------------------------- wire record

TEST(CheckpointRecord, FaultedRunLeavesResumableSnapshot) {
    const pasm::Program program = ChainProgram(32);
    const auto inputs = RandomBits(1, program.NumInputs());
    PlainEvaluator eval;
    const auto want = RunProgram(program, eval, inputs);

    JobCheckpoint store;
    CheckpointRunStats capture_stats;
    CaptureViaFaultedRun(program, inputs, /*fault_ordinal=*/24, &store,
                         &capture_stats);
    ASSERT_FALSE(store.Empty());
    EXPECT_GT(capture_stats.checkpoints_taken, 0u);
    EXPECT_GT(store.gates_completed, 0u);
    EXPECT_LE(store.gates_completed, 24u);

    // The record decodes: ordinal cut, mirrored progress counter, live
    // values named by in-range instruction indices.
    const uint64_t fp = ProgramFingerprint(program);
    const uint64_t end =
        program.FirstGateIndex() + program.NumGates();
    std::string error;
    auto decoded = DecodeCheckpoint<bool>(store.record, fp, end, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(decoded->cut, CheckpointCut::kOrdinal);
    EXPECT_EQ(decoded->gates_completed, store.gates_completed);
    EXPECT_FALSE(decoded->values.empty());
    for (const auto& [idx, value] : decoded->values) {
        EXPECT_GE(idx, 1u);
        EXPECT_LT(idx, end);
    }

    // Resuming finishes the job bit-exactly, skipping the done prefix.
    CheckpointRunStats resume_stats;
    CheckpointPolicy off;
    EXPECT_EQ(RunProgramCheckpointed(program, eval, inputs, off, &store,
                                     {}, {}, &resume_stats),
              want);
    EXPECT_EQ(resume_stats.resumes, 1u);
    EXPECT_EQ(resume_stats.gates_resumed, decoded->gates_completed);
    EXPECT_EQ(resume_stats.corrupt_discarded, 0u);
}

TEST(CheckpointRecord, FingerprintGuardRejectsForeignProgram) {
    const pasm::Program program = ChainProgram(16);
    const pasm::Program other = ChainProgram(17);
    const auto inputs = RandomBits(2, program.NumInputs());
    JobCheckpoint store;
    CaptureViaFaultedRun(program, inputs, /*fault_ordinal=*/12, &store);
    ASSERT_FALSE(store.Empty());

    EXPECT_NE(ProgramFingerprint(program), ProgramFingerprint(other));
    const uint64_t end = other.FirstGateIndex() + other.NumGates();
    std::string error;
    EXPECT_FALSE(DecodeCheckpoint<bool>(store.record,
                                        ProgramFingerprint(other), end,
                                        &error)
                     .has_value());
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(CheckpointRecord, EveryByteCorruptionAndTruncationIsDetected) {
    const pasm::Program program = ChainProgram(12);
    const auto inputs = RandomBits(3, program.NumInputs());
    JobCheckpoint store;
    CaptureViaFaultedRun(program, inputs, /*fault_ordinal=*/10, &store);
    ASSERT_FALSE(store.Empty());

    const uint64_t fp = ProgramFingerprint(program);
    const uint64_t end = program.FirstGateIndex() + program.NumGates();
    std::string base_error;
    ASSERT_TRUE(
        DecodeCheckpoint<bool>(store.record, fp, end, &base_error)
            .has_value())
        << base_error;

    // Flip one bit of every byte: body flips are caught by the CRC32C,
    // header flips by frame validation, and a v3->v2 version flip (which
    // drops the CRC) by the in-body fingerprint. Never a wrong resume.
    for (size_t pos = 0; pos < store.record.size(); ++pos) {
        for (unsigned char mask : {0x01, 0xFF}) {
            std::string mutated = store.record;
            mutated[pos] = static_cast<char>(
                static_cast<unsigned char>(mutated[pos]) ^ mask);
            std::string error;
            EXPECT_FALSE(
                DecodeCheckpoint<bool>(mutated, fp, end, &error)
                    .has_value())
                << "byte " << pos << " mask " << int(mask);
            EXPECT_FALSE(error.empty())
                << "byte " << pos << " mask " << int(mask);
        }
    }
    // Every strict prefix fails too.
    for (size_t cut = 0; cut < store.record.size(); ++cut) {
        std::string error;
        EXPECT_FALSE(DecodeCheckpoint<bool>(store.record.substr(0, cut),
                                            fp, end, &error)
                         .has_value())
            << "cut " << cut;
    }
}

TEST(CheckpointRecord, CorruptStoreFallsBackToFullRunOnEveryPath) {
    const pasm::Program program = ChainProgram(20);
    const auto inputs = RandomBits(4, program.NumInputs());
    PlainEvaluator eval;
    const auto want = RunProgram(program, eval, inputs);
    JobCheckpoint pristine;
    CaptureViaFaultedRun(program, inputs, /*fault_ordinal=*/16, &pristine);
    ASSERT_FALSE(pristine.Empty());

    for (const ExecMode mode :
         {ExecMode::kSequential, ExecMode::kDependencyCounting}) {
        JobCheckpoint corrupt = pristine;
        corrupt.record[corrupt.record.size() / 2] ^= 0x20;
        CheckpointRunStats stats;
        ExecOptions o;
        o.mode = mode;
        o.num_threads = mode == ExecMode::kSequential ? 1 : 4;
        o.checkpoint_store = &corrupt;
        o.checkpoint_stats = &stats;
        EXPECT_EQ(Execute(program, eval, inputs, o), want);
        EXPECT_EQ(stats.resumes, 0u);
        EXPECT_EQ(stats.corrupt_discarded, 1u);
        EXPECT_TRUE(corrupt.Empty());  // Discarded, not retried.
    }
}

// ---------------------------------------------------------- resume state

TEST(ResumeStateTest, LevelCutBoundariesBracketTheSchedule) {
    auto p = pasm::Assemble(RandomNetlist(7, 5, 40));
    ASSERT_TRUE(p.has_value());
    const auto deps = p->BuildGateDependencies();

    // Boundary 1: no level is below the cut, so nothing is done and the
    // ready set is exactly the root gates.
    const ResumeState fresh =
        BuildResumeState(*p, deps, CheckpointCut::kLevel, 1);
    EXPECT_EQ(fresh.gates_done, 0u);
    EXPECT_EQ(fresh.remaining, p->NumGates());
    EXPECT_EQ(fresh.ready, deps.RootGates());

    const std::vector<uint64_t> levels = p->ValueLevels();
    uint64_t max_level = 0;
    for (uint64_t l : levels) max_level = std::max(max_level, l);
    for (uint64_t boundary = 1; boundary <= max_level + 1; ++boundary) {
        const ResumeState s =
            BuildResumeState(*p, deps, CheckpointCut::kLevel, boundary);
        EXPECT_EQ(s.gates_done + s.remaining, p->NumGates()) << boundary;
        // Done gates are exactly those below the boundary.
        uint64_t below = 0;
        for (uint64_t g = 0; g < p->NumGates(); ++g)
            if (levels[deps.first_gate + g] < boundary) ++below;
        EXPECT_EQ(s.gates_done, below) << boundary;
        // Every ready gate sits past the cut with no unfinished preds.
        for (uint64_t idx : s.ready) {
            EXPECT_GE(levels[idx], boundary) << boundary;
            EXPECT_EQ(s.pending[idx - deps.first_gate], 0u) << boundary;
            EXPECT_FALSE(s.done[idx - deps.first_gate]) << boundary;
        }
    }
    // Past the deepest level everything is done.
    const ResumeState all =
        BuildResumeState(*p, deps, CheckpointCut::kLevel, max_level + 1);
    EXPECT_EQ(all.remaining, 0u);
}

TEST(ResumeStateTest, OrdinalCutMatchesSequentialPrefix) {
    auto p = pasm::Assemble(RandomNetlist(8, 4, 30));
    ASSERT_TRUE(p.has_value());
    const auto deps = p->BuildGateDependencies();
    const uint64_t end = p->FirstGateIndex() + p->NumGates();
    for (uint64_t last_done = p->FirstGateIndex() - 1; last_done < end;
         ++last_done) {
        const ResumeState s =
            BuildResumeState(*p, deps, CheckpointCut::kOrdinal, last_done);
        const uint64_t done =
            last_done < p->FirstGateIndex()
                ? 0
                : last_done - p->FirstGateIndex() + 1;
        EXPECT_EQ(s.gates_done, done) << last_done;
        EXPECT_EQ(s.remaining, p->NumGates() - done) << last_done;
        for (uint64_t idx : s.ready) EXPECT_GT(idx, last_done);
    }
}

// ------------------------------------------------------------ policy knobs

TEST(CheckpointPolicyTest, MaxBytesVetoesOversizedRecords) {
    const pasm::Program program = ChainProgram(16);
    const auto inputs = RandomBits(5, program.NumInputs());
    PlainEvaluator eval;
    JobCheckpoint store;
    CheckpointRunStats stats;
    CheckpointPolicy policy;
    policy.every_n_levels = 1;
    policy.max_bytes = 1;  // Every record is bigger than this.
    RunProgramCheckpointed(program, eval, inputs, policy, &store, {}, {},
                           &stats);
    EXPECT_EQ(stats.checkpoints_taken, 0u);
    EXPECT_TRUE(store.Empty());
}

TEST(CheckpointPolicyTest, MinGatesBetweenThrottlesCadence) {
    const pasm::Program program = ChainProgram(32);
    const auto inputs = RandomBits(6, program.NumInputs());
    PlainEvaluator eval;
    JobCheckpoint dense_store, sparse_store;
    CheckpointRunStats dense, sparse;
    CheckpointPolicy policy;
    policy.every_n_levels = 1;
    RunProgramCheckpointed(program, eval, inputs, policy, &dense_store, {},
                           {}, &dense);
    policy.min_gates_between = 8;
    RunProgramCheckpointed(program, eval, inputs, policy, &sparse_store,
                           {}, {}, &sparse);
    EXPECT_GT(dense.checkpoints_taken, sparse.checkpoints_taken);
    EXPECT_GT(sparse.checkpoints_taken, 0u);
}

// ------------------------------------------------- acceptance: the matrix

/** Resume configurations: every backend x threads x batch. */
std::vector<ExecOptions> ResumeConfigs() {
    std::vector<ExecOptions> configs;
    ExecOptions seq;
    configs.push_back(seq);
    ExecOptions wave;
    wave.mode = ExecMode::kWaveBarrier;
    wave.num_threads = 4;
    configs.push_back(wave);
    for (const int32_t threads : {1, 4}) {
        for (const int32_t batch : {1, 4}) {
            ExecOptions dep;
            dep.mode = ExecMode::kDependencyCounting;
            dep.num_threads = threads;
            dep.batch_size = batch;
            configs.push_back(dep);
        }
    }
    return configs;
}

class KillAndResumeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KillAndResumeTest, EveryBackendThreadsBatchPlanIsBitExact) {
    const Netlist n = RandomNetlist(GetParam(), 5, 60);
    auto unplanned = pasm::Assemble(n);
    ASSERT_TRUE(unplanned.has_value());
    pasm::MemoryPlanOptions tight_opts;
    tight_opts.level_safe = false;
    auto level_safe =
        unplanned->WithPlan(pasm::ComputeMemoryPlan(*unplanned));
    auto tight = unplanned->WithPlan(
        pasm::ComputeMemoryPlan(*unplanned, tight_opts));
    ASSERT_TRUE(level_safe.has_value());
    ASSERT_TRUE(tight.has_value());

    PlainEvaluator eval;
    const auto inputs = RandomBits(900 + GetParam(),
                                   unplanned->NumInputs());
    const auto want = RunProgram(*unplanned, eval, inputs);

    const pasm::Program* variants[] = {&*unplanned, &*level_safe, &*tight};
    const char* names[] = {"unplanned", "level-safe", "tight"};
    for (int v = 0; v < 3; ++v) {
        const pasm::Program& program = *variants[v];
        // Simulate a kill at the three-quarter mark of the sequential
        // order: execute exactly that prefix and snapshot the live set at
        // the ordinal cut (the cut kind valid to resume on every backend
        // and plan). Faulted-run capture is exercised elsewhere; cutting
        // by hand pins the boundary for every seed and variant.
        const uint64_t cut_idx =
            program.FirstGateIndex() + program.NumGates() * 3 / 4;
        PlainEvaluator capture_eval;
        ValuePlane<PlainEvaluator> plane;
        plane.Reset(program, inputs);
        typename detail::WorkerScratchOf<PlainEvaluator>::type scratch{};
        for (uint64_t idx = program.FirstGateIndex(); idx <= cut_idx; ++idx)
            plane.Apply(capture_eval, program, idx, scratch);
        const pasm::ValueLiveness liveness =
            pasm::ComputeValueLiveness(program);
        JobCheckpoint store;
        store.record = EncodeCheckpoint(
            program, plane, pasm::LiveValuesAtOrdinalCut(liveness, cut_idx),
            CheckpointCut::kOrdinal, cut_idx,
            cut_idx - program.FirstGateIndex() + 1);
        store.gates_completed = cut_idx - program.FirstGateIndex() + 1;
        ASSERT_FALSE(store.Empty()) << names[v];
        for (const ExecOptions& config : ResumeConfigs()) {
            JobCheckpoint copy = store;
            CheckpointRunStats stats;
            ExecOptions o = config;
            o.checkpoint_store = &copy;
            o.checkpoint_stats = &stats;
            EXPECT_EQ(Execute(program, eval, inputs, o), want)
                << names[v] << " mode=" << int(o.mode)
                << " threads=" << o.num_threads
                << " batch=" << o.batch_size;
            EXPECT_EQ(stats.resumes, 1u)
                << names[v] << " mode=" << int(o.mode)
                << " threads=" << o.num_threads
                << " batch=" << o.batch_size;
            EXPECT_GT(stats.gates_resumed, 0u) << names[v];
            EXPECT_EQ(stats.corrupt_discarded, 0u) << names[v];
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KillAndResumeTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace pytfhe::backend
