/**
 * @file
 * Batch-aware dispatch tests: ReadyQueue::PopBatch semantics, executor
 * batch-vs-scalar equivalence (plain and encrypted, with exact profile
 * accounting), Execute batch_size plumbing and validation, serving-layer
 * batched scheduling, and fault isolation inside a fused batch (a faulted
 * gate fails only its own job). Labeled `concurrency` + `robustness`:
 * run under -DPYTFHE_SANITIZE=thread to prove race freedom.
 */
#include <gtest/gtest.h>

#include <random>

#include "backend/execute.h"
#include "backend/executor.h"
#include "backend/fault.h"
#include "backend/serving.h"
#include "hdl/word_ops.h"
#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t =
            static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(n.AddGate(t, pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

/** An 8-bit ripple-carry adder over two encrypted operands. */
pasm::Program AdderProgram() {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    auto p = pasm::Assemble(b.netlist());
    EXPECT_TRUE(p.has_value());
    return *p;
}

/** `width` independent AND gates XOR-reduced to one output: the ANDs all
 *  become ready simultaneously, so batch dispatch fuses them. */
std::shared_ptr<const pasm::Program> WideProgram(int32_t width) {
    Netlist n;
    std::vector<NodeId> gates;
    for (int32_t i = 0; i < width; ++i) {
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        gates.push_back(n.AddGate(GateType::kAnd, a, b));
    }
    NodeId acc = gates[0];
    for (size_t i = 1; i < gates.size(); ++i)
        acc = n.AddGate(GateType::kXor, acc, gates[i]);
    n.AddOutput(acc);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

/** A serial NAND chain: at most one gate ready at a time, so batched
 *  picks from this job always degenerate to singletons. */
std::shared_ptr<const pasm::Program> ChainForServing() {
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId cur = a;
    for (int32_t i = 0; i < 20; ++i)
        cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

std::vector<bool> RandomBits(uint64_t seed, size_t count) {
    std::mt19937_64 rng(seed);
    std::vector<bool> bits(count);
    for (size_t i = 0; i < count; ++i) bits[i] = rng() & 1;
    return bits;
}

TEST(ReadyQueue, PopBatchServesFifoWhilePopServesLifo) {
    detail::ReadyQueue q({1, 2, 3, 4, 5}, 5);
    std::vector<uint64_t> batch;
    ASSERT_TRUE(q.PopBatch(&batch, 3));
    EXPECT_EQ(batch, (std::vector<uint64_t>{1, 2, 3}));
    // Single-gate Pop keeps its stack discipline on the remainder.
    uint64_t idx = 0;
    ASSERT_TRUE(q.Pop(&idx));
    EXPECT_EQ(idx, 5u);
    // A batch larger than the backlog drains what exists.
    ASSERT_TRUE(q.PopBatch(&batch, 8));
    EXPECT_EQ(batch, (std::vector<uint64_t>{4}));
    for (int i = 0; i < 5; ++i) q.MarkDone();
    EXPECT_FALSE(q.PopBatch(&batch, 4));
    EXPECT_FALSE(q.Pop(&idx));
}

TEST(ReadyQueue, PopBatchOfOneMatchesQueueOrderSemantics) {
    // batch_size 1 uses the scalar worker (and LIFO Pop); this pins the
    // PopBatch contract itself for max_batch == 1: FIFO, one at a time.
    detail::ReadyQueue q({7, 8}, 2);
    std::vector<uint64_t> batch;
    ASSERT_TRUE(q.PopBatch(&batch, 1));
    EXPECT_EQ(batch, (std::vector<uint64_t>{7}));
    ASSERT_TRUE(q.PopBatch(&batch, 1));
    EXPECT_EQ(batch, (std::vector<uint64_t>{8}));
}

class BatchExecutorPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchExecutorPropertyTest, BatchedRunsMatchSequentialOnPlainBits) {
    // PlainEvaluator has no ApplyBatch: the batch worker must fall back to
    // gate-by-gate execution with identical results and bookkeeping.
    const Netlist n = RandomNetlist(GetParam() ^ 0xBA7C, 8, 300);
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    PlainEvaluator eval;
    Executor executor;
    std::mt19937_64 rng(GetParam());
    std::vector<bool> in(8);
    for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
    const auto want = RunProgram(*p, eval, in);
    for (int32_t threads : {1, 2, 8}) {
        for (int32_t batch : {2, 4, 8}) {
            EXPECT_EQ(executor.Run(*p, eval, in, threads, {}, {}, batch),
                      want)
                << "threads=" << threads << " batch=" << batch;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchExecutorPropertyTest,
                         ::testing::Range<uint64_t>(1, 6));

TEST(ExecuteBatch, ValidatesAndRoutesBatchSize) {
    const auto p = AdderProgram();
    PlainEvaluator eval;
    const std::vector<bool> in(16, true);
    const auto want = RunProgram(p, eval, in);

    ExecOptions options;
    options.batch_size = 0;
    EXPECT_THROW((void)Execute(p, eval, in, options), std::invalid_argument);
    options.batch_size = -3;
    EXPECT_THROW((void)Execute(p, eval, in, options), std::invalid_argument);

    options.batch_size = 4;
    options.mode = ExecMode::kWaveBarrier;
    options.num_threads = 2;
    EXPECT_THROW((void)Execute(p, eval, in, options), std::invalid_argument);

    // kAuto with batch_size > 1 routes through the dependency-counting
    // executor even single-threaded, and stays equivalent.
    options.mode = ExecMode::kAuto;
    options.num_threads = 1;
    EXPECT_EQ(Execute(p, eval, in, options), want);
    options.num_threads = 4;
    EXPECT_EQ(Execute(p, eval, in, options), want);
}

TEST(ExecutorBatch, FaultInsideBatchFailsRunWithPreciseGateAttribution) {
    // A permanent fault at gate 0 inside a fused batch must surface as a
    // GateExecutionError naming gate 0, not the whole batch.
    const auto program = WideProgram(8);
    PlainEvaluator eval;
    Executor executor;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;  // Every job faults at gate 0.
    plan.permanent_fraction = 1.0;
    FaultInjector inj(plan);
    const auto in = RandomBits(5, program->NumInputs());
    try {
        (void)executor.Run(*program, eval, in, 2, {}, FaultHook{&inj, 0, 0},
                           /*batch_size=*/4);
        FAIL() << "expected GateExecutionError";
    } catch (const GateExecutionError& e) {
        EXPECT_EQ(e.gate_ordinal(), 0u);
        EXPECT_FALSE(e.transient());
    }
    // The pool survives and the next batched run (no faults) completes.
    EXPECT_EQ(executor.Run(*program, eval, in, 2, {}, {}, 4),
              RunProgram(*program, eval, in));
}

/** Encrypted batched execution must be bit-identical to sequential. */
class EncryptedBatchTest : public ::testing::Test {
  protected:
    EncryptedBatchTest()
        : rng_(2025),
          secret_(tfhe::ToyParams(), rng_),
          gates_(secret_, rng_),
          eval_(gates_) {}

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> out;
        for (bool b : bits) out.push_back(secret_.Encrypt(b, rng_));
        return out;
    }

    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    tfhe::GateEvaluator gates_;
    TfheEvaluator eval_;
};

TEST_F(EncryptedBatchTest, BatchedAdderBitIdenticalWithExactProfile) {
    const auto p = AdderProgram();
    std::vector<bool> bits;
    for (uint64_t v : {203u, 77u})
        for (int i = 0; i < 8; ++i) bits.push_back((v >> i) & 1);
    const auto inputs = Encrypt(bits);

    gates_.profile().Reset();
    const auto want = RunProgram(p, eval_, inputs);
    const uint64_t expected_bootstraps = gates_.profile().bootstrap_count();
    ASSERT_GT(expected_bootstraps, 0u);

    Executor executor;
    for (int32_t threads : {1, 2}) {
        for (int32_t batch : {2, 4, 8}) {
            gates_.profile().Reset();
            const auto got =
                executor.Run(p, eval_, inputs, threads, {}, {}, batch);
            ASSERT_EQ(got.size(), want.size());
            for (size_t i = 0; i < got.size(); ++i) {
                EXPECT_EQ(got[i].a, want[i].a)
                    << "i=" << i << " threads=" << threads
                    << " batch=" << batch;
                EXPECT_EQ(got[i].b, want[i].b) << i;
            }
            // Fused kernel calls account every gate exactly once.
            EXPECT_EQ(gates_.profile().bootstrap_count(),
                      expected_bootstraps)
                << "threads=" << threads << " batch=" << batch;
        }
    }
}

TEST(ServingBatch, BatchedJobsCompleteBitExact) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 3;
    options.batch_size = 4;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto wide = WideProgram(16);
    const auto chain = ChainForServing();
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    std::vector<std::vector<bool>> inputs;
    for (uint64_t j = 0; j < 12; ++j) {
        const auto& program = (j % 2 == 0) ? wide : chain;
        inputs.push_back(RandomBits(100 + j, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs.back()));
    }
    for (uint64_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(jobs[j]->Wait(), JobStatus::kDone) << j;
        const auto& program = (j % 2 == 0) ? wide : chain;
        EXPECT_EQ(jobs[j]->Outputs(), RunProgram(*program, eval, inputs[j]))
            << j;
    }
    EXPECT_EQ(serving.stats().jobs_completed, jobs.size());
    EXPECT_EQ(serving.stats().jobs_failed, 0u);
}

TEST(ServingBatch, FaultInsideBatchFailsOnlyItsJob) {
    // Two jobs share the worker pool with batch_size 4: the injected
    // permanent fault at gate 0 of job 1 must fail job 1 alone while the
    // other gates picked into the same batch window complete their jobs.
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    options.batch_size = 4;
    FaultPlan plan;
    plan.fault_every_nth_job = 2;  // Jobs 1, 3, 5, ... fault at gate 0.
    plan.permanent_fraction = 1.0;
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = WideProgram(12);
    const auto in0 = RandomBits(20, program->NumInputs());
    const auto in1 = RandomBits(21, program->NumInputs());
    const auto in2 = RandomBits(22, program->NumInputs());
    auto job0 = serving.Submit(program, eval, in0);
    auto job1 = serving.Submit(program, eval, in1);
    auto job2 = serving.Submit(program, eval, in2);

    EXPECT_EQ(job0->Wait(), JobStatus::kDone);
    EXPECT_EQ(job1->Wait(), JobStatus::kFailed);
    EXPECT_EQ(job2->Wait(), JobStatus::kDone);
    EXPECT_EQ(job0->Outputs(), RunProgram(*program, eval, in0));
    EXPECT_EQ(job2->Outputs(), RunProgram(*program, eval, in2));
    const auto error = job1->Error();
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->gate_ordinal(), 0u);
    EXPECT_FALSE(error->transient());
    EXPECT_EQ(serving.stats().jobs_failed, 1u);
    EXPECT_EQ(serving.stats().jobs_completed, 2u);
}

TEST(ServingBatch, TransientFaultInsideBatchRetriesToBitExactCompletion) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    options.batch_size = 4;
    options.retry.max_attempts = 3;
    FaultPlan plan;
    plan.fault_every_nth_job = 2;  // Transient by default: retry succeeds.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = WideProgram(10);
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    std::vector<std::vector<bool>> inputs;
    for (uint64_t j = 0; j < 8; ++j) {
        inputs.push_back(RandomBits(40 + j, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs[j]));
    }
    for (uint64_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(jobs[j]->Wait(), JobStatus::kDone) << j;
        EXPECT_EQ(jobs[j]->Outputs(), RunProgram(*program, eval, inputs[j]))
            << j;
    }
    EXPECT_EQ(serving.stats().jobs_failed, 0u);
    EXPECT_GT(serving.stats().job_retries, 0u);
    EXPECT_GT(inj.counters().transient_faults, 0u);
}

}  // namespace
}  // namespace pytfhe::backend
