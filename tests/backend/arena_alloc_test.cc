/**
 * @file
 * Heap-allocation accounting for the arena execution core (counting
 * global allocator, own TU like tfhe/kernel_test.cc):
 *
 *  - zero per-gate allocations in steady state — running a planned
 *    k-gate chain and a planned 2k-gate chain costs the *same* number of
 *    allocations (the delta method: per-run overhead like the slab, the
 *    scratch, and the harvest is identical because the plans use the same
 *    slot count; gates must contribute nothing);
 *  - a warm ValuePlane re-Reset plus a full re-execution allocates
 *    exactly zero — the property the serving retry path relies on.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "backend/arena.h"
#include "backend/interpreter.h"
#include "pasm/assembler.h"
#include "pasm/memory_plan.h"

// ------------------------------------------------------- counting allocator

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace pytfhe::backend {
namespace {

uint64_t AllocCount() {
    return g_alloc_count.load(std::memory_order_relaxed);
}

pasm::Program PlannedChain(int32_t length) {
    circuit::Netlist n;
    const circuit::NodeId a = n.AddInput();
    circuit::NodeId cur = a;
    for (int32_t i = 0; i < length; ++i)
        cur = n.AddGate(circuit::GateType::kNand, cur, a);
    n.AddOutput(cur);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    auto planned = p->WithPlan(pasm::ComputeMemoryPlan(*p));
    EXPECT_TRUE(planned.has_value());
    return std::move(*planned);
}

class ArenaAllocTest : public ::testing::Test {
  protected:
    ArenaAllocTest()
        : rng_(71),
          secret_(tfhe::ToyParams(), rng_),
          gates_(secret_, rng_),
          eval_(gates_) {}

    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    tfhe::GateEvaluator gates_;
    TfheEvaluator eval_;
};

TEST_F(ArenaAllocTest, GateCountDoesNotMoveTheAllocationCount) {
    const pasm::Program half = PlannedChain(32);
    const pasm::Program full = PlannedChain(64);
    // The delta method needs identical per-run overhead: a chain's live
    // set is independent of its length, so both plans use the same slots.
    ASSERT_NE(half.Plan(), nullptr);
    ASSERT_NE(full.Plan(), nullptr);
    ASSERT_EQ(half.Plan()->num_slots, full.Plan()->num_slots);

    std::vector<tfhe::LweSample> inputs;
    inputs.push_back(secret_.Encrypt(true, rng_));

    // Warm every global cache (FFT plans) before measuring.
    (void)RunProgram(full, eval_, inputs);

    const uint64_t before_half = AllocCount();
    (void)RunProgram(half, eval_, inputs);
    const uint64_t half_allocs = AllocCount() - before_half;

    const uint64_t before_full = AllocCount();
    (void)RunProgram(full, eval_, inputs);
    const uint64_t full_allocs = AllocCount() - before_full;

    // 32 extra bootstrapped gates, zero extra allocations: every gate
    // evaluates arena-slot-to-arena-slot through warm scratch.
    EXPECT_EQ(full_allocs, half_allocs);
    // Sanity: the run itself is not somehow free (slab + scratch +
    // harvest are real one-time costs).
    EXPECT_GT(half_allocs, 0u);
}

TEST_F(ArenaAllocTest, WarmPlaneRetryAllocatesExactlyNothing) {
    const pasm::Program p = PlannedChain(24);
    std::vector<tfhe::LweSample> inputs;
    inputs.push_back(secret_.Encrypt(false, rng_));

    ValuePlane<TfheEvaluator> plane;
    tfhe::BootstrapScratch scratch;
    const uint64_t first_gate = p.FirstGateIndex();
    const uint64_t end_gate = first_gate + p.NumGates();

    // Attempt 0: allocates the slab and sizes the scratch.
    plane.Reset(p, inputs);
    for (uint64_t idx = first_gate; idx < end_gate; ++idx)
        plane.Apply(eval_, p, idx, scratch);

    // The retry: re-seed and re-execute in the memory the job owns.
    const uint64_t before = AllocCount();
    plane.Reset(p, inputs);
    for (uint64_t idx = first_gate; idx < end_gate; ++idx)
        plane.Apply(eval_, p, idx, scratch);
    EXPECT_EQ(AllocCount() - before, 0u);
}

}  // namespace
}  // namespace pytfhe::backend
