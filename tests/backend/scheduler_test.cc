#include "backend/scheduler.h"

#include <gtest/gtest.h>
#include <random>

#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

pasm::Program RandomProgram(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t = static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    n.AddOutput(pool.back());
    return *pasm::Assemble(n);
}

TEST(Scheduler, ChainIsFullySequential) {
    Netlist n;
    NodeId x = n.AddInput();
    NodeId y = n.AddInput();
    NodeId v = n.AddGate(GateType::kAnd, x, y);
    for (int i = 0; i < 9; ++i) v = n.AddGate(GateType::kXor, v, y);
    n.AddOutput(v);
    const Schedule s = ComputeSchedule(*pasm::Assemble(n));
    EXPECT_EQ(s.NumLevels(), 10u);
    EXPECT_EQ(s.MaxWidth(), 1u);
    EXPECT_EQ(s.TotalGates(), 10u);
}

TEST(Scheduler, IndependentGatesShareOneLevel) {
    Netlist n;
    NodeId x = n.AddInput();
    NodeId y = n.AddInput();
    for (int i = 0; i < 16; ++i)
        n.AddOutput(n.AddGate(static_cast<GateType>(1 + i % 10), x, y));
    const Schedule s = ComputeSchedule(*pasm::Assemble(n));
    EXPECT_EQ(s.NumLevels(), 1u);
    EXPECT_EQ(s.MaxWidth(), 16u);
}

TEST(Scheduler, EveryGateScheduledExactlyOnce) {
    const pasm::Program p = RandomProgram(5, 6, 200);
    const Schedule s = ComputeSchedule(p);
    EXPECT_EQ(s.TotalGates(), p.NumGates());
    std::vector<bool> seen(p.FirstGateIndex() + p.NumGates(), false);
    for (const auto& level : s.levels) {
        for (uint64_t idx : level) {
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
}

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, DependenciesAlwaysInEarlierLevels) {
    const pasm::Program p = RandomProgram(GetParam(), 5, 300);
    const Schedule s = ComputeSchedule(p);
    std::vector<int64_t> level_of(p.FirstGateIndex() + p.NumGates(), -1);
    for (size_t l = 0; l < s.levels.size(); ++l)
        for (uint64_t idx : s.levels[l])
            level_of[idx] = static_cast<int64_t>(l);
    for (size_t l = 0; l < s.levels.size(); ++l) {
        for (uint64_t idx : s.levels[l]) {
            const auto g = p.GateAt(idx);
            for (uint64_t in : {g.in0, g.in1}) {
                if (in >= p.FirstGateIndex())  // A gate, not an input.
                    EXPECT_LT(level_of[in], static_cast<int64_t>(l));
            }
        }
    }
}

TEST_P(SchedulerPropertyTest, FirstLevelDependsOnlyOnInputs) {
    const pasm::Program p = RandomProgram(GetParam() ^ 0xF00, 5, 300);
    const Schedule s = ComputeSchedule(p);
    ASSERT_FALSE(s.levels.empty());
    for (uint64_t idx : s.levels[0]) {
        const auto g = p.GateAt(idx);
        EXPECT_LT(g.in0, p.FirstGateIndex());
        EXPECT_LT(g.in1, p.FirstGateIndex());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace pytfhe::backend
