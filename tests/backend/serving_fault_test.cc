/**
 * @file
 * ServingExecutor fault tolerance: a throwing gate fails only its own
 * job, transient faults are retried (with backoff and the sequential
 * degradation ladder) until the job completes bit-exactly, permanent
 * faults resolve kFailed without hurting the pool, and OverloadedError
 * carries its machine-readable retry-after hint. Labeled `concurrency` +
 * `robustness`: run under -DPYTFHE_SANITIZE=thread.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "backend/fault.h"
#include "backend/serving.h"
#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

std::shared_ptr<const pasm::Program> ChainProgram(int32_t length) {
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId cur = a;
    for (int32_t i = 0; i < length; ++i)
        cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

std::shared_ptr<const pasm::Program> WideProgram(int32_t width) {
    Netlist n;
    std::vector<NodeId> gates;
    for (int32_t i = 0; i < width; ++i) {
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        gates.push_back(n.AddGate(GateType::kAnd, a, b));
    }
    NodeId acc = gates[0];
    for (size_t i = 1; i < gates.size(); ++i)
        acc = n.AddGate(GateType::kXor, acc, gates[i]);
    n.AddOutput(acc);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

std::vector<bool> RandomBits(uint64_t seed, size_t count) {
    std::mt19937_64 rng(seed);
    std::vector<bool> bits(count);
    for (size_t i = 0; i < count; ++i) bits[i] = rng() & 1;
    return bits;
}

/** Apply spin-waits while `hold` is raised (for backpressure tests). */
struct HoldEvaluator {
    using Ciphertext = bool;
    std::atomic<bool>* hold = nullptr;

    bool Apply(GateType t, bool a, bool b) const {
        while (hold && hold->load())
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        return circuit::EvalGate(t, a, b);
    }
};

TEST(ServingFaults, ThrowingGateFailsOnlyItsJob) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 3;
    FaultPlan plan;
    plan.fault_every_nth_job = 2;  // Jobs 1, 3, 5, ... fault at gate 0.
    FaultInjector inj(plan);
    options.fault_injector = &inj;  // No retry: max_attempts defaults to 1.
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(24);
    const auto in0 = RandomBits(10, program->NumInputs());
    const auto in1 = RandomBits(11, program->NumInputs());
    const auto in2 = RandomBits(12, program->NumInputs());
    auto job0 = serving.Submit(program, eval, in0);
    auto job1 = serving.Submit(program, eval, in1);

    EXPECT_EQ(job0->Wait(), JobStatus::kDone);
    EXPECT_EQ(job1->Wait(), JobStatus::kFailed);
    EXPECT_EQ(job0->Outputs(), RunProgram(*program, eval, in0));
    EXPECT_THROW(job1->Outputs(), GateExecutionError);
    const auto error = job1->Error();
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->gate_ordinal(), 0u);
    EXPECT_TRUE(error->transient());

    // The pool keeps serving: job seq 2 is clean and completes.
    auto job2 = serving.Submit(program, eval, in2);
    EXPECT_EQ(job2->Wait(), JobStatus::kDone);
    EXPECT_EQ(job2->Outputs(), RunProgram(*program, eval, in2));

    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_failed, 1u);
    EXPECT_EQ(stats.jobs_completed, 2u);
    EXPECT_EQ(stats.job_retries, 0u);
    const JobMetrics failed = job1->Metrics();
    EXPECT_EQ(failed.attempts, 1u);
    EXPECT_EQ(failed.gate_failures, 1u);
    EXPECT_FALSE(failed.degraded_sequential);
}

// The ISSUE acceptance scenario: a fault plan injecting transient gate
// failures into 25% of jobs; with RetryPolicy enabled every job completes
// and outputs are bit-exact vs the fault-free run.
TEST(ServingFaults, TransientQuarterOfJobsAllRecoverBitExact) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 4;
    options.max_active_jobs = 4;
    FaultPlan plan;
    plan.fault_every_nth_job = 4;   // 25% of jobs fault...
    plan.transient_clears_after = 1; // ...transiently, on attempt 0 only.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = WideProgram(12);
    constexpr int kJobs = 16;
    std::vector<std::vector<bool>> inputs;
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    for (int i = 0; i < kJobs; ++i) {
        inputs.push_back(RandomBits(100 + i, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs.back()));
    }
    for (int i = 0; i < kJobs; ++i) {
        EXPECT_EQ(jobs[i]->Wait(), JobStatus::kDone) << i;
        EXPECT_EQ(jobs[i]->Outputs(),
                  RunProgram(*program, eval, inputs[i]))
            << i;
        const JobMetrics m = jobs[i]->Metrics();
        if (i % 4 == 3) {
            EXPECT_GE(m.attempts, 2u) << i;
            EXPECT_GE(m.gate_failures, 1u) << i;
        } else {
            EXPECT_EQ(m.attempts, 1u) << i;
            EXPECT_EQ(m.gate_failures, 0u) << i;
        }
    }
    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_completed, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(stats.jobs_failed, 0u);
    EXPECT_GE(stats.job_retries, static_cast<uint64_t>(kJobs / 4));
    EXPECT_GE(inj.counters().transient_faults,
              static_cast<uint64_t>(kJobs / 4));
}

TEST(ServingFaults, PermanentFaultExhaustsNoRetries) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    FaultPlan plan;
    plan.fault_every_nth_job = 2;
    plan.permanent_fraction = 1.0;  // Faulted sites never recover.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 5;  // Retries allowed but pointless.
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(12);
    const auto in0 = RandomBits(20, program->NumInputs());
    const auto in1 = RandomBits(21, program->NumInputs());
    auto job0 = serving.Submit(program, eval, in0);  // seq 0: clean.
    auto job1 = serving.Submit(program, eval, in1);  // seq 1: permanent.
    EXPECT_EQ(job0->Wait(), JobStatus::kDone);
    EXPECT_EQ(job1->Wait(), JobStatus::kFailed);
    // A permanent fault is non-transient: failed on the first attempt.
    EXPECT_EQ(job1->Metrics().attempts, 1u);
    ASSERT_TRUE(job1->Error().has_value());
    EXPECT_FALSE(job1->Error()->transient());
    EXPECT_EQ(serving.stats().job_retries, 0u);

    // The pool survives: the next clean job is bit-exact.
    const auto in2 = RandomBits(22, program->NumInputs());
    auto job2 = serving.Submit(program, eval, in2);
    EXPECT_EQ(job2->Wait(), JobStatus::kDone);
    EXPECT_EQ(job2->Outputs(), RunProgram(*program, eval, in2));
}

TEST(ServingFaults, DegradationLadderRunsFinalAttemptSequentially) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 3;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;    // Every job faults at gate 0...
    plan.transient_clears_after = 2; // ...on attempts 0 and 1.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(16);
    const auto inputs = RandomBits(30, program->NumInputs());
    auto job = serving.Submit(program, eval, inputs);
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    EXPECT_EQ(job->Outputs(), RunProgram(*program, eval, inputs));

    const JobMetrics m = job->Metrics();
    EXPECT_EQ(m.attempts, 3u);
    EXPECT_EQ(m.gate_failures, 2u);
    EXPECT_TRUE(m.degraded_sequential);
    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.job_retries, 2u);
    EXPECT_EQ(stats.jobs_degraded, 1u);
    EXPECT_EQ(stats.jobs_completed, 1u);
}

TEST(ServingFaults, RetryBackoffDelaysReadmission) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    options.retry.initial_backoff_seconds = 0.05;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(8);
    const auto inputs = RandomBits(40, program->NumInputs());
    const auto start = std::chrono::steady_clock::now();
    auto job = serving.Submit(program, eval, inputs);
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // One retry with a 50 ms backoff: the wall clock must show the wait.
    EXPECT_GE(wall, 0.05);
    EXPECT_EQ(job->Outputs(), RunProgram(*program, eval, inputs));
    EXPECT_EQ(job->Metrics().attempts, 2u);
}

TEST(ServingFaults, OverloadedErrorCarriesRetryAfterHint) {
    std::atomic<bool> hold{true};
    HoldEvaluator eval;
    eval.hold = &hold;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    options.max_active_jobs = 1;
    options.max_pending_jobs = 2;
    ServingExecutor<HoldEvaluator> serving(executor, options);

    const auto program = ChainProgram(4);
    const auto inputs = RandomBits(50, program->NumInputs());
    auto job0 = serving.Submit(program, eval, inputs);  // Active, held.
    auto job1 = serving.Submit(program, eval, inputs);  // Queued.
    try {
        serving.Submit(program, eval, inputs);
        FAIL() << "expected OverloadedError";
    } catch (const OverloadedError& e) {
        EXPECT_EQ(e.queue_depth(), 2u);
        // No completed jobs yet: no drain history to estimate from.
        EXPECT_DOUBLE_EQ(e.estimated_drain_seconds(), 0.0);
        EXPECT_NE(std::string(e.what()).find("retry later"),
                  std::string::npos);
    }
    hold.store(false);
    EXPECT_EQ(job0->Wait(), JobStatus::kDone);
    EXPECT_EQ(job1->Wait(), JobStatus::kDone);

    // With drain history and a rebuilt backlog, the hint is positive.
    hold.store(true);
    auto job2 = serving.Submit(program, eval, inputs);
    auto job3 = serving.Submit(program, eval, inputs);
    try {
        serving.Submit(program, eval, inputs);
        FAIL() << "expected OverloadedError";
    } catch (const OverloadedError& e) {
        EXPECT_EQ(e.queue_depth(), 2u);
        EXPECT_GT(e.estimated_drain_seconds(), 0.0);
    }
    hold.store(false);
    EXPECT_EQ(job2->Wait(), JobStatus::kDone);
    EXPECT_EQ(job3->Wait(), JobStatus::kDone);
    EXPECT_EQ(serving.stats().jobs_rejected, 2u);
}

TEST(ServingFaults, InjectedStallsDoNotCorruptResults) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 4;
    FaultPlan plan;
    plan.stall_rate = 0.5;
    plan.stall_microseconds = 200.0;
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = WideProgram(10);
    std::vector<std::vector<bool>> inputs;
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    for (int i = 0; i < 6; ++i) {
        inputs.push_back(RandomBits(60 + i, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs.back()));
    }
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(jobs[i]->Wait(), JobStatus::kDone) << i;
        EXPECT_EQ(jobs[i]->Outputs(),
                  RunProgram(*program, eval, inputs[i]))
            << i;
    }
    EXPECT_GT(inj.counters().stalls, 0u);
    EXPECT_EQ(inj.counters().Total(), 0u);
}

TEST(ServingFaults, MixedFaultStormEveryJobResolves) {
    // Stress: random fault rate + stalls + retries across many jobs; every
    // job must terminate (kDone or kFailed), completed jobs bit-exact.
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 4;
    options.max_active_jobs = 4;
    options.max_pending_jobs = 64;
    FaultPlan plan;
    plan.seed = 99;
    plan.gate_fault_rate = 0.02;
    plan.permanent_fraction = 0.3;
    plan.stall_rate = 0.05;
    plan.stall_microseconds = 100.0;
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = WideProgram(8);
    constexpr int kJobs = 24;
    std::vector<std::vector<bool>> inputs;
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    for (int i = 0; i < kJobs; ++i) {
        inputs.push_back(RandomBits(200 + i, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs.back()));
    }
    uint64_t done = 0, failed = 0;
    for (int i = 0; i < kJobs; ++i) {
        const JobStatus status = jobs[i]->Wait();
        if (status == JobStatus::kDone) {
            ++done;
            EXPECT_EQ(jobs[i]->Outputs(),
                      RunProgram(*program, eval, inputs[i]))
                << i;
        } else {
            ++failed;
            EXPECT_EQ(status, JobStatus::kFailed) << i;
        }
    }
    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_completed, done);
    EXPECT_EQ(stats.jobs_failed, failed);
    EXPECT_EQ(done + failed, static_cast<uint64_t>(kJobs));
    EXPECT_GT(done, 0u);
}

// --------------------------------------------- checkpointed retry + resume

TEST(ServingCheckpoint, RetryResumesFromSnapshotBitExact) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 4;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;     // Every job faults...
    plan.fault_gate_ordinal = 24;     // ...late (3/4 of the chain)...
    plan.transient_clears_after = 1;  // ...transiently, attempt 0 only.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    options.checkpoint.every_n_levels = 1;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(32);
    constexpr int kJobs = 4;
    std::vector<std::vector<bool>> inputs;
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    for (int i = 0; i < kJobs; ++i) {
        inputs.push_back(RandomBits(300 + i, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs.back()));
    }
    for (int i = 0; i < kJobs; ++i) {
        EXPECT_EQ(jobs[i]->Wait(), JobStatus::kDone) << i;
        EXPECT_EQ(jobs[i]->Outputs(),
                  RunProgram(*program, eval, inputs[i]))
            << i;
        const JobMetrics m = jobs[i]->Metrics();
        EXPECT_EQ(m.attempts, 2u) << i;
        EXPECT_GT(m.checkpoints_taken, 0u) << i;
        EXPECT_EQ(m.checkpoint_resumes, 1u) << i;
        // The fault fires at gate 24 of 32 with a snapshot every level:
        // the retry restores nearly the whole prefix instead of
        // re-executing it.
        EXPECT_GE(m.gates_resumed, 20u) << i;
        EXPECT_LE(m.gates_reexecuted, 4u) << i;
    }
    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_completed, static_cast<uint64_t>(kJobs));
    EXPECT_EQ(stats.checkpoint_resumes, static_cast<uint64_t>(kJobs));
    EXPECT_GT(stats.checkpoints_taken, 0u);
    EXPECT_GT(stats.checkpoint_bytes, 0u);
    EXPECT_GE(stats.gates_resumed, static_cast<uint64_t>(kJobs) * 20);
    EXPECT_EQ(stats.checkpoints_corrupt_discarded, 0u);
    // Without checkpoints those retries would have re-executed ~24 gates
    // per job; with them the waste is a sliver.
    EXPECT_LE(stats.gates_reexecuted, static_cast<uint64_t>(kJobs) * 4);
}

TEST(ServingCheckpoint, CheckpointingOffLeavesCountersZero) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;
    plan.fault_gate_ordinal = 12;
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;  // Checkpoint policy left disabled.
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(16);
    const auto inputs = RandomBits(310, program->NumInputs());
    auto job = serving.Submit(program, eval, inputs);
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    EXPECT_EQ(job->Outputs(), RunProgram(*program, eval, inputs));
    const JobMetrics m = job->Metrics();
    EXPECT_EQ(m.checkpoints_taken, 0u);
    EXPECT_EQ(m.checkpoint_resumes, 0u);
    EXPECT_EQ(m.gates_resumed, 0u);
    // The from-scratch retry re-executed the whole pre-fault prefix.
    EXPECT_GE(m.gates_reexecuted, 12u);
    EXPECT_EQ(serving.stats().checkpoints_taken, 0u);
}

TEST(ServingCheckpoint, PoisonJobIsQuarantinedWithTypedError) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;
    plan.fault_gate_ordinal = 6;
    plan.transient_clears_after = 100;  // Never clears within the budget.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 6;
    options.checkpoint.every_n_levels = 1;
    options.max_resume_failures = 2;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(8);
    const auto inputs = RandomBits(320, program->NumInputs());
    auto job = serving.Submit(program, eval, inputs);
    EXPECT_EQ(job->Wait(), JobStatus::kFailed);
    // Two checkpoint-resumed attempts failed at the same gate: the job is
    // poison and fails with the typed quarantine error well before the
    // retry budget (6 attempts) is spent.
    EXPECT_THROW(job->Outputs(), JobQuarantinedError);
    const JobMetrics m = job->Metrics();
    EXPECT_TRUE(m.quarantined);
    EXPECT_LT(m.attempts, 6u);
    EXPECT_GE(m.checkpoint_resumes, 2u);
    const ServingStats stats = serving.stats();
    EXPECT_EQ(stats.jobs_quarantined, 1u);
    EXPECT_EQ(stats.jobs_failed, 1u);

    // The pool survives quarantine: a clean job still completes.
    FaultPlan clean_plan;
    (void)clean_plan;
    const auto inputs2 = RandomBits(321, program->NumInputs());
    // Job seq 1 also faults (every job does), but a fresh submit proves
    // the executor did not wedge; it quarantines identically.
    auto job2 = serving.Submit(program, eval, inputs2);
    EXPECT_EQ(job2->Wait(), JobStatus::kFailed);
    EXPECT_THROW(job2->Outputs(), JobQuarantinedError);
}

// ------------------------------------------------------------ stall watchdog

TEST(ServingWatchdog, StalledJobIsPreemptedAndCompletes) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    options.stall_timeout_seconds = 0.05;
    FaultPlan plan;
    plan.stall_rate = 1.0;              // Every gate stalls...
    plan.stall_microseconds = 250000.0; // ...for 250 ms (>> timeout).
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 2;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(3);
    const auto inputs = RandomBits(330, program->NumInputs());
    auto job = serving.Submit(program, eval, inputs);
    EXPECT_EQ(job->Wait(), JobStatus::kDone);
    EXPECT_EQ(job->Outputs(), RunProgram(*program, eval, inputs));
    const JobMetrics m = job->Metrics();
    // The watchdog flagged the first attempt as stalled, preempted it,
    // and the final attempt completed on the sequential path (which the
    // watchdog exempts — it cannot be preempted at a gate boundary).
    EXPECT_GE(m.stalls, 1u);
    EXPECT_EQ(m.attempts, 2u);
    EXPECT_TRUE(m.degraded_sequential);
    EXPECT_GE(serving.stats().jobs_stalled, 1u);
    EXPECT_GE(serving.stats().job_retries, 1u);
}

TEST(ServingWatchdog, HealthyJobsAreNeverFlagged) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 4;
    options.stall_timeout_seconds = 5.0;  // Far beyond any real gate.
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = WideProgram(10);
    std::vector<std::vector<bool>> inputs;
    std::vector<std::shared_ptr<ServingExecutor<PlainEvaluator>::Job>> jobs;
    for (int i = 0; i < 8; ++i) {
        inputs.push_back(RandomBits(340 + i, program->NumInputs()));
        jobs.push_back(serving.Submit(program, eval, inputs.back()));
    }
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(jobs[i]->Wait(), JobStatus::kDone) << i;
        EXPECT_EQ(jobs[i]->Outputs(),
                  RunProgram(*program, eval, inputs[i]))
            << i;
        EXPECT_EQ(jobs[i]->Metrics().stalls, 0u) << i;
    }
    EXPECT_EQ(serving.stats().jobs_stalled, 0u);
}

// ----------------------------------------------- deadlines in retry backoff

TEST(ServingRetry, DeadlineFiresPromptlyWhileParkedInBackoff) {
    PlainEvaluator eval;
    Executor executor;
    ServingOptions options;
    options.num_workers = 2;
    FaultPlan plan;
    plan.fault_every_nth_job = 1;  // Attempt 0 always faults at gate 0.
    FaultInjector inj(plan);
    options.fault_injector = &inj;
    options.retry.max_attempts = 3;
    // Backoff far longer than the deadline: the job sits parked in the
    // retry queue when its deadline passes. It must fail at the deadline,
    // not after the backoff drains.
    options.retry.initial_backoff_seconds = 30.0;
    ServingExecutor<PlainEvaluator> serving(executor, options);

    const auto program = ChainProgram(6);
    const auto inputs = RandomBits(350, program->NumInputs());
    ServingExecutor<PlainEvaluator>::SubmitOptions submit;
    submit.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(150);
    const auto start = std::chrono::steady_clock::now();
    auto job = serving.Submit(program, eval, inputs, submit);
    EXPECT_EQ(job->Wait(), JobStatus::kDeadlineExceeded);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(wall, 5.0);  // Promptly — nowhere near the 30 s backoff.
    EXPECT_THROW(job->Outputs(), DeadlineExceededError);
    EXPECT_EQ(serving.stats().jobs_deadline_exceeded, 1u);
}

}  // namespace
}  // namespace pytfhe::backend
