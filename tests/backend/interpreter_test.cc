#include "backend/interpreter.h"

#include <gtest/gtest.h>
#include <random>

#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t = static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

class InterpreterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterpreterPropertyTest, PlainInterpreterMatchesNetlistSemantics) {
    const Netlist n = RandomNetlist(GetParam(), 6, 150);
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    PlainEvaluator eval;
    std::mt19937_64 rng(GetParam() * 31);
    for (int trial = 0; trial < 16; ++trial) {
        std::vector<bool> in(6);
        for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
        const auto want = n.EvaluatePlain(in);
        const auto got = RunProgram(*p, eval, in);
        EXPECT_EQ(got, want);
    }
}

TEST_P(InterpreterPropertyTest, ThreadedMatchesSequential) {
    const Netlist n = RandomNetlist(GetParam() ^ 0xBEEF, 8, 300);
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    PlainEvaluator eval;
    std::mt19937_64 rng(GetParam());
    for (int32_t threads : {1, 2, 4}) {
        std::vector<bool> in(8);
        for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
        EXPECT_EQ(RunProgramThreaded(*p, eval, in, threads),
                  RunProgram(*p, eval, in))
            << "threads=" << threads;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(Interpreter, CountingEvaluatorCountsGates) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);
    const NodeId y = n.AddGate(GateType::kAnd, a, x);
    n.AddOutput(n.AddGate(GateType::kNot, y, y));
    const auto p = pasm::Assemble(n);
    CountingEvaluator eval;
    (void)RunProgram(*p, eval, {true, false});
    EXPECT_EQ(eval.Total(), 3u);
    EXPECT_EQ(eval.CountOf(GateType::kXor), 1u);
    EXPECT_EQ(eval.CountOf(GateType::kNot), 1u);
    EXPECT_EQ(eval.CountOf(GateType::kNand), 0u);
}

/** Full encrypted execution of an assembled program (toy parameters). */
class TfheExecutionTest : public ::testing::Test {
  protected:
    TfheExecutionTest()
        : rng_(91),
          secret_(tfhe::ToyParams(), rng_),
          gates_(secret_, rng_),
          eval_(gates_) {}

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> out;
        for (bool b : bits) out.push_back(secret_.Encrypt(b, rng_));
        return out;
    }

    std::vector<bool> Decrypt(const std::vector<tfhe::LweSample>& samples) {
        std::vector<bool> out;
        for (const auto& s : samples) out.push_back(secret_.Decrypt(s));
        return out;
    }

    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    tfhe::GateEvaluator gates_;
    TfheEvaluator eval_;
};

TEST_F(TfheExecutionTest, HalfAdderEncryptedEndToEnd) {
    Netlist n;
    const NodeId a = n.AddInput("A");
    const NodeId b = n.AddInput("B");
    n.AddOutput(n.AddGate(GateType::kXor, a, b), "Sum");
    n.AddOutput(n.AddGate(GateType::kAnd, a, b), "Carry");
    const auto p = pasm::Assemble(n);
    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            const auto out =
                Decrypt(RunProgram(*p, eval_, Encrypt({av == 1, bv == 1})));
            EXPECT_EQ(out[0], (av ^ bv) != 0);
            EXPECT_EQ(out[1], (av & bv) != 0);
        }
    }
}

TEST_F(TfheExecutionTest, RandomCircuitEncryptedMatchesPlain) {
    const Netlist n = RandomNetlist(1234, 4, 40);
    const auto p = pasm::Assemble(n);
    std::mt19937_64 prng(7);
    for (int trial = 0; trial < 2; ++trial) {
        std::vector<bool> in(4);
        for (size_t i = 0; i < in.size(); ++i) in[i] = prng() & 1;
        EXPECT_EQ(Decrypt(RunProgram(*p, eval_, Encrypt(in))),
                  n.EvaluatePlain(in));
    }
}

TEST_F(TfheExecutionTest, ThreadedEncryptedExecutionIsCorrect) {
    const Netlist n = RandomNetlist(555, 4, 30);
    const auto p = pasm::Assemble(n);
    const std::vector<bool> in{true, false, true, true};
    EXPECT_EQ(Decrypt(RunProgramThreaded(*p, eval_, Encrypt(in), 4)),
              n.EvaluatePlain(in));
}

}  // namespace
}  // namespace pytfhe::backend
