/**
 * @file
 * Fault-injection layer tests: determinism of the FaultPlan schedule,
 * transient-vs-permanent semantics, RetryPolicy backoff arithmetic, and
 * the exception-safety contract of every functional execution path — a
 * throwing gate fails the run with a typed GateExecutionError, worker
 * threads are joined, and the pool executes the next run bit-exactly.
 * Labeled `concurrency` + `robustness`: run under -DPYTFHE_SANITIZE=thread
 * to prove the failure paths race-free.
 */
#include "backend/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <thread>

#include "backend/execute.h"
#include "backend/executor.h"
#include "backend/interpreter.h"
#include "pasm/assembler.h"

namespace pytfhe::backend {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

std::shared_ptr<const pasm::Program> ChainProgram(int32_t length) {
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId cur = a;
    for (int32_t i = 0; i < length; ++i)
        cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

std::shared_ptr<const pasm::Program> WideProgram(int32_t width) {
    Netlist n;
    std::vector<NodeId> gates;
    for (int32_t i = 0; i < width; ++i) {
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        gates.push_back(n.AddGate(GateType::kAnd, a, b));
    }
    NodeId acc = gates[0];
    for (size_t i = 1; i < gates.size(); ++i)
        acc = n.AddGate(GateType::kXor, acc, gates[i]);
    n.AddOutput(acc);
    auto p = pasm::Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::make_shared<const pasm::Program>(std::move(*p));
}

std::vector<bool> RandomBits(uint64_t seed, size_t count) {
    std::mt19937_64 rng(seed);
    std::vector<bool> bits(count);
    for (size_t i = 0; i < count; ++i) bits[i] = rng() & 1;
    return bits;
}

/** Apply throws a plain runtime_error at one gate evaluation ordinal. */
struct ThrowingEvaluator {
    using Ciphertext = bool;
    mutable std::atomic<uint64_t> calls{0};
    uint64_t throw_at = ~UINT64_C(0);

    bool Apply(GateType t, bool a, bool b) const {
        if (calls.fetch_add(1) == throw_at)
            throw std::runtime_error("evaluator blew up");
        return circuit::EvalGate(t, a, b);
    }
};

// ------------------------------------------------------------ the injector

TEST(FaultInjector, ScheduleIsDeterministic) {
    FaultPlan plan;
    plan.seed = 42;
    plan.gate_fault_rate = 0.2;
    plan.permanent_fraction = 0.3;
    const FaultInjector a(plan), b(plan);
    int32_t fired = 0;
    for (uint64_t job = 0; job < 20; ++job) {
        for (uint64_t gate = 0; gate < 50; ++gate) {
            bool pa = false, pb = false;
            const bool fa = a.WouldFault(job, 0, gate, &pa);
            const bool fb = b.WouldFault(job, 0, gate, &pb);
            EXPECT_EQ(fa, fb);
            if (fa) {
                ++fired;
                EXPECT_EQ(pa, pb);
            }
        }
    }
    // ~20% of 1000 sites; generous bounds, but never zero and never all.
    EXPECT_GT(fired, 100);
    EXPECT_LT(fired, 400);

    // A different seed draws a different schedule somewhere.
    plan.seed = 43;
    const FaultInjector c(plan);
    bool differs = false;
    for (uint64_t job = 0; job < 20 && !differs; ++job) {
        for (uint64_t gate = 0; gate < 50 && !differs; ++gate) {
            bool pa = false, pc = false;
            if (a.WouldFault(job, 0, gate, &pa) !=
                c.WouldFault(job, 0, gate, &pc))
                differs = true;
        }
    }
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, TransientFaultsClearAfterConfiguredAttempt) {
    FaultPlan plan;
    plan.gate_fault_rate = 0.5;
    plan.permanent_fraction = 0.0;
    plan.transient_clears_after = 2;
    const FaultInjector inj(plan);
    bool found = false;
    for (uint64_t gate = 0; gate < 64; ++gate) {
        bool permanent = true;
        if (!inj.WouldFault(0, 0, gate, &permanent)) continue;
        found = true;
        EXPECT_FALSE(permanent);
        // Fires below the threshold, clears at and beyond it.
        bool p = false;
        EXPECT_TRUE(inj.WouldFault(0, 1, gate, &p));
        EXPECT_FALSE(inj.WouldFault(0, 2, gate, &p));
        EXPECT_FALSE(inj.WouldFault(0, 7, gate, &p));
    }
    EXPECT_TRUE(found);
}

TEST(FaultInjector, PermanentFaultsFireOnEveryAttempt) {
    FaultPlan plan;
    plan.gate_fault_rate = 0.5;
    plan.permanent_fraction = 1.0;
    const FaultInjector inj(plan);
    bool found = false;
    for (uint64_t gate = 0; gate < 64; ++gate) {
        bool permanent = false;
        if (!inj.WouldFault(3, 0, gate, &permanent)) continue;
        found = true;
        EXPECT_TRUE(permanent);
        for (uint32_t attempt : {1u, 2u, 9u}) {
            bool p = false;
            EXPECT_TRUE(inj.WouldFault(3, attempt, gate, &p));
            EXPECT_TRUE(p);
        }
    }
    EXPECT_TRUE(found);
}

TEST(FaultInjector, EveryNthJobScheduleHitsGateZero) {
    FaultPlan plan;
    plan.fault_every_nth_job = 4;
    const FaultInjector inj(plan);
    for (uint64_t job = 0; job < 16; ++job) {
        bool permanent = false;
        const bool fires = inj.WouldFault(job, 0, 0, &permanent);
        EXPECT_EQ(fires, job % 4 == 3) << job;
        // Only gate ordinal 0 participates in the every-nth schedule.
        EXPECT_FALSE(inj.WouldFault(job, 0, 1, &permanent));
    }
}

TEST(FaultInjector, OnGateThrowsAndCounts) {
    FaultPlan plan;
    plan.fault_every_nth_job = 1;
    FaultInjector inj(plan);
    EXPECT_THROW(inj.OnGate(0, 0, 0), FaultInjectedError);
    EXPECT_EQ(inj.counters().transient_faults, 1u);
    EXPECT_EQ(inj.counters().Total(), 1u);
    // Attempt 1: the transient fault has cleared.
    inj.OnGate(0, 1, 0);
    EXPECT_EQ(inj.counters().Total(), 1u);
}

TEST(FaultInjector, StallsSleepAndCount) {
    FaultPlan plan;
    plan.stall_rate = 1.0;
    plan.stall_microseconds = 50.0;
    FaultInjector inj(plan);
    inj.OnGate(0, 0, 0);
    inj.OnGate(0, 0, 1);
    EXPECT_EQ(inj.counters().stalls, 2u);
    EXPECT_EQ(inj.counters().Total(), 0u);
}

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, BackoffGrowsGeometrically) {
    RetryPolicy retry;
    retry.max_attempts = 4;
    retry.initial_backoff_seconds = 0.1;
    retry.backoff_multiplier = 2.0;
    EXPECT_DOUBLE_EQ(retry.BackoffSeconds(5, 0), 0.0);
    EXPECT_DOUBLE_EQ(retry.BackoffSeconds(5, 1), 0.1);
    EXPECT_DOUBLE_EQ(retry.BackoffSeconds(5, 2), 0.2);
    EXPECT_DOUBLE_EQ(retry.BackoffSeconds(5, 3), 0.4);
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
    RetryPolicy retry;
    retry.initial_backoff_seconds = 1.0;
    retry.backoff_multiplier = 1.0;
    retry.jitter = 0.25;
    bool spread = false;
    for (uint64_t job = 0; job < 32; ++job) {
        const double d = retry.BackoffSeconds(job, 1);
        EXPECT_GE(d, 0.75);
        EXPECT_LE(d, 1.25);
        EXPECT_DOUBLE_EQ(d, retry.BackoffSeconds(job, 1));
        if (d != 1.0) spread = true;
    }
    EXPECT_TRUE(spread);
}

TEST(RetryPolicy, ZeroInitialBackoffMeansImmediateRetry) {
    RetryPolicy retry;
    retry.max_attempts = 3;
    EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 2), 0.0);
}

// ----------------------------------------- executors under throwing gates

TEST(FaultPaths, SequentialInterpreterThrowsTypedError) {
    const auto program = ChainProgram(20);
    PlainEvaluator eval;
    const auto inputs = RandomBits(1, program->NumInputs());
    FaultPlan plan;
    plan.fault_every_nth_job = 1;  // Gate 0 of job 0 faults on attempt 0.
    FaultInjector inj(plan);
    try {
        RunProgram(*program, eval, inputs, {}, FaultHook{&inj, 0, 0});
        FAIL() << "expected GateExecutionError";
    } catch (const GateExecutionError& e) {
        EXPECT_EQ(e.gate_ordinal(), 0u);
        EXPECT_EQ(e.attempt(), 0u);
        EXPECT_TRUE(e.transient());
    }
    // Attempt 1 clears the transient fault and matches the fault-free run.
    const auto expected = RunProgram(*program, eval, inputs);
    EXPECT_EQ(RunProgram(*program, eval, inputs, {}, FaultHook{&inj, 0, 1}),
              expected);
}

TEST(FaultPaths, RealEvaluatorExceptionIsNonTransient) {
    const auto program = ChainProgram(10);
    ThrowingEvaluator eval;
    eval.throw_at = 4;
    const auto inputs = RandomBits(2, program->NumInputs());
    try {
        RunProgram(*program, eval, inputs);
        FAIL() << "expected GateExecutionError";
    } catch (const GateExecutionError& e) {
        EXPECT_EQ(e.gate_ordinal(), 4u);
        EXPECT_FALSE(e.transient());
        EXPECT_NE(std::string(e.what()).find("evaluator blew up"),
                  std::string::npos);
    }
}

TEST(FaultPaths, ExecutorFailsRunButPoolSurvives) {
    const auto program = WideProgram(32);
    PlainEvaluator eval;
    const auto inputs = RandomBits(3, program->NumInputs());
    const auto expected = RunProgram(*program, eval, inputs);

    FaultPlan plan;
    plan.gate_fault_rate = 0.2;
    FaultInjector inj(plan);
    Executor executor;
    EXPECT_THROW(
        executor.Run(*program, eval, inputs, 4, {}, FaultHook{&inj, 0, 0}),
        GateExecutionError);
    EXPECT_GT(inj.counters().Total(), 0u);
    // The same pool executes the next (fault-free) run bit-exactly.
    for (int round = 0; round < 3; ++round)
        EXPECT_EQ(executor.Run(*program, eval, inputs, 4), expected);
}

TEST(FaultPaths, WaveBarrierPathThrowsAndJoins) {
    const auto program = WideProgram(16);
    PlainEvaluator eval;
    const auto inputs = RandomBits(4, program->NumInputs());
    FaultPlan plan;
    plan.gate_fault_rate = 0.3;
    FaultInjector inj(plan);
    EXPECT_THROW(RunProgramThreaded(*program, eval, inputs, 4,
                                    FaultHook{&inj, 0, 0}),
                 GateExecutionError);
    // Fault-free rerun still works and matches the reference.
    EXPECT_EQ(RunProgramThreaded(*program, eval, inputs, 4),
              RunProgram(*program, eval, inputs));
}

TEST(FaultPaths, ExecuteForwardsFaultHookOnEveryPath) {
    const auto program = ChainProgram(8);
    PlainEvaluator eval;
    const auto inputs = RandomBits(5, program->NumInputs());
    FaultPlan plan;
    plan.fault_every_nth_job = 1;
    FaultInjector inj(plan);
    for (ExecMode mode : {ExecMode::kSequential, ExecMode::kWaveBarrier,
                          ExecMode::kDependencyCounting}) {
        ExecOptions options;
        options.mode = mode;
        options.num_threads = 2;
        options.fault = FaultHook{&inj, inj.NextRunId(), 0};
        EXPECT_THROW(Execute(*program, eval, inputs, options),
                     GateExecutionError)
            << static_cast<int>(mode);
    }
}

TEST(FaultPaths, ThrowingChainMidwayKeepsExecutorReusable) {
    const auto program = ChainProgram(30);
    ThrowingEvaluator eval;
    eval.throw_at = 17;
    const auto inputs = RandomBits(6, program->NumInputs());
    Executor executor;
    EXPECT_THROW(executor.Run(*program, eval, inputs, 4),
                 GateExecutionError);
    // Counter is past the trigger: subsequent runs evaluate normally.
    PlainEvaluator plain;
    EXPECT_EQ(executor.Run(*program, plain, inputs, 4),
              RunProgram(*program, plain, inputs));
}

// ------------------------------------------------- interruptible stalls

TEST(FaultInjector, InjectedStallShedsOnCancel) {
    // A 5-second injected stall must not pin down a cancelled run: the
    // cooperative sleep checks the run's control token every millisecond
    // and the run aborts with the typed cancel error almost immediately.
    const auto program = ChainProgram(4);
    const auto inputs = RandomBits(70, program->NumInputs());
    FaultPlan plan;
    plan.stall_rate = 1.0;
    plan.stall_microseconds = 5e6;
    FaultInjector inj(plan);

    std::atomic<bool> cancel{false};
    ExecOptions options;
    options.mode = ExecMode::kDependencyCounting;
    options.num_threads = 2;
    options.control.cancel = &cancel;
    options.fault.injector = &inj;

    PlainEvaluator eval;
    const auto start = std::chrono::steady_clock::now();
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        cancel.store(true);
    });
    EXPECT_THROW(Execute(*program, eval, inputs, options), CancelledError);
    canceller.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(wall, 2.5);  // Sheds the 5 s sleep, does not serve it out.
    EXPECT_GT(inj.counters().stalls, 0u);
}

TEST(FaultInjector, InjectedStallShedsOnDeadline) {
    // Same contract on the sequential path with a deadline token.
    const auto program = ChainProgram(4);
    const auto inputs = RandomBits(71, program->NumInputs());
    FaultPlan plan;
    plan.stall_rate = 1.0;
    plan.stall_microseconds = 5e6;
    FaultInjector inj(plan);

    ExecOptions options;
    options.mode = ExecMode::kSequential;
    options.control.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(100);
    options.fault.injector = &inj;

    PlainEvaluator eval;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(Execute(*program, eval, inputs, options),
                 DeadlineExceededError);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(wall, 2.5);
}

}  // namespace
}  // namespace pytfhe::backend
