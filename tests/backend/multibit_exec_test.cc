/**
 * @file
 * Encrypted LUT-gate execution across every backend path: sequential
 * interpreter, dependency-counting executor, wave-barrier mode, batched
 * dispatch (LUT gates take the scalar lane of a batch-enabled run), each
 * with and without a memory plan — all bit-exact against the plain
 * reference under toy multibit parameters. Also the functional planes:
 * PlainEvaluator interprets LUT digits, CountingEvaluator charges one
 * bootstrap per LUT gate.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "backend/execute.h"
#include "hdl/multibit_ops.h"
#include "hdl/word_ops.h"
#include "pasm/assembler.h"
#include "pasm/memory_plan.h"
#include "tfhe/multibit.h"
#include "tfhe/noise.h"
#include "tfhe/params.h"

namespace pytfhe::backend {
namespace {

class MultibitExecTest : public ::testing::Test {
  protected:
    MultibitExecTest()
        : params_(tfhe::ToyMultibitParams()),
          rng_(1234),
          secret_(params_, rng_),
          gates_(secret_, rng_) {
        hdl::Builder b;
        const hdl::MultibitPlan plan{
            16, tfhe::MaxMultibitWeightBudget(params_, 16)};
        EXPECT_TRUE(plan.Fits(hdl::kMultibitMaxWeightSq));
        const hdl::Bits x = hdl::InputBits(b, 8, "x");
        const hdl::Bits y = hdl::InputBits(b, 8, "y");
        hdl::OutputBits(b, hdl::MultibitAdd(b, plan, x, y), "s");
        b.AddOutput(hdl::MultibitUlt(b, plan, x, y), "lt");
        netlist_ = b.netlist();
        std::string error;
        auto prog = pasm::Assemble(netlist_, &error);
        EXPECT_TRUE(prog.has_value()) << error;
        program_ = std::move(*prog);
        auto planned =
            program_.WithPlan(pasm::ComputeMemoryPlan(program_, {}), &error);
        EXPECT_TRUE(planned.has_value()) << error;
        planned_ = std::move(*planned);
    }

    static std::vector<bool> InputBits(uint32_t a, uint32_t c) {
        std::vector<bool> in;
        for (int i = 0; i < 8; ++i) in.push_back((a >> i) & 1);
        for (int i = 0; i < 8; ++i) in.push_back((c >> i) & 1);
        return in;
    }

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> enc;
        enc.reserve(bits.size());
        for (bool b : bits)
            enc.push_back(tfhe::LweEncryptDigit(b ? 1 : 0, 16,
                                                params_.lwe_noise_stddev,
                                                secret_.lwe_key, rng_));
        return enc;
    }

    std::vector<bool> Decrypt(const std::vector<tfhe::LweSample>& cts) {
        std::vector<bool> out;
        for (const auto& c : cts) {
            const int32_t d = tfhe::LweDecryptDigit(c, secret_.lwe_key, 16);
            EXPECT_TRUE(d == 0 || d == 1) << "outputs are 1-bit digits";
            out.push_back(d != 0);
        }
        return out;
    }

    tfhe::Params params_;
    tfhe::Rng rng_;
    tfhe::SecretKeySet secret_;
    tfhe::GateEvaluator gates_;
    circuit::Netlist netlist_;
    pasm::Program program_;
    pasm::Program planned_;
};

TEST_F(MultibitExecTest, PlainEvaluatorInterpretsLutDigits) {
    PlainEvaluator plain;
    for (uint32_t t = 0; t < 32; ++t) {
        const std::vector<bool> in =
            InputBits((t * 37u + 5u) & 0xFF, (t * 101u + 9u) & 0xFF);
        EXPECT_EQ(Execute(program_, plain, in), netlist_.EvaluatePlain(in))
            << "t=" << t;
    }
}

TEST_F(MultibitExecTest, CountingEvaluatorChargesOneBootstrapPerLut) {
    CountingEvaluator counting;
    const std::vector<bool> in = InputBits(0x5A, 0xC3);
    const std::vector<uint8_t> cin(in.begin(), in.end());
    const auto out = Execute(program_, counting, cin);
    EXPECT_EQ(counting.Total(), program_.NumGates());
    EXPECT_EQ(counting.CountOf(circuit::GateType::kLut), program_.NumGates());
    std::vector<bool> bits;
    for (uint8_t v : out) bits.push_back(v != 0);
    EXPECT_EQ(bits, netlist_.EvaluatePlain(in));
}

TEST_F(MultibitExecTest, EncryptedAcrossEveryBackendConfiguration) {
    TfheEvaluator eval(gates_);
    struct Config {
        const char* name;
        bool planned;
        ExecOptions opts;
    };
    ExecOptions seq;
    ExecOptions dep4;
    dep4.num_threads = 4;
    ExecOptions wave3;
    wave3.num_threads = 3;
    wave3.mode = ExecMode::kWaveBarrier;
    ExecOptions batch4;
    batch4.num_threads = 2;
    batch4.batch_size = 4;
    ExecOptions batch8;
    batch8.num_threads = 4;
    batch8.batch_size = 8;
    const Config configs[] = {
        {"seq", false, seq},           {"dep4", false, dep4},
        {"wave3", false, wave3},       {"batch4", false, batch4},
        {"batch8", false, batch8},     {"seq+plan", true, seq},
        {"dep4+plan", true, dep4},     {"batch8+plan", true, batch8},
    };
    for (uint32_t trial = 0; trial < 2; ++trial) {
        const uint32_t a = (0x5Au + 31u * trial) & 0xFF;
        const uint32_t c = (0xC3u + 77u * trial) & 0xFF;
        const std::vector<bool> in = InputBits(a, c);
        const std::vector<bool> want = netlist_.EvaluatePlain(in);
        const auto enc = Encrypt(in);
        for (const Config& cfg : configs) {
            const pasm::Program& prog = cfg.planned ? planned_ : program_;
            const auto out = Execute(prog, eval, enc, cfg.opts);
            EXPECT_EQ(Decrypt(out), want)
                << cfg.name << " trial " << trial << " (a=" << a
                << " c=" << c << ")";
        }
    }
}

TEST_F(MultibitExecTest, LutGatesAreNotBatchFusable) {
    // Per-gate test vectors cannot share one sign-bootstrap batch kernel
    // call; the batch dispatcher must route LUT gates down the scalar
    // lane. Compile-time check on the dispatch predicate.
    EXPECT_FALSE(TfheEvaluator::Batchable(circuit::GateType::kLut));
    EXPECT_TRUE(circuit::NeedsBootstrap(circuit::GateType::kLut));
}

}  // namespace
}  // namespace pytfhe::backend
