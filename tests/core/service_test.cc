/**
 * @file
 * core::Service tests: the multi-tenant serving runtime end to end under
 * real (toy-parameter) encryption — tenant key registry, concurrent
 * submissions from many clients with bit-exact results, typed rejection
 * paths, and the redesigned Server::Run(RunOptions) API (deadline,
 * profiling, deprecated positional shim). Labeled `concurrency` for the
 * -DPYTFHE_SANITIZE=thread job.
 */
#include "core/service.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/compiler.h"
#include "hdl/word_ops.h"

namespace pytfhe::core {
namespace {

using hdl::Bits;
using hdl::Builder;
using hdl::DType;

circuit::Netlist AdderNetlist() {
    Builder b;
    const Bits x = hdl::InputBits(b, 8, "x");
    const Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    return std::move(b.netlist());
}

TEST(KeyId, StableAcrossEvaluationKeysDistinctAcrossClients) {
    Client alice(tfhe::ToyParams(), /*seed=*/21);
    Client bob(tfhe::ToyParams(), /*seed=*/22);
    ASSERT_TRUE(alice.key_id().IsSet());
    ASSERT_TRUE(bob.key_id().IsSet());
    EXPECT_NE(alice.key_id(), bob.key_id());

    // Every evaluation key a client produces carries the client's id,
    // even though bootstrapping-key generation draws fresh randomness.
    const auto key1 = alice.MakeEvaluationKey();
    const auto key2 = alice.MakeEvaluationKey();
    EXPECT_EQ(key1->key_id(), alice.key_id());
    EXPECT_EQ(key2->key_id(), alice.key_id());
    EXPECT_EQ(alice.MakeServer()->key_id(), alice.key_id());
    EXPECT_NE(key1->key_id().ToString(), bob.key_id().ToString());
}

TEST(Service, RegistryAcceptsTenantsAndRejectsUnknownKeys) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());

    Service service;
    Client alice(tfhe::ToyParams(), 31);
    Client bob(tfhe::ToyParams(), 32);
    const KeyId alice_id = service.RegisterTenant(alice.MakeEvaluationKey());
    EXPECT_EQ(alice_id, alice.key_id());
    // Re-registering the same id returns the same id and REPLACES the
    // stored key (key refresh) — the registry still holds one tenant.
    EXPECT_EQ(service.RegisterTenant(alice.MakeEvaluationKey()), alice_id);
    EXPECT_EQ(service.stats().tenants, 1u);

    EXPECT_THROW((void)service.RegisterTenant(nullptr),
                 std::invalid_argument);

    // Bob never registered: his submission is rejected by key identity
    // instead of being evaluated under Alice's key into garbage.
    const DType u8 = DType::UInt(8);
    EXPECT_THROW((void)service.Submit(bob.key_id(), compiled->program,
                                      bob.EncryptValues(u8, {1, 2})),
                 UnknownKeyError);
    EXPECT_THROW((void)service.Submit(KeyId{}, compiled->program,
                                      bob.EncryptValues(u8, {1, 2})),
                 UnknownKeyError);
}

TEST(Service, ReRegistrationReplacesStaleKey) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    Service service;
    Client alice(tfhe::ToyParams(), 33);
    const DType u8 = DType::UInt(8);
    const Ciphertexts in = alice.EncryptValues(u8, {20, 22});

    // MakeEvaluationKey draws fresh bootstrapping randomness each call, so
    // the two keys produce different (equally decryptable) ciphertexts —
    // which key the service evaluates under is observable bit-exactly.
    auto old_key = alice.MakeEvaluationKey();
    auto new_key = alice.MakeEvaluationKey();
    ASSERT_EQ(service.RegisterTenant(old_key), alice.key_id());
    ASSERT_EQ(service.RegisterTenant(new_key), alice.key_id());
    EXPECT_EQ(service.stats().tenants, 1u);

    backend::TfheEvaluator new_eval(*new_key);
    const Ciphertexts want = backend::RunProgram(*program, new_eval, in);
    JobHandle job = service.Submit(alice.key_id(), program, in);
    const Ciphertexts& got = job.Get();
    // The refreshed key — not the stale first registration — served this
    // job (this was silently try_emplace'd away before).
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].a, want[i].a) << "output " << i;
        EXPECT_EQ(got[i].b, want[i].b) << "output " << i;
    }
    EXPECT_EQ(alice.DecryptValue(u8, got), 42);
}

TEST(Service, TwoTenantsConcurrentJobsMatchSequentialServer) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    ServiceOptions opts;
    opts.serving.num_workers = 4;
    Service service(opts);

    Client alice(tfhe::ToyParams(), 41);
    Client bob(tfhe::ToyParams(), 42);
    // Keep handles on the registered keys: bit-identical ground truth must
    // evaluate under the *same* bootstrapping key the service holds (a
    // second MakeEvaluationKey call draws fresh key randomness and yields
    // different — though equally decryptable — ciphertexts).
    auto alice_key = alice.MakeEvaluationKey();
    auto bob_key = bob.MakeEvaluationKey();
    const KeyId alice_id = service.RegisterTenant(alice_key);
    const KeyId bob_id = service.RegisterTenant(bob_key);
    EXPECT_EQ(service.stats().tenants, 2u);

    struct Case {
        int a, b;
    };
    const std::vector<Case> cases{{3, 4}, {100, 55}, {200, 99}, {17, 240}};

    std::vector<std::string> failures(2);
    auto tenant_worker = [&](int which, Client& client, KeyId id,
                             tfhe::GateEvaluator& key) {
        const DType t = DType::UInt(8);
        backend::TfheEvaluator eval(key);
        for (const Case& c : cases) {
            Ciphertexts in = client.EncryptValues(
                t, {static_cast<double>(c.a), static_cast<double>(c.b)});
            const Ciphertexts want = backend::RunProgram(*program, eval, in);
            JobHandle job = service.Submit(id, program, in);
            if (job.Wait() != JobStatus::kDone) {
                failures[which] = "job not done";
                return;
            }
            // Bit-identical to the sequential single-tenant run, not just
            // equal after decryption.
            const Ciphertexts& got = job.Get();
            if (got.size() != want.size()) {
                failures[which] = "size mismatch";
                return;
            }
            for (size_t i = 0; i < got.size(); ++i) {
                if (got[i].a != want[i].a || got[i].b != want[i].b) {
                    failures[which] = "ciphertext mismatch at output " +
                                      std::to_string(i);
                    return;
                }
            }
            const double sum = client.DecryptValue(t, got);
            if (sum != (c.a + c.b) % 256) {
                failures[which] = "wrong sum " + std::to_string(sum);
                return;
            }
            if (job.Metrics().gates_executed != program->NumGates()) {
                failures[which] = "metrics gate count mismatch";
                return;
            }
        }
    };

    std::thread alice_thread(tenant_worker, 0, std::ref(alice), alice_id,
                             std::ref(*alice_key));
    std::thread bob_thread(tenant_worker, 1, std::ref(bob), bob_id,
                           std::ref(*bob_key));
    alice_thread.join();
    bob_thread.join();
    EXPECT_EQ(failures[0], "");
    EXPECT_EQ(failures[1], "");

    const Service::Stats stats = service.stats();
    EXPECT_EQ(stats.serving.jobs_submitted, 2 * cases.size());
    EXPECT_EQ(stats.serving.jobs_completed, 2 * cases.size());
    EXPECT_EQ(stats.serving.gates_executed,
              2 * cases.size() * program->NumGates());
}

TEST(Service, DeadlineResolvesJobDeadlineExceeded) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    Service service;
    Client client(tfhe::ToyParams(), 51);
    const KeyId id = service.RegisterTenant(client.MakeEvaluationKey());

    RunOptions options;
    options.deadline_seconds = 1e-9;  // Expires before admission.
    JobHandle job = service.Submit(id, compiled->program,
                                   client.EncryptValues(DType::UInt(8),
                                                        {9, 9}),
                                   options);
    EXPECT_EQ(job.Wait(), JobStatus::kDeadlineExceeded);
    EXPECT_THROW((void)job.Get(), backend::DeadlineExceededError);
}

TEST(Runtime, RunOptionsDeadlineThrowsTypedError) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    Client client(tfhe::ToyParams(), 52);
    auto server = client.MakeServer();
    const Ciphertexts in = client.EncryptValues(DType::UInt(8), {5, 6});

    RunOptions expired;
    expired.deadline_seconds = 1e-9;
    EXPECT_THROW((void)server->Run(compiled->program, in, expired),
                 backend::DeadlineExceededError);
    expired.num_threads = 4;
    EXPECT_THROW((void)server->Run(compiled->program, in, expired),
                 backend::DeadlineExceededError);

    RunOptions generous;
    generous.deadline_seconds = 3600.0;
    const auto out = server->Run(compiled->program, in, generous);
    EXPECT_EQ(client.DecryptValue(DType::UInt(8), out), 11);
}

TEST(Runtime, ProfileToggleRecordsPerRunDelta) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    Client client(tfhe::ToyParams(), 53);
    auto server = client.MakeServer();
    const Ciphertexts in = client.EncryptValues(DType::UInt(8), {1, 2});

    // Unprofiled runs leave last_run_profile untouched.
    (void)server->Run(compiled->program, in);
    EXPECT_EQ(server->last_run_profile().bootstrap_count, 0u);

    RunOptions profiled;
    profiled.profile = true;
    (void)server->Run(compiled->program, in, profiled);
    const auto first = server->last_run_profile();
    EXPECT_GT(first.bootstrap_count, 0u);
    EXPECT_GT(first.blind_rotate_seconds, 0.0);

    // The recorded profile is the per-run delta, not the cumulative total.
    (void)server->Run(compiled->program, in, profiled);
    EXPECT_EQ(server->last_run_profile().bootstrap_count,
              first.bootstrap_count);
    EXPECT_GT(server->profile().bootstrap_count(),
              first.bootstrap_count);
}

TEST(Runtime, DeprecatedPositionalRunStillWorks) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    Client client(tfhe::ToyParams(), 54);
    auto server = client.MakeServer();
    const Ciphertexts in = client.EncryptValues(DType::UInt(8), {30, 12});
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const Ciphertexts out = server->Run(compiled->program, in, 2);
#pragma GCC diagnostic pop
    EXPECT_EQ(client.DecryptValue(DType::UInt(8), out), 42);
}

}  // namespace
}  // namespace pytfhe::core
