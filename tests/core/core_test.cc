#include "core/compiler.h"
#include "core/runtime.h"

#include <gtest/gtest.h>

#include "hdl/word_ops.h"
#include "nn/models.h"

namespace pytfhe::core {
namespace {

using hdl::Bits;
using hdl::Builder;
using hdl::DType;

/** An 8-bit adder circuit over two encrypted operands. */
circuit::Netlist AdderNetlist() {
    Builder b;
    const Bits x = hdl::InputBits(b, 8, "x");
    const Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    return std::move(b.netlist());
}

TEST(Compiler, CompilesAdder) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    EXPECT_EQ(compiled->program.NumInputs(), 16u);
    EXPECT_EQ(compiled->program.OutputIndices().size(), 8u);
    EXPECT_GT(compiled->stats.num_gates, 0u);
    EXPECT_LE(compiled->stats.num_gates, 40u);
}

TEST(Compiler, OptimizationShrinksUnoptimizedInput) {
    // Build with every rewrite disabled, then let Compile clean it up.
    circuit::BuilderOptions raw;
    raw.fold_constants = false;
    raw.cse = false;
    raw.absorb_not = false;
    Builder b(raw);
    const Bits x = hdl::InputBits(b, 8, "x");
    const Bits zero = hdl::ConstBits(b, 0, 8);
    hdl::OutputBits(b, hdl::Add(b, x, zero), "sum");  // x + 0 == x.
    const uint64_t before = b.netlist().NumGates();
    auto compiled = Compile(b.netlist());
    ASSERT_TRUE(compiled.has_value());
    EXPECT_GT(before, 0u);
    EXPECT_EQ(compiled->stats.num_gates, 0u);  // Fully folded.
    EXPECT_EQ(compiled->opt_stats.gates_before, before);
}

TEST(Compiler, CompileModuleProducesRunnableProgram) {
    nn::Linear lin(4, 2);
    lin.InitRandom(5);
    auto compiled = CompileModule(lin, DType::Fixed(6, 4), {4});
    ASSERT_TRUE(compiled.has_value());
    EXPECT_EQ(compiled->program.NumInputs(), 4u * 10u);
    EXPECT_EQ(compiled->program.OutputIndices().size(), 2u * 10u);
}

TEST(Compiler, ReportsErrorsForInvalidNetlists) {
    circuit::Netlist n;
    n.AddOutput(circuit::kConstTrue);  // Constant output: unrepresentable.
    std::string error;
    EXPECT_FALSE(Compile(n, {}, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(Runtime, ClientServerEncryptedAddition) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());

    Client client(tfhe::ToyParams(), /*seed=*/7);
    auto server = client.MakeServer();

    const DType u8 = DType::UInt(8);
    for (auto [a, b] : {std::pair<int, int>{3, 4}, {100, 55}, {200, 99}}) {
        Ciphertexts in = client.EncryptValue(u8, a);
        Ciphertexts in2 = client.EncryptValue(u8, b);
        in.insert(in.end(), in2.begin(), in2.end());
        const Ciphertexts out = server->Run(compiled->program, in);
        EXPECT_EQ(client.DecryptValue(u8, out), (a + b) % 256) << a;
    }
}

TEST(Runtime, ThreadedServerMatchesSequential) {
    auto compiled = Compile(AdderNetlist());
    Client client(tfhe::ToyParams(), 8);
    auto server = client.MakeServer();
    const DType u8 = DType::UInt(8);
    Ciphertexts in = client.EncryptValues(u8, {77, 11});
    EXPECT_EQ(client.DecryptBits(server->Run(compiled->program, in,
                                             RunOptions{.num_threads = 1})),
              client.DecryptBits(server->Run(compiled->program, in,
                                             RunOptions{.num_threads = 4})));
}

TEST(Runtime, EncryptDecryptValuesRoundTrip) {
    Client client(tfhe::ToyParams(), 9);
    const DType f = DType::Fixed(6, 4);
    const std::vector<double> vals{1.25, -2.5, 0.0625, 3.0};
    EXPECT_EQ(client.DecryptValues(f, client.EncryptValues(f, vals)), vals);
}

TEST(Runtime, ServerProfilesBootstraps) {
    auto compiled = Compile(AdderNetlist());
    Client client(tfhe::ToyParams(), 10);
    auto server = client.MakeServer();
    (void)server->Run(compiled->program,
                      client.EncryptValues(DType::UInt(8), {1, 2}));
    EXPECT_GT(server->profile().bootstrap_count(), 0u);
    EXPECT_GT(server->profile().blind_rotate_seconds(), 0.0);
}

TEST(Runtime, EndToEndTinyMnistEncrypted) {
    // The flagship path: ChiselTorch model -> binary -> encrypted
    // inference on the server -> decrypted logits match the plaintext
    // reference bit for bit (toy parameters keep this fast).
    nn::MnistConfig cfg;
    cfg.image = 5;  // 5x5 image: conv->3x3, pool->1x1, linear(1x,10).
    auto model = nn::MnistS(cfg);
    const DType t = DType::Fixed(5, 3);
    auto compiled = CompileModule(*model, t, nn::MnistInputShape(cfg));
    ASSERT_TRUE(compiled.has_value());

    Client client(tfhe::ToyParams(), 11);
    auto server = client.MakeServer();

    std::vector<double> image(25);
    for (size_t i = 0; i < image.size(); ++i)
        image[i] = t.Quantize(((i * 37) % 16) / 8.0 - 1.0);

    const Ciphertexts out =
        server->Run(compiled->program, client.EncryptValues(t, image),
                    RunOptions{.num_threads = 2});
    const std::vector<double> logits = client.DecryptValues(t, out);

    // Plaintext execution of the same binary is the ground truth.
    backend::PlainEvaluator plain;
    std::vector<bool> bits;
    for (double v : image) {
        const auto e = t.Encode(v);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    const auto plain_out =
        backend::RunProgram(compiled->program, plain, bits);
    ASSERT_EQ(plain_out.size(), logits.size() * t.TotalBits());
    for (size_t i = 0; i < logits.size(); ++i) {
        std::vector<bool> word(plain_out.begin() + i * t.TotalBits(),
                               plain_out.begin() + (i + 1) * t.TotalBits());
        EXPECT_EQ(logits[i], t.Decode(word)) << i;
    }
}

}  // namespace
}  // namespace pytfhe::core
