/**
 * @file
 * Key-cache economics tests: byte-capacity LRU over real (toy-parameter)
 * tenant evaluation keys, shared_ptr pinning across eviction, lazy reload
 * from CRC32C evaluation-key artifacts, corrupt-artifact containment, and
 * the Service-level eviction story under concurrent submissions. Labeled
 * `concurrency` (TSan job) and `robustness` (fault-tolerance story).
 */
#include "core/key_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/service.h"
#include "hdl/word_ops.h"
#include "tfhe/serialization.h"

namespace pytfhe::core {
namespace {

using hdl::Bits;
using hdl::Builder;
using hdl::DType;

circuit::Netlist AdderNetlist() {
    Builder b;
    const Bits x = hdl::InputBits(b, 8, "x");
    const Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    return std::move(b.netlist());
}

std::shared_ptr<tfhe::GateEvaluator> MakeKey(int seed) {
    Client client(tfhe::ToyParams(), seed);
    return client.MakeEvaluationKey();
}

/** Writes `gates`' key as an evaluation-key artifact; returns the path. */
std::string SaveArtifact(const tfhe::GateEvaluator& gates,
                         const std::string& tag) {
    const std::string path = "key_cache_test_" + tag + ".ekey";
    std::ofstream os(path, std::ios::binary);
    tfhe::SaveEvaluationKey(os, gates.key(), gates.key_id());
    return path;
}

struct ArtifactCleaner {
    std::vector<std::string> paths;
    ~ArtifactCleaner() {
        for (const auto& p : paths) std::remove(p.c_str());
    }
};

TEST(KeyCache, ByteLruEvictsLeastRecentlyUsedTenant) {
    auto k1 = MakeKey(101);
    auto k2 = MakeKey(102);
    auto k3 = MakeKey(103);
    const uint64_t bytes = EvaluationKeyBytes(*k1);
    ASSERT_GT(bytes, 0u);

    TenantKeyCache cache(2 * bytes);
    cache.Put(k1);
    cache.Put(k2);
    EXPECT_EQ(cache.stats().resident_keys, 2u);
    EXPECT_EQ(cache.stats().resident_bytes, 2 * bytes);

    // Touch k1 so k2 is the LRU victim when k3 arrives.
    EXPECT_NE(cache.Get(k1->key_id()), nullptr);
    cache.Put(k3);

    const KeyCacheStats stats = cache.stats();
    EXPECT_EQ(stats.resident_keys, 2u);
    EXPECT_EQ(stats.resident_bytes, 2 * bytes);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.peak_resident_bytes, 2 * bytes);
    EXPECT_NE(cache.Get(k1->key_id()), nullptr);
    EXPECT_NE(cache.Get(k3->key_id()), nullptr);
    // k2 had no KeySource: once evicted it is unknown, not reloadable.
    EXPECT_EQ(cache.Get(k2->key_id()), nullptr);
    EXPECT_FALSE(cache.Known(k2->key_id()));
}

TEST(KeyCache, PinKeepsEvictedKeyMaterialAlive) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    Client client(tfhe::ToyParams(), 111);
    auto key = client.MakeEvaluationKey();
    const uint64_t bytes = EvaluationKeyBytes(*key);

    TenantKeyCache cache(bytes);
    std::shared_ptr<TenantEntry> pin = cache.Put(key);
    ASSERT_NE(pin, nullptr);
    ASSERT_TRUE(cache.Evict(key->key_id()));
    EXPECT_EQ(cache.stats().resident_bytes, 0u);
    // The evicted-but-pinned bytes are accounted, not hidden.
    EXPECT_EQ(cache.stats().pinned_evicted_bytes, bytes);

    // The pinned evaluator still runs a real encrypted program.
    const Ciphertexts in =
        client.EncryptValues(DType::UInt(8), {19, 23});
    const Ciphertexts out =
        backend::RunProgram(compiled->program, pin->evaluator, in);
    EXPECT_EQ(client.DecryptValue(DType::UInt(8), out), 42);

    pin.reset();
    EXPECT_EQ(cache.stats().pinned_evicted_bytes, 0u);
}

TEST(KeyCache, SingleKeyOverCapacityStaysUsableThroughReturnedPin) {
    auto key = MakeKey(121);
    const uint64_t bytes = EvaluationKeyBytes(*key);
    TenantKeyCache cache(bytes / 2);  // Nothing fits.
    std::shared_ptr<TenantEntry> pin = cache.Put(key);
    ASSERT_NE(pin, nullptr);
    // The resident guarantee is strict: the oversized key was evicted
    // immediately, the caller's pin is the only live reference.
    EXPECT_EQ(cache.stats().resident_bytes, 0u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(pin->gates->key_id(), key->key_id());
}

TEST(KeyCache, FileSourceReloadRoundTrip) {
    auto key = MakeKey(131);
    ArtifactCleaner cleaner;
    cleaner.paths.push_back(SaveArtifact(*key, "roundtrip"));

    TenantKeyCache cache(/*capacity_bytes=*/0);
    cache.PutSource(key->key_id(), FileKeySource(cleaner.paths[0]));
    EXPECT_TRUE(cache.Known(key->key_id()));
    EXPECT_EQ(cache.stats().resident_keys, 0u);  // Lazy: nothing loaded.

    std::shared_ptr<TenantEntry> entry = cache.Get(key->key_id());
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->gates->key_id(), key->key_id());
    KeyCacheStats stats = cache.stats();
    EXPECT_EQ(stats.reloads, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GT(stats.reload_seconds, 0.0);

    // Resident now: the next Get is a hit, no second load.
    EXPECT_EQ(cache.Get(key->key_id()), entry);
    EXPECT_EQ(cache.stats().reloads, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);

    // Eviction keeps the source: the tenant reloads, same identity.
    ASSERT_TRUE(cache.Evict(key->key_id()));
    std::shared_ptr<TenantEntry> again = cache.Get(key->key_id());
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->gates->key_id(), key->key_id());
    EXPECT_EQ(cache.stats().reloads, 2u);
}

TEST(KeyCache, MissingArtifactThrowsCorruptPayloadError) {
    auto key = MakeKey(141);
    TenantKeyCache cache(0);
    cache.PutSource(key->key_id(),
                    FileKeySource("key_cache_test_nonexistent.ekey"));
    EXPECT_THROW((void)cache.Get(key->key_id()),
                 tfhe::CorruptPayloadError);
    EXPECT_EQ(cache.stats().reload_failures, 1u);
    // The slot is not poisoned: a later Get retries the source.
    EXPECT_THROW((void)cache.Get(key->key_id()),
                 tfhe::CorruptPayloadError);
    EXPECT_EQ(cache.stats().reload_failures, 2u);
}

TEST(KeyCache, SourceReturningWrongKeyIsRejected) {
    auto key = MakeKey(151);
    auto impostor = MakeKey(152);
    ArtifactCleaner cleaner;
    cleaner.paths.push_back(SaveArtifact(*impostor, "impostor"));
    TenantKeyCache cache(0);
    // Registered under `key`'s id but the artifact holds impostor's key:
    // the cache must refuse to serve the wrong key material.
    cache.PutSource(key->key_id(), FileKeySource(cleaner.paths[0]));
    EXPECT_THROW((void)cache.Get(key->key_id()),
                 tfhe::CorruptPayloadError);
}

TEST(ServiceKeyCache, EvictedTenantReloadsLazilyAndBitExact) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    Client alice(tfhe::ToyParams(), 201);
    Client bob(tfhe::ToyParams(), 202);
    auto alice_key = alice.MakeEvaluationKey();
    auto bob_key = bob.MakeEvaluationKey();
    ArtifactCleaner cleaner;
    cleaner.paths.push_back(SaveArtifact(*alice_key, "alice"));
    cleaner.paths.push_back(SaveArtifact(*bob_key, "bob"));

    // Capacity for ONE key: alternating tenants evict each other.
    ServiceOptions opts;
    opts.key_cache_capacity_bytes = EvaluationKeyBytes(*alice_key);
    Service service(opts);
    service.RegisterTenantSource(alice_key->key_id(),
                                 FileKeySource(cleaner.paths[0]));
    service.RegisterTenantSource(bob_key->key_id(),
                                 FileKeySource(cleaner.paths[1]));
    EXPECT_EQ(service.stats().tenants, 2u);

    const DType u8 = DType::UInt(8);
    backend::TfheEvaluator alice_eval(*alice_key);
    backend::TfheEvaluator bob_eval(*bob_key);
    for (int round = 0; round < 2; ++round) {
        for (auto* side : {&alice, &bob}) {
            Client& client = *side;
            backend::TfheEvaluator& eval =
                side == &alice ? alice_eval : bob_eval;
            const Ciphertexts in = client.EncryptValues(u8, {100, 28});
            const Ciphertexts want =
                backend::RunProgram(*program, eval, in);
            JobHandle job = service.Submit(client.key_id(), program, in);
            const Ciphertexts& got = job.Get();
            ASSERT_EQ(got.size(), want.size());
            for (size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(got[i].a, want[i].a);
                ASSERT_EQ(got[i].b, want[i].b);
            }
            EXPECT_EQ(client.DecryptValue(u8, got), 128);
        }
    }

    const KeyCacheStats stats = service.stats().key_cache;
    EXPECT_LE(stats.peak_resident_bytes, opts.key_cache_capacity_bytes);
    EXPECT_GE(stats.reloads, 3u);    // First loads + reload after evict.
    EXPECT_GE(stats.evictions, 2u);  // Each tenant evicted the other.
}

TEST(ServiceKeyCache, CorruptArtifactFailsJobNotPool) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    Client healthy(tfhe::ToyParams(), 211);
    Client doomed(tfhe::ToyParams(), 212);
    auto healthy_key = healthy.MakeEvaluationKey();
    auto doomed_key = doomed.MakeEvaluationKey();
    ArtifactCleaner cleaner;
    cleaner.paths.push_back(SaveArtifact(*doomed_key, "doomed"));
    {
        // Flip one byte mid-body: the CRC32C frame must catch it.
        std::fstream f(cleaner.paths[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(600, std::ios::beg);
        char byte = 0;
        f.seekg(600, std::ios::beg);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(600, std::ios::beg);
        f.write(&byte, 1);
    }

    Service service;
    service.RegisterTenant(healthy_key);
    service.RegisterTenantSource(doomed_key->key_id(),
                                 FileKeySource(cleaner.paths[0]));

    const DType u8 = DType::UInt(8);
    const Ciphertexts doomed_in = doomed.EncryptValues(u8, {1, 2});
    JobHandle failed =
        service.Submit(doomed.key_id(), program, doomed_in);
    // The reload failure surfaces as a failed job with the TYPED error,
    // not as a crashed pool or an anonymous unknown-key rejection.
    EXPECT_EQ(failed.Wait(), JobStatus::kFailed);
    ASSERT_TRUE(failed.TryGet().has_value());
    EXPECT_EQ(*failed.TryGet(), JobStatus::kFailed);
    EXPECT_THROW((void)failed.Get(), tfhe::CorruptPayloadError);
    EXPECT_FALSE(failed.Error().has_value());
    EXPECT_FALSE(failed.Cancel());
    EXPECT_GE(service.stats().key_cache.reload_failures, 1u);

    // The pool is alive and the healthy tenant unaffected.
    const Ciphertexts in = healthy.EncryptValues(u8, {30, 12});
    JobHandle ok = service.Submit(healthy.key_id(), program, in);
    EXPECT_EQ(ok.Wait(), JobStatus::kDone);
    EXPECT_EQ(healthy.DecryptValue(u8, ok.Get()), 42);
}

TEST(ServiceKeyCache, EvictTenantMidRunJobsFinishBitExact) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    ServiceOptions opts;
    opts.serving.num_workers = 2;
    Service service(opts);
    Client client(tfhe::ToyParams(), 221);
    auto key = client.MakeEvaluationKey();
    service.RegisterTenant(key);

    const DType u8 = DType::UInt(8);
    backend::TfheEvaluator eval(*key);
    const Ciphertexts in = client.EncryptValues(u8, {17, 25});
    const Ciphertexts want = backend::RunProgram(*program, eval, in);

    // Pile up jobs, then yank the tenant's residency while they run. The
    // pre-cache Service dereferenced a registry pointer after unlocking —
    // this is the use-after-free regression test: every in-flight job
    // pinned the entry and must finish bit-exact.
    std::vector<JobHandle> jobs;
    for (int j = 0; j < 8; ++j)
        jobs.push_back(service.Submit(client.key_id(), program, in));
    EXPECT_TRUE(service.EvictTenant(client.key_id()));

    for (JobHandle& job : jobs) {
        ASSERT_EQ(job.Wait(), JobStatus::kDone);
        const Ciphertexts& got = job.Get();
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i].a, want[i].a);
            ASSERT_EQ(got[i].b, want[i].b);
        }
    }
    // No KeySource was registered: the evicted tenant is unknown now.
    EXPECT_THROW(
        (void)service.Submit(client.key_id(), program, in),
        UnknownKeyError);
}

TEST(ServiceKeyCache, ConcurrentSubmitsUnderEvictionPressure) {
    auto compiled = Compile(AdderNetlist());
    ASSERT_TRUE(compiled.has_value());
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    constexpr int kTenants = 4;
    std::vector<std::unique_ptr<Client>> clients;
    std::vector<std::shared_ptr<tfhe::GateEvaluator>> keys;
    ArtifactCleaner cleaner;
    for (int t = 0; t < kTenants; ++t) {
        clients.push_back(std::make_unique<Client>(tfhe::ToyParams(),
                                                   231 + t));
        keys.push_back(clients.back()->MakeEvaluationKey());
        cleaner.paths.push_back(
            SaveArtifact(*keys.back(), "stress" + std::to_string(t)));
    }

    // Working set of 4 keys over a 2-key cache: constant eviction and
    // reload while 4 client threads submit concurrently.
    ServiceOptions opts;
    opts.serving.num_workers = 4;
    opts.key_cache_capacity_bytes = 2 * EvaluationKeyBytes(*keys[0]);
    Service service(opts);
    for (int t = 0; t < kTenants; ++t)
        service.RegisterTenantSource(keys[t]->key_id(),
                                     FileKeySource(cleaner.paths[t]));

    const DType u8 = DType::UInt(8);
    std::vector<std::string> failures(kTenants);
    std::vector<std::thread> threads;
    for (int t = 0; t < kTenants; ++t) {
        threads.emplace_back([&, t] {
            backend::TfheEvaluator eval(*keys[t]);
            for (int j = 0; j < 4; ++j) {
                const int a = 10 * t + j;
                const int b = 7 * j + 1;
                const Ciphertexts in = clients[t]->EncryptValues(
                    u8, {static_cast<double>(a),
                         static_cast<double>(b)});
                const Ciphertexts want =
                    backend::RunProgram(*program, eval, in);
                JobHandle job =
                    service.Submit(keys[t]->key_id(), program, in);
                if (job.Wait() != JobStatus::kDone) {
                    failures[t] = "job not done";
                    return;
                }
                const Ciphertexts& got = job.Get();
                if (got.size() != want.size()) {
                    failures[t] = "size mismatch";
                    return;
                }
                for (size_t i = 0; i < got.size(); ++i)
                    if (got[i].a != want[i].a || got[i].b != want[i].b) {
                        failures[t] = "ciphertext mismatch";
                        return;
                    }
                if (clients[t]->DecryptValue(u8, got) != (a + b) % 256) {
                    failures[t] = "wrong sum";
                    return;
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kTenants; ++t) EXPECT_EQ(failures[t], "");

    const KeyCacheStats stats = service.stats().key_cache;
    EXPECT_LE(stats.peak_resident_bytes, opts.key_cache_capacity_bytes);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.reloads, 0u);
    EXPECT_EQ(service.stats().serving.jobs_completed, 4u * kTenants);
}

}  // namespace
}  // namespace pytfhe::core
