/**
 * @file
 * CompileOptions::multibit end to end: boolean sources lower to LUT
 * programs when the parameter set carries them, fall back (recorded, not
 * fatal) when it cannot, and refuse invalid configurations with typed
 * errors; Client::EncryptBitsFor / DecryptBitsFor speak the digit
 * encoding a v4 program expects, so the client/server protocol works
 * unchanged over multibit programs.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/runtime.h"
#include "hdl/word_ops.h"
#include "tfhe/params.h"

namespace pytfhe::core {
namespace {

circuit::Netlist Adder8() {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    return b.netlist();
}

TEST(MultibitCompile, LowersBooleanSourcesToLutPrograms) {
    CompileOptions options;
    options.params = tfhe::ToyMultibitParams();
    options.multibit = 16;
    std::string error;
    const auto compiled = Compile(Adder8(), options, &error);
    ASSERT_TRUE(compiled.has_value()) << error;
    EXPECT_FALSE(compiled->multibit_fell_back);
    EXPECT_EQ(compiled->program.MessageModulus(), 16);
    EXPECT_EQ(compiled->program.FormatVersion(), 4u);
    EXPECT_GT(compiled->lut_stats.luts, 0u);
    EXPECT_GT(compiled->lut_stats.merged_gates, 0u)
        << "cone merging found nothing to absorb in an adder";

    // Fewer bootstraps than the boolean baseline, same plain semantics.
    CompileOptions boolean_options;
    boolean_options.params = tfhe::ToyMultibitParams();
    boolean_options.elision.enabled = false;
    const auto boolean = Compile(Adder8(), boolean_options, &error);
    ASSERT_TRUE(boolean.has_value()) << error;
    EXPECT_LT(compiled->lut_stats.luts, boolean->stats.num_bootstrap_gates);
    const circuit::Netlist reference = Adder8();
    for (uint32_t t = 0; t < 32; ++t) {
        std::vector<bool> in(16);
        for (int i = 0; i < 16; ++i) in[i] = ((t * 2654435761u) >> i) & 1;
        EXPECT_EQ(pasm::ToNetlist(compiled->program).EvaluatePlain(in),
                  reference.EvaluatePlain(in))
            << "t=" << t;
    }
}

TEST(MultibitCompile, FallsBackWhenParamsCannotCarryLuts) {
    // tfhe-128's noise budget cannot hold a p=16 weighted sum: the
    // compile must succeed as boolean and say so, not fail or emit a
    // program that decrypts garbage.
    CompileOptions options;
    options.params = tfhe::Tfhe128Params();
    options.multibit = 16;
    std::string error;
    const auto compiled = Compile(Adder8(), options, &error);
    ASSERT_TRUE(compiled.has_value()) << error;
    EXPECT_TRUE(compiled->multibit_fell_back);
    EXPECT_EQ(compiled->program.MessageModulus(), 0);
    EXPECT_EQ(compiled->lut_stats.luts, 0u);
}

TEST(MultibitCompile, TypedConfigurationErrors) {
    std::string error;
    CompileOptions bad_modulus;
    bad_modulus.params = tfhe::ToyMultibitParams();
    bad_modulus.multibit = 3;
    EXPECT_FALSE(Compile(Adder8(), bad_modulus, &error).has_value());
    EXPECT_NE(error.find("multibit"), std::string::npos) << error;

    CompileOptions no_params;
    no_params.multibit = 16;
    error.clear();
    EXPECT_FALSE(Compile(Adder8(), no_params, &error).has_value());
    EXPECT_NE(error.find("params"), std::string::npos) << error;
}

TEST(MultibitRuntime, ClientServerProtocolOverLutPrograms) {
    CompileOptions options;
    options.params = tfhe::ToyMultibitParams();
    options.multibit = 16;
    std::string error;
    const auto compiled = Compile(Adder8(), options, &error);
    ASSERT_TRUE(compiled.has_value()) << error;
    ASSERT_EQ(compiled->program.MessageModulus(), 16);

    Client client(tfhe::ToyMultibitParams());
    const auto server = client.MakeServer();
    const circuit::Netlist reference = Adder8();
    for (uint32_t trial = 0; trial < 2; ++trial) {
        std::vector<bool> in(16);
        for (int i = 0; i < 16; ++i)
            in[i] = ((trial * 0x9E3779B9u + 0x55u) >> i) & 1;
        const auto enc = client.EncryptBitsFor(compiled->program, in);
        const auto out = server->Run(compiled->program, enc);
        EXPECT_EQ(client.DecryptBitsFor(compiled->program, out),
                  reference.EvaluatePlain(in))
            << "trial " << trial;
    }
}

TEST(MultibitRuntime, ProgramAwareHelpersMatchBooleanPathOnV3Programs) {
    // On a boolean program the *For helpers must be byte-compatible with
    // the classic ones: same rng stream, same samples, same decryptions.
    CompileOptions options;
    options.params = tfhe::ToyParams();
    std::string error;
    const auto compiled = Compile(Adder8(), options, &error);
    ASSERT_TRUE(compiled.has_value()) << error;
    ASSERT_EQ(compiled->program.MessageModulus(), 0);
    Client client(tfhe::ToyParams());
    const std::vector<bool> bits = {true, false, true, true,
                                    false, false, true, false,
                                    true, true, false, true,
                                    false, true, false, false};
    const auto enc = client.EncryptBitsFor(compiled->program, bits);
    EXPECT_EQ(client.DecryptBitsFor(compiled->program, enc), bits);
    EXPECT_EQ(client.DecryptBits(enc), bits)
        << "boolean programs keep the sign encoding";
}

}  // namespace
}  // namespace pytfhe::core
