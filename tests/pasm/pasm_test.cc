#include "pasm/assembler.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "circuit/opt/passes.h"

namespace pytfhe::pasm {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist HalfAdder() {
    Netlist n;
    const NodeId a = n.AddInput("A");
    const NodeId b = n.AddInput("B");
    n.AddOutput(n.AddGate(GateType::kXor, a, b), "Sum");
    n.AddOutput(n.AddGate(GateType::kAnd, a, b), "Carry");
    return n;
}

TEST(InstructionTest, FieldRoundTrip) {
    const Instruction g =
        Instruction::MakeGate(GateType::kXor, UINT64_C(0x123456789AB),
                              UINT64_C(0x3FFFFFFFFFFFFFE) /* large */);
    EXPECT_EQ(g.TypeField(), 6);
    EXPECT_EQ(g.Input0(), UINT64_C(0x123456789AB));
    EXPECT_EQ(g.Input1(), UINT64_C(0x3FFFFFFFFFFFFFE));
}

TEST(InstructionTest, MaximumIndexSurvives) {
    const Instruction g =
        Instruction::MakeGate(GateType::kAnd, kMaxIndex, kMaxIndex);
    EXPECT_EQ(g.Input0(), kMaxIndex);
    EXPECT_EQ(g.Input1(), kMaxIndex);
}

TEST(InstructionTest, KindsClassifyCorrectly) {
    EXPECT_EQ(Instruction::MakeHeader(7).Kind(0), InstructionKind::kHeader);
    EXPECT_EQ(Instruction::MakeInput().Kind(1), InstructionKind::kInput);
    EXPECT_EQ(Instruction::MakeGate(GateType::kOr, 1, 2).Kind(3),
              InstructionKind::kGate);
    EXPECT_EQ(Instruction::MakeOutput(3).Kind(5), InstructionKind::kOutput);
}

TEST(InstructionTest, InputInstructionIsAllOnes) {
    // Fig. 5: input instructions have every field set to all ones.
    const Instruction i = Instruction::MakeInput();
    EXPECT_EQ(i.Input0(), kIndexAllOnes);
    EXPECT_EQ(i.Input1(), kIndexAllOnes);
    EXPECT_EQ(i.TypeField(), 0xF);
}

TEST(AssemblerTest, HalfAdderMatchesPaperExample) {
    // Fig. 6: header(2 gates), inputs A=1 B=2, XOR@3(1,2), AND@4(1,2),
    // outputs referencing 3 and 4.
    auto p = Assemble(HalfAdder());
    ASSERT_TRUE(p.has_value());
    const auto& ins = p->Instructions();
    ASSERT_EQ(ins.size(), 7u);
    EXPECT_EQ(ins[0].Kind(0), InstructionKind::kHeader);
    EXPECT_EQ(ins[0].Input1(), 2u);  // Total gate count.
    EXPECT_EQ(ins[1].Kind(1), InstructionKind::kInput);
    EXPECT_EQ(ins[2].Kind(2), InstructionKind::kInput);
    EXPECT_EQ(ins[3].TypeField(), 6);  // XOR = 0110.
    EXPECT_EQ(ins[3].Input0(), 1u);
    EXPECT_EQ(ins[3].Input1(), 2u);
    EXPECT_EQ(ins[4].TypeField(), static_cast<int>(GateType::kAnd));
    EXPECT_EQ(ins[5].Kind(5), InstructionKind::kOutput);
    EXPECT_EQ(ins[5].Input1(), 3u);  // Sum <- XOR.
    EXPECT_EQ(ins[6].Input1(), 4u);  // Carry <- AND.
}

TEST(AssemblerTest, RejectsConstantReferences) {
    Netlist n;
    const NodeId a = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kOr, a, circuit::kConstTrue));
    std::string error;
    EXPECT_FALSE(Assemble(n, &error).has_value());
    EXPECT_NE(error.find("constants"), std::string::npos);
    // After optimization OR(a, 1) folds to constant true; the assembler
    // synthesizes it as XNOR(a, a) so the binary stays constant-free.
    auto opt = circuit::Optimize(n);
    auto p = Assemble(opt.netlist);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->NumGates(), 1u);
    Netlist back = ToNetlist(*p);
    EXPECT_TRUE(back.EvaluatePlain({false})[0]);
    EXPECT_TRUE(back.EvaluatePlain({true})[0]);
}

TEST(AssemblerTest, ConstantOutputsNeedAnInput) {
    Netlist n;
    n.AddOutput(circuit::kConstFalse);
    std::string error;
    EXPECT_FALSE(Assemble(n, &error).has_value());
    EXPECT_NE(error.find("input"), std::string::npos);
}

TEST(AssemblerTest, NetlistRoundTripPreservesSemantics) {
    std::mt19937_64 rng(99);
    Netlist n;
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(n.AddInput());
    for (int i = 0; i < 60; ++i) {
        GateType t = static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 3; ++i) n.AddOutput(pool[pool.size() - 1 - i]);

    auto p = Assemble(n);
    ASSERT_TRUE(p.has_value());
    Netlist back = ToNetlist(*p);
    for (int trial = 0; trial < 16; ++trial) {
        std::vector<bool> in(5);
        for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
        EXPECT_EQ(n.EvaluatePlain(in), back.EvaluatePlain(in));
    }
    // And assembling the reconstruction reproduces the same binary.
    auto p2 = Assemble(back);
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(p->Instructions(), p2->Instructions());
}

TEST(ProgramTest, SerializeDeserializeRoundTrip) {
    auto p = Assemble(HalfAdder());
    ASSERT_TRUE(p.has_value());
    std::stringstream ss;
    p->Serialize(ss);
    EXPECT_EQ(ss.str().size(), p->ByteSize());
    auto q = Program::Deserialize(ss);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(p->Instructions(), q->Instructions());
    EXPECT_EQ(q->NumInputs(), 2u);
    EXPECT_EQ(q->NumGates(), 2u);
    EXPECT_EQ(q->OutputIndices(), (std::vector<uint64_t>{3, 4}));
}

TEST(ProgramTest, RejectsTruncatedStream) {
    auto p = Assemble(HalfAdder());
    std::stringstream ss;
    p->Serialize(ss);
    std::string bytes = ss.str();
    bytes.pop_back();
    std::stringstream truncated(bytes);
    std::string error;
    EXPECT_FALSE(Program::Deserialize(truncated, &error).has_value());
    EXPECT_NE(error.find("multiple of 16"), std::string::npos);
}

TEST(ProgramTest, RejectsBadHeaderCount) {
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(5));  // Claims 5 gates.
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeGate(GateType::kAnd, 1, 1));
    std::string error;
    EXPECT_FALSE(Program::FromInstructions(ins, &error).has_value());
    EXPECT_NE(error.find("declares"), std::string::npos);
}

TEST(ProgramTest, RejectsForwardReference) {
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(1));
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeGate(GateType::kAnd, 1, 2));  // 2 == self.
    std::string error;
    EXPECT_FALSE(Program::FromInstructions(ins, &error).has_value());
    EXPECT_NE(error.find("invalid index"), std::string::npos);
}

TEST(ProgramTest, RejectsInputAfterGate) {
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(1));
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeGate(GateType::kAnd, 1, 1));
    ins.push_back(Instruction::MakeInput());
    EXPECT_FALSE(Program::FromInstructions(ins).has_value());
}

TEST(ProgramTest, RejectsEmptyProgram) {
    EXPECT_FALSE(Program::FromInstructions({}).has_value());
}

TEST(ProgramTest, FuzzedStreamsNeverCrash) {
    // Random byte blobs either parse into a valid program or fail with a
    // clean error — never crash or accept inconsistent structures.
    std::mt19937_64 prng(123);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t len = 16 * (prng() % 16);
        std::string blob(len, '\0');
        for (auto& c : blob) c = static_cast<char>(prng());
        std::stringstream ss(blob);
        std::string error;
        auto p = Program::Deserialize(ss, &error);
        if (p.has_value()) {
            // Accepted programs must be internally consistent.
            EXPECT_EQ(p->NumGates() + p->NumInputs() +
                          p->OutputIndices().size() + 1,
                      p->Instructions().size());
        } else {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(ProgramTest, DisassemblyMentionsEveryInstruction) {
    auto p = Assemble(HalfAdder());
    const std::string dis = p->Disassemble();
    EXPECT_NE(dis.find("HEADER gates=2"), std::string::npos);
    EXPECT_NE(dis.find("XOR 1, 2"), std::string::npos);
    EXPECT_NE(dis.find("OUTPUT <- 4"), std::string::npos);
}

TEST(ProgramTest, GateDependenciesOfHalfAdder) {
    // XOR@3(1,2) and AND@4(1,2) both read only program inputs: no gate
    // predecessors, no successors, both ready at start.
    auto p = Assemble(HalfAdder());
    const GateDependencies deps = p->BuildGateDependencies();
    EXPECT_EQ(deps.NumGates(), 2u);
    EXPECT_EQ(deps.first_gate, 3u);
    EXPECT_EQ(deps.pred_count, (std::vector<uint32_t>{0, 0}));
    EXPECT_EQ(deps.FanOut(3), 0u);
    EXPECT_EQ(deps.FanOut(4), 0u);
    EXPECT_EQ(deps.RootGates(), (std::vector<uint64_t>{3, 4}));
}

TEST(ProgramTest, GateDependenciesCountDuplicateOperands) {
    // g2 reads g1 through BOTH operands: pred_count 2 and g1's successor
    // list holds g2 twice, so ready-counting decrements stay balanced.
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId g1 = n.AddGate(GateType::kOr, a, a);
    const NodeId g2 = n.AddGate(GateType::kAnd, g1, g1);
    n.AddOutput(g2);
    auto p = Assemble(n);
    ASSERT_TRUE(p.has_value());
    const GateDependencies deps = p->BuildGateDependencies();
    ASSERT_EQ(deps.NumGates(), 2u);
    const uint64_t or_idx = deps.first_gate;
    const uint64_t and_idx = deps.first_gate + 1;
    EXPECT_EQ(deps.pred_count, (std::vector<uint32_t>{0, 2}));
    EXPECT_EQ(deps.FanOut(or_idx), 2u);
    const auto [s, e] = deps.SuccessorsOf(or_idx);
    ASSERT_EQ(e - s, 2);
    EXPECT_EQ(s[0], and_idx);
    EXPECT_EQ(s[1], and_idx);
    EXPECT_EQ(deps.RootGates(), (std::vector<uint64_t>{or_idx}));
}

TEST(ProgramTest, GateDependencyCountsMatchScheduleStructure) {
    // Over a random program: total decrements == total predecessor slots,
    // and the root set is exactly the gates reading only program inputs.
    std::mt19937_64 rng(99);
    Netlist n;
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(n.AddInput());
    for (int i = 0; i < 200; ++i) {
        GateType t = static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    n.AddOutput(pool.back());
    auto p = Assemble(n);
    ASSERT_TRUE(p.has_value());
    const GateDependencies deps = p->BuildGateDependencies();
    EXPECT_EQ(deps.NumGates(), p->NumGates());
    uint64_t total_preds = 0;
    for (uint32_t c : deps.pred_count) total_preds += c;
    EXPECT_EQ(total_preds, deps.successors.size());
    for (uint64_t idx : deps.RootGates()) {
        const DecodedGate g = p->GateAt(idx);
        EXPECT_LT(g.in0, p->FirstGateIndex());
        EXPECT_LT(g.in1, p->FirstGateIndex());
    }
}

TEST(ProgramTest, FileRoundTrip) {
    auto p = Assemble(HalfAdder());
    const std::string path = ::testing::TempDir() + "/half_adder.ptfhe";
    ASSERT_TRUE(p->SaveToFile(path));
    std::string error;
    auto q = Program::LoadFromFile(path, &error);
    ASSERT_TRUE(q.has_value()) << error;
    EXPECT_EQ(p->Instructions(), q->Instructions());
}

}  // namespace
}  // namespace pytfhe::pasm
