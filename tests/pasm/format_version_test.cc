#include <gtest/gtest.h>

#include <sstream>

#include "pasm/assembler.h"

namespace pytfhe::pasm {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

/** Netlist with an elided XOR chain: LXOR(a,b) -> LXOR(.,c) -> output. */
Netlist LinearChain() {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    const NodeId x = n.AddGate(GateType::kLinXor, a, b);
    n.AddOutput(n.AddGate(GateType::kLinXor, x, c));
    return n;
}

TEST(FormatVersionTest, LegacyProgramsStayByteIdenticalVersionZero) {
    // All-bootstrapped netlists must produce the pre-versioning binary:
    // header Input0 (the version field) zero, exactly as old writers
    // emitted it.
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kXor, a, b));
    auto p = Assemble(n);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->FormatVersion(), kFormatVersionLegacy);
    EXPECT_EQ(p->Instructions()[0], Instruction::MakeHeader(1));
}

TEST(FormatVersionTest, OldAllBootstrappedBinariesStillLoad) {
    // A binary assembled by a pre-versioning writer: header with Input0
    // hard-zero, only bootstrapped opcodes.
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(1));
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeGate(GateType::kNand, 1, 2));
    ins.push_back(Instruction::MakeOutput(3));
    std::string error;
    auto p = Program::FromInstructions(std::move(ins), &error);
    ASSERT_TRUE(p.has_value()) << error;
    EXPECT_EQ(p->FormatVersion(), kFormatVersionLegacy);
    EXPECT_EQ(p->NumGates(), 1u);
}

TEST(FormatVersionTest, LinearOpcodeRequiresVersionOne) {
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(1, kFormatVersionLegacy));
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeGate(GateType::kLinXor, 1, 2));
    ins.push_back(Instruction::MakeOutput(3));
    std::string error;
    EXPECT_FALSE(Program::FromInstructions(std::move(ins), &error));
    EXPECT_NE(error.find("format version"), std::string::npos) << error;
}

TEST(FormatVersionTest, UnknownFutureVersionRejected) {
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(0, kMaxFormatVersion + 1));
    std::string error;
    EXPECT_FALSE(Program::FromInstructions(std::move(ins), &error));
    EXPECT_NE(error.find("unsupported"), std::string::npos) << error;
}

TEST(FormatVersionTest, LinearNetlistAssemblesToVersionOne) {
    auto p = Assemble(LinearChain());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->FormatVersion(), kFormatVersionLinear);
    EXPECT_TRUE(p->ProducesLinearDomain(4));
    EXPECT_TRUE(p->ProducesLinearDomain(5));
    EXPECT_FALSE(p->ProducesLinearDomain(1));  // Input.
}

TEST(FormatVersionTest, LinearProgramRoundTripsThroughSerialization) {
    auto p = Assemble(LinearChain());
    ASSERT_TRUE(p.has_value());
    std::stringstream buf;
    p->Serialize(buf);
    std::string error;
    auto back = Program::Deserialize(buf, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->FormatVersion(), kFormatVersionLinear);
    EXPECT_EQ(back->Instructions(), p->Instructions());
    // And the decoded netlist preserves the linear gate types.
    const Netlist round = ToNetlist(*back);
    EXPECT_EQ(round.ComputeStats().num_linear_gates, 2u);
}

TEST(FormatVersionTest, DomainRuleViolationsRejected) {
    // AND consuming a linear-domain operand is never valid, even in v1.
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(2, kFormatVersionLinear));
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeInput());
    ins.push_back(Instruction::MakeGate(GateType::kLinXor, 1, 2));
    ins.push_back(Instruction::MakeGate(GateType::kAnd, 3, 2));
    ins.push_back(Instruction::MakeOutput(4));
    std::string error;
    EXPECT_FALSE(Program::FromInstructions(std::move(ins), &error));
    EXPECT_NE(error.find("operand-encoding"), std::string::npos) << error;
}

TEST(FormatVersionTest, LinNotDomainRulesEnforced) {
    // LNOT needs a linear operand; NOT needs a gate-domain operand.
    {
        std::vector<Instruction> ins;
        ins.push_back(Instruction::MakeHeader(1, kFormatVersionLinear));
        ins.push_back(Instruction::MakeInput());
        ins.push_back(Instruction::MakeGate(GateType::kLinNot, 1, 1));
        ins.push_back(Instruction::MakeOutput(2));
        EXPECT_FALSE(Program::FromInstructions(std::move(ins)));
    }
    {
        std::vector<Instruction> ins;
        ins.push_back(Instruction::MakeHeader(2, kFormatVersionLinear));
        ins.push_back(Instruction::MakeInput());
        ins.push_back(Instruction::MakeInput());
        ins.push_back(Instruction::MakeGate(GateType::kLinXor, 1, 2));
        ins.push_back(Instruction::MakeGate(GateType::kNot, 3, 3));
        ins.push_back(Instruction::MakeOutput(4));
        EXPECT_FALSE(Program::FromInstructions(std::move(ins)));
    }
}

TEST(FormatVersionTest, HeaderDisassemblyShowsVersion) {
    auto p = Assemble(LinearChain());
    ASSERT_TRUE(p.has_value());
    EXPECT_NE(p->Disassemble().find("version=1"), std::string::npos);
}

}  // namespace
}  // namespace pytfhe::pasm
