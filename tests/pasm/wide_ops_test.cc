/**
 * @file
 * Wide-gate IR tests across the whole path: Netlist wide groups and their
 * validation rules, SimplifyingBuilder::MakeWideGate under rewrites, hdl
 * word generators emitting wide groups, and the pasm v2 wide trailer
 * (encode, serialize round-trip, ToNetlist reconstruction, malformed
 * trailers, and byte-compatibility of programs without groups).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "backend/interpreter.h"
#include "circuit/builder.h"
#include "hdl/word_ops.h"
#include "pasm/assembler.h"

namespace pytfhe {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;
using pasm::Instruction;
using pasm::InstructionKind;

/** width independent AND gates with registered wide group. */
Netlist WideAndNetlist(int32_t width) {
    Netlist n;
    std::vector<NodeId> members;
    for (int32_t i = 0; i < width; ++i) {
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        members.push_back(n.AddGate(GateType::kAnd, a, b));
    }
    for (NodeId g : members) n.AddOutput(g);
    n.AddWideGroup(members);
    return n;
}

TEST(NetlistWide, ValidGroupPassesAndShowsInStats) {
    const Netlist n = WideAndNetlist(4);
    EXPECT_EQ(n.Validate(), std::nullopt);
    const auto stats = n.ComputeStats();
    EXPECT_EQ(stats.num_wide_groups, 1u);
    EXPECT_EQ(stats.num_wide_gates, 4u);
    EXPECT_NE(stats.ToString().find("wide_groups=1"), std::string::npos);
}

TEST(NetlistWide, RejectsMalformedGroups) {
    {
        Netlist n = WideAndNetlist(2);
        n.AddWideGroup({n.Inputs()[0]});  // Too small.
        EXPECT_NE(n.Validate(), std::nullopt);
    }
    {
        Netlist n;
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        const NodeId g0 = n.AddGate(GateType::kAnd, a, b);
        const NodeId g1 = n.AddGate(GateType::kOr, a, b);
        n.AddOutput(g0);
        n.AddOutput(g1);
        n.AddWideGroup({g0, g1});  // Mixed gate types.
        EXPECT_NE(n.Validate(), std::nullopt);
    }
    {
        Netlist n;
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        const NodeId g0 = n.AddGate(GateType::kAnd, a, b);
        const NodeId g1 = n.AddGate(GateType::kNot, g0, g0);
        n.AddOutput(g1);
        n.AddWideGroup({g1, g1});  // NOT is not bootstrapped; also repeated.
        EXPECT_NE(n.Validate(), std::nullopt);
    }
    {
        Netlist n = WideAndNetlist(3);
        // A gate may belong to at most one group.
        const auto& members = n.WideGroups()[0];
        n.AddWideGroup({members[0], members[1]});
        EXPECT_NE(n.Validate(), std::nullopt);
    }
    {
        Netlist n;
        const NodeId a = n.AddInput();
        const NodeId b = n.AddInput();
        const NodeId g0 = n.AddGate(GateType::kAnd, a, b);
        const NodeId g1 = n.AddGate(GateType::kAnd, g0, b);
        n.AddOutput(g1);
        n.AddWideGroup({g0, g1});  // g1 consumes g0: not co-schedulable.
        EXPECT_NE(n.Validate(), std::nullopt);
    }
}

TEST(BuilderWide, MakeWideGateGroupsFreshGatesAndSkipsRewrites) {
    circuit::SimplifyingBuilder b;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    for (int i = 0; i < 4; ++i)
        pairs.emplace_back(b.MakeInput(), b.MakeInput());
    // One pair constant-folds away, one duplicates pair 0 (CSE hit).
    pairs.emplace_back(pairs[0].first, b.MakeConst(false));
    pairs.push_back(pairs[0]);
    const auto results = b.MakeWideGate(GateType::kAnd, pairs);
    ASSERT_EQ(results.size(), 6u);
    EXPECT_EQ(results[4], circuit::kConstFalse);  // x AND 0 == 0.
    EXPECT_EQ(results[5], results[0]);            // Deduped.
    for (NodeId id : results) b.AddOutput(id);
    ASSERT_EQ(b.netlist().WideGroups().size(), 1u);
    EXPECT_EQ(b.netlist().WideGroups()[0].size(), 4u);
    EXPECT_EQ(b.netlist().Validate(), std::nullopt);

    // Re-batching the same pairs emits nothing fresh: no new group.
    (void)b.MakeWideGate(GateType::kAnd, pairs);
    EXPECT_EQ(b.netlist().WideGroups().size(), 1u);
}

TEST(BuilderWide, NotAbsorptionSplitsGroupByEmittedType) {
    circuit::SimplifyingBuilder b;
    const NodeId x0 = b.MakeInput();
    const NodeId x1 = b.MakeInput();
    const NodeId y0 = b.MakeInput();
    const NodeId y1 = b.MakeInput();
    const NodeId ny1 = b.MakeNot(y1);
    // Pair 1 rewrites to ANDYN(x1, y1): a different emitted type, so the
    // two fresh gates land in different (here: singleton, unregistered)
    // buckets rather than one mixed-type group.
    const auto results = b.MakeWideGate(
        GateType::kAnd, {{x0, y0}, {x1, ny1}});
    for (NodeId id : results) b.AddOutput(id);
    EXPECT_EQ(b.netlist().GetNode(results[1]).type, GateType::kAndYN);
    EXPECT_TRUE(b.netlist().WideGroups().empty());
    EXPECT_EQ(b.netlist().Validate(), std::nullopt);
}

TEST(HdlWide, BitwiseWordOpsEmitWideGroups) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::AndBits(b, x, y), "a");
    hdl::OutputBits(b, hdl::XorBits(b, x, y), "x");
    hdl::OutputBits(b, hdl::MaskBits(b, x, y[0]), "m");
    const auto stats = b.netlist().ComputeStats();
    EXPECT_EQ(stats.num_wide_groups, 3u);
    // 8 + 8 from AndBits/XorBits; MaskBits lane 0 CSE-dedups against
    // AndBits lane 0 (both AND(x[0], y[0])), leaving 7 fresh gates.
    EXPECT_EQ(stats.num_wide_gates, 23u);
    EXPECT_EQ(b.netlist().Validate(), std::nullopt);
    const auto p = pasm::Assemble(b.netlist());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->FormatVersion(), pasm::kFormatVersionWide);
    EXPECT_EQ(p->WideOps().size(), 3u);
}

TEST(PasmWide, AssembleRoundTripsOddSizedGroups) {
    const Netlist n = WideAndNetlist(3);  // Odd: final member record pads.
    std::string error;
    const auto p = pasm::Assemble(n, &error);
    ASSERT_TRUE(p.has_value()) << error;
    EXPECT_EQ(p->FormatVersion(), pasm::kFormatVersionWide);
    ASSERT_EQ(p->WideOps().size(), 1u);
    ASSERT_EQ(p->WideOps()[0].members.size(), 3u);
    // Members are gate instruction indices of AND gates.
    for (uint64_t idx : p->WideOps()[0].members) {
        EXPECT_GE(idx, p->FirstGateIndex());
        EXPECT_EQ(p->GateAt(idx).type, GateType::kAnd);
    }

    // Binary round-trip preserves the trailer bit-exactly.
    std::stringstream buf;
    p->Serialize(buf);
    const auto p2 = pasm::Program::Deserialize(buf, &error);
    ASSERT_TRUE(p2.has_value()) << error;
    EXPECT_EQ(p2->Instructions(), p->Instructions());
    ASSERT_EQ(p2->WideOps().size(), 1u);
    EXPECT_EQ(p2->WideOps()[0].members, p->WideOps()[0].members);

    // ToNetlist reconstructs the group and the netlist re-validates.
    const Netlist back = pasm::ToNetlist(*p);
    ASSERT_EQ(back.WideGroups().size(), 1u);
    EXPECT_EQ(back.WideGroups()[0].size(), 3u);
    EXPECT_EQ(back.Validate(), std::nullopt);

    EXPECT_NE(p->Disassemble().find("WIDE group of 3"), std::string::npos);
}

TEST(PasmWide, ProgramsWithoutGroupsKeepLegacyVersion) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kAnd, a, b));
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->FormatVersion(), pasm::kFormatVersionLegacy);
    EXPECT_TRUE(p->WideOps().empty());
}

TEST(PasmWide, WideTrailerExecutesIdenticallyToPlainEvaluation) {
    // Backends that ignore the trailer still execute the program; the
    // trailer is a hint, never a semantic change.
    const Netlist n = WideAndNetlist(4);
    const auto p = pasm::Assemble(n);
    ASSERT_TRUE(p.has_value());
    backend::PlainEvaluator eval;
    std::vector<bool> in;
    for (size_t i = 0; i < n.Inputs().size(); ++i) in.push_back(i % 3 != 1);
    EXPECT_EQ(backend::RunProgram(*p, eval, in), n.EvaluatePlain(in));
}

/** Hand-crafts instructions for a 2-input, 2-AND program plus trailer. */
std::vector<Instruction> TwoAndProgram(uint64_t version) {
    std::vector<Instruction> ins;
    ins.push_back(Instruction::MakeHeader(2, version));
    ins.push_back(Instruction::MakeInput());  // 1
    ins.push_back(Instruction::MakeInput());  // 2
    ins.push_back(Instruction::MakeGate(GateType::kAnd, 1, 2));  // 3
    ins.push_back(Instruction::MakeGate(GateType::kAnd, 2, 1));  // 4
    ins.push_back(Instruction::MakeOutput(3));
    ins.push_back(Instruction::MakeOutput(4));
    return ins;
}

TEST(PasmWide, RejectsMalformedTrailers) {
    std::string error;
    {
        // Wide records demand format version >= 2.
        auto ins = TwoAndProgram(pasm::kFormatVersionLinear);
        ins.push_back(Instruction::MakeWideLeader(2));
        ins.push_back(Instruction::MakeWideMembers(3, 4));
        EXPECT_FALSE(
            pasm::Program::FromInstructions(std::move(ins), &error));
        EXPECT_NE(error.find("version"), std::string::npos);
    }
    {
        // Truncated group: leader declares 2 members, none follow.
        auto ins = TwoAndProgram(pasm::kFormatVersionWide);
        ins.push_back(Instruction::MakeWideLeader(2));
        EXPECT_FALSE(
            pasm::Program::FromInstructions(std::move(ins), &error));
        EXPECT_NE(error.find("truncated"), std::string::npos);
    }
    {
        // Member record without a leader.
        auto ins = TwoAndProgram(pasm::kFormatVersionWide);
        ins.push_back(Instruction::MakeWideMembers(3, 4));
        EXPECT_FALSE(
            pasm::Program::FromInstructions(std::move(ins), &error));
    }
    {
        // Member index outside the gate range (names an input).
        auto ins = TwoAndProgram(pasm::kFormatVersionWide);
        ins.push_back(Instruction::MakeWideLeader(2));
        ins.push_back(Instruction::MakeWideMembers(1, 4));
        EXPECT_FALSE(
            pasm::Program::FromInstructions(std::move(ins), &error));
    }
    {
        // A gate may appear in only one group.
        auto ins = TwoAndProgram(pasm::kFormatVersionWide);
        ins.push_back(Instruction::MakeWideLeader(2));
        ins.push_back(Instruction::MakeWideMembers(3, 4));
        ins.push_back(Instruction::MakeWideLeader(2));
        ins.push_back(Instruction::MakeWideMembers(4, 3));
        EXPECT_FALSE(
            pasm::Program::FromInstructions(std::move(ins), &error));
        EXPECT_NE(error.find("more than one"), std::string::npos);
    }
    {
        // Well-formed trailer for reference: the same stream parses.
        auto ins = TwoAndProgram(pasm::kFormatVersionWide);
        ins.push_back(Instruction::MakeWideLeader(2));
        ins.push_back(Instruction::MakeWideMembers(3, 4));
        const auto p =
            pasm::Program::FromInstructions(std::move(ins), &error);
        ASSERT_TRUE(p.has_value()) << error;
        ASSERT_EQ(p->WideOps().size(), 1u);
        EXPECT_EQ(p->WideOps()[0].members,
                  (std::vector<uint64_t>{3, 4}));
    }
}

TEST(PasmWide, KindClassifiesWideRecords) {
    EXPECT_EQ(Instruction::MakeWideLeader(4).Kind(9),
              InstructionKind::kWide);
    EXPECT_EQ(Instruction::MakeWideMembers(3, 4).Kind(10),
              InstructionKind::kWide);
    EXPECT_EQ(Instruction::MakeWideMembers(3).Kind(10),
              InstructionKind::kWide);
}

}  // namespace
}  // namespace pytfhe
