/**
 * @file
 * Memory plans end to end through the pasm layer: ComputeMemoryPlan
 * produces valid, genuinely-reusing plans; WithPlan embeds them as a
 * version-3 section that round-trips through serialization; the loader
 * rejects overlapping, out-of-range, truncated, and level-unsafe plans;
 * and BuildGateDependencies(plan) adds exactly the anti-dependency edges
 * slot reuse induces.
 */
#include "pasm/memory_plan.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "pasm/assembler.h"

namespace pytfhe::pasm {
namespace {

using circuit::GateType;
using circuit::Netlist;
using circuit::NodeId;

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t =
            static_cast<GateType>(rng() % circuit::kNumFrontendGateTypes);
        pool.push_back(n.AddGate(t, pool[rng() % pool.size()],
                                 pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

Program ChainProgram(int32_t length) {
    Netlist n;
    const NodeId a = n.AddInput();
    NodeId cur = a;
    for (int32_t i = 0; i < length; ++i)
        cur = n.AddGate(GateType::kNand, cur, a);
    n.AddOutput(cur);
    auto p = Assemble(n);
    EXPECT_TRUE(p.has_value());
    return std::move(*p);
}

TEST(MemoryPlan, ChainNeedsConstantSlots) {
    const Program p = ChainProgram(64);
    const MemoryPlan plan = ComputeMemoryPlan(p);
    EXPECT_TRUE(plan.level_safe);
    EXPECT_EQ(plan.slot_of.size(), 1 + p.NumInputs() + p.NumGates());
    // Only the input, the running value, and the overwriter are ever live;
    // level-safe forbids in-place, so the chain ping-pongs in <= 4 slots.
    EXPECT_LE(plan.num_slots, 4u);

    MemoryPlanOptions tight;
    tight.level_safe = false;
    const MemoryPlan seq = ComputeMemoryPlan(p, tight);
    EXPECT_FALSE(seq.level_safe);
    EXPECT_LE(seq.num_slots, plan.num_slots);
}

TEST(MemoryPlan, WithPlanRoundTripsThroughSerialization) {
    const auto base = Assemble(RandomNetlist(7, 6, 120));
    ASSERT_TRUE(base.has_value());
    EXPECT_EQ(base->Plan(), nullptr);  // Assemble emits no plan itself.

    const MemoryPlan plan = ComputeMemoryPlan(*base);
    std::string error;
    const auto planned = base->WithPlan(plan, &error);
    ASSERT_TRUE(planned.has_value()) << error;
    ASSERT_NE(planned->Plan(), nullptr);
    EXPECT_EQ(planned->FormatVersion(), kFormatVersionPlanned);

    std::stringstream buf;
    planned->Serialize(buf);
    const auto loaded = Program::Deserialize(buf, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    ASSERT_NE(loaded->Plan(), nullptr);
    EXPECT_EQ(loaded->Plan()->num_slots, plan.num_slots);
    EXPECT_EQ(loaded->Plan()->level_safe, plan.level_safe);
    EXPECT_EQ(loaded->Plan()->slot_of, plan.slot_of);
    // The instruction streams (and thus gates/outputs) are unchanged.
    EXPECT_EQ(loaded->Instructions(), planned->Instructions());
    EXPECT_EQ(loaded->NumGates(), base->NumGates());
}

TEST(MemoryPlan, PlanlessVersionsLoadWithIdentityBehavior) {
    const auto p = Assemble(RandomNetlist(9, 4, 40));
    ASSERT_TRUE(p.has_value());
    std::stringstream buf;
    p->Serialize(buf);
    const auto loaded = Program::Deserialize(buf);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->Plan(), nullptr);
}

TEST(MemoryPlan, WithPlanRejectsOverlappingLiveValues) {
    const Program p = ChainProgram(8);
    MemoryPlan bad = ComputeMemoryPlan(p);
    // Force the first gate into the input's slot: the input is read by
    // every later gate, so the intervals overlap.
    bad.slot_of[p.FirstGateIndex()] = bad.slot_of[1];
    std::string error;
    EXPECT_FALSE(p.WithPlan(bad, &error).has_value());
    EXPECT_NE(error.find("overlapping"), std::string::npos) << error;
}

TEST(MemoryPlan, WithPlanRejectsLevelUnsafeReuseWhenFlagged) {
    const Program p = ChainProgram(8);
    MemoryPlanOptions tight;
    tight.level_safe = false;
    MemoryPlan seq = ComputeMemoryPlan(p, tight);
    // A sequential-tight chain plan reuses in place (death level == def
    // level somewhere); claiming it level-safe must be rejected.
    seq.level_safe = true;
    std::string error;
    EXPECT_FALSE(p.WithPlan(seq, &error).has_value());
    EXPECT_NE(error.find("level"), std::string::npos) << error;
    // The honest flag is accepted.
    seq.level_safe = false;
    EXPECT_TRUE(p.WithPlan(seq).has_value());
}

TEST(MemoryPlan, LoaderRejectsCorruptPlanRecords) {
    const Program base = ChainProgram(6);
    const auto planned = base.WithPlan(ComputeMemoryPlan(base));
    ASSERT_TRUE(planned.has_value());

    // Out-of-range slot in the final pair record.
    auto ins = planned->Instructions();
    ins.back() = Instruction::MakePlanSlots(1u << 20, kIndexAllOnes);
    std::string error;
    EXPECT_FALSE(Program::FromInstructions(ins, &error).has_value());
    EXPECT_NE(error.find("out of range"), std::string::npos) << error;

    // Truncated plan: drop the last slot-pair record.
    ins = planned->Instructions();
    ins.pop_back();
    EXPECT_FALSE(Program::FromInstructions(ins, &error).has_value());

    // A version-2 header may not carry a plan section at all.
    ins = planned->Instructions();
    ins[0] = Instruction::MakeHeader(base.NumGates(), kFormatVersionWide);
    EXPECT_FALSE(Program::FromInstructions(ins, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(MemoryPlan, ValueLevelsMatchAsapSchedule) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);   // level 1
    const NodeId y = n.AddGate(GateType::kAnd, a, x);   // level 2
    n.AddOutput(n.AddGate(GateType::kOr, x, y));        // level 3
    const auto p = Assemble(n);
    ASSERT_TRUE(p.has_value());
    const auto levels = p->ValueLevels();
    EXPECT_EQ(levels[1], 0u);
    EXPECT_EQ(levels[2], 0u);
    EXPECT_EQ(levels[3], 1u);
    EXPECT_EQ(levels[4], 2u);
    EXPECT_EQ(levels[5], 3u);
}

TEST(MemoryPlan, PlanAwareDependenciesAddAntiEdges) {
    // Chain reuse means each overwriting gate gains a write-after-read
    // edge from the reader(s) of its slot's previous occupant.
    const Program p = ChainProgram(16);
    const MemoryPlan plan = ComputeMemoryPlan(p);
    const GateDependencies plain = p.BuildGateDependencies();
    const GateDependencies planned = p.BuildGateDependencies(&plan);

    ASSERT_EQ(planned.NumGates(), plain.NumGates());
    uint64_t plain_edges = 0, planned_edges = 0;
    uint64_t plain_preds = 0, planned_preds = 0;
    for (uint64_t g = 0; g < plain.NumGates(); ++g) {
        plain_edges += plain.FanOut(p.FirstGateIndex() + g);
        planned_edges += planned.FanOut(p.FirstGateIndex() + g);
        plain_preds += plain.pred_count[g];
        planned_preds += planned.pred_count[g];
    }
    EXPECT_GT(planned_edges, plain_edges);
    // Edge arithmetic still balances: every successor entry is matched by
    // one predecessor count, so dependency counting terminates.
    EXPECT_EQ(planned_edges, planned_preds);
    EXPECT_EQ(plain_edges, plain_preds);
    // Null plan is the identity overload.
    const GateDependencies null_plan = p.BuildGateDependencies(nullptr);
    EXPECT_EQ(null_plan.pred_count, plain.pred_count);
    EXPECT_EQ(null_plan.successors, plain.successors);
}

TEST(MemoryPlan, RandomProgramsProduceLoadablePlans) {
    for (uint64_t seed = 1; seed < 9; ++seed) {
        const auto p = Assemble(RandomNetlist(seed, 5, 150));
        ASSERT_TRUE(p.has_value());
        for (const bool level_safe : {true, false}) {
            MemoryPlanOptions o;
            o.level_safe = level_safe;
            const MemoryPlan plan = ComputeMemoryPlan(*p, o);
            EXPECT_LT(plan.num_slots, 1 + p->NumInputs() + p->NumGates());
            std::string error;
            const auto planned = p->WithPlan(plan, &error);
            ASSERT_TRUE(planned.has_value())
                << "seed " << seed << ": " << error;
            std::stringstream buf;
            planned->Serialize(buf);
            EXPECT_TRUE(Program::Deserialize(buf, &error).has_value())
                << "seed " << seed << ": " << error;
        }
    }
}

}  // namespace
}  // namespace pytfhe::pasm
