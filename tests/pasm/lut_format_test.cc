/**
 * @file
 * The pasm v4 binary format: LUT gate records, the packed operand table,
 * round-trips through serialization / disassembly-free ToNetlist /
 * memory planning, uniform operand traversal, version selection (boolean
 * programs must keep their v1-v3 encodings byte-for-byte), and a
 * bit-flip corruption sweep over a real multibit binary.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hdl/multibit_ops.h"
#include "hdl/word_ops.h"
#include "pasm/assembler.h"
#include "pasm/memory_plan.h"
#include "pasm/program.h"

namespace pytfhe {
namespace {

/** A multibit adder+comparator netlist: LUT3s, LUT4s, LUT6-sized blocks. */
circuit::Netlist MultibitNetlist() {
    hdl::Builder b;
    const hdl::MultibitPlan plan{16, hdl::kMultibitMaxWeightSq};
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::MultibitAdd(b, plan, x, y), "s");
    b.AddOutput(hdl::MultibitUlt(b, plan, x, y), "lt");
    return b.netlist();
}

circuit::Netlist BooleanNetlist() {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "s");
    return b.netlist();
}

std::vector<bool> RandomInputs(uint32_t seed, size_t n) {
    std::vector<bool> in(n);
    uint32_t s = seed * 2654435761u + 12345u;
    for (size_t i = 0; i < n; ++i) {
        s = s * 1103515245u + 12345u;
        in[i] = (s >> 16) & 1;
    }
    return in;
}

TEST(PasmV4, MultibitProgramsSerializeAsVersion4) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    EXPECT_EQ(prog->FormatVersion(), 4u);
    EXPECT_EQ(prog->MessageModulus(), 16);
    EXPECT_GT(prog->NumGates(), 0u);
}

TEST(PasmV4, BooleanProgramsKeepTheirOldVersion) {
    std::string error;
    const auto prog = pasm::Assemble(BooleanNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    EXPECT_LT(prog->FormatVersion(), 4u)
        << "a boolean netlist must not pay the v4 format";
    EXPECT_EQ(prog->MessageModulus(), 0);
}

TEST(PasmV4, SerializeDeserializeRoundTrip) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    std::stringstream ss;
    prog->Serialize(ss);
    const auto back = pasm::Program::Deserialize(ss, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->Instructions(), prog->Instructions());
    EXPECT_EQ(back->MessageModulus(), 16);
    EXPECT_EQ(back->FormatVersion(), 4u);
}

TEST(PasmV4, ToNetlistReassemblesByteIdentical) {
    const circuit::Netlist net = MultibitNetlist();
    std::string error;
    const auto prog = pasm::Assemble(net, &error);
    ASSERT_TRUE(prog.has_value()) << error;
    const circuit::Netlist back = pasm::ToNetlist(*prog);
    ASSERT_FALSE(back.Validate().has_value());
    const auto again = pasm::Assemble(back, &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(again->Instructions(), prog->Instructions());
    for (uint32_t seed = 0; seed < 50; ++seed) {
        const std::vector<bool> in = RandomInputs(seed, net.Inputs().size());
        ASSERT_EQ(back.EvaluatePlain(in), net.EvaluatePlain(in))
            << "seed=" << seed;
    }
}

TEST(PasmV4, ForEachOperandSeesEveryLutOperand) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    const uint64_t first = prog->FirstGateIndex();
    for (uint64_t idx = first; idx < first + prog->NumGates(); ++idx) {
        ASSERT_TRUE(prog->IsLutGate(idx));
        const pasm::DecodedLut lut = prog->LutAt(idx);
        std::vector<uint64_t> walked;
        prog->ForEachOperand(idx,
                             [&](uint64_t in) { walked.push_back(in); });
        ASSERT_EQ(walked.size(), lut.operands.size());
        for (size_t i = 0; i < walked.size(); ++i) {
            EXPECT_EQ(walked[i], lut.operands[i].first);
            EXPECT_LT(walked[i], idx) << "operands precede their gate";
            EXPECT_NE(lut.operands[i].second, 0) << "weights are nonzero";
        }
    }
}

TEST(PasmV4, MemoryPlanRoundTrip) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    const pasm::MemoryPlan plan = pasm::ComputeMemoryPlan(*prog, {});
    EXPECT_LT(plan.num_slots, prog->NumInputs() + prog->NumGates())
        << "LUT liveness must admit slot reuse";
    const auto planned = prog->WithPlan(plan, &error);
    ASSERT_TRUE(planned.has_value()) << error;
    EXPECT_EQ(planned->FormatVersion(), 4u);
    EXPECT_EQ(planned->MessageModulus(), 16);
    std::stringstream ss;
    planned->Serialize(ss);
    const auto back = pasm::Program::Deserialize(ss, &error);
    ASSERT_TRUE(back.has_value()) << error;
    ASSERT_NE(back->Plan(), nullptr);
    EXPECT_EQ(back->Plan()->num_slots, plan.num_slots);
    EXPECT_EQ(back->Instructions(), planned->Instructions());
}

TEST(PasmV4, DisassembleDecodesLutRecords) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    const std::string text = prog->Disassemble();
    EXPECT_NE(text.find("LUT"), std::string::npos);
    EXPECT_EQ(text.find("WIDE"), std::string::npos)
        << "operand-table records must not print as wide groups";
}

/**
 * Flipping any single bit of the binary must either produce a program
 * that still loads or a typed parse failure — never a crash, hang, or
 * unbounded allocation (the operand-table head is attacker-controlled).
 */
TEST(PasmV4, BitFlipCorruptionNeverCrashes) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    std::stringstream ss;
    prog->Serialize(ss);
    const std::string bytes = ss.str();
    int rejected = 0;
    for (size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; bit += 3) {
            std::string corrupt = bytes;
            corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
            std::stringstream cs(corrupt);
            std::string why;
            const auto loaded = pasm::Program::Deserialize(cs, &why);
            if (!loaded.has_value()) {
                ++rejected;
                EXPECT_FALSE(why.empty()) << "rejections carry a reason";
            }
        }
    }
    EXPECT_GT(rejected, 0) << "the format has no checked structure at all?";
}

TEST(PasmV4, TruncationIsRejected) {
    std::string error;
    const auto prog = pasm::Assemble(MultibitNetlist(), &error);
    ASSERT_TRUE(prog.has_value()) << error;
    std::stringstream ss;
    prog->Serialize(ss);
    const std::string bytes = ss.str();
    for (size_t keep : {size_t{0}, size_t{7}, bytes.size() / 2,
                        bytes.size() - 1}) {
        std::stringstream cs(bytes.substr(0, keep));
        std::string why;
        EXPECT_FALSE(pasm::Program::Deserialize(cs, &why).has_value())
            << "kept " << keep << " of " << bytes.size() << " bytes";
    }
}

}  // namespace
}  // namespace pytfhe
