/**
 * @file
 * The kLut circuit IR: variadic AddGate/AddLut construction, pooled
 * operand storage, Validate's multibit rules, plain LUT evaluation,
 * Bristol's typed rejection, and the boolean-to-LUT lowering pass
 * (exhaustive plain equivalence on every circuit it touches).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "circuit/bristol.h"
#include "circuit/netlist.h"
#include "circuit/opt/lut_lower.h"

namespace pytfhe::circuit {
namespace {

LutSpec BitLut(std::vector<int8_t> weights, uint32_t table, int32_t lo = 0) {
    LutSpec spec;
    spec.weights = std::move(weights);
    spec.table = table;
    spec.lo = lo;
    spec.out_bits = 1;
    return spec;
}

TEST(VariadicAddGate, ClassicGatesTakeExactlyTwoOperands) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    const NodeId ops3[3] = {a, b, c};
    EXPECT_THROW(n.AddGate(GateType::kAnd, std::span<const NodeId>(ops3, 3)),
                 UnsupportedGateError);
    EXPECT_THROW(n.AddGate(GateType::kAnd, std::span<const NodeId>(ops3, 1)),
                 UnsupportedGateError);
    const NodeId g = n.AddGate(GateType::kAnd, a, b);
    EXPECT_EQ(n.GetNode(g).num_ops, 2);
    EXPECT_EQ(n.Op(g, 0), a);
    EXPECT_EQ(n.Op(g, 1), b);
}

TEST(VariadicAddGate, NotAcceptsOneOperandAndStoresItTwice) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId one[1] = {a};
    const NodeId g = n.AddGate(GateType::kNot, std::span<const NodeId>(one, 1));
    EXPECT_EQ(n.GetNode(g).num_ops, 2);
    EXPECT_EQ(n.Op(g, 0), a);
    EXPECT_EQ(n.Op(g, 1), a);
    // The historical two-operand spelling still works, and its second
    // operand is ignored — in1 stores in0 regardless of what was passed.
    const NodeId b = n.AddInput();
    const NodeId h = n.AddGate(GateType::kNot, a, b);
    EXPECT_EQ(n.Op(h, 0), a);
    EXPECT_EQ(n.Op(h, 1), a);
}

TEST(VariadicAddGate, OperandsLiveInThePool) {
    Netlist n;
    std::vector<NodeId> ins;
    for (int i = 0; i < 5; ++i) ins.push_back(n.AddInput());
    n.SetMessageModulus(16);
    const NodeId g = n.AddLut(BitLut({1, 2, 4, 8, 16}, 0xAAAAAAAAu),
                              std::span<const NodeId>(ins.data(), 5));
    const std::span<const NodeId> ops = n.Operands(g);
    ASSERT_EQ(ops.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(ops[i], ins[i]);
    EXPECT_EQ(n.GetNode(g).lut, 0);
    EXPECT_EQ(n.Lut(g).weights.size(), 5u);
}

TEST(AddLut, TypedConstructionErrors) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId ops[2] = {a, b};
    // kLut through AddGate is rejected: the LutSpec would be missing.
    EXPECT_THROW(n.AddGate(GateType::kLut, a, b), UnsupportedGateError);
    // AddLut before SetMessageModulus is rejected.
    EXPECT_THROW(
        n.AddLut(BitLut({1, 2}, 0b0110), std::span<const NodeId>(ops, 2)),
        UnsupportedGateError);
    n.SetMessageModulus(16);
    // Weight count must match the operand count.
    EXPECT_THROW(
        n.AddLut(BitLut({1}, 0b0110), std::span<const NodeId>(ops, 2)),
        UnsupportedGateError);
    // Arity bounds.
    std::vector<NodeId> many(kMaxLutArity + 1, a);
    EXPECT_THROW(n.AddLut(BitLut(std::vector<int8_t>(kMaxLutArity + 1, 1), 0),
                          std::span<const NodeId>(many.data(), many.size())),
                 UnsupportedGateError);
    // Output width bounds.
    LutSpec wide = BitLut({1, 2}, 0);
    wide.out_bits = kMaxLutOutBits + 1;
    EXPECT_THROW(n.AddLut(wide, std::span<const NodeId>(ops, 2)),
                 UnsupportedGateError);
    EXPECT_NO_THROW(
        n.AddLut(BitLut({1, 2}, 0b0110), std::span<const NodeId>(ops, 2)));
}

TEST(Validate, MultibitNetlistsAreHomogeneous) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.SetMessageModulus(16);
    const NodeId ops[2] = {a, b};
    const NodeId lut =
        n.AddLut(BitLut({1, 2}, 0b0110), std::span<const NodeId>(ops, 2));
    n.AddOutput(lut);
    EXPECT_FALSE(n.Validate().has_value());
    // A classic gate in a multibit netlist fails validation.
    n.AddGate(GateType::kAnd, a, b);
    EXPECT_TRUE(n.Validate().has_value());
}

TEST(Validate, RejectsWideDigitsAtOutputs) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.SetMessageModulus(16);
    LutSpec pop = BitLut({1, 1}, 0xE4);
    pop.out_bits = 2;
    const NodeId ops[2] = {a, b};
    const NodeId digit = n.AddLut(pop, std::span<const NodeId>(ops, 2));
    n.AddOutput(digit);
    EXPECT_TRUE(n.Validate().has_value())
        << "a 2-bit digit fed a circuit output";
}

TEST(Validate, RejectsDomainBeyondMessageModulus) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.SetMessageModulus(4);
    // Weights 1,4 reach m in [0,5]: 6 slots > p = 4.
    const NodeId ops[2] = {a, b};
    n.AddLut(BitLut({1, 4}, 0), std::span<const NodeId>(ops, 2));
    EXPECT_TRUE(n.Validate().has_value());
}

TEST(EvaluatePlain, WeightedLutSemantics) {
    // out = MAJ(a, b, c) via the counting LUT (1,1,1): entry m is 1 for
    // counts 2 and 3, so the table reads 0b1100.
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    n.SetMessageModulus(16);
    const NodeId ops[3] = {a, b, c};
    const NodeId maj =
        n.AddLut(BitLut({1, 1, 1}, 0b1100), std::span<const NodeId>(ops, 3));
    n.AddOutput(maj);
    ASSERT_FALSE(n.Validate().has_value());
    for (int m = 0; m < 8; ++m) {
        const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0,
                                      (m & 4) != 0};
        const int count = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
        EXPECT_EQ(n.EvaluatePlain(in)[0], count >= 2) << "m=" << m;
    }
}

TEST(Bristol, ExportRejectsLutGatesTyped) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.SetMessageModulus(16);
    const NodeId ops[2] = {a, b};
    n.AddOutput(
        n.AddLut(BitLut({1, 2}, 0b0110), std::span<const NodeId>(ops, 2)));
    EXPECT_THROW(ExportBristolString(n), UnsupportedGateError);
}

TEST(Bristol, BooleanRoundTripStillWorks) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kXor, a, b));
    const std::string text = ExportBristolString(n);
    std::string error;
    const auto back = ImportBristolString(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->MessageModulus(), 0);
    for (int m = 0; m < 4; ++m) {
        const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0};
        EXPECT_EQ(back->EvaluatePlain(in), n.EvaluatePlain(in));
    }
}

/** Builds a small boolean netlist from a seeded random DAG. */
Netlist RandomBoolean(uint32_t seed, int num_inputs, int num_gates) {
    std::mt19937 prng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int i = 0; i < num_inputs; ++i) pool.push_back(n.AddInput());
    const GateType kinds[] = {GateType::kAnd,   GateType::kOr,
                              GateType::kXor,   GateType::kNand,
                              GateType::kNor,   GateType::kXnor,
                              GateType::kAndYN, GateType::kNot};
    for (int i = 0; i < num_gates; ++i) {
        const GateType t = kinds[prng() % std::size(kinds)];
        const NodeId a = pool[prng() % pool.size()];
        const NodeId b = pool[prng() % pool.size()];
        pool.push_back(t == GateType::kNot ? n.AddGate(t, a, a)
                                           : n.AddGate(t, a, b));
    }
    // Last few nodes become outputs so deep cones stay live.
    for (size_t i = pool.size() - 3; i < pool.size(); ++i)
        n.AddOutput(pool[i]);
    return n;
}

TEST(LowerToLuts, ExhaustivePlainEquivalenceOnRandomCircuits) {
    for (uint32_t seed = 0; seed < 20; ++seed) {
        const Netlist boolean = RandomBoolean(seed, 6, 24);
        const LutLowerResult lowered = LowerToLuts(boolean);
        ASSERT_FALSE(lowered.netlist.Validate().has_value()) << "seed=" << seed;
        EXPECT_EQ(lowered.netlist.MessageModulus(), 16);
        EXPECT_LE(lowered.netlist.ComputeStats().num_bootstrap_gates,
                  boolean.ComputeStats().num_bootstrap_gates)
            << "lowering must never add bootstraps (seed=" << seed << ")";
        for (int m = 0; m < (1 << 6); ++m) {
            std::vector<bool> in(6);
            for (int i = 0; i < 6; ++i) in[i] = (m >> i) & 1;
            ASSERT_EQ(lowered.netlist.EvaluatePlain(in),
                      boolean.EvaluatePlain(in))
                << "seed=" << seed << " m=" << m;
        }
    }
}

TEST(LowerToLuts, NotChainsVanish) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    NodeId x = n.AddGate(GateType::kNot, a, a);
    x = n.AddGate(GateType::kNot, x, x);
    x = n.AddGate(GateType::kNot, x, x);
    n.AddOutput(n.AddGate(GateType::kAnd, x, b));
    const LutLowerResult lowered = LowerToLuts(n);
    EXPECT_GT(lowered.stats.absorbed_nots, 0u);
    EXPECT_EQ(lowered.netlist.ComputeStats().num_lut_gates, 1u)
        << "three NOTs and an AND should fold to a single LUT";
    for (int m = 0; m < 4; ++m) {
        const std::vector<bool> in = {(m & 1) != 0, (m & 2) != 0};
        EXPECT_EQ(lowered.netlist.EvaluatePlain(in), n.EvaluatePlain(in));
    }
}

TEST(LowerToLuts, TypedRejections) {
    Netlist multibit;
    const NodeId a = multibit.AddInput();
    multibit.SetMessageModulus(16);
    const NodeId ops[1] = {a};
    multibit.AddOutput(multibit.AddLut(BitLut({1}, 0b10),
                                       std::span<const NodeId>(ops, 1)));
    EXPECT_THROW(LowerToLuts(multibit), UnsupportedGateError);

    Netlist boolean;
    const NodeId x = boolean.AddInput();
    boolean.AddOutput(boolean.AddGate(GateType::kNot, x, x));
    LutLowerOptions bad;
    bad.message_modulus = 3;
    EXPECT_THROW(LowerToLuts(boolean, bad), UnsupportedGateError);
}

TEST(Stats, CountLutGatesAndArity) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    n.SetMessageModulus(16);
    const NodeId ops2[2] = {a, b};
    const NodeId ops3[3] = {a, b, c};
    n.AddLut(BitLut({1, 2}, 0b0110), std::span<const NodeId>(ops2, 2));
    const NodeId maj =
        n.AddLut(BitLut({1, 1, 1}, 0b1110), std::span<const NodeId>(ops3, 3));
    n.AddOutput(maj);
    const NetlistStats stats = n.ComputeStats();
    EXPECT_EQ(stats.num_lut_gates, 2u);
    EXPECT_EQ(stats.max_lut_arity, 3u);
    EXPECT_EQ(stats.num_bootstrap_gates, 2u);
    EXPECT_EQ(GateTypeName(GateType::kLut), "LUT");
}

}  // namespace
}  // namespace pytfhe::circuit
