#include "circuit/bristol.h"

#include <gtest/gtest.h>
#include <random>

namespace pytfhe::circuit {
namespace {

Netlist HalfAdder() {
    Netlist n;
    const NodeId a = n.AddInput("A");
    const NodeId b = n.AddInput("B");
    n.AddOutput(n.AddGate(GateType::kXor, a, b), "Sum");
    n.AddOutput(n.AddGate(GateType::kAnd, a, b), "Carry");
    return n;
}

Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    pool.push_back(kConstFalse);
    pool.push_back(kConstTrue);
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        GateType t = static_cast<GateType>(rng() % kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 3; ++i) n.AddOutput(pool[pool.size() - 1 - i]);
    return n;
}

TEST(Bristol, HalfAdderExportShape) {
    const std::string text = ExportBristolString(HalfAdder());
    std::istringstream is(text);
    uint64_t gates, wires;
    is >> gates >> wires;
    // XOR + AND + 2 EQW output copies.
    EXPECT_EQ(gates, 4u);
    EXPECT_EQ(wires, 6u);
    EXPECT_NE(text.find("XOR"), std::string::npos);
    EXPECT_NE(text.find("AND"), std::string::npos);
    EXPECT_NE(text.find("EQW"), std::string::npos);
}

TEST(Bristol, HalfAdderRoundTrip) {
    const Netlist original = HalfAdder();
    auto back = ImportBristolString(ExportBristolString(original));
    ASSERT_TRUE(back.has_value());
    for (int a = 0; a < 2; ++a)
        for (int b = 0; b < 2; ++b)
            EXPECT_EQ(back->EvaluatePlain({a == 1, b == 1}),
                      original.EvaluatePlain({a == 1, b == 1}));
}

class BristolPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BristolPropertyTest, RoundTripPreservesSemantics) {
    const Netlist original = RandomNetlist(GetParam(), 5, 60);
    std::string error;
    auto back = ImportBristolString(ExportBristolString(original), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->Inputs().size(), original.Inputs().size());
    EXPECT_EQ(back->Outputs().size(), original.Outputs().size());
    std::mt19937_64 rng(GetParam() ^ 0xB1);
    for (int trial = 0; trial < 16; ++trial) {
        std::vector<bool> in(5);
        for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;
        EXPECT_EQ(back->EvaluatePlain(in), original.EvaluatePlain(in));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BristolPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(Bristol, ImportsHandWrittenFullAdder) {
    // A textbook full adder in Bristol fashion: inputs a, b, cin.
    const std::string text = R"(5 8
1 3
1 2

2 1 0 1 3 XOR
2 1 3 2 6 XOR
2 1 0 1 4 AND
2 1 3 2 5 AND
2 1 4 5 7 XOR
)";
    // Outputs: wire 6 = sum, wire 7 = carry (OR of disjoint ANDs == XOR).
    auto n = ImportBristolString(text);
    ASSERT_TRUE(n.has_value());
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            for (int c = 0; c < 2; ++c) {
                const auto out =
                    n->EvaluatePlain({a == 1, b == 1, c == 1});
                EXPECT_EQ(out[0], ((a + b + c) & 1) == 1);
                EXPECT_EQ(out[1], (a + b + c) >= 2);
            }
        }
    }
}

TEST(Bristol, ImportHandlesConstantsViaEq) {
    const std::string text = R"(2 4
1 1
1 1

1 1 1 2 EQ
2 1 0 2 3 AND
)";
    auto n = ImportBristolString(text);
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(n->EvaluatePlain({true})[0], true);   // x AND 1 == x.
    EXPECT_EQ(n->EvaluatePlain({false})[0], false);
}

TEST(Bristol, RejectsMalformedInputs) {
    std::string error;
    EXPECT_FALSE(ImportBristolString("", &error).has_value());
    EXPECT_FALSE(ImportBristolString("1 2\n1 1\n1 1\n\n2 1 0 5 1 AND\n",
                                     &error)
                     .has_value());  // Reads undefined wire.
    EXPECT_FALSE(
        ImportBristolString("1 3\n1 1\n1 1\n\n2 1 0 0 2 NAND\n", &error)
            .has_value());  // Unknown op for this importer's base set.
    EXPECT_NE(error.find("NAND"), std::string::npos);
    EXPECT_FALSE(
        ImportBristolString("1 3\n1 1\n1 1\n\n2 2 0 0 2 AND\n", &error)
            .has_value());  // Multi-output gate.
}

TEST(Bristol, ExportedConstantsSurviveRoundTrip) {
    Netlist n;
    const NodeId a = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kOr, a, kConstTrue));  // Always 1.
    n.AddOutput(a);
    auto back = ImportBristolString(ExportBristolString(n));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->EvaluatePlain({false}), n.EvaluatePlain({false}));
    EXPECT_EQ(back->EvaluatePlain({true}), n.EvaluatePlain({true}));
}

}  // namespace
}  // namespace pytfhe::circuit
