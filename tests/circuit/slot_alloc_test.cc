/**
 * @file
 * Linear-scan slot allocation: deterministic shape checks plus a property
 * test over random DAG-derived interval sets — in both reuse disciplines,
 * no two values whose live intervals overlap may ever share a physical
 * slot, pinned values never free theirs, and the level-safe discipline
 * additionally keeps a freed slot cold until the next wave level.
 */
#include "circuit/opt/slot_alloc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace pytfhe::circuit {
namespace {

/**
 * Live intervals of a random DAG: `inputs` values defined up front (all
 * live from ordinal 0), then `gates` values each reading two earlier
 * values. Mirrors how pasm::ComputeMemoryPlan derives intervals from a
 * program, including pinning a suffix of values as outputs.
 */
std::vector<LiveInterval> RandomDagIntervals(uint64_t seed, int32_t inputs,
                                             int32_t gates) {
    std::mt19937_64 rng(seed);
    std::vector<LiveInterval> iv(inputs + gates);
    std::vector<uint64_t> level(inputs + gates, 0);
    for (int32_t i = 0; i < inputs; ++i) {
        iv[i].def = i;
        iv[i].last_use = i;
    }
    for (int32_t g = 0; g < gates; ++g) {
        const uint64_t v = inputs + g;
        const uint64_t a = rng() % v;
        const uint64_t b = rng() % v;
        iv[v].def = v;
        iv[v].last_use = v;
        level[v] = 1 + std::max(level[a], level[b]);
        iv[v].def_level = level[v];
        for (const uint64_t in : {a, b}) {
            iv[in].last_use = std::max(iv[in].last_use, v);
            iv[in].death_level = std::max(iv[in].death_level, level[v]);
        }
    }
    // Pin the last few values (program outputs survive to harvest).
    for (int32_t i = 0; i < 3 && i < gates; ++i)
        iv[inputs + gates - 1 - i].pinned = true;
    return iv;
}

/**
 * Checks every safety property of an assignment. Values are in definition
 * order, so each slot's occupants are visited in definition order too.
 */
void CheckAssignment(const std::vector<LiveInterval>& iv,
                     const SlotAssignment& got, bool level_safe) {
    ASSERT_EQ(got.slot.size(), iv.size());
    ASSERT_LE(got.num_slots, iv.size());
    // prev[s] = index of the latest occupant of slot s, or none.
    std::vector<int64_t> prev(got.num_slots, -1);
    for (size_t v = 0; v < iv.size(); ++v) {
        ASSERT_LT(got.slot[v], got.num_slots) << "value " << v;
        const int64_t u = prev[got.slot[v]];
        if (u >= 0) {
            EXPECT_FALSE(iv[u].pinned)
                << "pinned value " << u << " lost slot " << got.slot[v]
                << " to value " << v;
            // Disjoint intervals: the previous occupant's last reader runs
            // no later than the overwriting definition.
            EXPECT_LE(iv[u].last_use, iv[v].def)
                << "values " << u << " and " << v << " overlap in slot "
                << got.slot[v];
            if (level_safe)
                EXPECT_GE(iv[v].def_level, iv[u].death_level + 1)
                    << "slot " << got.slot[v] << " reused within wave for "
                    << v;
        }
        prev[got.slot[v]] = static_cast<int64_t>(v);
    }
}

TEST(SlotAlloc, ChainReusesAggressively) {
    // v0 -> v1 -> v2 -> ... : at most two values live at once, and the
    // sequential discipline allows in-place reuse (death == def), so a
    // chain of any length needs 2 slots (+1 for the pinned tail).
    std::vector<LiveInterval> iv(16);
    for (uint64_t v = 0; v < iv.size(); ++v) {
        iv[v] = {v, v + 1 < iv.size() ? v + 1 : v, v,
                 v + 1 < iv.size() ? v + 1 : v, false};
    }
    iv.back().pinned = true;
    const SlotAssignment seq = AssignSlots(iv, /*level_safe=*/false);
    CheckAssignment(iv, seq, false);
    EXPECT_LE(seq.num_slots, 3u);

    // Level-safe forbids in-place (death_level + 1 > def_level of the
    // immediate consumer), so the chain alternates between slots instead —
    // still O(1), just one more slot.
    const SlotAssignment lvl = AssignSlots(iv, /*level_safe=*/true);
    CheckAssignment(iv, lvl, true);
    EXPECT_LE(lvl.num_slots, 4u);
}

TEST(SlotAlloc, AllLiveValuesGetDistinctSlots) {
    // Every value stays live past the last definition (ordinal 8, beyond
    // every def): no reuse — not even in-place — is legal.
    std::vector<LiveInterval> iv(8);
    for (uint64_t v = 0; v < iv.size(); ++v)
        iv[v] = {v, 8, 0, 1, false};
    const SlotAssignment got = AssignSlots(iv, false);
    CheckAssignment(iv, got, false);
    EXPECT_EQ(got.num_slots, iv.size());
    std::vector<uint64_t> sorted = got.slot;
    std::sort(sorted.begin(), sorted.end());
    for (uint64_t s = 0; s < sorted.size(); ++s) EXPECT_EQ(sorted[s], s);
}

TEST(SlotAlloc, PinnedValuesNeverFreeTheirSlot) {
    // A pinned value with no readers would look immediately dead to the
    // scan; pinning must keep its slot out of the free pool forever.
    std::vector<LiveInterval> iv(6);
    for (uint64_t v = 0; v < iv.size(); ++v) iv[v] = {v, v, 0, 0, true};
    const SlotAssignment got = AssignSlots(iv, false);
    CheckAssignment(iv, got, false);
    EXPECT_EQ(got.num_slots, iv.size());
}

TEST(SlotAlloc, EmptyInput) {
    const SlotAssignment got = AssignSlots({}, true);
    EXPECT_EQ(got.num_slots, 0u);
    EXPECT_TRUE(got.slot.empty());
}

class SlotAllocPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlotAllocPropertyTest, RandomDagsAreSafeInBothDisciplines) {
    const auto iv = RandomDagIntervals(GetParam(), 8, 200);
    for (const bool level_safe : {false, true}) {
        const SlotAssignment got = AssignSlots(iv, level_safe);
        CheckAssignment(iv, got, level_safe);
        // Reuse must actually happen on a 200-gate DAG with fan-in 2.
        EXPECT_LT(got.num_slots, iv.size());
    }
}

TEST_P(SlotAllocPropertyTest, SequentialPacksNoLooserThanLevelSafe) {
    const auto iv = RandomDagIntervals(GetParam() ^ 0x5A5A, 6, 120);
    EXPECT_LE(AssignSlots(iv, false).num_slots,
              AssignSlots(iv, true).num_slots);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotAllocPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace pytfhe::circuit
