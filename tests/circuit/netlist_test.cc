#include "circuit/netlist.h"

#include <gtest/gtest.h>

namespace pytfhe::circuit {
namespace {

/** Builds the paper's half adder (Fig. 6): XOR + AND. */
Netlist HalfAdder() {
    Netlist n;
    const NodeId a = n.AddInput("A");
    const NodeId b = n.AddInput("B");
    const NodeId sum = n.AddGate(GateType::kXor, a, b);
    const NodeId carry = n.AddGate(GateType::kAnd, a, b);
    n.AddOutput(sum, "Sum");
    n.AddOutput(carry, "Carry");
    return n;
}

TEST(GateTypeTest, EvalMatchesTruthTables) {
    EXPECT_TRUE(EvalGate(GateType::kNand, false, false));
    EXPECT_FALSE(EvalGate(GateType::kNand, true, true));
    EXPECT_TRUE(EvalGate(GateType::kXor, true, false));
    EXPECT_TRUE(EvalGate(GateType::kAndNY, false, true));
    EXPECT_FALSE(EvalGate(GateType::kAndNY, true, true));
    EXPECT_TRUE(EvalGate(GateType::kOrYN, false, false));
}

TEST(GateTypeTest, XorEncodesAsSix) {
    // Fig. 6: XOR's gate type is 0110.
    EXPECT_EQ(static_cast<int>(GateType::kXor), 6);
}

TEST(GateTypeTest, NegatedGateIsInvolution) {
    // Starts at 1 and skips kLinNot: NOT(NOT) and NOT(LNOT) are COPY,
    // which has no gate type. kLut is type-level only here — its truth
    // table (and thus its negation) lives in the LutSpec, so the
    // EvalGate complement identity is not expressible on the bare type.
    for (int t = 1; t < kNumGateTypes; ++t) {
        const GateType g = static_cast<GateType>(t);
        if (g == GateType::kLinNot) continue;
        EXPECT_EQ(NegatedGate(NegatedGate(g)), g);
        if (g == GateType::kLut) continue;
        for (int a = 0; a < 2; ++a)
            for (int b = 0; b < 2; ++b)
                EXPECT_EQ(EvalGate(NegatedGate(g), a, b), !EvalGate(g, a, b));
    }
}

TEST(GateTypeTest, InputNegationIdentities) {
    for (int t = 1; t < kNumGateTypes; ++t) {
        const GateType g = static_cast<GateType>(t);
        // LNOT with a negated input is COPY, which has no gate type.
        if (g == GateType::kLinNot) continue;
        for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
                EXPECT_EQ(EvalGate(GateWithFirstInputNegated(g), a, b),
                          EvalGate(g, !a, b))
                    << GateTypeName(g);
                EXPECT_EQ(EvalGate(GateWithSecondInputNegated(g), a, b),
                          EvalGate(g, a, !b))
                    << GateTypeName(g);
            }
        }
    }
}

TEST(NetlistTest, HalfAdderEvaluates) {
    Netlist n = HalfAdder();
    EXPECT_EQ(n.NumGates(), 2u);
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            auto out = n.EvaluatePlain({a == 1, b == 1});
            EXPECT_EQ(out[0], (a ^ b) != 0);
            EXPECT_EQ(out[1], (a & b) != 0);
        }
    }
}

TEST(NetlistTest, ValidNetlistPassesValidation) {
    EXPECT_FALSE(HalfAdder().Validate().has_value());
}

TEST(NetlistTest, LevelsRespectDependencies) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId g1 = n.AddGate(GateType::kAnd, a, b);
    const NodeId g2 = n.AddGate(GateType::kOr, g1, b);
    const NodeId g3 = n.AddGate(GateType::kXor, g1, g2);
    n.AddOutput(g3);
    auto levels = n.ComputeLevels();
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0], std::vector<NodeId>{g1});
    EXPECT_EQ(levels[1], std::vector<NodeId>{g2});
    EXPECT_EQ(levels[2], std::vector<NodeId>{g3});
}

TEST(NetlistTest, StatsCountGatesAndDepth) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId na = n.AddGate(GateType::kNot, a, a);
    const NodeId g = n.AddGate(GateType::kAnd, na, a);
    const NodeId h = n.AddGate(GateType::kOr, g, na);
    n.AddOutput(h);
    const NetlistStats s = n.ComputeStats();
    EXPECT_EQ(s.num_gates, 3u);
    EXPECT_EQ(s.num_bootstrap_gates, 2u);  // NOT is noiseless.
    EXPECT_EQ(s.depth, 2u);                // AND then OR; NOT is free.
    EXPECT_EQ(s.gate_histogram[static_cast<int>(GateType::kNot)], 1u);
    EXPECT_EQ(s.num_inputs, 1u);
    EXPECT_EQ(s.num_outputs, 1u);
}

TEST(NetlistTest, ConstantsEvaluate) {
    Netlist n;
    const NodeId a = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kOr, a, kConstTrue));
    n.AddOutput(n.AddGate(GateType::kAnd, a, kConstFalse));
    auto out = n.EvaluatePlain({false});
    EXPECT_TRUE(out[0]);
    EXPECT_FALSE(out[1]);
}

TEST(NetlistTest, DotExportContainsStructure) {
    const std::string dot = HalfAdder().ToDot();
    EXPECT_NE(dot.find("XOR"), std::string::npos);
    EXPECT_NE(dot.find("AND"), std::string::npos);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(NetlistTest, InputAndOutputNames) {
    Netlist n = HalfAdder();
    EXPECT_EQ(n.InputName(0), "A");
    EXPECT_EQ(n.InputName(1), "B");
    EXPECT_EQ(n.OutputName(0), "Sum");
    EXPECT_EQ(n.OutputName(1), "Carry");
}

}  // namespace
}  // namespace pytfhe::circuit
