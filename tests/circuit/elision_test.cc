#include "circuit/opt/passes.h"

#include <gtest/gtest.h>
#include <random>

#include "circuit/builder.h"
#include "hdl/word_ops.h"
#include "tfhe/noise.h"
#include "tfhe/params.h"

namespace pytfhe::circuit {
namespace {

tfhe::Params DeployParams() { return tfhe::Tfhe128Params(); }

std::vector<bool> RandomInputs(std::mt19937_64& rng, size_t count) {
    std::vector<bool> v(count);
    for (size_t i = 0; i < count; ++i) v[i] = rng() & 1;
    return v;
}

/** All 2^n assignments of n bits, little-endian. */
std::vector<bool> Assignment(uint64_t value, size_t n) {
    std::vector<bool> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = (value >> i) & 1;
    return v;
}

TEST(ElisionTest, XorTreeFullyElided) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    const NodeId d = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);
    const NodeId y = n.AddGate(GateType::kXor, c, d);
    const NodeId z = n.AddGate(GateType::kXor, x, y);
    n.AddOutput(z);

    const ElisionResult r = ElideBootstraps(n, DeployParams());
    ASSERT_FALSE(r.netlist.Validate().has_value());
    EXPECT_EQ(r.stats.bootstraps_before, 3u);
    EXPECT_EQ(r.stats.bootstraps_after, 0u);
    EXPECT_EQ(r.stats.elided_xor, 3u);
    EXPECT_EQ(r.netlist.GetNode(z).type, GateType::kLinXor);
    EXPECT_TRUE(r.netlist.ProducesLinearDomain(z));
    EXPECT_EQ(r.netlist.ComputeStats().num_linear_gates, 3u);
    for (uint64_t v = 0; v < 16; ++v) {
        const auto in = Assignment(v, 4);
        EXPECT_EQ(r.netlist.EvaluatePlain(in), n.EvaluatePlain(in));
    }
}

TEST(ElisionTest, AndConsumerBlocksElision) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);
    n.AddOutput(n.AddGate(GateType::kAnd, x, c));

    const ElisionResult r = ElideBootstraps(n, DeployParams());
    EXPECT_EQ(r.stats.bootstraps_after, r.stats.bootstraps_before);
    EXPECT_EQ(r.stats.elided_xor, 0u);
    EXPECT_GE(r.stats.refused_consumer, 1u);
    EXPECT_EQ(r.netlist.GetNode(x).type, GateType::kXor);
}

TEST(ElisionTest, MixedConsumersBlockEvenWhenOneAbsorbs) {
    // x feeds both an output (absorbs) and an AND (cannot); the static
    // domain encoding forces x to stay bootstrapped.
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);
    n.AddOutput(x);
    n.AddOutput(n.AddGate(GateType::kAnd, x, c));

    const ElisionResult r = ElideBootstraps(n, DeployParams());
    EXPECT_EQ(r.netlist.GetNode(x).type, GateType::kXor);
    EXPECT_GE(r.stats.refused_consumer, 1u);
}

TEST(ElisionTest, NotOverElidedXorBecomesLinNot) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);
    const NodeId inv = n.AddGate(GateType::kNot, x, x);
    n.AddOutput(inv);

    const ElisionResult r = ElideBootstraps(n, DeployParams());
    ASSERT_FALSE(r.netlist.Validate().has_value());
    EXPECT_EQ(r.netlist.GetNode(x).type, GateType::kLinXor);
    EXPECT_EQ(r.netlist.GetNode(inv).type, GateType::kLinNot);
    EXPECT_EQ(r.stats.elided_not, 1u);
    for (uint64_t v = 0; v < 4; ++v) {
        const auto in = Assignment(v, 2);
        EXPECT_EQ(r.netlist.EvaluatePlain(in), n.EvaluatePlain(in));
    }
}

TEST(ElisionTest, DepthCapLimitsChains) {
    // A chain x_i = XOR(x_{i-1}, in_i) of length 8 under a cap of 2:
    // every third link must stay bootstrapped.
    Netlist n;
    NodeId acc = n.AddInput();
    for (int i = 0; i < 8; ++i)
        acc = n.AddGate(GateType::kXor, acc, n.AddInput());
    n.AddOutput(acc);

    ElisionOptions options;
    options.max_linear_depth = 2;
    const ElisionResult r = ElideBootstraps(n, DeployParams(), options);
    ASSERT_FALSE(r.netlist.Validate().has_value());
    EXPECT_EQ(r.stats.depth_cap, 2);
    EXPECT_LE(r.stats.max_linear_depth, 2);
    EXPECT_GE(r.stats.refused_depth, 1u);
    EXPECT_LT(r.stats.bootstraps_after, r.stats.bootstraps_before);
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 16; ++trial) {
        const auto in = RandomInputs(rng, 9);
        EXPECT_EQ(r.netlist.EvaluatePlain(in), n.EvaluatePlain(in));
    }
}

TEST(ElisionTest, DisabledPassReturnsInputUnchanged) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kXor, a, b));

    ElisionOptions options;
    options.enabled = false;
    const ElisionResult r = ElideBootstraps(n, DeployParams(), options);
    EXPECT_EQ(r.stats.bootstraps_after, r.stats.bootstraps_before);
    EXPECT_EQ(r.netlist.ComputeStats().num_linear_gates, 0u);
}

TEST(ElisionTest, ReelidingAnElidedNetlistIsIdempotent) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId c = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, b);
    n.AddOutput(n.AddGate(GateType::kXnor, x, c));

    const ElisionResult first = ElideBootstraps(n, DeployParams());
    const ElisionResult second =
        ElideBootstraps(first.netlist, DeployParams());
    ASSERT_EQ(second.netlist.NumNodes(), first.netlist.NumNodes());
    for (NodeId id = 0; id < first.netlist.NumNodes(); ++id)
        EXPECT_EQ(second.netlist.GetNode(id).type,
                  first.netlist.GetNode(id).type);
}

class ElisionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ElisionPropertyTest, PreservesSemanticsAndStaysInBudget) {
    const uint64_t seed = GetParam();
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(n.AddInput());
    for (int i = 0; i < 120; ++i) {
        const GateType t =
            static_cast<GateType>(rng() % kNumFrontendGateTypes);
        pool.push_back(
            n.AddGate(t, pool[rng() % pool.size()], pool[rng() % pool.size()]));
    }
    for (int i = 0; i < 4; ++i)
        n.AddOutput(pool[pool.size() - 1 - (rng() % 16)]);

    ElisionOptions options;
    const ElisionResult r = ElideBootstraps(n, DeployParams(), options);
    ASSERT_FALSE(r.netlist.Validate().has_value());
    EXPECT_LE(r.stats.bootstraps_after, r.stats.bootstraps_before);
    // The reported worst sink failure is the raw (no safety margin) model
    // prediction on the final netlist; the pass must keep it in budget.
    EXPECT_LE(r.stats.worst_sink_failure, options.max_failure);

    std::mt19937_64 trials(seed ^ 0x5EED);
    for (int t = 0; t < 32; ++t) {
        const auto in = RandomInputs(trials, 6);
        EXPECT_EQ(r.netlist.EvaluatePlain(in), n.EvaluatePlain(in))
            << "seed=" << seed << " trial=" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElisionPropertyTest,
                         ::testing::Range<uint64_t>(1, 17));

TEST(ElisionTest, NoiseBudgetTracksLinearChains) {
    Netlist n;
    NodeId acc = n.AddInput();
    for (int i = 0; i < 3; ++i)
        acc = n.AddGate(GateType::kXor, acc, n.AddInput());
    n.AddOutput(acc);
    const ElisionResult r = ElideBootstraps(n, DeployParams());
    ASSERT_EQ(r.stats.bootstraps_after, 0u);

    const tfhe::NoiseAnalysis noise = tfhe::AnalyzeNoise(DeployParams());
    const NoiseBudget budget = AnalyzeNoiseBudget(r.netlist, noise);
    // A chain of k linear XORs over fresh inputs: every leaf enters with
    // total coefficient 2, so variance is 4 * (k+1) * fresh variance.
    EXPECT_EQ(budget.linear_depth[acc], 3);
    EXPECT_NEAR(budget.variance[acc], 16.0 * noise.fresh_lwe_variance,
                1e-3 * budget.variance[acc]);
}

/** Exhaustive elided-vs-original equivalence for HDL generators. */
void ExpectExhaustiveEquivalence(const Netlist& n) {
    const ElisionResult r = ElideBootstraps(n, DeployParams());
    ASSERT_FALSE(r.netlist.Validate().has_value());
    const size_t bits = n.Inputs().size();
    ASSERT_LE(bits, 17u);
    for (uint64_t v = 0; v < (UINT64_C(1) << bits); ++v) {
        const auto in = Assignment(v, bits);
        ASSERT_EQ(r.netlist.EvaluatePlain(in), n.EvaluatePlain(in))
            << "assignment " << v;
    }
}

TEST(ElisionHdlTest, RippleAdder8BitExhaustive) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    ExpectExhaustiveEquivalence(b.netlist());
}

TEST(ElisionHdlTest, KoggeStoneAdder6BitExhaustive) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 6, "x");
    const hdl::Bits y = hdl::InputBits(b, 6, "y");
    hdl::OutputBits(b, hdl::AddFast(b, x, y), "sum");
    ExpectExhaustiveEquivalence(b.netlist());
}

TEST(ElisionHdlTest, Mux8BitExhaustive) {
    hdl::Builder b;
    const hdl::Signal sel = b.MakeInput("sel");
    const hdl::Bits t = hdl::InputBits(b, 8, "t");
    const hdl::Bits f = hdl::InputBits(b, 8, "f");
    hdl::OutputBits(b, hdl::MuxBits(b, sel, t, f), "out");
    ExpectExhaustiveEquivalence(b.netlist());
}

TEST(ElisionHdlTest, Comparator8BitExhaustive) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    b.AddOutput(hdl::Ult(b, x, y), "lt");
    b.AddOutput(hdl::Eq(b, x, y), "eq");
    ExpectExhaustiveEquivalence(b.netlist());
}

}  // namespace
}  // namespace pytfhe::circuit
