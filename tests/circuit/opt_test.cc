#include "circuit/opt/passes.h"

#include <gtest/gtest.h>
#include <random>

#include "circuit/builder.h"

namespace pytfhe::circuit {
namespace {

/** Generates a random DAG with the given gate count over `inputs` inputs. */
Netlist RandomNetlist(uint64_t seed, int32_t inputs, int32_t gates,
                      bool use_constants) {
    std::mt19937_64 rng(seed);
    Netlist n;
    std::vector<NodeId> pool;
    if (use_constants) {
        pool.push_back(kConstFalse);
        pool.push_back(kConstTrue);
    }
    for (int32_t i = 0; i < inputs; ++i) pool.push_back(n.AddInput());
    for (int32_t i = 0; i < gates; ++i) {
        const GateType t = static_cast<GateType>(rng() % kNumFrontendGateTypes);
        const NodeId a = pool[rng() % pool.size()];
        const NodeId b = pool[rng() % pool.size()];
        pool.push_back(n.AddGate(t, a, b));
    }
    // A handful of outputs from the most recent nodes.
    for (int32_t i = 0; i < 4; ++i)
        n.AddOutput(pool[pool.size() - 1 - (rng() % (gates / 2 + 1))]);
    return n;
}

std::vector<bool> RandomInputs(std::mt19937_64& rng, size_t count) {
    std::vector<bool> v(count);
    for (size_t i = 0; i < count; ++i) v[i] = rng() & 1;
    return v;
}

class OptimizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizePropertyTest, PreservesSemanticsOnRandomCircuits) {
    const uint64_t seed = GetParam();
    Netlist original = RandomNetlist(seed, 6, 80, /*use_constants=*/true);
    OptResult opt = Optimize(original);
    ASSERT_FALSE(opt.netlist.Validate().has_value());
    EXPECT_LE(opt.netlist.NumGates(), original.NumGates());

    std::mt19937_64 rng(seed ^ 0xABCD);
    for (int trial = 0; trial < 32; ++trial) {
        const auto in = RandomInputs(rng, original.Inputs().size());
        EXPECT_EQ(original.EvaluatePlain(in), opt.netlist.EvaluatePlain(in))
            << "seed=" << seed << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(OptimizeTest, FoldsConstantCone) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId g1 = n.AddGate(GateType::kAnd, kConstTrue, kConstTrue);
    const NodeId g2 = n.AddGate(GateType::kXor, g1, kConstTrue);  // == 0.
    const NodeId g3 = n.AddGate(GateType::kOr, a, g2);            // == a.
    n.AddOutput(g3);
    OptResult r = Optimize(n);
    EXPECT_EQ(r.netlist.NumGates(), 0u);
    EXPECT_EQ(r.netlist.Outputs()[0], r.netlist.Inputs()[0]);
}

TEST(OptimizeTest, RemovesDeadGates) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId live = n.AddGate(GateType::kAnd, a, b);
    for (int i = 0; i < 10; ++i) n.AddGate(GateType::kXor, a, b);  // Dead.
    n.AddOutput(live);
    OptResult r = Optimize(n);
    EXPECT_EQ(r.netlist.NumGates(), 1u);
}

TEST(OptimizeTest, DedupesIdenticalGates) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId g1 = n.AddGate(GateType::kAnd, a, b);
    const NodeId g2 = n.AddGate(GateType::kAnd, a, b);
    const NodeId g3 = n.AddGate(GateType::kAnd, b, a);  // Commuted.
    const NodeId o = n.AddGate(
        GateType::kXor, n.AddGate(GateType::kOr, g1, g2), g3);
    n.AddOutput(o);
    OptResult r = Optimize(n);
    // g1 == g2 == g3; OR(g, g) folds to g; XOR(g, g) folds to 0 — the
    // whole circuit folds to constant false... which is then unrepresented.
    EXPECT_EQ(r.netlist.NumGates(), 0u);
    EXPECT_EQ(r.netlist.Outputs()[0], kConstFalse);
}

TEST(OptimizeTest, AbsorbsNotsIntoGateSet) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    const NodeId na = n.AddGate(GateType::kNot, a, a);
    const NodeId g = n.AddGate(GateType::kAnd, na, b);  // -> ANDNY(a, b).
    n.AddOutput(g);
    OptResult r = Optimize(n);
    EXPECT_EQ(r.netlist.NumGates(), 1u);
    bool found_andny = false;
    for (NodeId id = 2; id < r.netlist.NumNodes(); ++id) {
        const Node& node = r.netlist.GetNode(id);
        if (node.kind == NodeKind::kGate && node.type == GateType::kAndNY)
            found_andny = true;
    }
    EXPECT_TRUE(found_andny);
}

TEST(OptimizeTest, DoubleNegationCancels) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId na = n.AddGate(GateType::kNot, a, a);
    const NodeId nna = n.AddGate(GateType::kNot, na, na);
    n.AddOutput(nna);
    OptResult r = Optimize(n);
    EXPECT_EQ(r.netlist.NumGates(), 0u);
    EXPECT_EQ(r.netlist.Outputs()[0], r.netlist.Inputs()[0]);
}

TEST(OptimizeTest, DisabledRewritesAreRespected) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId b = n.AddInput();
    n.AddOutput(n.AddGate(GateType::kAnd, a, b));
    n.AddOutput(n.AddGate(GateType::kAnd, a, b));
    OptOptions no_cse;
    no_cse.cse = false;
    EXPECT_EQ(Optimize(n, no_cse).netlist.NumGates(), 2u);
    EXPECT_EQ(Optimize(n).netlist.NumGates(), 1u);
}

TEST(OptimizeTest, XorWithSameInputFoldsToFalse) {
    Netlist n;
    const NodeId a = n.AddInput();
    const NodeId x = n.AddGate(GateType::kXor, a, a);
    const NodeId o = n.AddGate(GateType::kOr, a, x);
    n.AddOutput(o);
    OptResult r = Optimize(n);
    EXPECT_EQ(r.netlist.NumGates(), 0u);
    EXPECT_EQ(r.netlist.Outputs()[0], r.netlist.Inputs()[0]);
}

TEST(BuilderTest, MuxLowersToTwoBootstrappedGatesPlusOr) {
    SimplifyingBuilder b;
    const NodeId s = b.MakeInput();
    const NodeId t = b.MakeInput();
    const NodeId f = b.MakeInput();
    b.AddOutput(b.MakeMux(s, t, f));
    EXPECT_EQ(b.netlist().NumGates(), 3u);  // AND + ANDNY + OR.
    // Exhaustive functional check.
    for (int sv = 0; sv < 2; ++sv)
        for (int tv = 0; tv < 2; ++tv)
            for (int fv = 0; fv < 2; ++fv)
                EXPECT_EQ(b.netlist().EvaluatePlain(
                              {sv == 1, tv == 1, fv == 1})[0],
                          sv ? tv == 1 : fv == 1);
}

TEST(BuilderTest, MuxWithConstantArmsSimplifies) {
    SimplifyingBuilder b;
    const NodeId s = b.MakeInput();
    const NodeId f = b.MakeInput();
    // s ? 1 : f == OR(s, f).
    b.AddOutput(b.MakeMux(s, b.MakeConst(true), f));
    EXPECT_EQ(b.netlist().NumGates(), 1u);
}

}  // namespace
}  // namespace pytfhe::circuit
