#include "ckks/ckks.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace pytfhe::ckks {
namespace {

std::vector<double> RandomSlots(uint64_t seed, int32_t n, double mag = 1.0) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-mag, mag);
    std::vector<double> v(n);
    for (auto& x : v) x = dist(rng);
    return v;
}

void ExpectSlotsNear(const std::vector<double>& got,
                     const std::vector<double>& want, double tol) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], tol) << "slot " << i;
}

class CkksTest : public ::testing::Test {
  protected:
    CkksTest() : rng_(501), ctx_(CkksParams{}, rng_) {}

    tfhe::Rng rng_;
    CkksContext ctx_;
};

TEST_F(CkksTest, EncodeDecodeRoundTrip) {
    const auto slots = RandomSlots(1, ctx_.params().NumSlots());
    const Poly m = ctx_.Encode(slots);
    const auto back = ctx_.Decode(m, std::pow(2.0, ctx_.params().log_scale),
                                  ctx_.params().log_q0);
    // Encoding rounds coefficients to integers at scale Delta.
    ExpectSlotsNear(back, slots, 1e-3);
}

TEST_F(CkksTest, EncryptDecryptRoundTrip) {
    const auto slots = RandomSlots(2, ctx_.params().NumSlots());
    const auto ct = ctx_.Encrypt(slots, rng_);
    ExpectSlotsNear(ctx_.Decrypt(ct), slots, 5e-3);
}

TEST_F(CkksTest, HomomorphicAdditionIsSlotwise) {
    const auto a = RandomSlots(3, ctx_.params().NumSlots());
    const auto b = RandomSlots(4, ctx_.params().NumSlots());
    const auto sum = ctx_.Add(ctx_.Encrypt(a, rng_), ctx_.Encrypt(b, rng_));
    auto want = a;
    for (size_t i = 0; i < want.size(); ++i) want[i] += b[i];
    ExpectSlotsNear(ctx_.Decrypt(sum), want, 1e-2);
}

TEST_F(CkksTest, HomomorphicMultiplicationIsSlotwise) {
    const auto a = RandomSlots(5, ctx_.params().NumSlots());
    const auto b = RandomSlots(6, ctx_.params().NumSlots());
    auto prod = ctx_.Mul(ctx_.Encrypt(a, rng_), ctx_.Encrypt(b, rng_));
    auto want = a;
    for (size_t i = 0; i < want.size(); ++i) want[i] *= b[i];
    // Before rescale the scale is Delta^2; Decrypt handles it via the
    // tracked scale.
    ExpectSlotsNear(ctx_.Decrypt(prod), want, 3e-2);
    // After rescale the result decrypts at one level down.
    prod = ctx_.Rescale(prod);
    EXPECT_EQ(prod.log_q,
              ctx_.params().log_q0 - ctx_.params().log_scale);
    ExpectSlotsNear(ctx_.Decrypt(prod), want, 3e-2);
}

TEST_F(CkksTest, PlaintextMulAndAdd) {
    const auto a = RandomSlots(7, ctx_.params().NumSlots());
    const auto w = RandomSlots(8, ctx_.params().NumSlots());
    auto ct = ctx_.MulPlain(ctx_.Encrypt(a, rng_), w);
    ct = ctx_.Rescale(ct);
    ct = ctx_.AddPlain(ct, w);
    auto want = a;
    for (size_t i = 0; i < want.size(); ++i)
        want[i] = want[i] * w[i] + w[i];
    ExpectSlotsNear(ctx_.Decrypt(ct), want, 3e-2);
}

TEST_F(CkksTest, DepthTwoEvaluation) {
    // (a*b) * c with rescales in between: exercises the modulus chain.
    const int32_t slots = ctx_.params().NumSlots();
    const auto a = RandomSlots(9, slots);
    const auto b = RandomSlots(10, slots);
    const auto c = RandomSlots(11, slots);
    auto ab = ctx_.Rescale(
        ctx_.Mul(ctx_.Encrypt(a, rng_), ctx_.Encrypt(b, rng_)));
    // Bring c down to ab's level by multiplying by ones and rescaling.
    auto cc = ctx_.Rescale(
        ctx_.MulPlain(ctx_.Encrypt(c, rng_),
                      std::vector<double>(slots, 1.0)));
    ASSERT_EQ(ab.log_q, cc.log_q);
    auto abc = ctx_.Rescale(ctx_.Mul(ab, cc));
    auto want = a;
    for (int32_t i = 0; i < slots; ++i) want[i] *= b[i] * c[i];
    ExpectSlotsNear(ctx_.Decrypt(abc), want, 0.05);
}

TEST_F(CkksTest, RotationShiftsSlots) {
    const auto a = RandomSlots(12, ctx_.params().NumSlots());
    const auto ct = ctx_.Encrypt(a, rng_);
    for (int32_t steps : {1, 2, 5}) {
        ctx_.EnsureRotationKey(steps, rng_);
        const auto rotated = ctx_.Rotate(ct, steps);
        std::vector<double> want(a.size());
        for (size_t i = 0; i < a.size(); ++i)
            want[i] = a[(i + steps) % a.size()];
        ExpectSlotsNear(ctx_.Decrypt(rotated), want, 2e-2);
    }
}

TEST_F(CkksTest, SumSlotsComputesTotal) {
    const auto a = RandomSlots(13, ctx_.params().NumSlots(), 0.5);
    double total = 0;
    for (double v : a) total += v;
    const auto summed = ctx_.SumSlots(ctx_.Encrypt(a, rng_), rng_);
    const auto slots = ctx_.Decrypt(summed);
    // Every slot now holds the total.
    for (double v : slots) EXPECT_NEAR(v, total, 0.1);
}

TEST_F(CkksTest, RotationKeysGrowPerStep) {
    // Section II-C: every distinct rotation step needs its own key, and
    // the material adds up (the paper cites tens of GB at real sizes).
    EXPECT_EQ(ctx_.RotationKeyBytes(), 0u);
    ctx_.EnsureRotationKey(1, rng_);
    const size_t one = ctx_.RotationKeyBytes();
    EXPECT_GT(one, 0u);
    ctx_.EnsureRotationKey(2, rng_);
    ctx_.EnsureRotationKey(4, rng_);
    EXPECT_EQ(ctx_.RotationKeyBytes(), 3 * one);
    // Re-requesting an existing key adds nothing.
    ctx_.EnsureRotationKey(1, rng_);
    EXPECT_EQ(ctx_.RotationKeyBytes(), 3 * one);
}

TEST(CkksParamsTest, DepthBudgetMatchesChain) {
    CkksParams p;
    p.log_q0 = 60;
    p.log_scale = 15;
    EXPECT_EQ(p.MaxDepth(), 3);  // 60 -> 45 -> 30 -> 15 (stop: 15 < 30).
    p.log_q0 = 62;
    p.log_scale = 18;
    EXPECT_EQ(p.MaxDepth(), 2);  // 62 -> 44 -> 26.
    EXPECT_EQ(p.NumSlots(), p.n / 2);
}

TEST(CkksLargerRing, WorksAtN128) {
    tfhe::Rng rng(502);
    CkksParams p;
    p.n = 128;
    CkksContext ctx(p, rng);
    const auto a = RandomSlots(14, p.NumSlots());
    const auto b = RandomSlots(15, p.NumSlots());
    const auto sum = ctx.Add(ctx.Encrypt(a, rng), ctx.Encrypt(b, rng));
    auto want = a;
    for (size_t i = 0; i < want.size(); ++i) want[i] += b[i];
    const auto got = ctx.Decrypt(sum);
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-2) << i;
}

}  // namespace
}  // namespace pytfhe::ckks
