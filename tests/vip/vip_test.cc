#include "vip/benchmarks.h"

#include <gtest/gtest.h>
#include <random>

#include "hdl/dtype.h"
#include "vip/registry.h"

namespace pytfhe::vip {
namespace {

using hdl::DType;

/** Appends `value` as `width` little-endian bits. */
void Push(std::vector<bool>& bits, uint64_t value, int32_t width) {
    for (int32_t i = 0; i < width; ++i) bits.push_back((value >> i) & 1);
}

void PushFixed(std::vector<bool>& bits, double value) {
    const auto enc = DType::Fixed(8, 8).Encode(value);
    bits.insert(bits.end(), enc.begin(), enc.end());
}

uint64_t Word(const std::vector<bool>& bits, size_t offset, int32_t width) {
    uint64_t v = 0;
    for (int32_t i = 0; i < width; ++i)
        if (bits[offset + i]) v |= UINT64_C(1) << i;
    return v;
}

int64_t SignedWord(const std::vector<bool>& bits, size_t offset,
                   int32_t width) {
    uint64_t v = Word(bits, offset, width);
    if ((v >> (width - 1)) & 1) v |= ~((UINT64_C(1) << width) - 1);
    return static_cast<int64_t>(v);
}

double FixedWord(const std::vector<bool>& bits, size_t offset) {
    return DType::Fixed(8, 8).Decode(
        std::vector<bool>(bits.begin() + offset, bits.begin() + offset + 16));
}

TEST(Vip, HammingDistance) {
    const Netlist n = BuildHammingDistance();
    std::mt19937_64 rng(1);
    for (int trial = 0; trial < 8; ++trial) {
        const uint64_t a = rng(), b = rng();
        std::vector<bool> in;
        Push(in, a, 64);
        Push(in, b, 64);
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(Word(out, 0, out.size()), RefHammingDistance(a, b));
    }
}

TEST(Vip, BubbleSort) {
    const Netlist n = BuildBubbleSort();
    std::mt19937_64 rng(2);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<uint64_t> v(8);
        std::vector<bool> in;
        for (auto& x : v) {
            x = rng() & 0xFF;
            Push(in, x, 8);
        }
        const auto out = n.EvaluatePlain(in);
        const auto want = RefBubbleSort(v);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(Word(out, i * 8, 8), want[i]) << trial << ":" << i;
    }
}

TEST(Vip, Distinctness) {
    const Netlist n = BuildDistinctness();
    std::mt19937_64 rng(3);
    int seen_true = 0, seen_false = 0;
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint64_t> v(8);
        std::vector<bool> in;
        for (auto& x : v) {
            // Small range forces collisions in some trials.
            x = rng() % (trial < 10 ? 10 : 256);
            Push(in, x, 8);
        }
        const bool got = n.EvaluatePlain(in)[0];
        EXPECT_EQ(got, RefDistinctness(v)) << trial;
        (got ? seen_true : seen_false)++;
    }
    EXPECT_GT(seen_true, 0);
    EXPECT_GT(seen_false, 0);
}

TEST(Vip, DotProduct) {
    const Netlist n = BuildDotProduct();
    std::mt19937_64 rng(4);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<int64_t> a(16), b(16);
        std::vector<bool> in;
        for (int i = 0; i < 16; ++i) {
            a[i] = static_cast<int64_t>(rng() % 256) - 128;
            b[i] = static_cast<int64_t>(rng() % 256) - 128;
            Push(in, static_cast<uint64_t>(a[i]), 8);
            Push(in, static_cast<uint64_t>(b[i]), 8);
        }
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(SignedWord(out, 0, 24), RefDotProduct(a, b)) << trial;
    }
}

TEST(Vip, Fibonacci) {
    const Netlist n = BuildFibonacci();
    for (auto [f0, f1] : {std::pair<uint64_t, uint64_t>{0, 1},
                          {1, 1},
                          {10, 7},
                          {60000, 60000}}) {
        std::vector<bool> in;
        Push(in, f0, 16);
        Push(in, f1, 16);
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(Word(out, 0, 16), RefFibonacci(f0, f1));
    }
}

TEST(Vip, FilteredQuery) {
    const Netlist n = BuildFilteredQuery();
    std::mt19937_64 rng(5);
    for (int trial = 0; trial < 6; ++trial) {
        const uint64_t threshold = rng() & 0xFF;
        std::vector<uint64_t> keys(16), values(16);
        std::vector<bool> in;
        Push(in, threshold, 8);
        for (int i = 0; i < 16; ++i) {
            keys[i] = rng() & 0xFF;
            values[i] = rng() & 0xFF;
            Push(in, keys[i], 8);
            Push(in, values[i], 8);
        }
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(Word(out, 0, 12), RefFilteredQuery(keys, values, threshold));
    }
}

TEST(Vip, Kadane) {
    const Netlist n = BuildKadane();
    std::mt19937_64 rng(6);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<int64_t> v(12);
        std::vector<bool> in;
        for (auto& x : v) {
            x = static_cast<int64_t>(rng() % 256) - 128;
            Push(in, static_cast<uint64_t>(x), 8);
        }
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(SignedWord(out, 0, 16), RefKadane(v)) << trial;
    }
}

TEST(Vip, Knn) {
    const Netlist n = BuildKnn();
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 8; ++trial) {
        const int64_t qx = static_cast<int64_t>(rng() % 200) - 100;
        const int64_t qy = static_cast<int64_t>(rng() % 200) - 100;
        std::vector<int64_t> px(8), py(8);
        std::vector<bool> in;
        Push(in, static_cast<uint64_t>(qx), 8);
        Push(in, static_cast<uint64_t>(qy), 8);
        for (int i = 0; i < 8; ++i) {
            px[i] = static_cast<int64_t>(rng() % 200) - 100;
            py[i] = static_cast<int64_t>(rng() % 200) - 100;
            Push(in, static_cast<uint64_t>(px[i]), 8);
            Push(in, static_cast<uint64_t>(py[i]), 8);
        }
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(Word(out, 0, 3), RefKnn(px, py, qx, qy)) << trial;
    }
}

TEST(Vip, MatrixMultiply) {
    const Netlist n = BuildMatrixMultiply();
    std::mt19937_64 rng(8);
    std::vector<int64_t> a(16), b(16);
    std::vector<bool> in;
    for (auto& x : a) {
        x = static_cast<int64_t>(rng() % 256) - 128;
        Push(in, static_cast<uint64_t>(x), 8);
    }
    for (auto& x : b) {
        x = static_cast<int64_t>(rng() % 256) - 128;
        Push(in, static_cast<uint64_t>(x), 8);
    }
    const auto out = n.EvaluatePlain(in);
    const auto want = RefMatrixMultiply(a, b);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(SignedWord(out, i * 20, 20), want[i]) << i;
}

TEST(Vip, MinMaxMean) {
    const Netlist n = BuildMinMaxMean();
    std::mt19937_64 rng(9);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<uint64_t> v(16);
        std::vector<bool> in;
        for (auto& x : v) {
            x = rng() & 0xFF;
            Push(in, x, 8);
        }
        const auto out = n.EvaluatePlain(in);
        const auto want = RefMinMaxMean(v);
        EXPECT_EQ(Word(out, 0, 8), want[0]);
        EXPECT_EQ(Word(out, 8, 8), want[1]);
        EXPECT_EQ(Word(out, 16, 8), want[2]);
    }
}

TEST(Vip, Primality) {
    const Netlist n = BuildPrimality();
    for (uint64_t x : {0u, 1u, 2u, 3u, 4u, 17u, 91u, 97u, 169u, 221u, 251u,
                       255u}) {
        std::vector<bool> in;
        Push(in, x, 8);
        EXPECT_EQ(n.EvaluatePlain(in)[0], RefPrimality(x)) << x;
    }
}

TEST(Vip, EditDistance) {
    const Netlist n = BuildEditDistance();
    std::mt19937_64 rng(10);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<uint64_t> a(6), b(6);
        std::vector<bool> in;
        for (auto& x : a) x = rng() % 4;  // Small alphabet forces matches.
        for (auto& x : b) x = rng() % 4;
        for (auto x : a) Push(in, x, 4);
        for (auto x : b) Push(in, x, 4);
        const auto out = n.EvaluatePlain(in);
        EXPECT_EQ(Word(out, 0, 4), RefEditDistance(a, b)) << trial;
    }
}

TEST(Vip, EulerApprox) {
    const Netlist n = BuildEulerApprox();
    for (double x : {0.0, 0.5, 1.0, -0.5, 1.5}) {
        std::vector<bool> in;
        PushFixed(in, x);
        const auto out = n.EvaluatePlain(in);
        // Fixed-point truncation differs from the (rounding) reference by
        // up to a few LSBs per iteration.
        EXPECT_NEAR(FixedWord(out, 0), RefEulerApprox(x), 8.0 / 256) << x;
        // And the truncated series itself tracks e^x.
        EXPECT_NEAR(FixedWord(out, 0), std::exp(x), 0.1) << x;
    }
}

TEST(Vip, NrSolver) {
    const Netlist n = BuildNrSolver();
    for (double a : {0.25, 1.0, 2.0, 3.0}) {
        std::vector<bool> in;
        PushFixed(in, a);
        const auto out = n.EvaluatePlain(in);
        EXPECT_NEAR(FixedWord(out, 0), std::sqrt(a), 0.05) << a;
    }
}

TEST(Vip, GradientDescent) {
    const Netlist n = BuildGradientDescent();
    for (auto [x0, c] : {std::pair<double, double>{4.0, 1.0},
                         {-2.0, 0.5},
                         {0.0, -3.0}}) {
        std::vector<bool> in;
        PushFixed(in, c);
        PushFixed(in, x0);
        const auto out = n.EvaluatePlain(in);
        // After 6 halvings the iterate is close to the target c.
        EXPECT_NEAR(FixedWord(out, 0), c, std::abs(x0 - c) / 32 + 0.1);
        EXPECT_NEAR(FixedWord(out, 0), RefGradientDescent(x0, c), 0.05);
    }
}

TEST(Vip, Kepler) {
    const Netlist n = BuildKepler();
    for (auto [m, e] : {std::pair<double, double>{1.0, 0.1},
                        {0.5, 0.3},
                        {1.5, 0.05}}) {
        std::vector<bool> in;
        PushFixed(in, m);
        PushFixed(in, e);
        const auto out = n.EvaluatePlain(in);
        EXPECT_NEAR(FixedWord(out, 0), RefKepler(m, e), 0.05) << m;
        // Kepler residual: E - e sin(E) should be close to M.
        const double big_e = FixedWord(out, 0);
        EXPECT_NEAR(big_e - e * std::sin(big_e), m, 0.1);
    }
}

TEST(Vip, Parrondo) {
    const Netlist n = BuildParrondo();
    std::mt19937_64 rng(11);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<bool> coins(16);
        for (size_t i = 0; i < coins.size(); ++i) coins[i] = rng() & 1;
        const auto out = n.EvaluatePlain(coins);
        EXPECT_EQ(Word(out, 0, 8),
                  static_cast<uint64_t>(RefParrondo(coins))) << trial;
    }
}

TEST(Vip, RobertsCross) {
    const Netlist n = BuildRobertsCross();
    std::mt19937_64 rng(12);
    std::vector<double> img(64);
    std::vector<bool> in;
    for (auto& p : img) {
        p = DType::Fixed(8, 8).Quantize((rng() % 512) / 256.0);
        PushFixed(in, p);
    }
    const auto out = n.EvaluatePlain(in);
    const auto want = RefRobertsCross(img);
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_NEAR(FixedWord(out, i * 16), want[i], 1e-9) << i;
}

TEST(Vip, TeaMatchesReferenceCipher) {
    const Netlist n = BuildTea();
    std::mt19937_64 rng(13);
    for (int trial = 0; trial < 3; ++trial) {
        const uint64_t v0 = rng() & 0xFFFFFFFF, v1 = rng() & 0xFFFFFFFF;
        std::vector<uint64_t> key(4);
        std::vector<bool> in;
        Push(in, v0, 32);
        Push(in, v1, 32);
        for (auto& k : key) {
            k = rng() & 0xFFFFFFFF;
            Push(in, k, 32);
        }
        const auto out = n.EvaluatePlain(in);
        const auto want = RefTea(v0, v1, key);
        EXPECT_EQ(Word(out, 0, 32), want.first) << trial;
        EXPECT_EQ(Word(out, 32, 32), want.second) << trial;
    }
}

TEST(Vip, TeaDecryptsWhatItEncrypts) {
    // Reference sanity: TEA decryption (software) inverts the circuit's
    // encryption output.
    std::vector<uint64_t> key{0x11111111, 0x22222222, 0x33333333, 0x44444444};
    const auto ct = RefTea(0xDEADBEEF, 0xCAFEF00D, key);
    uint32_t v0 = static_cast<uint32_t>(ct.first);
    uint32_t v1 = static_cast<uint32_t>(ct.second);
    uint32_t sum = 0x9E3779B9u * 32;
    for (int r = 0; r < 32; ++r) {
        v1 -= ((v0 << 4) + static_cast<uint32_t>(key[2])) ^ (v0 + sum) ^
              ((v0 >> 5) + static_cast<uint32_t>(key[3]));
        v0 -= ((v1 << 4) + static_cast<uint32_t>(key[0])) ^ (v1 + sum) ^
              ((v1 >> 5) + static_cast<uint32_t>(key[1]));
        sum -= 0x9E3779B9u;
    }
    EXPECT_EQ(v0, 0xDEADBEEF);
    EXPECT_EQ(v1, 0xCAFEF00D);
}

TEST(VipRegistry, ExtraWorkloadsIncludeTea) {
    const auto extras = ExtraWorkloads();
    ASSERT_EQ(extras.size(), 1u);
    EXPECT_EQ(extras[0].name, "TEA");
    const Netlist n = extras[0].build();
    EXPECT_FALSE(n.Validate().has_value());
    EXPECT_GT(n.NumGates(), 10000u);  // 32 rounds of 32-bit arithmetic.
}

TEST(VipRegistry, Has18VipBenchmarks) {
    EXPECT_EQ(VipWorkloads().size(), 18u);
}

TEST(VipRegistry, NamesAreUnique) {
    auto all = AllWorkloads();
    for (size_t i = 0; i < all.size(); ++i)
        for (size_t j = i + 1; j < all.size(); ++j)
            EXPECT_NE(all[i].name, all[j].name);
}

TEST(VipRegistry, EveryVipKernelBuildsValidNetlists) {
    for (const auto& w : VipWorkloads()) {
        const Netlist n = w.build();
        EXPECT_FALSE(n.Validate().has_value()) << w.name;
        EXPECT_GT(n.NumGates(), 0u) << w.name;
        EXPECT_GT(n.Outputs().size(), 0u) << w.name;
    }
}

TEST(VipRegistry, NeuralWorkloadsRegisteredWithScaledSizes) {
    BenchScale scale;
    scale.mnist_image = 6;
    scale.attention_seq = 2;
    scale.attention_hidden_s = 4;
    scale.attention_hidden_l = 8;
    const auto neural = NeuralWorkloads(scale);
    ASSERT_EQ(neural.size(), 5u);
    for (const auto& w : neural) {
        const Netlist n = w.build();
        EXPECT_FALSE(n.Validate().has_value()) << w.name;
        EXPECT_TRUE(w.is_neural);
    }
}

}  // namespace
}  // namespace pytfhe::vip
