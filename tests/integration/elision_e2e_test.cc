/**
 * @file
 * End-to-end acceptance for bootstrap elision: the same HDL netlist
 * compiled with and without the pass, executed under real encryption on
 * every backend path (sequential interpreter, wave-threaded interpreter,
 * dependency-counting executor), must decrypt to identical results on
 * randomized encrypted inputs.
 */
#include <gtest/gtest.h>

#include <random>

#include "backend/executor.h"
#include "circuit/builder.h"
#include "core/compiler.h"
#include "hdl/word_ops.h"

namespace pytfhe {
namespace {

class ElisionE2eTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        rng_ = new tfhe::Rng(42);
        secret_ = new tfhe::SecretKeySet(tfhe::ToyParams(), *rng_);
        gates_ = new tfhe::GateEvaluator(*secret_, *rng_);
    }
    static void TearDownTestSuite() {
        delete gates_;
        delete secret_;
        delete rng_;
    }

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> out;
        out.reserve(bits.size());
        for (bool b : bits) out.push_back(secret_->Encrypt(b, *rng_));
        return out;
    }

    std::vector<bool> Decrypt(const std::vector<tfhe::LweSample>& samples) {
        std::vector<bool> bits;
        bits.reserve(samples.size());
        for (const auto& s : samples) bits.push_back(secret_->Decrypt(s));
        return bits;
    }

    /**
     * Compiles `netlist` twice — elided against the execution parameter
     * set, and all-bootstrapped — then checks both against the plain
     * evaluation on `trials` random encrypted inputs through every
     * backend execution path.
     */
    void ExpectElidedEquivalence(const circuit::Netlist& netlist,
                                 uint64_t seed, int trials,
                                 bool expect_elision = true) {
        core::CompileOptions with;
        with.params = tfhe::ToyParams();
        std::string error;
        auto elided = core::Compile(netlist, with, &error);
        ASSERT_TRUE(elided.has_value()) << error;
        // Toy noise is tiny, so the pass must actually fire on netlists
        // with absorbable XORs — otherwise this test is vacuous. (The
        // comparator is the counterexample: all its XNORs feed ANDs,
        // which can never absorb a linear operand.)
        if (expect_elision) {
            ASSERT_LT(elided->elision_stats.bootstraps_after,
                      elided->elision_stats.bootstraps_before);
        }

        auto plain = core::Compile(netlist, {}, &error);
        ASSERT_TRUE(plain.has_value()) << error;
        ASSERT_EQ(plain->elision_stats.bootstraps_after,
                  plain->elision_stats.bootstraps_before);

        backend::TfheEvaluator eval(*gates_);
        backend::Executor executor;
        std::mt19937_64 prng(seed);
        for (int t = 0; t < trials; ++t) {
            std::vector<bool> in(netlist.Inputs().size());
            for (size_t i = 0; i < in.size(); ++i) in[i] = prng() & 1;
            const std::vector<bool> want = netlist.EvaluatePlain(in);

            const auto enc = Encrypt(in);
            EXPECT_EQ(Decrypt(backend::RunProgram(elided->program, eval, enc)),
                      want)
                << "elided sequential, trial " << t;
            EXPECT_EQ(Decrypt(backend::RunProgramThreaded(elided->program,
                                                          eval, enc, 4)),
                      want)
                << "elided threaded, trial " << t;
            EXPECT_EQ(Decrypt(executor.Run(elided->program, eval, enc, 4)),
                      want)
                << "elided executor, trial " << t;
            EXPECT_EQ(Decrypt(backend::RunProgram(plain->program, eval, enc)),
                      want)
                << "bootstrapped sequential, trial " << t;
        }
    }

    static tfhe::Rng* rng_;
    static tfhe::SecretKeySet* secret_;
    static tfhe::GateEvaluator* gates_;
};

tfhe::Rng* ElisionE2eTest::rng_ = nullptr;
tfhe::SecretKeySet* ElisionE2eTest::secret_ = nullptr;
tfhe::GateEvaluator* ElisionE2eTest::gates_ = nullptr;

TEST_F(ElisionE2eTest, RippleAdderUnderEncryption) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    ExpectElidedEquivalence(b.netlist(), 11, 3);
}

TEST_F(ElisionE2eTest, MultiplierUnderEncryption) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 4, "x");
    const hdl::Bits y = hdl::InputBits(b, 4, "y");
    hdl::OutputBits(b, hdl::UMul(b, x, y, 8), "prod");
    ExpectElidedEquivalence(b.netlist(), 13, 2);
}

TEST_F(ElisionE2eTest, ComparatorUnderEncryption) {
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    b.AddOutput(hdl::Ult(b, x, y), "lt");
    b.AddOutput(hdl::Eq(b, x, y), "eq");
    ExpectElidedEquivalence(b.netlist(), 17, 3, /*expect_elision=*/false);
}

TEST_F(ElisionE2eTest, ParityTreeUnderEncryption) {
    // The elision showcase: a 16-leaf XOR reduction compiles to zero
    // bootstraps under toy noise.
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 16, "x");
    circuit::NodeId acc = x[0];
    for (int32_t i = 1; i < x.Width(); ++i)
        acc = b.MakeGate(circuit::GateType::kXor, acc, x[i]);
    b.AddOutput(acc, "parity");
    ExpectElidedEquivalence(b.netlist(), 19, 4);
}

}  // namespace
}  // namespace pytfhe
