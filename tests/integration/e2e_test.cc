/**
 * @file
 * Cross-module integration tests: whole VIP-Bench workloads compiled by
 * the full pipeline and executed under real encryption, plus the complete
 * client/server wire protocol through serialized streams.
 */
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "backend/execute.h"
#include "core/compiler.h"
#include "tfhe/serialization.h"
#include "vip/benchmarks.h"

namespace pytfhe {
namespace {

class EncryptedWorkloadTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        rng_ = new tfhe::Rng(2001);
        secret_ = new tfhe::SecretKeySet(tfhe::ToyParams(), *rng_);
        gates_ = new tfhe::GateEvaluator(*secret_, *rng_);
    }
    static void TearDownTestSuite() {
        delete gates_;
        delete secret_;
        delete rng_;
    }

    std::vector<tfhe::LweSample> Encrypt(const std::vector<bool>& bits) {
        std::vector<tfhe::LweSample> out;
        out.reserve(bits.size());
        for (bool b : bits) out.push_back(secret_->Encrypt(b, *rng_));
        return out;
    }

    /** Runs a compiled netlist under encryption and decrypts the result. */
    std::vector<bool> RunEncrypted(const circuit::Netlist& netlist,
                                   const std::vector<bool>& inputs) {
        auto compiled = core::Compile(netlist);
        EXPECT_TRUE(compiled.has_value());
        backend::TfheEvaluator eval(*gates_);
        backend::ExecOptions options;
        options.num_threads = 2;
        const auto out = backend::Execute(compiled->program, eval,
                                          Encrypt(inputs), options);
        std::vector<bool> bits;
        bits.reserve(out.size());
        for (const auto& s : out) bits.push_back(secret_->Decrypt(s));
        return bits;
    }

    static tfhe::Rng* rng_;
    static tfhe::SecretKeySet* secret_;
    static tfhe::GateEvaluator* gates_;
};

tfhe::Rng* EncryptedWorkloadTest::rng_ = nullptr;
tfhe::SecretKeySet* EncryptedWorkloadTest::secret_ = nullptr;
tfhe::GateEvaluator* EncryptedWorkloadTest::gates_ = nullptr;

uint64_t WordOf(const std::vector<bool>& bits, size_t offset, int32_t width) {
    uint64_t v = 0;
    for (int32_t i = 0; i < width; ++i)
        if (bits[offset + i]) v |= UINT64_C(1) << i;
    return v;
}

void PushWord(std::vector<bool>& bits, uint64_t v, int32_t width) {
    for (int32_t i = 0; i < width; ++i) bits.push_back((v >> i) & 1);
}

TEST_F(EncryptedWorkloadTest, FibonacciUnderEncryption) {
    // A full VIP-Bench workload through compile + optimize + assemble +
    // encrypted threaded execution: ~900 bootstrapped gates.
    const circuit::Netlist n = vip::BuildFibonacci();
    std::vector<bool> in;
    PushWord(in, 3, 16);
    PushWord(in, 7, 16);
    const auto out = RunEncrypted(n, in);
    EXPECT_EQ(WordOf(out, 0, 16), vip::RefFibonacci(3, 7));
}

TEST_F(EncryptedWorkloadTest, PrimalityUnderEncryption) {
    const circuit::Netlist n = vip::BuildPrimality();
    for (uint64_t x : {97u, 91u}) {
        std::vector<bool> in;
        PushWord(in, x, 8);
        EXPECT_EQ(RunEncrypted(n, in)[0], vip::RefPrimality(x)) << x;
    }
}

TEST_F(EncryptedWorkloadTest, MinMaxMeanUnderEncryption) {
    const circuit::Netlist n = vip::BuildMinMaxMean();
    std::mt19937_64 prng(5);
    std::vector<uint64_t> v(16);
    std::vector<bool> in;
    for (auto& x : v) {
        x = prng() & 0xFF;
        PushWord(in, x, 8);
    }
    const auto out = RunEncrypted(n, in);
    const auto want = vip::RefMinMaxMean(v);
    EXPECT_EQ(WordOf(out, 0, 8), want[0]);
    EXPECT_EQ(WordOf(out, 8, 8), want[1]);
    EXPECT_EQ(WordOf(out, 16, 8), want[2]);
}

TEST(WireProtocol, FullClientServerExchangeThroughStreams) {
    // The complete Fig. 1 protocol with every artifact serialized:
    // 1. Client generates keys, persists secrets, serializes the
    //    evaluation key and the encrypted inputs.
    tfhe::Rng rng(77);
    tfhe::SecretKeySet client_keys(tfhe::ToyParams(), rng);
    tfhe::GateEvaluator keygen(client_keys, rng);

    std::stringstream eval_key_wire, input_wire, program_wire;
    tfhe::SaveBootstrappingKey(eval_key_wire, keygen.key());

    // An 8-bit adder program, shipped as a binary.
    hdl::Builder b;
    const hdl::Bits x = hdl::InputBits(b, 8, "x");
    const hdl::Bits y = hdl::InputBits(b, 8, "y");
    hdl::OutputBits(b, hdl::Add(b, x, y), "sum");
    auto compiled = core::Compile(b.netlist());
    ASSERT_TRUE(compiled.has_value());
    compiled->program.Serialize(program_wire);

    std::vector<tfhe::LweSample> inputs;
    const hdl::DType u8 = hdl::DType::UInt(8);
    for (double v : {209.0, 46.0}) {
        for (bool bit : u8.Encode(v))
            inputs.push_back(client_keys.Encrypt(bit, rng));
    }
    tfhe::SaveLweSamples(input_wire, inputs);

    // 2. Server: sees ONLY the three wires. No secret key in scope.
    std::stringstream result_wire;
    {
        std::string error;
        auto bk = tfhe::LoadBootstrappingKey(eval_key_wire, &error);
        ASSERT_TRUE(bk.has_value()) << error;
        auto program = pasm::Program::Deserialize(program_wire, &error);
        ASSERT_TRUE(program.has_value()) << error;
        auto cts = tfhe::LoadLweSamples(input_wire, &error);
        ASSERT_TRUE(cts.has_value()) << error;

        tfhe::GateEvaluator server_gates(
            std::make_shared<tfhe::BootstrappingKey>(std::move(*bk)));
        backend::TfheEvaluator eval(server_gates);
        tfhe::SaveLweSamples(result_wire,
                             backend::RunProgram(*program, eval, *cts));
    }

    // 3. Client decrypts the response: 209 + 46 = 255.
    auto result = tfhe::LoadLweSamples(result_wire);
    ASSERT_TRUE(result.has_value());
    std::vector<bool> bits;
    for (const auto& s : *result) bits.push_back(client_keys.Decrypt(s));
    EXPECT_EQ(u8.Decode(bits), 255.0);
}

}  // namespace
}  // namespace pytfhe
