#include "nn/models.h"

#include <gtest/gtest.h>

#include "nn_test_util.h"

namespace pytfhe::nn {
namespace {

/** Circuit-vs-reference check for one MNIST variant at a tiny size. */
void CheckMnist(const std::shared_ptr<Sequential>& model, uint64_t seed) {
    MnistConfig cfg;
    cfg.image = 7;
    const DType t = DType::Fixed(8, 8);
    const Shape in_shape{1, 7, 7};
    const auto data = RandomData(seed, NumElements(in_shape), t);
    const auto got = RunModule(*model, t, in_shape, data);
    Shape shape = in_shape;
    const auto want = model->RefForward(data, shape, t);
    ASSERT_EQ(got.size(), 10u);
    ExpectClose(got, want, 0.03, 0.2);
}

TEST(Models, MnistMediumMatchesReference) {
    MnistConfig cfg;
    cfg.image = 7;
    cfg.seed = 21;
    CheckMnist(MnistM(cfg), 91);
}

TEST(Models, MnistLargeMatchesReference) {
    MnistConfig cfg;
    cfg.image = 7;
    cfg.seed = 22;
    CheckMnist(MnistL(cfg), 92);
}

TEST(Models, PaperTopologyDimensions) {
    // Fig. 4: 28x28 -> Conv3x3 -> 26x26 -> MaxPool3/1 -> 24x24 -> Flatten
    // -> Linear(576, 10).
    MnistConfig cfg;  // Default image = 28.
    auto model = MnistS(cfg);
    EXPECT_EQ(MnistInputShape(cfg), (Shape{1, 28, 28}));
    // Reference pass confirms the 576-feature flatten.
    Shape shape = MnistInputShape(cfg);
    std::vector<double> zeros(28 * 28, 0.0);
    const auto out = model->RefForward(zeros, shape, hdl::DType::Fixed(8, 8));
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(shape, (Shape{10}));
}

TEST(Models, DistinctSeedsGiveDistinctWeights) {
    MnistConfig a, b;
    a.image = b.image = 6;
    a.seed = 1;
    b.seed = 2;
    const DType t = DType::Fixed(8, 8);
    const auto data = RandomData(5, 36, t);
    Shape sa{1, 6, 6}, sb{1, 6, 6};
    const auto ra = MnistS(a)->RefForward(data, sa, t);
    const auto rb = MnistS(b)->RefForward(data, sb, t);
    EXPECT_NE(ra, rb);
}

TEST(Models, SameSeedIsDeterministic) {
    MnistConfig cfg;
    cfg.image = 6;
    cfg.seed = 9;
    const DType t = DType::Fixed(8, 8);
    const auto data = RandomData(6, 36, t);
    Shape s1{1, 6, 6}, s2{1, 6, 6};
    EXPECT_EQ(MnistS(cfg)->RefForward(data, s1, t),
              MnistS(cfg)->RefForward(data, s2, t));
}

}  // namespace
}  // namespace pytfhe::nn
