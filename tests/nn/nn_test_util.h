/** @file Helpers for evaluating NN circuits against references. */
#ifndef PYTFHE_TESTS_NN_TEST_UTIL_H
#define PYTFHE_TESTS_NN_TEST_UTIL_H

#include <random>
#include <vector>

#include "nn/layers.h"

namespace pytfhe::nn {

/** Deterministic input data in [-2, 2], quantized to the dtype. */
inline std::vector<double> RandomData(uint64_t seed, size_t n,
                                      const hdl::DType& t) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    std::vector<double> v(n);
    for (auto& x : v) x = t.Quantize(dist(rng));
    return v;
}

/**
 * Builds module->Forward over an input tensor, evaluates the circuit on
 * plaintext bits, and returns the decoded outputs.
 */
inline std::vector<double> RunModule(const Module& module, const DType& t,
                                     const Shape& in_shape,
                                     const std::vector<double>& data,
                                     uint64_t* gate_count = nullptr) {
    Builder b;
    Tensor in = Tensor::Input(b, t, in_shape, "x");
    Tensor out = module.Forward(b, in);
    out.Output(b, "y");

    std::vector<bool> bits;
    for (double d : data) {
        const auto enc = t.Encode(d);
        bits.insert(bits.end(), enc.begin(), enc.end());
    }
    const std::vector<bool> raw = b.netlist().EvaluatePlain(bits);
    if (gate_count) *gate_count = b.netlist().NumGates();

    const int32_t wb = out.dtype().TotalBits();
    std::vector<double> result(out.Numel());
    for (int64_t i = 0; i < out.Numel(); ++i) {
        std::vector<bool> word(raw.begin() + i * wb,
                               raw.begin() + (i + 1) * wb);
        result[i] = out.dtype().Decode(word);
    }
    return result;
}

/** Elementwise comparison with absolute+relative tolerance. */
inline void ExpectClose(const std::vector<double>& got,
                        const std::vector<double>& want, double rel,
                        double abs_tol) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        const double tol = abs_tol + rel * std::abs(want[i]);
        EXPECT_NEAR(got[i], want[i], tol) << "index " << i;
    }
}

}  // namespace pytfhe::nn

#endif  // PYTFHE_TESTS_NN_TEST_UTIL_H
