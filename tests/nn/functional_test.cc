#include "nn/functional.h"

#include <gtest/gtest.h>

#include "nn/reference.h"
#include "nn_test_util.h"

namespace pytfhe::nn {
namespace {

/** Builds a two-tensor functional circuit and evaluates it. */
std::vector<double> RunBinary(
    const DType& t, const Shape& shape, const std::vector<double>& x,
    const std::vector<double>& y,
    const std::function<Tensor(Builder&, const Tensor&, const Tensor&)>& fn) {
    Builder b;
    Tensor tx = Tensor::Input(b, t, shape, "x");
    Tensor ty = Tensor::Input(b, t, shape, "y");
    Tensor out = fn(b, tx, ty);
    out.Output(b, "o");
    std::vector<bool> bits;
    for (double d : x) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    for (double d : y) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    const int32_t wb = out.dtype().TotalBits();
    std::vector<double> result(out.Numel());
    for (int64_t i = 0; i < out.Numel(); ++i)
        result[i] = out.dtype().Decode(
            std::vector<bool>(raw.begin() + i * wb, raw.begin() + (i + 1) * wb));
    return result;
}

TEST(Functional, ElementwiseAddMul) {
    const DType t = DType::Fixed(6, 4);
    const std::vector<double> x{1.0, -2.5, 3.25, 0.5};
    const std::vector<double> y{0.25, 1.5, -1.0, 2.0};
    auto add = RunBinary(t, {2, 2}, x, y, Add);
    auto mul = RunBinary(t, {2, 2}, x, y, Mul);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(add[i], x[i] + y[i]) << i;
        EXPECT_NEAR(mul[i], x[i] * y[i], 1.0 / 16) << i;
    }
}

TEST(Functional, ElementwiseSubDiv) {
    const DType t = DType::Float(6, 8);
    const std::vector<double> x{1.0, -2.5, 3.0, 8.0};
    const std::vector<double> y{0.25, 1.25, -1.5, 2.0};
    auto sub = RunBinary(t, {4}, x, y, Sub);
    auto div = RunBinary(t, {4}, x, y, Div);
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(sub[i], x[i] - y[i], 0.02) << i;
        EXPECT_NEAR(div[i], x[i] / y[i], std::abs(x[i] / y[i]) * 0.02) << i;
    }
}

TEST(Functional, Comparisons) {
    const DType t = DType::SInt(6);
    Builder b;
    Tensor x = Tensor::Input(b, t, {3}, "x");
    Tensor y = Tensor::Input(b, t, {3}, "y");
    CmpLt(b, x, y).Output(b, "lt");
    CmpGe(b, x, y).Output(b, "ge");
    CmpEq(b, x, y).Output(b, "eq");
    std::vector<bool> bits;
    for (double d : {1.0, -5.0, 3.0}) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    for (double d : {2.0, -5.0, -7.0}) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    // lt: {1<2, -5<-5, 3<-7} = {1,0,0}; ge = {0,1,1}; eq = {0,1,0}.
    EXPECT_EQ(raw[0], true);
    EXPECT_EQ(raw[1], false);
    EXPECT_EQ(raw[2], false);
    EXPECT_EQ(raw[3], false);
    EXPECT_EQ(raw[4], true);
    EXPECT_EQ(raw[5], true);
    EXPECT_EQ(raw[6], false);
    EXPECT_EQ(raw[7], true);
    EXPECT_EQ(raw[8], false);
}

TEST(Functional, MatMulMatchesReference) {
    const DType t = DType::Fixed(8, 6);
    const std::vector<double> x = RandomData(7, 6, t);   // [2,3].
    const std::vector<double> y = RandomData(8, 12, t);  // [3,4].
    Builder b;
    Tensor tx = Tensor::Input(b, t, {2, 3}, "x");
    Tensor ty = Tensor::Input(b, t, {3, 4}, "y");
    Tensor out = MatMul(b, tx, ty);
    EXPECT_EQ(out.shape(), (Shape{2, 4}));
    out.Output(b, "o");
    std::vector<bool> bits;
    for (double d : x) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    for (double d : y) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    auto want = reference::MatMul(x, y, 2, 3, 4);
    const int32_t wb = t.TotalBits();
    for (int i = 0; i < 8; ++i) {
        const double got = t.Decode(std::vector<bool>(
            raw.begin() + i * wb, raw.begin() + (i + 1) * wb));
        EXPECT_NEAR(got, want[i], 0.2) << i;  // Fixed-point truncation.
    }
}

TEST(Functional, DotProduct) {
    const DType t = DType::SInt(12);
    Builder b;
    Tensor x = Tensor::Input(b, t, {4}, "x");
    Tensor y = Tensor::Input(b, t, {4}, "y");
    hdl::OutputValue(b, Dot(b, x, y), "o");
    std::vector<bool> bits;
    for (double d : {1.0, 2.0, 3.0, 4.0}) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    for (double d : {5.0, -6.0, 7.0, 8.0}) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    EXPECT_EQ(t.Decode(raw), 5.0 - 12.0 + 21.0 + 32.0);
}

TEST(Functional, Reductions) {
    const DType t = DType::SInt(10);
    Builder b;
    Tensor x = Tensor::Input(b, t, {5}, "x");
    hdl::OutputValue(b, Sum(b, x), "sum");
    hdl::OutputValue(b, MaxVal(b, x), "max");
    hdl::OutputValue(b, MinVal(b, x), "min");
    hdl::OutputValue(b, Prod(b, x), "prod");
    std::vector<bool> bits;
    for (double d : {3.0, -7.0, 11.0, 2.0, -1.0}) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    auto word = [&](int i) {
        return t.Decode(std::vector<bool>(raw.begin() + i * 10,
                                          raw.begin() + (i + 1) * 10));
    };
    EXPECT_EQ(word(0), 8.0);
    EXPECT_EQ(word(1), 11.0);
    EXPECT_EQ(word(2), -7.0);
    EXPECT_EQ(word(3), 3.0 * -7.0 * 11.0 * 2.0 * -1.0);
}

TEST(Functional, ArgMaxArgMin) {
    const DType t = DType::SInt(8);
    Builder b;
    Tensor x = Tensor::Input(b, t, {6}, "x");
    const Value amax = ArgMax(b, x);
    const Value amin = ArgMin(b, x);
    hdl::OutputValue(b, amax, "amax");
    hdl::OutputValue(b, amin, "amin");
    std::vector<bool> bits;
    for (double d : {3.0, -7.0, 11.0, 2.0, 11.0, -9.0}) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    const int32_t iw = amax.dtype.TotalBits();
    EXPECT_EQ(amax.dtype.Decode(std::vector<bool>(raw.begin(),
                                                  raw.begin() + iw)),
              2.0);  // First maximum wins ties.
    EXPECT_EQ(amin.dtype.Decode(std::vector<bool>(raw.begin() + iw,
                                                  raw.begin() + 2 * iw)),
              5.0);
}

TEST(Functional, PwlExpTracksTrueExp) {
    // The shared polyline itself approximates exp within a few percent.
    for (double x = -7.5; x <= 0.0; x += 0.25) {
        EXPECT_NEAR(reference::PwlExp(x), std::exp(x),
                    0.03 * std::exp(x) + 0.01)
            << x;
    }
    EXPECT_EQ(reference::PwlExp(-20.0), 0.0);
    EXPECT_EQ(reference::PwlExp(0.0), 1.0);
}

TEST(Functional, ExpApproxMatchesPolyline) {
    const DType t = DType::Float(6, 10);
    Builder b;
    Tensor x = Tensor::Input(b, t, {5}, "x");
    Tensor y = ExpApprox(b, x);
    y.Output(b, "y");
    const std::vector<double> data{-0.5, -1.0, -2.25, -5.0, 0.0};
    std::vector<bool> bits;
    for (double d : data) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    const int32_t wb = t.TotalBits();
    for (int i = 0; i < 5; ++i) {
        const double got = t.Decode(std::vector<bool>(
            raw.begin() + i * wb, raw.begin() + (i + 1) * wb));
        EXPECT_NEAR(got, reference::PwlExp(data[i]), 0.02) << data[i];
    }
}

TEST(Functional, SoftmaxRowsSumToOne) {
    const DType t = DType::Float(6, 10);
    Builder b;
    Tensor x = Tensor::Input(b, t, {2, 3}, "x");
    Tensor y = Softmax(b, x);
    y.Output(b, "y");
    const std::vector<double> data{0.5, 1.5, -0.5, 2.0, 2.0, 2.0};
    std::vector<bool> bits;
    for (double d : data) {
        auto e = t.Encode(d);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    const int32_t wb = t.TotalBits();
    std::vector<double> got(6);
    for (int i = 0; i < 6; ++i)
        got[i] = t.Decode(std::vector<bool>(raw.begin() + i * wb,
                                            raw.begin() + (i + 1) * wb));
    auto want = reference::Softmax(data, 2, 3);
    for (int i = 0; i < 6; ++i) EXPECT_NEAR(got[i], want[i], 0.03) << i;
    EXPECT_NEAR(got[0] + got[1] + got[2], 1.0, 0.05);
    EXPECT_NEAR(got[3], 1.0 / 3, 0.02);  // Uniform row.
}

}  // namespace
}  // namespace pytfhe::nn
