#include "nn/layers.h"

#include <gtest/gtest.h>

#include "nn/models.h"
#include "nn_test_util.h"

namespace pytfhe::nn {
namespace {

/** Compares a module's circuit against its reference on random data. */
void CheckModule(const Module& module, const DType& t, const Shape& in_shape,
                 double rel, double abs_tol, uint64_t seed = 42) {
    const auto data = RandomData(seed, NumElements(in_shape), t);
    const auto got = RunModule(module, t, in_shape, data);
    Shape shape = in_shape;
    const auto want = module.RefForward(data, shape, t);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(NumElements(shape), static_cast<int64_t>(want.size()));
    ExpectClose(got, want, rel, abs_tol);
}

TEST(Layers, Conv2dMatchesReference) {
    Conv2d conv(1, 2, 3, 1);
    conv.InitRandom(7);
    CheckModule(conv, DType::Fixed(8, 8), {1, 5, 5}, 0.01, 0.05);
}

TEST(Layers, Conv2dStride2) {
    Conv2d conv(2, 1, 2, 2);
    conv.InitRandom(8);
    CheckModule(conv, DType::Fixed(8, 8), {2, 6, 6}, 0.01, 0.05);
}

TEST(Layers, Conv2dFloatDtype) {
    Conv2d conv(1, 1, 2, 1);
    conv.InitRandom(9);
    CheckModule(conv, DType::Float(6, 10), {1, 4, 4}, 0.02, 0.02);
}

TEST(Layers, Conv2dWithPadding) {
    Conv2d conv(1, 1, 3, 1, /*padding=*/1);
    conv.InitRandom(17);
    // Same-size output: 5x5 in -> 5x5 out.
    Builder b;
    Tensor in = Tensor::Input(b, DType::Fixed(8, 8), {1, 5, 5}, "x");
    EXPECT_EQ(conv.Forward(b, in).shape(), (Shape{1, 5, 5}));
    CheckModule(conv, DType::Fixed(8, 8), {1, 5, 5}, 0.01, 0.05);
}

TEST(Layers, Conv1dMatchesReference) {
    Conv1d conv(2, 3, 3, 1);
    conv.InitRandom(10);
    CheckModule(conv, DType::Fixed(8, 8), {2, 9}, 0.01, 0.05);
}

TEST(Layers, LinearMatchesReference) {
    Linear lin(6, 4);
    lin.InitRandom(11);
    CheckModule(lin, DType::Fixed(8, 8), {6}, 0.01, 0.05);
}

TEST(Layers, LinearFloat) {
    Linear lin(5, 3);
    lin.InitRandom(12);
    CheckModule(lin, DType::Float(6, 10), {5}, 0.02, 0.02);
}

TEST(Layers, ReluMatchesReference) {
    CheckModule(ReLU(), DType::SInt(8), {7}, 0.0, 0.0);
    CheckModule(ReLU(), DType::Float(6, 8), {7}, 0.0, 0.0);
    CheckModule(ReLU(), DType::Fixed(5, 5), {7}, 0.0, 0.0);
}

TEST(Layers, MaxPool2dMatchesReference) {
    CheckModule(MaxPool2d(2, 1), DType::SInt(8), {2, 4, 4}, 0.0, 0.0);
    CheckModule(MaxPool2d(3, 1), DType::Fixed(6, 4), {1, 5, 5}, 0.0, 0.0);
    CheckModule(MaxPool2d(2, 2), DType::Float(6, 8), {1, 4, 4}, 0.0, 0.0);
}

TEST(Layers, AvgPool2dMatchesReference) {
    CheckModule(AvgPool2d(2, 2), DType::Float(6, 10), {1, 4, 4}, 0.02, 0.02);
    // Integer average truncates; allow one LSB of slack.
    CheckModule(AvgPool2d(2, 2), DType::Fixed(8, 6), {1, 4, 4}, 0.0, 0.05);
}

TEST(Layers, Pool1dVariants) {
    CheckModule(MaxPool1d(3, 1), DType::SInt(8), {2, 7}, 0.0, 0.0);
    CheckModule(AvgPool1d(2, 2), DType::Float(6, 10), {2, 8}, 0.02, 0.02);
}

TEST(Layers, BatchNormMatchesReference) {
    BatchNorm bn(3);
    bn.InitRandom(13);
    CheckModule(bn, DType::Fixed(8, 8), {3, 4}, 0.02, 0.05);
    CheckModule(bn, DType::Float(6, 10), {3, 4}, 0.03, 0.03);
}

TEST(Layers, SigmoidMatchesPolyline) {
    CheckModule(Sigmoid(), DType::Float(6, 10), {9}, 0.03, 0.02, 91);
}

TEST(Layers, SigmoidSaturates) {
    Builder b;
    const DType t = DType::Float(6, 10);
    Tensor in = Tensor::Input(b, t, {2}, "x");
    Sigmoid().Forward(b, in).Output(b, "y");
    std::vector<bool> bits;
    for (double v : {20.0, -20.0}) {
        auto e = t.Encode(v);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    const int32_t wb = t.TotalBits();
    EXPECT_EQ(t.Decode(std::vector<bool>(raw.begin(), raw.begin() + wb)),
              1.0);
    EXPECT_EQ(t.Decode(std::vector<bool>(raw.begin() + wb,
                                         raw.begin() + 2 * wb)),
              0.0);
}

TEST(Layers, TanhMatchesPolyline) {
    CheckModule(Tanh(), DType::Float(6, 10), {9}, 0.05, 0.04, 92);
}

TEST(Layers, TanhIsOddAndBounded) {
    Builder b;
    const DType t = DType::Float(6, 10);
    Tensor in = Tensor::Input(b, t, {3}, "x");
    Tanh().Forward(b, in).Output(b, "y");
    std::vector<bool> bits;
    for (double v : {0.0, 15.0, -15.0}) {
        auto e = t.Encode(v);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    auto raw = b.netlist().EvaluatePlain(bits);
    const int32_t wb = t.TotalBits();
    auto word = [&](int i) {
        return t.Decode(std::vector<bool>(raw.begin() + i * wb,
                                          raw.begin() + (i + 1) * wb));
    };
    EXPECT_NEAR(word(0), 0.0, 0.02);
    EXPECT_NEAR(word(1), 1.0, 0.01);
    EXPECT_NEAR(word(2), -1.0, 0.01);
}

TEST(Layers, FlattenIsFreeAndCorrect) {
    Builder b;
    Tensor in = Tensor::Input(b, DType::SInt(4), {2, 3, 4}, "x");
    Flatten flatten;
    Tensor out = flatten.Forward(b, in);
    EXPECT_EQ(out.shape(), (Shape{24}));
    EXPECT_EQ(b.netlist().NumGates(), 0u);  // The paper's wiring argument.
}

TEST(Layers, SequentialComposes) {
    auto conv = std::make_shared<Conv2d>(1, 1, 2, 1);
    conv->InitRandom(14);
    auto lin = std::make_shared<Linear>(9, 3);
    lin->InitRandom(15);
    Sequential model({conv, MakeModule<ReLU>(), MakeModule<Flatten>(), lin});
    CheckModule(model, DType::Fixed(8, 8), {1, 4, 4}, 0.02, 0.1);
}

TEST(Layers, MnistTinyEndToEnd) {
    // MNIST_S topology on an 8x8 image; full plaintext circuit evaluation.
    MnistConfig cfg;
    cfg.image = 8;
    cfg.seed = 3;
    auto model = MnistS(cfg);
    const DType t = DType::Fixed(8, 8);
    const Shape in_shape = MnistInputShape(cfg);

    const auto data = RandomData(44, NumElements(in_shape), t);
    uint64_t gates = 0;
    const auto got = RunModule(*model, t, in_shape, data, &gates);
    Shape shape = in_shape;
    const auto want = model->RefForward(data, shape, t);
    ASSERT_EQ(got.size(), 10u);
    ExpectClose(got, want, 0.03, 0.15);
    EXPECT_GT(gates, 1000u);  // A real circuit, not a folded constant.

    // The predicted class (argmax) agrees with the reference model.
    const auto best =
        std::max_element(want.begin(), want.end()) - want.begin();
    const auto got_best =
        std::max_element(got.begin(), got.end()) - got.begin();
    EXPECT_EQ(best, got_best);
}

TEST(Layers, MnistVariantsGrowInSize) {
    MnistConfig cfg;
    cfg.image = 6;
    Builder bs, bm, bl;
    const DType t = DType::Fixed(4, 4);
    MnistS(cfg)->Forward(bs, Tensor::Input(bs, t, MnistInputShape(cfg), "x"));
    MnistM(cfg)->Forward(bm, Tensor::Input(bm, t, MnistInputShape(cfg), "x"));
    MnistL(cfg)->Forward(bl, Tensor::Input(bl, t, MnistInputShape(cfg), "x"));
    EXPECT_LT(bs.netlist().NumGates(), bm.netlist().NumGates());
    EXPECT_LT(bm.netlist().NumGates(), bl.netlist().NumGates());
}

TEST(Layers, DtypeChoiceChangesGateCountByOrdersOfMagnitude) {
    // Section IV-B: cheaper data types cut gates dramatically.
    Linear lin(8, 8);
    lin.InitRandom(16);
    auto count = [&](const DType& t) {
        Builder b;
        lin.Forward(b, Tensor::Input(b, t, {8}, "x"));
        return b.netlist().NumGates();
    };
    const uint64_t narrow = count(DType::SInt(4));
    const uint64_t wide = count(DType::Float(8, 23));
    EXPECT_GT(wide, narrow * 10);
}

}  // namespace
}  // namespace pytfhe::nn
