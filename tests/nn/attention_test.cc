#include "nn/attention.h"

#include <gtest/gtest.h>

#include "nn/models.h"
#include "nn_test_util.h"

namespace pytfhe::nn {
namespace {

TEST(Attention, TinySelfAttentionMatchesReference) {
    SelfAttention attn(3, 4);
    attn.InitRandom(21);
    const DType t = DType::Float(6, 10);
    const Shape in_shape{3, 4};
    const auto data = RandomData(77, NumElements(in_shape), t);

    uint64_t gates = 0;
    const auto got = RunModule(attn, t, in_shape, data, &gates);
    Shape shape = in_shape;
    const auto want = attn.RefForward(data, shape, t);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(shape, in_shape);  // Attention preserves shape.
    // Softmax + float truncation accumulate error; tolerate a few percent.
    ExpectClose(got, want, 0.08, 0.08);
    EXPECT_GT(gates, 10000u);
}

TEST(Attention, OutputIsConvexCombinationRange) {
    // Attention output lies within the value rows' range per column
    // (softmax weights sum to ~1).
    SelfAttention attn(2, 2);
    attn.SetWeights({1, 0, 0, 1}, {1, 0, 0, 1}, {1, 0, 0, 1});  // Identity.
    const DType t = DType::Float(6, 10);
    const std::vector<double> data{1.0, 0.0, 0.0, 1.0};
    const auto got = RunModule(attn, t, {2, 2}, data);
    for (double v : got) {
        EXPECT_GE(v, -0.1);
        EXPECT_LE(v, 1.1);
    }
}

TEST(Attention, PaperConfigurationsConstruct) {
    auto s = AttentionS();
    auto l = AttentionL();
    EXPECT_EQ(s->hidden(), 32);
    EXPECT_EQ(l->hidden(), 64);
    EXPECT_EQ(s->seq_len(), 16);
}

TEST(Attention, AttentionLHasMoreGatesThanS) {
    // Build scaled-down versions (seq 4) to keep the test fast but still
    // verify the hidden-size scaling.
    SelfAttention small(4, 8), large(4, 16);
    small.InitRandom(1);
    large.InitRandom(1);
    const DType t = DType::Float(5, 6);
    Builder bs, bl;
    small.Forward(bs, Tensor::Input(bs, t, {4, 8}, "x"));
    large.Forward(bl, Tensor::Input(bl, t, {4, 16}, "x"));
    EXPECT_GT(bl.netlist().NumGates(), bs.netlist().NumGates() * 2);
}

}  // namespace
}  // namespace pytfhe::nn
