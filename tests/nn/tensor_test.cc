#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace pytfhe::nn {
namespace {

TEST(TensorTest, ShapesAndIndexing) {
    Builder b;
    Tensor t = Tensor::Input(b, DType::SInt(4), {2, 3, 4}, "x");
    EXPECT_EQ(t.Numel(), 24);
    EXPECT_EQ(t.Rank(), 3u);
    EXPECT_EQ(t.FlatIndex({1, 2, 3}), 23);
    EXPECT_EQ(t.FlatIndex({0, 0, 0}), 0);
    EXPECT_EQ(t.FlatIndex({1, 0, 2}), 14);
}

TEST(TensorTest, LayoutOpsGenerateNoGates) {
    Builder b;
    Tensor t = Tensor::Input(b, DType::SInt(4), {2, 3, 4}, "x");
    const uint64_t before = b.netlist().NumGates();
    Tensor r = t.Reshape({4, 6});
    Tensor f = t.Flatten();
    Tensor tr = t.Transpose(0, 2);
    EXPECT_EQ(b.netlist().NumGates(), before);  // Pure wiring.
    EXPECT_EQ(r.shape(), (Shape{4, 6}));
    EXPECT_EQ(f.shape(), (Shape{24}));
    EXPECT_EQ(tr.shape(), (Shape{4, 3, 2}));
}

TEST(TensorTest, TransposeMovesElements) {
    Builder b;
    Tensor t = Tensor::Input(b, DType::UInt(2), {2, 3}, "x");
    Tensor tr = t.Transpose(0, 1);
    for (int64_t i = 0; i < 2; ++i)
        for (int64_t j = 0; j < 3; ++j)
            EXPECT_EQ(tr.At({j, i}).bits[0], t.At({i, j}).bits[0]);
}

TEST(TensorTest, TransposeIsInvolution) {
    Builder b;
    Tensor t = Tensor::Input(b, DType::UInt(3), {3, 5}, "x");
    Tensor back = t.Transpose(0, 1).Transpose(0, 1);
    for (int64_t i = 0; i < t.Numel(); ++i)
        EXPECT_EQ(back.At(i).bits[0], t.At(i).bits[0]);
}

TEST(TensorTest, FromDataQuantizes) {
    Builder b;
    const DType t = DType::Fixed(4, 2);
    Tensor c = Tensor::FromData(b, t, {3}, {1.25, -0.6, 2.0});
    EXPECT_EQ(b.netlist().NumGates(), 0u);  // Constants only.
    // Values decode to the quantized data.
    std::vector<bool> none;
    auto out_bits = [&](const hdl::Value& v) {
        std::vector<bool> bits;
        for (auto s : v.bits.bits) bits.push_back(s == circuit::kConstTrue);
        return bits;
    };
    EXPECT_EQ(t.Decode(out_bits(c.At(0))), 1.25);
    EXPECT_EQ(t.Decode(out_bits(c.At(1))), -0.5);  // Rounded to nearest 1/4.
    EXPECT_EQ(t.Decode(out_bits(c.At(2))), 2.0);
}

TEST(TensorTest, Pad2dAddsZeroBorder) {
    Builder b;
    const DType t = DType::SInt(4);
    Tensor x = Tensor::Input(b, t, {1, 2, 2}, "x");
    Tensor p = x.Pad2d(b, 1);
    EXPECT_EQ(p.shape(), (Shape{1, 4, 4}));
    // Corners are constant false bits.
    for (auto s : p.At({0, 0, 0}).bits.bits)
        EXPECT_EQ(s, circuit::kConstFalse);
    // Center keeps the original signals.
    EXPECT_EQ(p.At({0, 1, 1}).bits[0], x.At({0, 0, 0}).bits[0]);
    EXPECT_EQ(p.At({0, 2, 2}).bits[0], x.At({0, 1, 1}).bits[0]);
}

TEST(TensorTest, FullCreatesUniformConstant) {
    Builder b;
    Tensor f = Tensor::Full(b, DType::UInt(4), {2, 2}, 5.0);
    EXPECT_EQ(f.Numel(), 4);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(f.At(i).bits[0], circuit::kConstTrue);   // Bit 0 of 5.
        EXPECT_EQ(f.At(i).bits[1], circuit::kConstFalse);  // Bit 1.
        EXPECT_EQ(f.At(i).bits[2], circuit::kConstTrue);   // Bit 2.
    }
}

}  // namespace
}  // namespace pytfhe::nn
