/**
 * @file
 * pytfhec — the PyTFHE command-line toolchain driver.
 *
 * Commands:
 *   pytfhec compile <workload> <out.ptfhe>   compile a registered workload
 *   pytfhec disasm <file.ptfhe>              disassemble a binary
 *   pytfhec stats <file.ptfhe>               gate/depth/schedule statistics
 *   pytfhec simulate <file.ptfhe>            simulated backend runtimes
 *   pytfhec run <file.ptfhe>                 plaintext functional execution
 *   pytfhec to-bristol <file.ptfhe> <out>    export as a Bristol circuit
 *   pytfhec from-bristol <in> <out.ptfhe>    compile a Bristol circuit
 *   pytfhec list                             list registered workloads
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>

#include "backend/cluster_sim.h"
#include "backend/execute.h"
#include "backend/gpu_sim.h"
#include "circuit/bristol.h"
#include "core/compiler.h"
#include "vip/registry.h"

using namespace pytfhe;

namespace {

int Usage() {
    std::fprintf(stderr,
                 "usage: pytfhec <command> [args]\n"
                 "  compile [options] <workload> <out.ptfhe>\n"
                 "  disasm <file.ptfhe>\n"
                 "  stats <file.ptfhe>\n"
                 "  simulate <file.ptfhe>\n"
                 "  run [--threads=N] [--seed=S] <file.ptfhe>\n"
                 "  to-bristol <file.ptfhe> <out.txt>\n"
                 "  from-bristol [options] <in.txt> <out.ptfhe>\n"
                 "  list\n"
                 "compile options:\n"
                 "  --no-elide        keep every gate bootstrapped\n"
                 "  --no-plan         emit without a memory plan (v2 "
                 "format,\n"
                 "                    one ciphertext slot per instruction)\n"
                 "  --params=<set>    noise model for elision and multibit\n"
                 "                    budgeting: tfhe128 (default), small,\n"
                 "                    toy, multibit, toymultibit\n"
                 "  --multibit=<k>    lower to k-ary LUT gates (k in\n"
                 "                    {4, 8, 16}; one programmable\n"
                 "                    bootstrap per LUT). Falls back to the\n"
                 "                    boolean pipeline when --params cannot\n"
                 "                    carry the modulus\n");
    return 2;
}

/**
 * Compilation knobs parsed from the leading --flags of compile /
 * from-bristol. Elision is on by default against the TFHE-128 noise model
 * — the deployment parameter set; a program executed under different
 * parameters should be compiled with the matching --params (or --no-elide,
 * the escape hatch that restores the all-bootstrapped legacy format).
 */
struct CliOptions {
    core::CompileOptions compile;
    bool ok = true;
};

CliOptions ParseCompileFlags(int argc, char** argv, int* next) {
    CliOptions cli;
    cli.compile.params = tfhe::Tfhe128Params();
    for (; *next < argc && argv[*next][0] == '-'; ++*next) {
        const char* flag = argv[*next];
        if (!std::strcmp(flag, "--no-elide")) {
            cli.compile.elision.enabled = false;
        } else if (!std::strcmp(flag, "--no-plan")) {
            cli.compile.plan_memory = false;
        } else if (!std::strcmp(flag, "--params=tfhe128")) {
            cli.compile.params = tfhe::Tfhe128Params();
        } else if (!std::strcmp(flag, "--params=small")) {
            cli.compile.params = tfhe::SmallParams();
        } else if (!std::strcmp(flag, "--params=toy")) {
            cli.compile.params = tfhe::ToyParams();
        } else if (!std::strcmp(flag, "--params=multibit")) {
            cli.compile.params = tfhe::MultibitParams();
        } else if (!std::strcmp(flag, "--params=toymultibit")) {
            cli.compile.params = tfhe::ToyMultibitParams();
        } else if (!std::strncmp(flag, "--multibit=", 11)) {
            cli.compile.multibit = std::atoi(flag + 11);
        } else {
            std::fprintf(stderr, "unknown flag %s\n", flag);
            cli.ok = false;
            return cli;
        }
    }
    return cli;
}

void ReportElision(const core::Compiled& compiled) {
    const auto& s = compiled.elision_stats;
    if (s.bootstraps_before == s.bootstraps_after) return;
    std::printf("elision: %llu -> %llu bootstraps\n",
                static_cast<unsigned long long>(s.bootstraps_before),
                static_cast<unsigned long long>(s.bootstraps_after));
}

void ReportMultibit(const core::Compiled& compiled) {
    if (compiled.multibit_fell_back) {
        std::printf("multibit: parameter set cannot carry the modulus; "
                    "fell back to the boolean pipeline\n");
        return;
    }
    if (compiled.lut_stats.luts != 0)
        std::printf("multibit: %s\n",
                    compiled.lut_stats.ToString().c_str());
}

std::optional<pasm::Program> LoadOrComplain(const char* path) {
    std::string error;
    auto p = pasm::Program::LoadFromFile(path, &error);
    if (!p) std::fprintf(stderr, "error: %s\n", error.c_str());
    return p;
}

int CmdCompile(const core::CompileOptions& options, const char* name,
               const char* out) {
    const vip::Workload w = vip::FindWorkload(name);
    std::string error;
    auto compiled = core::Compile(w.build(), options, &error);
    if (!compiled) {
        std::fprintf(stderr, "compile failed: %s\n", error.c_str());
        return 1;
    }
    if (!compiled->program.SaveToFile(out)) {
        std::fprintf(stderr, "cannot write %s\n", out);
        return 1;
    }
    ReportElision(*compiled);
    ReportMultibit(*compiled);
    std::printf("%s: %llu gates -> %s (%zu bytes)\n", name,
                static_cast<unsigned long long>(compiled->program.NumGates()),
                out, compiled->program.ByteSize());
    return 0;
}

int CmdDisasm(const char* path) {
    auto p = LoadOrComplain(path);
    if (!p) return 1;
    std::fputs(p->Disassemble().c_str(), stdout);
    return 0;
}

int CmdStats(const char* path) {
    auto p = LoadOrComplain(path);
    if (!p) return 1;
    const circuit::Netlist n = pasm::ToNetlist(*p);
    std::fputs(n.ComputeStats().ToString().c_str(), stdout);
    if (p->MessageModulus() != 0)
        std::printf("message modulus: %d (format v%llu, programmable "
                    "bootstrapping)\n",
                    p->MessageModulus(),
                    static_cast<unsigned long long>(p->FormatVersion()));
    const auto schedule = backend::ComputeSchedule(*p);
    std::printf("schedule: %llu waves, max width %llu, avg width %.1f\n",
                static_cast<unsigned long long>(schedule.NumLevels()),
                static_cast<unsigned long long>(schedule.MaxWidth()),
                schedule.AvgWidth());
    const uint64_t num_values = p->FirstGateIndex() + p->NumGates();
    if (const pasm::MemoryPlan* plan = p->Plan()) {
        std::printf("memory plan: %llu slots for %llu values (%.1fx "
                    "reuse)%s\n",
                    static_cast<unsigned long long>(plan->num_slots),
                    static_cast<unsigned long long>(num_values),
                    plan->num_slots > 0
                        ? static_cast<double>(num_values) /
                              static_cast<double>(plan->num_slots)
                        : 0.0,
                    plan->level_safe ? ", level-safe" : "");
    } else {
        std::printf("memory plan: none (%llu slots, one per value)\n",
                    static_cast<unsigned long long>(num_values));
    }
    return 0;
}

int CmdSimulate(const char* path) {
    auto p = LoadOrComplain(path);
    if (!p) return 1;
    backend::ClusterConfig one, four;
    four.nodes = 4;
    const double single = backend::SingleCoreSeconds(
        backend::ComputeGateMix(*p), one.cpu);
    std::printf("single core:        %12.2f s\n", single);
    const auto r1 = backend::SimulateCluster(*p, one);
    const auto r4 = backend::SimulateCluster(*p, four);
    std::printf("1 node (18 cores):  %12.2f s (%.1fx)\n", r1.seconds,
                r1.Speedup());
    std::printf("4 nodes (72 cores): %12.2f s (%.1fx)\n", r4.seconds,
                r4.Speedup());
    for (const auto& gpu : {backend::A5000(), backend::Rtx4090()}) {
        const auto rc = backend::SimulateCuFhe(*p, gpu, 0);
        const auto rp = backend::SimulatePyTfhe(*p, gpu, 0);
        std::printf("%-19s %12.2f s (PyTFHE) vs %.2f s (cuFHE): %.1fx\n",
                    (gpu.name + ":").c_str(), rp.seconds, rc.seconds,
                    rc.seconds / rp.seconds);
    }
    return 0;
}

int CmdToBristol(const char* in, const char* out) {
    auto p = LoadOrComplain(in);
    if (!p) return 1;
    std::ofstream f(out);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out);
        return 1;
    }
    circuit::ExportBristol(f, pasm::ToNetlist(*p));
    std::printf("wrote %s\n", out);
    return 0;
}

int CmdFromBristol(const core::CompileOptions& options, const char* in,
                   const char* out) {
    std::ifstream f(in);
    if (!f) {
        std::fprintf(stderr, "cannot read %s\n", in);
        return 1;
    }
    std::string error;
    auto netlist = circuit::ImportBristol(f, &error);
    if (!netlist) {
        std::fprintf(stderr, "parse failed: %s\n", error.c_str());
        return 1;
    }
    auto compiled = core::Compile(*netlist, options, &error);
    if (!compiled) {
        std::fprintf(stderr, "compile failed: %s\n", error.c_str());
        return 1;
    }
    if (!compiled->program.SaveToFile(out)) {
        std::fprintf(stderr, "cannot write %s\n", out);
        return 1;
    }
    ReportElision(*compiled);
    ReportMultibit(*compiled);
    std::printf("%s: %llu gates (after optimization) -> %s\n", in,
                static_cast<unsigned long long>(compiled->program.NumGates()),
                out);
    return 0;
}

/**
 * Functional plaintext execution through the unified backend::Execute
 * dispatcher — random inputs, printed outputs. Useful for smoke-testing a
 * binary (and the dispatcher's thread scaling) without key material.
 */
int CmdRun(int argc, char** argv, int next) {
    int32_t threads = 1;
    uint64_t seed = 1;
    for (; next < argc && argv[next][0] == '-'; ++next) {
        if (!std::strncmp(argv[next], "--threads=", 10)) {
            threads = std::atoi(argv[next] + 10);
        } else if (!std::strncmp(argv[next], "--seed=", 7)) {
            seed = std::strtoull(argv[next] + 7, nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[next]);
            return 2;
        }
    }
    if (argc - next != 1) return Usage();
    auto p = LoadOrComplain(argv[next]);
    if (!p) return 1;

    std::mt19937_64 rng(seed);
    std::vector<bool> in(p->NumInputs());
    for (size_t i = 0; i < in.size(); ++i) in[i] = rng() & 1;

    backend::PlainEvaluator eval;
    backend::ExecOptions options;
    options.num_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = backend::Execute(*p, eval, in, options);
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    std::printf("inputs  (seed %llu): ",
                static_cast<unsigned long long>(seed));
    for (bool b : in) std::putchar(b ? '1' : '0');
    std::printf("\noutputs:             ");
    for (bool b : out) std::putchar(b ? '1' : '0');
    std::printf("\n%llu gates, %d thread(s), %.3f ms\n",
                static_cast<unsigned long long>(p->NumGates()), threads,
                sec * 1e3);
    return 0;
}

int CmdList() {
    for (const auto& w : vip::AllWorkloads())
        std::printf("%s\n", w.name.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return Usage();
    const char* cmd = argv[1];
    if (!std::strcmp(cmd, "compile") || !std::strcmp(cmd, "from-bristol")) {
        int next = 2;
        const CliOptions cli = ParseCompileFlags(argc, argv, &next);
        if (!cli.ok || argc - next != 2) return Usage();
        return !std::strcmp(cmd, "compile")
                   ? CmdCompile(cli.compile, argv[next], argv[next + 1])
                   : CmdFromBristol(cli.compile, argv[next], argv[next + 1]);
    }
    if (!std::strcmp(cmd, "disasm") && argc == 3) return CmdDisasm(argv[2]);
    if (!std::strcmp(cmd, "stats") && argc == 3) return CmdStats(argv[2]);
    if (!std::strcmp(cmd, "simulate") && argc == 3)
        return CmdSimulate(argv[2]);
    if (!std::strcmp(cmd, "run") && argc >= 3) return CmdRun(argc, argv, 2);
    if (!std::strcmp(cmd, "to-bristol") && argc == 4)
        return CmdToBristol(argv[2], argv[3]);
    if (!std::strcmp(cmd, "list")) return CmdList();
    return Usage();
}
