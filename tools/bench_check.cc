/**
 * @file
 * bench_check — guards the committed BENCH_*.json baselines.
 *
 * Usage:
 *   bench_check <baseline.json> <candidate.json> [tolerance]
 *
 * Flattens both files to dotted-path -> number maps and compares every
 * lower-is-better metric (nanoseconds, wall seconds, bootstrap counts,
 * predicted failure probabilities). Exits 1 if any such metric in the
 * candidate exceeds its baseline by more than `tolerance` (default 0.10,
 * i.e. a 10% regression), printing each offender. Metrics present in only
 * one file are reported but do not fail the check — adding a benchmark
 * row must not break the gate.
 *
 * Typical use after re-running a benchmark binary:
 *   git stash -- BENCH_micro_tfhe.json   # keep the committed baseline
 *   ./build/bench/bench_micro_tfhe
 *   ./build/tools/bench_check /tmp/baseline.json BENCH_micro_tfhe.json
 */
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

/**
 * Minimal JSON reader for the benchmark files: objects, strings, and
 * numbers (arrays and bools are not used by any BENCH_*.json writer).
 * Collects numeric leaves as "a.b.c" -> value.
 */
class FlatJson {
  public:
    bool Parse(const std::string& text) {
        text_ = &text;
        pos_ = 0;
        SkipSpace();
        return ParseValue("") && (SkipSpace(), pos_ == text.size());
    }

    const std::map<std::string, double>& numbers() const { return numbers_; }

  private:
    bool ParseValue(const std::string& path) {
        SkipSpace();
        if (pos_ >= text_->size()) return false;
        const char c = (*text_)[pos_];
        if (c == '{') return ParseObject(path);
        if (c == '"') {
            std::string ignored;
            return ParseString(&ignored);
        }
        return ParseNumber(path);
    }

    bool ParseObject(const std::string& path) {
        ++pos_;  // '{'
        SkipSpace();
        if (Peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            SkipSpace();
            std::string key;
            if (!ParseString(&key)) return false;
            SkipSpace();
            if (Peek() != ':') return false;
            ++pos_;
            const std::string child = path.empty() ? key : path + "." + key;
            if (!ParseValue(child)) return false;
            SkipSpace();
            if (Peek() == ',') {
                ++pos_;
                continue;
            }
            if (Peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool ParseString(std::string* out) {
        if (Peek() != '"') return false;
        ++pos_;
        out->clear();
        while (pos_ < text_->size() && (*text_)[pos_] != '"') {
            if ((*text_)[pos_] == '\\') ++pos_;  // Keep escaped char as-is.
            if (pos_ < text_->size()) out->push_back((*text_)[pos_++]);
        }
        if (pos_ >= text_->size()) return false;
        ++pos_;  // Closing quote.
        return true;
    }

    bool ParseNumber(const std::string& path) {
        const size_t start = pos_;
        while (pos_ < text_->size() &&
               (std::isdigit(static_cast<unsigned char>((*text_)[pos_])) ||
                (*text_)[pos_] == '-' || (*text_)[pos_] == '+' ||
                (*text_)[pos_] == '.' || (*text_)[pos_] == 'e' ||
                (*text_)[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) return false;
        numbers_[path] = std::atof(text_->substr(start, pos_ - start).c_str());
        return true;
    }

    char Peek() const { return pos_ < text_->size() ? (*text_)[pos_] : '\0'; }
    void SkipSpace() {
        while (pos_ < text_->size() &&
               std::isspace(static_cast<unsigned char>((*text_)[pos_])))
            ++pos_;
    }

    const std::string* text_ = nullptr;
    size_t pos_ = 0;
    std::map<std::string, double> numbers_;
};

bool LoadFlat(const char* path, FlatJson* out) {
    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "bench_check: cannot read %s\n", path);
        return false;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    if (!out->Parse(buf.str())) {
        std::fprintf(stderr, "bench_check: cannot parse %s\n", path);
        return false;
    }
    return true;
}

/**
 * Metrics where a larger candidate value is a regression. Measured wall
 * seconds (wall_s_*) are deliberately NOT gated: they carry the timing
 * noise of whichever machine produced the baseline; the deterministic
 * modeled_s_* and batched ops_ns metrics carry the perf signal.
 */
bool LowerIsBetter(const std::string& path) {
    // Exact leaf "bootstraps" (BENCH_multibit): the deterministic
    // programmable-bootstrap count per workload — the whole point of the
    // multibit pipeline. The suffix match is exact so "bootstraps_before"
    // (an ungated provenance number in BENCH_elision) stays ungated.
    const size_t dot = path.rfind('.');
    const std::string leaf =
        dot == std::string::npos ? path : path.substr(dot + 1);
    if (leaf == "bootstraps") return true;
    return path.find("_ns") != std::string::npos ||
           path.find("ops_ns") != std::string::npos ||
           path.find("modeled_s") != std::string::npos ||
           path.find("failure_prob") != std::string::npos ||
           path.find("bootstraps_after") != std::string::npos ||
           // Memory-planning metrics: per-job arena residency and
           // steady-state heap traffic. Both are exact counts, not timings,
           // so a >10% growth is a genuine planner or evaluator regression.
           // allocs_per_gate_planned is 0 in the baseline; the zero-
           // baseline rule below then forbids ANY per-gate allocation.
           path.find("arena_bytes") != std::string::npos ||
           path.find("allocs_per") != std::string::npos ||
           // Re-executed-gate fraction of the faulted serving block:
           // growth means retries are redoing work checkpoints should
           // have preserved (a resume or capture regression).
           path.find("reexec_fraction") != std::string::npos;
}

/**
 * Metrics where a SMALLER candidate value is a regression: cache hit
 * rates from the key-cache economics runs (deterministic for the modeled
 * sharded fleet; the real-service run is trace-driven and equally
 * stable), and the batched-bootstrap throughput speedups from the
 * micro-tfhe sweep. A candidate below baseline * (1 - tolerance) fails.
 */
bool HigherIsBetter(const std::string& path) {
    return path.find("hit_rate") != std::string::npos ||
           path.find("speedup") != std::string::npos ||
           // Slot-reuse factor of the memory planner (deterministic).
           path.find("reduction_x") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3 || argc > 4) {
        std::fprintf(
            stderr,
            "usage: bench_check <baseline.json> <candidate.json> "
            "[tolerance=0.10]\n");
        return 2;
    }
    const double tolerance = argc == 4 ? std::atof(argv[3]) : 0.10;

    FlatJson baseline, candidate;
    if (!LoadFlat(argv[1], &baseline) || !LoadFlat(argv[2], &candidate))
        return 2;

    int regressions = 0;
    for (const auto& [path, base] : baseline.numbers()) {
        const bool lower = LowerIsBetter(path);
        const bool higher = !lower && HigherIsBetter(path);
        if (!lower && !higher) continue;
        const auto it = candidate.numbers().find(path);
        if (it == candidate.numbers().end()) {
            std::printf("MISSING   %-46s (baseline %.4g)\n", path.c_str(),
                        base);
            continue;
        }
        const double cand = it->second;
        // A zero baseline (e.g. bootstraps_after on a fully elided
        // workload) regresses on any increase beyond rounding.
        bool regressed;
        if (lower) {
            regressed = base == 0.0 ? cand > 1e-12
                                    : cand > base * (1.0 + tolerance);
        } else {
            regressed = cand < base * (1.0 - tolerance);
        }
        const double delta = base == 0.0 ? 0.0 : (cand - base) / base * 100.0;
        if (regressed) {
            std::printf("REGRESSED %-46s %.4g -> %.4g (%+.1f%%)\n",
                        path.c_str(), base, cand, delta);
            ++regressions;
        } else if (std::fabs(delta) > tolerance * 100.0) {
            std::printf("improved  %-46s %.4g -> %.4g (%+.1f%%)\n",
                        path.c_str(), base, cand, delta);
        }
    }
    for (const auto& [path, cand] : candidate.numbers()) {
        if ((LowerIsBetter(path) || HigherIsBetter(path)) &&
            !baseline.numbers().count(path))
            std::printf("new       %-46s %.4g\n", path.c_str(), cand);
    }

    if (regressions > 0) {
        std::printf("bench_check: %d metric(s) regressed beyond %.0f%%\n",
                    regressions, tolerance * 100.0);
        return 1;
    }
    std::printf("bench_check: ok (tolerance %.0f%%)\n", tolerance * 100.0);
    return 0;
}
