/**
 * @file
 * Privacy-preserving MNIST inference — the paper's flagship application.
 *
 * Declares the MNIST_S model through the ChiselTorch-equivalent API,
 * compiles it to a PyTFHE binary, verifies the binary functionally against
 * the plaintext reference model, runs a scaled-down instance under real
 * encryption (toy parameters), and reports what the full 28x28 inference
 * would cost on each simulated execution platform.
 *
 * Usage: mnist_inference [image_side]   (default 10; 28 = full MNIST)
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "backend/cluster_sim.h"
#include "backend/gpu_sim.h"
#include "core/compiler.h"
#include "core/runtime.h"
#include "nn/models.h"

using namespace pytfhe;

namespace {

std::vector<double> SyntheticDigit(int64_t side, const hdl::DType& t) {
    // A crude "7": a horizontal bar and a diagonal stroke.
    std::vector<double> img(side * side, 0.0);
    for (int64_t x = 0; x < side; ++x) img[1 * side + x] = 1.0;
    for (int64_t y = 1; y < side; ++y) {
        const int64_t x = side - 1 - y * (side - 2) / side;
        if (x >= 0) img[y * side + x] = 1.0;
    }
    for (auto& p : img) p = t.Quantize(p);
    return img;
}

}  // namespace

int main(int argc, char** argv) {
    const int64_t side = argc > 1 ? std::atoll(argv[1]) : 10;
    nn::MnistConfig cfg;
    cfg.image = side;
    cfg.seed = 7;
    auto model = nn::MnistS(cfg);
    const hdl::DType t = hdl::DType::Fixed(8, 8);

    std::printf("== compiling MNIST_S for %lldx%lld at %s ==\n",
                static_cast<long long>(side), static_cast<long long>(side),
                t.ToString().c_str());
    auto compiled = core::CompileModule(*model, t, nn::MnistInputShape(cfg));
    if (!compiled) {
        std::fprintf(stderr, "compile failed\n");
        return 1;
    }
    std::printf("%s", compiled->stats.ToString().c_str());
    std::printf("optimizer: %s\n", compiled->opt_stats.ToString().c_str());

    // Functional verification: plaintext backend vs the reference model.
    const std::vector<double> image = SyntheticDigit(side, t);
    std::vector<bool> bits;
    for (double v : image) {
        const auto e = t.Encode(v);
        bits.insert(bits.end(), e.begin(), e.end());
    }
    backend::PlainEvaluator plain;
    const auto out_bits =
        backend::RunProgram(compiled->program, plain, bits);
    std::vector<double> logits;
    for (size_t i = 0; i + t.TotalBits() <= out_bits.size();
         i += t.TotalBits())
        logits.push_back(t.Decode(std::vector<bool>(
            out_bits.begin() + i, out_bits.begin() + i + t.TotalBits())));

    nn::Shape shape = nn::MnistInputShape(cfg);
    const auto ref = model->RefForward(image, shape, t);
    const int got = static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
    const int want = static_cast<int>(
        std::max_element(ref.begin(), ref.end()) - ref.begin());
    std::printf("predicted class: %d (reference model: %d) %s\n", got, want,
                got == want ? "[match]" : "[MISMATCH]");

    // What would this cost on the paper's platforms?
    std::printf("\n== simulated execution platforms ==\n");
    backend::ClusterConfig one_node, four_nodes;
    four_nodes.nodes = 4;
    const auto single =
        backend::SingleCoreSeconds(backend::ComputeGateMix(compiled->program),
                                   one_node.cpu);
    const auto r1 = backend::SimulateCluster(compiled->program, one_node);
    const auto r4 = backend::SimulateCluster(compiled->program, four_nodes);
    std::printf("single core CPU:        %10.1f s\n", single);
    std::printf("1 node  (18 workers):   %10.1f s  (%.1fx)\n", r1.seconds,
                r1.Speedup());
    std::printf("4 nodes (72 workers):   %10.1f s  (%.1fx)\n", r4.seconds,
                r4.Speedup());
    for (const auto& gpu : {backend::A5000(), backend::Rtx4090()}) {
        const auto rg = backend::SimulatePyTfhe(compiled->program, gpu);
        const auto rc = backend::SimulateCuFhe(compiled->program, gpu);
        std::printf("%-12s PyTFHE:    %10.1f s  (%.1fx CPU, %.1fx cuFHE)\n",
                    gpu.name.c_str(), rg.seconds, single / rg.seconds,
                    rc.seconds / rg.seconds);
    }

    // Real encrypted inference on a tiny instance (toy parameters).
    std::printf("\n== encrypted run (toy parameters, 6x6 image) ==\n");
    nn::MnistConfig tiny;
    tiny.image = 6;
    tiny.seed = 7;
    auto tiny_model = nn::MnistS(tiny);
    const hdl::DType tt = hdl::DType::Fixed(5, 3);
    auto tiny_compiled =
        core::CompileModule(*tiny_model, tt, nn::MnistInputShape(tiny));
    if (!tiny_compiled) {
        std::fprintf(stderr, "tiny compile failed\n");
        return 1;
    }
    core::Client client(tfhe::ToyParams(), 3);
    auto server = client.MakeServer();
    const auto tiny_img = SyntheticDigit(6, tt);
    const auto enc = client.EncryptValues(tt, tiny_img);
    const auto enc_out = server->Run(tiny_compiled->program, enc,
                                     core::RunOptions{.num_threads = 2});
    const auto tiny_logits = client.DecryptValues(tt, enc_out);
    const int enc_class = static_cast<int>(
        std::max_element(tiny_logits.begin(), tiny_logits.end()) -
        tiny_logits.begin());
    std::printf("encrypted inference: %llu gates -> class %d\n",
                static_cast<unsigned long long>(
                    tiny_compiled->stats.num_gates),
                enc_class);
    return 0;
}
