/**
 * @file
 * Self-attention under FHE: demonstrates that ChiselTorch's primitive
 * tensor operations (matmul, transpose, softmax) compose into BERT-style
 * layers, and characterizes the resulting TFHE program: gate mix, DAG
 * shape, and simulated runtimes on every backend.
 *
 * Usage: attention_stats [seq_len] [hidden]   (default 4 x 16)
 */
#include <cstdio>
#include <cstdlib>

#include "backend/cluster_sim.h"
#include "backend/gpu_sim.h"
#include "core/compiler.h"
#include "nn/attention.h"

using namespace pytfhe;

int main(int argc, char** argv) {
    const int64_t seq = argc > 1 ? std::atoll(argv[1]) : 4;
    const int64_t hidden = argc > 2 ? std::atoll(argv[2]) : 16;

    nn::SelfAttention attn(seq, hidden);
    attn.InitRandom(11);
    const hdl::DType t = hdl::DType::Float(5, 6);

    std::printf("== self-attention [%lld x %lld] at %s ==\n",
                static_cast<long long>(seq), static_cast<long long>(hidden),
                t.ToString().c_str());
    auto compiled = core::CompileModule(attn, t, {seq, hidden});
    if (!compiled) {
        std::fprintf(stderr, "compile failed\n");
        return 1;
    }
    std::printf("%s", compiled->stats.ToString().c_str());

    const auto schedule = backend::ComputeSchedule(compiled->program);
    std::printf("DAG: %llu waves, max width %llu, avg width %.1f\n",
                static_cast<unsigned long long>(schedule.NumLevels()),
                static_cast<unsigned long long>(schedule.MaxWidth()),
                schedule.AvgWidth());

    backend::ClusterConfig one, four;
    four.nodes = 4;
    const double single = backend::SingleCoreSeconds(
        backend::ComputeGateMix(compiled->program), one.cpu);
    std::printf("\n%-24s %12s %10s\n", "backend", "time (s)", "speedup");
    std::printf("%-24s %12.1f %10s\n", "single-core CPU", single, "1.0x");
    const auto r1 = backend::SimulateCluster(compiled->program, one);
    const auto r4 = backend::SimulateCluster(compiled->program, four);
    std::printf("%-24s %12.1f %9.1fx\n", "distributed CPU (1 node)",
                r1.seconds, r1.Speedup());
    std::printf("%-24s %12.1f %9.1fx\n", "distributed CPU (4 nodes)",
                r4.seconds, r4.Speedup());
    for (const auto& gpu : {backend::A5000(), backend::Rtx4090()}) {
        const auto rc = backend::SimulateCuFhe(compiled->program, gpu);
        const auto rp = backend::SimulatePyTfhe(compiled->program, gpu);
        std::printf("%-24s %12.1f %9.1fx\n",
                    (gpu.name + " (cuFHE)").c_str(), rc.seconds,
                    single / rc.seconds);
        std::printf("%-24s %12.1f %9.1fx\n",
                    (gpu.name + " (PyTFHE)").c_str(), rp.seconds,
                    single / rp.seconds);
    }
    return 0;
}
