/**
 * @file
 * VIP-Bench explorer: list the registered workloads, or compile one and
 * print its circuit statistics, binary size, disassembly head, and
 * simulated runtimes across backends.
 *
 * Usage:
 *   vip_explorer list
 *   vip_explorer <WorkloadName>          e.g. vip_explorer Hamming
 */
#include <cstdio>
#include <cstring>

#include "backend/cluster_sim.h"
#include "backend/gpu_sim.h"
#include "core/compiler.h"
#include "vip/registry.h"

using namespace pytfhe;

int main(int argc, char** argv) {
    vip::BenchScale scale;
    scale.mnist_image = 12;  // Keep the explorer snappy.

    if (argc < 2 || std::strcmp(argv[1], "list") == 0) {
        std::printf("available workloads:\n");
        for (const auto& w : vip::AllWorkloads(scale))
            std::printf("  %-16s %s\n", w.name.c_str(),
                        w.is_neural ? "(neural)" : "");
        std::printf("\nusage: vip_explorer <name>\n");
        return 0;
    }

    const vip::Workload w = vip::FindWorkload(argv[1], scale);
    std::printf("== %s ==\n", w.name.c_str());
    auto compiled = core::Compile(w.build());
    if (!compiled) {
        std::fprintf(stderr, "compile failed\n");
        return 1;
    }
    std::printf("%s", compiled->stats.ToString().c_str());
    std::printf("binary: %zu bytes (%zu instructions)\n",
                compiled->program.ByteSize(),
                compiled->program.Instructions().size());

    // First few instructions of the binary.
    std::printf("\ndisassembly (head):\n");
    const auto& ins = compiled->program.Instructions();
    for (uint64_t i = 0; i < ins.size() && i < 8; ++i)
        std::printf("  %s\n", ins[i].ToString(i).c_str());

    const auto schedule = backend::ComputeSchedule(compiled->program);
    std::printf("\nDAG: %llu waves, max width %llu, avg width %.1f\n",
                static_cast<unsigned long long>(schedule.NumLevels()),
                static_cast<unsigned long long>(schedule.MaxWidth()),
                schedule.AvgWidth());

    backend::ClusterConfig one, four;
    four.nodes = 4;
    const double single = backend::SingleCoreSeconds(
        backend::ComputeGateMix(compiled->program), one.cpu);
    const auto r1 = backend::SimulateCluster(compiled->program, one);
    const auto r4 = backend::SimulateCluster(compiled->program, four);
    std::printf("\nsingle core: %.2f s | 1 node: %.2f s (%.1fx) | "
                "4 nodes: %.2f s (%.1fx)\n",
                single, r1.seconds, r1.Speedup(), r4.seconds, r4.Speedup());
    for (const auto& gpu : {backend::A5000(), backend::Rtx4090()}) {
        const auto rc = backend::SimulateCuFhe(compiled->program, gpu);
        const auto rp = backend::SimulatePyTfhe(compiled->program, gpu);
        std::printf("%s: cuFHE %.2f s, PyTFHE %.2f s (%.1fx)\n",
                    gpu.name.c_str(), rc.seconds, rp.seconds,
                    rc.seconds / rp.seconds);
    }
    return 0;
}
