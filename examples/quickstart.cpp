/**
 * @file
 * Quickstart: homomorphic 8-bit addition, end to end.
 *
 * Builds an adder circuit with the hdl library, compiles it to a PyTFHE
 * binary, generates keys, encrypts two numbers on the "client", executes
 * the binary over ciphertexts on the "server", and decrypts the sum.
 *
 * Runs with toy (INSECURE, fast) parameters by default; pass --secure to
 * use the paper's 128-bit parameter set (key generation takes a while).
 */
#include <cstdio>
#include <cstring>

#include "core/compiler.h"
#include "core/runtime.h"
#include "hdl/word_ops.h"

using namespace pytfhe;

int main(int argc, char** argv) {
    const bool secure = argc > 1 && std::strcmp(argv[1], "--secure") == 0;
    const tfhe::Params params =
        secure ? tfhe::Tfhe128Params() : tfhe::ToyParams();
    std::printf("parameter set: %s\n", params.name.c_str());

    // 1. Describe the computation as a circuit.
    hdl::Builder builder;
    const hdl::Bits x = hdl::InputBits(builder, 8, "x");
    const hdl::Bits y = hdl::InputBits(builder, 8, "y");
    hdl::OutputBits(builder, hdl::Add(builder, x, y), "sum");

    // 2. Compile: optimize and assemble the PyTFHE binary.
    auto compiled = core::Compile(builder.netlist());
    if (!compiled) {
        std::fprintf(stderr, "compilation failed\n");
        return 1;
    }
    std::printf("compiled: %llu gates, depth %llu, binary %zu bytes\n",
                static_cast<unsigned long long>(compiled->stats.num_gates),
                static_cast<unsigned long long>(compiled->stats.depth),
                compiled->program.ByteSize());

    // 3. Client: keys + encryption.
    core::Client client(params, /*seed=*/42);
    auto server = client.MakeServer();  // Ships only public key material.

    const hdl::DType u8 = hdl::DType::UInt(8);
    const double a = 37, b = 105;
    core::Ciphertexts inputs = client.EncryptValue(u8, a);
    core::Ciphertexts more = client.EncryptValue(u8, b);
    inputs.insert(inputs.end(), more.begin(), more.end());

    // 4. Server: homomorphic evaluation — sees only ciphertexts.
    // RunOptions carries the per-request knobs: worker threads, an
    // optional deadline, and a per-run profile toggle.
    core::RunOptions options;
    options.num_threads = 2;
    options.profile = true;
    const core::Ciphertexts result =
        server->Run(compiled->program, inputs, options);

    // 5. Client: decryption.
    const double sum = client.DecryptValue(u8, result);
    std::printf("%g + %g = %g (homomorphically)\n", a, b, sum);
    std::printf("bootstrapped gates evaluated: %llu\n",
                static_cast<unsigned long long>(
                    server->last_run_profile().bootstrap_count));
    return sum == a + b ? 0 : 1;
}
