/**
 * @file
 * Encrypted digit arithmetic with programmable bootstrapping — the
 * extension layer beyond the paper's gate-level programs.
 *
 * Where the gate backends evaluate one boolean per bootstrap, the
 * short-integer layer packs a whole base-p digit per ciphertext and
 * evaluates add/mul/compare in a single programmable bootstrap each.
 * This example computes (a * b + c) mod p and a three-digit base-4
 * addition, all under encryption with toy parameters.
 */
#include <cstdio>

#include "tfhe/shortint.h"

using namespace pytfhe::tfhe;

int main() {
    Rng rng(2024);
    const Params params = ToyParams();
    const LweKey lwe_key(params.n, rng);
    const TLweKey tlwe_key(params.big_n, params.k, rng);
    const BootstrappingKey bk(params, lwe_key, tlwe_key, rng);

    const int32_t p = 4;
    ShortIntContext ctx(p, bk);
    std::printf("short integers mod %d (ciphertext space %d slots)\n", p,
                ctx.CiphertextSpace());

    auto enc = [&](int32_t m) {
        return ctx.Encrypt(m, lwe_key, params.lwe_noise_stddev, rng);
    };
    auto dec = [&](const LweSample& ct) { return ctx.Decrypt(ct, lwe_key); };

    // (a * b + c) mod 4, one bootstrap per operation.
    const int32_t a = 3, b = 2, c = 3;
    const LweSample result = ctx.Add(ctx.Mul(enc(a), enc(b)), enc(c));
    std::printf("(%d * %d + %d) mod %d = %d (expected %d)\n", a, b, c, p,
                dec(result), (a * b + c) % p);

    // Multi-digit addition: 123_4 + 321_4 = 1110_4 (27 + 57 = 84).
    const int32_t x[3] = {3, 2, 1};  // LSB first: 123_4 = 1*16+2*4+3.
    const int32_t y[3] = {1, 2, 3};
    std::vector<LweSample> sum;
    LweSample carry = enc(0);
    for (int i = 0; i < 3; ++i) {
        LweSample digit_sum = ctx.Add(enc(x[i]), enc(y[i]));
        LweSample carry1 = ctx.AddCarry(enc(x[i]), enc(y[i]));
        LweSample with_carry = ctx.Add(digit_sum, carry);
        LweSample carry2 = ctx.AddCarry(digit_sum, carry);
        carry = ctx.Apply2(
            [](int32_t u, int32_t v) { return (u + v) > 0 ? 1 : 0; }, carry1,
            carry2);
        sum.push_back(with_carry);
    }
    sum.push_back(carry);

    int64_t value = 0;
    std::printf("123_4 + 321_4 = ");
    for (int i = 3; i >= 0; --i) {
        const int32_t d = dec(sum[i]);
        std::printf("%d", d);
        value = value * 4 + d;
    }
    std::printf("_4 = %lld (expected 84)\n", static_cast<long long>(value));
    return value == 84 ? 0 : 1;
}
