/**
 * @file
 * Bit-wise vs word-wise FHE, hands on (Section II-C of the paper).
 *
 * Evaluates the same tiny encrypted computation — an element-wise affine
 * transform followed by ReLU — under both schemes in this repository:
 *
 *  - CKKS-lite: one ciphertext holds the whole vector; the affine part is
 *    two native operations, but ReLU must be approximated by a polynomial
 *    that burns multiplicative depth and accuracy.
 *  - TFHE (via the compile pipeline): every value costs gates, but ReLU
 *    is exact and the circuit depth is unlimited thanks to bootstrapping.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ckks/ckks.h"
#include "core/compiler.h"
#include "core/runtime.h"
#include "nn/functional.h"

using namespace pytfhe;

int main() {
    const int32_t kValues = 8;
    std::vector<double> xs(kValues), weights(kValues), bias(kValues);
    for (int32_t i = 0; i < kValues; ++i) {
        xs[i] = -1.0 + 2.0 * i / (kValues - 1);
        weights[i] = 0.5 + 0.05 * i;
        bias[i] = (i % 2 ? -0.2 : 0.2);
    }
    std::vector<double> expected(kValues);
    for (int32_t i = 0; i < kValues; ++i)
        expected[i] = std::max(0.0, xs[i] * weights[i] + bias[i]);

    std::printf("computing relu(w*x + b) on %d encrypted values\n\n",
                kValues);

    // ---------------- CKKS-lite: vectorized, approximate ReLU.
    {
        tfhe::Rng rng(1);
        ckks::CkksParams params;
        params.log_scale = 12;  // Small scale: the whole polynomial fits
                                // at the top modulus without rescaling.
        ckks::CkksContext ctx(params, rng);
        const int32_t ns = params.NumSlots();
        auto pad = [&](const std::vector<double>& v) {
            std::vector<double> out(ns, 0.0);
            std::copy(v.begin(), v.end(), out.begin());
            return out;
        };
        auto splat = [&](double v) { return std::vector<double>(ns, v); };

        auto ct = ctx.Encrypt(pad(xs), rng);
        // ReLU ~= 0.1 + 0.5 y + 0.3 y^2. The 0.3 folds into the affine
        // operands ((sqrt(0.3) w x + sqrt(0.3) b)^2 = 0.3 y^2), keeping
        // every term at scale Delta^4 with zero rescales.
        const double r = std::sqrt(0.3);
        std::vector<double> wr(ns, 0.0), br(ns, 0.0);
        for (int32_t i = 0; i < kValues; ++i) {
            wr[i] = r * weights[i];
            br[i] = r * bias[i];
        }
        auto affine = ctx.AddPlain(ctx.MulPlain(ct, pad(weights)),
                                   pad(bias));        // Delta^2.
        auto affine_r = ctx.AddPlain(ctx.MulPlain(ct, wr), br);
        auto quad = ctx.Mul(affine_r, affine_r);       // 0.3 y^2, Delta^4.
        auto lin = ctx.MulPlain(ctx.MulPlain(affine, splat(0.5)),
                                splat(1.0));           // 0.5 y, Delta^4.
        auto relu = ctx.AddPlain(ctx.Add(quad, lin), splat(0.1));
        const auto got = ctx.Decrypt(relu);

        std::printf("CKKS-lite (quadratic ReLU approx):\n");
        double max_err = 0;
        for (int32_t i = 0; i < kValues; ++i) {
            std::printf("  x=%+5.2f -> %+6.3f (exact %+6.3f)\n", xs[i],
                        got[i], expected[i]);
            max_err = std::max(max_err, std::abs(got[i] - expected[i]));
        }
        std::printf("  max approximation error: %.3f "
                    "(inherent to the polynomial)\n\n", max_err);
    }

    // ---------------- TFHE: per-value gates, exact ReLU.
    {
        const hdl::DType t = hdl::DType::Fixed(6, 8);
        hdl::Builder b;
        nn::Tensor x = nn::Tensor::Input(b, t, {kValues}, "x");
        nn::Tensor w = nn::Tensor::FromData(b, t, {kValues}, weights);
        nn::Tensor bias_t = nn::Tensor::FromData(b, t, {kValues}, bias);
        nn::Relu(b, nn::Add(b, nn::Mul(b, x, w), bias_t)).Output(b, "y");
        auto compiled = core::Compile(b.netlist());

        core::Client client(tfhe::ToyParams(), 2);
        auto server = client.MakeServer();
        const auto out = server->Run(compiled->program,
                                     client.EncryptValues(t, xs),
                                     core::RunOptions{.num_threads = 2});
        const auto got = client.DecryptValues(t, out);

        std::printf("TFHE (%llu exact gates, toy params, real encrypted "
                    "run):\n",
                    static_cast<unsigned long long>(
                        compiled->program.NumGates()));
        double max_err = 0;
        for (int32_t i = 0; i < kValues; ++i) {
            std::printf("  x=%+5.2f -> %+6.3f (exact %+6.3f)\n", xs[i],
                        got[i], expected[i]);
            max_err = std::max(max_err, std::abs(got[i] - expected[i]));
        }
        std::printf("  max error: %.3f (quantization only)\n", max_err);
    }
    return 0;
}
