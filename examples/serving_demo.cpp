/**
 * @file
 * Serving demo: two clients share one multi-tenant core::Service.
 *
 * Each client registers its public evaluation key (getting back a KeyId
 * that matches its own), then submits encrypted jobs asynchronously.
 * The service interleaves the jobs' gates on one shared worker pool and
 * each client decrypts only its own results. Also demonstrates the
 * typed rejection paths: unknown keys and deadline expiry.
 */
#include <cstdio>
#include <vector>

#include "core/compiler.h"
#include "core/service.h"
#include "hdl/word_ops.h"

using namespace pytfhe;

int main() {
    // The shared computation: an 8-bit adder.
    hdl::Builder builder;
    const hdl::Bits x = hdl::InputBits(builder, 8, "x");
    const hdl::Bits y = hdl::InputBits(builder, 8, "y");
    hdl::OutputBits(builder, hdl::Add(builder, x, y), "sum");
    auto compiled = core::Compile(builder.netlist());
    if (!compiled) {
        std::fprintf(stderr, "compilation failed\n");
        return 1;
    }
    const auto program =
        std::make_shared<const pasm::Program>(compiled->program);

    // One service, many tenants: each client registers its own key.
    core::ServiceOptions options;
    options.serving.num_workers = 4;
    core::Service service(options);

    core::Client alice(tfhe::ToyParams(), /*seed=*/1);
    core::Client bob(tfhe::ToyParams(), /*seed=*/2);
    const core::KeyId alice_id =
        service.RegisterTenant(alice.MakeEvaluationKey());
    const core::KeyId bob_id =
        service.RegisterTenant(bob.MakeEvaluationKey());
    std::printf("alice registered as %s\n", alice_id.ToString().c_str());
    std::printf("bob   registered as %s\n", bob_id.ToString().c_str());

    // Submit asynchronously; jobs from both tenants interleave at gate
    // granularity on the shared pool.
    const hdl::DType u8 = hdl::DType::UInt(8);
    core::JobHandle alice_job = service.Submit(
        alice_id, program, alice.EncryptValues(u8, {37, 105}));
    core::JobHandle bob_job =
        service.Submit(bob_id, program, bob.EncryptValues(u8, {200, 31}));

    // Each client decrypts only its own outputs.
    std::printf("alice: 37 + 105 = %g\n",
                alice.DecryptValue(u8, alice_job.Get()));
    std::printf("bob:   200 + 31 = %g\n",
                bob.DecryptValue(u8, bob_job.Get()));
    const core::JobMetrics m = alice_job.Metrics();
    std::printf("alice's job: %llu gates, %.1f ms wall (%.1f ms queued)\n",
                static_cast<unsigned long long>(m.gates_executed),
                m.wall_seconds * 1e3, m.queue_seconds * 1e3);

    // Typed rejections: an unregistered key never evaluates into garbage,
    // and a missed deadline resolves the job instead of blocking forever.
    core::Client mallory(tfhe::ToyParams(), /*seed=*/3);
    try {
        (void)service.Submit(mallory.key_id(), program,
                             mallory.EncryptValues(u8, {1, 2}));
    } catch (const core::UnknownKeyError& e) {
        std::printf("unregistered tenant rejected: %s\n", e.what());
    }
    core::RunOptions tight;
    tight.deadline_seconds = 1e-9;
    core::JobHandle late = service.Submit(
        alice_id, program, alice.EncryptValues(u8, {4, 5}), tight);
    if (late.Wait() == core::JobStatus::kDeadlineExceeded)
        std::printf("deadline-expired job resolved without blocking\n");

    const core::Service::Stats stats = service.stats();
    std::printf("service: %llu jobs submitted, %llu completed, "
                "%llu gates executed across %llu tenants\n",
                static_cast<unsigned long long>(
                    stats.serving.jobs_submitted),
                static_cast<unsigned long long>(
                    stats.serving.jobs_completed),
                static_cast<unsigned long long>(
                    stats.serving.gates_executed),
                static_cast<unsigned long long>(stats.tenants));
    return 0;
}
