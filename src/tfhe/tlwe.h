/**
 * @file
 * TLWE (ring-LWE over the torus) samples and keys.
 *
 * A TLWE sample is (a_1..a_k, b) where each component is a torus polynomial
 * in T[X]/(X^N + 1) and b = sum_i a_i * s_i + m + e for binary key
 * polynomials s_i. TLWE carries the bootstrapping accumulator; individual
 * LWE samples are extracted from coefficient 0.
 */
#ifndef PYTFHE_TFHE_TLWE_H
#define PYTFHE_TFHE_TLWE_H

#include <vector>

#include "tfhe/lwe.h"
#include "tfhe/params.h"
#include "tfhe/polynomial.h"

namespace pytfhe::tfhe {

/** TLWE secret key: k binary polynomials of degree < N. */
struct TLweKey {
    std::vector<IntPolynomial> key;

    TLweKey() = default;
    /** Samples uniform binary key polynomials. */
    TLweKey(int32_t n, int32_t k, Rng& rng);

    int32_t BigN() const { return key.empty() ? 0 : key[0].Size(); }
    int32_t K() const { return static_cast<int32_t>(key.size()); }

    /**
     * Flattens the ring key into an LWE key of dimension N * k, matching the
     * layout of extracted samples.
     */
    LweKey ExtractLweKey() const;
};

/** TLWE ciphertext: k mask polynomials plus the body polynomial. */
struct TLweSample {
    std::vector<TorusPolynomial> a;  ///< k + 1 polynomials; a[k] is the body.

    TLweSample() = default;
    TLweSample(int32_t n, int32_t k);

    int32_t BigN() const { return a.empty() ? 0 : a[0].Size(); }
    int32_t K() const { return static_cast<int32_t>(a.size()) - 1; }

    TorusPolynomial& Body() { return a.back(); }
    const TorusPolynomial& Body() const { return a.back(); }

    void Clear();
    /** Sets a noiseless encryption of the given message polynomial. */
    void SetTrivial(const TorusPolynomial& mu);
    void AddTo(const TLweSample& other);
    void SubTo(const TLweSample& other);
};

/** Encrypts a torus message polynomial. */
TLweSample TLweEncrypt(const TorusPolynomial& mu, double noise_stddev,
                       const TLweKey& key, Rng& rng);

/** Encrypts a constant torus message in coefficient 0. */
TLweSample TLweEncryptConst(Torus32 mu, double noise_stddev,
                            const TLweKey& key, Rng& rng);

/** Computes the phase polynomial b - sum_i a_i * s_i. */
TorusPolynomial TLwePhase(const TLweSample& sample, const TLweKey& key);

/** result = sample * X^a (rotates every component polynomial). */
void TLweMulByXai(TLweSample& result, int32_t a, const TLweSample& sample);

/**
 * Extracts the LWE sample encrypting coefficient `index` of the TLWE message
 * under the extracted key layout of TLweKey::ExtractLweKey.
 */
LweSample TLweExtractSample(const TLweSample& sample, int32_t index = 0);

/**
 * Allocation-free variant: `out` is resized to N*k once and reused across
 * calls (its prior contents are overwritten).
 */
void TLweExtractSampleInto(LweSample& out, const TLweSample& sample,
                           int32_t index = 0);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_TLWE_H
