/**
 * @file
 * TGSW ciphertexts, gadget decomposition, and the external product.
 *
 * A TGSW sample encrypting integer m is a matrix of (k+1)*l TLWE rows: row
 * (i, j) is an encryption of zero plus m * h_j placed on component i, where
 * h_j = Bg^{-(j+1)} is the gadget. The external product TGSW x TLWE -> TLWE
 * homomorphically multiplies the TLWE message by m, and CMUX(C, d1, d0)
 * selects between two TLWE samples under an encrypted bit C. Bootstrapping
 * keys store TGSW rows in the FFT domain so each CMUX needs only forward
 * transforms of the gadget digits.
 *
 * The external product is the innermost kernel of bootstrapping, so it is
 * allocation-free in steady state: callers on hot paths pass an
 * ExternalProductScratch they own (one per worker thread). Decomposition is
 * fused with the FFT packing — digits are written as doubles directly into
 * the transform's input buffers instead of materializing IntPolynomials.
 */
#ifndef PYTFHE_TFHE_TGSW_H
#define PYTFHE_TFHE_TGSW_H

#include <vector>

#include "tfhe/fft.h"
#include "tfhe/params.h"
#include "tfhe/tlwe.h"

namespace pytfhe::tfhe {

/** TGSW ciphertext in the standard (coefficient) domain. */
struct TGswSample {
    std::vector<TLweSample> rows;  ///< (k + 1) * l rows.
    int32_t l = 0;
    int32_t bg_bit = 0;
};

/** TGSW ciphertext with every row polynomial in the FFT domain. */
struct TGswSampleFft {
    /** rows[r][c]: component c of row r, frequency domain. */
    std::vector<std::vector<FreqPolynomial>> rows;
    int32_t l = 0;
    int32_t bg_bit = 0;
};

/**
 * Reusable buffers for TGswExternalProduct / TGswCMux. Owned explicitly by
 * the caller (per worker thread on hot paths); all buffers keep their
 * capacity across calls, so repeated use with fixed parameters performs no
 * heap allocation.
 */
struct ExternalProductScratch {
    std::vector<FreqPolynomial> dec;  ///< l digit transforms, reused per row.
    std::vector<FreqPolynomial> acc;  ///< k + 1 frequency accumulators.
    TLweSample cmux_diff;             ///< d1 - d0 buffer for TGswCMux.
};

/**
 * Reusable buffers for TGswExternalProductBatch. Buffers keep capacity
 * across calls with a fixed (parameter set, batch size) pair; a change in
 * batch size (e.g. a ragged final batch) reallocates once.
 */
struct BatchExternalProductScratch {
    std::vector<BatchFreqPolynomial> dec;  ///< l digit transforms, all lanes.
    std::vector<BatchFreqPolynomial> acc;  ///< k + 1 batch accumulators.
    std::vector<TorusPolynomial*> inv_outs;  ///< Inverse extraction table.
};

/** Encrypts integer message m (typically a key bit in {0, 1}). */
TGswSample TGswEncrypt(int32_t message, int32_t l, int32_t bg_bit,
                       double noise_stddev, const TLweKey& key, Rng& rng);

/** Converts a TGSW sample to the FFT domain using the plan for its size. */
TGswSampleFft TGswToFft(const TGswSample& sample, const NegacyclicFft& fft);

/**
 * Signed gadget decomposition of every component of a TLWE sample:
 * produces (k+1)*l integer polynomials with digits in [-Bg/2, Bg/2).
 * Reference entry point used by tests and noise analysis; the external
 * product uses a fused decompose-and-pack internally.
 */
void TGswDecompose(std::vector<IntPolynomial>& out, const TLweSample& sample,
                   int32_t l, int32_t bg_bit);

/**
 * result = C x sample (external product), via the FFT domain.
 * With a non-null `scratch` the call never allocates in steady state; the
 * nullptr default allocates a local scratch (tests and cold paths).
 */
void TGswExternalProduct(TLweSample& result, const TGswSampleFft& c,
                         const TLweSample& sample, const NegacyclicFft& fft,
                         ExternalProductScratch* scratch = nullptr);

/**
 * Batched external product: result[lane] = C x samples[lane] for b
 * independent TLWE samples against ONE shared TGSW sample. The gadget
 * digits of all lanes are decomposed into the structure-of-arrays
 * BatchFreqPolynomial layout, transformed with one shared twiddle pass per
 * FFT stage, and every frequency-domain key row is streamed from memory
 * once for the whole batch. Bit-exact per lane vs TGswExternalProduct.
 */
void TGswExternalProductBatch(std::vector<TLweSample>& result,
                              const TGswSampleFft& c,
                              const std::vector<TLweSample>& samples,
                              int32_t b, const NegacyclicFft& fft,
                              BatchExternalProductScratch& scratch);

/**
 * result = d0 + C x (d1 - d0): selects d1 when C encrypts 1, d0 when C
 * encrypts 0, up to noise.
 */
void TGswCMux(TLweSample& result, const TGswSampleFft& c, const TLweSample& d1,
              const TLweSample& d0, const NegacyclicFft& fft,
              ExternalProductScratch* scratch = nullptr);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_TGSW_H
