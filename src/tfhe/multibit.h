/**
 * @file
 * Multi-bit plaintexts and weighted-operand programmable bootstrapping.
 *
 * Boolean gate bootstrapping encodes a bit as +-1/8 and asks the blind
 * rotation only for a sign. Multi-bit mode widens the message space to
 * p in {2, 4, 8, 16} values per ciphertext: a digit v in [0, p) is encoded
 * at the torus phase
 *
 *     phi(v) = (2v + 1) / (4p),
 *
 * the center of the v-th of p equal slots covering the upper half-circle
 * [0, 1/2) (the negacyclic ring mirrors the lower half, so everything must
 * stay above it — see FunctionalBootstrap).
 *
 * The payoff is the weighted LUT gate. Given operand digits v_1..v_k with
 * public integer weights w_1..w_k, the linear combination
 *
 *     sum_i w_i * c_i + bias,  bias = (1 - 2*lo - sum_i w_i) / (4p)
 *
 * lands *exactly* at phi(m - lo) where m = sum_i w_i * v_i and lo is the
 * minimum reachable m: the per-operand half-slot offsets (+1/(4p) each)
 * are public, so the bias cancels them in one shot. One programmable
 * bootstrap with a table-valued test vector then maps the packed index to
 * any function of m — a full adder's sum+carry, a three-way majority, a
 * partial-product column count — for the price of ONE bootstrap where the
 * boolean pipeline spends one per gate.
 *
 * Correctness needs the packed phase to stay within its 1/(4p) half-slot:
 * noise accumulates as (sum w_i^2) * V_gate + V_modswitch, checked
 * analytically by tfhe::CheckMultibitParams. The circuit-level contract
 * (arity, table layout, lo bookkeeping) lives in circuit::LutSpec; this
 * header is the cryptographic kernel only and is circuit-agnostic.
 */
#ifndef PYTFHE_TFHE_MULTIBIT_H
#define PYTFHE_TFHE_MULTIBIT_H

#include <span>

#include "tfhe/gates.h"

namespace pytfhe::tfhe {

/** phi(v) = (2v + 1) / (4p), the digit encoding (== EncodePbsMessage). */
Torus32 EncodeDigit(int32_t v, int32_t p);

/**
 * Nearest digit of a phase: floor(phase * 2p), exact while the phase is
 * within 1/(4p) of a slot center. Reduced mod p for out-of-range phases.
 */
int32_t DecodeDigit(Torus32 phase, int32_t p);

/** Fresh encryption of digit v in [0, p) under the small LWE key. */
LweSample LweEncryptDigit(int32_t v, int32_t p, double noise_stddev,
                          const LweKey& key, Rng& rng);

/** Decrypts a digit ciphertext (phase rounding per DecodeDigit). */
int32_t LweDecryptDigit(const LweSample& sample, const LweKey& key, int32_t p);

/**
 * One LUT gate's kernel-level description. `weights` are the operand
 * weights (nonzero, |w| <= 127); `lo` the minimum reachable weighted sum;
 * `table` packs (hi - lo + 1) entries of `out_bits` bits each, entry i
 * holding the output digit for weighted sum lo + i; `p` the message
 * modulus shared by operands and output.
 */
struct LutKernel {
    std::span<const int8_t> weights;
    int32_t lo = 0;
    uint32_t table = 0;
    uint8_t out_bits = 1;
    int32_t p = 0;
};

/**
 * Builds the test vector mapping a packed digit input v (encoded phi(v))
 * to the digit-encoded table entry at index v: slot j of the ring holds
 * EncodePbsMessage of entry floor(j * p / N). Requires 2p <= N.
 */
TorusPolynomial MakeDigitLutTestVector(const Params& params, uint32_t table,
                                       uint8_t out_bits, int32_t p);

/**
 * Evaluates one weighted LUT gate into caller-owned storage: linear
 * prelude sum w_i * ops_i + bias, one programmable bootstrap through the
 * (cached) test vector, one key switch back to dimension n. Inputs are
 * fully read before `out` is written, so `out` may alias an operand.
 * Profiling lands in eval.profile() exactly like the boolean gates; the
 * test-vector cache lives in the scratch, so reusing one scratch per
 * worker makes repeated tables allocation-free.
 */
void LutBootstrapInto(GateEvaluator& eval, const LutKernel& lut,
                      std::span<const LweCView> ops, LweView out,
                      BootstrapScratch* scratch = nullptr);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_MULTIBIT_H
