/**
 * @file
 * Batched (structure-of-arrays) negacyclic FFT: BatchFreqPolynomial and the
 * NegacyclicFft batch entry points. Portable lane loops live here; the
 * AVX2/NEON variants live in fft_batch_simd.cc and are selected at runtime
 * via batch_detail::SimdAvailable().
 */
#include <cassert>
#include <cstring>
#include <new>

#include "tfhe/fft.h"
#include "tfhe/fft_batch_kernels.h"

namespace pytfhe::tfhe {

namespace {

constexpr size_t kAlign = 32;

/** Rounds a plane length up so the second plane stays 32-byte aligned. */
size_t AlignedPlane(int32_t half, int32_t lanes) {
    return (static_cast<size_t>(half) * lanes + 3) & ~static_cast<size_t>(3);
}

bool UseSimd() {
    static const bool use = batch_detail::SimdAvailable();
    return use;
}

/**
 * True when this (half, lanes) shape should run the AVX-512 kernels: 8
 * same-slot lanes per vector, or the two-slots-x-4-lanes pairing (which
 * needs an even slot count). The hb == 1 butterfly stage of the lanes == 4
 * shape is excluded at the call site.
 */
bool UseSimd512(int32_t half, int32_t lanes) {
    static const bool use = batch_detail::Simd512Available();
    return use && (lanes % 8 == 0 || (lanes == 4 && half % 2 == 0));
}

void TwistForwardPortable(double* __restrict re, double* __restrict im,
                          const double* __restrict tr,
                          const double* __restrict ti, int32_t half,
                          int32_t lanes) {
    if (lanes == 1) {
        // Contiguous single-lane layout: the same loop shape as the scalar
        // twist in fft.cc, so -O3 autovectorizes it identically and a
        // batch of one costs what a scalar transform costs.
        for (int32_t j = 0; j < half; ++j) {
            const double lo = re[j];
            const double hi = im[j];
            re[j] = lo * tr[j] + hi * ti[j];
            im[j] = lo * ti[j] - hi * tr[j];
        }
        return;
    }
    for (int32_t j = 0; j < half; ++j) {
        const double cr = tr[j];
        const double ci = ti[j];
        double* __restrict re_j = re + static_cast<size_t>(j) * lanes;
        double* __restrict im_j = im + static_cast<size_t>(j) * lanes;
        for (int32_t l = 0; l < lanes; ++l) {
            const double lo = re_j[l];
            const double hi = im_j[l];
            re_j[l] = lo * cr + hi * ci;
            im_j[l] = lo * ci - hi * cr;
        }
    }
}

void ButterflyStagePortable(double* __restrict re, double* __restrict im,
                            const double* __restrict wre,
                            const double* __restrict wim, double sign,
                            int32_t half, int32_t hb, int32_t lanes) {
    const int32_t len = hb * 2;
    if (lanes == 1) {
        // Same loop shape as FftInPlace in fft.cc for identical codegen.
        for (int32_t base = 0; base < half; base += len) {
            for (int32_t k = 0; k < hb; ++k) {
                const double cr = wre[k];
                const double ci = sign * wim[k];
                const int32_t i0 = base + k;
                const int32_t i1 = base + k + hb;
                const double tre = re[i1] * cr - im[i1] * ci;
                const double tim = re[i1] * ci + im[i1] * cr;
                re[i1] = re[i0] - tre;
                im[i1] = im[i0] - tim;
                re[i0] += tre;
                im[i0] += tim;
            }
        }
        return;
    }
    for (int32_t base = 0; base < half; base += len) {
        for (int32_t k = 0; k < hb; ++k) {
            const double cr = wre[k];
            const double ci = sign * wim[k];
            const size_t i0 = static_cast<size_t>(base + k) * lanes;
            const size_t i1 = static_cast<size_t>(base + k + hb) * lanes;
            double* __restrict re0 = re + i0;
            double* __restrict im0 = im + i0;
            double* __restrict re1 = re + i1;
            double* __restrict im1 = im + i1;
            for (int32_t l = 0; l < lanes; ++l) {
                const double tre = re1[l] * cr - im1[l] * ci;
                const double tim = re1[l] * ci + im1[l] * cr;
                re1[l] = re0[l] - tre;
                im1[l] = im0[l] - tim;
                re0[l] += tre;
                im0[l] += tim;
            }
        }
    }
}

void AddMulBroadcastPortable(double* __restrict rre, double* __restrict rim,
                             const double* __restrict are,
                             const double* __restrict aim,
                             const double* __restrict bre,
                             const double* __restrict bim, int32_t half,
                             int32_t lanes) {
    if (lanes == 1) {
        for (int32_t j = 0; j < half; ++j) {
            rre[j] += are[j] * bre[j] - aim[j] * bim[j];
            rim[j] += are[j] * bim[j] + aim[j] * bre[j];
        }
        return;
    }
    for (int32_t j = 0; j < half; ++j) {
        const double br = bre[j];
        const double bi = bim[j];
        const size_t off = static_cast<size_t>(j) * lanes;
        const double* __restrict a_re = are + off;
        const double* __restrict a_im = aim + off;
        double* __restrict r_re = rre + off;
        double* __restrict r_im = rim + off;
        for (int32_t l = 0; l < lanes; ++l) {
            r_re[l] += a_re[l] * br - a_im[l] * bi;
            r_im[l] += a_re[l] * bi + a_im[l] * br;
        }
    }
}

/**
 * Same magic-constant round-to-nearest as the scalar inverse path (see
 * fft.cc); duplicated here so the batched extraction rounds identically.
 */
inline Torus32 RoundTorus32(double x) {
    assert(x < 2251799813685248.0 && x > -2251799813685248.0);  // |x| < 2^51
    constexpr double kRoundMagic = 6755399441055744.0;          // 1.5 * 2^52
    const double biased = x + kRoundMagic;
    uint64_t bits;
    std::memcpy(&bits, &biased, sizeof(bits));
    return static_cast<Torus32>(bits);
}

}  // namespace

// ------------------------------------------------------- BatchFreqPolynomial

BatchFreqPolynomial& BatchFreqPolynomial::operator=(
    BatchFreqPolynomial&& other) noexcept {
    if (this == &other) return *this;
    Free();
    data_ = other.data_;
    half_ = other.half_;
    lanes_ = other.lanes_;
    stride_ = other.stride_;
    other.data_ = nullptr;
    other.half_ = 0;
    other.lanes_ = 0;
    other.stride_ = 0;
    return *this;
}

void BatchFreqPolynomial::Resize(int32_t half, int32_t lanes) {
    assert(half >= 0 && lanes >= 0);
    if (half == half_ && lanes == lanes_) return;
    Free();
    half_ = half;
    lanes_ = lanes;
    stride_ = AlignedPlane(half, lanes);
    if (half == 0 || lanes == 0) return;
    const size_t bytes = 2 * stride_ * sizeof(double);
    data_ = static_cast<double*>(
        ::operator new(bytes, std::align_val_t{kAlign}));
    std::memset(data_, 0, bytes);
}

void BatchFreqPolynomial::Clear() {
    if (data_ != nullptr)
        std::memset(data_, 0, 2 * stride_ * sizeof(double));
}

void BatchFreqPolynomial::Free() {
    if (data_ != nullptr)
        ::operator delete(data_, std::align_val_t{kAlign});
    data_ = nullptr;
    half_ = 0;
    lanes_ = 0;
    stride_ = 0;
}

void BatchFreqPolynomial::AddMulBroadcast(const BatchFreqPolynomial& a,
                                          const FreqPolynomial& b) {
    assert(a.HalfSize() == half_ && a.Lanes() == lanes_);
    assert(b.HalfSize() == half_);
    if (lanes_ > 1 && UseSimd512(half_, lanes_)) {
        batch_detail::Simd512AddMulBroadcast(Re(), Im(), a.Re(), a.Im(),
                                             b.Re(), b.Im(), half_, lanes_);
    } else if (lanes_ > 1 && UseSimd()) {
        batch_detail::SimdAddMulBroadcast(Re(), Im(), a.Re(), a.Im(), b.Re(),
                                          b.Im(), half_, lanes_);
    } else {
        AddMulBroadcastPortable(Re(), Im(), a.Re(), a.Im(), b.Re(), b.Im(),
                                half_, lanes_);
    }
}

// ----------------------------------------------- NegacyclicFft batch entries

namespace {

/**
 * Largest block of slots (a power of two) whose re+im planes stay within
 * ~16KB, for depth-first stage tiling: after bit reversal, every butterfly
 * stage with span <= block operates entirely inside contiguous blocks, so
 * those stages can run back to back on one block while it is hot in L1
 * instead of making one full pass over the batch per stage. Butterflies
 * within a stage touch disjoint slots, so this reordering performs the
 * identical per-lane operation sequence — bit-exactness is unaffected.
 */
int32_t StageBlockSlots(int32_t half, int32_t lanes) {
    constexpr size_t kBlockBytes = 16 * 1024;
    int32_t block = 2;
    while (block < half &&
           static_cast<size_t>(block) * 2 * lanes * 2 * sizeof(double) <=
               kBlockBytes)
        block *= 2;
    return block;
}

/**
 * Bit-reversal permutation over slot groups: pure lane-group swaps, no
 * floating-point arithmetic, so it stays in the portable TU.
 */
void BitrevGroups(double* re, double* im, const std::vector<int32_t>& bitrev,
                  int32_t half, int32_t lanes) {
    for (int32_t i = 0; i < half; ++i) {
        const int32_t j = bitrev[i];
        if (i >= j) continue;
        double* gi = re + static_cast<size_t>(i) * lanes;
        double* gj = re + static_cast<size_t>(j) * lanes;
        for (int32_t l = 0; l < lanes; ++l) std::swap(gi[l], gj[l]);
        gi = im + static_cast<size_t>(i) * lanes;
        gj = im + static_cast<size_t>(j) * lanes;
        for (int32_t l = 0; l < lanes; ++l) std::swap(gi[l], gj[l]);
    }
}

}  // namespace

void NegacyclicFft::ForwardPackedBatch(BatchFreqPolynomial& f) const {
    assert(f.HalfSize() == half_);
    const int32_t b = f.Lanes();
    double* re = f.Re();
    double* im = f.Im();
    const bool simd = b > 1 && UseSimd();
    const bool simd512 = b > 1 && UseSimd512(half_, b);
    if (simd512) {
        batch_detail::Simd512TwistForward(re, im, twist_re_.data(),
                                          twist_im_.data(), half_, b);
    } else if (simd) {
        batch_detail::SimdTwistForward(re, im, twist_re_.data(),
                                       twist_im_.data(), half_, b);
    } else {
        TwistForwardPortable(re, im, twist_re_.data(), twist_im_.data(),
                             half_, b);
    }
    BitrevGroups(re, im, bitrev_, half_, b);
    const auto stage = [&](double* sre, double* sim, int32_t span,
                           int32_t hb) {
        // The lanes == 4 AVX-512 shape pairs butterflies k and k+1, which
        // the hb == 1 stage does not have; that stage runs AVX2.
        if (simd512 && !(b == 4 && hb == 1)) {
            batch_detail::Simd512ButterflyStage(sre, sim, &tw_re_[hb - 1],
                                                &tw_im_[hb - 1], 1.0, span,
                                                hb, b);
        } else if (simd || simd512) {
            batch_detail::SimdButterflyStage(sre, sim, &tw_re_[hb - 1],
                                             &tw_im_[hb - 1], 1.0, span, hb,
                                             b);
        } else {
            ButterflyStagePortable(sre, sim, &tw_re_[hb - 1], &tw_im_[hb - 1],
                                   1.0, span, hb, b);
        }
    };
    // Depth-first over cache-sized blocks for the early stages, then the
    // remaining cross-block stages as full passes.
    const int32_t block = StageBlockSlots(half_, b);
    for (int32_t base = 0; base < half_; base += block) {
        double* bre = re + static_cast<size_t>(base) * b;
        double* bim = im + static_cast<size_t>(base) * b;
        for (int32_t hb = 1; hb < block; hb *= 2) stage(bre, bim, block, hb);
    }
    for (int32_t hb = block; hb < half_; hb *= 2) stage(re, im, half_, hb);
}

void NegacyclicFft::InverseInPlaceBatch(TorusPolynomial* const* outs,
                                        BatchFreqPolynomial& f) const {
    assert(f.HalfSize() == half_);
    const int32_t b = f.Lanes();
    double* re = f.Re();
    double* im = f.Im();
    const bool simd = b > 1 && UseSimd();
    const bool simd512 = b > 1 && UseSimd512(half_, b);
    BitrevGroups(re, im, bitrev_, half_, b);
    const auto stage = [&](double* sre, double* sim, int32_t span,
                           int32_t hb) {
        if (simd512 && !(b == 4 && hb == 1)) {
            batch_detail::Simd512ButterflyStage(sre, sim, &tw_re_[hb - 1],
                                                &tw_im_[hb - 1], -1.0, span,
                                                hb, b);
        } else if (simd || simd512) {
            batch_detail::SimdButterflyStage(sre, sim, &tw_re_[hb - 1],
                                             &tw_im_[hb - 1], -1.0, span, hb,
                                             b);
        } else {
            ButterflyStagePortable(sre, sim, &tw_re_[hb - 1], &tw_im_[hb - 1],
                                   -1.0, span, hb, b);
        }
    };
    const int32_t block = StageBlockSlots(half_, b);
    for (int32_t base = 0; base < half_; base += block) {
        double* bre = re + static_cast<size_t>(base) * b;
        double* bim = im + static_cast<size_t>(base) * b;
        for (int32_t hb = 1; hb < block; hb *= 2) stage(bre, bim, block, hb);
    }
    for (int32_t hb = block; hb < half_; hb *= 2) stage(re, im, half_, hb);
    // Untwist and round each lane back onto the torus. The per-lane strided
    // reads defeat SIMD anyway, so this tail stays portable.
    const double* __restrict ur = untwist_re_.data();
    const double* __restrict ui = untwist_im_.data();
    if (b == 1) {
        // Contiguous single-lane layout, same loop shape as the scalar
        // inverse tail in fft.cc.
        assert(outs[0]->Size() == n_);
        Torus32* __restrict c = outs[0]->coefs.data();
        for (int32_t j = 0; j < half_; ++j) {
            const double are = re[j] * ur[j] - im[j] * ui[j];
            const double aim = re[j] * ui[j] + im[j] * ur[j];
            c[j] = RoundTorus32(are);
            c[j + half_] = RoundTorus32(-aim);
        }
        return;
    }
    for (int32_t j = 0; j < half_; ++j) {
        const double cr = ur[j];
        const double ci = ui[j];
        const size_t off = static_cast<size_t>(j) * b;
        for (int32_t l = 0; l < b; ++l) {
            assert(outs[l]->Size() == n_);
            const double fre = re[off + l];
            const double fim = im[off + l];
            const double are = fre * cr - fim * ci;
            const double aim = fre * ci + fim * cr;
            Torus32* c = outs[l]->coefs.data();
            c[j] = RoundTorus32(are);
            c[j + half_] = RoundTorus32(-aim);
        }
    }
}

}  // namespace pytfhe::tfhe
