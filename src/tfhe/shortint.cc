#include "tfhe/shortint.h"

#include <cassert>

namespace pytfhe::tfhe {

ShortIntContext::ShortIntContext(int32_t p, const BootstrappingKey& key)
    : p_(p), big_p_(p * p), key_(&key) {
    assert(p >= 2);
    assert(2 * big_p_ <= key.params().big_n &&
           "message modulus too large for the ring dimension");
}

Torus32 ShortIntContext::Encode(int32_t m) const {
    return ModSwitchToTorus32(2 * m + 1, 4 * big_p_);
}

int32_t ShortIntContext::Decode(Torus32 phase) const {
    return DecodeRaw(phase) % p_;
}

LweSample ShortIntContext::Encrypt(int32_t m, const LweKey& key,
                                   double noise_stddev, Rng& rng) const {
    assert(m >= 0 && m < p_);
    return LweEncrypt(Encode(m), noise_stddev, key, rng);
}

int32_t ShortIntContext::Decrypt(const LweSample& ct,
                                 const LweKey& key) const {
    return Decode(LwePhase(ct, key));
}

TorusPolynomial ShortIntContext::MakePackedLut(
    const std::function<int32_t(int32_t)>& f) const {
    const int32_t n = key_->params().big_n;
    TorusPolynomial tv(n);
    for (int32_t j = 0; j < n; ++j) {
        const int32_t s = static_cast<int32_t>(
            (static_cast<int64_t>(j) * big_p_) / n);
        tv.coefs[j] = Encode(f(s) % p_);
    }
    return tv;
}

LweSample ShortIntContext::Apply(const std::function<int32_t(int32_t)>& f,
                                 const LweSample& x) const {
    // Digits occupy the first p slots of the P-space; reduce defensively.
    const int32_t p = p_;
    const TorusPolynomial tv =
        MakePackedLut([&](int32_t s) { return f(s % p); });
    return FunctionalBootstrap(tv, x, *key_);
}

LweSample ShortIntContext::ApplyRaw(
    const std::function<int32_t(int32_t)>& f, const LweSample& x) const {
    return FunctionalBootstrap(MakePackedLut(f), x, *key_);
}

LweSample ShortIntContext::TrivialDigit(int32_t m) const {
    LweSample s(key_->params().n);
    s.SetTrivial(Encode(m));
    return s;
}

int32_t ShortIntContext::DecodeRaw(Torus32 phase) const {
    const Torus32 quarter_slot = ModSwitchToTorus32(1, 4 * big_p_);
    const int32_t m =
        ModSwitchFromTorus32(phase - quarter_slot, 2 * big_p_) % big_p_;
    return ((m % big_p_) + big_p_) % big_p_;
}

LweSample ShortIntContext::Apply2(
    const std::function<int32_t(int32_t, int32_t)>& f, const LweSample& a,
    const LweSample& b) const {
    // s = p*b + a is linear in the ciphertexts:
    //   p*phi_b + phi_a = (2(p*b + a) + p + 1) / (4P),
    // so subtracting the constant p/(4P) re-centers the packed digit.
    LweSample packed(b.N());
    for (int32_t i = 0; i < b.N(); ++i)
        packed.a[i] = b.a[i] * static_cast<uint32_t>(p_) + a.a[i];
    packed.b = b.b * static_cast<uint32_t>(p_) + a.b -
               ModSwitchToTorus32(p_, 4 * big_p_);

    const int32_t p = p_;
    const TorusPolynomial tv =
        MakePackedLut([&](int32_t s) { return f(s % p, s / p); });
    return FunctionalBootstrap(tv, packed, *key_);
}

LweSample ShortIntContext::Add(const LweSample& a, const LweSample& b) const {
    return Apply2([this](int32_t x, int32_t y) { return (x + y) % p_; }, a,
                  b);
}

LweSample ShortIntContext::AddCarry(const LweSample& a,
                                    const LweSample& b) const {
    return Apply2([this](int32_t x, int32_t y) { return (x + y) / p_; }, a,
                  b);
}

LweSample ShortIntContext::Sub(const LweSample& a, const LweSample& b) const {
    return Apply2(
        [this](int32_t x, int32_t y) { return ((x - y) % p_ + p_) % p_; }, a,
        b);
}

LweSample ShortIntContext::Mul(const LweSample& a, const LweSample& b) const {
    return Apply2([this](int32_t x, int32_t y) { return (x * y) % p_; }, a,
                  b);
}

LweSample ShortIntContext::MulHigh(const LweSample& a,
                                   const LweSample& b) const {
    return Apply2([this](int32_t x, int32_t y) { return (x * y) / p_; }, a,
                  b);
}

LweSample ShortIntContext::Lt(const LweSample& a, const LweSample& b) const {
    return Apply2([](int32_t x, int32_t y) { return x < y ? 1 : 0; }, a, b);
}

LweSample ShortIntContext::Max(const LweSample& a, const LweSample& b) const {
    return Apply2([](int32_t x, int32_t y) { return x > y ? x : y; }, a, b);
}

LweSample ShortIntContext::Min(const LweSample& a, const LweSample& b) const {
    return Apply2([](int32_t x, int32_t y) { return x < y ? x : y; }, a, b);
}

}  // namespace pytfhe::tfhe
