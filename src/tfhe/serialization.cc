#include "tfhe/serialization.h"

#include <cstring>
#include <istream>
#include <ostream>

namespace pytfhe::tfhe {

namespace {

// Version 2: FreqPolynomial carries N/2 folded-transform slots (was N).
constexpr uint16_t kVersion = 2;

// Magics, one per object kind.
constexpr uint32_t kMagicParams = 0x50544850;   // "PHTP"
constexpr uint32_t kMagicSample = 0x50544853;   // "SHTP"
constexpr uint32_t kMagicSamples = 0x5054484C;  // "LHTP"
constexpr uint32_t kMagicSecret = 0x5054484B;   // "KHTP"
constexpr uint32_t kMagicBk = 0x50544842;       // "BHTP"

bool Fail(std::string* error, const char* message) {
    if (error) *error = message;
    return false;
}

// ------------------------------------------------------- scalar primitives

void W32(std::ostream& os, uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    os.write(b, 4);
}

void W64(std::ostream& os, uint64_t v) {
    W32(os, static_cast<uint32_t>(v));
    W32(os, static_cast<uint32_t>(v >> 32));
}

void WDouble(std::ostream& os, double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    W64(os, bits);
}

bool R32(std::istream& is, uint32_t* v) {
    char b[4];
    if (!is.read(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
        *v |= static_cast<uint32_t>(static_cast<uint8_t>(b[i])) << (8 * i);
    return true;
}

bool R64(std::istream& is, uint64_t* v) {
    uint32_t lo, hi;
    if (!R32(is, &lo) || !R32(is, &hi)) return false;
    *v = lo | (static_cast<uint64_t>(hi) << 32);
    return true;
}

bool RDouble(std::istream& is, double* v) {
    uint64_t bits;
    if (!R64(is, &bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
}

void WriteHeader(std::ostream& os, uint32_t magic) {
    W32(os, magic);
    W32(os, kVersion);
}

bool ReadHeader(std::istream& is, uint32_t magic, std::string* error) {
    uint32_t m, v;
    if (!R32(is, &m) || !R32(is, &v)) return Fail(error, "truncated header");
    if (m != magic) return Fail(error, "bad magic (wrong object type?)");
    if (v != kVersion) return Fail(error, "unsupported version");
    return true;
}

// --------------------------------------------------------- raw body codecs

void WriteParamsBody(std::ostream& os, const Params& p) {
    W64(os, p.name.size());
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    W32(os, static_cast<uint32_t>(p.n));
    W32(os, static_cast<uint32_t>(p.big_n));
    W32(os, static_cast<uint32_t>(p.k));
    W32(os, static_cast<uint32_t>(p.bk_l));
    W32(os, static_cast<uint32_t>(p.bk_bg_bit));
    W32(os, static_cast<uint32_t>(p.ks_t));
    W32(os, static_cast<uint32_t>(p.ks_base_bit));
    WDouble(os, p.lwe_noise_stddev);
    WDouble(os, p.tlwe_noise_stddev);
}

bool ReadParamsBody(std::istream& is, Params* p, std::string* error) {
    uint64_t name_len;
    if (!R64(is, &name_len) || name_len > 4096)
        return Fail(error, "bad params name");
    p->name.resize(name_len);
    if (!is.read(p->name.data(), static_cast<std::streamsize>(name_len)))
        return Fail(error, "truncated params name");
    uint32_t v[7];
    for (auto& x : v)
        if (!R32(is, &x)) return Fail(error, "truncated params");
    p->n = static_cast<int32_t>(v[0]);
    p->big_n = static_cast<int32_t>(v[1]);
    p->k = static_cast<int32_t>(v[2]);
    p->bk_l = static_cast<int32_t>(v[3]);
    p->bk_bg_bit = static_cast<int32_t>(v[4]);
    p->ks_t = static_cast<int32_t>(v[5]);
    p->ks_base_bit = static_cast<int32_t>(v[6]);
    if (!RDouble(is, &p->lwe_noise_stddev) ||
        !RDouble(is, &p->tlwe_noise_stddev))
        return Fail(error, "truncated params noise");
    if (p->n <= 0 || p->big_n <= 0 || (p->big_n & (p->big_n - 1)) != 0 ||
        p->k <= 0 || p->bk_l <= 0 || p->bk_bg_bit <= 0)
        return Fail(error, "invalid parameter values");
    return true;
}

void WriteSampleBody(std::ostream& os, const LweSample& s) {
    W64(os, s.a.size());
    for (Torus32 t : s.a) W32(os, t);
    W32(os, s.b);
}

bool ReadSampleBody(std::istream& is, LweSample* s, std::string* error) {
    uint64_t n;
    if (!R64(is, &n) || n > (UINT64_C(1) << 24))
        return Fail(error, "bad sample dimension");
    s->a.resize(n);
    for (auto& t : s->a)
        if (!R32(is, &t)) return Fail(error, "truncated sample");
    if (!R32(is, &s->b)) return Fail(error, "truncated sample body");
    return true;
}

void WriteIntPoly(std::ostream& os, const IntPolynomial& p) {
    W64(os, p.coefs.size());
    for (int32_t c : p.coefs) W32(os, static_cast<uint32_t>(c));
}

bool ReadIntPoly(std::istream& is, IntPolynomial* p, std::string* error) {
    uint64_t n;
    if (!R64(is, &n) || n > (UINT64_C(1) << 24))
        return Fail(error, "bad polynomial size");
    p->coefs.resize(n);
    for (auto& c : p->coefs) {
        uint32_t v;
        if (!R32(is, &v)) return Fail(error, "truncated polynomial");
        c = static_cast<int32_t>(v);
    }
    return true;
}

void WriteFreqPoly(std::ostream& os, const FreqPolynomial& f) {
    const int32_t half = f.HalfSize();
    W64(os, static_cast<uint64_t>(half));
    const double* re = f.Re();
    const double* im = f.Im();
    for (int32_t i = 0; i < half; ++i) WDouble(os, re[i]);
    for (int32_t i = 0; i < half; ++i) WDouble(os, im[i]);
}

bool ReadFreqPoly(std::istream& is, FreqPolynomial* f, std::string* error) {
    uint64_t n;
    if (!R64(is, &n) || n > (UINT64_C(1) << 24))
        return Fail(error, "bad frequency polynomial size");
    f->ResizeHalf(static_cast<int32_t>(n));
    double* re = f->Re();
    double* im = f->Im();
    for (uint64_t i = 0; i < n; ++i)
        if (!RDouble(is, &re[i])) return Fail(error, "truncated freq poly");
    for (uint64_t i = 0; i < n; ++i)
        if (!RDouble(is, &im[i])) return Fail(error, "truncated freq poly");
    return true;
}

}  // namespace

void SaveParams(std::ostream& os, const Params& params) {
    WriteHeader(os, kMagicParams);
    WriteParamsBody(os, params);
}

std::optional<Params> LoadParams(std::istream& is, std::string* error) {
    if (!ReadHeader(is, kMagicParams, error)) return std::nullopt;
    Params p;
    if (!ReadParamsBody(is, &p, error)) return std::nullopt;
    return p;
}

void SaveLweSample(std::ostream& os, const LweSample& sample) {
    WriteHeader(os, kMagicSample);
    WriteSampleBody(os, sample);
}

std::optional<LweSample> LoadLweSample(std::istream& is, std::string* error) {
    if (!ReadHeader(is, kMagicSample, error)) return std::nullopt;
    LweSample s;
    if (!ReadSampleBody(is, &s, error)) return std::nullopt;
    return s;
}

void SaveLweSamples(std::ostream& os, const std::vector<LweSample>& samples) {
    WriteHeader(os, kMagicSamples);
    W64(os, samples.size());
    for (const auto& s : samples) WriteSampleBody(os, s);
}

std::optional<std::vector<LweSample>> LoadLweSamples(std::istream& is,
                                                     std::string* error) {
    if (!ReadHeader(is, kMagicSamples, error)) return std::nullopt;
    uint64_t count;
    if (!R64(is, &count) || count > (UINT64_C(1) << 28)) {
        Fail(error, "bad sample count");
        return std::nullopt;
    }
    std::vector<LweSample> out(count);
    for (auto& s : out)
        if (!ReadSampleBody(is, &s, error)) return std::nullopt;
    return out;
}

void SaveSecretKeySet(std::ostream& os, const SecretKeySet& keys) {
    WriteHeader(os, kMagicSecret);
    WriteParamsBody(os, keys.params);
    W64(os, keys.lwe_key.key.size());
    for (int32_t bit : keys.lwe_key.key) W32(os, static_cast<uint32_t>(bit));
    W64(os, keys.tlwe_key.key.size());
    for (const auto& poly : keys.tlwe_key.key) WriteIntPoly(os, poly);
}

std::optional<SecretKeySet> LoadSecretKeySet(std::istream& is,
                                             std::string* error) {
    if (!ReadHeader(is, kMagicSecret, error)) return std::nullopt;
    Params p;
    if (!ReadParamsBody(is, &p, error)) return std::nullopt;
    uint64_t n;
    if (!R64(is, &n) || n != static_cast<uint64_t>(p.n)) {
        Fail(error, "lwe key dimension mismatch");
        return std::nullopt;
    }
    LweKey lwe;
    lwe.key.resize(n);
    for (auto& bit : lwe.key) {
        uint32_t v;
        if (!R32(is, &v)) {
            Fail(error, "truncated lwe key");
            return std::nullopt;
        }
        bit = static_cast<int32_t>(v);
    }
    uint64_t k;
    if (!R64(is, &k) || k != static_cast<uint64_t>(p.k)) {
        Fail(error, "tlwe key size mismatch");
        return std::nullopt;
    }
    TLweKey tlwe;
    tlwe.key.resize(k);
    for (auto& poly : tlwe.key)
        if (!ReadIntPoly(is, &poly, error)) return std::nullopt;
    return SecretKeySet(std::move(p), std::move(lwe), std::move(tlwe));
}

void SaveBootstrappingKey(std::ostream& os, const BootstrappingKey& key) {
    WriteHeader(os, kMagicBk);
    WriteParamsBody(os, key.params());
    W64(os, key.bk().size());
    for (const TGswSampleFft& s : key.bk()) {
        W32(os, static_cast<uint32_t>(s.l));
        W32(os, static_cast<uint32_t>(s.bg_bit));
        W64(os, s.rows.size());
        for (const auto& row : s.rows) {
            W64(os, row.size());
            for (const auto& f : row) WriteFreqPoly(os, f);
        }
    }
    const KeySwitchKey& ksk = key.ksk();
    W32(os, static_cast<uint32_t>(ksk.InputN()));
    W32(os, static_cast<uint32_t>(ksk.OutputN()));
    W32(os, static_cast<uint32_t>(ksk.T()));
    W32(os, static_cast<uint32_t>(ksk.BaseBit()));
    W64(os, ksk.RawKeys().size());
    for (const auto& s : ksk.RawKeys()) WriteSampleBody(os, s);
}

std::optional<BootstrappingKey> LoadBootstrappingKey(std::istream& is,
                                                     std::string* error) {
    if (!ReadHeader(is, kMagicBk, error)) return std::nullopt;
    Params p;
    if (!ReadParamsBody(is, &p, error)) return std::nullopt;

    uint64_t bk_size;
    if (!R64(is, &bk_size) || bk_size != static_cast<uint64_t>(p.n)) {
        Fail(error, "bootstrapping key size mismatch");
        return std::nullopt;
    }
    std::vector<TGswSampleFft> bk(bk_size);
    for (auto& s : bk) {
        uint32_t l, bg_bit;
        uint64_t rows;
        if (!R32(is, &l) || !R32(is, &bg_bit) || !R64(is, &rows) ||
            rows > 1024) {
            Fail(error, "truncated tgsw sample");
            return std::nullopt;
        }
        s.l = static_cast<int32_t>(l);
        s.bg_bit = static_cast<int32_t>(bg_bit);
        s.rows.resize(rows);
        for (auto& row : s.rows) {
            uint64_t cols;
            if (!R64(is, &cols) || cols > 64) {
                Fail(error, "truncated tgsw row");
                return std::nullopt;
            }
            row.resize(cols);
            for (auto& f : row)
                if (!ReadFreqPoly(is, &f, error)) return std::nullopt;
        }
    }

    uint32_t n_in, n_out, t, base_bit;
    uint64_t ks_count;
    if (!R32(is, &n_in) || !R32(is, &n_out) || !R32(is, &t) ||
        !R32(is, &base_bit) || !R64(is, &ks_count) ||
        ks_count > (UINT64_C(1) << 28)) {
        Fail(error, "truncated key-switching key header");
        return std::nullopt;
    }
    std::vector<LweSample> ks(ks_count);
    for (auto& s : ks)
        if (!ReadSampleBody(is, &s, error)) return std::nullopt;
    if (ks_count != static_cast<uint64_t>(n_in) * t * (1u << base_bit)) {
        Fail(error, "key-switching key size mismatch");
        return std::nullopt;
    }
    KeySwitchKey ksk = KeySwitchKey::FromRaw(
        static_cast<int32_t>(n_in), static_cast<int32_t>(n_out),
        static_cast<int32_t>(t), static_cast<int32_t>(base_bit),
        std::move(ks));
    return BootstrappingKey(p, std::move(bk), std::move(ksk));
}

}  // namespace pytfhe::tfhe
