#include "tfhe/serialization.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "tfhe/crc32c.h"

namespace pytfhe::tfhe {

namespace {

// Version 3: CRC32C-framed body (magic, version, u64 length, body, u32
// checksum). Version 2 (unframed FreqPolynomial-folded body) still loads.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kLegacyVersion = 2;

// Magics, one per object kind.
constexpr uint32_t kMagicParams = 0x50544850;   // "PHTP"
constexpr uint32_t kMagicSample = 0x50544853;   // "SHTP"
constexpr uint32_t kMagicSamples = 0x5054484C;  // "LHTP"
constexpr uint32_t kMagicSecret = 0x5054484B;   // "KHTP"
constexpr uint32_t kMagicBk = 0x50544842;       // "BHTP"
constexpr uint32_t kMagicEk = 0x50544845;       // "EHTP"

/** Rejects absurd frame lengths before allocating the body buffer. */
constexpr uint64_t kMaxBodyBytes = UINT64_C(1) << 31;

// ------------------------------------------------------- write primitives

void W32(std::ostream& os, uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    os.write(b, 4);
}

void W64(std::ostream& os, uint64_t v) {
    W32(os, static_cast<uint32_t>(v));
    W32(os, static_cast<uint32_t>(v >> 32));
}

void WDouble(std::ostream& os, double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    W64(os, bits);
}

bool R32(std::istream& is, uint32_t* v) {
    char b[4];
    if (!is.read(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
        *v |= static_cast<uint32_t>(static_cast<uint8_t>(b[i])) << (8 * i);
    return true;
}

bool R64(std::istream& is, uint64_t* v) {
    uint32_t lo, hi;
    if (!R32(is, &lo) || !R32(is, &hi)) return false;
    *v = lo | (static_cast<uint64_t>(hi) << 32);
    return true;
}

// ------------------------------------------------------------ body reader

/**
 * Cursor over an in-memory body. Every failure records the object section
 * and the body byte offset where parsing stopped, so a diagnostic like
 * "load BootstrappingKey: truncated tgsw row at body offset 1234" points
 * at the corrupt region instead of a bare "failed".
 */
struct Reader {
    const std::string& body;
    const char* section;
    std::string* error;
    size_t pos = 0;

    bool Fail(const std::string& message) {
        if (error)
            *error = std::string("load ") + section + ": " + message +
                     " at body offset " + std::to_string(pos);
        return false;
    }

    bool Bytes(void* out, size_t n, const char* what) {
        if (body.size() - pos < n)
            return Fail(std::string("truncated ") + what);
        std::memcpy(out, body.data() + pos, n);
        pos += n;
        return true;
    }

    bool U32(uint32_t* v, const char* what) {
        unsigned char b[4] = {0, 0, 0, 0};
        if (!Bytes(b, 4, what)) return false;
        *v = 0;
        for (int i = 0; i < 4; ++i)
            *v |= static_cast<uint32_t>(b[i]) << (8 * i);
        return true;
    }

    bool U64(uint64_t* v, const char* what) {
        uint32_t lo, hi;
        if (!U32(&lo, what) || !U32(&hi, what)) return false;
        *v = lo | (static_cast<uint64_t>(hi) << 32);
        return true;
    }

    bool F64(double* v, const char* what) {
        uint64_t bits;
        if (!U64(&bits, what)) return false;
        std::memcpy(v, &bits, 8);
        return true;
    }

    bool String(std::string* out, size_t n, const char* what) {
        if (body.size() - pos < n)
            return Fail(std::string("truncated ") + what);
        out->assign(body.data() + pos, n);
        pos += n;
        return true;
    }

    /** A fully parsed body must leave no unread bytes behind. */
    bool AtEnd() {
        if (pos != body.size())
            return Fail(std::to_string(body.size() - pos) +
                        " trailing bytes after object");
        return true;
    }
};

// ---------------------------------------------------------------- framing

void WriteFramed(std::ostream& os, uint32_t magic, const std::string& body) {
    W32(os, magic);
    W32(os, kVersion);
    W64(os, body.size());
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    W32(os, Crc32c(body.data(), body.size()));
}

/**
 * Reads the header and body of one object: validates magic and version,
 * then — for version 3 — the frame length and the CRC32C of the body.
 * Version-2 streams have no frame, so the body is the rest of the stream.
 */
bool ReadFramedBody(std::istream& is, uint32_t magic, const char* section,
                    std::string* body, std::string* error,
                    bool allow_legacy = true) {
    auto fail = [&](const std::string& message) {
        if (error)
            *error = std::string("load ") + section + ": " + message;
        return false;
    };
    uint32_t m, v;
    if (!R32(is, &m) || !R32(is, &v))
        return fail("truncated header at byte offset 0");
    if (m != magic)
        return fail("bad magic (wrong object type?) at byte offset 0");
    if (v == kLegacyVersion && allow_legacy) {
        // Legacy unframed body: everything after the header, no checksum.
        std::ostringstream rest;
        rest << is.rdbuf();
        *body = rest.str();
        return true;
    }
    if (v != kVersion) return fail("unsupported version at byte offset 4");
    uint64_t len;
    if (!R64(is, &len))
        return fail("truncated frame length at byte offset 8");
    if (len > kMaxBodyBytes)
        return fail("implausible frame length " + std::to_string(len) +
                    " at byte offset 8");
    body->resize(len);
    if (len > 0 &&
        !is.read(body->data(), static_cast<std::streamsize>(len)))
        return fail("truncated body (frame promises " + std::to_string(len) +
                    " bytes) at byte offset 16");
    uint32_t stored;
    if (!R32(is, &stored))
        return fail("truncated checksum at byte offset " +
                    std::to_string(16 + len));
    const uint32_t computed = Crc32c(body->data(), body->size());
    if (stored != computed)
        return fail("checksum mismatch (stored " + std::to_string(stored) +
                    ", computed " + std::to_string(computed) +
                    ") — corrupt payload");
    return true;
}

// --------------------------------------------------------- raw body codecs

void WriteParamsBody(std::ostream& os, const Params& p) {
    W64(os, p.name.size());
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    W32(os, static_cast<uint32_t>(p.n));
    W32(os, static_cast<uint32_t>(p.big_n));
    W32(os, static_cast<uint32_t>(p.k));
    W32(os, static_cast<uint32_t>(p.bk_l));
    W32(os, static_cast<uint32_t>(p.bk_bg_bit));
    W32(os, static_cast<uint32_t>(p.ks_t));
    W32(os, static_cast<uint32_t>(p.ks_base_bit));
    WDouble(os, p.lwe_noise_stddev);
    WDouble(os, p.tlwe_noise_stddev);
}

bool ReadParamsBody(Reader& r, Params* p) {
    uint64_t name_len;
    if (!r.U64(&name_len, "params name length")) return false;
    if (name_len > 4096) return r.Fail("bad params name");
    if (!r.String(&p->name, name_len, "params name")) return false;
    uint32_t v[7];
    for (auto& x : v)
        if (!r.U32(&x, "params")) return false;
    p->n = static_cast<int32_t>(v[0]);
    p->big_n = static_cast<int32_t>(v[1]);
    p->k = static_cast<int32_t>(v[2]);
    p->bk_l = static_cast<int32_t>(v[3]);
    p->bk_bg_bit = static_cast<int32_t>(v[4]);
    p->ks_t = static_cast<int32_t>(v[5]);
    p->ks_base_bit = static_cast<int32_t>(v[6]);
    if (!r.F64(&p->lwe_noise_stddev, "params noise") ||
        !r.F64(&p->tlwe_noise_stddev, "params noise"))
        return false;
    if (p->n <= 0 || p->big_n <= 0 || (p->big_n & (p->big_n - 1)) != 0 ||
        p->k <= 0 || p->bk_l <= 0 || p->bk_bg_bit <= 0)
        return r.Fail("invalid parameter values");
    return true;
}

void WriteSampleBody(std::ostream& os, const LweSample& s) {
    W64(os, s.a.size());
    for (Torus32 t : s.a) W32(os, t);
    W32(os, s.b);
}

bool ReadSampleBody(Reader& r, LweSample* s) {
    uint64_t n;
    if (!r.U64(&n, "sample dimension")) return false;
    if (n > (UINT64_C(1) << 24)) return r.Fail("bad sample dimension");
    s->a.resize(n);
    for (auto& t : s->a)
        if (!r.U32(&t, "sample")) return false;
    if (!r.U32(&s->b, "sample body")) return false;
    return true;
}

void WriteIntPoly(std::ostream& os, const IntPolynomial& p) {
    W64(os, p.coefs.size());
    for (int32_t c : p.coefs) W32(os, static_cast<uint32_t>(c));
}

bool ReadIntPoly(Reader& r, IntPolynomial* p) {
    uint64_t n;
    if (!r.U64(&n, "polynomial size")) return false;
    if (n > (UINT64_C(1) << 24)) return r.Fail("bad polynomial size");
    p->coefs.resize(n);
    for (auto& c : p->coefs) {
        uint32_t v;
        if (!r.U32(&v, "polynomial")) return false;
        c = static_cast<int32_t>(v);
    }
    return true;
}

void WriteFreqPoly(std::ostream& os, const FreqPolynomial& f) {
    const int32_t half = f.HalfSize();
    W64(os, static_cast<uint64_t>(half));
    const double* re = f.Re();
    const double* im = f.Im();
    for (int32_t i = 0; i < half; ++i) WDouble(os, re[i]);
    for (int32_t i = 0; i < half; ++i) WDouble(os, im[i]);
}

bool ReadFreqPoly(Reader& r, FreqPolynomial* f) {
    uint64_t n;
    if (!r.U64(&n, "frequency polynomial size")) return false;
    if (n > (UINT64_C(1) << 24))
        return r.Fail("bad frequency polynomial size");
    f->ResizeHalf(static_cast<int32_t>(n));
    double* re = f->Re();
    double* im = f->Im();
    for (uint64_t i = 0; i < n; ++i)
        if (!r.F64(&re[i], "freq poly")) return false;
    for (uint64_t i = 0; i < n; ++i)
        if (!r.F64(&im[i], "freq poly")) return false;
    return true;
}

void WriteBkBody(std::ostream& body, const BootstrappingKey& key) {
    WriteParamsBody(body, key.params());
    W64(body, key.bk().size());
    for (const TGswSampleFft& s : key.bk()) {
        W32(body, static_cast<uint32_t>(s.l));
        W32(body, static_cast<uint32_t>(s.bg_bit));
        W64(body, s.rows.size());
        for (const auto& row : s.rows) {
            W64(body, row.size());
            for (const auto& f : row) WriteFreqPoly(body, f);
        }
    }
    const KeySwitchKey& ksk = key.ksk();
    W32(body, static_cast<uint32_t>(ksk.InputN()));
    W32(body, static_cast<uint32_t>(ksk.OutputN()));
    W32(body, static_cast<uint32_t>(ksk.T()));
    W32(body, static_cast<uint32_t>(ksk.BaseBit()));
    W64(body, ksk.RawKeys().size());
    for (const auto& s : ksk.RawKeys()) WriteSampleBody(body, s);
}

std::optional<BootstrappingKey> ReadBkBody(Reader& r) {
    Params p;
    if (!ReadParamsBody(r, &p)) return std::nullopt;

    uint64_t bk_size;
    if (!r.U64(&bk_size, "bootstrapping key size")) return std::nullopt;
    if (bk_size != static_cast<uint64_t>(p.n)) {
        r.Fail("bootstrapping key size mismatch");
        return std::nullopt;
    }
    std::vector<TGswSampleFft> bk(bk_size);
    for (auto& s : bk) {
        uint32_t l, bg_bit;
        uint64_t rows;
        if (!r.U32(&l, "tgsw sample") || !r.U32(&bg_bit, "tgsw sample") ||
            !r.U64(&rows, "tgsw sample"))
            return std::nullopt;
        if (rows > 1024) {
            r.Fail("bad tgsw row count");
            return std::nullopt;
        }
        s.l = static_cast<int32_t>(l);
        s.bg_bit = static_cast<int32_t>(bg_bit);
        s.rows.resize(rows);
        for (auto& row : s.rows) {
            uint64_t cols;
            if (!r.U64(&cols, "tgsw row")) return std::nullopt;
            if (cols > 64) {
                r.Fail("bad tgsw column count");
                return std::nullopt;
            }
            row.resize(cols);
            for (auto& f : row)
                if (!ReadFreqPoly(r, &f)) return std::nullopt;
        }
    }

    uint32_t n_in, n_out, t, base_bit;
    uint64_t ks_count;
    if (!r.U32(&n_in, "key-switching key header") ||
        !r.U32(&n_out, "key-switching key header") ||
        !r.U32(&t, "key-switching key header") ||
        !r.U32(&base_bit, "key-switching key header") ||
        !r.U64(&ks_count, "key-switching key header"))
        return std::nullopt;
    if (ks_count > (UINT64_C(1) << 28)) {
        r.Fail("bad key-switching key count");
        return std::nullopt;
    }
    std::vector<LweSample> ks(ks_count);
    for (auto& s : ks)
        if (!ReadSampleBody(r, &s)) return std::nullopt;
    if (base_bit >= 32 ||
        ks_count != static_cast<uint64_t>(n_in) * t * (1u << base_bit)) {
        r.Fail("key-switching key size mismatch");
        return std::nullopt;
    }
    KeySwitchKey ksk = KeySwitchKey::FromRaw(
        static_cast<int32_t>(n_in), static_cast<int32_t>(n_out),
        static_cast<int32_t>(t), static_cast<int32_t>(base_bit),
        std::move(ks));
    return BootstrappingKey(p, std::move(bk), std::move(ksk));
}

}  // namespace

void SaveParams(std::ostream& os, const Params& params) {
    std::ostringstream body;
    WriteParamsBody(body, params);
    WriteFramed(os, kMagicParams, body.str());
}

std::optional<Params> LoadParams(std::istream& is, std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, kMagicParams, "Params", &body, error))
        return std::nullopt;
    Reader r{body, "Params", error};
    Params p;
    if (!ReadParamsBody(r, &p) || !r.AtEnd()) return std::nullopt;
    return p;
}

void SaveLweSample(std::ostream& os, const LweSample& sample) {
    std::ostringstream body;
    WriteSampleBody(body, sample);
    WriteFramed(os, kMagicSample, body.str());
}

std::optional<LweSample> LoadLweSample(std::istream& is, std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, kMagicSample, "LweSample", &body, error))
        return std::nullopt;
    Reader r{body, "LweSample", error};
    LweSample s;
    if (!ReadSampleBody(r, &s) || !r.AtEnd()) return std::nullopt;
    return s;
}

void SaveLweSamples(std::ostream& os, const std::vector<LweSample>& samples) {
    std::ostringstream body;
    W64(body, samples.size());
    for (const auto& s : samples) WriteSampleBody(body, s);
    WriteFramed(os, kMagicSamples, body.str());
}

std::optional<std::vector<LweSample>> LoadLweSamples(std::istream& is,
                                                     std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, kMagicSamples, "LweSamples", &body, error))
        return std::nullopt;
    Reader r{body, "LweSamples", error};
    uint64_t count;
    if (!r.U64(&count, "sample count")) return std::nullopt;
    if (count > (UINT64_C(1) << 28)) {
        r.Fail("bad sample count");
        return std::nullopt;
    }
    std::vector<LweSample> out(count);
    for (auto& s : out)
        if (!ReadSampleBody(r, &s)) return std::nullopt;
    if (!r.AtEnd()) return std::nullopt;
    return out;
}

void SaveSecretKeySet(std::ostream& os, const SecretKeySet& keys) {
    std::ostringstream body;
    WriteParamsBody(body, keys.params);
    W64(body, keys.lwe_key.key.size());
    for (int32_t bit : keys.lwe_key.key) W32(body, static_cast<uint32_t>(bit));
    W64(body, keys.tlwe_key.key.size());
    for (const auto& poly : keys.tlwe_key.key) WriteIntPoly(body, poly);
    WriteFramed(os, kMagicSecret, body.str());
}

std::optional<SecretKeySet> LoadSecretKeySet(std::istream& is,
                                             std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, kMagicSecret, "SecretKeySet", &body, error))
        return std::nullopt;
    Reader r{body, "SecretKeySet", error};
    Params p;
    if (!ReadParamsBody(r, &p)) return std::nullopt;
    uint64_t n;
    if (!r.U64(&n, "lwe key size")) return std::nullopt;
    if (n != static_cast<uint64_t>(p.n)) {
        r.Fail("lwe key dimension mismatch");
        return std::nullopt;
    }
    LweKey lwe;
    lwe.key.resize(n);
    for (auto& bit : lwe.key) {
        uint32_t v;
        if (!r.U32(&v, "lwe key")) return std::nullopt;
        bit = static_cast<int32_t>(v);
    }
    uint64_t k;
    if (!r.U64(&k, "tlwe key size")) return std::nullopt;
    if (k != static_cast<uint64_t>(p.k)) {
        r.Fail("tlwe key size mismatch");
        return std::nullopt;
    }
    TLweKey tlwe;
    tlwe.key.resize(k);
    for (auto& poly : tlwe.key)
        if (!ReadIntPoly(r, &poly)) return std::nullopt;
    if (!r.AtEnd()) return std::nullopt;
    return SecretKeySet(std::move(p), std::move(lwe), std::move(tlwe));
}

void SaveBootstrappingKey(std::ostream& os, const BootstrappingKey& key) {
    std::ostringstream body;
    WriteBkBody(body, key);
    WriteFramed(os, kMagicBk, body.str());
}

std::optional<BootstrappingKey> LoadBootstrappingKey(std::istream& is,
                                                     std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, kMagicBk, "BootstrappingKey", &body, error))
        return std::nullopt;
    Reader r{body, "BootstrappingKey", error};
    std::optional<BootstrappingKey> key = ReadBkBody(r);
    if (!key || !r.AtEnd()) return std::nullopt;
    return key;
}

void SaveEvaluationKey(std::ostream& os, const BootstrappingKey& key,
                       KeyId key_id) {
    std::ostringstream body;
    W64(body, key_id.value);
    WriteBkBody(body, key);
    WriteFramed(os, kMagicEk, body.str());
}

std::optional<EvaluationKeyArtifact> LoadEvaluationKey(std::istream& is,
                                                       std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, kMagicEk, "EvaluationKey", &body, error))
        return std::nullopt;
    Reader r{body, "EvaluationKey", error};
    KeyId id;
    if (!r.U64(&id.value, "key id")) return std::nullopt;
    if (!id.IsSet()) {
        r.Fail("unset key id");
        return std::nullopt;
    }
    std::optional<BootstrappingKey> key = ReadBkBody(r);
    if (!key || !r.AtEnd()) return std::nullopt;
    return EvaluationKeyArtifact{id, *std::move(key)};
}

void SaveFramedRecord(std::ostream& os, uint32_t magic,
                      const std::string& body) {
    WriteFramed(os, magic, body);
}

std::optional<std::string> LoadFramedRecord(std::istream& is, uint32_t magic,
                                            const char* section,
                                            std::string* error) {
    std::string body;
    if (!ReadFramedBody(is, magic, section, &body, error,
                        /*allow_legacy=*/false))
        return std::nullopt;
    return body;
}

}  // namespace pytfhe::tfhe
