/**
 * @file
 * Gate bootstrapping: blind rotation, sample extraction, key switching.
 *
 * Bootstrapping refreshes the noise of an LWE sample while applying the sign
 * function: the output encrypts +mu when the input phase is in (0, 1/2) and
 * -mu otherwise. Combined with a linear pre-combination of the two input
 * bits, this evaluates any of the TFHE two-input gates with constant output
 * noise, allowing circuits of unbounded depth.
 *
 * Hot-path entry points accept an optional BootstrapScratch so repeated
 * bootstraps (one per gate) reuse all working buffers; callers that evaluate
 * gates concurrently own one scratch per worker thread.
 */
#ifndef PYTFHE_TFHE_BOOTSTRAP_H
#define PYTFHE_TFHE_BOOTSTRAP_H

#include <functional>
#include <memory>
#include <vector>

#include "tfhe/keyswitch.h"
#include "tfhe/params.h"
#include "tfhe/tgsw.h"

namespace pytfhe::tfhe {

/**
 * Public evaluation key: TGSW encryptions (FFT domain) of each small-LWE key
 * bit under the ring key, plus the key-switching key back from the extracted
 * key. This is what a client ships to the evaluating server.
 */
class BootstrappingKey {
  public:
    /**
     * Generates the evaluation key for lwe_key under tlwe_key.
     */
    BootstrappingKey(const Params& params, const LweKey& lwe_key,
                     const TLweKey& tlwe_key, Rng& rng);

    /** Reconstructs from serialized parts (see tfhe/serialization.h). */
    BootstrappingKey(const Params& params, std::vector<TGswSampleFft> bk,
                     KeySwitchKey ksk);

    const Params& params() const { return params_; }
    const NegacyclicFft& fft() const { return *fft_; }
    const KeySwitchKey& ksk() const { return ksk_; }
    const std::vector<TGswSampleFft>& bk() const { return bk_; }

    /** Approximate size of the bootstrapping part in bytes (FFT domain). */
    size_t BkByteSize() const;

  private:
    Params params_;
    const NegacyclicFft* fft_;  ///< Cached plan, owned by the global cache.
    std::vector<TGswSampleFft> bk_;
    KeySwitchKey ksk_;
};

/**
 * All working buffers of one bootstrap. One per worker thread; every buffer
 * keeps its capacity across calls, so a reused scratch makes the whole
 * blind-rotation loop allocation-free.
 */
struct BootstrapScratch {
    ExternalProductScratch ep;
    TLweSample rotated, product, acc;
    TorusPolynomial shifted, testvect;
    std::vector<int32_t> bara;
    /** Linear-prelude staging sample (dimension n), for the Into paths. */
    LweSample combo;
    /** Extracted sample (dimension N*k) the blind rotation lands in. */
    LweSample extracted;
    /**
     * Per-worker cache of programmable-bootstrap test vectors, keyed by
     * (table, out_bits, p) — see tfhe/multibit.h. LUT gates reuse a
     * handful of tables across thousands of bootstraps (full-adder
     * columns, comparator stages), so a small linear-scan cache removes
     * the N-coefficient rebuild from the hot path.
     */
    struct LutTvEntry {
        uint64_t key = 0;
        TorusPolynomial tv;
    };
    std::vector<LutTvEntry> lut_tv_cache;
};

/**
 * In-place blind rotation: multiplies acc by X^{-sum bara_i * s_i} using one
 * CMUX per key bit.
 */
void BlindRotate(TLweSample& acc, const std::vector<int32_t>& bara,
                 const BootstrappingKey& key,
                 BootstrapScratch* scratch = nullptr);

/**
 * Bootstraps `in` to a fresh sample encrypting +-mu under the *extracted*
 * key (no key switch). Used directly by the MUX gate.
 */
LweSample BootstrapWithoutKeySwitch(Torus32 mu, const LweSample& in,
                                    const BootstrappingKey& key,
                                    BootstrapScratch* scratch = nullptr);

/**
 * Allocation-free variant: bootstraps `in` into `s.extracted` (dimension
 * N*k under the extracted key) and returns a reference to it, valid until
 * the scratch is next used. `in` must not alias `s.extracted` or
 * `s.combo`.
 */
const LweSample& BootstrapWithoutKeySwitchInScratch(
    Torus32 mu, const LweSample& in, const BootstrappingKey& key,
    BootstrapScratch& s);

/** Full gate bootstrap: blind rotate, extract, and key switch back to n. */
LweSample Bootstrap(Torus32 mu, const LweSample& in,
                    const BootstrappingKey& key,
                    BootstrapScratch* scratch = nullptr);

/**
 * Programmable bootstrapping (Section II-B of the paper): refreshes noise
 * while applying an arbitrary lookup table encoded in the test vector.
 * The test vector is indexed by the 2N-mod-switched phase; slots N..2N-1
 * wrap negacyclically (X^N = -1), so inputs must be encoded in the upper
 * half-circle [0, 1/2) — see EncodePbsMessage.
 */
LweSample FunctionalBootstrap(const TorusPolynomial& test_vector,
                              const LweSample& in,
                              const BootstrappingKey& key,
                              BootstrapScratch* scratch = nullptr);

/**
 * Allocation-free flavor of FunctionalBootstrap without the key switch:
 * rotates into `s.extracted` (dimension N*k under the extracted key) and
 * returns a reference, valid until the scratch is next used. Callers
 * key-switch into their own storage (key.ksk().ApplyInto). `in` must not
 * alias `s.extracted` or `s.combo`.
 */
const LweSample& FunctionalBootstrapInScratch(
    const TorusPolynomial& test_vector, const LweSample& in,
    const BootstrappingKey& key, BootstrapScratch& s);

/**
 * Encodes message m in [0, p) at the center of its LUT slot:
 * (2m + 1) / (4p), always inside [0, 1/2).
 */
Torus32 EncodePbsMessage(int32_t m, int32_t p);

/**
 * Decodes the output of a LUT built by MakeLutTestVector back to [0, p).
 */
int32_t DecodePbsMessage(Torus32 phase, int32_t p);

/**
 * Builds the test vector evaluating f : [0, p) -> [0, p) under the
 * EncodePbsMessage encoding. Requires 2p <= N.
 */
TorusPolynomial MakeLutTestVector(const Params& params, int32_t p,
                                  const std::function<int32_t(int32_t)>& f);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_BOOTSTRAP_H
