#include "tfhe/multibit.h"

#include <cassert>
#include <chrono>

namespace pytfhe::tfhe {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

/** Cache key of a test vector: the triple that fully determines it. */
uint64_t TvKey(uint32_t table, uint8_t out_bits, int32_t p) {
    return static_cast<uint64_t>(table) |
           (static_cast<uint64_t>(out_bits) << 32) |
           (static_cast<uint64_t>(static_cast<uint32_t>(p)) << 40);
}

/** Largest number of distinct test vectors one scratch keeps around. */
constexpr size_t kMaxCachedTestVectors = 128;

const TorusPolynomial& CachedTestVector(const Params& params, uint32_t table,
                                        uint8_t out_bits, int32_t p,
                                        BootstrapScratch& s) {
    const uint64_t key = TvKey(table, out_bits, p);
    for (const auto& entry : s.lut_tv_cache) {
        if (entry.key == key && entry.tv.Size() == params.big_n)
            return entry.tv;
    }
    if (s.lut_tv_cache.size() >= kMaxCachedTestVectors)
        s.lut_tv_cache.clear();
    s.lut_tv_cache.push_back(
        {key, MakeDigitLutTestVector(params, table, out_bits, p)});
    return s.lut_tv_cache.back().tv;
}

}  // namespace

Torus32 EncodeDigit(int32_t v, int32_t p) { return EncodePbsMessage(v, p); }

int32_t DecodeDigit(Torus32 phase, int32_t p) {
    // phi(v) * 2p = v + 1/2, so the floor recovers v exactly while the
    // phase error stays under the 1/(4p) half-slot.
    const uint64_t scaled =
        static_cast<uint64_t>(phase) * static_cast<uint64_t>(2 * p);
    return static_cast<int32_t>(scaled >> 32) % p;
}

LweSample LweEncryptDigit(int32_t v, int32_t p, double noise_stddev,
                          const LweKey& key, Rng& rng) {
    assert(v >= 0 && v < p);
    return LweEncrypt(EncodeDigit(v, p), noise_stddev, key, rng);
}

int32_t LweDecryptDigit(const LweSample& sample, const LweKey& key,
                        int32_t p) {
    return DecodeDigit(LwePhase(sample, key), p);
}

TorusPolynomial MakeDigitLutTestVector(const Params& params, uint32_t table,
                                       uint8_t out_bits, int32_t p) {
    const int32_t n = params.big_n;
    assert(2 * p <= n && "LUT slots need at least two coefficients each");
    const uint32_t mask = (UINT32_C(1) << out_bits) - 1;
    TorusPolynomial tv(n);
    for (int32_t j = 0; j < n; ++j) {
        // Slot j covers phases around j / 2N; under the phi(v) centering
        // its packed index is floor(j * p / N). Indices past the table's
        // populated entries read zero bits, matching LutSpec::Entry.
        const uint32_t v =
            static_cast<uint32_t>((static_cast<int64_t>(j) * p) / n);
        const uint32_t entry = (table >> (v * out_bits)) & mask;
        tv.coefs[j] = EncodePbsMessage(static_cast<int32_t>(entry), p);
    }
    return tv;
}

void LutBootstrapInto(GateEvaluator& eval, const LutKernel& lut,
                      std::span<const LweCView> ops, LweView out,
                      BootstrapScratch* scratch) {
    assert(!ops.empty() && ops.size() == lut.weights.size());
    BootstrapScratch local;
    BootstrapScratch& s = scratch != nullptr ? *scratch : local;
    const BootstrappingKey& key = eval.key();
    const int32_t n = ops[0].n;

    // Linear prelude: sum w_i * c_i + bias. Each operand carries its own
    // +1/(4p) half-slot offset; bias = (1 - 2*lo - sum w_i) / (4p) cancels
    // them and rebases the packed sum m to the table index m - lo, landing
    // the phase exactly at phi(m - lo).
    auto t0 = Clock::now();
    int32_t sum_w = 0;
    for (const int8_t w : lut.weights) sum_w += w;
    const Torus32 bias =
        ModSwitchToTorus32(1 - 2 * lut.lo - sum_w, 4 * lut.p);
    if (s.combo.N() != n) s.combo = LweSample(n);
    s.combo.SetTrivial(bias);
    for (size_t i = 0; i < ops.size(); ++i) {
        const LweCView& op = ops[i];
        assert(op.n == n);
        const int64_t w = lut.weights[i];
        for (int32_t j = 0; j < n; ++j) {
            s.combo.a[j] += static_cast<Torus32>(
                w * static_cast<int64_t>(static_cast<int32_t>(op.a[j])));
        }
        s.combo.b += static_cast<Torus32>(
            w * static_cast<int64_t>(static_cast<int32_t>(*op.b)));
    }
    eval.profile().AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    const TorusPolynomial& tv =
        CachedTestVector(key.params(), lut.table, lut.out_bits, lut.p, s);
    const LweSample& rotated =
        FunctionalBootstrapInScratch(tv, s.combo, key, s);
    eval.profile().AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    key.ksk().ApplyInto(rotated, out);
    eval.profile().AddKeySwitchNanos(NanosSince(t2));
    eval.profile().AddBootstraps(1);
}

}  // namespace pytfhe::tfhe
