/**
 * @file
 * Parameter sets for the TFHE scheme.
 *
 * The scheme is parameterized by:
 *  - n:        LWE dimension of the "small" key used for gate inputs/outputs.
 *  - N, k:     TLWE ring dimension (degree of X^N + 1) and mask size.
 *  - bk_l, bk_bg_bit: gadget decomposition length and log2(base) used by the
 *               bootstrapping key (TGSW ciphertexts).
 *  - ks_t, ks_base_bit: key-switching decomposition depth and log2(base).
 *  - lwe_noise_stddev, tlwe_noise_stddev: fresh-encryption noise, as a
 *               fraction of the torus.
 */
#ifndef PYTFHE_TFHE_PARAMS_H
#define PYTFHE_TFHE_PARAMS_H

#include <cstdint>
#include <string>

namespace pytfhe::tfhe {

/** Full parameter set for gate bootstrapping. */
struct Params {
    std::string name;

    int32_t n;        ///< LWE dimension.
    int32_t big_n;    ///< TLWE polynomial degree N (power of two).
    int32_t k;        ///< TLWE mask size (number of mask polynomials).

    int32_t bk_l;       ///< Gadget decomposition length for TGSW.
    int32_t bk_bg_bit;  ///< log2 of the gadget decomposition base Bg.

    int32_t ks_t;         ///< Key-switching decomposition depth.
    int32_t ks_base_bit;  ///< log2 of the key-switching base.

    double lwe_noise_stddev;   ///< Fresh LWE encryption noise.
    double tlwe_noise_stddev;  ///< Fresh TLWE/TGSW encryption noise.

    /** Gadget base Bg. */
    int32_t Bg() const { return INT32_C(1) << bk_bg_bit; }
    /** Key-switching base. */
    int32_t KsBase() const { return INT32_C(1) << ks_base_bit; }
    /** Dimension of LWE samples extracted from TLWE: N * k. */
    int32_t ExtractedN() const { return big_n * k; }
};

/**
 * The paper's configuration: lambda = 128 bits, "default parameter set as
 * described in Section VIII of the TFHE paper". These match the updated
 * defaults of the reference TFHE library for 128-bit security.
 */
Params Tfhe128Params();

/**
 * Tiny, INSECURE parameter set for unit tests. Noise standard deviations are
 * small enough that the full bootstrapping path decrypts correctly with
 * overwhelming probability, and dimensions are small enough that a
 * bootstrapped gate evaluates in well under a millisecond.
 */
Params ToyParams();

/** Mid-sized insecure set used by integration tests that need more gates. */
Params SmallParams();

/**
 * Parameter set sized for multi-bit programmable bootstrapping (message
 * modulus up to p = 16 with weighted-operand packing; see tfhe/multibit.h).
 * Relative to Tfhe128Params the ring grows to N = 2048 (more LUT slots,
 * smaller mod-switch error), the gadget deepens to l = 4 at Bg = 2^6, and
 * key-switching deepens to t = 10, buying the lower output variance a
 * p = 16 decision margin of 1/64 needs. Noise stddevs 2^-21.5 / 2^-30.5
 * track lattice-estimator-style settings for these dimensions at the
 * 128-bit level (same methodology as the reference library's defaults).
 */
Params MultibitParams();

/**
 * Tiny, INSECURE multibit set for unit tests. ToyParams' N = 128 ring has
 * too few slots and too much mod-switch error for p = 16 digits, so the
 * ring doubles to N = 256; everything else stays toy-sized.
 */
Params ToyMultibitParams();

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_PARAMS_H
