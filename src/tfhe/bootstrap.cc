#include "tfhe/bootstrap.h"

#include <cassert>

namespace pytfhe::tfhe {

namespace {

/** Reshapes a TLWE sample in place; preserves the buffers when shapes match. */
void EnsureShape(TLweSample& s, int32_t n, int32_t k) {
    if (s.BigN() != n || s.K() != k) s = TLweSample(n, k);
}

void EnsureSize(TorusPolynomial& p, int32_t n) {
    if (p.Size() != n) p = TorusPolynomial(n);
}

}  // namespace

BootstrappingKey::BootstrappingKey(const Params& params, const LweKey& lwe_key,
                                   const TLweKey& tlwe_key, Rng& rng)
    : params_(params),
      fft_(&GetFftPlan(params.big_n)),
      ksk_(tlwe_key.ExtractLweKey(), lwe_key, params.ks_t, params.ks_base_bit,
           params.lwe_noise_stddev, rng) {
    assert(lwe_key.N() == params.n);
    assert(tlwe_key.BigN() == params.big_n && tlwe_key.K() == params.k);
    bk_.reserve(params.n);
    for (int32_t i = 0; i < params.n; ++i) {
        TGswSample enc =
            TGswEncrypt(lwe_key.key[i], params.bk_l, params.bk_bg_bit,
                        params.tlwe_noise_stddev, tlwe_key, rng);
        bk_.push_back(TGswToFft(enc, *fft_));
    }
}

BootstrappingKey::BootstrappingKey(const Params& params,
                                   std::vector<TGswSampleFft> bk,
                                   KeySwitchKey ksk)
    : params_(params),
      fft_(&GetFftPlan(params.big_n)),
      bk_(std::move(bk)),
      ksk_(std::move(ksk)) {
    assert(static_cast<int32_t>(bk_.size()) == params.n);
    assert(ksk_.InputN() == params.ExtractedN());
    assert(ksk_.OutputN() == params.n);
}

size_t BootstrappingKey::BkByteSize() const {
    if (bk_.empty()) return 0;
    const auto& s = bk_[0];
    const size_t per_row =
        s.rows.empty() ? 0 : s.rows[0].size() * s.rows[0][0].HalfSize() * 2 *
                                 sizeof(double);
    return bk_.size() * s.rows.size() * per_row;
}

void BlindRotate(TLweSample& acc, const std::vector<int32_t>& bara,
                 const BootstrappingKey& key, BootstrapScratch* scratch) {
    BootstrapScratch local;
    BootstrapScratch& s = scratch != nullptr ? *scratch : local;
    const Params& p = key.params();
    assert(static_cast<int32_t>(bara.size()) == p.n);
    EnsureShape(s.rotated, p.big_n, p.k);
    EnsureShape(s.product, p.big_n, p.k);
    for (int32_t i = 0; i < p.n; ++i) {
        const int32_t a = bara[i];
        if (a == 0) continue;
        // acc <- CMUX(bk_i, X^a * acc, acc) = acc + bk_i x (X^a - 1) * acc.
        TLweMulByXai(s.rotated, a, acc);
        s.rotated.SubTo(acc);
        TGswExternalProduct(s.product, key.bk()[i], s.rotated, key.fft(),
                            &s.ep);
        acc.AddTo(s.product);
    }
}

namespace {

/**
 * Runs mod switch, blind rotation over the given test vector, and
 * extraction of coefficient 0 under the extracted key, landing in
 * `s.extracted`. The result encrypts test_vector[round(phase * 2N)] with
 * negacyclic wrap-around.
 */
const LweSample& RotateAndExtract(const TorusPolynomial& test_vector,
                                  const LweSample& in,
                                  const BootstrappingKey& key,
                                  BootstrapScratch& s) {
    const Params& p = key.params();
    const int32_t two_n = 2 * p.big_n;

    const int32_t barb = ModSwitchFromTorus32(in.b, two_n);
    s.bara.resize(p.n);
    for (int32_t i = 0; i < p.n; ++i)
        s.bara[i] = ModSwitchFromTorus32(in.a[i], two_n);

    EnsureSize(s.shifted, p.big_n);
    MulByXai(s.shifted, two_n - barb, test_vector);

    EnsureShape(s.acc, p.big_n, p.k);
    s.acc.SetTrivial(s.shifted);
    BlindRotate(s.acc, s.bara, key, &s);
    TLweExtractSampleInto(s.extracted, s.acc, 0);
    return s.extracted;
}

/**
 * The gate-bootstrapping test vector: all coefficients mu. After rotation
 * by the negative phase, coefficient 0 holds +mu when the phase is in the
 * upper half circle and -mu otherwise (X^N = -1 flips the sign).
 */
const LweSample& BlindRotateAndExtract(Torus32 mu, const LweSample& in,
                                       const BootstrappingKey& key,
                                       BootstrapScratch& s) {
    EnsureSize(s.testvect, key.params().big_n);
    for (auto& c : s.testvect.coefs) c = mu;
    return RotateAndExtract(s.testvect, in, key, s);
}

}  // namespace

LweSample BootstrapWithoutKeySwitch(Torus32 mu, const LweSample& in,
                                    const BootstrappingKey& key,
                                    BootstrapScratch* scratch) {
    BootstrapScratch local;
    BootstrapScratch& s = scratch != nullptr ? *scratch : local;
    return BlindRotateAndExtract(mu, in, key, s);
}

const LweSample& BootstrapWithoutKeySwitchInScratch(
    Torus32 mu, const LweSample& in, const BootstrappingKey& key,
    BootstrapScratch& s) {
    return BlindRotateAndExtract(mu, in, key, s);
}

LweSample Bootstrap(Torus32 mu, const LweSample& in,
                    const BootstrappingKey& key, BootstrapScratch* scratch) {
    BootstrapScratch local;
    BootstrapScratch& s = scratch != nullptr ? *scratch : local;
    return key.ksk().Apply(BlindRotateAndExtract(mu, in, key, s));
}

LweSample FunctionalBootstrap(const TorusPolynomial& test_vector,
                              const LweSample& in, const BootstrappingKey& key,
                              BootstrapScratch* scratch) {
    assert(test_vector.Size() == key.params().big_n);
    BootstrapScratch local;
    BootstrapScratch& s = scratch != nullptr ? *scratch : local;
    return key.ksk().Apply(RotateAndExtract(test_vector, in, key, s));
}

const LweSample& FunctionalBootstrapInScratch(
    const TorusPolynomial& test_vector, const LweSample& in,
    const BootstrappingKey& key, BootstrapScratch& s) {
    assert(test_vector.Size() == key.params().big_n);
    return RotateAndExtract(test_vector, in, key, s);
}

Torus32 EncodePbsMessage(int32_t m, int32_t p) {
    return ModSwitchToTorus32(2 * m + 1, 4 * p);
}

int32_t DecodePbsMessage(Torus32 phase, int32_t p) {
    // Outputs are encoded as f/p; round to the nearest slot.
    return ((ModSwitchFromTorus32(phase, p) % p) + p) % p;
}

TorusPolynomial MakeLutTestVector(const Params& params, int32_t p,
                                  const std::function<int32_t(int32_t)>& f) {
    const int32_t n = params.big_n;
    assert(2 * p <= n && "LUT slots need at least two coefficients each");
    TorusPolynomial tv(n);
    for (int32_t j = 0; j < n; ++j) {
        // Slot j covers phases around j / 2N; its message index under the
        // EncodePbsMessage centering is floor(j * p / N).
        const int32_t m = static_cast<int32_t>(
            (static_cast<int64_t>(j) * p) / n);
        tv.coefs[j] = ModSwitchToTorus32(f(m), p);
    }
    return tv;
}

}  // namespace pytfhe::tfhe
