/**
 * @file
 * Deterministic random number generation for key material and noise.
 *
 * All randomness in the library flows through Rng so that tests and
 * benchmarks are reproducible from a seed. This is a cryptographic-shaped
 * API, not a cryptographically secure RNG; swapping mt19937_64 for a CSPRNG
 * is a one-line change localized here.
 */
#ifndef PYTFHE_TFHE_RNG_H
#define PYTFHE_TFHE_RNG_H

#include <cstdint>
#include <random>

#include "tfhe/torus.h"

namespace pytfhe::tfhe {

/** Seedable RNG providing the sample types the scheme needs. */
class Rng {
  public:
    explicit Rng(uint64_t seed = 42) : engine_(seed) {}

    /** Uniform bit in {0, 1}. */
    int32_t UniformBit() {
        return static_cast<int32_t>(engine_() & 1);
    }

    /** Uniform torus element. */
    Torus32 UniformTorus32() {
        return static_cast<Torus32>(engine_());
    }

    /** Uniform 64-bit value. */
    uint64_t Uniform64() { return engine_(); }

    /** Uniform integer in [0, bound). */
    uint64_t UniformBelow(uint64_t bound) {
        std::uniform_int_distribution<uint64_t> dist(0, bound - 1);
        return dist(engine_);
    }

    /**
     * Gaussian noise on the torus with standard deviation sigma
     * (sigma expressed as a fraction of the torus).
     */
    Torus32 GaussianTorus32(Torus32 mean, double sigma) {
        std::normal_distribution<double> dist(0.0, sigma);
        return mean + DoubleToTorus32(dist(engine_));
    }

    /** Gaussian double, for tests that reason about real-valued noise. */
    double GaussianDouble(double sigma) {
        std::normal_distribution<double> dist(0.0, sigma);
        return dist(engine_);
    }

  private:
    std::mt19937_64 engine_;
};

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_RNG_H
