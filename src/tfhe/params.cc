#include "tfhe/params.h"

namespace pytfhe::tfhe {

Params Tfhe128Params() {
    Params p;
    p.name = "tfhe-128";
    p.n = 630;
    p.big_n = 1024;
    p.k = 1;
    p.bk_l = 3;
    p.bk_bg_bit = 7;
    p.ks_t = 8;
    p.ks_base_bit = 2;
    // 2^-15 for the small-LWE key, 2^-25 for the ring key (fractions of the
    // torus), following the updated reference-library defaults for 128-bit
    // security.
    p.lwe_noise_stddev = 3.0517578125e-05;   // 2^-15
    p.tlwe_noise_stddev = 2.9802322387695312e-08;  // 2^-25
    return p;
}

Params ToyParams() {
    Params p;
    p.name = "toy-insecure";
    p.n = 8;
    p.big_n = 128;
    p.k = 1;
    p.bk_l = 3;
    p.bk_bg_bit = 8;
    p.ks_t = 8;
    p.ks_base_bit = 2;
    p.lwe_noise_stddev = 1.0e-9;
    p.tlwe_noise_stddev = 1.0e-9;
    return p;
}

Params SmallParams() {
    Params p;
    p.name = "small-insecure";
    p.n = 32;
    p.big_n = 256;
    p.k = 1;
    p.bk_l = 3;
    p.bk_bg_bit = 8;
    p.ks_t = 8;
    p.ks_base_bit = 2;
    p.lwe_noise_stddev = 1.0e-8;
    p.tlwe_noise_stddev = 1.0e-8;
    return p;
}

Params MultibitParams() {
    Params p;
    p.name = "multibit-128";
    p.n = 700;
    p.big_n = 2048;
    p.k = 1;
    p.bk_l = 4;
    p.bk_bg_bit = 6;
    p.ks_t = 10;
    p.ks_base_bit = 2;
    p.lwe_noise_stddev = 3.3722513783332257e-07;   // 2^-21.5
    p.tlwe_noise_stddev = 6.5878871044226424e-10;  // 2^-30.5
    return p;
}

Params ToyMultibitParams() {
    Params p;
    p.name = "toy-multibit-insecure";
    p.n = 8;
    p.big_n = 256;
    p.k = 1;
    p.bk_l = 3;
    p.bk_bg_bit = 8;
    p.ks_t = 8;
    p.ks_base_bit = 2;
    p.lwe_noise_stddev = 1.0e-9;
    p.tlwe_noise_stddev = 1.0e-9;
    return p;
}

}  // namespace pytfhe::tfhe
