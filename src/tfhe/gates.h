/**
 * @file
 * Bootstrapped homomorphic gates over LWE samples.
 *
 * Bits are encoded as torus messages -1/8 (false) and +1/8 (true). Each
 * two-input gate computes a public linear combination of the inputs whose
 * phase sign equals the gate output, then bootstraps to refresh noise.
 * NOT/COPY/CONSTANT are noiseless linear operations.
 *
 * The gate set matches the 11 gate types of the PyTFHE binary format:
 * NOT, AND, NAND, OR, NOR, XNOR, XOR, ANDNY, ANDYN, ORNY, ORYN (XOR = 6,
 * per Fig. 5/6 of the paper). MUX is provided as the standard TFHE
 * two-bootstrap composition and is lowered to the binary gate set by the
 * compiler frontend.
 */
#ifndef PYTFHE_TFHE_GATES_H
#define PYTFHE_TFHE_GATES_H

#include <atomic>
#include <memory>
#include <string>

#include "tfhe/bootstrap.h"
#include "tfhe/bootstrap_batch.h"

namespace pytfhe::tfhe {

/**
 * +1/8 on the discretized torus: the gate-domain bit encoding (+-kGateMu)
 * and the bootstrap target of every two-input gate. Exported so batch
 * dispatchers can form gate linear preludes outside the evaluator.
 */
constexpr Torus32 kGateMu = UINT32_C(1) << 29;
/** +1/4: the linear-domain encoding and the XOR-family prelude offset. */
constexpr Torus32 kGateQuarter = UINT32_C(1) << 30;

/**
 * Stable identity of one client's key material: an FNV-1a digest of the
 * parameter set plus the secret key bits the evaluation key was derived
 * from. Every evaluation key generated from the same SecretKeySet hashes
 * to the same KeyId (regeneration randomness does not enter the hash), so
 * a client and the server it provisioned always agree on the id, and a
 * serving registry can reject a job submitted against the wrong tenant's
 * keys with a clear error instead of returning garbage decryptions.
 * value == 0 means "no identity attached" (e.g. a key loaded from disk
 * without one).
 */
struct KeyId {
    uint64_t value = 0;

    bool IsSet() const { return value != 0; }
    /** Hex rendering for error messages, e.g. "key:4f1d22ab90c3e877". */
    std::string ToString() const;

    friend bool operator==(const KeyId& a, const KeyId& b) {
        return a.value == b.value;
    }
    friend bool operator!=(const KeyId& a, const KeyId& b) {
        return a.value != b.value;
    }
};

struct SecretKeySet;

/** Digest of `secret`'s params + key bits; never returns an unset id. */
KeyId ComputeKeyId(const SecretKeySet& secret);

/**
 * Linear-domain gates: XOR/XNOR/NOT evaluated as pure LWE sample
 * combinations — no blind rotate, no key switch, no noise refresh.
 *
 * Outputs use the *linear* bit encoding false = -1/4, true = +1/4 (the
 * gate encoding is +-1/8). The `a_linear`/`b_linear` flags say which
 * encoding each operand uses; a gate-domain operand enters with
 * coefficient 2, a linear-domain one with coefficient 1, so
 *   LweLinearXor  = c_a*a + c_b*b + 1/4,
 *   LweLinearXnor = c_a*a + c_b*b - 1/4,
 * both exact on the torus for every operand-domain mix. Noise adds as
 * c_a^2 var(a) + c_b^2 var(b); the bootstrap-elision pass
 * (circuit/opt/passes.h) bounds the accumulated variance. Linear-domain
 * bits decrypt by phase sign, same as gate-domain ones.
 */
LweSample LweLinearXor(const LweSample& a, bool a_linear, const LweSample& b,
                       bool b_linear);
LweSample LweLinearXnor(const LweSample& a, bool a_linear, const LweSample& b,
                        bool b_linear);
/** NOT of a linear-domain sample: plain negation, stays linear-domain. */
LweSample LweLinearNot(const LweSample& a);

/** Client-side key material. */
struct SecretKeySet {
    Params params;
    LweKey lwe_key;
    TLweKey tlwe_key;

    SecretKeySet(const Params& p, Rng& rng)
        : params(p), lwe_key(p.n, rng), tlwe_key(p.big_n, p.k, rng) {}

    /** Reconstructs from serialized parts (see tfhe/serialization.h). */
    SecretKeySet(Params p, LweKey lwe, TLweKey tlwe)
        : params(std::move(p)),
          lwe_key(std::move(lwe)),
          tlwe_key(std::move(tlwe)) {}

    /** Encrypts one bit for upload. */
    LweSample Encrypt(bool bit, Rng& rng) const {
        return LweEncryptBit(bit, params.lwe_noise_stddev, lwe_key, rng);
    }

    /** Decrypts one result bit. */
    bool Decrypt(const LweSample& s) const {
        return LweDecryptBit(s, lwe_key);
    }
};

/** Plain copyable snapshot of a GateProfile at one point in time. */
struct GateProfileSnapshot {
    double linear_seconds = 0.0;       ///< LWE linear combinations.
    double blind_rotate_seconds = 0.0; ///< Blind rotation + extraction.
    double key_switch_seconds = 0.0;   ///< Key switching.
    uint64_t bootstrap_count = 0;

    double TotalSeconds() const {
        return linear_seconds + blind_rotate_seconds + key_switch_seconds;
    }
};

/**
 * Wall-clock breakdown of gate evaluation, for Fig. 7 style profiling.
 *
 * Counters are atomics updated with relaxed ordering: gate evaluation runs
 * concurrently under the threaded backends, and relaxed adds keep the
 * totals exact (each increment happens exactly once) without ordering any
 * other memory. Time accumulates in integer nanoseconds because atomic
 * float addition is not lock-free everywhere. Take a Snapshot() for a
 * copyable view.
 */
class GateProfile {
  public:
    GateProfile() = default;
    GateProfile(const GateProfile&) = delete;
    GateProfile& operator=(const GateProfile&) = delete;

    void AddLinearNanos(uint64_t ns) { Add(linear_ns_, ns); }
    void AddBlindRotateNanos(uint64_t ns) { Add(blind_rotate_ns_, ns); }
    void AddKeySwitchNanos(uint64_t ns) { Add(key_switch_ns_, ns); }
    void AddBootstraps(uint64_t n) { Add(bootstraps_, n); }

    double linear_seconds() const { return 1e-9 * Load(linear_ns_); }
    double blind_rotate_seconds() const {
        return 1e-9 * Load(blind_rotate_ns_);
    }
    double key_switch_seconds() const { return 1e-9 * Load(key_switch_ns_); }
    uint64_t bootstrap_count() const { return Load(bootstraps_); }

    double TotalSeconds() const {
        return linear_seconds() + blind_rotate_seconds() +
               key_switch_seconds();
    }

    GateProfileSnapshot Snapshot() const {
        return GateProfileSnapshot{linear_seconds(), blind_rotate_seconds(),
                                   key_switch_seconds(), bootstrap_count()};
    }

    void Reset() {
        linear_ns_.store(0, std::memory_order_relaxed);
        blind_rotate_ns_.store(0, std::memory_order_relaxed);
        key_switch_ns_.store(0, std::memory_order_relaxed);
        bootstraps_.store(0, std::memory_order_relaxed);
    }

  private:
    static void Add(std::atomic<uint64_t>& c, uint64_t v) {
        c.fetch_add(v, std::memory_order_relaxed);
    }
    static uint64_t Load(const std::atomic<uint64_t>& c) {
        return c.load(std::memory_order_relaxed);
    }

    std::atomic<uint64_t> linear_ns_{0};
    std::atomic<uint64_t> blind_rotate_ns_{0};
    std::atomic<uint64_t> key_switch_ns_{0};
    std::atomic<uint64_t> bootstraps_{0};
};

/**
 * Server-side gate evaluator holding the public evaluation key.
 * All gate methods are const with respect to key material and safe to call
 * concurrently; the profile is atomic accounting only.
 */
class GateEvaluator {
  public:
    /** Generates the evaluation key from the client's secret keys. */
    GateEvaluator(const SecretKeySet& secret, Rng& rng)
        : key_(std::make_shared<BootstrappingKey>(
              secret.params, secret.lwe_key, secret.tlwe_key, rng)),
          key_id_(ComputeKeyId(secret)) {}

    /**
     * Wraps an existing evaluation key (e.g. loaded from disk). Pass the
     * KeyId recorded alongside the key when it is known; the default leaves
     * the evaluator without an identity (key_id().IsSet() == false), which
     * a serving registry will refuse to register.
     */
    explicit GateEvaluator(std::shared_ptr<BootstrappingKey> key,
                           KeyId key_id = {})
        : key_(std::move(key)), key_id_(key_id) {}

    const Params& params() const { return key_->params(); }
    const BootstrappingKey& key() const { return *key_; }

    /** Stable identity of the key material (see KeyId). */
    KeyId key_id() const { return key_id_; }

    GateProfile& profile() { return profile_; }
    const GateProfile& profile() const { return profile_; }

    /** Noiseless gates. */
    LweSample Constant(bool value) const;
    LweSample Not(const LweSample& a) const;
    LweSample Copy(const LweSample& a) const { return a; }

    /**
     * Bootstrapped two-input gates. The optional scratch is reused across
     * calls (one per worker thread) to keep bootstrapping allocation-free.
     */
    LweSample And(const LweSample& a, const LweSample& b,
                  BootstrapScratch* scratch = nullptr);
    LweSample Nand(const LweSample& a, const LweSample& b,
                   BootstrapScratch* scratch = nullptr);
    LweSample Or(const LweSample& a, const LweSample& b,
                 BootstrapScratch* scratch = nullptr);
    LweSample Nor(const LweSample& a, const LweSample& b,
                  BootstrapScratch* scratch = nullptr);
    LweSample Xor(const LweSample& a, const LweSample& b,
                  BootstrapScratch* scratch = nullptr);
    LweSample Xnor(const LweSample& a, const LweSample& b,
                   BootstrapScratch* scratch = nullptr);

    /**
     * XOR/XNOR with operand-domain flags: a linear-domain operand (output
     * of an elided gate, encoding +-1/4) is absorbed with coefficient 1
     * instead of 2 before the sign bootstrap. Output is gate-domain.
     */
    LweSample Xor(const LweSample& a, bool a_linear, const LweSample& b,
                  bool b_linear, BootstrapScratch* scratch = nullptr);
    LweSample Xnor(const LweSample& a, bool a_linear, const LweSample& b,
                   bool b_linear, BootstrapScratch* scratch = nullptr);

    /**
     * Elided gates (see LweLinearXor above): same results, but routed
     * through the evaluator so the time lands in profile().linear_seconds.
     */
    LweSample LinXor(const LweSample& a, bool a_linear, const LweSample& b,
                     bool b_linear);
    LweSample LinXnor(const LweSample& a, bool a_linear, const LweSample& b,
                      bool b_linear);
    LweSample LinNot(const LweSample& a);
    /** NOT(a) AND b. */
    LweSample AndNY(const LweSample& a, const LweSample& b,
                    BootstrapScratch* scratch = nullptr);
    /** a AND NOT(b). */
    LweSample AndYN(const LweSample& a, const LweSample& b,
                    BootstrapScratch* scratch = nullptr);
    /** NOT(a) OR b. */
    LweSample OrNY(const LweSample& a, const LweSample& b,
                   BootstrapScratch* scratch = nullptr);
    /** a OR NOT(b). */
    LweSample OrYN(const LweSample& a, const LweSample& b,
                   BootstrapScratch* scratch = nullptr);

    /** a ? b : c, two bootstraps plus one key switch. */
    LweSample Mux(const LweSample& a, const LweSample& b, const LweSample& c,
                  BootstrapScratch* scratch = nullptr);

    /**
     * Evaluates `count` bootstrapped gates through one batched blind
     * rotation (see bootstrap_batch.h): linear preludes per spec, one
     * structure-of-arrays rotation sharing every key row across lanes, then
     * a per-lane key switch. Bit-exact per gate vs the scalar gate methods.
     * Spec outputs must not alias spec inputs of the same call.
     */
    void BatchedLinearBootstrap(const BatchGateSpec* specs, int32_t count,
                                BatchScratch* scratch = nullptr);

    /** View flavor: lanes gather from / scatter to caller-owned slots. */
    void BatchedLinearBootstrap(const BatchGateViewSpec* specs, int32_t count,
                                BatchScratch* scratch = nullptr);

    /**
     * Allocation-free bootstrapped gate over caller-owned storage: the
     * linear prelude coef_a*a + coef_b*b + offset lands in the scratch,
     * is bootstrapped to +-kGateMu, and key-switched into `out`. Inputs
     * are fully read before `out` is written, so `out` may alias either
     * input. Zero heap allocations when `scratch` is warm.
     */
    void LinearBootstrapInto(int32_t coef_a, LweCView a, int32_t coef_b,
                             LweCView b, Torus32 offset, LweView out,
                             BootstrapScratch* scratch = nullptr);

    /**
     * Profiled linear-domain combination into caller-owned storage (the
     * elided XOR/XNOR path); elementwise, so `out` may alias an input.
     */
    void LinCombineInto(int32_t coef_a, LweCView a, int32_t coef_b,
                        LweCView b, Torus32 offset, LweView out);

    /** NOT into caller-owned storage; `out` may alias `a`. */
    void NotInto(LweCView a, LweView out) const { LweNegateInto(a, out); }

    /** Elided-NOT flavor of NotInto: time lands in the linear profile. */
    void LinNotInto(LweCView a, LweView out);

  private:
    /**
     * Evaluates a gate whose linear part is coef_a*a + coef_b*b + offset,
     * followed by a bootstrap to +-1/8. AND-family gates use +-1
     * coefficients; XOR/XNOR use +-2 for gate-domain operands and +-1 for
     * linear-domain ones.
     */
    LweSample LinearBootstrap(int32_t coef_a, const LweSample& a,
                              int32_t coef_b, const LweSample& b,
                              Torus32 offset, BootstrapScratch* scratch);

    std::shared_ptr<BootstrappingKey> key_;
    KeyId key_id_;
    GateProfile profile_;
};

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_GATES_H
