/**
 * @file
 * AVX-512F forms of the batched FFT kernels (see fft_batch_kernels.h).
 *
 * Built as the only translation unit with -mavx512f so the rest of the
 * library keeps baseline codegen; dispatched at runtime only when the CPU
 * reports AVX-512F. Two data shapes are supported:
 *
 *  - lanes % 8 == 0: one vector holds 8 lanes of a single slot, the slot's
 *    twist/twiddle factor broadcast across the register.
 *  - lanes == 4: one vector holds two adjacent slots x 4 lanes (the
 *    slot-major layout keeps them contiguous), with a paired twiddle vector
 *    [w_j x4, w_{j+1} x4] built by an in-register permute.
 *
 * Bit-exactness: like the AVX2 kernels, only mul/add/sub intrinsics — no
 * FMA (not built with -mfma; library uses -ffp-contract=off) — so every
 * lane computes exactly the scalar expression sequence of the portable
 * loops regardless of which slots share a register.
 */
#include "tfhe/fft_batch_kernels.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace pytfhe::tfhe::batch_detail {

#if defined(__AVX512F__)

bool Simd512Available() {
    static const bool ok = __builtin_cpu_supports("avx512f");
    return ok;
}

namespace {

// GCC's _mm512_permutexvar_pd wrapper passes an undefined merge source to
// the masked builtin, tripping -Wmaybe-uninitialized; the permute never
// reads it (mask is all-ones). A set_pd formulation avoids the warning but
// compiles to per-element inserts in the butterfly inner loop — 3x slower
// end-to-end — so keep the permute and silence the false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/** [w[j] x4, w[j+1] x4] for the two-slots-per-vector lanes == 4 shape. */
inline __m512d PairBroadcast(const double* w, int32_t j) {
    // The zero-extending cast keeps our own operand defined; the permute
    // indices only read elements 0 and 1.
    const __m512d pair = _mm512_zextpd128_pd512(_mm_loadu_pd(w + j));
    const __m512i idx = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
    return _mm512_permutexvar_pd(idx, pair);
}

}  // namespace

void Simd512TwistForward(double* re, double* im, const double* tr,
                         const double* ti, int32_t half, int32_t lanes) {
    if (lanes % 8 == 0) {
        for (int32_t j = 0; j < half; ++j) {
            const __m512d vcr = _mm512_set1_pd(tr[j]);
            const __m512d vci = _mm512_set1_pd(ti[j]);
            double* re_j = re + static_cast<size_t>(j) * lanes;
            double* im_j = im + static_cast<size_t>(j) * lanes;
            for (int32_t l = 0; l < lanes; l += 8) {
                const __m512d lo = _mm512_loadu_pd(re_j + l);
                const __m512d hi = _mm512_loadu_pd(im_j + l);
                _mm512_storeu_pd(re_j + l,
                                 _mm512_add_pd(_mm512_mul_pd(lo, vcr),
                                               _mm512_mul_pd(hi, vci)));
                _mm512_storeu_pd(im_j + l,
                                 _mm512_sub_pd(_mm512_mul_pd(lo, vci),
                                               _mm512_mul_pd(hi, vcr)));
            }
        }
        return;
    }
    // lanes == 4, half even: two slots per vector.
    for (int32_t j = 0; j < half; j += 2) {
        const __m512d vcr = PairBroadcast(tr, j);
        const __m512d vci = PairBroadcast(ti, j);
        const size_t off = static_cast<size_t>(j) * 4;
        const __m512d lo = _mm512_loadu_pd(re + off);
        const __m512d hi = _mm512_loadu_pd(im + off);
        _mm512_storeu_pd(re + off, _mm512_add_pd(_mm512_mul_pd(lo, vcr),
                                                 _mm512_mul_pd(hi, vci)));
        _mm512_storeu_pd(im + off, _mm512_sub_pd(_mm512_mul_pd(lo, vci),
                                                 _mm512_mul_pd(hi, vcr)));
    }
}

void Simd512ButterflyStage(double* re, double* im, const double* wre,
                           const double* wim, double sign, int32_t half,
                           int32_t hb, int32_t lanes) {
    const int32_t len = hb * 2;
    if (lanes % 8 == 0) {
        for (int32_t base = 0; base < half; base += len) {
            for (int32_t k = 0; k < hb; ++k) {
                const __m512d vcr = _mm512_set1_pd(wre[k]);
                const __m512d vci = _mm512_set1_pd(sign * wim[k]);
                const size_t i0 = static_cast<size_t>(base + k) * lanes;
                const size_t i1 = static_cast<size_t>(base + k + hb) * lanes;
                for (int32_t l = 0; l < lanes; l += 8) {
                    const __m512d r1 = _mm512_loadu_pd(re + i1 + l);
                    const __m512d s1 = _mm512_loadu_pd(im + i1 + l);
                    const __m512d tre = _mm512_sub_pd(_mm512_mul_pd(r1, vcr),
                                                      _mm512_mul_pd(s1, vci));
                    const __m512d tim = _mm512_add_pd(_mm512_mul_pd(r1, vci),
                                                      _mm512_mul_pd(s1, vcr));
                    const __m512d r0 = _mm512_loadu_pd(re + i0 + l);
                    const __m512d s0 = _mm512_loadu_pd(im + i0 + l);
                    _mm512_storeu_pd(re + i1 + l, _mm512_sub_pd(r0, tre));
                    _mm512_storeu_pd(im + i1 + l, _mm512_sub_pd(s0, tim));
                    _mm512_storeu_pd(re + i0 + l, _mm512_add_pd(r0, tre));
                    _mm512_storeu_pd(im + i0 + l, _mm512_add_pd(s0, tim));
                }
            }
        }
        return;
    }
    // lanes == 4, hb >= 2: butterflies k and k+1 share a vector. sign is
    // exactly +-1.0, so the vector multiply rounds identically to the
    // scalar `sign * wim[k]`.
    const __m512d vsign = _mm512_set1_pd(sign);
    for (int32_t base = 0; base < half; base += len) {
        for (int32_t k = 0; k < hb; k += 2) {
            const __m512d vcr = PairBroadcast(wre, k);
            const __m512d vci = _mm512_mul_pd(vsign, PairBroadcast(wim, k));
            const size_t i0 = static_cast<size_t>(base + k) * 4;
            const size_t i1 = static_cast<size_t>(base + k + hb) * 4;
            const __m512d r1 = _mm512_loadu_pd(re + i1);
            const __m512d s1 = _mm512_loadu_pd(im + i1);
            const __m512d tre = _mm512_sub_pd(_mm512_mul_pd(r1, vcr),
                                              _mm512_mul_pd(s1, vci));
            const __m512d tim = _mm512_add_pd(_mm512_mul_pd(r1, vci),
                                              _mm512_mul_pd(s1, vcr));
            const __m512d r0 = _mm512_loadu_pd(re + i0);
            const __m512d s0 = _mm512_loadu_pd(im + i0);
            _mm512_storeu_pd(re + i1, _mm512_sub_pd(r0, tre));
            _mm512_storeu_pd(im + i1, _mm512_sub_pd(s0, tim));
            _mm512_storeu_pd(re + i0, _mm512_add_pd(r0, tre));
            _mm512_storeu_pd(im + i0, _mm512_add_pd(s0, tim));
        }
    }
}

void Simd512AddMulBroadcast(double* rre, double* rim, const double* are,
                            const double* aim, const double* bre,
                            const double* bim, int32_t half, int32_t lanes) {
    if (lanes % 8 == 0) {
        for (int32_t j = 0; j < half; ++j) {
            const __m512d vbr = _mm512_set1_pd(bre[j]);
            const __m512d vbi = _mm512_set1_pd(bim[j]);
            const size_t off = static_cast<size_t>(j) * lanes;
            for (int32_t l = 0; l < lanes; l += 8) {
                const __m512d ar = _mm512_loadu_pd(are + off + l);
                const __m512d ai = _mm512_loadu_pd(aim + off + l);
                const __m512d pre = _mm512_sub_pd(_mm512_mul_pd(ar, vbr),
                                                  _mm512_mul_pd(ai, vbi));
                const __m512d pim = _mm512_add_pd(_mm512_mul_pd(ar, vbi),
                                                  _mm512_mul_pd(ai, vbr));
                _mm512_storeu_pd(
                    rre + off + l,
                    _mm512_add_pd(_mm512_loadu_pd(rre + off + l), pre));
                _mm512_storeu_pd(
                    rim + off + l,
                    _mm512_add_pd(_mm512_loadu_pd(rim + off + l), pim));
            }
        }
        return;
    }
    // lanes == 4, half even: two slots per vector.
    for (int32_t j = 0; j < half; j += 2) {
        const __m512d vbr = PairBroadcast(bre, j);
        const __m512d vbi = PairBroadcast(bim, j);
        const size_t off = static_cast<size_t>(j) * 4;
        const __m512d ar = _mm512_loadu_pd(are + off);
        const __m512d ai = _mm512_loadu_pd(aim + off);
        const __m512d pre = _mm512_sub_pd(_mm512_mul_pd(ar, vbr),
                                          _mm512_mul_pd(ai, vbi));
        const __m512d pim = _mm512_add_pd(_mm512_mul_pd(ar, vbi),
                                          _mm512_mul_pd(ai, vbr));
        _mm512_storeu_pd(rre + off,
                         _mm512_add_pd(_mm512_loadu_pd(rre + off), pre));
        _mm512_storeu_pd(rim + off,
                         _mm512_add_pd(_mm512_loadu_pd(rim + off), pim));
    }
}

#pragma GCC diagnostic pop

#else  // !__AVX512F__: never dispatched to (Simd512Available() is false);
       // portable bodies keep the symbols defined and correct.

bool Simd512Available() { return false; }

void Simd512TwistForward(double* re, double* im, const double* tr,
                         const double* ti, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double cr = tr[j];
        const double ci = ti[j];
        double* re_j = re + static_cast<size_t>(j) * lanes;
        double* im_j = im + static_cast<size_t>(j) * lanes;
        for (int32_t l = 0; l < lanes; ++l) {
            const double lo = re_j[l];
            const double hi = im_j[l];
            re_j[l] = lo * cr + hi * ci;
            im_j[l] = lo * ci - hi * cr;
        }
    }
}

void Simd512ButterflyStage(double* re, double* im, const double* wre,
                           const double* wim, double sign, int32_t half,
                           int32_t hb, int32_t lanes) {
    const int32_t len = hb * 2;
    for (int32_t base = 0; base < half; base += len) {
        for (int32_t k = 0; k < hb; ++k) {
            const double cr = wre[k];
            const double ci = sign * wim[k];
            const size_t i0 = static_cast<size_t>(base + k) * lanes;
            const size_t i1 = static_cast<size_t>(base + k + hb) * lanes;
            double* re0 = re + i0;
            double* im0 = im + i0;
            double* re1 = re + i1;
            double* im1 = im + i1;
            for (int32_t l = 0; l < lanes; ++l) {
                const double tre = re1[l] * cr - im1[l] * ci;
                const double tim = re1[l] * ci + im1[l] * cr;
                re1[l] = re0[l] - tre;
                im1[l] = im0[l] - tim;
                re0[l] += tre;
                im0[l] += tim;
            }
        }
    }
}

void Simd512AddMulBroadcast(double* rre, double* rim, const double* are,
                            const double* aim, const double* bre,
                            const double* bim, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double br = bre[j];
        const double bi = bim[j];
        const size_t off = static_cast<size_t>(j) * lanes;
        const double* a_re = are + off;
        const double* a_im = aim + off;
        double* r_re = rre + off;
        double* r_im = rim + off;
        for (int32_t l = 0; l < lanes; ++l) {
            r_re[l] += a_re[l] * br - a_im[l] * bi;
            r_im[l] += a_re[l] * bi + a_im[l] * br;
        }
    }
}

#endif

}  // namespace pytfhe::tfhe::batch_detail
