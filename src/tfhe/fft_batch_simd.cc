/**
 * @file
 * Explicit SIMD forms of the batched FFT kernels (see fft_batch_kernels.h).
 *
 * This is the only translation unit built with vector flags (-mavx2 on
 * x86-64; NEON is baseline on aarch64), so the scalar library keeps its
 * portable baseline codegen. Without either ISA the kernels compile to the
 * portable loops and SimdAvailable() reports false, so they are never
 * dispatched to.
 *
 * Bit-exactness: only mul/add/sub intrinsics appear — no FMA (AVX2 does not
 * imply FMA3, this file is not built with -mfma, and the library is built
 * with -ffp-contract=off), no horizontal ops, no reassociation — so each
 * vector lane computes exactly the scalar expression of the portable loops.
 * Remainder lanes (batch size not a multiple of the vector width) run the
 * same expressions in scalar form inside this TU.
 */
#include "tfhe/fft_batch_kernels.h"

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace pytfhe::tfhe::batch_detail {

#if defined(__AVX2__)

bool SimdAvailable() {
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
}

void SimdTwistForward(double* re, double* im, const double* tr,
                      const double* ti, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double cr = tr[j];
        const double ci = ti[j];
        const __m256d vcr = _mm256_set1_pd(cr);
        const __m256d vci = _mm256_set1_pd(ci);
        double* re_j = re + static_cast<size_t>(j) * lanes;
        double* im_j = im + static_cast<size_t>(j) * lanes;
        int32_t l = 0;
        for (; l + 4 <= lanes; l += 4) {
            const __m256d lo = _mm256_loadu_pd(re_j + l);
            const __m256d hi = _mm256_loadu_pd(im_j + l);
            _mm256_storeu_pd(re_j + l,
                             _mm256_add_pd(_mm256_mul_pd(lo, vcr),
                                           _mm256_mul_pd(hi, vci)));
            _mm256_storeu_pd(im_j + l,
                             _mm256_sub_pd(_mm256_mul_pd(lo, vci),
                                           _mm256_mul_pd(hi, vcr)));
        }
        for (; l + 2 <= lanes; l += 2) {
            const __m128d lo = _mm_loadu_pd(re_j + l);
            const __m128d hi = _mm_loadu_pd(im_j + l);
            const __m128d hcr = _mm256_castpd256_pd128(vcr);
            const __m128d hci = _mm256_castpd256_pd128(vci);
            _mm_storeu_pd(re_j + l, _mm_add_pd(_mm_mul_pd(lo, hcr),
                                               _mm_mul_pd(hi, hci)));
            _mm_storeu_pd(im_j + l, _mm_sub_pd(_mm_mul_pd(lo, hci),
                                               _mm_mul_pd(hi, hcr)));
        }
        for (; l < lanes; ++l) {
            const double lo = re_j[l];
            const double hi = im_j[l];
            re_j[l] = lo * cr + hi * ci;
            im_j[l] = lo * ci - hi * cr;
        }
    }
}

void SimdButterflyStage(double* re, double* im, const double* wre,
                        const double* wim, double sign, int32_t half,
                        int32_t hb, int32_t lanes) {
    const int32_t len = hb * 2;
    for (int32_t base = 0; base < half; base += len) {
        for (int32_t k = 0; k < hb; ++k) {
            const double cr = wre[k];
            const double ci = sign * wim[k];
            const __m256d vcr = _mm256_set1_pd(cr);
            const __m256d vci = _mm256_set1_pd(ci);
            const size_t i0 = static_cast<size_t>(base + k) * lanes;
            const size_t i1 = static_cast<size_t>(base + k + hb) * lanes;
            double* re0 = re + i0;
            double* im0 = im + i0;
            double* re1 = re + i1;
            double* im1 = im + i1;
            int32_t l = 0;
            for (; l + 4 <= lanes; l += 4) {
                const __m256d r1 = _mm256_loadu_pd(re1 + l);
                const __m256d i1v = _mm256_loadu_pd(im1 + l);
                const __m256d tre = _mm256_sub_pd(_mm256_mul_pd(r1, vcr),
                                                  _mm256_mul_pd(i1v, vci));
                const __m256d tim = _mm256_add_pd(_mm256_mul_pd(r1, vci),
                                                  _mm256_mul_pd(i1v, vcr));
                const __m256d r0 = _mm256_loadu_pd(re0 + l);
                const __m256d i0v = _mm256_loadu_pd(im0 + l);
                _mm256_storeu_pd(re1 + l, _mm256_sub_pd(r0, tre));
                _mm256_storeu_pd(im1 + l, _mm256_sub_pd(i0v, tim));
                _mm256_storeu_pd(re0 + l, _mm256_add_pd(r0, tre));
                _mm256_storeu_pd(im0 + l, _mm256_add_pd(i0v, tim));
            }
            for (; l + 2 <= lanes; l += 2) {
                const __m128d hcr = _mm256_castpd256_pd128(vcr);
                const __m128d hci = _mm256_castpd256_pd128(vci);
                const __m128d r1 = _mm_loadu_pd(re1 + l);
                const __m128d i1v = _mm_loadu_pd(im1 + l);
                const __m128d tre = _mm_sub_pd(_mm_mul_pd(r1, hcr),
                                               _mm_mul_pd(i1v, hci));
                const __m128d tim = _mm_add_pd(_mm_mul_pd(r1, hci),
                                               _mm_mul_pd(i1v, hcr));
                const __m128d r0 = _mm_loadu_pd(re0 + l);
                const __m128d i0v = _mm_loadu_pd(im0 + l);
                _mm_storeu_pd(re1 + l, _mm_sub_pd(r0, tre));
                _mm_storeu_pd(im1 + l, _mm_sub_pd(i0v, tim));
                _mm_storeu_pd(re0 + l, _mm_add_pd(r0, tre));
                _mm_storeu_pd(im0 + l, _mm_add_pd(i0v, tim));
            }
            for (; l < lanes; ++l) {
                const double tre = re1[l] * cr - im1[l] * ci;
                const double tim = re1[l] * ci + im1[l] * cr;
                re1[l] = re0[l] - tre;
                im1[l] = im0[l] - tim;
                re0[l] += tre;
                im0[l] += tim;
            }
        }
    }
}

void SimdAddMulBroadcast(double* rre, double* rim, const double* are,
                         const double* aim, const double* bre,
                         const double* bim, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double br = bre[j];
        const double bi = bim[j];
        const __m256d vbr = _mm256_set1_pd(br);
        const __m256d vbi = _mm256_set1_pd(bi);
        const size_t off = static_cast<size_t>(j) * lanes;
        const double* a_re = are + off;
        const double* a_im = aim + off;
        double* r_re = rre + off;
        double* r_im = rim + off;
        int32_t l = 0;
        for (; l + 4 <= lanes; l += 4) {
            const __m256d ar = _mm256_loadu_pd(a_re + l);
            const __m256d ai = _mm256_loadu_pd(a_im + l);
            const __m256d pre = _mm256_sub_pd(_mm256_mul_pd(ar, vbr),
                                              _mm256_mul_pd(ai, vbi));
            const __m256d pim = _mm256_add_pd(_mm256_mul_pd(ar, vbi),
                                              _mm256_mul_pd(ai, vbr));
            _mm256_storeu_pd(r_re + l,
                             _mm256_add_pd(_mm256_loadu_pd(r_re + l), pre));
            _mm256_storeu_pd(r_im + l,
                             _mm256_add_pd(_mm256_loadu_pd(r_im + l), pim));
        }
        for (; l + 2 <= lanes; l += 2) {
            const __m128d hbr = _mm256_castpd256_pd128(vbr);
            const __m128d hbi = _mm256_castpd256_pd128(vbi);
            const __m128d ar = _mm_loadu_pd(a_re + l);
            const __m128d ai = _mm_loadu_pd(a_im + l);
            const __m128d pre = _mm_sub_pd(_mm_mul_pd(ar, hbr),
                                           _mm_mul_pd(ai, hbi));
            const __m128d pim = _mm_add_pd(_mm_mul_pd(ar, hbi),
                                           _mm_mul_pd(ai, hbr));
            _mm_storeu_pd(r_re + l, _mm_add_pd(_mm_loadu_pd(r_re + l), pre));
            _mm_storeu_pd(r_im + l, _mm_add_pd(_mm_loadu_pd(r_im + l), pim));
        }
        for (; l < lanes; ++l) {
            r_re[l] += a_re[l] * br - a_im[l] * bi;
            r_im[l] += a_re[l] * bi + a_im[l] * br;
        }
    }
}

#elif defined(__ARM_NEON)

bool SimdAvailable() { return true; }

void SimdTwistForward(double* re, double* im, const double* tr,
                      const double* ti, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double cr = tr[j];
        const double ci = ti[j];
        const float64x2_t vcr = vdupq_n_f64(cr);
        const float64x2_t vci = vdupq_n_f64(ci);
        double* re_j = re + static_cast<size_t>(j) * lanes;
        double* im_j = im + static_cast<size_t>(j) * lanes;
        int32_t l = 0;
        for (; l + 2 <= lanes; l += 2) {
            const float64x2_t lo = vld1q_f64(re_j + l);
            const float64x2_t hi = vld1q_f64(im_j + l);
            vst1q_f64(re_j + l,
                      vaddq_f64(vmulq_f64(lo, vcr), vmulq_f64(hi, vci)));
            vst1q_f64(im_j + l,
                      vsubq_f64(vmulq_f64(lo, vci), vmulq_f64(hi, vcr)));
        }
        for (; l < lanes; ++l) {
            const double lo = re_j[l];
            const double hi = im_j[l];
            re_j[l] = lo * cr + hi * ci;
            im_j[l] = lo * ci - hi * cr;
        }
    }
}

void SimdButterflyStage(double* re, double* im, const double* wre,
                        const double* wim, double sign, int32_t half,
                        int32_t hb, int32_t lanes) {
    const int32_t len = hb * 2;
    for (int32_t base = 0; base < half; base += len) {
        for (int32_t k = 0; k < hb; ++k) {
            const double cr = wre[k];
            const double ci = sign * wim[k];
            const float64x2_t vcr = vdupq_n_f64(cr);
            const float64x2_t vci = vdupq_n_f64(ci);
            const size_t i0 = static_cast<size_t>(base + k) * lanes;
            const size_t i1 = static_cast<size_t>(base + k + hb) * lanes;
            double* re0 = re + i0;
            double* im0 = im + i0;
            double* re1 = re + i1;
            double* im1 = im + i1;
            int32_t l = 0;
            for (; l + 2 <= lanes; l += 2) {
                const float64x2_t r1 = vld1q_f64(re1 + l);
                const float64x2_t i1v = vld1q_f64(im1 + l);
                const float64x2_t tre =
                    vsubq_f64(vmulq_f64(r1, vcr), vmulq_f64(i1v, vci));
                const float64x2_t tim =
                    vaddq_f64(vmulq_f64(r1, vci), vmulq_f64(i1v, vcr));
                const float64x2_t r0 = vld1q_f64(re0 + l);
                const float64x2_t i0v = vld1q_f64(im0 + l);
                vst1q_f64(re1 + l, vsubq_f64(r0, tre));
                vst1q_f64(im1 + l, vsubq_f64(i0v, tim));
                vst1q_f64(re0 + l, vaddq_f64(r0, tre));
                vst1q_f64(im0 + l, vaddq_f64(i0v, tim));
            }
            for (; l < lanes; ++l) {
                const double tre = re1[l] * cr - im1[l] * ci;
                const double tim = re1[l] * ci + im1[l] * cr;
                re1[l] = re0[l] - tre;
                im1[l] = im0[l] - tim;
                re0[l] += tre;
                im0[l] += tim;
            }
        }
    }
}

void SimdAddMulBroadcast(double* rre, double* rim, const double* are,
                         const double* aim, const double* bre,
                         const double* bim, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double br = bre[j];
        const double bi = bim[j];
        const float64x2_t vbr = vdupq_n_f64(br);
        const float64x2_t vbi = vdupq_n_f64(bi);
        const size_t off = static_cast<size_t>(j) * lanes;
        const double* a_re = are + off;
        const double* a_im = aim + off;
        double* r_re = rre + off;
        double* r_im = rim + off;
        int32_t l = 0;
        for (; l + 2 <= lanes; l += 2) {
            const float64x2_t ar = vld1q_f64(a_re + l);
            const float64x2_t ai = vld1q_f64(a_im + l);
            const float64x2_t pre =
                vsubq_f64(vmulq_f64(ar, vbr), vmulq_f64(ai, vbi));
            const float64x2_t pim =
                vaddq_f64(vmulq_f64(ar, vbi), vmulq_f64(ai, vbr));
            vst1q_f64(r_re + l, vaddq_f64(vld1q_f64(r_re + l), pre));
            vst1q_f64(r_im + l, vaddq_f64(vld1q_f64(r_im + l), pim));
        }
        for (; l < lanes; ++l) {
            r_re[l] += a_re[l] * br - a_im[l] * bi;
            r_im[l] += a_re[l] * bi + a_im[l] * br;
        }
    }
}

#else  // Neither AVX2 nor NEON: never dispatched to; portable bodies keep
       // the symbols defined and correct if ever called directly.

bool SimdAvailable() { return false; }

void SimdTwistForward(double* re, double* im, const double* tr,
                      const double* ti, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double cr = tr[j];
        const double ci = ti[j];
        double* re_j = re + static_cast<size_t>(j) * lanes;
        double* im_j = im + static_cast<size_t>(j) * lanes;
        for (int32_t l = 0; l < lanes; ++l) {
            const double lo = re_j[l];
            const double hi = im_j[l];
            re_j[l] = lo * cr + hi * ci;
            im_j[l] = lo * ci - hi * cr;
        }
    }
}

void SimdButterflyStage(double* re, double* im, const double* wre,
                        const double* wim, double sign, int32_t half,
                        int32_t hb, int32_t lanes) {
    const int32_t len = hb * 2;
    for (int32_t base = 0; base < half; base += len) {
        for (int32_t k = 0; k < hb; ++k) {
            const double cr = wre[k];
            const double ci = sign * wim[k];
            const size_t i0 = static_cast<size_t>(base + k) * lanes;
            const size_t i1 = static_cast<size_t>(base + k + hb) * lanes;
            double* re0 = re + i0;
            double* im0 = im + i0;
            double* re1 = re + i1;
            double* im1 = im + i1;
            for (int32_t l = 0; l < lanes; ++l) {
                const double tre = re1[l] * cr - im1[l] * ci;
                const double tim = re1[l] * ci + im1[l] * cr;
                re1[l] = re0[l] - tre;
                im1[l] = im0[l] - tim;
                re0[l] += tre;
                im0[l] += tim;
            }
        }
    }
}

void SimdAddMulBroadcast(double* rre, double* rim, const double* are,
                         const double* aim, const double* bre,
                         const double* bim, int32_t half, int32_t lanes) {
    for (int32_t j = 0; j < half; ++j) {
        const double br = bre[j];
        const double bi = bim[j];
        const size_t off = static_cast<size_t>(j) * lanes;
        const double* a_re = are + off;
        const double* a_im = aim + off;
        double* r_re = rre + off;
        double* r_im = rim + off;
        for (int32_t l = 0; l < lanes; ++l) {
            r_re[l] += a_re[l] * br - a_im[l] * bi;
            r_im[l] += a_re[l] * bi + a_im[l] * br;
        }
    }
}

#endif

}  // namespace pytfhe::tfhe::batch_detail
