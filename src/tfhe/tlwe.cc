#include "tfhe/tlwe.h"

#include <cassert>

#include "tfhe/fft.h"

namespace pytfhe::tfhe {

TLweKey::TLweKey(int32_t n, int32_t k, Rng& rng) : key(k, IntPolynomial(n)) {
    for (auto& poly : key)
        for (auto& c : poly.coefs) c = rng.UniformBit();
}

LweKey TLweKey::ExtractLweKey() const {
    LweKey out;
    out.key.reserve(static_cast<size_t>(BigN()) * K());
    for (const auto& poly : key)
        out.key.insert(out.key.end(), poly.coefs.begin(), poly.coefs.end());
    return out;
}

TLweSample::TLweSample(int32_t n, int32_t k)
    : a(k + 1, TorusPolynomial(n)) {}

void TLweSample::Clear() {
    for (auto& poly : a) poly.Clear();
}

void TLweSample::SetTrivial(const TorusPolynomial& mu) {
    Clear();
    Body() = mu;
}

void TLweSample::AddTo(const TLweSample& other) {
    assert(a.size() == other.a.size());
    for (size_t i = 0; i < a.size(); ++i) a[i].AddTo(other.a[i]);
}

void TLweSample::SubTo(const TLweSample& other) {
    assert(a.size() == other.a.size());
    for (size_t i = 0; i < a.size(); ++i) a[i].SubTo(other.a[i]);
}

TLweSample TLweEncrypt(const TorusPolynomial& mu, double noise_stddev,
                       const TLweKey& key, Rng& rng) {
    const int32_t n = key.BigN();
    const int32_t k = key.K();
    assert(mu.Size() == n);
    TLweSample s(n, k);
    for (int32_t j = 0; j < n; ++j)
        s.Body().coefs[j] = rng.GaussianTorus32(mu.coefs[j], noise_stddev);
    // The FFT product here and in TLwePhase run the identical computation,
    // so encrypt/phase round-trips cancel exactly; any FFT round-off only
    // shifts the effective noise by a fraction of the scheme noise.
    const NegacyclicFft& fft = GetFftPlan(n);
    FftScratch scratch;
    TorusPolynomial prod(n);
    for (int32_t i = 0; i < k; ++i) {
        for (int32_t j = 0; j < n; ++j)
            s.a[i].coefs[j] = rng.UniformTorus32();
        fft.Multiply(prod, key.key[i], s.a[i], scratch);
        s.Body().AddTo(prod);
    }
    return s;
}

TLweSample TLweEncryptConst(Torus32 mu, double noise_stddev,
                            const TLweKey& key, Rng& rng) {
    TorusPolynomial msg(key.BigN());
    msg.coefs[0] = mu;
    return TLweEncrypt(msg, noise_stddev, key, rng);
}

TorusPolynomial TLwePhase(const TLweSample& sample, const TLweKey& key) {
    const int32_t n = key.BigN();
    assert(sample.BigN() == n && sample.K() == key.K());
    TorusPolynomial phase = sample.Body();
    const NegacyclicFft& fft = GetFftPlan(n);
    FftScratch scratch;
    TorusPolynomial prod(n);
    for (int32_t i = 0; i < key.K(); ++i) {
        fft.Multiply(prod, key.key[i], sample.a[i], scratch);
        phase.SubTo(prod);
    }
    return phase;
}

void TLweMulByXai(TLweSample& result, int32_t a, const TLweSample& sample) {
    assert(&result != &sample);
    for (size_t i = 0; i < sample.a.size(); ++i)
        MulByXai(result.a[i], a, sample.a[i]);
}

LweSample TLweExtractSample(const TLweSample& sample, int32_t index) {
    LweSample out;
    TLweExtractSampleInto(out, sample, index);
    return out;
}

void TLweExtractSampleInto(LweSample& out, const TLweSample& sample,
                           int32_t index) {
    const int32_t n = sample.BigN();
    const int32_t k = sample.K();
    assert(index >= 0 && index < n);
    if (out.N() != n * k) out = LweSample(n * k);
    for (int32_t i = 0; i < k; ++i) {
        for (int32_t j = 0; j <= index; ++j)
            out.a[i * n + j] = sample.a[i].coefs[index - j];
        for (int32_t j = index + 1; j < n; ++j)
            out.a[i * n + j] = -sample.a[i].coefs[n + index - j];
    }
    out.b = sample.Body().coefs[index];
}

}  // namespace pytfhe::tfhe
