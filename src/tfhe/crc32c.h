/**
 * @file
 * CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the integrity
 * checksum framing every serialized payload (serialization.h). Chosen over
 * CRC32 (IEEE) for its better error-detection properties on storage
 * payloads; computed in software (table-driven), no hardware intrinsics.
 */
#ifndef PYTFHE_TFHE_CRC32C_H
#define PYTFHE_TFHE_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace pytfhe::tfhe {

/**
 * CRC32C of `size` bytes at `data`. `seed` is the running CRC of any
 * preceding bytes (0 for a fresh computation), so large payloads can be
 * checksummed incrementally: Crc32c(b, nb, Crc32c(a, na)).
 */
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_CRC32C_H
