#include "tfhe/polynomial.h"

#include <cassert>

namespace pytfhe::tfhe {

void TorusPolynomial::AddTo(const TorusPolynomial& other) {
    assert(Size() == other.Size());
    for (int32_t i = 0; i < Size(); ++i) coefs[i] += other.coefs[i];
}

void TorusPolynomial::SubTo(const TorusPolynomial& other) {
    assert(Size() == other.Size());
    for (int32_t i = 0; i < Size(); ++i) coefs[i] -= other.coefs[i];
}

void MulByXai(TorusPolynomial& result, int32_t a, const TorusPolynomial& poly) {
    const int32_t n = poly.Size();
    assert(result.Size() == n && &result != &poly);
    a = ((a % (2 * n)) + 2 * n) % (2 * n);
    if (a < n) {
        for (int32_t i = 0; i < a; ++i)
            result.coefs[i] = -poly.coefs[i - a + n];
        for (int32_t i = a; i < n; ++i)
            result.coefs[i] = poly.coefs[i - a];
    } else {
        const int32_t aa = a - n;
        for (int32_t i = 0; i < aa; ++i)
            result.coefs[i] = poly.coefs[i - aa + n];
        for (int32_t i = aa; i < n; ++i)
            result.coefs[i] = -poly.coefs[i - aa];
    }
}

void MulByXaiMinusOne(TorusPolynomial& result, int32_t a,
                      const TorusPolynomial& poly) {
    MulByXai(result, a, poly);
    result.SubTo(poly);
}

void NaiveNegacyclicMul(TorusPolynomial& result, const IntPolynomial& a,
                        const TorusPolynomial& b) {
    const int32_t n = b.Size();
    assert(a.Size() == n && result.Size() == n);
    for (int32_t i = 0; i < n; ++i) result.coefs[i] = 0;
    for (int32_t i = 0; i < n; ++i) {
        const int64_t ai = a.coefs[i];
        if (ai == 0) continue;
        for (int32_t j = 0; j < n; ++j) {
            // Torus32 wraps mod 2^32, so plain uint32 multiply-add is exact
            // modulo 1 on the torus.
            const uint32_t term =
                static_cast<uint32_t>(ai) * b.coefs[j];
            const int32_t idx = i + j;
            if (idx < n) {
                result.coefs[idx] += term;
            } else {
                result.coefs[idx - n] -= term;
            }
        }
    }
}

}  // namespace pytfhe::tfhe
