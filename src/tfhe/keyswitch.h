/**
 * @file
 * LWE-to-LWE key switching.
 *
 * After sample extraction, ciphertexts live under the extracted key of
 * dimension N*k. The key-switching key re-encrypts them under the small LWE
 * key of dimension n so that the next gate's linear phase stays cheap. Each
 * mask coefficient is decomposed into t digits of base 2^base_bit; the key
 * holds encryptions of s_i * v / base^{j+1} for every digit value v.
 */
#ifndef PYTFHE_TFHE_KEYSWITCH_H
#define PYTFHE_TFHE_KEYSWITCH_H

#include <vector>

#include "tfhe/lwe.h"

namespace pytfhe::tfhe {

/** Key-switching key from an input key of dimension n_in to an output key. */
class KeySwitchKey {
  public:
    KeySwitchKey() = default;

    /**
     * Builds the key material.
     * @param in_key   Key the incoming samples are encrypted under.
     * @param out_key  Key the result should be encrypted under.
     * @param t        Decomposition depth.
     * @param base_bit log2 of the decomposition base.
     * @param noise_stddev Fresh noise of each key-switching encryption.
     */
    KeySwitchKey(const LweKey& in_key, const LweKey& out_key, int32_t t,
                 int32_t base_bit, double noise_stddev, Rng& rng);

    /** Reconstructs a key from serialized parts (see tfhe/serialization.h). */
    static KeySwitchKey FromRaw(int32_t n_in, int32_t n_out, int32_t t,
                                int32_t base_bit,
                                std::vector<LweSample> keys);

    /** Raw key material, for serialization. */
    const std::vector<LweSample>& RawKeys() const { return keys_; }

    /** Re-encrypts `in` (under in_key) as a sample under out_key. */
    LweSample Apply(const LweSample& in) const;

    /**
     * Allocation-free variant writing into caller-owned storage of
     * dimension OutputN(). `out` never aliases `in` in practice (the
     * dimensions differ), and the result does not depend on out's prior
     * contents.
     */
    void ApplyInto(const LweSample& in, LweView out) const;

    int32_t InputN() const { return n_in_; }
    int32_t OutputN() const { return n_out_; }
    int32_t T() const { return t_; }
    int32_t BaseBit() const { return base_bit_; }

    /** Approximate size of the key material in bytes. */
    size_t ByteSize() const;

  private:
    const LweSample& At(int32_t i, int32_t j, int32_t v) const {
        return keys_[(static_cast<size_t>(i) * t_ + j) * base_ + v];
    }

    int32_t n_in_ = 0;
    int32_t n_out_ = 0;
    int32_t t_ = 0;
    int32_t base_bit_ = 0;
    int32_t base_ = 0;
    std::vector<LweSample> keys_;  ///< n_in * t * base samples (v = 0 unused).
};

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_KEYSWITCH_H
