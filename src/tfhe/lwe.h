/**
 * @file
 * LWE samples and keys over the discretized torus.
 *
 * An LWE sample (a, b) with b = <a, s> + m + e encrypts torus message m under
 * binary secret key s of dimension n with Gaussian noise e. Gate inputs and
 * outputs of the TFHE scheme are LWE samples with messages in {-1/8, +1/8}.
 */
#ifndef PYTFHE_TFHE_LWE_H
#define PYTFHE_TFHE_LWE_H

#include <cstdint>
#include <vector>

#include "tfhe/rng.h"
#include "tfhe/torus.h"

namespace pytfhe::tfhe {

/** Binary LWE secret key. */
struct LweKey {
    std::vector<int32_t> key;  ///< n bits.

    LweKey() = default;
    /** Samples a uniform binary key of dimension n. */
    LweKey(int32_t n, Rng& rng);

    int32_t N() const { return static_cast<int32_t>(key.size()); }
};

/** LWE ciphertext (a_1..a_n, b). */
struct LweSample {
    std::vector<Torus32> a;
    Torus32 b = 0;

    LweSample() = default;
    explicit LweSample(int32_t n) : a(n, 0) {}

    int32_t N() const { return static_cast<int32_t>(a.size()); }

    /** Sets this sample to a noiseless encryption of mu (a = 0, b = mu). */
    void SetTrivial(Torus32 mu);

    void AddTo(const LweSample& other);
    void SubTo(const LweSample& other);
    /** this += k * other, for small public integer k. */
    void AddMulTo(const LweSample& other, int32_t k);
    /** this = -this. */
    void Negate();
    /** this = 2 * this (used by XOR/XNOR gate linear parts). */
    void Double();
    void AddConstant(Torus32 mu) { b += mu; }
};

/**
 * Non-owning mutable view of an LWE sample whose mask and body live in
 * caller-owned storage — the interface the arena-backed execution core
 * uses so gate kernels read and write ciphertext slots in place, with no
 * per-gate allocation. The mask is `n` contiguous Torus32 words at `a`;
 * the body is a separate word (arena slots store it at a[n], LweSample
 * keeps it in a distinct member).
 */
struct LweCView {
    const Torus32* a = nullptr;
    const Torus32* b = nullptr;
    int32_t n = 0;
};

struct LweView {
    Torus32* a = nullptr;
    Torus32* b = nullptr;
    int32_t n = 0;

    operator LweCView() const { return LweCView{a, b, n}; }
};

inline LweView ViewOf(LweSample& s) { return LweView{s.a.data(), &s.b, s.N()}; }
inline LweCView ViewOf(const LweSample& s) {
    return LweCView{s.a.data(), &s.b, s.N()};
}

/** out = trivial encryption of mu (mask zero, body mu). */
void LweSetTrivial(LweView out, Torus32 mu);

/** out = in; views must agree on n (out may alias in). */
void LweCopyInto(LweCView in, LweView out);

/** out = -in, elementwise; out may alias in. */
void LweNegateInto(LweCView in, LweView out);

/**
 * out = coef_a*a + coef_b*b + offset — the shared linear prelude of every
 * gate. Elementwise, so out may alias either operand (or both).
 */
void LweLinearCombineInto(int32_t coef_a, LweCView a, int32_t coef_b,
                          LweCView b, Torus32 offset, LweView out);

/** Encrypts torus message mu with the given noise standard deviation. */
LweSample LweEncrypt(Torus32 mu, double noise_stddev, const LweKey& key,
                     Rng& rng);

/** Computes the phase b - <a, s> (message plus noise). */
Torus32 LwePhase(const LweSample& sample, const LweKey& key);

/** Decrypts to the nearest of msize equally spaced torus messages. */
Torus32 LweDecrypt(const LweSample& sample, const LweKey& key, int32_t msize);

/** Decrypts a gate-encoded bit (message in {-1/8, +1/8}): sign of phase. */
bool LweDecryptBit(const LweSample& sample, const LweKey& key);

/** Encrypts a gate-encoded bit as +-1/8 with the key's noise parameter. */
LweSample LweEncryptBit(bool bit, double noise_stddev, const LweKey& key,
                        Rng& rng);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_LWE_H
