/**
 * @file
 * Radix integers: multi-digit encrypted arithmetic over the short-int
 * layer — the equivalent of the "integer" API the TFHE ecosystem built on
 * top of digit-wise programmable bootstrapping.
 *
 * A RadixInteger is a little-endian vector of base-p digits, each one a
 * ShortIntContext ciphertext. Because digit sums up to 2p-1 still fit the
 * p^2-slot ciphertext space, carries propagate with *linear* additions
 * plus two bootstraps per digit (digit extract + carry extract), and
 * n-digit multiplication runs the schoolbook algorithm over single-digit
 * partial products.
 */
#ifndef PYTFHE_TFHE_INTEGER_H
#define PYTFHE_TFHE_INTEGER_H

#include "tfhe/shortint.h"

namespace pytfhe::tfhe {

/** An encrypted unsigned integer in base-p digits, LSB first. */
struct RadixInteger {
    std::vector<LweSample> digits;

    size_t NumDigits() const { return digits.size(); }
};

/** Arithmetic over RadixIntegers, bound to a digit context. */
class RadixContext {
  public:
    /**
     * @param p          Digit modulus of the underlying ShortIntContext.
     * @param num_digits Width of every integer handled by this context.
     */
    RadixContext(int32_t p, int32_t num_digits, const BootstrappingKey& key)
        : ctx_(p, key), num_digits_(num_digits) {}

    const ShortIntContext& digit_context() const { return ctx_; }
    int32_t NumDigits() const { return num_digits_; }
    /** Largest representable value + 1 (p^digits). */
    uint64_t Modulus() const;

    /** Client-side helpers. */
    RadixInteger Encrypt(uint64_t value, const LweKey& key,
                         double noise_stddev, Rng& rng) const;
    uint64_t Decrypt(const RadixInteger& x, const LweKey& key) const;

    /** (a + b) mod p^digits: 2 bootstraps per digit. */
    RadixInteger Add(const RadixInteger& a, const RadixInteger& b) const;

    /** (a * b) mod p^digits: schoolbook over digit products. */
    RadixInteger Mul(const RadixInteger& a, const RadixInteger& b) const;

    /** a == b, as an encrypted 0/1 digit. */
    LweSample Eq(const RadixInteger& a, const RadixInteger& b) const;

    /** a < b (unsigned), as an encrypted 0/1 digit. */
    LweSample Lt(const RadixInteger& a, const RadixInteger& b) const;

  private:
    /**
     * Encoding-preserving linear sum: the phase of the result encodes
     * a + b (valid while the sum stays below the ciphertext space p^2).
     */
    LweSample RawAdd(const LweSample& a, const LweSample& b) const;

    ShortIntContext ctx_;
    int32_t num_digits_;
};

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_INTEGER_H
