#include "tfhe/crc32c.h"

namespace pytfhe::tfhe {

namespace {

/** Reflected CRC32C lookup table, one entry per byte value. */
struct Crc32cTable {
    uint32_t entries[256];

    Crc32cTable() {
        // Reflected form of the Castagnoli polynomial 0x1EDC6F41.
        constexpr uint32_t kPoly = 0x82F63B78u;
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
            entries[i] = crc;
        }
    }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
    static const Crc32cTable table;
    const uint8_t* p = static_cast<const uint8_t*>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFFu];
    return ~crc;
}

}  // namespace pytfhe::tfhe
