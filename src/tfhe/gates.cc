#include "tfhe/gates.h"

#include <bit>
#include <chrono>
#include <cstdio>

namespace pytfhe::tfhe {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

// Local aliases for the exported encodings (see gates.h).
constexpr Torus32 kEighth = kGateMu;
constexpr Torus32 kQuarter = kGateQuarter;

}  // namespace

namespace {

/** coef_a*a + coef_b*b + offset; the shared core of the linear gates. */
LweSample LinearCombine(int32_t coef_a, const LweSample& a, int32_t coef_b,
                        const LweSample& b, Torus32 offset) {
    LweSample out(a.N());
    out.SetTrivial(offset);
    out.AddMulTo(a, coef_a);
    out.AddMulTo(b, coef_b);
    return out;
}

}  // namespace

namespace {

/** FNV-1a over 64-bit words; the digest behind KeyId. */
struct Fnv64 {
    uint64_t h = UINT64_C(1469598103934665603);

    void Mix(uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= UINT64_C(1099511628211);
        }
    }
};

}  // namespace

std::string KeyId::ToString() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key:%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

KeyId ComputeKeyId(const SecretKeySet& secret) {
    Fnv64 fnv;
    const Params& p = secret.params;
    for (int32_t v : {p.n, p.big_n, p.k, p.bk_l, p.bk_bg_bit, p.ks_t,
                      p.ks_base_bit})
        fnv.Mix(static_cast<uint64_t>(v));
    fnv.Mix(std::bit_cast<uint64_t>(p.lwe_noise_stddev));
    fnv.Mix(std::bit_cast<uint64_t>(p.tlwe_noise_stddev));
    for (int32_t bit : secret.lwe_key.key)
        fnv.Mix(static_cast<uint64_t>(bit));
    for (const IntPolynomial& poly : secret.tlwe_key.key)
        for (int32_t c : poly.coefs) fnv.Mix(static_cast<uint64_t>(c));
    // 0 is reserved for "no identity"; remap the (2^-64) collision.
    return KeyId{fnv.h == 0 ? UINT64_C(1) : fnv.h};
}

LweSample LweLinearXor(const LweSample& a, bool a_linear, const LweSample& b,
                       bool b_linear) {
    return LinearCombine(a_linear ? 1 : 2, a, b_linear ? 1 : 2, b, kQuarter);
}

LweSample LweLinearXnor(const LweSample& a, bool a_linear, const LweSample& b,
                        bool b_linear) {
    return LinearCombine(a_linear ? 1 : 2, a, b_linear ? 1 : 2, b, -kQuarter);
}

LweSample LweLinearNot(const LweSample& a) {
    LweSample out = a;
    out.Negate();
    return out;
}

LweSample GateEvaluator::Constant(bool value) const {
    LweSample s(params().n);
    s.SetTrivial(value ? kEighth : -kEighth);
    return s;
}

LweSample GateEvaluator::Not(const LweSample& a) const {
    LweSample s = a;
    s.Negate();
    return s;
}

LweSample GateEvaluator::LinearBootstrap(int32_t coef_a, const LweSample& a,
                                         int32_t coef_b, const LweSample& b,
                                         Torus32 offset,
                                         BootstrapScratch* scratch) {
    auto t0 = Clock::now();
    LweSample combo = LinearCombine(coef_a, a, coef_b, b, offset);
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    LweSample rotated = BootstrapWithoutKeySwitch(kEighth, combo, *key_,
                                                  scratch);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    LweSample out = key_->ksk().Apply(rotated);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(1);
    return out;
}

LweSample GateEvaluator::And(const LweSample& a, const LweSample& b,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, +1, b, -kEighth, scratch);
}

LweSample GateEvaluator::Nand(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, -1, b, kEighth, scratch);
}

LweSample GateEvaluator::Or(const LweSample& a, const LweSample& b,
                            BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, +1, b, kEighth, scratch);
}

LweSample GateEvaluator::Nor(const LweSample& a, const LweSample& b,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, -1, b, -kEighth, scratch);
}

LweSample GateEvaluator::Xor(const LweSample& a, const LweSample& b,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(+2, a, +2, b, kQuarter, scratch);
}

LweSample GateEvaluator::Xnor(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(+2, a, +2, b, -kQuarter, scratch);
}

LweSample GateEvaluator::Xor(const LweSample& a, bool a_linear,
                             const LweSample& b, bool b_linear,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(a_linear ? 1 : 2, a, b_linear ? 1 : 2, b, kQuarter,
                           scratch);
}

LweSample GateEvaluator::Xnor(const LweSample& a, bool a_linear,
                              const LweSample& b, bool b_linear,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(a_linear ? 1 : 2, a, b_linear ? 1 : 2, b, -kQuarter,
                           scratch);
}

LweSample GateEvaluator::LinXor(const LweSample& a, bool a_linear,
                                const LweSample& b, bool b_linear) {
    auto t0 = Clock::now();
    LweSample out = LweLinearXor(a, a_linear, b, b_linear);
    profile_.AddLinearNanos(NanosSince(t0));
    return out;
}

LweSample GateEvaluator::LinXnor(const LweSample& a, bool a_linear,
                                 const LweSample& b, bool b_linear) {
    auto t0 = Clock::now();
    LweSample out = LweLinearXnor(a, a_linear, b, b_linear);
    profile_.AddLinearNanos(NanosSince(t0));
    return out;
}

LweSample GateEvaluator::LinNot(const LweSample& a) {
    auto t0 = Clock::now();
    LweSample out = LweLinearNot(a);
    profile_.AddLinearNanos(NanosSince(t0));
    return out;
}

LweSample GateEvaluator::AndNY(const LweSample& a, const LweSample& b,
                               BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, +1, b, -kEighth, scratch);
}

LweSample GateEvaluator::AndYN(const LweSample& a, const LweSample& b,
                               BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, -1, b, -kEighth, scratch);
}

LweSample GateEvaluator::OrNY(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, +1, b, kEighth, scratch);
}

LweSample GateEvaluator::OrYN(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, -1, b, kEighth, scratch);
}

namespace {

/** Reshapes an LWE sample in place; preserves the buffer when n matches. */
void EnsureN(LweSample& s, int32_t n) {
    if (s.N() != n) s = LweSample(n);
}

}  // namespace

void GateEvaluator::BatchedLinearBootstrap(const BatchGateSpec* specs,
                                           int32_t count,
                                           BatchScratch* scratch) {
    if (count <= 0) return;
    BatchScratch local;
    BatchScratch& s = scratch != nullptr ? *scratch : local;

    auto t0 = Clock::now();
    if (static_cast<int32_t>(s.combo.size()) < count) s.combo.resize(count);
    if (static_cast<int32_t>(s.rotated_lwe.size()) < count)
        s.rotated_lwe.resize(count);
    s.in_ptrs.resize(count);
    s.out_ptrs.resize(count);
    for (int32_t i = 0; i < count; ++i) {
        const BatchGateSpec& g = specs[i];
        EnsureN(s.combo[i], g.a->N());
        LweLinearCombineInto(g.coef_a, ViewOf(*g.a), g.coef_b, ViewOf(*g.b),
                             g.offset, ViewOf(s.combo[i]));
        s.in_ptrs[i] = &s.combo[i];
        s.out_ptrs[i] = &s.rotated_lwe[i];
    }
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    BatchedBootstrapWithoutKeySwitch(kEighth, s.in_ptrs.data(),
                                     s.out_ptrs.data(), count, *key_, &s);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    for (int32_t i = 0; i < count; ++i)
        *specs[i].out = key_->ksk().Apply(s.rotated_lwe[i]);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(static_cast<uint64_t>(count));
}

void GateEvaluator::BatchedLinearBootstrap(const BatchGateViewSpec* specs,
                                           int32_t count,
                                           BatchScratch* scratch) {
    if (count <= 0) return;
    BatchScratch local;
    BatchScratch& s = scratch != nullptr ? *scratch : local;

    auto t0 = Clock::now();
    if (static_cast<int32_t>(s.combo.size()) < count) s.combo.resize(count);
    if (static_cast<int32_t>(s.rotated_lwe.size()) < count)
        s.rotated_lwe.resize(count);
    s.in_ptrs.resize(count);
    s.out_ptrs.resize(count);
    // Every lane's inputs are consumed here, before any lane output is
    // written below — the alias-safety contract of BatchGateViewSpec.
    for (int32_t i = 0; i < count; ++i) {
        const BatchGateViewSpec& g = specs[i];
        EnsureN(s.combo[i], g.a.n);
        LweLinearCombineInto(g.coef_a, g.a, g.coef_b, g.b, g.offset,
                             ViewOf(s.combo[i]));
        s.in_ptrs[i] = &s.combo[i];
        s.out_ptrs[i] = &s.rotated_lwe[i];
    }
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    BatchedBootstrapWithoutKeySwitch(kEighth, s.in_ptrs.data(),
                                     s.out_ptrs.data(), count, *key_, &s);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    for (int32_t i = 0; i < count; ++i)
        key_->ksk().ApplyInto(s.rotated_lwe[i], specs[i].out);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(static_cast<uint64_t>(count));
}

void GateEvaluator::LinearBootstrapInto(int32_t coef_a, LweCView a,
                                        int32_t coef_b, LweCView b,
                                        Torus32 offset, LweView out,
                                        BootstrapScratch* scratch) {
    BootstrapScratch local;
    BootstrapScratch& s = scratch != nullptr ? *scratch : local;

    auto t0 = Clock::now();
    EnsureN(s.combo, a.n);
    LweLinearCombineInto(coef_a, a, coef_b, b, offset, ViewOf(s.combo));
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    const LweSample& rotated =
        BootstrapWithoutKeySwitchInScratch(kEighth, s.combo, *key_, s);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    key_->ksk().ApplyInto(rotated, out);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(1);
}

void GateEvaluator::LinCombineInto(int32_t coef_a, LweCView a, int32_t coef_b,
                                   LweCView b, Torus32 offset, LweView out) {
    auto t0 = Clock::now();
    LweLinearCombineInto(coef_a, a, coef_b, b, offset, out);
    profile_.AddLinearNanos(NanosSince(t0));
}

void GateEvaluator::LinNotInto(LweCView a, LweView out) {
    auto t0 = Clock::now();
    LweNegateInto(a, out);
    profile_.AddLinearNanos(NanosSince(t0));
}

LweSample GateEvaluator::Mux(const LweSample& a, const LweSample& b,
                             const LweSample& c, BootstrapScratch* scratch) {
    auto t0 = Clock::now();
    LweSample and_ab(params().n);
    and_ab.SetTrivial(-kEighth);
    and_ab.AddTo(a);
    and_ab.AddTo(b);
    LweSample andny_ac(params().n);
    andny_ac.SetTrivial(-kEighth);
    andny_ac.SubTo(a);
    andny_ac.AddTo(c);
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    LweSample u = BootstrapWithoutKeySwitch(kEighth, and_ab, *key_, scratch);
    LweSample v = BootstrapWithoutKeySwitch(kEighth, andny_ac, *key_,
                                            scratch);
    u.AddTo(v);
    u.AddConstant(kEighth);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    LweSample out = key_->ksk().Apply(u);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(2);
    return out;
}

}  // namespace pytfhe::tfhe
