#include "tfhe/gates.h"

#include <chrono>

namespace pytfhe::tfhe {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

// +1/8 and +1/4 on the discretized torus.
constexpr Torus32 kEighth = UINT32_C(1) << 29;
constexpr Torus32 kQuarter = UINT32_C(1) << 30;

}  // namespace

LweSample GateEvaluator::Constant(bool value) const {
    LweSample s(params().n);
    s.SetTrivial(value ? kEighth : -kEighth);
    return s;
}

LweSample GateEvaluator::Not(const LweSample& a) const {
    LweSample s = a;
    s.Negate();
    return s;
}

LweSample GateEvaluator::LinearBootstrap(int32_t sign_a, const LweSample& a,
                                         int32_t sign_b, const LweSample& b,
                                         Torus32 offset, int32_t scale,
                                         BootstrapScratch* scratch) {
    auto t0 = Clock::now();
    LweSample combo(params().n);
    combo.SetTrivial(offset);
    if (sign_a > 0) {
        combo.AddTo(a);
    } else {
        combo.SubTo(a);
    }
    if (sign_b > 0) {
        combo.AddTo(b);
    } else {
        combo.SubTo(b);
    }
    if (scale == 2) {
        // XOR/XNOR use 2*(a +- b) + offset; the offset must not be doubled,
        // so re-apply it after doubling.
        combo.b -= offset;
        combo.Double();
        combo.b += offset;
    }
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    LweSample rotated = BootstrapWithoutKeySwitch(kEighth, combo, *key_,
                                                  scratch);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    LweSample out = key_->ksk().Apply(rotated);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(1);
    return out;
}

LweSample GateEvaluator::And(const LweSample& a, const LweSample& b,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, +1, b, -kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::Nand(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, -1, b, kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::Or(const LweSample& a, const LweSample& b,
                            BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, +1, b, kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::Nor(const LweSample& a, const LweSample& b,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, -1, b, -kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::Xor(const LweSample& a, const LweSample& b,
                             BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, +1, b, kQuarter, /*scale=*/2, scratch);
}

LweSample GateEvaluator::Xnor(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, +1, b, -kQuarter, /*scale=*/2, scratch);
}

LweSample GateEvaluator::AndNY(const LweSample& a, const LweSample& b,
                               BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, +1, b, -kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::AndYN(const LweSample& a, const LweSample& b,
                               BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, -1, b, -kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::OrNY(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(-1, a, +1, b, kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::OrYN(const LweSample& a, const LweSample& b,
                              BootstrapScratch* scratch) {
    return LinearBootstrap(+1, a, -1, b, kEighth, /*scale=*/1, scratch);
}

LweSample GateEvaluator::Mux(const LweSample& a, const LweSample& b,
                             const LweSample& c, BootstrapScratch* scratch) {
    auto t0 = Clock::now();
    LweSample and_ab(params().n);
    and_ab.SetTrivial(-kEighth);
    and_ab.AddTo(a);
    and_ab.AddTo(b);
    LweSample andny_ac(params().n);
    andny_ac.SetTrivial(-kEighth);
    andny_ac.SubTo(a);
    andny_ac.AddTo(c);
    profile_.AddLinearNanos(NanosSince(t0));

    auto t1 = Clock::now();
    LweSample u = BootstrapWithoutKeySwitch(kEighth, and_ab, *key_, scratch);
    LweSample v = BootstrapWithoutKeySwitch(kEighth, andny_ac, *key_,
                                            scratch);
    u.AddTo(v);
    u.AddConstant(kEighth);
    profile_.AddBlindRotateNanos(NanosSince(t1));

    auto t2 = Clock::now();
    LweSample out = key_->ksk().Apply(u);
    profile_.AddKeySwitchNanos(NanosSince(t2));
    profile_.AddBootstraps(2);
    return out;
}

}  // namespace pytfhe::tfhe
