/**
 * @file
 * Negacyclic FFT for fast polynomial multiplication in T[X]/(X^N + 1).
 *
 * A polynomial p of degree < N over X^N + 1 is evaluated at the odd 2N-th
 * roots of unity x_k = exp(-i*pi*(2k+1)/N). Pointwise products of these
 * evaluations correspond to negacyclic convolution. The evaluation is
 * computed as a cyclic FFT of the "twisted" sequence p_j * exp(-i*pi*j/N).
 *
 * This is the workhorse of the external product: the bootstrapping key is
 * stored in the frequency domain once, and each CMUX performs l*(k+1)
 * forward transforms of gadget digits, a pointwise multiply-accumulate, and
 * k+1 inverse transforms.
 *
 * Round-off behaves as a small additional noise term (fraction of the torus
 * around 2^-26 for N=1024), far below the scheme noise; tests verify the FFT
 * path against the exact O(N^2) reference multiplier.
 */
#ifndef PYTFHE_TFHE_FFT_H
#define PYTFHE_TFHE_FFT_H

#include <cstdint>
#include <memory>
#include <vector>

#include "tfhe/polynomial.h"

namespace pytfhe::tfhe {

/** Frequency-domain image of a polynomial: N complex values (re, im split). */
struct FreqPolynomial {
    std::vector<double> re;
    std::vector<double> im;

    FreqPolynomial() = default;
    explicit FreqPolynomial(int32_t n) : re(n, 0.0), im(n, 0.0) {}

    int32_t Size() const { return static_cast<int32_t>(re.size()); }
    void Clear() {
        std::fill(re.begin(), re.end(), 0.0);
        std::fill(im.begin(), im.end(), 0.0);
    }

    /** this += a * b, pointwise complex multiply-accumulate. */
    void AddMul(const FreqPolynomial& a, const FreqPolynomial& b);
};

/**
 * Plan holding twiddle-factor tables for a fixed transform size N
 * (a power of two). One plan per parameter set; plans are reusable and
 * const-thread-safe after construction.
 */
class NegacyclicFft {
  public:
    explicit NegacyclicFft(int32_t n);

    int32_t Size() const { return n_; }

    /** Forward transform of an integer polynomial. */
    void Forward(FreqPolynomial& out, const IntPolynomial& p) const;
    /** Forward transform of a torus polynomial (signed interpretation). */
    void Forward(FreqPolynomial& out, const TorusPolynomial& p) const;
    /** Inverse transform with rounding back onto the discretized torus. */
    void Inverse(TorusPolynomial& out, const FreqPolynomial& f) const;

    /** result = a * b over X^N + 1 via the frequency domain. */
    void Multiply(TorusPolynomial& result, const IntPolynomial& a,
                  const TorusPolynomial& b) const;

  private:
    void ForwardReal(FreqPolynomial& out, const double* coefs) const;
    void FftInPlace(double* re, double* im, bool inverse) const;

    int32_t n_;
    int32_t log2n_;
    std::vector<double> twist_re_, twist_im_;      ///< exp(-i*pi*j/N)
    std::vector<double> untwist_re_, untwist_im_;  ///< exp(+i*pi*j/N) / N
    std::vector<double> tw_re_, tw_im_;            ///< FFT twiddles, by stage
    std::vector<int32_t> bitrev_;
};

/** Shared FFT plan cache keyed by size. */
const NegacyclicFft& GetFftPlan(int32_t n);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_FFT_H
