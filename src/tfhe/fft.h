/**
 * @file
 * Folded negacyclic FFT for fast polynomial multiplication in T[X]/(X^N + 1).
 *
 * TFHE works in the negacyclic ring R_N = R[X]/(X^N + 1). Writing h = N/2,
 * the complexified ring C[X]/(X^N + 1) splits as
 * C[Y]/(Y^h + i) x C[Y]/(Y^h - i); for *real* inputs either factor
 * determines the other, so a real negacyclic polynomial is fully described
 * by h complex values. Concretely, the ring map X^h -> -i sends
 *
 *     p(X)  |->  a(Y) = sum_{j<h} (p[j] - i*p[j+h]) Y^j   mod Y^h + i,
 *
 * and a(Y) is evaluated at the h roots of Y^h = -i by one h-point cyclic
 * FFT of the twisted sequence a_j * exp(-i*pi*j/N). Pointwise products of
 * these h evaluations correspond exactly to negacyclic convolution, with
 * half the butterflies of the naive full-size complex FFT over N points.
 *
 * This is the workhorse of the external product: the bootstrapping key is
 * stored in the frequency domain once, and each CMUX performs l*(k+1)
 * forward transforms of gadget digits, a pointwise multiply-accumulate, and
 * k+1 inverse transforms.
 *
 * Precision: digits are bounded by Bg/2 <= 2^7 and torus values by 2^31, so
 * every intermediate of the transform stays below N * 2^7 * 2^31 <= 2^49 for
 * N <= 2048 — comfortably inside the 53-bit double mantissa. Round-off
 * behaves as a small additional noise term (fraction of the torus around
 * 2^-26 for N=1024), far below the scheme noise; tests verify the folded
 * path against the exact O(N^2) reference multiplier and against the
 * full-size ReferenceFft.
 *
 * Allocation discipline: Forward/Inverse/Multiply never allocate in steady
 * state. Callers on hot paths own FftScratch objects explicitly (one per
 * worker thread); the scratch-less overloads allocate per call and exist
 * for tests and cold paths only. No function in this header hides state in
 * `static thread_local` storage.
 */
#ifndef PYTFHE_TFHE_FFT_H
#define PYTFHE_TFHE_FFT_H

#include <cstdint>
#include <vector>

#include "tfhe/polynomial.h"

namespace pytfhe::tfhe {

/**
 * Frequency-domain image of a real negacyclic polynomial of degree < N:
 * h = N/2 complex values in split re/im layout. Both planes live in one
 * 32-byte-aligned allocation so the pointwise kernels vectorize to FMA.
 */
class FreqPolynomial {
  public:
    FreqPolynomial() = default;
    /** Allocates `half` zeroed complex slots (half = N/2). */
    explicit FreqPolynomial(int32_t half) { ResizeHalf(half); }
    FreqPolynomial(const FreqPolynomial& other) { *this = other; }
    FreqPolynomial(FreqPolynomial&& other) noexcept { *this = std::move(other); }
    FreqPolynomial& operator=(const FreqPolynomial& other);
    FreqPolynomial& operator=(FreqPolynomial&& other) noexcept;
    ~FreqPolynomial() { Free(); }

    /** Number of complex coefficients (N/2 for ring degree N). */
    int32_t HalfSize() const { return half_; }

    double* Re() { return data_; }
    const double* Re() const { return data_; }
    double* Im() { return data_ + stride_; }
    const double* Im() const { return data_ + stride_; }

    /**
     * Reshapes to `half` complex slots. No-op (contents preserved) when the
     * size already matches; reallocates and zero-fills otherwise.
     */
    void ResizeHalf(int32_t half);
    void Clear();

    /** this += a * b, pointwise complex multiply-accumulate over h slots. */
    void AddMul(const FreqPolynomial& a, const FreqPolynomial& b);

  private:
    void Free();

    double* data_ = nullptr;
    int32_t half_ = 0;
    int32_t stride_ = 0;  ///< half rounded up so Im() is 32-byte aligned too.
};

/** Reusable temporaries for the const-input Inverse and for Multiply. */
struct FftScratch {
    FreqPolynomial a, b, acc;
};

/**
 * Frequency-domain image of B independent negacyclic polynomials in a
 * structure-of-arrays batch layout: slot j of lane l lives at index
 * j * Lanes() + l of each plane, so the B lane values of one slot are
 * contiguous (a four-lane group is one AVX2 vector) and the twist/twiddle
 * factor of slot j is broadcast across the whole group. Both planes share
 * one 32-byte-aligned allocation, like FreqPolynomial.
 *
 * Every batched kernel applies the exact same sequence of IEEE operations
 * to each lane as the scalar FreqPolynomial path applies to one polynomial,
 * so batched results are bit-identical to B scalar runs.
 */
class BatchFreqPolynomial {
  public:
    BatchFreqPolynomial() = default;
    BatchFreqPolynomial(int32_t half, int32_t lanes) { Resize(half, lanes); }
    BatchFreqPolynomial(const BatchFreqPolynomial&) = delete;
    BatchFreqPolynomial& operator=(const BatchFreqPolynomial&) = delete;
    BatchFreqPolynomial(BatchFreqPolynomial&& other) noexcept {
        *this = std::move(other);
    }
    BatchFreqPolynomial& operator=(BatchFreqPolynomial&& other) noexcept;
    ~BatchFreqPolynomial() { Free(); }

    int32_t HalfSize() const { return half_; }
    int32_t Lanes() const { return lanes_; }

    double* Re() { return data_; }
    const double* Re() const { return data_; }
    double* Im() { return data_ + stride_; }
    const double* Im() const { return data_ + stride_; }

    /**
     * Reshapes to `half` complex slots of `lanes` lanes. No-op (contents
     * preserved) when the shape matches; reallocates and zero-fills
     * otherwise.
     */
    void Resize(int32_t half, int32_t lanes);
    void Clear();

    /**
     * this += a * b pointwise, with the single polynomial `b` broadcast
     * across every lane of `a` — the batched external product streams each
     * bootstrapping-key row once for the whole batch.
     */
    void AddMulBroadcast(const BatchFreqPolynomial& a,
                         const FreqPolynomial& b);

  private:
    void Free();

    double* data_ = nullptr;
    int32_t half_ = 0;
    int32_t lanes_ = 0;
    size_t stride_ = 0;  ///< half * lanes rounded up for Im() alignment.
};

/**
 * Plan holding twist and twiddle tables for a fixed ring degree N
 * (a power of two). One plan per parameter set; plans are reusable and
 * const-thread-safe after construction. All transforms run over h = N/2
 * complex points.
 */
class NegacyclicFft {
  public:
    explicit NegacyclicFft(int32_t n);

    /** Ring degree N. */
    int32_t Size() const { return n_; }
    /** Transform length h = N/2 (slots of a FreqPolynomial). */
    int32_t Half() const { return half_; }

    /** Forward transform of an integer polynomial. Never allocates once
     * `out` has the right size. */
    void Forward(FreqPolynomial& out, const IntPolynomial& p) const;
    /** Forward transform of a torus polynomial (signed interpretation). */
    void Forward(FreqPolynomial& out, const TorusPolynomial& p) const;

    /**
     * Forward transform of data already packed into `f`:
     * f.Re()[j] = p[j], f.Im()[j] = p[j + N/2]. Twist and FFT run in place.
     * This is the fused entry used by the gadget-decomposition path.
     */
    void ForwardPacked(FreqPolynomial& f) const;

    /**
     * Inverse transform with rounding back onto the discretized torus.
     * Destroys `f` (the accumulator is dead after the inverse on every hot
     * path, so no copy is needed).
     */
    void InverseInPlace(TorusPolynomial& out, FreqPolynomial& f) const;

    /** Non-destructive inverse; copies `f` into `scratch`. */
    void Inverse(TorusPolynomial& out, const FreqPolynomial& f,
                 FftScratch& scratch) const;
    /** Convenience overload; allocates a scratch per call (cold paths). */
    void Inverse(TorusPolynomial& out, const FreqPolynomial& f) const;

    /** result = a * b over X^N + 1 via the frequency domain. */
    void Multiply(TorusPolynomial& result, const IntPolynomial& a,
                  const TorusPolynomial& b, FftScratch& scratch) const;
    /** Convenience overload; allocates a scratch per call (cold paths). */
    void Multiply(TorusPolynomial& result, const IntPolynomial& a,
                  const TorusPolynomial& b) const;

    /**
     * Batched ForwardPacked: every lane of `f` is packed like ForwardPacked
     * (Re()[slot] = p[slot], Im()[slot] = p[slot + N/2]); twist and FFT run
     * in place with one shared twiddle load per FFT stage slot, broadcast
     * across the lanes. Bit-exact per lane vs ForwardPacked.
     */
    void ForwardPackedBatch(BatchFreqPolynomial& f) const;

    /**
     * Batched inverse transform with torus rounding: lane l of `f` is
     * rounded into *outs[l] (outs holds f.Lanes() pointers). Destroys `f`.
     * Bit-exact per lane vs InverseInPlace.
     */
    void InverseInPlaceBatch(TorusPolynomial* const* outs,
                             BatchFreqPolynomial& f) const;

  private:
    void FftInPlace(double* re, double* im, bool inverse) const;

    int32_t n_;
    int32_t half_;
    int32_t log2half_;
    std::vector<double> twist_re_, twist_im_;      ///< exp(-i*pi*j/N)
    std::vector<double> untwist_re_, untwist_im_;  ///< exp(+i*pi*j/N) / h
    std::vector<double> tw_re_, tw_im_;  ///< h-point FFT twiddles, by stage
    std::vector<int32_t> bitrev_;        ///< bit reversal over h
};

/**
 * The pre-folding full-size transform: an N-point complex FFT of the
 * twisted real sequence, kept verbatim as an independent oracle. Used only
 * by tests to prove that the folded kernel is equivalent at the decryption
 * level; allocates freely and is not part of any hot path.
 */
class ReferenceFft {
  public:
    explicit ReferenceFft(int32_t n);

    int32_t Size() const { return n_; }

    /** result = a * b over X^N + 1 via the full-size frequency domain. */
    void Multiply(TorusPolynomial& result, const IntPolynomial& a,
                  const TorusPolynomial& b) const;

  private:
    void FftInPlace(std::vector<double>& re, std::vector<double>& im,
                    bool inverse) const;
    void ForwardReal(std::vector<double>& re, std::vector<double>& im,
                     const double* coefs) const;

    int32_t n_;
    int32_t log2n_;
    std::vector<double> twist_re_, twist_im_;
    std::vector<double> untwist_re_, untwist_im_;
    std::vector<double> tw_re_, tw_im_;
    std::vector<int32_t> bitrev_;
};

/**
 * Shared FFT plan cache keyed by size. The hot read path is lock-free (one
 * atomic load per lookup); a mutex serializes only first-time construction
 * of a plan. Plans live for the process lifetime.
 */
const NegacyclicFft& GetFftPlan(int32_t n);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_FFT_H
