#include "tfhe/integer.h"

#include <cassert>

namespace pytfhe::tfhe {

uint64_t RadixContext::Modulus() const {
    uint64_t m = 1;
    for (int32_t i = 0; i < num_digits_; ++i)
        m *= static_cast<uint64_t>(ctx_.Modulus());
    return m;
}

RadixInteger RadixContext::Encrypt(uint64_t value, const LweKey& key,
                                   double noise_stddev, Rng& rng) const {
    RadixInteger out;
    out.digits.reserve(num_digits_);
    const uint64_t p = static_cast<uint64_t>(ctx_.Modulus());
    for (int32_t i = 0; i < num_digits_; ++i) {
        out.digits.push_back(
            ctx_.Encrypt(static_cast<int32_t>(value % p), key, noise_stddev,
                         rng));
        value /= p;
    }
    return out;
}

uint64_t RadixContext::Decrypt(const RadixInteger& x, const LweKey& key) const {
    assert(x.digits.size() == static_cast<size_t>(num_digits_));
    uint64_t value = 0;
    const uint64_t p = static_cast<uint64_t>(ctx_.Modulus());
    for (int32_t i = num_digits_ - 1; i >= 0; --i)
        value = value * p +
                static_cast<uint64_t>(ctx_.Decrypt(x.digits[i], key));
    return value;
}

LweSample RadixContext::RawAdd(const LweSample& a, const LweSample& b) const {
    // phi_a + phi_b = (2(a + b) + 2) / (4P); re-center with -1/(4P). Valid
    // while a + b < P = p^2, which 2(p-1) and (2p-1)+(p-1) both satisfy
    // for p >= 2 and p >= 3 respectively.
    LweSample out = a;
    out.AddTo(b);
    out.AddConstant(-ModSwitchToTorus32(1, 4 * ctx_.CiphertextSpace()));
    return out;
}

RadixInteger RadixContext::Add(const RadixInteger& a,
                               const RadixInteger& b) const {
    assert(a.digits.size() == b.digits.size());
    const int32_t p = ctx_.Modulus();
    RadixInteger out;
    out.digits.reserve(a.digits.size());
    LweSample carry = ctx_.TrivialDigit(0);
    for (size_t i = 0; i < a.digits.size(); ++i) {
        // Linear sum a_i + b_i + c_in stays below p^2; two bootstraps
        // split it back into digit and carry.
        const LweSample sum =
            RawAdd(RawAdd(a.digits[i], b.digits[i]), carry);
        out.digits.push_back(
            ctx_.ApplyRaw([p](int32_t s) { return s % p; }, sum));
        if (i + 1 < a.digits.size())
            carry = ctx_.ApplyRaw([p](int32_t s) { return s / p; }, sum);
    }
    return out;
}

RadixInteger RadixContext::Mul(const RadixInteger& a,
                               const RadixInteger& b) const {
    assert(a.digits.size() == b.digits.size());
    const int32_t n = num_digits_;
    RadixInteger acc;
    for (int32_t i = 0; i < n; ++i)
        acc.digits.push_back(ctx_.TrivialDigit(0));

    // Schoolbook: every partial-product row contributes a low-digit row
    // and a high-digit row, each a valid radix integer.
    for (int32_t i = 0; i < n; ++i) {
        RadixInteger lo_row, hi_row;
        for (int32_t k = 0; k < n; ++k) {
            lo_row.digits.push_back(ctx_.TrivialDigit(0));
            hi_row.digits.push_back(ctx_.TrivialDigit(0));
        }
        for (int32_t j = 0; i + j < n; ++j) {
            lo_row.digits[i + j] = ctx_.Mul(a.digits[i], b.digits[j]);
            if (i + j + 1 < n)
                hi_row.digits[i + j + 1] =
                    ctx_.MulHigh(a.digits[i], b.digits[j]);
        }
        acc = Add(Add(acc, lo_row), hi_row);
    }
    return acc;
}

LweSample RadixContext::Eq(const RadixInteger& a, const RadixInteger& b) const {
    assert(a.digits.size() == b.digits.size());
    LweSample all = ctx_.TrivialDigit(1);
    for (size_t i = 0; i < a.digits.size(); ++i) {
        const LweSample digit_eq = ctx_.Apply2(
            [](int32_t x, int32_t y) { return x == y ? 1 : 0; }, a.digits[i],
            b.digits[i]);
        all = ctx_.Apply2([](int32_t x, int32_t y) { return x & y; }, all,
                          digit_eq);
    }
    return all;
}

LweSample RadixContext::Lt(const RadixInteger& a, const RadixInteger& b) const {
    assert(a.digits.size() == b.digits.size());
    assert(ctx_.Modulus() >= 3 && "Lt needs a 3-valued comparison digit");
    // state in {0, 1}; scan from LSB to MSB so higher digits dominate.
    LweSample state = ctx_.TrivialDigit(0);
    for (size_t i = 0; i < a.digits.size(); ++i) {
        // c = 2 (less), 1 (equal), 0 (greater).
        const LweSample c = ctx_.Apply2(
            [](int32_t x, int32_t y) { return x < y ? 2 : (x == y ? 1 : 0); },
            a.digits[i], b.digits[i]);
        state = ctx_.Apply2(
            [](int32_t cv, int32_t prev) {
                return cv == 2 ? 1 : (cv == 1 ? prev : 0);
            },
            c, state);
    }
    return state;
}

}  // namespace pytfhe::tfhe
