#include "tfhe/keyswitch.h"

#include <cassert>

namespace pytfhe::tfhe {

KeySwitchKey::KeySwitchKey(const LweKey& in_key, const LweKey& out_key,
                           int32_t t, int32_t base_bit, double noise_stddev,
                           Rng& rng)
    : n_in_(in_key.N()),
      n_out_(out_key.N()),
      t_(t),
      base_bit_(base_bit),
      base_(1 << base_bit) {
    keys_.reserve(static_cast<size_t>(n_in_) * t_ * base_);
    for (int32_t i = 0; i < n_in_; ++i) {
        for (int32_t j = 0; j < t_; ++j) {
            for (int32_t v = 0; v < base_; ++v) {
                // Message: v * s_i / base^{j+1} on the torus.
                const Torus32 mu =
                    static_cast<uint32_t>(v * in_key.key[i])
                    << (32 - base_bit_ * (j + 1));
                if (v == 0) {
                    // Never subtracted during Apply; store a zero sample to
                    // keep indexing simple without spending RNG draws.
                    keys_.emplace_back(n_out_);
                } else {
                    keys_.push_back(LweEncrypt(mu, noise_stddev, out_key, rng));
                }
            }
        }
    }
}

KeySwitchKey KeySwitchKey::FromRaw(int32_t n_in, int32_t n_out, int32_t t,
                                   int32_t base_bit,
                                   std::vector<LweSample> keys) {
    KeySwitchKey k;
    k.n_in_ = n_in;
    k.n_out_ = n_out;
    k.t_ = t;
    k.base_bit_ = base_bit;
    k.base_ = 1 << base_bit;
    assert(keys.size() == static_cast<size_t>(n_in) * t * k.base_);
    k.keys_ = std::move(keys);
    return k;
}

LweSample KeySwitchKey::Apply(const LweSample& in) const {
    LweSample out(n_out_);
    ApplyInto(in, ViewOf(out));
    return out;
}

void KeySwitchKey::ApplyInto(const LweSample& in, LweView out) const {
    assert(in.N() == n_in_);
    assert(out.n == n_out_);
    LweSetTrivial(out, in.b);
    // Rounding offset: round each a_i to t digits instead of truncating.
    const uint32_t prec_offset = UINT32_C(1)
                                 << (32 - (1 + base_bit_ * t_));
    const uint32_t mask = static_cast<uint32_t>(base_ - 1);
    for (int32_t i = 0; i < n_in_; ++i) {
        const uint32_t ai = in.a[i] + prec_offset;
        for (int32_t j = 0; j < t_; ++j) {
            const uint32_t digit = (ai >> (32 - base_bit_ * (j + 1))) & mask;
            if (digit == 0) continue;
            const LweSample& k = At(i, j, static_cast<int32_t>(digit));
            for (int32_t c = 0; c < n_out_; ++c) out.a[c] -= k.a[c];
            *out.b -= k.b;
        }
    }
}

size_t KeySwitchKey::ByteSize() const {
    return keys_.size() * (static_cast<size_t>(n_out_) + 1) * sizeof(Torus32);
}

}  // namespace pytfhe::tfhe
