#include "tfhe/tgsw.h"

#include <algorithm>
#include <cassert>

namespace pytfhe::tfhe {

namespace {

/**
 * Rounding offset so truncation becomes round-to-nearest with digits
 * recentered into [-Bg/2, Bg/2).
 */
uint32_t DecomposeOffset(int32_t l, int32_t bg_bit) {
    const int32_t half_bg = INT32_C(1) << (bg_bit - 1);
    uint32_t offset = 0;
    for (int32_t j = 1; j <= l; ++j)
        offset += static_cast<uint32_t>(half_bg) << (32 - j * bg_bit);
    return offset;
}

/**
 * Fused gadget decomposition of one TLWE component, written directly into
 * the folded FFT's packed input layout: dec[j].Re()[p] is digit j of
 * coefficient p and dec[j].Im()[p] is digit j of coefficient p + N/2.
 */
void DecomposePacked(std::vector<FreqPolynomial>& dec,
                     const TorusPolynomial& poly, int32_t l, int32_t bg_bit,
                     uint32_t offset) {
    const int32_t half = poly.Size() / 2;
    const int32_t half_bg = INT32_C(1) << (bg_bit - 1);
    const uint32_t mask = (UINT32_C(1) << bg_bit) - 1;
    const Torus32* __restrict c = poly.coefs.data();
    for (int32_t j = 0; j < l; ++j) {
        const int32_t shift = 32 - bg_bit * (j + 1);
        double* __restrict re = dec[j].Re();
        double* __restrict im = dec[j].Im();
        for (int32_t p = 0; p < half; ++p) {
            const uint32_t lo = c[p] + offset;
            const uint32_t hi = c[p + half] + offset;
            re[p] = static_cast<double>(
                static_cast<int32_t>((lo >> shift) & mask) - half_bg);
            im[p] = static_cast<double>(
                static_cast<int32_t>((hi >> shift) & mask) - half_bg);
        }
    }
}

/**
 * Batched DecomposePacked: digit j of coefficient p, lane `lane` of
 * component ci lands at dec[j].Re()[p * b + lane] (upper-half coefficients
 * on the Im plane) — the structure-of-arrays layout of BatchFreqPolynomial.
 * Pure integer arithmetic plus the exact int32 -> double conversion,
 * identical per lane to the scalar path.
 */
void DecomposePackedBatch(std::vector<BatchFreqPolynomial>& dec,
                          const std::vector<TLweSample>& samples, int32_t b,
                          int32_t ci, int32_t l, int32_t bg_bit,
                          uint32_t offset) {
    const int32_t half = samples[0].BigN() / 2;
    const int32_t half_bg = INT32_C(1) << (bg_bit - 1);
    const uint32_t mask = (UINT32_C(1) << bg_bit) - 1;
    // Slot-outer, lane-inner so every store is contiguous in the
    // slot-major batch layout (lane-outer would write with stride b and
    // thrash the fill buffers — measurably slower at batch 4/8).
    constexpr int32_t kMaxLanes = 64;
    const Torus32* srcs[kMaxLanes];
    for (int32_t base = 0; base < b; base += kMaxLanes) {
        const int32_t lanes = std::min(b - base, kMaxLanes);
        for (int32_t lane = 0; lane < lanes; ++lane)
            srcs[lane] = samples[base + lane].a[ci].coefs.data();
        for (int32_t j = 0; j < l; ++j) {
            const int32_t shift = 32 - bg_bit * (j + 1);
            double* __restrict re = dec[j].Re();
            double* __restrict im = dec[j].Im();
            for (int32_t p = 0; p < half; ++p) {
                const size_t at = static_cast<size_t>(p) * b + base;
                for (int32_t lane = 0; lane < lanes; ++lane) {
                    const uint32_t lo = srcs[lane][p] + offset;
                    const uint32_t hi = srcs[lane][p + half] + offset;
                    re[at + lane] = static_cast<double>(
                        static_cast<int32_t>((lo >> shift) & mask) - half_bg);
                    im[at + lane] = static_cast<double>(
                        static_cast<int32_t>((hi >> shift) & mask) - half_bg);
                }
            }
        }
    }
}

}  // namespace

TGswSample TGswEncrypt(int32_t message, int32_t l, int32_t bg_bit,
                       double noise_stddev, const TLweKey& key, Rng& rng) {
    const int32_t n = key.BigN();
    const int32_t k = key.K();
    TGswSample out;
    out.l = l;
    out.bg_bit = bg_bit;
    out.rows.reserve(static_cast<size_t>(k + 1) * l);
    TorusPolynomial zero(n);
    for (int32_t i = 0; i <= k; ++i) {
        for (int32_t j = 0; j < l; ++j) {
            TLweSample row = TLweEncrypt(zero, noise_stddev, key, rng);
            const Torus32 h = UINT32_C(1) << (32 - bg_bit * (j + 1));
            row.a[i].coefs[0] += static_cast<uint32_t>(message) * h;
            out.rows.push_back(std::move(row));
        }
    }
    return out;
}

TGswSampleFft TGswToFft(const TGswSample& sample, const NegacyclicFft& fft) {
    TGswSampleFft out;
    out.l = sample.l;
    out.bg_bit = sample.bg_bit;
    out.rows.resize(sample.rows.size());
    for (size_t r = 0; r < sample.rows.size(); ++r) {
        const TLweSample& row = sample.rows[r];
        out.rows[r].resize(row.a.size());
        for (size_t c = 0; c < row.a.size(); ++c)
            fft.Forward(out.rows[r][c], row.a[c]);
    }
    return out;
}

void TGswDecompose(std::vector<IntPolynomial>& out, const TLweSample& sample,
                   int32_t l, int32_t bg_bit) {
    const int32_t n = sample.BigN();
    const int32_t k = sample.K();
    const int32_t half_bg = INT32_C(1) << (bg_bit - 1);
    const uint32_t mask = (UINT32_C(1) << bg_bit) - 1;
    const uint32_t offset = DecomposeOffset(l, bg_bit);

    out.assign(static_cast<size_t>(k + 1) * l, IntPolynomial(n));
    for (int32_t c = 0; c <= k; ++c) {
        const TorusPolynomial& poly = sample.a[c];
        for (int32_t p = 0; p < n; ++p) {
            const uint32_t t = poly.coefs[p] + offset;
            for (int32_t j = 0; j < l; ++j) {
                const uint32_t digit = (t >> (32 - bg_bit * (j + 1))) & mask;
                out[c * l + j].coefs[p] =
                    static_cast<int32_t>(digit) - half_bg;
            }
        }
    }
}

void TGswExternalProduct(TLweSample& result, const TGswSampleFft& c,
                         const TLweSample& sample, const NegacyclicFft& fft,
                         ExternalProductScratch* scratch) {
    ExternalProductScratch local;
    ExternalProductScratch& s = scratch != nullptr ? *scratch : local;

    const int32_t n = sample.BigN();
    const int32_t k = sample.K();
    const int32_t half = fft.Half();
    assert(fft.Size() == n);
    assert(static_cast<size_t>((k + 1) * c.l) == c.rows.size());

    if (static_cast<int32_t>(s.dec.size()) != c.l) s.dec.resize(c.l);
    for (auto& f : s.dec) f.ResizeHalf(half);
    if (static_cast<int32_t>(s.acc.size()) != k + 1) s.acc.resize(k + 1);
    for (auto& f : s.acc) {
        f.ResizeHalf(half);
        f.Clear();
    }

    const uint32_t offset = DecomposeOffset(c.l, c.bg_bit);
    for (int32_t ci = 0; ci <= k; ++ci) {
        DecomposePacked(s.dec, sample.a[ci], c.l, c.bg_bit, offset);
        for (int32_t j = 0; j < c.l; ++j) {
            fft.ForwardPacked(s.dec[j]);
            const std::vector<FreqPolynomial>& row = c.rows[ci * c.l + j];
            for (int32_t col = 0; col <= k; ++col)
                s.acc[col].AddMul(s.dec[j], row[col]);
        }
    }

    if (result.BigN() != n || result.K() != k) result = TLweSample(n, k);
    for (int32_t col = 0; col <= k; ++col)
        fft.InverseInPlace(result.a[col], s.acc[col]);
}

void TGswExternalProductBatch(std::vector<TLweSample>& result,
                              const TGswSampleFft& c,
                              const std::vector<TLweSample>& samples,
                              int32_t b, const NegacyclicFft& fft,
                              BatchExternalProductScratch& s) {
    assert(b >= 1 && static_cast<size_t>(b) <= samples.size());
    const int32_t n = samples[0].BigN();
    const int32_t k = samples[0].K();
    const int32_t half = fft.Half();
    assert(fft.Size() == n);
    assert(static_cast<size_t>((k + 1) * c.l) == c.rows.size());

    if (static_cast<int32_t>(s.dec.size()) != c.l) s.dec.resize(c.l);
    for (auto& f : s.dec) f.Resize(half, b);
    if (static_cast<int32_t>(s.acc.size()) != k + 1) s.acc.resize(k + 1);
    for (auto& f : s.acc) {
        f.Resize(half, b);
        f.Clear();
    }

    // Same (ci, j, col) loop structure as the scalar product, so every
    // lane's accumulation order — and therefore every rounding — matches.
    const uint32_t offset = DecomposeOffset(c.l, c.bg_bit);
    for (int32_t ci = 0; ci <= k; ++ci) {
        DecomposePackedBatch(s.dec, samples, b, ci, c.l, c.bg_bit, offset);
        for (int32_t j = 0; j < c.l; ++j) {
            fft.ForwardPackedBatch(s.dec[j]);
            const std::vector<FreqPolynomial>& row = c.rows[ci * c.l + j];
            for (int32_t col = 0; col <= k; ++col)
                s.acc[col].AddMulBroadcast(s.dec[j], row[col]);
        }
    }

    if (static_cast<int32_t>(result.size()) < b) result.resize(b);
    s.inv_outs.resize(b);
    for (int32_t lane = 0; lane < b; ++lane) {
        TLweSample& r = result[lane];
        if (r.BigN() != n || r.K() != k) r = TLweSample(n, k);
    }
    for (int32_t col = 0; col <= k; ++col) {
        for (int32_t lane = 0; lane < b; ++lane)
            s.inv_outs[lane] = &result[lane].a[col];
        fft.InverseInPlaceBatch(s.inv_outs.data(), s.acc[col]);
    }
}

void TGswCMux(TLweSample& result, const TGswSampleFft& c, const TLweSample& d1,
              const TLweSample& d0, const NegacyclicFft& fft,
              ExternalProductScratch* scratch) {
    ExternalProductScratch local;
    ExternalProductScratch& s = scratch != nullptr ? *scratch : local;
    s.cmux_diff = d1;  // No allocation once shapes match across calls.
    s.cmux_diff.SubTo(d0);
    TGswExternalProduct(result, c, s.cmux_diff, fft, &s);
    result.AddTo(d0);
}

}  // namespace pytfhe::tfhe
