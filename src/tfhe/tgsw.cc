#include "tfhe/tgsw.h"

#include <cassert>

namespace pytfhe::tfhe {

TGswSample TGswEncrypt(int32_t message, int32_t l, int32_t bg_bit,
                       double noise_stddev, const TLweKey& key, Rng& rng) {
    const int32_t n = key.BigN();
    const int32_t k = key.K();
    TGswSample out;
    out.l = l;
    out.bg_bit = bg_bit;
    out.rows.reserve(static_cast<size_t>(k + 1) * l);
    TorusPolynomial zero(n);
    for (int32_t i = 0; i <= k; ++i) {
        for (int32_t j = 0; j < l; ++j) {
            TLweSample row = TLweEncrypt(zero, noise_stddev, key, rng);
            const Torus32 h = UINT32_C(1) << (32 - bg_bit * (j + 1));
            row.a[i].coefs[0] += static_cast<uint32_t>(message) * h;
            out.rows.push_back(std::move(row));
        }
    }
    return out;
}

TGswSampleFft TGswToFft(const TGswSample& sample, const NegacyclicFft& fft) {
    TGswSampleFft out;
    out.l = sample.l;
    out.bg_bit = sample.bg_bit;
    out.rows.resize(sample.rows.size());
    for (size_t r = 0; r < sample.rows.size(); ++r) {
        const TLweSample& row = sample.rows[r];
        out.rows[r].resize(row.a.size());
        for (size_t c = 0; c < row.a.size(); ++c)
            fft.Forward(out.rows[r][c], row.a[c]);
    }
    return out;
}

void TGswDecompose(std::vector<IntPolynomial>& out, const TLweSample& sample,
                   int32_t l, int32_t bg_bit) {
    const int32_t n = sample.BigN();
    const int32_t k = sample.K();
    const int32_t bg = INT32_C(1) << bg_bit;
    const int32_t half_bg = bg / 2;
    const uint32_t mask = static_cast<uint32_t>(bg - 1);

    // Rounding offset so truncation becomes round-to-nearest with digits
    // recentered into [-Bg/2, Bg/2).
    uint32_t offset = 0;
    for (int32_t j = 1; j <= l; ++j)
        offset += static_cast<uint32_t>(half_bg) << (32 - j * bg_bit);

    out.assign(static_cast<size_t>(k + 1) * l, IntPolynomial(n));
    for (int32_t c = 0; c <= k; ++c) {
        const TorusPolynomial& poly = sample.a[c];
        for (int32_t p = 0; p < n; ++p) {
            const uint32_t t = poly.coefs[p] + offset;
            for (int32_t j = 0; j < l; ++j) {
                const uint32_t digit = (t >> (32 - bg_bit * (j + 1))) & mask;
                out[c * l + j].coefs[p] =
                    static_cast<int32_t>(digit) - half_bg;
            }
        }
    }
}

void TGswExternalProduct(TLweSample& result, const TGswSampleFft& c,
                         const TLweSample& sample, const NegacyclicFft& fft) {
    const int32_t n = sample.BigN();
    const int32_t k = sample.K();
    assert(static_cast<size_t>((k + 1) * c.l) == c.rows.size());

    static thread_local std::vector<IntPolynomial> dec;
    TGswDecompose(dec, sample, c.l, c.bg_bit);

    static thread_local std::vector<FreqPolynomial> acc;
    static thread_local FreqPolynomial dec_fft;
    acc.assign(k + 1, FreqPolynomial(n));

    for (size_t r = 0; r < dec.size(); ++r) {
        fft.Forward(dec_fft, dec[r]);
        for (int32_t col = 0; col <= k; ++col)
            acc[col].AddMul(dec_fft, c.rows[r][col]);
    }

    if (result.BigN() != n || result.K() != k) result = TLweSample(n, k);
    for (int32_t col = 0; col <= k; ++col)
        fft.Inverse(result.a[col], acc[col]);
}

void TGswCMux(TLweSample& result, const TGswSampleFft& c, const TLweSample& d1,
              const TLweSample& d0, const NegacyclicFft& fft) {
    TLweSample diff = d1;
    diff.SubTo(d0);
    TGswExternalProduct(result, c, diff, fft);
    result.AddTo(d0);
}

}  // namespace pytfhe::tfhe
