/**
 * @file
 * Analytic noise model for the TFHE gate-bootstrapping pipeline.
 *
 * Predicts the variance added by each stage (fresh encryption, the gate's
 * linear combination, blind rotation, key switching, mod switch) from the
 * parameter set alone, and derives the per-gate decryption-failure
 * probability. Tests validate the model against empirically measured
 * phase noise; users can call CheckParams to sanity-check custom
 * parameter sets before deploying them.
 *
 * Formulas follow the TFHE paper's worst-case-independence heuristics
 * (CGGI20, Sections 4-6); they are upper-bound flavored, so measured
 * variance should land at or below the prediction.
 */
#ifndef PYTFHE_TFHE_NOISE_H
#define PYTFHE_TFHE_NOISE_H

#include <string>

#include "tfhe/params.h"

namespace pytfhe::tfhe {

/** Variance budget of one bootstrapped gate, in torus^2 units. */
struct NoiseAnalysis {
    double fresh_lwe_variance;       ///< sigma_lwe^2.
    double blind_rotate_variance;    ///< Added by n CMUXes.
    double key_switch_variance;      ///< Added by the key switch.
    double gate_output_variance;     ///< Total on a gate's output sample.
    double mod_switch_variance;      ///< Phase error of the 2N mod switch.

    /**
     * Variance of the phase at the bootstrap decision boundary for the
     * worst gate (XOR doubles the inputs): 4 * (2 gate outputs) plus the
     * mod-switch error.
     */
    double worst_gate_input_variance;

    /** Probability one gate decrypts/bootstraps to the wrong bit. */
    double gate_failure_probability;

    std::string ToString() const;
};

/** Runs the model over a parameter set. */
NoiseAnalysis AnalyzeNoise(const Params& params);

/**
 * Failure probability of a phase with the given variance staying within
 * +-margin of its nominal value (Gaussian tail, two-sided).
 */
double FailureProbability(double variance, double margin);

/**
 * True when the parameter set evaluates gates with failure probability
 * below the given bound (default 2^-32 per gate).
 */
bool CheckParams(const Params& params, double max_failure = 2.3e-10);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_NOISE_H
