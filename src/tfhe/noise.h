/**
 * @file
 * Analytic noise model for the TFHE gate-bootstrapping pipeline.
 *
 * Predicts the variance added by each stage (fresh encryption, the gate's
 * linear combination, blind rotation, key switching, mod switch) from the
 * parameter set alone, and derives the per-gate decryption-failure
 * probability. Tests validate the model against empirically measured
 * phase noise; users can call CheckParams to sanity-check custom
 * parameter sets before deploying them.
 *
 * Formulas follow the TFHE paper's worst-case-independence heuristics
 * (CGGI20, Sections 4-6); they are upper-bound flavored, so measured
 * variance should land at or below the prediction.
 */
#ifndef PYTFHE_TFHE_NOISE_H
#define PYTFHE_TFHE_NOISE_H

#include <string>

#include "tfhe/params.h"

namespace pytfhe::tfhe {

/** Decision margin of the gate bit encoding (+-1/8). */
constexpr double kGateDecisionMargin = 1.0 / 8.0;
/** Decision margin of the linear bit encoding (+-1/4) used by elision. */
constexpr double kLinearDecisionMargin = 1.0 / 4.0;
/** Default per-gate failure bound (2^-32), shared with CheckParams. */
constexpr double kDefaultMaxGateFailure = 2.3e-10;
/**
 * Default multiplicative slack the bootstrap-elision pass applies to
 * every predicted variance before comparing against the failure bound,
 * absorbing model error (the CGGI formulas are heuristics, not proofs).
 */
constexpr double kDefaultElisionSafetyMargin = 2.0;

/** Variance budget of one bootstrapped gate, in torus^2 units. */
struct NoiseAnalysis {
    double fresh_lwe_variance;       ///< sigma_lwe^2.
    double blind_rotate_variance;    ///< Added by n CMUXes.
    double key_switch_variance;      ///< Added by the key switch.
    double gate_output_variance;     ///< Total on a gate's output sample.
    double mod_switch_variance;      ///< Phase error of the 2N mod switch.

    /**
     * Variance of the phase at the bootstrap decision boundary for the
     * worst gate (XOR doubles the inputs): 4 * (2 gate outputs) plus the
     * mod-switch error.
     */
    double worst_gate_input_variance;

    /** Probability one gate decrypts/bootstraps to the wrong bit. */
    double gate_failure_probability;

    /** Safety multiplier applied to variances when judging elision. */
    double elision_safety_margin;

    /**
     * Longest chain of elided (linear) XORs the noise budget supports: the
     * largest k such that a chain accumulating k+1 bootstrapped operands,
     * consumed by one more bootstrapped XOR, still decides correctly with
     * probability >= 1 - kDefaultMaxGateFailure under the safety margin.
     * 0 means the parameter set cannot afford any elision.
     */
    int32_t max_linear_depth;

    std::string ToString() const;
};

/** Runs the model over a parameter set. */
NoiseAnalysis AnalyzeNoise(
    const Params& params,
    double elision_safety_margin = kDefaultElisionSafetyMargin);

/**
 * Failure probability of a phase with the given variance staying within
 * +-margin of its nominal value (Gaussian tail, two-sided).
 */
double FailureProbability(double variance, double margin);

/**
 * True when the parameter set evaluates gates with failure probability
 * below the given bound (default 2^-32 per gate). When `report` is
 * non-null it receives the full NoiseAnalysis::ToString() breakdown —
 * including the elision safety margin and the chained-linear-depth limit,
 * so a parameter-set check also explains what the bootstrap-elision pass
 * is allowed to do under that set.
 */
bool CheckParams(const Params& params,
                 double max_failure = kDefaultMaxGateFailure,
                 std::string* report = nullptr);

/**
 * Largest number of chained linear XORs a bootstrapped consumer can
 * absorb while its decision failure probability stays under max_failure
 * (variance first inflated by safety_margin). Capped at 64.
 */
int32_t MaxLinearDepth(const NoiseAnalysis& a, double max_failure,
                       double safety_margin);

/**
 * Noise verdict for multi-bit programmable bootstrapping (tfhe/multibit.h).
 *
 * A kLut gate's packed input is the linear combination sum w_i * c_i of
 * bootstrapped digit samples plus a public bias; its phase must land in
 * the correct 1/(2p)-wide LUT slot, i.e. within margin = 1/(4p) of the
 * slot center. Under the worst-case-independence heuristic the packed
 * variance is (sum w_i^2) * gate_output_variance + mod_switch_variance.
 */
struct MultibitNoiseCheck {
    int32_t message_modulus = 0;     ///< p the check ran for.
    int64_t weight_sq = 0;           ///< The sum of squared weights judged.
    double packed_variance = 0.0;    ///< At the blind-rotation input.
    double margin = 0.0;             ///< 1 / (4p): half a LUT slot.
    double failure_probability = 0.0;
    bool fits = false;               ///< Whole verdict, reason below if not.
    std::string reason;              ///< Human-readable refusal, "" if fits.
};

/**
 * Checks that the parameter set evaluates p-ary LUT gates whose operand
 * weights satisfy sum w_i^2 <= weight_sq with slot-decision failure below
 * max_failure (variance first inflated by safety_margin, like elision).
 * Also enforces the structural PBS requirements: p a power of two in
 * [2, 16] and 2p <= N (each message needs at least two test-vector slots
 * and the whole domain must fit the upper half-circle).
 */
MultibitNoiseCheck CheckMultibitParams(
    const Params& params, int32_t message_modulus, int64_t weight_sq,
    double max_failure = kDefaultMaxGateFailure,
    double safety_margin = kDefaultElisionSafetyMargin);

/**
 * Largest sum of squared LUT operand weights the parameter set supports
 * at message modulus p under the same bound, or 0 when even weight_sq = 1
 * fails (the caller should fall back to boolean gates). Capped at 4096.
 */
int64_t MaxMultibitWeightBudget(
    const Params& params, int32_t message_modulus,
    double max_failure = kDefaultMaxGateFailure,
    double safety_margin = kDefaultElisionSafetyMargin);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_NOISE_H
