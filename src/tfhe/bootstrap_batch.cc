#include "tfhe/bootstrap_batch.h"

#include <cassert>

namespace pytfhe::tfhe {

namespace {

void EnsureShape(TLweSample& s, int32_t n, int32_t k) {
    if (s.BigN() != n || s.K() != k) s = TLweSample(n, k);
}

void EnsureSize(TorusPolynomial& p, int32_t n) {
    if (p.Size() != n) p = TorusPolynomial(n);
}

void EnsureLanes(BatchScratch& s, int32_t b, const Params& p) {
    if (static_cast<int32_t>(s.acc.size()) < b) s.acc.resize(b);
    if (static_cast<int32_t>(s.rotated.size()) < b) s.rotated.resize(b);
    if (static_cast<int32_t>(s.product.size()) < b) s.product.resize(b);
    if (static_cast<int32_t>(s.bara.size()) < b) s.bara.resize(b);
    for (int32_t l = 0; l < b; ++l) {
        EnsureShape(s.acc[l], p.big_n, p.k);
        s.bara[l].resize(p.n);
    }
}

}  // namespace

void BatchedBlindRotate(std::vector<TLweSample>& accs,
                        const std::vector<std::vector<int32_t>>& bara,
                        int32_t b, const BootstrappingKey& key,
                        BatchScratch& s) {
    const Params& p = key.params();
    assert(static_cast<int32_t>(accs.size()) >= b);
    assert(static_cast<int32_t>(bara.size()) >= b);
    if (static_cast<int32_t>(s.rotated.size()) < b) s.rotated.resize(b);
    if (static_cast<int32_t>(s.product.size()) < b) s.product.resize(b);
    for (int32_t l = 0; l < b; ++l) {
        assert(static_cast<int32_t>(bara[l].size()) == p.n);
        EnsureShape(s.rotated[l], p.big_n, p.k);
        EnsureShape(s.product[l], p.big_n, p.k);
    }
    for (int32_t i = 0; i < p.n; ++i) {
        // When every lane's coefficient is zero the whole CMUX is skipped,
        // exactly like the scalar per-lane `continue`. A zero lane inside a
        // mixed column rides through with an exactly-zero rotation
        // difference, whose product is exactly zero (see file comment in
        // bootstrap_batch.h), so adding it is also identical to skipping.
        bool any = false;
        for (int32_t l = 0; l < b; ++l) any = any || bara[l][i] != 0;
        if (!any) continue;
        for (int32_t l = 0; l < b; ++l) {
            // acc <- CMUX(bk_i, X^a * acc, acc)
            //      = acc + bk_i x (X^a - 1) * acc.
            TLweMulByXai(s.rotated[l], bara[l][i], accs[l]);
            s.rotated[l].SubTo(accs[l]);
        }
        TGswExternalProductBatch(s.product, key.bk()[i], s.rotated, b,
                                 key.fft(), s.ep);
        for (int32_t l = 0; l < b; ++l) accs[l].AddTo(s.product[l]);
    }
}

void BatchedBootstrapWithoutKeySwitch(Torus32 mu, const LweSample* const* in,
                                      LweSample* const* out, int32_t b,
                                      const BootstrappingKey& key,
                                      BatchScratch* scratch) {
    BatchScratch local;
    BatchScratch& s = scratch != nullptr ? *scratch : local;
    const Params& p = key.params();
    const int32_t two_n = 2 * p.big_n;
    EnsureLanes(s, b, p);

    EnsureSize(s.testvect, p.big_n);
    for (auto& c : s.testvect.coefs) c = mu;
    EnsureSize(s.shifted, p.big_n);

    for (int32_t l = 0; l < b; ++l) {
        const LweSample& sample = *in[l];
        assert(sample.N() == p.n);
        const int32_t barb = ModSwitchFromTorus32(sample.b, two_n);
        for (int32_t i = 0; i < p.n; ++i)
            s.bara[l][i] = ModSwitchFromTorus32(sample.a[i], two_n);
        MulByXai(s.shifted, two_n - barb, s.testvect);
        s.acc[l].SetTrivial(s.shifted);
    }

    BatchedBlindRotate(s.acc, s.bara, b, key, s);
    for (int32_t l = 0; l < b; ++l) *out[l] = TLweExtractSample(s.acc[l], 0);
}

void BatchedGateBootstrap(Torus32 mu, const LweSample* const* in,
                          LweSample* const* out, int32_t b,
                          const BootstrappingKey& key, BatchScratch* scratch) {
    BatchScratch local;
    BatchScratch& s = scratch != nullptr ? *scratch : local;
    BatchedBootstrapWithoutKeySwitch(mu, in, out, b, key, &s);
    for (int32_t l = 0; l < b; ++l) *out[l] = key.ksk().Apply(*out[l]);
}

}  // namespace pytfhe::tfhe
