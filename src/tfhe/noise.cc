#include "tfhe/noise.h"

#include <cmath>
#include <sstream>

namespace pytfhe::tfhe {

NoiseAnalysis AnalyzeNoise(const Params& p, double elision_safety_margin) {
    NoiseAnalysis a;
    a.fresh_lwe_variance = p.lwe_noise_stddev * p.lwe_noise_stddev;

    // Blind rotation: n external products. Each adds
    //   (k+1) * l * N * beta^2 * sigma_bk^2         (key noise term)
    // + (1 + k*N) * eps^2                           (decomposition error)
    // with beta = Bg/2 and eps = 1 / (2 * Bg^l).
    const double beta = p.Bg() / 2.0;
    const double sigma_bk2 = p.tlwe_noise_stddev * p.tlwe_noise_stddev;
    const double eps = 1.0 / (2.0 * std::pow(p.Bg(), p.bk_l));
    const double per_cmux =
        (p.k + 1) * p.bk_l * p.big_n * beta * beta * sigma_bk2 +
        (1.0 + p.k * p.big_n) * eps * eps;
    a.blind_rotate_variance = p.n * per_cmux;

    // Key switching from dimension kN to n: every digit subtracts one key
    // sample (t per input coefficient), plus the rounding of each input
    // coefficient to t digits.
    const double sigma_ks2 = p.lwe_noise_stddev * p.lwe_noise_stddev;
    const double ks_rounding =
        std::pow(2.0, -2.0 * (p.ks_t * p.ks_base_bit + 1)) / 3.0;
    a.key_switch_variance =
        static_cast<double>(p.ExtractedN()) * (p.ks_t * sigma_ks2 + ks_rounding);

    a.gate_output_variance =
        a.blind_rotate_variance + a.key_switch_variance;

    // Mod switch to Z_2N: each of the n+1 coefficients is rounded to a
    // multiple of 1/(2N); uniform error of width 1/(2N) has variance
    // (1/2N)^2 / 12, scaled by the key's expected weight (n/2 + 1 terms).
    const double step = 1.0 / (2.0 * p.big_n);
    a.mod_switch_variance = (p.n / 2.0 + 1.0) * step * step / 12.0;

    // Worst linear combination: XOR computes 2*(a + b), amplifying each
    // input's variance by 4. Inputs are gate outputs (post-bootstrap).
    a.worst_gate_input_variance =
        4.0 * 2.0 * a.gate_output_variance + a.mod_switch_variance;

    // The decision margin of the gate encoding is 1/8: linear
    // combinations sit at distance 1/8 from the sign boundary.
    a.gate_failure_probability =
        FailureProbability(a.worst_gate_input_variance, kGateDecisionMargin);

    a.elision_safety_margin = elision_safety_margin;
    a.max_linear_depth =
        MaxLinearDepth(a, kDefaultMaxGateFailure, elision_safety_margin);
    return a;
}

int32_t MaxLinearDepth(const NoiseAnalysis& a, double max_failure,
                       double safety_margin) {
    // A chain of k linear XORs accumulates k+1 bootstrapped operands, each
    // with total coefficient 2 (coefficient 2 on entry, 1 on every later
    // hop), so its variance is 4*(k+1)*gate_output_variance. The binding
    // consumer is one more bootstrapped XOR, which adds a second
    // gate-domain operand (coefficient 2) plus the mod-switch error and
    // decides at the +-1/4 margin of the combined phase.
    int32_t depth = 0;
    for (int32_t k = 1; k <= 64; ++k) {
        const double variance =
            safety_margin * (4.0 * (k + 2) * a.gate_output_variance +
                             a.mod_switch_variance);
        if (FailureProbability(variance, kLinearDecisionMargin) > max_failure)
            break;
        depth = k;
    }
    return depth;
}

double FailureProbability(double variance, double margin) {
    if (variance <= 0) return 0.0;
    return std::erfc(margin / std::sqrt(2.0 * variance));
}

bool CheckParams(const Params& params, double max_failure,
                 std::string* report) {
    const NoiseAnalysis a = AnalyzeNoise(params);
    if (report != nullptr) *report = a.ToString();
    return a.gate_failure_probability <= max_failure;
}

MultibitNoiseCheck CheckMultibitParams(const Params& params,
                                       int32_t message_modulus,
                                       int64_t weight_sq, double max_failure,
                                       double safety_margin) {
    MultibitNoiseCheck c;
    c.message_modulus = message_modulus;
    c.weight_sq = weight_sq;
    const int32_t p = message_modulus;
    if (p < 2 || p > 16 || (p & (p - 1)) != 0) {
        c.reason = "message modulus " + std::to_string(p) +
                   " is not a power of two in [2, 16]";
        return c;
    }
    if (2 * p > params.big_n) {
        c.reason = "2p = " + std::to_string(2 * p) + " exceeds N = " +
                   std::to_string(params.big_n) +
                   " (each message needs >= 2 test-vector slots)";
        return c;
    }
    if (weight_sq < 1) {
        c.reason = "weight budget must be positive";
        return c;
    }
    const NoiseAnalysis a = AnalyzeNoise(params, safety_margin);
    c.packed_variance = static_cast<double>(weight_sq) *
                            a.gate_output_variance +
                        a.mod_switch_variance;
    c.margin = 1.0 / (4.0 * p);
    c.failure_probability =
        FailureProbability(safety_margin * c.packed_variance, c.margin);
    if (c.failure_probability > max_failure) {
        std::ostringstream os;
        os << "slot-decision failure " << c.failure_probability
           << " above bound " << max_failure << " at p = " << p
           << ", sum w^2 = " << weight_sq;
        c.reason = os.str();
        return c;
    }
    c.fits = true;
    return c;
}

int64_t MaxMultibitWeightBudget(const Params& params, int32_t message_modulus,
                                double max_failure, double safety_margin) {
    // failure = erfc(margin / sqrt(2 * safety * var)) is monotone in
    // weight_sq, so binary search would do; the cap is small enough that a
    // doubling scan plus backoff is simpler and equally cheap.
    int64_t best = 0;
    for (int64_t w = 1; w <= 4096; w = w < 64 ? w + 1 : w + w / 8) {
        if (CheckMultibitParams(params, message_modulus, w, max_failure,
                                safety_margin)
                .fits) {
            best = w;
        } else {
            break;
        }
    }
    return best;
}

std::string NoiseAnalysis::ToString() const {
    std::ostringstream os;
    os << "fresh lwe:        " << fresh_lwe_variance << "\n"
       << "blind rotate:     " << blind_rotate_variance << "\n"
       << "key switch:       " << key_switch_variance << "\n"
       << "gate output:      " << gate_output_variance << "\n"
       << "mod switch:       " << mod_switch_variance << "\n"
       << "worst gate input: " << worst_gate_input_variance << "\n"
       << "gate failure p:   " << gate_failure_probability << "\n"
       << "elision safety:   " << elision_safety_margin
       << "x variance slack\n"
       << "max linear depth: " << max_linear_depth
       << " chained elided XORs\n";
    return os.str();
}

}  // namespace pytfhe::tfhe
