/**
 * @file
 * Binary serialization for key material and ciphertexts.
 *
 * The cloud protocol of Fig. 1 ships data between machines: the client
 * uploads ciphertexts and the public evaluation key, the server returns
 * result ciphertexts. This module provides versioned little-endian
 * encodings for every transferable object. Secret keys serialize too (for
 * client-side persistence) — never send those to the server.
 *
 * Every Save* writes a 4-byte magic + 2-byte version header; every Load*
 * validates it and returns nullopt (with an error string) on mismatch or
 * truncation.
 */
#ifndef PYTFHE_TFHE_SERIALIZATION_H
#define PYTFHE_TFHE_SERIALIZATION_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "tfhe/bootstrap.h"
#include "tfhe/gates.h"

namespace pytfhe::tfhe {

void SaveParams(std::ostream& os, const Params& params);
std::optional<Params> LoadParams(std::istream& is,
                                 std::string* error = nullptr);

void SaveLweSample(std::ostream& os, const LweSample& sample);
std::optional<LweSample> LoadLweSample(std::istream& is,
                                       std::string* error = nullptr);

/** Batch of ciphertexts (the wire format for program inputs/outputs). */
void SaveLweSamples(std::ostream& os, const std::vector<LweSample>& samples);
std::optional<std::vector<LweSample>> LoadLweSamples(
    std::istream& is, std::string* error = nullptr);

/** Client-side secret key bundle. KEEP PRIVATE. */
void SaveSecretKeySet(std::ostream& os, const SecretKeySet& keys);
std::optional<SecretKeySet> LoadSecretKeySet(std::istream& is,
                                             std::string* error = nullptr);

/**
 * Public evaluation key: parameters, the FFT-domain bootstrapping key, and
 * the key-switching key. This is what the client uploads once.
 */
void SaveBootstrappingKey(std::ostream& os, const BootstrappingKey& key);
std::optional<BootstrappingKey> LoadBootstrappingKey(
    std::istream& is, std::string* error = nullptr);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_SERIALIZATION_H
