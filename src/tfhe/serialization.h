/**
 * @file
 * Binary serialization for key material and ciphertexts.
 *
 * The cloud protocol of Fig. 1 ships data between machines: the client
 * uploads ciphertexts and the public evaluation key, the server returns
 * result ciphertexts. This module provides versioned little-endian
 * encodings for every transferable object. Secret keys serialize too (for
 * client-side persistence) — never send those to the server.
 *
 * Wire format (version 3): 4-byte magic, 4-byte version, 8-byte body
 * length, body, 4-byte CRC32C of the body. The checksum catches the
 * corruption a network or disk can silently introduce — a bit-flipped
 * bootstrapping key would otherwise decrypt to wrong plaintexts with no
 * diagnostic. Version-2 files (unframed body, no checksum) still load.
 *
 * Every Load* validates the frame and returns nullopt on failure with an
 * error string naming the object section and the byte offset of the
 * problem. The Load*OrThrow wrappers raise the typed CorruptPayloadError
 * instead, for call sites that prefer exceptions over optionals.
 */
#ifndef PYTFHE_TFHE_SERIALIZATION_H
#define PYTFHE_TFHE_SERIALIZATION_H

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tfhe/bootstrap.h"
#include "tfhe/gates.h"

namespace pytfhe::tfhe {

/**
 * A serialized payload failed to load: truncated, bit-flipped (checksum
 * mismatch), wrong object type, or structurally invalid. The message is
 * the same offset-bearing diagnostic the optional-returning Load*
 * functions report through their error out-parameter.
 */
class CorruptPayloadError : public std::runtime_error {
  public:
    explicit CorruptPayloadError(const std::string& what)
        : std::runtime_error(what) {}
};

void SaveParams(std::ostream& os, const Params& params);
std::optional<Params> LoadParams(std::istream& is,
                                 std::string* error = nullptr);

void SaveLweSample(std::ostream& os, const LweSample& sample);
std::optional<LweSample> LoadLweSample(std::istream& is,
                                       std::string* error = nullptr);

/** Batch of ciphertexts (the wire format for program inputs/outputs). */
void SaveLweSamples(std::ostream& os, const std::vector<LweSample>& samples);
std::optional<std::vector<LweSample>> LoadLweSamples(
    std::istream& is, std::string* error = nullptr);

/** Client-side secret key bundle. KEEP PRIVATE. */
void SaveSecretKeySet(std::ostream& os, const SecretKeySet& keys);
std::optional<SecretKeySet> LoadSecretKeySet(std::istream& is,
                                             std::string* error = nullptr);

/**
 * Public evaluation key: parameters, the FFT-domain bootstrapping key, and
 * the key-switching key. This is what the client uploads once.
 */
void SaveBootstrappingKey(std::ostream& os, const BootstrappingKey& key);
std::optional<BootstrappingKey> LoadBootstrappingKey(
    std::istream& is, std::string* error = nullptr);

/**
 * Evaluation-key artifact: the KeyId plus the full public evaluation key
 * in one CRC32C-framed payload. This is the unit a serving key cache
 * evicts to disk and lazily reloads — the id must ride inside the frame
 * so a reloaded key keeps the tenant identity the registry indexes by
 * (a bare BootstrappingKey file loads with no identity and a registry
 * would refuse it).
 */
struct EvaluationKeyArtifact {
    KeyId key_id;
    BootstrappingKey key;
};

void SaveEvaluationKey(std::ostream& os, const BootstrappingKey& key,
                       KeyId key_id);
std::optional<EvaluationKeyArtifact> LoadEvaluationKey(
    std::istream& is, std::string* error = nullptr);

/**
 * Generic framed-record escape hatch for higher layers that define their
 * own body encodings (e.g. backend job checkpoints): wraps `body` in the
 * same version-3 frame (magic, version, u64 length, body, CRC32C) every
 * typed Save* above uses, so per-byte corruption and truncation are
 * detected identically. `section` names the record kind in diagnostics.
 * Unlike the key/ciphertext loaders, records reject legacy version-2
 * (unchecksummed) frames: new record kinds never shipped without a CRC,
 * so an un-checksummed body is corruption, not compatibility.
 */
void SaveFramedRecord(std::ostream& os, uint32_t magic,
                      const std::string& body);
std::optional<std::string> LoadFramedRecord(std::istream& is, uint32_t magic,
                                            const char* section,
                                            std::string* error = nullptr);

namespace detail {
template <typename T, typename LoadFn>
T LoadOrThrowImpl(std::istream& is, LoadFn load) {
    std::string error;
    std::optional<T> value = load(is, &error);
    if (!value) throw CorruptPayloadError(error);
    return *std::move(value);
}
}  // namespace detail

/** Throwing variants: CorruptPayloadError instead of nullopt. */
inline Params LoadParamsOrThrow(std::istream& is) {
    return detail::LoadOrThrowImpl<Params>(is, LoadParams);
}
inline LweSample LoadLweSampleOrThrow(std::istream& is) {
    return detail::LoadOrThrowImpl<LweSample>(is, LoadLweSample);
}
inline std::vector<LweSample> LoadLweSamplesOrThrow(std::istream& is) {
    return detail::LoadOrThrowImpl<std::vector<LweSample>>(is,
                                                           LoadLweSamples);
}
inline SecretKeySet LoadSecretKeySetOrThrow(std::istream& is) {
    return detail::LoadOrThrowImpl<SecretKeySet>(is, LoadSecretKeySet);
}
inline BootstrappingKey LoadBootstrappingKeyOrThrow(std::istream& is) {
    return detail::LoadOrThrowImpl<BootstrappingKey>(is,
                                                     LoadBootstrappingKey);
}
inline EvaluationKeyArtifact LoadEvaluationKeyOrThrow(std::istream& is) {
    return detail::LoadOrThrowImpl<EvaluationKeyArtifact>(is,
                                                          LoadEvaluationKey);
}
inline std::string LoadFramedRecordOrThrow(std::istream& is, uint32_t magic,
                                           const char* section) {
    std::string error;
    std::optional<std::string> body =
        LoadFramedRecord(is, magic, section, &error);
    if (!body) throw CorruptPayloadError(error);
    return *std::move(body);
}

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_SERIALIZATION_H
