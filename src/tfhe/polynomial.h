/**
 * @file
 * Polynomials over Z[X]/(X^N + 1) and T[X]/(X^N + 1).
 *
 * TFHE works in the negacyclic ring R_N = X^N + 1: multiplying by X^N equals
 * negation. IntPolynomial holds small integer coefficients (gadget digits,
 * key bits); TorusPolynomial holds Torus32 coefficients.
 */
#ifndef PYTFHE_TFHE_POLYNOMIAL_H
#define PYTFHE_TFHE_POLYNOMIAL_H

#include <cstdint>
#include <vector>

#include "tfhe/torus.h"

namespace pytfhe::tfhe {

/** Polynomial with int32 coefficients, degree < n, in Z[X]/(X^n + 1). */
struct IntPolynomial {
    std::vector<int32_t> coefs;

    IntPolynomial() = default;
    explicit IntPolynomial(int32_t n) : coefs(n, 0) {}

    int32_t Size() const { return static_cast<int32_t>(coefs.size()); }
    void Clear() { std::fill(coefs.begin(), coefs.end(), 0); }
};

/** Polynomial with Torus32 coefficients, degree < n, in T[X]/(X^n + 1). */
struct TorusPolynomial {
    std::vector<Torus32> coefs;

    TorusPolynomial() = default;
    explicit TorusPolynomial(int32_t n) : coefs(n, 0) {}

    int32_t Size() const { return static_cast<int32_t>(coefs.size()); }
    void Clear() { std::fill(coefs.begin(), coefs.end(), 0); }

    void AddTo(const TorusPolynomial& other);
    void SubTo(const TorusPolynomial& other);
};

/** result = poly * X^a in the negacyclic ring; a is taken modulo 2N. */
void MulByXai(TorusPolynomial& result, int32_t a, const TorusPolynomial& poly);

/** result = poly * (X^a - 1) in the negacyclic ring. */
void MulByXaiMinusOne(TorusPolynomial& result, int32_t a,
                      const TorusPolynomial& poly);

/**
 * Exact negacyclic product result = a * b over T[X]/(X^N + 1), computed with
 * O(N^2) integer arithmetic. Reference implementation used by tests and by
 * the FFT-free code path.
 */
void NaiveNegacyclicMul(TorusPolynomial& result, const IntPolynomial& a,
                        const TorusPolynomial& b);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_POLYNOMIAL_H
