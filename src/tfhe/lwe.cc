#include "tfhe/lwe.h"

#include <cassert>

namespace pytfhe::tfhe {

LweKey::LweKey(int32_t n, Rng& rng) : key(n) {
    for (int32_t i = 0; i < n; ++i) key[i] = rng.UniformBit();
}

void LweSample::SetTrivial(Torus32 mu) {
    std::fill(a.begin(), a.end(), 0);
    b = mu;
}

void LweSample::AddTo(const LweSample& other) {
    assert(N() == other.N());
    for (int32_t i = 0; i < N(); ++i) a[i] += other.a[i];
    b += other.b;
}

void LweSample::SubTo(const LweSample& other) {
    assert(N() == other.N());
    for (int32_t i = 0; i < N(); ++i) a[i] -= other.a[i];
    b -= other.b;
}

void LweSample::AddMulTo(const LweSample& other, int32_t k) {
    assert(N() == other.N());
    const uint32_t uk = static_cast<uint32_t>(k);
    for (int32_t i = 0; i < N(); ++i) a[i] += uk * other.a[i];
    b += uk * other.b;
}

void LweSample::Negate() {
    for (int32_t i = 0; i < N(); ++i) a[i] = -a[i];
    b = -b;
}

void LweSample::Double() {
    for (int32_t i = 0; i < N(); ++i) a[i] *= 2;
    b *= 2;
}

void LweSetTrivial(LweView out, Torus32 mu) {
    std::fill(out.a, out.a + out.n, 0);
    *out.b = mu;
}

void LweCopyInto(LweCView in, LweView out) {
    assert(in.n == out.n);
    std::copy(in.a, in.a + in.n, out.a);
    *out.b = *in.b;
}

void LweNegateInto(LweCView in, LweView out) {
    assert(in.n == out.n);
    for (int32_t i = 0; i < in.n; ++i) out.a[i] = -in.a[i];
    *out.b = -*in.b;
}

void LweLinearCombineInto(int32_t coef_a, LweCView a, int32_t coef_b,
                          LweCView b, Torus32 offset, LweView out) {
    assert(a.n == b.n && a.n == out.n);
    const uint32_t ua = static_cast<uint32_t>(coef_a);
    const uint32_t ub = static_cast<uint32_t>(coef_b);
    for (int32_t i = 0; i < out.n; ++i)
        out.a[i] = ua * a.a[i] + ub * b.a[i];
    *out.b = ua * *a.b + ub * *b.b + static_cast<uint32_t>(offset);
}

LweSample LweEncrypt(Torus32 mu, double noise_stddev, const LweKey& key,
                     Rng& rng) {
    const int32_t n = key.N();
    LweSample s(n);
    s.b = rng.GaussianTorus32(mu, noise_stddev);
    for (int32_t i = 0; i < n; ++i) {
        s.a[i] = rng.UniformTorus32();
        s.b += s.a[i] * static_cast<uint32_t>(key.key[i]);
    }
    return s;
}

Torus32 LwePhase(const LweSample& sample, const LweKey& key) {
    assert(sample.N() == key.N());
    Torus32 phase = sample.b;
    for (int32_t i = 0; i < sample.N(); ++i)
        phase -= sample.a[i] * static_cast<uint32_t>(key.key[i]);
    return phase;
}

Torus32 LweDecrypt(const LweSample& sample, const LweKey& key, int32_t msize) {
    const Torus32 phase = LwePhase(sample, key);
    return ModSwitchToTorus32(ModSwitchFromTorus32(phase, msize), msize);
}

bool LweDecryptBit(const LweSample& sample, const LweKey& key) {
    return static_cast<int32_t>(LwePhase(sample, key)) > 0;
}

LweSample LweEncryptBit(bool bit, double noise_stddev, const LweKey& key,
                        Rng& rng) {
    const Torus32 mu = ModSwitchToTorus32(1, 8);  // +1/8
    return LweEncrypt(bit ? mu : -mu, noise_stddev, key, rng);
}

}  // namespace pytfhe::tfhe
