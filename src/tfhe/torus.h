/**
 * @file
 * Torus arithmetic for the TFHE scheme.
 *
 * The real torus T = R/Z is discretized to 32 bits: a Torus32 value t
 * represents the real number int32_t(t) / 2^32 in [-1/2, 1/2). All torus
 * additions are exact modulo 1 because uint32_t arithmetic wraps modulo 2^32.
 */
#ifndef PYTFHE_TFHE_TORUS_H
#define PYTFHE_TFHE_TORUS_H

#include <cmath>
#include <cstdint>

namespace pytfhe::tfhe {

/** Discretized torus element: t represents int32_t(t) / 2^32 mod 1. */
using Torus32 = uint32_t;

/** Converts a real number (interpreted modulo 1) to a Torus32. */
inline Torus32 DoubleToTorus32(double d) {
    // Reduce modulo 1 first so that the scaled value fits in an int64_t.
    double frac = d - std::floor(d);
    return static_cast<Torus32>(
        static_cast<int64_t>(std::llround(frac * 4294967296.0)));
}

/** Converts a Torus32 to its canonical real representative in [-1/2, 1/2). */
inline double Torus32ToDouble(Torus32 t) {
    return static_cast<int32_t>(t) / 4294967296.0;
}

/**
 * Encodes message mu in Z_msize as the torus element mu/msize rounded to
 * 32 bits. Matches modSwitchToTorus32 from the reference TFHE library.
 */
inline Torus32 ModSwitchToTorus32(int32_t mu, int32_t msize) {
    uint64_t interval = ((UINT64_C(1) << 63) / static_cast<uint64_t>(msize)) * 2;
    uint64_t phase64 = static_cast<uint64_t>(static_cast<int64_t>(mu)) * interval;
    return static_cast<Torus32>(phase64 >> 32);
}

/**
 * Rounds a torus element to the nearest multiple of 1/msize and returns the
 * numerator in [0, msize). Used for the mod switch to Z_{2N} before blind
 * rotation.
 */
inline int32_t ModSwitchFromTorus32(Torus32 phase, int32_t msize) {
    uint64_t interval = ((UINT64_C(1) << 63) / static_cast<uint64_t>(msize)) * 2;
    uint64_t half = interval / 2;
    uint64_t phase64 = (static_cast<uint64_t>(phase) << 32) + half;
    return static_cast<int32_t>(phase64 / interval);
}

/** Approximates a torus element to `bits` fractional bits (round to nearest). */
inline Torus32 ApproxPhase(Torus32 phase, int32_t bits) {
    uint32_t interval = UINT32_C(1) << (32 - bits);
    uint32_t half = interval / 2;
    return (phase + half) & ~(interval - 1);
}

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_TORUS_H
