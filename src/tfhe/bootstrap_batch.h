/**
 * @file
 * Batched gate bootstrapping: B independent LWE samples through one
 * structure-of-arrays blind rotation.
 *
 * The batch pipeline is hybrid AoS/SoA. Integer-domain state (the TLWE
 * accumulators, rotations, mod switches) stays per-lane and exact; only the
 * floating-point pipeline of each CMUX is batched — gadget digits of all
 * lanes are decomposed into the interleaved BatchFreqPolynomial layout,
 * forward-transformed with one shared twiddle pass per FFT stage, and
 * multiplied against each bootstrapping-key row loaded once for the whole
 * batch (the MATCHA-style key-traffic amortization: the FFT-domain key is
 * tens of megabytes and otherwise streams once per gate).
 *
 * Every batched entry point is bit-exact per lane against its scalar
 * counterpart in bootstrap.h: the kernels perform the identical IEEE
 * operation sequence per lane (see fft_batch_kernels.h), integer paths are
 * exact by construction, and a lane whose mod-switched coefficient is zero
 * contributes an exactly-zero CMUX (zero digits transform to signed zeros
 * that round back to torus zero), matching the scalar skip.
 */
#ifndef PYTFHE_TFHE_BOOTSTRAP_BATCH_H
#define PYTFHE_TFHE_BOOTSTRAP_BATCH_H

#include "tfhe/bootstrap.h"

namespace pytfhe::tfhe {

/**
 * One bootstrapped gate inside a batch: the linear prelude
 * coef_a * (*a) + coef_b * (*b) + offset is bootstrapped to +-kGateMu and
 * key-switched into *out. Every two-input bootstrapped gate kind maps onto
 * this shape (the AND family with +-1 coefficients, XOR/XNOR with +-2 or
 * +-1 per operand domain), so a batch may freely mix gate kinds — they all
 * share one blind rotation's test vector.
 */
struct BatchGateSpec {
    int32_t coef_a = 0;
    const LweSample* a = nullptr;
    int32_t coef_b = 0;
    const LweSample* b = nullptr;
    Torus32 offset = 0;
    LweSample* out = nullptr;
};

/**
 * View flavor of BatchGateSpec for arena-resident operands: lanes read and
 * write ciphertext slots in place. All lane inputs are consumed (into the
 * scratch prelude buffers) before any lane output is written, so an out
 * view may alias any input view of the same call — including inputs of
 * *other* lanes — without affecting results.
 */
struct BatchGateViewSpec {
    int32_t coef_a = 0;
    LweCView a;
    int32_t coef_b = 0;
    LweCView b;
    Torus32 offset = 0;
    LweView out;
};

/**
 * All working buffers of one batched bootstrap, sized once per worker.
 * Buffers keep their capacity across calls with a fixed (parameter set,
 * batch size); a ragged final batch of a different size reallocates the
 * frequency planes once.
 */
struct BatchScratch {
    BatchExternalProductScratch ep;
    std::vector<TLweSample> acc, rotated, product;  ///< One per lane.
    std::vector<std::vector<int32_t>> bara;         ///< One per lane.
    TorusPolynomial testvect;        ///< Shared: all gates bootstrap to ±mu.
    TorusPolynomial shifted;         ///< Per-lane rotation staging buffer.
    std::vector<LweSample> combo;    ///< Linear preludes (evaluator path).
    std::vector<LweSample> rotated_lwe;  ///< Extracted pre-key-switch bits.
    std::vector<const LweSample*> in_ptrs;  ///< Gather list (evaluator path).
    std::vector<LweSample*> out_ptrs;       ///< Scatter list (evaluator path).
    std::vector<BatchGateSpec> specs;       ///< Dispatcher staging.
    std::vector<BatchGateViewSpec> view_specs;  ///< Dispatcher staging.
};

/**
 * In-place batched blind rotation of accs[0..b): lane l is multiplied by
 * X^{-sum_i bara[l][i] * s_i}, sharing each frequency-domain key row across
 * all lanes. Bit-exact per lane vs BlindRotate.
 */
void BatchedBlindRotate(std::vector<TLweSample>& accs,
                        const std::vector<std::vector<int32_t>>& bara,
                        int32_t b, const BootstrappingKey& key,
                        BatchScratch& scratch);

/**
 * Batched BootstrapWithoutKeySwitch: *out[l] encrypts ±mu under the
 * extracted key according to the phase sign of *in[l]. Pointer arrays let
 * callers gather scattered samples (executor value slots) without copies.
 */
void BatchedBootstrapWithoutKeySwitch(Torus32 mu, const LweSample* const* in,
                                      LweSample* const* out, int32_t b,
                                      const BootstrappingKey& key,
                                      BatchScratch* scratch = nullptr);

/**
 * Full batched gate bootstrap: blind rotate, extract, and key switch each
 * lane back to dimension n. Bit-exact per lane vs Bootstrap.
 */
void BatchedGateBootstrap(Torus32 mu, const LweSample* const* in,
                          LweSample* const* out, int32_t b,
                          const BootstrappingKey& key,
                          BatchScratch* scratch = nullptr);

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_BOOTSTRAP_BATCH_H
