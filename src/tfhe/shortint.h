/**
 * @file
 * Short integers over programmable bootstrapping — digit-wise homomorphic
 * arithmetic in the style the TFHE line of work evolved toward after the
 * paper (an "optional/extension" feature of this reproduction).
 *
 * A ShortIntContext fixes a message modulus p; ciphertexts encrypt digits
 * in [0, p) inside a ciphertext space of P = p^2 slots, leaving carry
 * room. Unary functions cost one programmable bootstrap. Bivariate
 * functions use the classic packing trick: s = p*b + a is a *linear*
 * combination of the two ciphertexts, always inside [0, P), so any
 * f(a, b) is a single lookup over s — addition with carry, multiplication,
 * comparison, min/max all cost exactly one bootstrap.
 *
 * Encoding: digit m maps to the slot-centered torus value (2m+1)/(4P),
 * which keeps every message in the negacyclic-safe upper half-circle.
 */
#ifndef PYTFHE_TFHE_SHORTINT_H
#define PYTFHE_TFHE_SHORTINT_H

#include <functional>

#include "tfhe/bootstrap.h"

namespace pytfhe::tfhe {

/** Digit-wise arithmetic context bound to a bootstrapping key. */
class ShortIntContext {
  public:
    /**
     * @param p   Message modulus (digits 0..p-1). Requires 2*p*p <= N of
     *            the key's parameter set.
     * @param key The evaluation key used for every bootstrap.
     */
    ShortIntContext(int32_t p, const BootstrappingKey& key);

    int32_t Modulus() const { return p_; }
    int32_t CiphertextSpace() const { return big_p_; }

    /** Torus encoding of digit m (slot-centered in the P-space). */
    Torus32 Encode(int32_t m) const;
    /** Decodes a phase back to [0, p) (callers decrypt to a phase first). */
    int32_t Decode(Torus32 phase) const;

    /** Client-side helpers. */
    LweSample Encrypt(int32_t m, const LweKey& key, double noise_stddev,
                      Rng& rng) const;
    int32_t Decrypt(const LweSample& ct, const LweKey& key) const;

    /** One bootstrap: y = f(x) for f : [0, p) -> [0, p). */
    LweSample Apply(const std::function<int32_t(int32_t)>& f,
                    const LweSample& x) const;

    /**
     * One bootstrap with f defined over the whole ciphertext space
     * [0, p^2) — used when the phase encodes a carry-bearing sum.
     */
    LweSample ApplyRaw(const std::function<int32_t(int32_t)>& f,
                       const LweSample& x) const;

    /** Noiseless trivial ciphertext of a digit (no key needed). */
    LweSample TrivialDigit(int32_t m) const;

    /** Raw decode of the full [0, p^2) space (for carry-bearing sums). */
    int32_t DecodeRaw(Torus32 phase) const;

    /** One bootstrap: y = f(a, b) via the s = p*b + a packing. */
    LweSample Apply2(const std::function<int32_t(int32_t, int32_t)>& f,
                     const LweSample& a, const LweSample& b) const;

    /** (a + b) mod p — one bootstrap. */
    LweSample Add(const LweSample& a, const LweSample& b) const;
    /** Carry of a + b — one bootstrap. */
    LweSample AddCarry(const LweSample& a, const LweSample& b) const;
    /** (a - b) mod p. */
    LweSample Sub(const LweSample& a, const LweSample& b) const;
    /** (a * b) mod p. */
    LweSample Mul(const LweSample& a, const LweSample& b) const;
    /** High digit of a * b. */
    LweSample MulHigh(const LweSample& a, const LweSample& b) const;
    /** a < b ? 1 : 0. */
    LweSample Lt(const LweSample& a, const LweSample& b) const;
    LweSample Max(const LweSample& a, const LweSample& b) const;
    LweSample Min(const LweSample& a, const LweSample& b) const;

  private:
    /** LUT over the packed space with slot-centered outputs. */
    TorusPolynomial MakePackedLut(
        const std::function<int32_t(int32_t)>& f) const;

    int32_t p_;
    int32_t big_p_;  ///< p^2.
    const BootstrappingKey* key_;
};

}  // namespace pytfhe::tfhe

#endif  // PYTFHE_TFHE_SHORTINT_H
