#include "tfhe/fft.h"

#include <cassert>
#include <cmath>
#include <mutex>
#include <unordered_map>

namespace pytfhe::tfhe {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

void FreqPolynomial::AddMul(const FreqPolynomial& a, const FreqPolynomial& b) {
    const int32_t n = Size();
    assert(a.Size() == n && b.Size() == n);
    const double* are = a.re.data();
    const double* aim = a.im.data();
    const double* bre = b.re.data();
    const double* bim = b.im.data();
    double* rre = re.data();
    double* rim = im.data();
    for (int32_t i = 0; i < n; ++i) {
        rre[i] += are[i] * bre[i] - aim[i] * bim[i];
        rim[i] += are[i] * bim[i] + aim[i] * bre[i];
    }
}

NegacyclicFft::NegacyclicFft(int32_t n) : n_(n) {
    assert(n >= 2 && (n & (n - 1)) == 0);
    log2n_ = 0;
    while ((1 << log2n_) < n) ++log2n_;

    twist_re_.resize(n);
    twist_im_.resize(n);
    untwist_re_.resize(n);
    untwist_im_.resize(n);
    for (int32_t j = 0; j < n; ++j) {
        const double ang = -kPi * j / n;
        twist_re_[j] = std::cos(ang);
        twist_im_[j] = std::sin(ang);
        // Untwist includes the 1/n inverse-FFT normalization.
        untwist_re_[j] = std::cos(-ang) / n;
        untwist_im_[j] = std::sin(-ang) / n;
    }

    // Twiddles for stage with half-size h live at flat offset h - 1.
    tw_re_.resize(n - 1);
    tw_im_.resize(n - 1);
    for (int32_t half = 1; half < n; half *= 2) {
        const int32_t len = half * 2;
        for (int32_t k = 0; k < half; ++k) {
            const double ang = -2.0 * kPi * k / len;
            tw_re_[half - 1 + k] = std::cos(ang);
            tw_im_[half - 1 + k] = std::sin(ang);
        }
    }

    bitrev_.resize(n);
    for (int32_t i = 0; i < n; ++i) {
        int32_t r = 0;
        for (int32_t b = 0; b < log2n_; ++b)
            if (i & (1 << b)) r |= 1 << (log2n_ - 1 - b);
        bitrev_[i] = r;
    }
}

void NegacyclicFft::FftInPlace(double* re, double* im, bool inverse) const {
    const int32_t n = n_;
    for (int32_t i = 0; i < n; ++i) {
        const int32_t j = bitrev_[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (int32_t half = 1; half < n; half *= 2) {
        const int32_t len = half * 2;
        const double* wre = &tw_re_[half - 1];
        const double* wim = &tw_im_[half - 1];
        const double sign = inverse ? -1.0 : 1.0;
        for (int32_t base = 0; base < n; base += len) {
            for (int32_t k = 0; k < half; ++k) {
                const double cr = wre[k];
                const double ci = sign * wim[k];
                const int32_t i0 = base + k;
                const int32_t i1 = i0 + half;
                const double tre = re[i1] * cr - im[i1] * ci;
                const double tim = re[i1] * ci + im[i1] * cr;
                re[i1] = re[i0] - tre;
                im[i1] = im[i0] - tim;
                re[i0] += tre;
                im[i0] += tim;
            }
        }
    }
}

void NegacyclicFft::ForwardReal(FreqPolynomial& out, const double* coefs) const {
    const int32_t n = n_;
    out.re.resize(n);
    out.im.resize(n);
    for (int32_t j = 0; j < n; ++j) {
        out.re[j] = coefs[j] * twist_re_[j];
        out.im[j] = coefs[j] * twist_im_[j];
    }
    FftInPlace(out.re.data(), out.im.data(), /*inverse=*/false);
}

void NegacyclicFft::Forward(FreqPolynomial& out, const IntPolynomial& p) const {
    assert(p.Size() == n_);
    std::vector<double> tmp(n_);
    for (int32_t j = 0; j < n_; ++j) tmp[j] = static_cast<double>(p.coefs[j]);
    ForwardReal(out, tmp.data());
}

void NegacyclicFft::Forward(FreqPolynomial& out, const TorusPolynomial& p) const {
    assert(p.Size() == n_);
    std::vector<double> tmp(n_);
    for (int32_t j = 0; j < n_; ++j)
        tmp[j] = static_cast<double>(static_cast<int32_t>(p.coefs[j]));
    ForwardReal(out, tmp.data());
}

void NegacyclicFft::Inverse(TorusPolynomial& out, const FreqPolynomial& f) const {
    const int32_t n = n_;
    assert(f.Size() == n && out.Size() == n);
    std::vector<double> re(f.re), im(f.im);
    FftInPlace(re.data(), im.data(), /*inverse=*/true);
    for (int32_t j = 0; j < n; ++j) {
        const double val = re[j] * untwist_re_[j] - im[j] * untwist_im_[j];
        out.coefs[j] =
            static_cast<Torus32>(static_cast<uint64_t>(std::llround(val)));
    }
}

void NegacyclicFft::Multiply(TorusPolynomial& result, const IntPolynomial& a,
                             const TorusPolynomial& b) const {
    FreqPolynomial fa, fb, acc(n_);
    Forward(fa, a);
    Forward(fb, b);
    acc.AddMul(fa, fb);
    Inverse(result, acc);
}

const NegacyclicFft& GetFftPlan(int32_t n) {
    static std::mutex mu;
    static std::unordered_map<int32_t, std::unique_ptr<NegacyclicFft>> plans;
    std::lock_guard<std::mutex> lock(mu);
    auto it = plans.find(n);
    if (it == plans.end())
        it = plans.emplace(n, std::make_unique<NegacyclicFft>(n)).first;
    return *it->second;
}

}  // namespace pytfhe::tfhe
