#include "tfhe/fft.h"

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>

namespace pytfhe::tfhe {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr size_t kAlign = 32;

/** Rounds a slot count up so the second plane stays 32-byte aligned. */
int32_t AlignedStride(int32_t half) { return (half + 3) & ~3; }

/**
 * Round-to-nearest double -> Torus32 without a libm call. Adding
 * 1.5 * 2^52 forces the sum into [2^52, 2^53), where the double ulp is
 * exactly 1, so the mantissa's low bits hold the rounded integer and the
 * low 32 bits are the torus value (the 2^51 bias is 0 mod 2^32). Requires
 * |x| < 2^51 — external-product accumulations peak below 2^50 (decomposed
 * digits < 2^7, torus values < 2^31, N * l * (k+1) < 2^13 addends). Ties
 * round to even rather than llround's away-from-zero; the twist factors
 * are irrational, so exact .5 products do not arise from real data.
 */
inline Torus32 RoundTorus32(double x) {
    assert(std::fabs(x) < 2251799813685248.0);  // 2^51
    constexpr double kRoundMagic = 6755399441055744.0;  // 1.5 * 2^52
    const double biased = x + kRoundMagic;
    uint64_t bits;
    std::memcpy(&bits, &biased, sizeof(bits));
    return static_cast<Torus32>(bits);
}
}  // namespace

// ------------------------------------------------------------ FreqPolynomial

FreqPolynomial& FreqPolynomial::operator=(const FreqPolynomial& other) {
    if (this == &other) return *this;
    ResizeHalf(other.half_);
    if (half_ > 0)
        std::memcpy(data_, other.data_,
                    2 * static_cast<size_t>(stride_) * sizeof(double));
    return *this;
}

FreqPolynomial& FreqPolynomial::operator=(FreqPolynomial&& other) noexcept {
    if (this == &other) return *this;
    Free();
    data_ = other.data_;
    half_ = other.half_;
    stride_ = other.stride_;
    other.data_ = nullptr;
    other.half_ = 0;
    other.stride_ = 0;
    return *this;
}

void FreqPolynomial::ResizeHalf(int32_t half) {
    assert(half >= 0);
    if (half == half_) return;
    Free();
    half_ = half;
    stride_ = AlignedStride(half);
    if (half == 0) return;
    const size_t bytes = 2 * static_cast<size_t>(stride_) * sizeof(double);
    data_ = static_cast<double*>(
        ::operator new(bytes, std::align_val_t{kAlign}));
    std::memset(data_, 0, bytes);
}

void FreqPolynomial::Clear() {
    if (data_ != nullptr)
        std::memset(data_, 0,
                    2 * static_cast<size_t>(stride_) * sizeof(double));
}

void FreqPolynomial::Free() {
    if (data_ != nullptr)
        ::operator delete(data_, std::align_val_t{kAlign});
    data_ = nullptr;
    half_ = 0;
    stride_ = 0;
}

void FreqPolynomial::AddMul(const FreqPolynomial& a, const FreqPolynomial& b) {
    const int32_t h = HalfSize();
    assert(a.HalfSize() == h && b.HalfSize() == h);
    const double* __restrict are = a.Re();
    const double* __restrict aim = a.Im();
    const double* __restrict bre = b.Re();
    const double* __restrict bim = b.Im();
    double* __restrict rre = Re();
    double* __restrict rim = Im();
    for (int32_t i = 0; i < h; ++i) {
        rre[i] += are[i] * bre[i] - aim[i] * bim[i];
        rim[i] += are[i] * bim[i] + aim[i] * bre[i];
    }
}

// ------------------------------------------------------------- NegacyclicFft

NegacyclicFft::NegacyclicFft(int32_t n) : n_(n), half_(n / 2) {
    assert(n >= 2 && (n & (n - 1)) == 0);
    log2half_ = 0;
    while ((1 << log2half_) < half_) ++log2half_;

    twist_re_.resize(half_);
    twist_im_.resize(half_);
    untwist_re_.resize(half_);
    untwist_im_.resize(half_);
    for (int32_t j = 0; j < half_; ++j) {
        const double ang = -kPi * j / n;
        twist_re_[j] = std::cos(ang);
        twist_im_[j] = std::sin(ang);
        // Untwist conjugates the twist and folds in the 1/h inverse-FFT
        // normalization.
        untwist_re_[j] = std::cos(ang) / half_;
        untwist_im_[j] = -std::sin(ang) / half_;
    }

    // Twiddles for the stage with half-size hb live at flat offset hb - 1.
    if (half_ > 1) {
        tw_re_.resize(half_ - 1);
        tw_im_.resize(half_ - 1);
        for (int32_t hb = 1; hb < half_; hb *= 2) {
            const int32_t len = hb * 2;
            for (int32_t k = 0; k < hb; ++k) {
                const double ang = -2.0 * kPi * k / len;
                tw_re_[hb - 1 + k] = std::cos(ang);
                tw_im_[hb - 1 + k] = std::sin(ang);
            }
        }
    }

    bitrev_.resize(half_);
    for (int32_t i = 0; i < half_; ++i) {
        int32_t r = 0;
        for (int32_t b = 0; b < log2half_; ++b)
            if (i & (1 << b)) r |= 1 << (log2half_ - 1 - b);
        bitrev_[i] = r;
    }
}

void NegacyclicFft::FftInPlace(double* re, double* im, bool inverse) const {
    const int32_t h = half_;
    for (int32_t i = 0; i < h; ++i) {
        const int32_t j = bitrev_[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    const double sign = inverse ? -1.0 : 1.0;
    for (int32_t hb = 1; hb < h; hb *= 2) {
        const int32_t len = hb * 2;
        const double* __restrict wre = &tw_re_[hb - 1];
        const double* __restrict wim = &tw_im_[hb - 1];
        for (int32_t base = 0; base < h; base += len) {
            double* __restrict re0 = re + base;
            double* __restrict im0 = im + base;
            double* __restrict re1 = re + base + hb;
            double* __restrict im1 = im + base + hb;
            for (int32_t k = 0; k < hb; ++k) {
                const double cr = wre[k];
                const double ci = sign * wim[k];
                const double tre = re1[k] * cr - im1[k] * ci;
                const double tim = re1[k] * ci + im1[k] * cr;
                re1[k] = re0[k] - tre;
                im1[k] = im0[k] - tim;
                re0[k] += tre;
                im0[k] += tim;
            }
        }
    }
}

void NegacyclicFft::Forward(FreqPolynomial& out, const IntPolynomial& p) const {
    assert(p.Size() == n_);
    out.ResizeHalf(half_);
    const int32_t* __restrict c = p.coefs.data();
    const double* __restrict tr = twist_re_.data();
    const double* __restrict ti = twist_im_.data();
    double* __restrict re = out.Re();
    double* __restrict im = out.Im();
    for (int32_t j = 0; j < half_; ++j) {
        const double lo = static_cast<double>(c[j]);
        const double hi = static_cast<double>(c[j + half_]);
        // (lo - i*hi) * (tr + i*ti), the X^h -> -i folding with the twist.
        re[j] = lo * tr[j] + hi * ti[j];
        im[j] = lo * ti[j] - hi * tr[j];
    }
    FftInPlace(re, im, /*inverse=*/false);
}

void NegacyclicFft::Forward(FreqPolynomial& out, const TorusPolynomial& p) const {
    assert(p.Size() == n_);
    out.ResizeHalf(half_);
    const Torus32* __restrict c = p.coefs.data();
    const double* __restrict tr = twist_re_.data();
    const double* __restrict ti = twist_im_.data();
    double* __restrict re = out.Re();
    double* __restrict im = out.Im();
    for (int32_t j = 0; j < half_; ++j) {
        const double lo = static_cast<double>(static_cast<int32_t>(c[j]));
        const double hi =
            static_cast<double>(static_cast<int32_t>(c[j + half_]));
        re[j] = lo * tr[j] + hi * ti[j];
        im[j] = lo * ti[j] - hi * tr[j];
    }
    FftInPlace(re, im, /*inverse=*/false);
}

void NegacyclicFft::ForwardPacked(FreqPolynomial& f) const {
    assert(f.HalfSize() == half_);
    const double* __restrict tr = twist_re_.data();
    const double* __restrict ti = twist_im_.data();
    double* __restrict re = f.Re();
    double* __restrict im = f.Im();
    for (int32_t j = 0; j < half_; ++j) {
        const double lo = re[j];
        const double hi = im[j];
        re[j] = lo * tr[j] + hi * ti[j];
        im[j] = lo * ti[j] - hi * tr[j];
    }
    FftInPlace(re, im, /*inverse=*/false);
}

void NegacyclicFft::InverseInPlace(TorusPolynomial& out,
                                   FreqPolynomial& f) const {
    assert(f.HalfSize() == half_ && out.Size() == n_);
    double* __restrict re = f.Re();
    double* __restrict im = f.Im();
    FftInPlace(re, im, /*inverse=*/true);
    const double* __restrict ur = untwist_re_.data();
    const double* __restrict ui = untwist_im_.data();
    Torus32* __restrict c = out.coefs.data();
    for (int32_t j = 0; j < half_; ++j) {
        // a_j = (re + i*im) * (ur + i*ui); p[j] = Re(a), p[j+h] = -Im(a).
        const double are = re[j] * ur[j] - im[j] * ui[j];
        const double aim = re[j] * ui[j] + im[j] * ur[j];
        c[j] = RoundTorus32(are);
        c[j + half_] = RoundTorus32(-aim);
    }
}

void NegacyclicFft::Inverse(TorusPolynomial& out, const FreqPolynomial& f,
                            FftScratch& scratch) const {
    scratch.acc = f;
    InverseInPlace(out, scratch.acc);
}

void NegacyclicFft::Inverse(TorusPolynomial& out,
                            const FreqPolynomial& f) const {
    FftScratch scratch;
    Inverse(out, f, scratch);
}

void NegacyclicFft::Multiply(TorusPolynomial& result, const IntPolynomial& a,
                             const TorusPolynomial& b,
                             FftScratch& scratch) const {
    Forward(scratch.a, a);
    Forward(scratch.b, b);
    scratch.acc.ResizeHalf(half_);
    scratch.acc.Clear();
    scratch.acc.AddMul(scratch.a, scratch.b);
    InverseInPlace(result, scratch.acc);
}

void NegacyclicFft::Multiply(TorusPolynomial& result, const IntPolynomial& a,
                             const TorusPolynomial& b) const {
    FftScratch scratch;
    Multiply(result, a, b, scratch);
}

// -------------------------------------------------------------- ReferenceFft

ReferenceFft::ReferenceFft(int32_t n) : n_(n) {
    assert(n >= 2 && (n & (n - 1)) == 0);
    log2n_ = 0;
    while ((1 << log2n_) < n) ++log2n_;

    twist_re_.resize(n);
    twist_im_.resize(n);
    untwist_re_.resize(n);
    untwist_im_.resize(n);
    for (int32_t j = 0; j < n; ++j) {
        const double ang = -kPi * j / n;
        twist_re_[j] = std::cos(ang);
        twist_im_[j] = std::sin(ang);
        untwist_re_[j] = std::cos(-ang) / n;
        untwist_im_[j] = std::sin(-ang) / n;
    }

    tw_re_.resize(n - 1);
    tw_im_.resize(n - 1);
    for (int32_t half = 1; half < n; half *= 2) {
        const int32_t len = half * 2;
        for (int32_t k = 0; k < half; ++k) {
            const double ang = -2.0 * kPi * k / len;
            tw_re_[half - 1 + k] = std::cos(ang);
            tw_im_[half - 1 + k] = std::sin(ang);
        }
    }

    bitrev_.resize(n);
    for (int32_t i = 0; i < n; ++i) {
        int32_t r = 0;
        for (int32_t b = 0; b < log2n_; ++b)
            if (i & (1 << b)) r |= 1 << (log2n_ - 1 - b);
        bitrev_[i] = r;
    }
}

void ReferenceFft::FftInPlace(std::vector<double>& re, std::vector<double>& im,
                              bool inverse) const {
    const int32_t n = n_;
    for (int32_t i = 0; i < n; ++i) {
        const int32_t j = bitrev_[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (int32_t half = 1; half < n; half *= 2) {
        const int32_t len = half * 2;
        const double* wre = &tw_re_[half - 1];
        const double* wim = &tw_im_[half - 1];
        const double sign = inverse ? -1.0 : 1.0;
        for (int32_t base = 0; base < n; base += len) {
            for (int32_t k = 0; k < half; ++k) {
                const double cr = wre[k];
                const double ci = sign * wim[k];
                const int32_t i0 = base + k;
                const int32_t i1 = i0 + half;
                const double tre = re[i1] * cr - im[i1] * ci;
                const double tim = re[i1] * ci + im[i1] * cr;
                re[i1] = re[i0] - tre;
                im[i1] = im[i0] - tim;
                re[i0] += tre;
                im[i0] += tim;
            }
        }
    }
}

void ReferenceFft::ForwardReal(std::vector<double>& re, std::vector<double>& im,
                               const double* coefs) const {
    re.resize(n_);
    im.resize(n_);
    for (int32_t j = 0; j < n_; ++j) {
        re[j] = coefs[j] * twist_re_[j];
        im[j] = coefs[j] * twist_im_[j];
    }
    FftInPlace(re, im, /*inverse=*/false);
}

void ReferenceFft::Multiply(TorusPolynomial& result, const IntPolynomial& a,
                            const TorusPolynomial& b) const {
    assert(a.Size() == n_ && b.Size() == n_ && result.Size() == n_);
    std::vector<double> tmp(n_);
    for (int32_t j = 0; j < n_; ++j)
        tmp[j] = static_cast<double>(a.coefs[j]);
    std::vector<double> are, aim;
    ForwardReal(are, aim, tmp.data());
    for (int32_t j = 0; j < n_; ++j)
        tmp[j] = static_cast<double>(static_cast<int32_t>(b.coefs[j]));
    std::vector<double> bre, bim;
    ForwardReal(bre, bim, tmp.data());

    std::vector<double> pre(n_), pim(n_);
    for (int32_t j = 0; j < n_; ++j) {
        pre[j] = are[j] * bre[j] - aim[j] * bim[j];
        pim[j] = are[j] * bim[j] + aim[j] * bre[j];
    }
    FftInPlace(pre, pim, /*inverse=*/true);
    for (int32_t j = 0; j < n_; ++j) {
        const double val = pre[j] * untwist_re_[j] - pim[j] * untwist_im_[j];
        result.coefs[j] =
            static_cast<Torus32>(static_cast<uint64_t>(std::llround(val)));
    }
}

// ---------------------------------------------------------------- plan cache

const NegacyclicFft& GetFftPlan(int32_t n) {
    assert(n >= 2 && (n & (n - 1)) == 0);
    // One slot per power of two; the hot path is a single acquire load.
    static std::array<std::atomic<const NegacyclicFft*>, 32> slots{};
    const int32_t lg = std::countr_zero(static_cast<uint32_t>(n));
    std::atomic<const NegacyclicFft*>& slot = slots[lg];
    if (const NegacyclicFft* plan = slot.load(std::memory_order_acquire))
        return *plan;

    static std::mutex mu;
    static std::vector<std::unique_ptr<NegacyclicFft>> owned;
    std::lock_guard<std::mutex> lock(mu);
    if (const NegacyclicFft* plan = slot.load(std::memory_order_relaxed))
        return *plan;
    owned.push_back(std::make_unique<NegacyclicFft>(n));
    slot.store(owned.back().get(), std::memory_order_release);
    return *owned.back();
}

}  // namespace pytfhe::tfhe
