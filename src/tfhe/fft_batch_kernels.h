/**
 * @file
 * Internal lane-parallel kernels behind the batched FFT entry points.
 *
 * The three hot loops of the batched transform pipeline — twist, butterfly
 * stage, and broadcast multiply-accumulate — exist twice: a portable scalar
 * form compiled with the library's default flags (always present, always
 * tested), and a SIMD form in fft_batch_simd.cc built with explicit AVX2
 * (x86-64, per-file -mavx2) or NEON (aarch64) intrinsics. SimdAvailable()
 * gates dispatch at runtime, so a binary carrying AVX2 code still runs on a
 * CPU without it.
 *
 * Bit-exactness contract: every kernel performs, for each lane, exactly the
 * scalar expression sequence of the NegacyclicFft hot loops — only
 * mul/add/sub (no FMA, no reassociation), so vector lanes round identically
 * to the scalar path on every ISA.
 *
 * All pointers address the BatchFreqPolynomial slot-major layout: the value
 * of slot j, lane l is at [j * lanes + l].
 */
#ifndef PYTFHE_TFHE_FFT_BATCH_KERNELS_H
#define PYTFHE_TFHE_FFT_BATCH_KERNELS_H

#include <cstdint>

namespace pytfhe::tfhe::batch_detail {

/**
 * True when fft_batch_simd.cc was compiled with vector intrinsics and the
 * running CPU supports them (cached one-time runtime check on x86-64; NEON
 * is baseline on aarch64). False in portable-only builds.
 */
bool SimdAvailable();

/**
 * Folding twist of every lane: for each slot j,
 *   re' = re * tr[j] + im * ti[j],  im' = re * ti[j] - im * tr[j].
 */
void SimdTwistForward(double* re, double* im, const double* tr,
                      const double* ti, int32_t half, int32_t lanes);

/**
 * One radix-2 FFT stage of half-size hb over `half` slots: the butterfly of
 * NegacyclicFft::FftInPlace applied lane-parallel, with the stage twiddles
 * wre/wim (flat tables for this stage) shared across lanes. sign is +1
 * forward, -1 inverse.
 */
void SimdButterflyStage(double* re, double* im, const double* wre,
                        const double* wim, double sign, int32_t half,
                        int32_t hb, int32_t lanes);

/**
 * r += a * b with the single polynomial b (contiguous, one value per slot)
 * broadcast across the lanes of a.
 */
void SimdAddMulBroadcast(double* rre, double* rim, const double* are,
                         const double* aim, const double* bre,
                         const double* bim, int32_t half, int32_t lanes);

/**
 * True when fft_batch_simd512.cc was compiled with AVX-512F and the running
 * CPU supports it. The 512-bit kernels double the vector width of the AVX2
 * path: 8 lanes of one slot per vector when lanes % 8 == 0, or two adjacent
 * slots x 4 lanes with a paired twiddle vector when lanes == 4.
 */
bool Simd512Available();

/**
 * AVX-512 SimdTwistForward. Requires lanes % 8 == 0, or lanes == 4 with
 * half even.
 */
void Simd512TwistForward(double* re, double* im, const double* tr,
                         const double* ti, int32_t half, int32_t lanes);

/**
 * AVX-512 SimdButterflyStage. Requires lanes % 8 == 0, or lanes == 4 with
 * hb >= 2 (the hb == 1 stage pairs adjacent slots inside one vector; the
 * dispatcher routes it to the AVX2 kernel instead).
 */
void Simd512ButterflyStage(double* re, double* im, const double* wre,
                           const double* wim, double sign, int32_t half,
                           int32_t hb, int32_t lanes);

/**
 * AVX-512 SimdAddMulBroadcast. Requires lanes % 8 == 0, or lanes == 4 with
 * half even.
 */
void Simd512AddMulBroadcast(double* rre, double* rim, const double* are,
                            const double* aim, const double* bre,
                            const double* bim, int32_t half, int32_t lanes);

}  // namespace pytfhe::tfhe::batch_detail

#endif  // PYTFHE_TFHE_FFT_BATCH_KERNELS_H
