#include "hdl/word_ops.h"

#include <algorithm>
#include <utility>

namespace pytfhe::hdl {

using circuit::GateType;

Bits ConstBits(Builder& b, uint64_t value, int32_t width) {
    Bits out;
    out.bits.reserve(width);
    for (int32_t i = 0; i < width; ++i)
        out.bits.push_back(b.MakeConst(i < 64 && ((value >> i) & 1)));
    return out;
}

Bits InputBits(Builder& b, int32_t width, const std::string& name) {
    Bits out;
    out.bits.reserve(width);
    for (int32_t i = 0; i < width; ++i)
        out.bits.push_back(b.MakeInput(name + "[" + std::to_string(i) + "]"));
    return out;
}

void OutputBits(Builder& b, const Bits& x, const std::string& name) {
    for (int32_t i = 0; i < x.Width(); ++i)
        b.AddOutput(x[i], name + "[" + std::to_string(i) + "]");
}

Bits ZeroExtend(Builder& b, const Bits& x, int32_t width) {
    Bits out = x;
    out.bits.resize(width, b.MakeConst(false));
    if (width < x.Width()) out.bits.resize(width);
    return out;
}

Bits SignExtend(Builder& b, const Bits& x, int32_t width) {
    (void)b;
    Bits out = x;
    if (width <= x.Width()) {
        out.bits.resize(width);
    } else {
        out.bits.resize(width, x.Msb());
    }
    return out;
}

namespace {

/**
 * Elementwise gate over two words through MakeWideGate: the per-bit gates
 * are mutually independent, so fresh bootstrapped lanes are registered as
 * an explicitly batchable wide group for the SoA batch dispatchers.
 */
Bits Bitwise(Builder& b, GateType t, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    std::vector<std::pair<Signal, Signal>> pairs;
    pairs.reserve(x.Width());
    for (int32_t i = 0; i < x.Width(); ++i) pairs.emplace_back(x[i], y[i]);
    return Bits(b.MakeWideGate(t, pairs));
}

}  // namespace

Bits AndBits(Builder& b, const Bits& x, const Bits& y) {
    return Bitwise(b, GateType::kAnd, x, y);
}
Bits OrBits(Builder& b, const Bits& x, const Bits& y) {
    return Bitwise(b, GateType::kOr, x, y);
}
Bits XorBits(Builder& b, const Bits& x, const Bits& y) {
    return Bitwise(b, GateType::kXor, x, y);
}

Bits NotBits(Builder& b, const Bits& x) {
    Bits out;
    out.bits.reserve(x.Width());
    for (int32_t i = 0; i < x.Width(); ++i)
        out.bits.push_back(b.MakeNot(x[i]));
    return out;
}

Bits MaskBits(Builder& b, const Bits& x, Signal bit) {
    std::vector<std::pair<Signal, Signal>> pairs;
    pairs.reserve(x.Width());
    for (int32_t i = 0; i < x.Width(); ++i) pairs.emplace_back(x[i], bit);
    return Bits(b.MakeWideGate(GateType::kAnd, pairs));
}

Bits MuxBits(Builder& b, Signal sel, const Bits& t, const Bits& f) {
    assert(t.Width() == f.Width());
    Bits out;
    out.bits.reserve(t.Width());
    for (int32_t i = 0; i < t.Width(); ++i)
        out.bits.push_back(b.MakeMux(sel, t[i], f[i]));
    return out;
}

std::pair<Bits, Signal> AddWithCarry(Builder& b, const Bits& x, const Bits& y,
                                     Signal carry_in) {
    assert(x.Width() == y.Width());
    Bits sum;
    sum.bits.reserve(x.Width());
    Signal carry = carry_in;
    for (int32_t i = 0; i < x.Width(); ++i) {
        const Signal axb = b.MakeGate(GateType::kXor, x[i], y[i]);
        sum.bits.push_back(b.MakeGate(GateType::kXor, axb, carry));
        const Signal gen = b.MakeGate(GateType::kAnd, x[i], y[i]);
        const Signal prop = b.MakeGate(GateType::kAnd, axb, carry);
        carry = b.MakeGate(GateType::kOr, gen, prop);
    }
    return {std::move(sum), carry};
}

Bits Add(Builder& b, const Bits& x, const Bits& y) {
    return AddWithCarry(b, x, y, b.MakeConst(false)).first;
}

namespace {

/**
 * Shared Kogge-Stone core over precomputed generate/propagate vectors;
 * cin folds into g[0]. sum_p holds the half-sums for the final XOR stage.
 */
Bits KoggeStoneCore(Builder& b, std::vector<Signal> g, std::vector<Signal> p,
                    const std::vector<Signal>& sum_p) {
    const int32_t w = static_cast<int32_t>(g.size());
    for (int32_t dist = 1; dist < w; dist *= 2) {
        std::vector<Signal> ng = g, np = p;
        for (int32_t i = dist; i < w; ++i) {
            ng[i] = b.MakeGate(
                GateType::kOr, g[i],
                b.MakeGate(GateType::kAnd, p[i], g[i - dist]));
            np[i] = b.MakeGate(GateType::kAnd, p[i], p[i - dist]);
        }
        g = std::move(ng);
        p = std::move(np);
    }
    // g[i] is now the carry OUT of bit i; sum_i = p_i ^ carry_in(i).
    Bits sum;
    sum.bits.reserve(w);
    sum.bits.push_back(sum_p[0]);
    for (int32_t i = 1; i < w; ++i)
        sum.bits.push_back(b.MakeGate(GateType::kXor, sum_p[i], g[i - 1]));
    return sum;
}

}  // namespace

Bits AddFast(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    const int32_t w = x.Width();
    if (w == 0) return Bits{};
    // (g, p) o (g', p') = (g | (p & g'), p & p'), carry-in 0.
    std::vector<Signal> g(w), p(w);
    for (int32_t i = 0; i < w; ++i) {
        g[i] = b.MakeGate(GateType::kAnd, x[i], y[i]);
        p[i] = b.MakeGate(GateType::kXor, x[i], y[i]);
    }
    return KoggeStoneCore(b, g, p, p);
}

Bits SubFast(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    const int32_t w = x.Width();
    if (w == 0) return Bits{};
    // x + ~y + 1: generate = x & ~y, propagate = x XNOR y, carry-in 1
    // folds into g[0] (g | p with cin = 1).
    std::vector<Signal> g(w), p(w), sum_p(w);
    for (int32_t i = 0; i < w; ++i) {
        g[i] = b.MakeGate(GateType::kAndYN, x[i], y[i]);
        p[i] = b.MakeGate(GateType::kXnor, x[i], y[i]);
        // Half-sum including the carry-in at bit 0.
        sum_p[i] = i == 0 ? b.MakeGate(GateType::kXor, x[i], y[i]) : p[i];
    }
    g[0] = b.MakeGate(GateType::kOr, g[0], p[0]);
    return KoggeStoneCore(b, g, p, sum_p);
}

Bits Sub(Builder& b, const Bits& x, const Bits& y) {
    return AddWithCarry(b, x, NotBits(b, y), b.MakeConst(true)).first;
}

Bits Neg(Builder& b, const Bits& x) {
    return Sub(b, ConstBits(b, 0, x.Width()), x);
}

Bits Increment(Builder& b, const Bits& x) {
    return Add(b, x, ConstBits(b, 1, x.Width()));
}

Signal OrReduce(Builder& b, const Bits& x) {
    Signal acc = b.MakeConst(false);
    // Balanced tree keeps depth logarithmic for the BFS scheduler.
    std::vector<Signal> level = x.bits;
    if (level.empty()) return acc;
    while (level.size() > 1) {
        std::vector<Signal> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(b.MakeGate(GateType::kOr, level[i], level[i + 1]));
        if (level.size() % 2) next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

Signal AndReduce(Builder& b, const Bits& x) {
    std::vector<Signal> level = x.bits;
    if (level.empty()) return b.MakeConst(true);
    while (level.size() > 1) {
        std::vector<Signal> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(b.MakeGate(GateType::kAnd, level[i], level[i + 1]));
        if (level.size() % 2) next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

Signal Eq(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    Bits eq;
    eq.bits.reserve(x.Width());
    for (int32_t i = 0; i < x.Width(); ++i)
        eq.bits.push_back(b.MakeGate(GateType::kXnor, x[i], y[i]));
    return AndReduce(b, eq);
}

Signal Ne(Builder& b, const Bits& x, const Bits& y) {
    return b.MakeNot(Eq(b, x, y));
}

Signal Ult(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    // LSB-to-MSB scan: higher bits override lower decisions.
    Signal lt = b.MakeConst(false);
    for (int32_t i = 0; i < x.Width(); ++i) {
        const Signal bit_lt = b.MakeGate(GateType::kAndNY, x[i], y[i]);
        const Signal bit_eq = b.MakeGate(GateType::kXnor, x[i], y[i]);
        lt = b.MakeGate(GateType::kOr, bit_lt,
                        b.MakeGate(GateType::kAnd, bit_eq, lt));
    }
    return lt;
}

Signal Slt(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width() && x.Width() >= 1);
    // Flip the sign bits and compare unsigned.
    Bits xf = x, yf = y;
    xf.bits.back() = b.MakeNot(x.Msb());
    yf.bits.back() = b.MakeNot(y.Msb());
    return Ult(b, xf, yf);
}

Bits ShlConst(Builder& b, const Bits& x, int32_t amount) {
    const int32_t w = x.Width();
    Bits out = ConstBits(b, 0, w);
    for (int32_t i = 0; i + amount < w; ++i) out[i + amount] = x[i];
    return out;
}

Bits LshrConst(Builder& b, const Bits& x, int32_t amount) {
    const int32_t w = x.Width();
    Bits out = ConstBits(b, 0, w);
    for (int32_t i = amount; i < w; ++i) out[i - amount] = x[i];
    return out;
}

Bits AshrConst(Builder& b, const Bits& x, int32_t amount) {
    (void)b;
    const int32_t w = x.Width();
    Bits out;
    out.bits.reserve(w);
    for (int32_t i = 0; i < w; ++i)
        out.bits.push_back(x[std::min(i + amount, w - 1)]);
    return out;
}

Bits ShlDynamic(Builder& b, const Bits& x, const Bits& amount) {
    Bits out = x;
    for (int32_t k = 0; k < amount.Width(); ++k) {
        const int64_t step = INT64_C(1) << std::min(k, 30);
        if (step >= x.Width()) {
            // Shifting by this stage clears the word entirely.
            out = MuxBits(b, amount[k], ConstBits(b, 0, x.Width()), out);
        } else {
            out = MuxBits(b, amount[k],
                          ShlConst(b, out, static_cast<int32_t>(step)), out);
        }
    }
    return out;
}

Bits LshrDynamic(Builder& b, const Bits& x, const Bits& amount) {
    Bits out = x;
    for (int32_t k = 0; k < amount.Width(); ++k) {
        const int64_t step = INT64_C(1) << std::min(k, 30);
        if (step >= x.Width()) {
            out = MuxBits(b, amount[k], ConstBits(b, 0, x.Width()), out);
        } else {
            out = MuxBits(b, amount[k],
                          LshrConst(b, out, static_cast<int32_t>(step)), out);
        }
    }
    return out;
}

Bits UMul(Builder& b, const Bits& x, const Bits& y, int32_t out_width) {
    Bits acc = ConstBits(b, 0, out_width);
    const Bits xe = ZeroExtend(b, x, out_width);
    for (int32_t i = 0; i < y.Width() && i < out_width; ++i) {
        // Partial product: (x << i) masked by y_i, truncated to out_width.
        const Bits shifted = ShlConst(b, xe, i);
        acc = Add(b, acc, MaskBits(b, shifted, y[i]));
    }
    return acc;
}

Bits SMul(Builder& b, const Bits& x, const Bits& y, int32_t out_width) {
    // Two's complement multiply is exact modulo 2^out_width after
    // sign extension of both operands.
    return UMul(b, SignExtend(b, x, out_width), SignExtend(b, y, out_width),
                out_width);
}

std::pair<Bits, Bits> UDivMod(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    const int32_t w = x.Width();
    // Remainder gets one extra bit so rem - y never wraps mid-step.
    Bits rem = ConstBits(b, 0, w + 1);
    const Bits ye = ZeroExtend(b, y, w + 1);
    Bits quot = ConstBits(b, 0, w);
    for (int32_t i = w - 1; i >= 0; --i) {
        // rem = (rem << 1) | x_i.
        for (int32_t j = w; j > 0; --j) rem[j] = rem[j - 1];
        rem[0] = x[i];
        const Bits diff = Sub(b, rem, ye);
        // diff's MSB clear means rem >= y.
        const Signal ge = b.MakeNot(diff.Msb());
        rem = MuxBits(b, ge, diff, rem);
        quot[i] = ge;
    }
    return {std::move(quot), rem.Slice(0, w)};
}

std::pair<Bits, Bits> SDivMod(Builder& b, const Bits& x, const Bits& y) {
    assert(x.Width() == y.Width());
    const Signal sx = x.Msb();
    const Signal sy = y.Msb();
    const Bits ax = MuxBits(b, sx, Neg(b, x), x);
    const Bits ay = MuxBits(b, sy, Neg(b, y), y);
    auto [q, r] = UDivMod(b, ax, ay);
    // Quotient sign: sx XOR sy; remainder takes the dividend's sign
    // (round toward zero, C semantics).
    const Signal sq = b.MakeGate(GateType::kXor, sx, sy);
    Bits quot = MuxBits(b, sq, Neg(b, q), q);
    Bits rem = MuxBits(b, sx, Neg(b, r), r);
    return {std::move(quot), std::move(rem)};
}

namespace {

int32_t CountWidth(int32_t width) {
    int32_t w = 1;
    while ((1 << w) <= width) ++w;
    return w;
}

}  // namespace

Bits LeadingZeroCount(Builder& b, const Bits& x) {
    const int32_t w = x.Width();
    const int32_t cw = CountWidth(w);
    // prefix[i] = OR of bits i..MSB; leading zeros = popcount of ~prefix.
    Bits not_prefix;
    not_prefix.bits.resize(w);
    Signal seen = b.MakeConst(false);
    for (int32_t i = w - 1; i >= 0; --i) {
        seen = b.MakeGate(GateType::kOr, seen, x[i]);
        not_prefix[i] = b.MakeNot(seen);
    }
    Bits count = PopCount(b, not_prefix);
    return ZeroExtend(b, count, cw);
}

Bits PopCount(Builder& b, const Bits& x) {
    const int32_t cw = CountWidth(x.Width());
    Bits acc = ConstBits(b, 0, cw);
    for (int32_t i = 0; i < x.Width(); ++i) {
        Bits bit = ZeroExtend(b, Bits({x[i]}), cw);
        acc = Add(b, acc, bit);
    }
    return acc;
}

}  // namespace pytfhe::hdl
