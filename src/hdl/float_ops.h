/**
 * @file
 * Floating-point circuit generators for arbitrary Float(e, m) formats.
 *
 * Semantics (documented simplifications, adequate for inference workloads):
 *  - round toward zero (mantissa truncation) on add/sub/mul/div;
 *  - subnormals flush to zero; exponent overflow saturates to infinity;
 *  - no NaN representation: 0/0 yields infinity, inf - inf yields +inf;
 *  - -0 is normalized to +0 by arithmetic, and comparisons treat them equal.
 *
 * Bit layout within a Bits word (LSB first): mantissa[0..m), exponent[m..m+e),
 * sign at the top — matching DType::Encode for Kind::kFloat.
 */
#ifndef PYTFHE_HDL_FLOAT_OPS_H
#define PYTFHE_HDL_FLOAT_OPS_H

#include "hdl/bits.h"
#include "hdl/word_ops.h"

namespace pytfhe::hdl {

/** A floating-point format: e exponent bits, m mantissa bits. */
struct FloatFmt {
    int32_t e;
    int32_t m;

    int32_t TotalBits() const { return 1 + e + m; }
    int32_t Bias() const { return (1 << (e - 1)) - 1; }
};

/** Unpacked view of a float word (handles, no gates). */
struct FloatParts {
    Signal sign;
    Bits exp;   ///< e bits.
    Bits mant;  ///< m bits, without the implicit leading 1.
};

/** Splits a packed float word. */
FloatParts FUnpack(const FloatFmt& fmt, const Bits& x);
/** Packs fields back into a word. */
Bits FPack(Builder& b, const FloatFmt& fmt, const FloatParts& parts);

/** True when the value is (+/-) zero (exponent field all zeros). */
Signal FIsZero(Builder& b, const FloatFmt& fmt, const Bits& x);
/** True when the value is (+/-) infinity (exponent field all ones). */
Signal FIsInf(Builder& b, const FloatFmt& fmt, const Bits& x);

/** The canonical +0 constant. */
Bits FZero(Builder& b, const FloatFmt& fmt);

Bits FAdd(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);
Bits FSub(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);
Bits FMul(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);
Bits FDiv(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);

/** Sign flip (zero stays +0 is NOT enforced here; -0 compares equal). */
Bits FNeg(Builder& b, const FloatFmt& fmt, const Bits& x);
Bits FAbs(Builder& b, const FloatFmt& fmt, const Bits& x);

Signal FLt(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);
Signal FLe(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);
Signal FEq(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);

/** max(0, x): a single sign-controlled mux — cheap in bit-wise FHE. */
Bits FRelu(Builder& b, const FloatFmt& fmt, const Bits& x);

Bits FMax(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);
Bits FMin(Builder& b, const FloatFmt& fmt, const Bits& x, const Bits& y);

}  // namespace pytfhe::hdl

#endif  // PYTFHE_HDL_FLOAT_OPS_H
